(* Shared cmdliner term for log verbosity.  [Logs_cli.level ()] provides
   -v / -vv (info / debug), -q / --quiet and --verbosity LEVEL; evaluating
   the term installs the stderr reporter before the command body runs. *)

let setup level = Sa_telemetry.Log_setup.install ~level ()
let term = Cmdliner.Term.(const setup $ Logs_cli.level ())
