(* Experiment driver: regenerates every experiment table of EXPERIMENTS.md.

   Usage:
     dune exec bin/experiments.exe -- all --quick
     dune exec bin/experiments.exe -- e1
     dune exec bin/experiments.exe -- e5 --seeds 8 *)

open Cmdliner

let experiments : (string * string * (?seeds:int -> ?quick:bool -> unit -> unit)) list =
  [
    ("e1", "Algorithm 1 on the protocol model (Theorem 3)", Sa_exp.Exp_e1.run);
    ("e2", "Algorithms 2+3 on the physical model (Lemmas 7+8)", Sa_exp.Exp_e2.run);
    ("e3", "rho bounds per interference model (Props 9/15/17/18)", Sa_exp.Exp_e3.run);
    ("e4", "rho of SINR graphs vs n (Prop 11)", Sa_exp.Exp_e4.run);
    ("e5", "power control pipeline + tau ablation (Theorem 13)", Sa_exp.Exp_e5.run);
    ("e6", "Lavi-Swamy truthful mechanism (Section 5)", Sa_exp.Exp_e6.run);
    ("e7", "asymmetric channels (Section 6 / Theorem 14)", Sa_exp.Exp_e7.run);
    ("e8", "edge-LP gap + algorithm comparison (S2.1 baselines)", Sa_exp.Exp_e8.run);
    ("e9", "demand-oracle column generation (S3.1)", Sa_exp.Exp_e9.run);
    ("e10", "pairwise-independence derandomization (S5 remark)", Sa_exp.Exp_e10.run);
    ("e11", "repeated-auction market loop (S1)", Sa_exp.Exp_e11.run);
    ("e12", "online arrival / competitive ratio (rel. work [8])", Sa_exp.Exp_e12.run);
    ("e13", "Rayleigh fading robustness of allocations", Sa_exp.Exp_e13.run);
  ]

let seeds_arg =
  let doc = "Number of random seeds per table cell." in
  Arg.(value & opt (some int) None & info [ "seeds" ] ~docv:"N" ~doc)

let quick_arg =
  let doc = "Smaller sweeps for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let run_one (run : ?seeds:int -> ?quick:bool -> unit -> unit) seeds quick =
  (match seeds with
  | Some s -> run ~seeds:s ~quick ()
  | None -> run ?seeds:None ~quick ());
  print_newline ()

let cmd_of (name, doc, run) =
  let term =
    Term.(const (fun () -> run_one run) $ Log_cli.term $ seeds_arg $ quick_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

let all_cmd =
  let doc = "Run every experiment in sequence." in
  let run_all () seeds quick =
    List.iter
      (fun (name, _, run) ->
        Printf.printf ">>> %s\n%!" name;
        run_one run seeds quick)
      experiments
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const run_all $ Log_cli.term $ seeds_arg $ quick_arg)

let () =
  let doc = "Experiment suite for the secondary spectrum auction reproduction" in
  let info = Cmd.info "experiments" ~doc in
  let group = Cmd.group info (all_cmd :: List.map cmd_of experiments) in
  exit (Cmd.eval group)
