(* Command-line spectrum-auction runner.

   Two subcommands:
   - [run] (default): build one synthetic instance for a chosen
     interference model, solve it with a chosen algorithm, print the
     allocation — the single-shot front-end over the library.
   - [serve]: replay a workload file of auction job batches through the
     batch engine (domain sharding + warm-start caches, see lib/engine).

   Examples:
     dune exec bin/auction.exe -- run --model protocol -n 30 -k 4
     dune exec bin/auction.exe -- run --model sinr -n 20 -k 3 --algorithm adaptive
     dune exec bin/auction.exe -- run --model protocol -n 10 -k 2 --mechanism
     dune exec bin/auction.exe -- serve --demo --domains 4
     dune exec bin/auction.exe -- serve --workload jobs.wl --json summary.json *)

open Cmdliner
module Prng = Sa_util.Prng
module Workloads = Sa_exp.Workloads
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Exact = Sa_core.Exact
module Derand = Sa_core.Derand
module Lavi_swamy = Sa_mech.Lavi_swamy
module Decomposition = Sa_mech.Decomposition

type model = Protocol | Disk | Sinr | Clique | Asymmetric
type algorithm = Lp_round | Adaptive | Greedy_alg | Exact_alg | Derand_alg

let build_instance model ~seed ~n ~k =
  match model with
  | Protocol -> Workloads.protocol_instance ~seed ~n ~k ()
  | Disk -> Workloads.disk_instance ~seed ~n ~k ()
  | Sinr ->
      fst (Workloads.sinr_fixed_instance ~seed ~n ~k ~scheme:Sa_wireless.Sinr.Uniform ())
  | Clique -> Workloads.clique_instance ~seed ~n ~k ()
  | Asymmetric -> Workloads.asymmetric_instance ~seed ~n ~k ~d:4

let model_name = function
  | Protocol -> "protocol"
  | Disk -> "disk"
  | Sinr -> "sinr (fixed uniform powers)"
  | Clique -> "clique (plain combinatorial auction)"
  | Asymmetric -> "asymmetric channels (Thm 14 gadget)"

let run_auction () model algorithm n k seed trials mechanism save load =
  let inst =
    match load with
    | Some path -> Sa_core.Serialize.load_instance path
    | None -> build_instance model ~seed ~n ~k
  in
  (match save with
  | Some path ->
      Sa_core.Serialize.save_instance path inst;
      Printf.printf "instance saved to %s\n" path
  | None -> ());
  let k = inst.Instance.k in
  Printf.printf "model: %s   n=%d  k=%d  rho=%.1f  seed=%d\n"
    (match load with Some path -> "loaded from " ^ path | None -> model_name model)
    (Instance.n inst) k inst.Instance.rho seed;
  let frac = Lp.solve_explicit inst in
  Printf.printf "LP optimum (welfare upper bound): %.3f\n" frac.Lp.objective;
  let g = Prng.create ~seed:(seed + 1) in
  let alloc =
    match algorithm with
    | Lp_round -> Rounding.solve ~trials g inst frac
    | Adaptive -> Rounding.solve_adaptive ~trials:(max 1 (trials / 2)) g inst frac
    | Greedy_alg -> Greedy.by_value inst
    | Exact_alg ->
        let r = Exact.solve inst in
        if not r.Exact.exact then
          prerr_endline "warning: exact search hit its node budget; best found returned";
        r.Exact.allocation
    | Derand_alg -> (
        match inst.Instance.conflict with
        | Instance.Unweighted _ -> Derand.algorithm1_derand inst frac
        | Instance.Edge_weighted _ -> Derand.algorithm23_derand inst frac
        | Instance.Per_channel _ | Instance.Per_channel_weighted _ ->
            failwith "derand supports unweighted/edge-weighted instances only")
  in
  Printf.printf "welfare: %.3f   (feasible: %b, guarantee factor: %.1f)\n"
    (Allocation.value inst alloc)
    (Allocation.is_feasible inst alloc)
    (Rounding.guarantee inst);
  Printf.printf "winners (%d):\n" (List.length (Allocation.allocated_bidders alloc));
  Format.printf "%a%!" (Allocation.pp inst) alloc;
  if mechanism then begin
    Printf.printf "\n-- Lavi-Swamy truthful mechanism --\n";
    let o = Lavi_swamy.run ~alpha:(2.0 *. Rounding.guarantee inst) g inst in
    Printf.printf "lottery size: %d   effective alpha: %.1f\n"
      (Array.length o.Lavi_swamy.lottery.Decomposition.allocations)
      o.Lavi_swamy.alpha;
    let sampled, payments = Lavi_swamy.sample g inst o in
    Printf.printf "sampled outcome (feasible: %b):\n"
      (Allocation.is_feasible inst sampled);
    Array.iteri
      (fun v b ->
        if not (Sa_val.Bundle.is_empty b) then
          Printf.printf "  bidder %d: %s  pays %.3f\n" v
            (Format.asprintf "%a" Sa_val.Bundle.pp b)
            payments.(v))
      sampled
  end

let model_arg =
  let c = Arg.enum
      [ ("protocol", Protocol); ("disk", Disk); ("sinr", Sinr); ("clique", Clique);
        ("asymmetric", Asymmetric) ]
  in
  Arg.(value & opt c Protocol & info [ "model" ] ~docv:"MODEL"
         ~doc:"Interference model: protocol|disk|sinr|clique|asymmetric.")

let algorithm_arg =
  let c = Arg.enum
      [ ("lp-round", Lp_round); ("adaptive", Adaptive); ("greedy", Greedy_alg);
        ("exact", Exact_alg); ("derand", Derand_alg) ]
  in
  Arg.(value & opt c Adaptive & info [ "algorithm" ] ~docv:"ALG"
         ~doc:"Allocation algorithm: lp-round|adaptive|greedy|exact|derand.")

let n_arg = Arg.(value & opt int 25 & info [ "n"; "bidders" ] ~doc:"Number of bidders.")
let k_arg = Arg.(value & opt int 4 & info [ "k"; "channels" ] ~doc:"Number of channels.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
let trials_arg = Arg.(value & opt int 16 & info [ "trials" ] ~doc:"Rounding trials.")

let mechanism_arg =
  Arg.(value & flag & info [ "mechanism" ]
         ~doc:"Also run the Lavi-Swamy truthful mechanism and sample an outcome.")

let save_arg =
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
         ~doc:"Save the generated instance to $(docv) before solving.")

let load_arg =
  Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE"
         ~doc:"Load the instance from $(docv) instead of generating one \
               (--model/-n/-k/--seed are then ignored).")

let run_term =
  Term.(const run_auction $ Log_cli.term $ model_arg $ algorithm_arg $ n_arg
        $ k_arg $ seed_arg $ trials_arg $ mechanism_arg $ save_arg $ load_arg)

let run_cmd =
  let doc = "Run one synthetic secondary spectrum auction" in
  Cmd.v (Cmd.info "run" ~doc) run_term

(* ------------------------------- serve ----------------------------------- *)

module Engine = Sa_engine.Engine
module Workload = Sa_engine.Workload
module Metrics = Sa_telemetry.Metrics
module Trace = Sa_telemetry.Trace
module Export = Sa_telemetry.Export
module Eventlog = Sa_telemetry.Eventlog
module Http = Sa_telemetry.Http

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One-line digest of the hot-path counters, printed after every batch. *)
let print_telemetry_summary (snap : Metrics.view) =
  let c name = Option.value ~default:0 (Metrics.find_counter snap name) in
  Printf.printf
    "telemetry: pivots %d revised / %d dense  colgen %d calls / %d cols  \
     rounding %d trials  rho-est %d  topo %d/%d hit  basis %d/%d hit\n"
    (c "lp.revised.pivots") (c "lp.simplex.pivots") (c "core.colgen.oracle_calls")
    (c "core.colgen.columns") (c "core.rounding.trials") (c "graph.rho.estimates")
    (c "engine.topology.hits")
    (c "engine.topology.hits" + c "engine.topology.misses")
    (c "engine.basis.hits") (c "engine.basis.lookups")

let run_serve () workload demo domains pool_chunk no_warm no_column_pool
    pricing presolve json_out metrics_out prom_out fault_rate fault_seed
    deadline_ms pivot_budget max_retries no_fallback results_out listen
    trace_out events_out =
  let specs =
    match (workload, demo) with
    | Some path, _ -> Workload.load path
    | None, true -> Workload.demo
    | None, false ->
        prerr_endline "serve: pass --workload FILE or --demo";
        exit 2
  in
  let faults =
    match fault_rate with
    | None -> None
    | Some rate when rate < 0.0 || rate > 1.0 ->
        prerr_endline "serve: --fault-rate must be in [0,1]";
        exit 2
    | Some rate -> Some (Sa_engine.Faultgen.create ~seed:fault_seed ~rate ())
  in
  let policy =
    Engine.policy
      ?deadline_s:(Option.map (fun ms -> ms /. 1e3) deadline_ms)
      ?pivot_budget ~max_retries ~fallback:(not no_fallback) ?faults
      ~lp_pricing:pricing ~lp_presolve:presolve ()
  in
  (match pool_chunk with
  | Some c when c < 1 ->
      prerr_endline "serve: --pool-chunk must be >= 1";
      exit 2
  | _ -> ());
  let engine =
    Engine.create ~warm_start:(not no_warm) ~column_pool:(not no_column_pool) ()
  in
  (* The scrape handler runs on the server domain: metrics are domain-safe
     already, and the per-job table is published through an Atomic ref once
     the batch lands (empty array until then). *)
  let results_ref = Atomic.make [||] in
  let server =
    match listen with
    | None -> None
    | Some port ->
        let handler path =
          match path with
          | "/healthz" ->
              { Http.status = 200; content_type = "text/plain"; body = "ok\n" }
          | "/metrics" ->
              {
                Http.status = 200;
                content_type = "text/plain; version=0.0.4";
                body = Export.to_prometheus (Metrics.snapshot ());
              }
          | "/jobs" ->
              {
                Http.status = 200;
                content_type = "application/json";
                body = Engine.results_to_json (Atomic.get results_ref) ^ "\n";
              }
          | _ ->
              {
                Http.status = 404;
                content_type = "text/plain";
                body = "not found\n";
              }
        in
        let srv = Http.start ~port handler in
        Printf.printf "listening on 127.0.0.1:%d\n%!" (Http.port srv);
        Some srv
  in
  let events =
    match events_out with
    | None -> None
    | Some _ ->
        let t = Eventlog.create () in
        Eventlog.install (Some t);
        Some t
  in
  (* A full-batch Perfetto export needs more history than the default
     post-mortem ring keeps. *)
  if trace_out <> None then Trace.set_capacity (max (Trace.capacity ()) 65536);
  let jobs = Workload.expand engine specs in
  Printf.printf
    "serve: %d batches -> %d jobs, %d domain%s, warm-start %s, pricing %s, \
     presolve %s%s\n%!"
    (List.length specs) (List.length jobs) domains
    (if domains = 1 then "" else "s")
    (if no_warm then "off" else "on")
    (match pricing with Sa_lp.Model.Dantzig -> "dantzig" | Sa_lp.Model.Devex -> "devex")
    (if presolve then "on" else "off")
    (match fault_rate with
    | None -> ""
    | Some r -> Printf.sprintf ", fault-rate %.2f (seed %d)" r fault_seed);
  let results, summary =
    Engine.run_batch ~domains ?chunk:pool_chunk ~policy engine jobs
  in
  Atomic.set results_ref results;
  let per_job =
    match Logs.level () with
    | Some (Logs.Info | Logs.Debug) -> true
    | Some (Logs.App | Logs.Error | Logs.Warning) | None -> false
  in
  if per_job then begin
    Printf.printf "%5s %7s %9s %9s %7s %6s %7s %9s %9s\n" "job" "tier" "welfare"
      "lp-ub" "pivots" "warm" "retries" "lp-ms" "round-ms";
    Array.iter
      (fun r ->
        Printf.printf "%5d %7s %9.3f %9.3f %7d %6s %7d %9.2f %9.2f\n"
          r.Engine.job_id
          (match r.Engine.tier with
          | Some tr -> Engine.tier_name tr
          | None -> "FAILED")
          r.Engine.welfare r.Engine.lp_objective r.Engine.lp_iterations
          (if r.Engine.warm_start then "yes" else "no")
          r.Engine.retries
          (r.Engine.timings.Engine.lp_s *. 1e3)
          (r.Engine.timings.Engine.round_s *. 1e3))
      results
  end;
  Format.printf "%a@." Engine.pp_summary summary;
  (match results_out with
  | None -> ()
  | Some path ->
      write_file path (Engine.results_to_json results ^ "\n");
      Printf.printf "per-job results written to %s\n" path);
  let snap = Metrics.snapshot () in
  print_telemetry_summary snap;
  (match metrics_out with
  | None -> ()
  | Some path ->
      write_file path (Export.snapshot_to_json ~spans:(Trace.recent ()) snap);
      Printf.printf "metrics snapshot written to %s\n" path);
  (match prom_out with
  | None -> ()
  | Some path ->
      write_file path (Export.to_prometheus snap);
      Printf.printf "prometheus exposition written to %s\n" path);
  (match json_out with
  | None -> ()
  | Some path ->
      let telemetry = Export.snapshot_to_json snap in
      write_file path
        (Engine.summary_to_json ~extra:[ ("telemetry", telemetry) ] summary ^ "\n");
      Printf.printf "summary written to %s\n" path);
  (match (events_out, events) with
  | Some path, Some t ->
      write_file path (Eventlog.to_jsonl t);
      Eventlog.install None;
      Printf.printf "event log written to %s\n" path
  | _ -> ());
  (match trace_out with
  | None -> ()
  | Some path ->
      write_file path (Export.spans_to_chrome (Trace.recent ()));
      Printf.printf "chrome trace written to %s\n" path);
  match server with
  | None -> ()
  | Some srv ->
      Printf.printf "serving /metrics /healthz /jobs (Ctrl-C to stop)\n%!";
      Http.wait srv

let workload_arg =
  Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"FILE"
         ~doc:"Workload file to replay (see lib/engine/workload.mli for the format).")

let demo_arg =
  Arg.(value & flag & info [ "demo" ]
         ~doc:"Use the built-in demo workload instead of --workload.")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ]
         ~doc:"Number of OCaml domains to shard jobs across (scheduled on \
               the persistent domain pool).")

let pool_chunk_arg =
  Arg.(value & opt (some int) None & info [ "pool-chunk" ] ~docv:"N"
         ~doc:"Fix the domain pool's self-scheduling chunk size (default: \
               adaptive, remaining/(2*domains) capped at 64).  Results are \
               identical for any value; only scheduling changes.")

let no_column_pool_arg =
  Arg.(value & flag & info [ "no-column-pool" ]
         ~doc:"Disable the cross-job column pool used by algorithm=oracle \
               jobs (colgen then always starts cold; certified objectives \
               are unchanged).")

let no_warm_arg =
  Arg.(value & flag & info [ "no-warm" ]
         ~doc:"Disable the LP warm-start basis cache (results are then \
               byte-identical across any --domains value).")

let pricing_arg =
  let c = Arg.enum [ ("dantzig", Sa_lp.Model.Dantzig); ("devex", Sa_lp.Model.Devex) ] in
  Arg.(value & opt c Sa_lp.Model.Dantzig
       & info [ "pricing" ] ~docv:"RULE"
           ~doc:"Simplex entering-variable rule: dantzig|devex.  Devex \
                 usually pivots less on large LPs at more work per pivot; \
                 either rule yields the same certified LP optimum, and \
                 results for a fixed rule are byte-identical across any \
                 --domains value (with --no-warm).")

let presolve_arg =
  let c = Arg.enum [ ("on", true); ("off", false) ] in
  Arg.(value & opt c false
       & info [ "presolve" ] ~docv:"on|off"
           ~doc:"Run the LP presolve pipeline (duplicate/empty-row removal, \
                 dominated-column elimination, power-of-two equilibration) \
                 in front of every simplex solve (default off).  The exact \
                 postsolve keeps prices and certificates in original \
                 coordinates; objectives agree with presolve off within \
                 solver tolerance, and results for a fixed setting are \
                 byte-identical across any --domains value (with --no-warm).")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write the batch summary as JSON to $(docv) (includes the \
               telemetry snapshot under the \"telemetry\" key).")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the full telemetry snapshot (counters, gauges, \
               histograms, recent trace spans) as JSON to $(docv).")

let prom_out_arg =
  Arg.(value & opt (some string) None & info [ "prometheus-out" ] ~docv:"FILE"
         ~doc:"Write the telemetry snapshot in Prometheus text exposition \
               format to $(docv).")

let fault_rate_arg =
  Arg.(value & opt (some float) None & info [ "fault-rate" ] ~docv:"P"
         ~doc:"Inject deterministic faults with per-site probability $(docv) \
               in [0,1] (seeded PRNG per (job, attempt), reproducible at any \
               --domains).  Failed stages retry and then degrade through the \
               greedy/online fallback chain.")

let fault_seed_arg =
  Arg.(value & opt int 0 & info [ "fault-seed" ]
         ~doc:"Seed for the fault-injection PRNG (with --fault-rate).")

let deadline_ms_arg =
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Per-job wall-clock budget in milliseconds (monotonic clock, \
               enforced inside the simplex pivot loops).  Expired jobs fall \
               back to the greedy/online tiers.")

let pivot_budget_arg =
  Arg.(value & opt (some int) None & info [ "pivot-budget" ] ~docv:"N"
         ~doc:"Max simplex pivots per LP attempt.")

let max_retries_arg =
  Arg.(value & opt int 1 & info [ "max-retries" ]
         ~doc:"LP attempts after the first before falling back (retries \
               solve cold with a fresh rounding seed).")

let no_fallback_arg =
  Arg.(value & flag & info [ "no-fallback" ]
         ~doc:"Disable the greedy/online fallback chain: jobs whose LP tier \
               fails are reported as failed with an empty allocation.")

let results_out_arg =
  Arg.(value & opt (some string) None & info [ "results-out" ] ~docv:"FILE"
         ~doc:"Write per-job results (status, tier, welfare, guarantee, \
               retries, failure labels) as a JSON array to $(docv).  \
               Timing-free, so same-seed runs produce identical bytes.")

let listen_arg =
  Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT"
         ~doc:"Expose /metrics (Prometheus), /healthz and /jobs over HTTP on \
               127.0.0.1:$(docv) (0 picks an ephemeral port, printed at \
               startup) and keep the process alive after the batch.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the span timeline as Chrome Trace Event JSON to $(docv) \
               (open in ui.perfetto.dev or chrome://tracing; one track per \
               domain, spans carry job/tier/retry attributes).")

let events_out_arg =
  Arg.(value & opt (some string) None & info [ "events-out" ] ~docv:"FILE"
         ~doc:"Write the decision event log as JSON Lines to $(docv).  \
               Timing-free and merged in fixed (job, index) order, so \
               same-seed logs are byte-identical at any --domains (use \
               --no-warm: the shared warm-start cache is order-dependent).")

let serve_cmd =
  let doc = "Replay a workload file through the batch auction engine" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve $ Log_cli.term $ workload_arg $ demo_arg $ domains_arg
          $ pool_chunk_arg $ no_warm_arg $ no_column_pool_arg $ pricing_arg
          $ presolve_arg $ json_arg
          $ metrics_out_arg $ prom_out_arg
          $ fault_rate_arg $ fault_seed_arg $ deadline_ms_arg $ pivot_budget_arg
          $ max_retries_arg $ no_fallback_arg $ results_out_arg $ listen_arg
          $ trace_out_arg $ events_out_arg)

(* ------------------------------- metrics --------------------------------- *)

(* Validate and summarise a snapshot file written by [serve --metrics-out]
   (used by scripts/check.sh as a parse check). *)
let run_metrics path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Export.snapshot_of_json contents with
  | exception Export.Parse_error msg ->
      Printf.eprintf "metrics: %s: invalid snapshot: %s\n" path msg;
      exit 1
  | view, spans ->
      let nonzero = List.filter (fun (_, v) -> v > 0) view.Metrics.counters in
      Printf.printf "snapshot ok: %d counters (%d nonzero), %d gauges, %d histograms, %d spans\n"
        (List.length view.Metrics.counters)
        (List.length nonzero)
        (List.length view.Metrics.gauges)
        (List.length view.Metrics.histograms)
        (List.length spans);
      List.iter (fun (name, v) -> Printf.printf "  %s = %d\n" name v) nonzero

let metrics_path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Snapshot file written by serve --metrics-out.")

let metrics_cmd =
  let doc = "Validate and summarise a telemetry snapshot file" in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run_metrics $ metrics_path_arg)

(* -------------------------------- trace ---------------------------------- *)

(* Schema-check a Chrome trace written by [serve --trace-out] (used by
   scripts/check.sh so the smoke needs no external JSON tooling). *)
let run_trace path =
  match Export.validate_chrome (read_file path) with
  | exception Export.Parse_error msg ->
      Printf.eprintf "trace: %s: invalid chrome trace: %s\n" path msg;
      exit 1
  | n -> Printf.printf "chrome trace ok: %d span events\n" n

let trace_path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Chrome Trace Event file written by serve --trace-out.")

let trace_cmd =
  let doc = "Validate a Chrome Trace Event file" in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run_trace $ trace_path_arg)

(* --------------------------------- get ----------------------------------- *)

(* Raw-socket HTTP GET so smoke scripts can scrape [serve --listen] without
   a curl dependency.  Prints the body; exits 1 on any non-200. *)
let run_get host port path =
  match Http.get ~host ~port path with
  | exception e ->
      Printf.eprintf "get: %s:%d%s: %s\n" host port path (Printexc.to_string e);
      exit 1
  | 200, body -> print_string body
  | status, _ ->
      Printf.eprintf "get: %s:%d%s: HTTP %d\n" host port path status;
      exit 1

let get_host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Host to connect to.")

let get_port_arg =
  Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Port of a running serve --listen.")

let get_path_arg =
  Arg.(value & pos 0 string "/metrics" & info [] ~docv:"PATH"
         ~doc:"Request path (default /metrics).")

let get_cmd =
  let doc = "HTTP GET against a running serve --listen (no curl needed)" in
  Cmd.v (Cmd.info "get" ~doc)
    Term.(const run_get $ get_host_arg $ get_port_arg $ get_path_arg)

let cmd =
  let doc = "Secondary spectrum auctions: single runs and batch serving" in
  Cmd.group ~default:run_term (Cmd.info "auction" ~doc)
    [ run_cmd; serve_cmd; metrics_cmd; trace_cmd; get_cmd ]

let () = exit (Cmd.eval cmd)
