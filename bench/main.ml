(* Bechamel benchmark harness: one group per experiment family (DESIGN.md §3).

   Measures the runtime of every pipeline stage the experiments use: LP
   construction + solve (explicit and demand-oracle), the three rounding
   algorithms, baselines, exact search, rho computation, SINR graph
   construction, power control, and the Lavi-Swamy decomposition.

   Also times the batch engine (lib/engine) on a repeat-topology workload,
   cold vs warm-started, and writes the comparison to BENCH_engine.json —
   the recorded perf trajectory for the serving path.

   Run with: dune exec bench/main.exe
   Flags: --quick       engine smoke run only (small workload, no bechamel)
          --engine-out  output path for the JSON summary (default
                        BENCH_engine.json)

   A second group, `bench kernels` (dune exec bench/main.exe -- kernels),
   compares the sparse hot-path kernels against their dense references:
   bitset-vs-matrix graph queries, eta-file-vs-tableau LP solves, and the
   full colgen+rounding pipeline dense/sparse and 1-vs-N domains, writing
   BENCH_kernels.json.  Flags: --quick (small instance), --domains N,
   --kernels-out PATH.

   A third group, `bench construction` (dune exec bench/main.exe --
   construction), compares the grid-based instance constructors against
   their all-pairs references — disk conflict graphs at several sizes and
   the sparse thm13 SINR graph with its certified dropped-weight bounds —
   writing BENCH_construction.json.  Flags: --quick, --construction-out
   PATH.

   A fourth group, `bench resilience` (dune exec bench/main.exe --
   resilience), measures the fault-tolerance overhead of the serving
   path: the same disk-heavy workload at fault rates 0 / 0.25 / 0.5
   under the default retry+fallback policy, reporting wall-clock
   overhead, per-tier job counts, welfare retention, and same-seed
   determinism, writing BENCH_resilience.json.  Flags: --quick,
   --resilience-out PATH.

   A fifth group, `bench observability` (dune exec bench/main.exe --
   observability), measures the cost of the tracing + event-log layer on
   the engine workload (sinks off vs on, interleaved min-of-N passes) and
   validates the Chrome trace and event-log determinism, writing
   BENCH_observability.json.  Flags: --quick, --observability-out PATH.

   A sixth group, `bench scheduler` (dune exec bench/main.exe --
   scheduler), measures the persistent domain pool against the old
   spawn-per-call fan-out: per-call latency on a batch of many small
   calls, dynamic self-scheduling vs static striding on a skewed-cost
   batch, and the cross-job column pool's colgen-round savings on an
   exact-repeat oracle workload (with bitwise objective parity and
   same-seed determinism checked at every domain count), writing
   BENCH_scheduler.json.  Flags: --quick, --domains N, --scheduler-out
   PATH. *)

open Bechamel


module Prng = Sa_util.Prng
module Workloads = Sa_exp.Workloads
module Instance = Sa_core.Instance
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Exact = Sa_core.Exact
module Edge_lp = Sa_core.Edge_lp
module Oracle = Sa_core.Oracle_solver
module Decomposition = Sa_mech.Decomposition
module Inductive = Sa_graph.Inductive
module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Link = Sa_wireless.Link
module Sinr = Sa_wireless.Sinr
module Sinr_graph = Sa_wireless.Sinr_graph
module Power_control = Sa_wireless.Power_control
module Placement = Sa_geom.Placement

(* ---- fixtures (built once, outside the staged closures) ----------------- *)

let protocol_inst = Workloads.protocol_instance ~seed:1 ~n:25 ~k:4 ()
let protocol_frac = Lp.solve_explicit protocol_inst

let sinr_inst, _sinr_sys =
  Workloads.sinr_fixed_instance ~seed:2 ~n:20 ~k:3 ~scheme:Sinr.Uniform ()

let sinr_frac = Lp.solve_explicit sinr_inst

let small_inst = Workloads.protocol_instance ~seed:3 ~n:12 ~k:2 ()
let small_frac = Lp.solve_explicit small_inst

let asym_inst = Workloads.asymmetric_instance ~seed:4 ~n:16 ~k:3 ~d:4
let asym_frac = Lp.solve_explicit asym_inst

let mixed_inst =
  Workloads.protocol_instance ~seed:5 ~n:15 ~k:6 ~profile:Workloads.Mixed ()

let clique32 = Graph.clique 32
let clique_weights = Array.make 32 1.0

let pc_links =
  let g = Prng.create ~seed:6 in
  Link.of_point_pairs (Placement.random_links g ~n:30 ~side:40.0 ~min_len:0.5 ~max_len:2.0)

let pc_params = Workloads.sinr_default_params

let pc_set =
  (* a thm13-independent set found greedily *)
  let wg = Sinr_graph.thm13_graph pc_links pc_params in
  let chosen = ref [] in
  for i = 0 to Link.n pc_links - 1 do
    if Weighted.is_independent wg (i :: !chosen) then chosen := i :: !chosen
  done;
  !chosen

let protocol_graph =
  match protocol_inst.Instance.conflict with
  | Instance.Unweighted g -> g
  | Instance.Edge_weighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _ -> assert false

let sinr_wg =
  match sinr_inst.Instance.conflict with
  | Instance.Edge_weighted wg -> wg
  | Instance.Unweighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _ -> assert false

(* ---- tests --------------------------------------------------------------- *)

let stage_with_rng f =
  let counter = ref 0 in
  Staged.stage (fun () ->
      incr counter;
      let g = Prng.create ~seed:!counter in
      f g)

let tests =
  Test.make_grouped ~name:"specauction"
    [
      (* E1: unweighted pipeline *)
      Test.make ~name:"e1/lp-explicit-n25-k4"
        (Staged.stage (fun () -> ignore (Lp.solve_explicit protocol_inst)));
      Test.make ~name:"e1/alg1-n25-k4"
        (stage_with_rng (fun g ->
             ignore (Rounding.algorithm1 g protocol_inst protocol_frac)));
      Test.make ~name:"e1/alg1-adaptive-n25-k4"
        (stage_with_rng (fun g ->
             ignore (Rounding.solve_adaptive ~trials:2 g protocol_inst protocol_frac)));
      (* E2: weighted pipeline *)
      Test.make ~name:"e2/lp-weighted-n20-k3"
        (Staged.stage (fun () -> ignore (Lp.solve_explicit sinr_inst)));
      Test.make ~name:"e2/alg2+3-n20-k3"
        (stage_with_rng (fun g ->
             let p = Rounding.algorithm2 g sinr_inst sinr_frac in
             ignore (Rounding.algorithm3 sinr_inst p)));
      (* E3/E4: rho computation *)
      Test.make ~name:"e3/rho-unweighted-n25"
        (Staged.stage (fun () ->
             ignore
               (Inductive.rho_unweighted protocol_graph
                  protocol_inst.Instance.ordering)));
      Test.make ~name:"e4/rho-weighted-n20"
        (Staged.stage (fun () ->
             ignore
               (Inductive.rho_weighted ~node_limit:100_000 sinr_wg
                  sinr_inst.Instance.ordering)));
      (* E5: SINR graph construction + power control *)
      Test.make ~name:"e5/thm13-graph-n30"
        (Staged.stage (fun () ->
             ignore (Sinr_graph.thm13_graph pc_links pc_params)));
      Test.make ~name:"e5/power-control"
        (Staged.stage (fun () ->
             ignore (Power_control.assign pc_links pc_params pc_set)));
      (* E6: mechanism *)
      Test.make ~name:"e6/decomposition-n12"
        (stage_with_rng (fun g ->
             ignore
               (Decomposition.decompose ~max_rounds:20 ~pricing_trials:4 g
                  small_inst small_frac
                  ~alpha:(Rounding.guarantee small_inst))));
      (* E7: asymmetric *)
      Test.make ~name:"e7/asym-round-n16-k3"
        (stage_with_rng (fun g ->
             ignore (Rounding.algorithm_asymmetric g asym_inst asym_frac)));
      (* E8: baselines *)
      Test.make ~name:"e8/greedy-by-value-n25"
        (Staged.stage (fun () -> ignore (Greedy.by_value protocol_inst)));
      Test.make ~name:"e8/exact-n12-k2"
        (Staged.stage (fun () -> ignore (Exact.solve small_inst)));
      Test.make ~name:"e8/edge-lp-clique32"
        (Staged.stage (fun () ->
             ignore (Edge_lp.solve clique32 ~weights:clique_weights)));
      (* E9: column generation *)
      Test.make ~name:"e9/oracle-colgen-n15-k6"
        (Staged.stage (fun () -> ignore (Oracle.solve mixed_inst)));
      (* E10: derandomized rounding *)
      Test.make ~name:"e10/derand-n12-k2"
        (Staged.stage (fun () ->
             ignore (Sa_core.Derand.algorithm1_derand small_inst small_frac)));
      (* E11: one market epoch (build + LP + round) at ~10 active bidders *)
      Test.make ~name:"e11/market-10-epochs"
        (stage_with_rng (fun g ->
             ignore g;
             let cfg =
               {
                 Sa_sim.Market.default_config with
                 Sa_sim.Market.epochs = 10;
                 arrivals_per_epoch = 3.0;
                 k = 2;
               }
             in
             ignore (Sa_sim.Market.run ~seed:1 cfg)));
      (* LP engine comparison on the same auction LP *)
      Test.make ~name:"lp-engine/dense-n25-k4"
        (Staged.stage (fun () ->
             ignore (Lp.solve_explicit ~engine:Sa_lp.Model.Dense_tableau protocol_inst)));
      Test.make ~name:"lp-engine/revised-n25-k4"
        (Staged.stage (fun () ->
             ignore (Lp.solve_explicit ~engine:Sa_lp.Model.Revised_sparse protocol_inst)));
      (* serialization roundtrip *)
      Test.make ~name:"io/serialize-roundtrip-n25"
        (Staged.stage (fun () ->
             ignore
               (Sa_core.Serialize.instance_of_string
                  (Sa_core.Serialize.instance_to_string protocol_inst))));
    ]

(* ---- batch engine: cold vs warm throughput ------------------------------- *)

module Engine = Sa_engine.Engine
module Workload = Sa_engine.Workload
module Metrics = Sa_telemetry.Metrics
module Export = Sa_telemetry.Export

(* Counter deltas and the BENCH_*.json emission convention live in
   [Bench_util], shared by every group below. *)
let with_counter_delta f = Bench_util.with_counter_delta f

let engine_workload ~quick =
  if quick then Workload.demo
  else
    [
      Workload.spec ~model:Workload.Protocol ~n:24 ~k:4 ~seed:21 ~repeat:16 ();
      Workload.spec ~model:Workload.Random_graph ~n:20 ~k:3 ~seed:8
        ~algorithm:Engine.Lp_round ~repeat:12 ();
      Workload.spec ~model:Workload.Random_graph ~n:20 ~k:3 ~seed:8
        ~algorithm:Engine.Greedy_lp ~repeat:6 ();
      Workload.spec ~model:Workload.Sinr ~n:14 ~k:2 ~seed:4 ~repeat:8 ();
    ]

let engine_bench ~quick ~out =
  let specs = engine_workload ~quick in
  (* expansion has its own engine so the run engines' cache counters stay
     attributable to the runs themselves *)
  let expander = Engine.create ~warm_start:false () in
  let jobs = Workload.expand expander specs in
  let njobs = List.length jobs in
  let run ~warm_start ~domains =
    with_counter_delta (fun () ->
        snd (Engine.run_batch ~domains (Engine.create ~warm_start ()) jobs))
  in
  (* one throwaway pass so both measured passes see warmed-up code/caches *)
  ignore (run ~warm_start:false ~domains:1);
  let cold, cold_ctr = run ~warm_start:false ~domains:1 in
  let warm, warm_ctr = run ~warm_start:true ~domains:1 in
  let domains = Sa_core.Parallel.default_domains in
  let warm_par, warm_par_ctr = run ~warm_start:true ~domains in
  let ratio a b = if b > 0.0 then a /. b else Float.nan in
  let lp_speedup = ratio cold.Engine.lp_seconds warm.Engine.lp_seconds in
  let pivot_ratio =
    ratio (float_of_int cold.Engine.lp_iterations) (float_of_int warm.Engine.lp_iterations)
  in
  let throughput s = ratio (float_of_int s.Engine.jobs) s.Engine.wall_seconds in
  Printf.printf "\nengine batch (%d jobs%s):\n" njobs (if quick then ", quick" else "");
  Printf.printf "  cold 1-domain : %7.2f jobs/s  %6d pivots  lp %.4fs\n"
    (throughput cold) cold.Engine.lp_iterations cold.Engine.lp_seconds;
  Printf.printf "  warm 1-domain : %7.2f jobs/s  %6d pivots  lp %.4fs  hits %d/%d\n"
    (throughput warm) warm.Engine.lp_iterations warm.Engine.lp_seconds
    warm.Engine.warm_hits warm.Engine.jobs;
  Printf.printf "  warm %d-domain: %7.2f jobs/s  wall %.4fs\n" domains
    (throughput warm_par) warm_par.Engine.wall_seconds;
  Printf.printf "  lp speedup warm/cold: %.2fx   pivot ratio: %.2fx\n" lp_speedup
    pivot_ratio;
  let with_counters ctr s =
    Engine.summary_to_json ~extra:[ ("counters", Export.counters_to_json ctr) ] s
  in
  let json =
    Bench_util.group_json ~name:"engine-batch" ~quick
      [
        ("jobs", string_of_int njobs);
        ("parallel_domains", string_of_int domains);
        ("cold", with_counters cold_ctr cold);
        ("warm", with_counters warm_ctr warm);
        ("warm_parallel", with_counters warm_par_ctr warm_par);
        ( "warm_hit_rate",
          Printf.sprintf "%.4f"
            (ratio
               (float_of_int warm.Engine.warm_hits)
               (float_of_int warm.Engine.jobs)) );
        ("lp_speedup_warm_over_cold", Printf.sprintf "%.4f" lp_speedup);
        ("pivot_ratio_cold_over_warm", Printf.sprintf "%.4f" pivot_ratio);
        ( "telemetry",
          Export.counters_to_json (Metrics.snapshot ()).Metrics.counters );
      ]
  in
  Bench_util.write_out ~out json

(* ---- kernels: sparse hot paths vs dense references ----------------------- *)

module Simplex = Sa_lp.Simplex

(* Naive dense adjacency reference (the pre-bitset representation), kept
   here so the micro-benchmark always compares against the same baseline
   regardless of how lib/graph evolves. *)
let dense_matrix g =
  let n = Graph.n g in
  let m = Array.make_matrix n n false in
  Graph.iter_edges g (fun u v ->
      m.(u).(v) <- true;
      m.(v).(u) <- true);
  m

let dense_is_independent m set =
  List.for_all
    (fun u -> List.for_all (fun v -> u = v || not m.(u).(v)) set)
    set

(* Greedy max-weight independent set, the conflict-scan kernel of
   [Indep.greedy_weight]: every *accepted* vertex must be checked against
   the whole chosen set, so there is no early exit and the scan cost is
   what the representations differ on.  The dense reference keeps the
   chosen set as a list over a bool matrix (the pre-bitset code shape). *)
let dense_greedy m weights =
  let n = Array.length weights in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
  let chosen = ref [] in
  Array.iter
    (fun v ->
      if weights.(v) > 0.0 && List.for_all (fun u -> not m.(u).(v)) !chosen then
        chosen := v :: !chosen)
    order;
  !chosen

let bitset_greedy graph weights =
  let n = Array.length weights in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
  let chosen = ref [] in
  let mask = Graph.mask_create graph in
  Array.iter
    (fun v ->
      if weights.(v) > 0.0 && not (Graph.row_intersects graph v mask) then begin
        Sa_graph.Bitset.add mask v;
        chosen := v :: !chosen
      end)
    order;
  !chosen

let kernels_graph_micro ~quick =
  let n = if quick then 200 else 400 in
  let g_rng = Prng.create ~seed:11 in
  let graph = Sa_graph.Generators.random_bounded_degree g_rng ~n ~d:10 in
  let m = dense_matrix graph in
  let reps = if quick then 300 else 600 in
  let weight_sets =
    Array.init reps (fun _ -> Array.init n (fun _ -> Prng.float g_rng 10.0))
  in
  let dense_out = Array.make reps [] in
  let (), dense_s =
    Sa_util.Timing.time (fun () ->
        Array.iteri (fun i w -> dense_out.(i) <- dense_greedy m w) weight_sets)
  in
  let bitset_out = Array.make reps [] in
  let (), bitset_s =
    Sa_util.Timing.time (fun () ->
        Array.iteri (fun i w -> bitset_out.(i) <- bitset_greedy graph w) weight_sets)
  in
  (* Batch feasibility certification on the greedy outputs: checking a set
     that IS independent admits no early exit, so the dense reference pays
     the full O(|S|^2) scan — the shape of certifying rounded allocations. *)
  let subsets = Array.map (fun s -> s) bitset_out in
  let dense_ind = Array.make reps false in
  let (), dense_ind_s =
    Sa_util.Timing.time (fun () ->
        Array.iteri (fun i s -> dense_ind.(i) <- dense_is_independent m s) subsets)
  in
  let bitset_ind = Array.make reps false in
  let (), bitset_ind_s =
    Sa_util.Timing.time (fun () ->
        Array.iteri (fun i s -> bitset_ind.(i) <- Graph.is_independent graph s) subsets)
  in
  let agree = dense_out = bitset_out && dense_ind = bitset_ind in
  Printf.printf
    "  graph  greedy-MIS x%d (n=%d): dense %.4fs  bitset %.4fs  (%.1fx)\n" reps n
    dense_s bitset_s (dense_s /. bitset_s);
  Printf.printf
    "  graph  is_independent x%d:    dense %.4fs  bitset %.4fs  (%.1fx, agree=%b)\n"
    reps dense_ind_s bitset_ind_s (dense_ind_s /. bitset_ind_s) agree;
  Printf.sprintf
    "{\"n\":%d,\"reps\":%d,\"greedy\":{\"dense_seconds\":%.6f,\
     \"bitset_seconds\":%.6f,\"speedup\":%.3f},\"is_independent\":\
     {\"dense_seconds\":%.6f,\"bitset_seconds\":%.6f,\"speedup\":%.3f},\
     \"agree\":%b}"
    n reps dense_s bitset_s (dense_s /. bitset_s) dense_ind_s bitset_ind_s
    (dense_ind_s /. bitset_ind_s) agree

(* LP(1)-shaped packing problem: unit rows + interference rows.  1200x1000
   at full size (nb=200, k=5); shared by the lp micro-benchmark and the
   pricing group so both measure the same instance. *)
let packing_problem ~quick =
  let g = Prng.create ~seed:13 in
  let nb = if quick then 60 else 200 in
  let k = if quick then 4 else 5 in
  let ncols = nb * (if quick then 4 else 5) in
  let owner = Array.init ncols (fun c -> c mod nb) in
  let c = Array.init ncols (fun _ -> Prng.float g 10.0) in
  let unit_rows =
    Array.init nb (fun v ->
        ( Array.init ncols (fun cix -> if owner.(cix) = v then 1.0 else 0.0),
          Simplex.Le,
          1.0 ))
  in
  let intf_rows =
    Array.init (nb * k) (fun _ ->
        ( Array.init ncols (fun _ ->
              if Prng.bernoulli g 0.08 then Prng.float g 1.0 else 0.0),
          Simplex.Le,
          2.5 ))
  in
  { Simplex.direction = Simplex.Maximize; c; rows = Array.append unit_rows intf_rows }

let kernels_lp_micro ~quick =
  let p = packing_problem ~quick in
  let ncols = Array.length p.Simplex.c in
  let rows = Array.length p.Simplex.rows in
  let dense_sol, dense_s = Sa_util.Timing.time (fun () -> Simplex.solve p) in
  let (eta_sol, eta_ctr), eta_s =
    Sa_util.Timing.time (fun () ->
        with_counter_delta (fun () -> Sa_lp.Revised.solve p))
  in
  let certified s = (Sa_lp.Certify.check p s).Sa_lp.Certify.certified in
  let both_certified = certified dense_sol && certified eta_sol in
  Printf.printf
    "  lp     %dx%d packing: dense %.4fs  eta %.4fs  (%.1fx, certified=%b)\n" rows
    ncols dense_s eta_s (dense_s /. eta_s) both_certified;
  Printf.sprintf
    "{\"rows\":%d,\"cols\":%d,\"dense_seconds\":%.6f,\"eta_seconds\":%.6f,\
     \"speedup\":%.3f,\"dense_objective\":%.6f,\"eta_objective\":%.6f,\
     \"both_certified\":%b,\"eta_counters\":%s}"
    rows ncols dense_s eta_s (dense_s /. eta_s) dense_sol.Simplex.objective
    eta_sol.Simplex.objective both_certified
    (Export.counters_to_json eta_ctr)

let kernels_pipeline ~quick ~domains =
  let n, k, max_rounds = if quick then (200, 2, 8) else (400, 8, 8) in
  Printf.printf "  building protocol instance n=%d k=%d...\n%!" n k;
  (* Xor_heavy: bidders re-demand different bundles as prices rise, so the
     column generation actually iterates (several master re-solves with
     warm starts) instead of converging in one round. *)
  let inst =
    Workloads.protocol_instance ~seed:17 ~n ~k ~profile:Workloads.Xor_heavy ()
  in
  let run name ~engine ~pricing ~dom =
    let alloc0 = Gc.allocated_bytes () in
    let ((frac, stats, alloc), ctr), seconds =
      Sa_util.Timing.time (fun () ->
          with_counter_delta (fun () ->
              let frac, stats =
                Oracle.solve ~max_rounds ~engine ~pricing ~domains:dom inst
              in
              let alloc = Rounding.solve_par ~domains:dom ~trials:8 ~seed:23 inst frac in
              (frac, stats, alloc)))
    in
    let alloc_bytes = Gc.allocated_bytes () -. alloc0 in
    Printf.printf
      "  %-22s %8.3fs  lp-obj %10.4f  welfare %10.4f  cols %4d  rounds %2d\n%!"
      name seconds frac.Lp.objective
      (Sa_core.Allocation.value inst alloc)
      stats.Oracle.columns_generated stats.Oracle.iterations;
    let json =
      Printf.sprintf
        "{\"seconds\":%.6f,\"objective\":%.6f,\"welfare\":%.6f,\"columns\":%d,\
         \"rounds\":%d,\"alloc_bytes\":%.0f,\"counters\":%s}"
        seconds frac.Lp.objective
        (Sa_core.Allocation.value inst alloc)
        stats.Oracle.columns_generated stats.Oracle.iterations alloc_bytes
        (Export.counters_to_json ctr)
    in
    (json, seconds, frac.Lp.objective, stats.Oracle.columns_generated)
  in
  let d_json, d_s, d_obj, d_cols =
    run "dense+naive d=1"
      ~engine:Sa_lp.Model.Dense_tableau ~pricing:Oracle.Naive ~dom:1
  in
  let s1_json, s1_s, s1_obj, s1_cols =
    run "sparse+incremental d=1"
      ~engine:Sa_lp.Model.Revised_sparse ~pricing:Oracle.Incremental ~dom:1
  in
  let sN_json, sN_s, _, _ =
    run
      (Printf.sprintf "sparse+incremental d=%d" domains)
      ~engine:Sa_lp.Model.Revised_sparse ~pricing:Oracle.Incremental ~dom:domains
  in
  let speedup = d_s /. s1_s in
  let scaling = s1_s /. sN_s in
  Printf.printf
    "  pipeline speedup sparse/dense: %.2fx   scaling d%d/d1: %.2fx\n" speedup
    domains scaling;
  Printf.sprintf
    "{\"n\":%d,\"k\":%d,\"max_rounds\":%d,\"dense\":%s,\"sparse_d1\":%s,\
     \"sparse_dN\":%s,\"speedup_sparse_over_dense\":%.3f,\
     \"scaling_dN_over_d1\":%.3f,\"parity\":{\"columns_equal\":%b,\
     \"objective_delta\":%.9f}}"
    n k max_rounds d_json s1_json sN_json speedup scaling (d_cols = s1_cols)
    (Float.abs (d_obj -. s1_obj))

let kernels_bench ~quick ~out ~domains =
  Printf.printf "kernels (%s, domains=%d):\n%!"
    (if quick then "quick" else "full")
    domains;
  let graph_json = kernels_graph_micro ~quick in
  let lp_json = kernels_lp_micro ~quick in
  let pipeline_json = kernels_pipeline ~quick ~domains in
  let json =
    Bench_util.group_json ~name:"kernels" ~quick
      [
        ("domains", string_of_int domains);
        ("graph", graph_json);
        ("lp", lp_json);
        ("pipeline", pipeline_json);
      ]
  in
  Bench_util.write_out ~out json

(* ---- construction: grid builders vs naive references ---------------------- *)

module Disk = Sa_wireless.Disk
module Point = Sa_geom.Point

(* All-pairs references, kept here so the comparison baseline stays fixed
   regardless of how the library constructors evolve. *)
let naive_disk_graph disks =
  let n = Disk.n disks in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        Point.dist (Disk.point disks i) (Disk.point disks j)
        < Disk.radius disks i +. Disk.radius disks j
      then Graph.add_edge g i j
    done
  done;
  g

let construction_disk_case ~n =
  let g = Prng.create ~seed:31 in
  let side = 4.0 *. sqrt (float_of_int n) in
  let disks = Disk.random g ~n ~side ~rmin:0.5 ~rmax:1.5 in
  let reps = max 1 (4000 / n) in
  let naive = ref (Graph.create 0) in
  let (), naive_s =
    Sa_util.Timing.time (fun () ->
        for _ = 1 to reps do
          naive := naive_disk_graph disks
        done)
  in
  let grid = ref (Graph.create 0) in
  let ((), ctr), grid_s =
    Sa_util.Timing.time (fun () ->
        with_counter_delta (fun () ->
            for _ = 1 to reps do
              grid := Disk.conflict_graph disks
            done))
  in
  let agree = Graph.edges !naive = Graph.edges !grid in
  let speedup = naive_s /. grid_s in
  Printf.printf
    "  disk   n=%4d x%2d: naive %.4fs  grid %.4fs  (%.1fx, m=%d, agree=%b)\n%!" n
    reps naive_s grid_s speedup (Graph.num_edges !grid) agree;
  Printf.sprintf
    "{\"n\":%d,\"reps\":%d,\"edges\":%d,\"naive_seconds\":%.6f,\
     \"grid_seconds\":%.6f,\"speedup\":%.3f,\"agree\":%b,\"counters\":%s}"
    n reps (Graph.num_edges !grid) naive_s grid_s speedup agree
    (Export.counters_to_json ctr)

let construction_thm13_case ~n =
  let g = Prng.create ~seed:37 in
  let side = 8.0 *. sqrt (float_of_int n) in
  let sys =
    Link.of_point_pairs (Placement.random_links g ~n ~side ~min_len:0.5 ~max_len:2.0)
  in
  let prm = Workloads.sinr_default_params in
  let w_min = 0.05 in
  let dense = ref (Weighted.create 0) in
  let (), dense_s =
    Sa_util.Timing.time (fun () -> dense := Sinr_graph.thm13_graph sys prm)
  in
  let sparse = ref (Weighted.create 0) in
  let ((), ctr), sparse_s =
    Sa_util.Timing.time (fun () ->
        with_counter_delta (fun () ->
            sparse := Sinr_graph.thm13_graph_sparse ~w_min sys prm))
  in
  let dense = !dense and sparse = !sparse in
  (* parity: every stored sparse entry is bitwise equal to the dense one,
     nothing at or above the floor was dropped, and each row's missing
     in-weight stays within its certified bound (fp-summation slack only) *)
  let agree = ref true in
  let max_bound = ref 0.0 in
  for v = 0 to n - 1 do
    let dense_sum = ref 0.0 in
    for u = 0 to n - 1 do
      if u <> v then begin
        let dw = Weighted.w dense u v and sw = Weighted.w sparse u v in
        dense_sum := !dense_sum +. dw;
        if sw > 0.0 && sw <> dw then agree := false;
        if sw = 0.0 && dw >= w_min then agree := false
      end
    done;
    let bound = Weighted.dropped_in_bound sparse v in
    if bound > !max_bound then max_bound := bound;
    let gap = !dense_sum -. Weighted.in_weight sparse v in
    if gap > bound +. (1e-6 *. (1.0 +. bound)) then agree := false
  done;
  let bound_cap = w_min *. float_of_int n in
  if !max_bound > bound_cap then agree := false;
  let speedup = dense_s /. sparse_s in
  let density =
    float_of_int (Weighted.nnz sparse) /. float_of_int (max 1 (n * (n - 1) / 2))
  in
  Printf.printf
    "  thm13  n=%4d: dense %.4fs  sparse %.4fs  (%.1fx, nnz=%d, %.1f%% of pairs, \
     max row bound %.3f <= %.1f, agree=%b)\n%!"
    n dense_s sparse_s speedup (Weighted.nnz sparse) (100.0 *. density) !max_bound
    bound_cap !agree;
  Printf.sprintf
    "{\"n\":%d,\"w_min\":%.6f,\"nnz\":%d,\"dense_seconds\":%.6f,\
     \"sparse_seconds\":%.6f,\"speedup\":%.3f,\"max_dropped_in_bound\":%.6f,\
     \"dropped_in_cap\":%.6f,\"agree\":%b,\"counters\":%s}"
    n w_min (Weighted.nnz sparse) dense_s sparse_s speedup !max_bound bound_cap
    !agree (Export.counters_to_json ctr)

let construction_bench ~quick ~out =
  Printf.printf "construction (%s):\n%!" (if quick then "quick" else "full");
  let disk_sizes = if quick then [ 200; 1000 ] else [ 200; 1000; 4000 ] in
  let disk_json =
    String.concat "," (List.map (fun n -> construction_disk_case ~n) disk_sizes)
  in
  let thm13_json = construction_thm13_case ~n:(if quick then 300 else 1000) in
  let json =
    Bench_util.group_json ~name:"construction" ~quick
      [ ("disk", "[" ^ disk_json ^ "]"); ("thm13", thm13_json) ]
  in
  Bench_util.write_out ~out json

(* ---- resilience: fault-injection overhead vs fault-free baseline ---------- *)

module Faultgen = Sa_engine.Faultgen

let resilience_workload ~quick =
  if quick then
    [
      Workload.spec ~model:Workload.Disk ~n:12 ~k:2 ~seed:41 ~repeat:4 ();
      Workload.spec ~model:Workload.Protocol ~n:10 ~k:2 ~seed:44
        ~algorithm:Engine.Lp_round ~repeat:3 ();
    ]
  else
    [
      Workload.spec ~model:Workload.Disk ~n:36 ~k:4 ~seed:41 ~repeat:10 ();
      Workload.spec ~model:Workload.Disk ~n:30 ~k:3 ~seed:42
        ~algorithm:Engine.Lp_round ~repeat:8 ();
      Workload.spec ~model:Workload.Disk ~n:32 ~k:4 ~seed:43
        ~algorithm:Engine.Greedy_lp ~repeat:6 ();
      Workload.spec ~model:Workload.Protocol ~n:24 ~k:3 ~seed:44 ~repeat:6 ();
    ]

(* One serving pass at a given fault rate: a fresh warm-started engine, the
   default retry/fallback policy, and the per-phase counter delta so each
   rate reports the faults it actually injected. *)
let resilience_case jobs ?rate () =
  let faults =
    Option.map (fun rate -> Faultgen.create ~seed:7 ~rate ()) rate
  in
  let policy = Engine.policy ~max_retries:1 ~fallback:true ?faults () in
  let run () =
    with_counter_delta (fun () ->
        Engine.run_batch ~policy (Engine.create ~warm_start:true ()) jobs)
  in
  ignore (run ());
  (* measured pass, after a throwaway pass warmed up code paths *)
  let (results, s), ctr = run () in
  let ctr_of name = Option.value ~default:0 (List.assoc_opt name ctr) in
  let json =
    Printf.sprintf
      "{\"fault_rate\":%s,\"wall_seconds\":%.6f,\"total_welfare\":%.6f,\
       \"served_lp\":%d,\"served_greedy\":%d,\"served_online\":%d,\
       \"failed\":%d,\"retries\":%d,\"deadline_hits\":%d,\
       \"faults_injected\":%d}"
      (match rate with None -> "0.0" | Some r -> Printf.sprintf "%.2f" r)
      s.Engine.wall_seconds s.Engine.total_welfare s.Engine.served_lp
      s.Engine.served_greedy s.Engine.served_online s.Engine.failed
      s.Engine.retries s.Engine.deadline_hits
      (ctr_of "engine.faults.injected")
  in
  Printf.printf
    "  rate %s: %7.4fs  welfare %9.3f  tiers lp %d / greedy %d / online %d  \
     retries %d  injected %d\n%!"
    (match rate with None -> "off " | Some r -> Printf.sprintf "%.2f" r)
    s.Engine.wall_seconds s.Engine.total_welfare s.Engine.served_lp
    s.Engine.served_greedy s.Engine.served_online s.Engine.retries
    (ctr_of "engine.faults.injected");
  (json, results, s)

let resilience_bench ~quick ~out =
  Printf.printf "resilience (%s):\n%!" (if quick then "quick" else "full");
  let expander = Engine.create ~warm_start:false () in
  let jobs = Workload.expand expander (resilience_workload ~quick) in
  let njobs = List.length jobs in
  let base_json, _, base = resilience_case jobs () in
  let r25_json, _, _ = resilience_case jobs ~rate:0.25 () in
  let r50_json, r50_results, r50 = resilience_case jobs ~rate:0.5 () in
  (* same-seed reproducibility: a second rate-0.5 pass must serialise to
     the identical per-job JSON (the check.sh diff contract) *)
  let _, r50_results', _ = resilience_case jobs ~rate:0.5 () in
  let deterministic =
    Engine.results_to_json r50_results = Engine.results_to_json r50_results'
  in
  let all_served = r50.Engine.failed = 0 in
  let ratio a b = if b > 0.0 then a /. b else Float.nan in
  let overhead = ratio r50.Engine.wall_seconds base.Engine.wall_seconds in
  let welfare_ratio = ratio r50.Engine.total_welfare base.Engine.total_welfare in
  Printf.printf
    "  rate 0.50 vs fault-free: wall %.2fx  welfare %.3fx  all served %b  \
     deterministic %b\n"
    overhead welfare_ratio all_served deterministic;
  let json =
    Bench_util.group_json ~name:"resilience" ~quick
      [
        ("jobs", string_of_int njobs);
        ("baseline", base_json);
        ("rate_025", r25_json);
        ("rate_050", r50_json);
        ("wall_overhead_050_over_baseline", Printf.sprintf "%.4f" overhead);
        ("welfare_ratio_050_over_baseline", Printf.sprintf "%.4f" welfare_ratio);
        ("all_jobs_served_at_050", string_of_bool all_served);
        ("same_seed_deterministic", string_of_bool deterministic);
      ]
  in
  Bench_util.write_out ~out json

(* ---- observability: tracing + event-log overhead -------------------------- *)

module Trace = Sa_telemetry.Trace
module Eventlog = Sa_telemetry.Eventlog

(* Same workload as the engine bench, run with all observability sinks off
   vs on (span ring + histograms + decision event log).  Passes are
   interleaved and the minimum is taken on both sides: the container often
   has a single CPU, so min-of-interleaved cancels scheduler drift that
   would otherwise dominate a <5% effect. *)
let observability_bench ~quick ~out =
  Printf.printf "observability (%s):\n%!" (if quick then "quick" else "full");
  let expander = Engine.create ~warm_start:false () in
  let jobs = Workload.expand expander (engine_workload ~quick) in
  let njobs = List.length jobs in
  Trace.set_capacity 65536;
  (* Each timed sample repeats the whole batch: a single batch is ~10ms,
     too short to resolve a few-percent effect against scheduler jitter. *)
  let reps = if quick then 3 else 8 in
  let run_disabled () =
    Trace.set_enabled false;
    Eventlog.install None;
    let total = ref 0.0 in
    for _ = 1 to reps do
      let s = snd (Engine.run_batch (Engine.create ~warm_start:true ()) jobs) in
      total := !total +. s.Engine.wall_seconds
    done;
    !total
  in
  let run_enabled () =
    Trace.set_enabled true;
    Trace.clear ();
    let total = ref 0.0 in
    let last = ref (Eventlog.create ()) in
    for _ = 1 to reps do
      let t = Eventlog.create () in
      Eventlog.install (Some t);
      let s = snd (Engine.run_batch (Engine.create ~warm_start:true ()) jobs) in
      total := !total +. s.Engine.wall_seconds;
      last := t
    done;
    Eventlog.install None;
    (!total, !last)
  in
  ignore (run_disabled ());
  ignore (run_enabled ());
  let passes = if quick then 3 else 5 in
  let disabled = ref infinity and enabled = ref infinity in
  let events = ref 0 and spans = ref 0 in
  let first_log = ref "" in
  let deterministic = ref true in
  for pass = 1 to passes do
    let off_s = run_disabled () in
    disabled := Float.min !disabled off_s;
    let on_s, t = run_enabled () in
    enabled := Float.min !enabled on_s;
    events := List.length (Eventlog.events t);
    spans := List.length (Trace.recent ());
    let log = Eventlog.to_jsonl t in
    if pass = 1 then first_log := log
    else if log <> !first_log then deterministic := false
  done;
  let chrome = Export.spans_to_chrome (Trace.recent ()) in
  let chrome_events =
    match Export.validate_chrome chrome with
    | n -> n
    | exception Export.Parse_error _ -> -1
  in
  let overhead = if !disabled > 0.0 then !enabled /. !disabled else Float.nan in
  Printf.printf "  %d jobs x%d reps, %d interleaved passes (min taken)\n" njobs
    reps passes;
  Printf.printf "  tracing off: %.4fs   tracing+events on: %.4fs   (%.3fx)\n"
    !disabled !enabled overhead;
  Printf.printf
    "  %d spans/pass, %d events/batch  chrome valid %b  \
     events deterministic %b\n"
    !spans !events (chrome_events >= 0) !deterministic;
  let json =
    Bench_util.group_json ~name:"observability" ~quick
      [
        ("jobs", string_of_int njobs);
        ("reps", string_of_int reps);
        ("passes", string_of_int passes);
        ("disabled_wall_seconds", Printf.sprintf "%.6f" !disabled);
        ("enabled_wall_seconds", Printf.sprintf "%.6f" !enabled);
        ("overhead_ratio", Printf.sprintf "%.4f" overhead);
        ("spans_recorded", string_of_int !spans);
        ("events_logged", string_of_int !events);
        ("chrome_events", string_of_int chrome_events);
        ("chrome_trace_valid", string_of_bool (chrome_events >= 0));
        ("events_deterministic", string_of_bool !deterministic);
      ]
  in
  Bench_util.write_out ~out json

(* ---- scheduler: persistent pool vs spawn-per-call fan-out ------------------ *)

module Fanout = Sa_core.Fanout

(* The pre-pool [Fanout.map_array] (spawn d-1 domains per call, static
   striding, option-boxed results), kept verbatim here so the baseline
   stays fixed regardless of how lib/core evolves. *)
let spawn_map_array ~domains f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else
    let d = min domains n in
    if d = 1 then Array.map f arr
    else begin
      let results = Array.make n None in
      let worker shard () =
        let i = ref shard in
        while !i < n do
          results.(!i) <- Some (f arr.(!i));
          i := !i + d
        done
      in
      let doms = List.init (d - 1) (fun s -> Domain.spawn (worker (s + 1))) in
      worker 0 ();
      List.iter Domain.join doms;
      Array.map (function Some v -> v | None -> assert false) results
    end

(* (a) per-call latency: many calls over a batch of small items, where the
   fixed cost of standing up domains dominates the old path. *)
let scheduler_small_batch ~quick ~domains =
  let calls = if quick then 60 else 300 in
  let n = 64 in
  let arr = Array.init n (fun i -> i) in
  let f x =
    let acc = ref x in
    for j = 1 to 60 do
      acc := ((!acc * 31) + j) land 0xFFFFFF
    done;
    !acc
  in
  let expected = Array.map f arr in
  (* throwaway: warm up code paths and park the pool workers *)
  ignore (spawn_map_array ~domains f arr);
  ignore (Fanout.map_array ~domains f arr);
  let parity = ref true in
  let time_calls map =
    let (), s =
      Sa_util.Timing.time (fun () ->
          for _ = 1 to calls do
            if map f arr <> expected then parity := false
          done)
    in
    s *. 1e6 /. float_of_int calls
  in
  let spawn_us = time_calls (fun f a -> spawn_map_array ~domains f a) in
  let pool_us = time_calls (fun f a -> Fanout.map_array ~domains f a) in
  let speedup = if pool_us > 0.0 then spawn_us /. pool_us else Float.nan in
  Printf.printf
    "  small-batch x%d (n=%d, d=%d): spawn %8.1f us/call  pool %8.1f us/call  \
     (%.1fx, parity=%b)\n%!"
    calls n domains spawn_us pool_us speedup !parity;
  Printf.sprintf
    "{\"calls\":%d,\"items\":%d,\"domains\":%d,\"spawn_per_call_us\":%.3f,\
     \"pool_per_call_us\":%.3f,\"speedup_pool_over_spawn\":%.3f,\"parity\":%b}"
    calls n domains spawn_us pool_us speedup !parity

(* (b) skewed-cost batch: a few items are ~500x the rest, so static
   striding parks whole shards behind the heavy items while the pool's
   self-scheduling cursor (and steals) keep every participant busy. *)
let scheduler_skewed ~quick ~domains =
  let n = if quick then 96 else 192 in
  let heavy = if quick then 60_000 else 150_000 in
  let f i =
    let spins = if i mod 16 = 0 then heavy else 300 in
    let acc = ref 0 in
    for j = 1 to spins do
      acc := (!acc + (i * j)) land 0xFFFF
    done;
    !acc
  in
  let arr = Array.init n Fun.id in
  let expected = Array.map f arr in
  ignore (spawn_map_array ~domains f arr);
  ignore (Fanout.map_array ~domains f arr);
  let parity = ref true in
  let reps = 3 in
  let time_min map =
    let best = ref infinity in
    for _ = 1 to reps do
      let (), s =
        Sa_util.Timing.time (fun () -> if map f arr <> expected then parity := false)
      in
      if s < !best then best := s
    done;
    !best
  in
  let static_s = time_min (fun f a -> spawn_map_array ~domains f a) in
  let adaptive_s = time_min (fun f a -> Fanout.map_array ~domains f a) in
  let chunk1_s = time_min (fun f a -> Fanout.map_array ~domains ~chunk:1 f a) in
  let ratio = if adaptive_s > 0.0 then static_s /. adaptive_s else Float.nan in
  Printf.printf
    "  skewed n=%d (d=%d): static-stride %.4fs  pool-adaptive %.4fs  \
     pool-chunk1 %.4fs  (static/adaptive %.2fx, parity=%b)\n%!"
    n domains static_s adaptive_s chunk1_s ratio !parity;
  Printf.sprintf
    "{\"items\":%d,\"domains\":%d,\"reps\":%d,\"static_stride_seconds\":%.6f,\
     \"pool_adaptive_seconds\":%.6f,\"pool_chunk1_seconds\":%.6f,\
     \"ratio_static_over_adaptive\":%.3f,\"parity\":%b}"
    n domains reps static_s adaptive_s chunk1_s ratio !parity

(* (c) cross-job column pool on an exact-repeat oracle workload: seeded
   jobs must cut colgen rounds and reproduce the cold run byte for byte
   (exact repeats re-solve the identical final master LP). *)
let scheduler_column_pool ~quick =
  let specs =
    [
      Workload.spec ~model:Workload.Clique ~n:(if quick then 20 else 24) ~k:4
        ~seed:9 ~algorithm:Engine.Oracle_round ~repeat:(if quick then 4 else 8)
        ~revalue_bids:false ();
    ]
  in
  let expander = Engine.create ~warm_start:false () in
  let jobs = Workload.expand expander specs in
  let njobs = List.length jobs in
  let run ~column_pool ~domains =
    with_counter_delta (fun () ->
        Engine.run_batch ~domains (Engine.create ~warm_start:false ~column_pool ())
          jobs)
  in
  ignore (run ~column_pool:true ~domains:1);
  let (cold_res, cold_sum), _ = run ~column_pool:false ~domains:1 in
  let (pool_res, pool_sum), pool_ctr = run ~column_pool:true ~domains:1 in
  let ctr_of name = Option.value ~default:0 (List.assoc_opt name pool_ctr) in
  let objectives_bitwise =
    Array.length cold_res = Array.length pool_res
    && Array.for_all2
         (fun (a : Engine.result) (b : Engine.result) ->
           Int64.bits_of_float a.Engine.lp_objective
           = Int64.bits_of_float b.Engine.lp_objective)
         cold_res pool_res
  in
  let bytes_identical =
    Engine.results_to_json cold_res = Engine.results_to_json pool_res
  in
  (* same-seed determinism at every domain count: two identical passes must
     serialise identically.  Exact repeats make this interleaving-proof —
     a seeded and an unseeded solve of the same job agree byte for byte,
     so it does not matter which jobs happened to hit the pool. *)
  let determinism =
    List.map
      (fun domains ->
        let (r1, _), _ = run ~column_pool:true ~domains in
        let (r2, _), _ = run ~column_pool:true ~domains in
        let same = Engine.results_to_json r1 = Engine.results_to_json r2 in
        (domains, same))
      [ 1; 2; 4 ]
  in
  let all_deterministic = List.for_all snd determinism in
  Printf.printf
    "  column-pool %d jobs: cold %d rounds -> pool %d rounds  hits %d  \
     seeded %d cols  bitwise-objectives %b  bytes-identical %b\n%!"
    njobs cold_sum.Engine.lp_iterations pool_sum.Engine.lp_iterations
    (ctr_of "core.colgen.pool.hits")
    (ctr_of "core.colgen.pool.seeded_columns")
    objectives_bitwise bytes_identical;
  List.iter
    (fun (d, same) ->
      Printf.printf "  column-pool determinism d=%d: %b\n%!" d same)
    determinism;
  let det_json =
    String.concat ","
      (List.map
         (fun (d, same) ->
           Printf.sprintf "{\"domains\":%d,\"same_seed_deterministic\":%b}" d same)
         determinism)
  in
  Printf.sprintf
    "{\"jobs\":%d,\"cold_rounds\":%d,\"pool_rounds\":%d,\"rounds_saved\":%d,\
     \"pool_hits\":%d,\"pool_misses\":%d,\"seeded_columns\":%d,\
     \"objectives_bitwise_equal\":%b,\"results_bytes_identical\":%b,\
     \"determinism\":[%s],\"same_seed_deterministic\":%b}"
    njobs cold_sum.Engine.lp_iterations pool_sum.Engine.lp_iterations
    (cold_sum.Engine.lp_iterations - pool_sum.Engine.lp_iterations)
    (ctr_of "core.colgen.pool.hits")
    (ctr_of "core.colgen.pool.misses")
    (ctr_of "core.colgen.pool.seeded_columns")
    objectives_bitwise bytes_identical det_json all_deterministic

let scheduler_bench ~quick ~out ~domains =
  Printf.printf "scheduler (%s, domains=%d):\n%!"
    (if quick then "quick" else "full")
    domains;
  let small_json = scheduler_small_batch ~quick ~domains in
  let skewed_json = scheduler_skewed ~quick ~domains in
  let colpool_json = scheduler_column_pool ~quick in
  let json =
    Bench_util.group_json ~name:"scheduler" ~quick
      [
        ("domains", string_of_int domains);
        ("small_batch", small_json);
        ("skewed", skewed_json);
        ("column_pool", colpool_json);
      ]
  in
  Bench_util.write_out ~out json

(* ---- pricing: devex vs Dantzig + workspace reuse vs fresh ------------------ *)

module Revised = Sa_lp.Revised
module Workspace = Sa_lp.Workspace

(* One cold solve of the packing LP under a pricing rule: pivots, wall
   time, allocation, certification.  A throwaway solve first warms up code
   paths and the domain arena, so the measured pass shows steady-state
   allocation. *)
let pricing_rule_case p ~pricing ~label =
  ignore (Revised.solve_warm ~pricing p);
  let alloc0 = Gc.allocated_bytes () in
  let ((sol, _basis, stats), ctr), seconds =
    Sa_util.Timing.time (fun () ->
        with_counter_delta (fun () -> Revised.solve_warm ~pricing p))
  in
  let alloc_bytes = Gc.allocated_bytes () -. alloc0 in
  let certified = (Sa_lp.Certify.check p sol).Sa_lp.Certify.certified in
  Printf.printf "  %-8s %8.4fs  %6d pivots  obj %12.6f  certified %b\n%!" label
    seconds stats.Revised.iterations sol.Simplex.objective certified;
  let json =
    Printf.sprintf
      "{\"pivots\":%d,\"seconds\":%.6f,\"objective\":%.9f,\
       \"alloc_bytes\":%.0f,\"certified\":%b,\"counters\":%s}"
      stats.Revised.iterations seconds sol.Simplex.objective alloc_bytes
      certified
      (Export.counters_to_json ctr)
  in
  (json, stats.Revised.iterations, sol, certified)

(* Colgen-style warm re-solves of the same master LP: solve once cold for
   the optimal basis, then re-solve [reps] times warm-started from it —
   once sharing a single arena (the oracle-solver pattern) and once with a
   fresh arena per re-solve (the pre-workspace behaviour). *)
let pricing_workspace_case p ~reps =
  let run ~shared =
    let arena = Workspace.create () in
    let _, basis, _ = Revised.solve_warm ~workspace:arena p in
    let basis =
      match basis with
      | Some b -> b
      | None -> failwith "pricing bench: packing LP did not reach optimality"
    in
    let objs = Array.make reps 0.0 in
    let x0 = ref [||] in
    let alloc0 = Gc.allocated_bytes () in
    let (), seconds =
      Sa_util.Timing.time (fun () ->
          for i = 0 to reps - 1 do
            let ws = if shared then arena else Workspace.create () in
            let sol, _, _ =
              Revised.solve_warm ~warm_start:basis ~workspace:ws p
            in
            objs.(i) <- sol.Simplex.objective;
            if i = 0 then x0 := sol.Simplex.x
          done)
    in
    let per_solve = (Gc.allocated_bytes () -. alloc0) /. float_of_int reps in
    (per_solve, seconds /. float_of_int reps, objs, !x0)
  in
  let fresh_b, fresh_s, fresh_objs, fresh_x = run ~shared:false in
  let reuse_b, reuse_s, reuse_objs, reuse_x = run ~shared:true in
  let bitwise = fresh_objs = reuse_objs && fresh_x = reuse_x in
  let alloc_ratio = if reuse_b > 0.0 then fresh_b /. reuse_b else Float.nan in
  Printf.printf
    "  re-solve x%d: fresh %10.0f B  %8.1f us   reuse %10.0f B  %8.1f us  \
     (%.1fx less alloc, bitwise %b)\n%!"
    reps fresh_b (fresh_s *. 1e6) reuse_b (reuse_s *. 1e6) alloc_ratio bitwise;
  let json =
    Printf.sprintf
      "{\"resolves\":%d,\"fresh_alloc_bytes_per_solve\":%.0f,\
       \"fresh_seconds_per_solve\":%.9f,\"reuse_alloc_bytes_per_solve\":%.0f,\
       \"reuse_seconds_per_solve\":%.9f,\"alloc_ratio_fresh_over_reuse\":%.3f,\
       \"bitwise_equal\":%b}"
      reps fresh_b fresh_s reuse_b reuse_s alloc_ratio bitwise
  in
  (json, alloc_ratio, bitwise)

let pricing_bench ~quick ~out =
  Printf.printf "pricing (%s):\n%!" (if quick then "quick" else "full");
  let p = packing_problem ~quick in
  let rows = Array.length p.Simplex.rows in
  let cols = Array.length p.Simplex.c in
  Printf.printf "  %dx%d packing LP\n%!" rows cols;
  let d_json, d_pivots, d_sol, d_cert =
    pricing_rule_case p ~pricing:Revised.Dantzig ~label:"dantzig"
  in
  let x_json, x_pivots, x_sol, x_cert =
    pricing_rule_case p ~pricing:Revised.Devex ~label:"devex"
  in
  let savings =
    1.0 -. (float_of_int x_pivots /. float_of_int (max 1 d_pivots))
  in
  let obj_delta = Float.abs (d_sol.Simplex.objective -. x_sol.Simplex.objective) in
  let parity =
    d_cert && x_cert
    && obj_delta <= 1e-6 *. (1.0 +. Float.abs d_sol.Simplex.objective)
  in
  Printf.printf
    "  devex pivot savings: %.1f%%   objective delta %.2e   parity %b\n%!"
    (100.0 *. savings) obj_delta parity;
  let ws_json, alloc_ratio, ws_bitwise =
    pricing_workspace_case p ~reps:(if quick then 5 else 20)
  in
  ignore (alloc_ratio, ws_bitwise);
  let json =
    Bench_util.group_json ~name:"pricing" ~quick
      [
        ("rows", string_of_int rows);
        ("cols", string_of_int cols);
        ("dantzig", d_json);
        ("devex", x_json);
        ("devex_pivot_savings", Printf.sprintf "%.4f" savings);
        ("objective_delta", Printf.sprintf "%.9f" obj_delta);
        ("certified_parity", string_of_bool parity);
        ("workspace", ws_json);
      ]
  in
  Bench_util.write_out ~out json

(* ---- presolve: reduction/scaling pipeline in front of the simplex --------- *)

module Presolve = Sa_lp.Presolve

(* The duplicate-heavy packing LP: the shared 1200x1000 instance plus the
   redundancy real auction LPs accumulate across rounds — exact duplicate
   interference rows at equal rhs (degenerate ratio-test ties), dominated
   duplicate columns at a smaller objective coefficient (bids shaded by a
   losing bidder), trivially satisfied empty rows, and pairs of singleton
   bound rows where only the tighter one matters.  Presolve removes all of
   it; the off-path simplex has to pivot through it. *)
let presolve_problem ~quick =
  let p = packing_problem ~quick in
  let g = Prng.create ~seed:29 in
  let ncols0 = Array.length p.Simplex.c in
  let rows0 = p.Simplex.rows in
  let m0 = Array.length rows0 in
  (* duplicate columns copy sources from the first half of the column
     range; singleton rows target the second half, so an injected bound
     row never splits a duplicate pair's support. *)
  let ndup_cols = ncols0 / 4 in
  let src = Array.init ndup_cols (fun _ -> Prng.int g (ncols0 / 2)) in
  let ncols = ncols0 + ndup_cols in
  let extend a =
    Array.init ncols (fun j ->
        if j < ncols0 then a.(j) else a.(src.(j - ncols0)))
  in
  let c =
    Array.init ncols (fun j ->
        if j < ncols0 then p.Simplex.c.(j)
        else 0.5 *. p.Simplex.c.(src.(j - ncols0)))
  in
  let base = Array.map (fun (a, rel, b) -> (extend a, rel, b)) rows0 in
  let dup_src = Array.init (m0 / 4) (fun _ -> Prng.int g m0) in
  let dup_rows =
    Array.map
      (fun srow ->
        let (a, rel, b) = base.(srow) in
        (Array.copy a, rel, b))
      dup_src
  in
  let zero_rows =
    Array.init (if quick then 6 else 20) (fun _ ->
        (Array.make ncols 0.0, Simplex.Le, 1.0 +. Prng.float g 1.0))
  in
  let singleton_pairs =
    Array.init (2 * if quick then 10 else 30) (fun i ->
        let col = (ncols0 / 2) + Prng.int g (ncols0 / 2) in
        let a = Array.make ncols 0.0 in
        a.(col) <- 1.0;
        (* even index: a plausibly binding bound; odd: a looser duplicate
           of the same shape that presolve drops *)
        (a, Simplex.Le, (if i land 1 = 0 then 1.0 else 2.0) +. Prng.float g 0.5))
  in
  let rows =
    Array.concat [ base; dup_rows; zero_rows; singleton_pairs ]
  in
  (* power-of-two scale skew — bids and interference budgets quoted in
     mixed units.  Presolve's equilibration undoes it losslessly; the
     off-path simplex prices straight through it.  Duplicate rows reuse
     their source row's factor and duplicate columns their source
     column's, so the dedup and domination passes still fire on exact
     patterns. *)
  (* +-3 dyadic decades at quick size; +-2 at full, where the 1580-row
     Dantzig path is already long enough that harsher skew tips it into
     the Bland anti-cycling crawl and the bench stops terminating in
     reasonable time. *)
  let emax = if quick then 3 else 2 in
  let pow2 () = Float.ldexp 1.0 (Prng.int g ((2 * emax) + 1) - emax) in
  let rscale =
    Array.init (Array.length rows) (fun i ->
        if i >= m0 && i < m0 + Array.length dup_rows then 1.0 else pow2 ())
  in
  Array.iteri (fun d srow -> rscale.(m0 + d) <- rscale.(srow)) dup_src;
  let cscale =
    Array.init ncols (fun j -> if j < ncols0 then pow2 () else 0.0)
  in
  for d = 0 to ndup_cols - 1 do
    cscale.(ncols0 + d) <- cscale.(src.(d))
  done;
  let c = Array.mapi (fun j cj -> cj *. cscale.(j)) c in
  let rows =
    Array.mapi
      (fun i (a, rel, b) ->
        (Array.mapi (fun j v -> v *. rscale.(i) *. cscale.(j)) a, rel,
         b *. rscale.(i)))
      rows
  in
  { Simplex.direction = Simplex.Maximize; c; rows }

(* One pricing rule, presolve off vs on: one cold solve per side on a
   fresh workspace — pivot counts are deterministic, and both sides pay
   the same cold-code cost so the wall comparison stays fair without a
   warm-up pass (which would double a deliberately slow off-path solve).
   The on-side timing includes reduce + postsolve — the savings reported
   are end-to-end, not simplex-only. *)
let presolve_rule_case orig spec ~pricing ~label =
  let off () =
    let ws = Workspace.create () in
    Revised.solve_spec ~pricing ~workspace:ws spec
  in
  let on () =
    let ws = Workspace.create () in
    match Presolve.reduce ~workspace:ws spec with
    | None -> failwith "presolve bench: instance did not reduce"
    | Some (reduced, pr) ->
        let sol, _, stats = Revised.solve_spec ~pricing ~workspace:ws reduced in
        (Presolve.postsolve pr sol, stats, Presolve.info pr, reduced)
  in
  let (off_sol, _, off_stats), off_s = Sa_util.Timing.time off in
  let (on_sol, on_stats, info, reduced), on_s = Sa_util.Timing.time on in
  let off_cert = (Sa_lp.Certify.check orig off_sol).Sa_lp.Certify.certified in
  let on_cert = (Sa_lp.Certify.check orig on_sol).Sa_lp.Certify.certified in
  let off_p = off_stats.Revised.iterations
  and on_p = on_stats.Revised.iterations in
  let pivot_savings = 1.0 -. (float_of_int on_p /. float_of_int (max 1 off_p)) in
  let wall_savings = if off_s > 0.0 then 1.0 -. (on_s /. off_s) else 0.0 in
  let obj_delta =
    Float.abs (off_sol.Simplex.objective -. on_sol.Simplex.objective)
  in
  let parity =
    off_cert && on_cert
    && obj_delta <= 1e-6 *. (1.0 +. Float.abs off_sol.Simplex.objective)
  in
  Printf.printf
    "  %-8s off %6d pivots %8.4fs   on %6d pivots %8.4fs  (%dx%d reduced)  \
     pivots -%.1f%%  wall -%.1f%%  parity %b\n%!"
    label off_p off_s on_p on_s reduced.Revised.s_m reduced.Revised.s_nstruct
    (100.0 *. pivot_savings) (100.0 *. wall_savings) parity;
  let json =
    Printf.sprintf
      "{\"off\":{\"pivots\":%d,\"seconds\":%.6f,\"objective\":%.9f,\
       \"certified\":%b},\"on\":{\"pivots\":%d,\"seconds\":%.6f,\
       \"objective\":%.9f,\"certified\":%b},\"pivot_savings\":%.4f,\
       \"wall_savings\":%.4f,\"objective_delta\":%.9f,\"parity\":%b}"
      off_p off_s off_sol.Simplex.objective off_cert on_p on_s
      on_sol.Simplex.objective on_cert pivot_savings wall_savings obj_delta
      parity
  in
  (json, info, pivot_savings, parity)

(* Column generation with presolve in front of every master re-solve: the
   masters are small and dense in useful columns, so the win here is
   bounded — the case documents that composing presolve with warm starts
   and incremental pricing keeps the certified optimum intact. *)
let presolve_colgen_case ~quick =
  let inst =
    Workloads.protocol_instance ~seed:31 ~n:(if quick then 14 else 24)
      ~k:(if quick then 3 else 5) ~profile:Workloads.Mixed ()
  in
  let run presolve () = Oracle.solve ~presolve inst in
  ignore (run false ());
  let (off_frac, off_stats), off_s = Sa_util.Timing.time (run false) in
  ignore (run true ());
  let (on_frac, on_stats), on_s = Sa_util.Timing.time (run true) in
  let obj_delta = Float.abs (off_frac.Lp.objective -. on_frac.Lp.objective) in
  let parity =
    obj_delta <= 1e-6 *. (1.0 +. Float.abs off_frac.Lp.objective)
  in
  Printf.printf
    "  colgen   off %4d rounds %8.4fs   on %4d rounds %8.4fs  \
     obj delta %.2e  parity %b\n%!"
    off_stats.Oracle.iterations off_s on_stats.Oracle.iterations on_s obj_delta
    parity;
  let json =
    Printf.sprintf
      "{\"off\":{\"rounds\":%d,\"seconds\":%.6f,\"objective\":%.9f},\
       \"on\":{\"rounds\":%d,\"seconds\":%.6f,\"objective\":%.9f},\
       \"objective_delta\":%.9f,\"parity\":%b}"
      off_stats.Oracle.iterations off_s off_frac.Lp.objective
      on_stats.Oracle.iterations on_s on_frac.Lp.objective obj_delta parity
  in
  (json, parity)

let presolve_bench ~quick ~out =
  Printf.printf "presolve (%s):\n%!" (if quick then "quick" else "full");
  let p = presolve_problem ~quick in
  let rows = Array.length p.Simplex.rows in
  let cols = Array.length p.Simplex.c in
  Printf.printf "  %dx%d duplicate-heavy packing LP\n%!" rows cols;
  let spec = Revised.spec_of_problem p in
  let d_json, info, d_savings, d_parity =
    presolve_rule_case p spec ~pricing:Revised.Dantzig ~label:"dantzig"
  in
  let x_json, _, x_savings, x_parity =
    presolve_rule_case p spec ~pricing:Revised.Devex ~label:"devex"
  in
  let colgen_json, colgen_parity = presolve_colgen_case ~quick in
  let certified_parity = d_parity && x_parity && colgen_parity in
  Printf.printf
    "  reductions: %d rows removed (%d duplicates), %d cols removed, %d \
     scaling passes   certified_parity %b\n%!"
    info.Presolve.rows_removed info.Presolve.duplicates
    info.Presolve.cols_removed info.Presolve.scaling_passes certified_parity;
  let reduction_json =
    Printf.sprintf
      "{\"rows_removed\":%d,\"cols_removed\":%d,\"duplicates\":%d,\
       \"scaling_passes\":%d}"
      info.Presolve.rows_removed info.Presolve.cols_removed
      info.Presolve.duplicates info.Presolve.scaling_passes
  in
  let json =
    Bench_util.group_json ~name:"presolve" ~quick
      [
        ("rows", string_of_int rows);
        ("cols", string_of_int cols);
        ("reduction", reduction_json);
        ("dantzig", d_json);
        ("devex", x_json);
        ("pivot_savings", Printf.sprintf "%.4f" d_savings);
        ("devex_pivot_savings", Printf.sprintf "%.4f" x_savings);
        ("colgen", colgen_json);
        ("certified_parity", string_of_bool certified_parity);
      ]
  in
  Bench_util.write_out ~out json

(* ---- runner + textual report --------------------------------------------- *)

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Toolkit.Instance.monotonic_clock raw

let micro_benchmarks () =
  Printf.printf "Benchmarks: one group per experiment family (see DESIGN.md)\n";
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 52 '-');
  let results = benchmark () in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> Float.nan
      in
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-36s %14s\n" name pretty)
    rows

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let find_flag flag default = Bench_util.find_flag argv flag default in
  if List.mem "pricing" argv then
    let out = find_flag "--pricing-out" "BENCH_pricing.json" in
    pricing_bench ~quick ~out
  else if List.mem "presolve" argv then
    let out = find_flag "--presolve-out" "BENCH_presolve.json" in
    presolve_bench ~quick ~out
  else if List.mem "construction" argv then
    let out = find_flag "--construction-out" "BENCH_construction.json" in
    construction_bench ~quick ~out
  else if List.mem "resilience" argv then
    let out = find_flag "--resilience-out" "BENCH_resilience.json" in
    resilience_bench ~quick ~out
  else if List.mem "observability" argv then
    let out = find_flag "--observability-out" "BENCH_observability.json" in
    observability_bench ~quick ~out
  else if List.mem "scheduler" argv then
    let out = find_flag "--scheduler-out" "BENCH_scheduler.json" in
    let domains = int_of_string (find_flag "--domains" "4") in
    scheduler_bench ~quick ~out ~domains
  else if List.mem "kernels" argv then
    let out = find_flag "--kernels-out" "BENCH_kernels.json" in
    let domains = int_of_string (find_flag "--domains" "4") in
    kernels_bench ~quick ~out ~domains
  else begin
    let out = find_flag "--engine-out" "BENCH_engine.json" in
    if not quick then micro_benchmarks ();
    engine_bench ~quick ~out
  end
