(* Bechamel benchmark harness: one group per experiment family (DESIGN.md §3).

   Measures the runtime of every pipeline stage the experiments use: LP
   construction + solve (explicit and demand-oracle), the three rounding
   algorithms, baselines, exact search, rho computation, SINR graph
   construction, power control, and the Lavi-Swamy decomposition.

   Also times the batch engine (lib/engine) on a repeat-topology workload,
   cold vs warm-started, and writes the comparison to BENCH_engine.json —
   the recorded perf trajectory for the serving path.

   Run with: dune exec bench/main.exe
   Flags: --quick       engine smoke run only (small workload, no bechamel)
          --engine-out  output path for the JSON summary (default
                        BENCH_engine.json) *)

open Bechamel


module Prng = Sa_util.Prng
module Workloads = Sa_exp.Workloads
module Instance = Sa_core.Instance
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Exact = Sa_core.Exact
module Edge_lp = Sa_core.Edge_lp
module Oracle = Sa_core.Oracle_solver
module Decomposition = Sa_mech.Decomposition
module Inductive = Sa_graph.Inductive
module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Link = Sa_wireless.Link
module Sinr = Sa_wireless.Sinr
module Sinr_graph = Sa_wireless.Sinr_graph
module Power_control = Sa_wireless.Power_control
module Placement = Sa_geom.Placement

(* ---- fixtures (built once, outside the staged closures) ----------------- *)

let protocol_inst = Workloads.protocol_instance ~seed:1 ~n:25 ~k:4 ()
let protocol_frac = Lp.solve_explicit protocol_inst

let sinr_inst, _sinr_sys =
  Workloads.sinr_fixed_instance ~seed:2 ~n:20 ~k:3 ~scheme:Sinr.Uniform ()

let sinr_frac = Lp.solve_explicit sinr_inst

let small_inst = Workloads.protocol_instance ~seed:3 ~n:12 ~k:2 ()
let small_frac = Lp.solve_explicit small_inst

let asym_inst = Workloads.asymmetric_instance ~seed:4 ~n:16 ~k:3 ~d:4
let asym_frac = Lp.solve_explicit asym_inst

let mixed_inst =
  Workloads.protocol_instance ~seed:5 ~n:15 ~k:6 ~profile:Workloads.Mixed ()

let clique32 = Graph.clique 32
let clique_weights = Array.make 32 1.0

let pc_links =
  let g = Prng.create ~seed:6 in
  Link.of_point_pairs (Placement.random_links g ~n:30 ~side:40.0 ~min_len:0.5 ~max_len:2.0)

let pc_params = Workloads.sinr_default_params

let pc_set =
  (* a thm13-independent set found greedily *)
  let wg = Sinr_graph.thm13_graph pc_links pc_params in
  let chosen = ref [] in
  for i = 0 to Link.n pc_links - 1 do
    if Weighted.is_independent wg (i :: !chosen) then chosen := i :: !chosen
  done;
  !chosen

let protocol_graph =
  match protocol_inst.Instance.conflict with
  | Instance.Unweighted g -> g
  | Instance.Edge_weighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _ -> assert false

let sinr_wg =
  match sinr_inst.Instance.conflict with
  | Instance.Edge_weighted wg -> wg
  | Instance.Unweighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _ -> assert false

(* ---- tests --------------------------------------------------------------- *)

let stage_with_rng f =
  let counter = ref 0 in
  Staged.stage (fun () ->
      incr counter;
      let g = Prng.create ~seed:!counter in
      f g)

let tests =
  Test.make_grouped ~name:"specauction"
    [
      (* E1: unweighted pipeline *)
      Test.make ~name:"e1/lp-explicit-n25-k4"
        (Staged.stage (fun () -> ignore (Lp.solve_explicit protocol_inst)));
      Test.make ~name:"e1/alg1-n25-k4"
        (stage_with_rng (fun g ->
             ignore (Rounding.algorithm1 g protocol_inst protocol_frac)));
      Test.make ~name:"e1/alg1-adaptive-n25-k4"
        (stage_with_rng (fun g ->
             ignore (Rounding.solve_adaptive ~trials:2 g protocol_inst protocol_frac)));
      (* E2: weighted pipeline *)
      Test.make ~name:"e2/lp-weighted-n20-k3"
        (Staged.stage (fun () -> ignore (Lp.solve_explicit sinr_inst)));
      Test.make ~name:"e2/alg2+3-n20-k3"
        (stage_with_rng (fun g ->
             let p = Rounding.algorithm2 g sinr_inst sinr_frac in
             ignore (Rounding.algorithm3 sinr_inst p)));
      (* E3/E4: rho computation *)
      Test.make ~name:"e3/rho-unweighted-n25"
        (Staged.stage (fun () ->
             ignore
               (Inductive.rho_unweighted protocol_graph
                  protocol_inst.Instance.ordering)));
      Test.make ~name:"e4/rho-weighted-n20"
        (Staged.stage (fun () ->
             ignore
               (Inductive.rho_weighted ~node_limit:100_000 sinr_wg
                  sinr_inst.Instance.ordering)));
      (* E5: SINR graph construction + power control *)
      Test.make ~name:"e5/thm13-graph-n30"
        (Staged.stage (fun () ->
             ignore (Sinr_graph.thm13_graph pc_links pc_params)));
      Test.make ~name:"e5/power-control"
        (Staged.stage (fun () ->
             ignore (Power_control.assign pc_links pc_params pc_set)));
      (* E6: mechanism *)
      Test.make ~name:"e6/decomposition-n12"
        (stage_with_rng (fun g ->
             ignore
               (Decomposition.decompose ~max_rounds:20 ~pricing_trials:4 g
                  small_inst small_frac
                  ~alpha:(Rounding.guarantee small_inst))));
      (* E7: asymmetric *)
      Test.make ~name:"e7/asym-round-n16-k3"
        (stage_with_rng (fun g ->
             ignore (Rounding.algorithm_asymmetric g asym_inst asym_frac)));
      (* E8: baselines *)
      Test.make ~name:"e8/greedy-by-value-n25"
        (Staged.stage (fun () -> ignore (Greedy.by_value protocol_inst)));
      Test.make ~name:"e8/exact-n12-k2"
        (Staged.stage (fun () -> ignore (Exact.solve small_inst)));
      Test.make ~name:"e8/edge-lp-clique32"
        (Staged.stage (fun () ->
             ignore (Edge_lp.solve clique32 ~weights:clique_weights)));
      (* E9: column generation *)
      Test.make ~name:"e9/oracle-colgen-n15-k6"
        (Staged.stage (fun () -> ignore (Oracle.solve mixed_inst)));
      (* E10: derandomized rounding *)
      Test.make ~name:"e10/derand-n12-k2"
        (Staged.stage (fun () ->
             ignore (Sa_core.Derand.algorithm1_derand small_inst small_frac)));
      (* E11: one market epoch (build + LP + round) at ~10 active bidders *)
      Test.make ~name:"e11/market-10-epochs"
        (stage_with_rng (fun g ->
             ignore g;
             let cfg =
               {
                 Sa_sim.Market.default_config with
                 Sa_sim.Market.epochs = 10;
                 arrivals_per_epoch = 3.0;
                 k = 2;
               }
             in
             ignore (Sa_sim.Market.run ~seed:1 cfg)));
      (* LP engine comparison on the same auction LP *)
      Test.make ~name:"lp-engine/dense-n25-k4"
        (Staged.stage (fun () ->
             ignore (Lp.solve_explicit ~engine:Sa_lp.Model.Dense_tableau protocol_inst)));
      Test.make ~name:"lp-engine/revised-n25-k4"
        (Staged.stage (fun () ->
             ignore (Lp.solve_explicit ~engine:Sa_lp.Model.Revised_sparse protocol_inst)));
      (* serialization roundtrip *)
      Test.make ~name:"io/serialize-roundtrip-n25"
        (Staged.stage (fun () ->
             ignore
               (Sa_core.Serialize.instance_of_string
                  (Sa_core.Serialize.instance_to_string protocol_inst))));
    ]

(* ---- batch engine: cold vs warm throughput ------------------------------- *)

module Engine = Sa_engine.Engine
module Workload = Sa_engine.Workload
module Metrics = Sa_telemetry.Metrics
module Export = Sa_telemetry.Export

(* Per-phase counter deltas: snapshot the registry around a run so the cold
   and warm passes each report the hot-path counters they paid for. *)
let counter_delta before after =
  List.filter_map
    (fun (name, v) ->
      let prev = Option.value ~default:0 (List.assoc_opt name before) in
      if v - prev > 0 then Some (name, v - prev) else None)
    after

let with_counter_delta f =
  let before = (Metrics.snapshot ()).Metrics.counters in
  let result = f () in
  let after = (Metrics.snapshot ()).Metrics.counters in
  (result, counter_delta before after)

let engine_workload ~quick =
  if quick then Workload.demo
  else
    [
      Workload.spec ~model:Workload.Protocol ~n:24 ~k:4 ~seed:21 ~repeat:16 ();
      Workload.spec ~model:Workload.Random_graph ~n:20 ~k:3 ~seed:8
        ~algorithm:Engine.Lp_round ~repeat:12 ();
      Workload.spec ~model:Workload.Random_graph ~n:20 ~k:3 ~seed:8
        ~algorithm:Engine.Greedy_lp ~repeat:6 ();
      Workload.spec ~model:Workload.Sinr ~n:14 ~k:2 ~seed:4 ~repeat:8 ();
    ]

let engine_bench ~quick ~out =
  let specs = engine_workload ~quick in
  (* expansion has its own engine so the run engines' cache counters stay
     attributable to the runs themselves *)
  let expander = Engine.create ~warm_start:false () in
  let jobs = Workload.expand expander specs in
  let njobs = List.length jobs in
  let run ~warm_start ~domains =
    with_counter_delta (fun () ->
        snd (Engine.run_batch ~domains (Engine.create ~warm_start ()) jobs))
  in
  (* one throwaway pass so both measured passes see warmed-up code/caches *)
  ignore (run ~warm_start:false ~domains:1);
  let cold, cold_ctr = run ~warm_start:false ~domains:1 in
  let warm, warm_ctr = run ~warm_start:true ~domains:1 in
  let domains = Sa_core.Parallel.default_domains in
  let warm_par, warm_par_ctr = run ~warm_start:true ~domains in
  let ratio a b = if b > 0.0 then a /. b else Float.nan in
  let lp_speedup = ratio cold.Engine.lp_seconds warm.Engine.lp_seconds in
  let pivot_ratio =
    ratio (float_of_int cold.Engine.lp_iterations) (float_of_int warm.Engine.lp_iterations)
  in
  let throughput s = ratio (float_of_int s.Engine.jobs) s.Engine.wall_seconds in
  Printf.printf "\nengine batch (%d jobs%s):\n" njobs (if quick then ", quick" else "");
  Printf.printf "  cold 1-domain : %7.2f jobs/s  %6d pivots  lp %.4fs\n"
    (throughput cold) cold.Engine.lp_iterations cold.Engine.lp_seconds;
  Printf.printf "  warm 1-domain : %7.2f jobs/s  %6d pivots  lp %.4fs  hits %d/%d\n"
    (throughput warm) warm.Engine.lp_iterations warm.Engine.lp_seconds
    warm.Engine.warm_hits warm.Engine.jobs;
  Printf.printf "  warm %d-domain: %7.2f jobs/s  wall %.4fs\n" domains
    (throughput warm_par) warm_par.Engine.wall_seconds;
  Printf.printf "  lp speedup warm/cold: %.2fx   pivot ratio: %.2fx\n" lp_speedup
    pivot_ratio;
  let with_counters ctr s =
    Engine.summary_to_json ~extra:[ ("counters", Export.counters_to_json ctr) ] s
  in
  let json =
    Printf.sprintf
      "{\"benchmark\":\"engine-batch\",\"quick\":%b,\"jobs\":%d,\
       \"parallel_domains\":%d,\"cold\":%s,\"warm\":%s,\"warm_parallel\":%s,\
       \"warm_hit_rate\":%.4f,\"lp_speedup_warm_over_cold\":%.4f,\
       \"pivot_ratio_cold_over_warm\":%.4f,\"telemetry\":%s}\n"
      quick njobs domains
      (with_counters cold_ctr cold)
      (with_counters warm_ctr warm)
      (with_counters warm_par_ctr warm_par)
      (ratio (float_of_int warm.Engine.warm_hits) (float_of_int warm.Engine.jobs))
      lp_speedup pivot_ratio
      (Export.counters_to_json (Metrics.snapshot ()).Metrics.counters)
  in
  let oc = open_out out in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  Printf.printf "  summary written to %s\n" out

(* ---- runner + textual report --------------------------------------------- *)

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Toolkit.Instance.monotonic_clock raw

let micro_benchmarks () =
  Printf.printf "Benchmarks: one group per experiment family (see DESIGN.md)\n";
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 52 '-');
  let results = benchmark () in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> Float.nan
      in
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-36s %14s\n" name pretty)
    rows

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let out =
    let rec find = function
      | "--engine-out" :: path :: _ -> path
      | _ :: rest -> find rest
      | [] -> "BENCH_engine.json"
    in
    find argv
  in
  if not quick then micro_benchmarks ();
  engine_bench ~quick ~out
