(* Shared plumbing for the bench groups in [main.ml]: telemetry counter
   deltas around a measured pass, the BENCH_*.json emission convention
   (header triple + group fields, one line, no external JSON deps), and
   the tiny argv parser every group shares. *)

module Metrics = Sa_telemetry.Metrics

(* Per-phase counter deltas: snapshot the registry around a run so each
   measured pass reports the hot-path counters it paid for. *)
let counter_delta before after =
  List.filter_map
    (fun (name, v) ->
      let prev = Option.value ~default:0 (List.assoc_opt name before) in
      if v - prev > 0 then Some (name, v - prev) else None)
    after

let with_counter_delta f =
  let before = (Metrics.snapshot ()).Metrics.counters in
  let result = f () in
  let after = (Metrics.snapshot ()).Metrics.counters in
  (result, counter_delta before after)

(* Every BENCH_*.json opens with the same header triple; the caller
   supplies the group-specific fields as (key, already-valid JSON)
   pairs, emitted in order. *)
let group_json ~name ~quick fields =
  Printf.sprintf
    "{\"benchmark\":\"%s\",\"quick\":%b,\"recommended_domains\":%d%s}\n" name
    quick
    (Domain.recommended_domain_count ())
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ",\"%s\":%s" k v) fields))

let write_out ~out json =
  let oc = open_out out in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  Printf.printf "  summary written to %s\n" out

let find_flag argv flag default =
  let rec find = function
    | f :: v :: _ when f = flag -> v
    | _ :: rest -> find rest
    | [] -> default
  in
  find argv
