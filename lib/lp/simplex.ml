type relation = Le | Ge | Eq
type direction = Maximize | Minimize

module Tel = Sa_telemetry.Metrics

let m_solves = Tel.counter "lp.simplex.solves"
let m_pivots = Tel.counter "lp.simplex.pivots"

type problem = {
  direction : direction;
  c : float array;
  rows : (float array * relation * float) array;
}

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  x : float array;
  objective : float;
  duals : float array;
}

(* Internal tableau: [rows] is an (m) x (ncols+1) matrix (rhs in the last
   column), [obj] the reduced-cost row (z_j - c_j), [basis.(i)] the column
   basic in row i.  Everything is phrased as maximization. *)
type tableau = {
  m : int;
  ncols : int;
  tab : float array array;
  obj : float array; (* length ncols + 1; last entry is -z *)
  basis : int array;
  artificial : bool array; (* per column *)
}

let feas_eps = Tol.feas_eps

let pivot t ~row ~col ~eps =
  let piv = t.tab.(row).(col) in
  let r = t.tab.(row) in
  let inv = 1.0 /. piv in
  for j = 0 to t.ncols do
    r.(j) <- r.(j) *. inv
  done;
  r.(col) <- 1.0;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = t.tab.(i).(col) in
      if Float.abs factor > eps then begin
        let ri = t.tab.(i) in
        for j = 0 to t.ncols do
          ri.(j) <- ri.(j) -. (factor *. r.(j))
        done;
        ri.(col) <- 0.0
      end
    end
  done;
  let factor = t.obj.(col) in
  if Float.abs factor > eps then begin
    for j = 0 to t.ncols do
      t.obj.(j) <- t.obj.(j) -. (factor *. r.(j))
    done;
    t.obj.(col) <- 0.0
  end;
  t.basis.(row) <- col

(* Recompute the reduced-cost row for cost vector [c_ext] (length ncols)
   from the current tableau: obj_j = sum_i c[basis i] * tab_i_j - c_j and the
   last entry accumulates -z = -sum_i c[basis i] * rhs_i. *)
let set_objective t c_ext =
  for j = 0 to t.ncols do
    t.obj.(j) <- 0.0
  done;
  for i = 0 to t.m - 1 do
    let cb = c_ext.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let ri = t.tab.(i) in
      for j = 0 to t.ncols do
        t.obj.(j) <- t.obj.(j) +. (cb *. ri.(j))
      done
    end
  done;
  for j = 0 to t.ncols - 1 do
    t.obj.(j) <- t.obj.(j) -. c_ext.(j)
  done

(* One simplex phase.  [allowed j] restricts entering columns.  Returns
   [`Optimal], [`Unbounded] or [`Iteration_limit]; raises
   [Sa_util.Fail.Error (Timeout _)] when [deadline] (an absolute
   {!Sa_util.Timing.now} timestamp) expires — checked every 32 pivots so
   the monotonic clock stays off the pivot hot path. *)
let run_phase t ~eps ~max_iters ~allowed ~deadline ~started =
  let iter = ref 0 in
  let bland_threshold = max 2000 (10 * (t.m + t.ncols)) in
  let result = ref None in
  while !result = None do
    incr iter;
    (match deadline with
    | Some d when !iter land 31 = 0 && Sa_util.Timing.now () > d ->
        Tel.add m_pivots !iter;
        Sa_util.Fail.raise_
          (Sa_util.Fail.Timeout
             { stage = "lp.simplex"; elapsed_s = Sa_util.Timing.now () -. started })
    | _ -> ());
    if !iter > max_iters then result := Some `Iteration_limit
    else begin
      let use_bland = !iter > bland_threshold in
      (* entering column: reduced cost < -eps *)
      let enter = ref (-1) in
      let best = ref (-.eps) in
      (try
         for j = 0 to t.ncols - 1 do
           if allowed j && t.obj.(j) < -.eps then
             if use_bland then begin
               enter := j;
               raise Exit
             end
             else if t.obj.(j) < !best then begin
               best := t.obj.(j);
               enter := j
             end
         done
       with Exit -> ());
      if !enter < 0 then result := Some `Optimal
      else begin
        let col = !enter in
        (* ratio test *)
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to t.m - 1 do
          let a = t.tab.(i).(col) in
          if a > eps then begin
            let ratio = t.tab.(i).(t.ncols) /. a in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && !leave >= 0
                 && t.basis.(i) < t.basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then result := Some `Unbounded
        else pivot t ~row:!leave ~col ~eps
      end
    end
  done;
  Tel.add m_pivots !iter;
  match !result with Some r -> r | None -> assert false

let solve ?(eps = Tol.solve_eps) ?max_iters ?deadline { direction; c; rows } =
  Tel.incr m_solves;
  let started = Sa_util.Timing.now () in
  let nstruct = Array.length c in
  let m = Array.length rows in
  Array.iter
    (fun (a, _, _) ->
      if Array.length a <> nstruct then
        invalid_arg "Simplex.solve: row length mismatch")
    rows;
  (* Maximization internally. *)
  let sign = match direction with Maximize -> 1.0 | Minimize -> -1.0 in
  let cmax = Array.map (fun v -> sign *. v) c in
  (* Normalise rhs >= 0, flipping relations as needed; remember the flip to
     fix dual signs afterwards. *)
  let flip = Array.make m false in
  let norm_rows =
    Array.mapi
      (fun i (a, rel, b) ->
        if b < 0.0 then begin
          flip.(i) <- true;
          let rel' = match rel with Le -> Ge | Ge -> Le | Eq -> Eq in
          (Array.map (fun v -> -.v) a, rel', -.b)
        end
        else (Array.map Fun.id a, rel, b))
      rows
  in
  (* Column layout: structural | slack/surplus (one per row) | artificial
     (only for Ge/Eq rows). *)
  let n_art = Array.fold_left
      (fun acc (_, rel, _) -> match rel with Le -> acc | Ge | Eq -> acc + 1)
      0 norm_rows
  in
  let ncols = nstruct + m + n_art in
  let tab = Array.make_matrix m (ncols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let artificial = Array.make ncols false in
  let slack_col = Array.make m (-1) in
  let art_col = Array.make m (-1) in
  let next_art = ref (nstruct + m) in
  Array.iteri
    (fun i (a, rel, b) ->
      Array.blit a 0 tab.(i) 0 nstruct;
      tab.(i).(ncols) <- b;
      let sc = nstruct + i in
      slack_col.(i) <- sc;
      (match rel with
      | Le ->
          tab.(i).(sc) <- 1.0;
          basis.(i) <- sc
      | Ge ->
          tab.(i).(sc) <- -1.0;
          let ac = !next_art in
          incr next_art;
          tab.(i).(ac) <- 1.0;
          artificial.(ac) <- true;
          art_col.(i) <- ac;
          basis.(i) <- ac
      | Eq ->
          (* the slack column stays all-zero for Eq rows *)
          let ac = !next_art in
          incr next_art;
          tab.(i).(ac) <- 1.0;
          artificial.(ac) <- true;
          art_col.(i) <- ac;
          basis.(i) <- ac))
    norm_rows;
  let t = { m; ncols; tab; obj = Array.make (ncols + 1) 0.0; basis; artificial } in
  let max_iters =
    match max_iters with Some v -> v | None -> 50_000 + (50 * (m + ncols))
  in
  let infeasible_solution status =
    {
      status;
      x = Array.make nstruct 0.0;
      objective = 0.0;
      duals = Array.make m 0.0;
    }
  in
  (* Phase 1: maximize -(sum of artificials). *)
  let phase1_needed = n_art > 0 in
  let phase1_ok =
    if not phase1_needed then `Optimal
    else begin
      let c1 = Array.make (ncols + 1) 0.0 in
      for j = 0 to ncols - 1 do
        if artificial.(j) then c1.(j) <- -1.0
      done;
      set_objective t c1;
      let r = run_phase t ~eps ~max_iters ~allowed:(fun _ -> true) ~deadline ~started in
      match r with
      | `Optimal ->
          (* phase-1 objective value = -(sum of artificials); the last
             objective-row entry tracks the current objective value. *)
          let z = t.obj.(ncols) in
          if z < -.feas_eps then `Infeasible
          else begin
            (* Drive basic artificials out where possible. *)
            for i = 0 to m - 1 do
              if artificial.(t.basis.(i)) then begin
                let piv_col = ref (-1) in
                for j = 0 to ncols - 1 do
                  if
                    !piv_col < 0 && (not artificial.(j))
                    && Float.abs t.tab.(i).(j) > Tol.driveout_eps
                  then piv_col := j
                done;
                if !piv_col >= 0 then pivot t ~row:i ~col:!piv_col ~eps
              end
            done;
            `Optimal
          end
      | `Unbounded -> `Infeasible (* cannot happen: phase-1 obj bounded by 0 *)
      | `Iteration_limit -> `Iteration_limit
    end
  in
  match phase1_ok with
  | `Infeasible -> infeasible_solution Infeasible
  | `Iteration_limit -> infeasible_solution Iteration_limit
  | `Optimal -> (
      (* Phase 2 with the real objective; artificial columns blocked. *)
      let c2 = Array.make (ncols + 1) 0.0 in
      Array.blit cmax 0 c2 0 nstruct;
      set_objective t c2;
      let allowed j = not artificial.(j) in
      match run_phase t ~eps ~max_iters ~allowed ~deadline ~started with
      | `Unbounded -> infeasible_solution Unbounded
      | `Iteration_limit -> infeasible_solution Iteration_limit
      | `Optimal ->
          let x = Array.make nstruct 0.0 in
          for i = 0 to m - 1 do
            if t.basis.(i) < nstruct then x.(t.basis.(i)) <- t.tab.(i).(ncols)
          done;
          (* clean tiny negatives due to roundoff *)
          for j = 0 to nstruct - 1 do
            if x.(j) < 0.0 && x.(j) > -.feas_eps then x.(j) <- 0.0
          done;
          let obj_internal = t.obj.(ncols) in
          let duals = Array.make m 0.0 in
          for i = 0 to m - 1 do
            let reader =
              if art_col.(i) >= 0 then t.obj.(art_col.(i))
              else t.obj.(slack_col.(i))
            in
            let y = if flip.(i) then -.reader else reader in
            duals.(i) <- sign *. y
          done;
          { status = Optimal; x; objective = sign *. obj_internal; duals })
