(** LP presolve: reductions and power-of-two equilibration in front of
    {!Revised.solve_spec}, with an exact postsolve back to original
    variable space.

    [reduce] shrinks a {!Revised.spec} (empty rows, singleton rows folded
    into column bounds, hashed duplicate-row dedup with exact recheck,
    dominated/duplicate column elimination on Maximize/[Le] packing
    shapes, geometric-mean row/column scaling restricted to powers of
    two) and returns the reduced spec plus a postsolve record.  All
    scratch and all reduced-spec arrays live in {!Workspace} slots 40..47,
    so steady-state presolved solves allocate only the small outputs that
    escape the solve anyway.

    Because every scaling factor is an exact power of two, unscaling the
    reduced optimum multiplies by [2^e] values and is bitwise-lossless;
    removed rows are implied by the kept ones so their duals are exactly
    0, and a fixed column's fixing row receives a reconstructed dual that
    keeps {!Certify.check} satisfied in original space. *)

type config = {
  reductions : bool;  (** run the row/column elimination passes *)
  scaling : bool;  (** run geometric-mean power-of-two equilibration *)
}

val default_config : config
(** Both reductions and scaling enabled. *)

type info = {
  rows_removed : int;  (** rows dropped by any reduction *)
  cols_removed : int;  (** columns fixed at zero *)
  duplicates : int;  (** duplicate rows found by the hashing pass *)
  scaling_passes : int;  (** equilibration sweeps that changed a factor *)
}

type t
(** Postsolve record for one [reduce].  It references workspace buffers
    (slots 40..47) and the original spec, so it is valid only until the
    next [reduce] on the same workspace and must not outlive the solve it
    wraps. *)

val info : t -> info

val reduce :
  ?config:config -> workspace:Workspace.t -> Revised.spec -> (Revised.spec * t) option
(** [reduce ~workspace spec] runs the pipeline and returns the reduced
    spec together with the postsolve record, or [None] when no reduction
    applied and no scaling factor moved (solve the original spec
    directly).  The reduced spec's arrays live in [workspace]; the
    subsequent {!Revised.solve_spec} call may share the same workspace
    (the solver core uses slots 0..15). *)

val postsolve : t -> Simplex.solution -> Simplex.solution
(** Map a solution of the reduced spec back to original variable space:
    kept variables and duals are unscaled exactly (powers of two),
    presolved-away variables are 0, removed redundant rows get dual 0,
    and fixing rows get a reconstructed dual preserving dual feasibility
    and the duality gap.  Non-[Optimal] statuses pass through with
    original-shaped zero vectors. *)

val map_basis_in : t -> Revised.basis -> Revised.basis option
(** Translate a warm-start basis in {b original} internal column space
    (structural then slack indices, as returned by a previous solve) into
    the reduced space: kept structurals and slacks are renumbered,
    presolved-away entries are replaced by unused reduced slacks.
    [None] when the basis cannot fit the reduced row count (caller should
    cold-start). *)

val map_basis_out : t -> Revised.basis -> Revised.basis option
(** Inverse of {!map_basis_in}: lift the reduced optimal basis back to
    original internal indices, re-entering each removed row with its own
    (feasible, since the row is implied) slack.  [None] if the reduced
    basis still contains an artificial. *)
