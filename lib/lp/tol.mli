(** Shared numerical tolerances for the LP layer. *)

val feas_eps : float
(** Feasibility / optimality tolerance: reduced costs above [-feas_eps] are
    treated as non-negative, residuals below [feas_eps] as satisfied.  Also
    the default [eps] for certification and for the pricing oracle. *)

val pivot_eps : float
(** Minimum acceptable pivot magnitude in the ratio test and during
    refactorization; smaller pivots are treated as zero. *)

val drift_eps : float
(** Allowed drift between the incrementally maintained basic solution and
    the one recomputed from scratch at refactorization time.  Exceeding it
    logs a warning and adopts the recomputed values. *)

val default_refactor_interval : int
(** Number of eta columns accumulated before the product-form inverse is
    rebuilt from the current basis. *)
