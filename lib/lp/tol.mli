(** Shared numerical tolerances for the LP layer. *)

val feas_eps : float
(** Feasibility / optimality tolerance: reduced costs above [-feas_eps] are
    treated as non-negative, residuals below [feas_eps] as satisfied.  Also
    the default [eps] for certification and for the pricing oracle. *)

val pivot_eps : float
(** Minimum acceptable pivot magnitude in the ratio test and during
    refactorization; smaller pivots are treated as zero. *)

val drift_eps : float
(** Allowed drift between the incrementally maintained basic solution and
    the one recomputed from scratch at refactorization time.  Exceeding it
    logs a warning and adopts the recomputed values. *)

val solve_eps : float
(** Default pivot-loop tolerance of both simplex engines: reduced costs
    below it are treated as zero in pricing, and it is the ratio-test
    tie-breaking band. *)

val driveout_eps : float
(** Minimum pivot magnitude accepted when driving a basic artificial
    variable out of a degenerate phase-1 optimum. *)

val eta_drop_eps : float
(** Entries of an eta column (or pivot update) smaller than this in
    magnitude are dropped as numerical noise rather than stored. *)

val warm_pivot_eps : float
(** Minimum pivot magnitude accepted while crash-pivoting a cached warm
    basis into the initial slack basis; smaller pivots reject the basis. *)

val cert_eps : float
(** Default tolerance for {!Certify.check}: primal/dual violations and the
    (scaled) duality gap must stay below it for a certificate. *)

val default_refactor_interval : int
(** Number of eta columns accumulated before the product-form inverse is
    rebuilt from the current basis. *)
