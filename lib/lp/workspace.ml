(* Grow-only per-domain scratch arena for the LP hot path.

   Steady-state solver traffic is dominated by short-lived scratch vectors:
   FTRAN/BTRAN work vectors, the eta-file backing store, basis and pricing
   arrays, rounding trial buffers.  Allocating them per solve is pure GC
   pressure — the sizes stabilise after the first few jobs a domain serves.
   A workspace keeps one grow-only buffer per (type, slot) and hands the
   same storage back on every acquisition, so a steady-state solve
   allocates only what escapes it (results, cached bases).

   Ownership: one workspace per domain, reached through [get] (Domain.DLS).
   This is safe because the engine's {!Sa_core.Pool} never migrates a job
   between domains mid-batch — a job's solves all run on the domain that
   claimed it, and a domain runs one job at a time.  Slot numbers partition
   the arena between client modules (see the .mli); a client may hold its
   slots only for the duration of one self-contained computation and must
   not retain them across a call into another arena client.  For the one
   genuinely reentrant client (the simplex itself, e.g. a hypothetical
   solve issued from solver instrumentation), [acquire]/[release] provide a
   busy flag so the inner solve falls back to a transient arena instead of
   trampling the outer one's buffers.

   Buffers grow by doubling and never shrink; growth preserves the live
   prefix, so clients can use slots as bump pools that survive regrowth.
   Contents beyond what the client last wrote are unspecified — acquired
   buffers must be (re)initialised over the range actually used, which is
   also what keeps results bitwise independent of what previously ran on
   the domain. *)

module Tel = Sa_telemetry.Metrics

let m_bytes_reused = Tel.counter "lp.workspace.bytes_reused"
let m_grows = Tel.counter "lp.workspace.grows"

type t = {
  mutable floats : float array array; (* slot -> buffer *)
  mutable ints : int array array;
  mutable bools : bool array array;
  mutable busy : bool;
}

let create () = { floats = [||]; ints = [||]; bools = [||]; busy = false }

let key : t Domain.DLS.key = Domain.DLS.new_key create

let get () = Domain.DLS.get key

let acquire t =
  if t.busy then false
  else begin
    t.busy <- true;
    true
  end

let release t = t.busy <- false

(* Ensure the slot table covers [slot], then ensure the slot's buffer holds
   at least [n] elements, preserving the existing prefix on growth. *)
let ensure_slot table slot empty =
  let tbl = !table in
  if slot < Array.length tbl then tbl
  else begin
    let tbl' = Array.make (max (slot + 1) (2 * Array.length tbl)) empty in
    Array.blit tbl 0 tbl' 0 (Array.length tbl);
    table := tbl';
    tbl'
  end

let grow_buf ~elt_bytes buf n make =
  let cap = Array.length buf in
  if cap >= n then begin
    Tel.add m_bytes_reused (n * elt_bytes);
    buf
  end
  else begin
    Tel.incr m_grows;
    let buf' = make (max n (2 * cap)) in
    Array.blit buf 0 buf' 0 cap;
    buf'
  end

let floats t ~slot n =
  let table = ref t.floats in
  let tbl = ensure_slot table slot [||] in
  t.floats <- tbl;
  let buf = grow_buf ~elt_bytes:8 tbl.(slot) n (fun c -> Array.make c 0.0) in
  tbl.(slot) <- buf;
  buf

let ints t ~slot n =
  let table = ref t.ints in
  let tbl = ensure_slot table slot [||] in
  t.ints <- tbl;
  let buf = grow_buf ~elt_bytes:8 tbl.(slot) n (fun c -> Array.make c 0) in
  tbl.(slot) <- buf;
  buf

let bools t ~slot n =
  let table = ref t.bools in
  let tbl = ensure_slot table slot [||] in
  t.bools <- tbl;
  let buf = grow_buf ~elt_bytes:1 tbl.(slot) n (fun c -> Array.make c false) in
  tbl.(slot) <- buf;
  buf
