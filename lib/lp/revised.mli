(** Sparse revised simplex — an alternative engine to {!Simplex}.

    Same problem/solution types, different machinery: columns are stored
    as one flat CSC matrix and the basis inverse is kept as a product-form
    eta file (one sparse eta column per pivot), so ftran/btran cost O(nnz)
    per eta rather than O(m²) dense updates.  The file is rebuilt from the
    basis every {!Tol.default_refactor_interval} pivots with a drift check
    of the maintained basic solution.  Entering variables are priced by
    the configured {!pricing} rule — Dantzig over a small candidate list
    (partial pricing; full scans only to replenish the list or certify
    optimality) or devex reference weights — with Bland's rule as the
    anti-cycling fallback for both.  This wins when the LP has many more
    columns than rows — exactly the shape of the explicit
    channel-allocation LPs, whose column count is Σ|support| while rows
    are only n(k+1).

    All scratch state (CSC matrix, basis, x_B, FTRAN/BTRAN vectors,
    pricing arrays, the eta backing store) lives in a {!Workspace} — by
    default the calling domain's grow-only arena — so steady-state solves
    allocate only their results.  Buffers are re-initialised over the
    range used on every solve, keeping results bitwise independent of
    whatever previously ran on the domain.

    Numerical behaviour can differ from the tableau in degenerate cases;
    the test suite cross-validates objectives between the two engines and
    certifies both with {!Certify}. *)

type basis = int array
(** A simplex basis: one internal column index per row.  Opaque to callers
    except as a warm-start token — valid only for a problem of the same
    shape (same row count, same column layout) as the solve that produced
    it.  {!solve_warm} validates before use and falls back to a cold start
    when the token does not fit. *)

type stats = {
  iterations : int;  (** total simplex pivots across both phases *)
  warm_used : bool;  (** the supplied warm basis passed validation *)
}

type pricing =
  | Dantzig
      (** steepest reduced cost over a small candidate list (partial
          pricing); cheapest per iteration *)
  | Devex
      (** Forrest–Goldfarb reference-framework weights: entering column
          maximizes d_j²/γ_j, weights reset to the unit framework at every
          refactorization.  More work per iteration (one extra BTRAN and a
          weight-update sweep per pivot) but typically far fewer pivots on
          wide LPs.  Ties break deterministically to the lowest column
          index; Bland fallback is preserved. *)

type spec = {
  s_direction : Simplex.direction;
  s_nstruct : int;  (** number of structural variables *)
  s_m : int;  (** number of rows *)
  s_c : float array;  (** objective, length [s_nstruct] *)
  s_rel : Simplex.relation array;  (** length [s_m] *)
  s_rhs : float array;  (** length [s_m] *)
  s_cstart : int array;
      (** CSC column offsets, length [s_nstruct + 1]; column [j] occupies
          [s_crow]/[s_cval] entries [s_cstart.(j) .. s_cstart.(j+1) - 1],
          rows strictly ascending, explicit zeros dropped, duplicate
          (row, var) entries pre-merged *)
  s_crow : int array;
  s_cval : float array;
}
(** A sparse problem statement — the allocation-free alternative to
    densifying {!Simplex.problem} rows.  Built directly by {!Model} for
    the column-generation masters; [s_crow]/[s_cval] may be larger than
    the live prefix (workspace buffers), only [s_cstart.(s_nstruct)]
    entries are read. *)

val solve :
  ?eps:float ->
  ?max_iters:int ->
  ?deadline:float ->
  ?pricing:pricing ->
  ?workspace:Workspace.t ->
  Simplex.problem ->
  Simplex.solution
(** Drop-in replacement for {!Simplex.solve}.  [deadline] is an absolute
    {!Sa_util.Timing.now} timestamp; past it the solve raises
    [Sa_util.Fail.Error (Timeout _)] (checked every 32 pivots).
    [pricing] defaults to [Dantzig]; [workspace] defaults to the calling
    domain's arena ({!Workspace.get}). *)

val solve_warm :
  ?eps:float ->
  ?max_iters:int ->
  ?warm_start:basis ->
  ?deadline:float ->
  ?inject_warm_crash:bool ->
  ?pricing:pricing ->
  ?workspace:Workspace.t ->
  Simplex.problem ->
  Simplex.solution * basis option * stats
(** Like {!solve} but optionally starting from a previously returned basis:
    the target columns are pivoted into the initial slack basis (one O(m²)
    pivot per structural basic variable — cached auction bases are mostly
    slack, so this is far cheaper than a full O(m³) refactorisation) and,
    if the result is still primal feasible for the new right-hand side,
    phase 1 and the all-slack start are skipped entirely — on
    repeat-topology auction LPs that differ only in objective coefficients
    this reduces pivots to the few needed to re-optimise.  An unusable warm
    basis (wrong size, stale indices, singular, infeasible) silently
    degrades to a cold solve.

    Returns the solution, the optimal basis to cache for the next warm
    start ([None] unless the status is [Optimal]), and pivot statistics.
    The warm-started objective equals the cold one (same LP), but in the
    presence of multiple optima the reported vertex may differ.

    [deadline] behaves as in {!solve}.  [inject_warm_crash] (default
    false) is the deterministic fault-injection hook: it forces the warm
    crash pivot-in to report failure *after* mutating solver state, so the
    rollback path runs and the solve degrades to a cold start — used by
    the resilience tests to certify that rollback restores the pristine
    state bitwise. *)

val spec_of_problem : Simplex.problem -> spec
(** Densify-free conversion of a {!Simplex.problem} into the sparse
    {!spec} form (fresh arrays, cold path) — useful to run {!solve_spec}
    or a {!Presolve} pipeline on a dense problem statement. *)

val solve_spec :
  ?eps:float ->
  ?max_iters:int ->
  ?warm_start:basis ->
  ?deadline:float ->
  ?inject_warm_crash:bool ->
  ?pricing:pricing ->
  ?workspace:Workspace.t ->
  ?attrs:(string * string) list ->
  spec ->
  Simplex.solution * basis option * stats
(** {!solve_warm} on a pre-built sparse {!spec} — the hot path used by
    {!Model.solve_with_basis}, skipping the O(m·n) dense materialisation
    entirely.  For a fixed problem and pricing rule, [solve_spec] and
    {!solve_warm} produce bitwise-identical solutions.

    [attrs] are extra key/value pairs recorded on the [lp.revised.solve]
    trace span and the [revised_solve] event — used by {!Model} to attach
    presolve reduction counts to the solve that consumed them. *)
