(** Sparse revised simplex — an alternative engine to {!Simplex}.

    Same problem/solution types, different machinery: columns are stored
    sparsely and the basis inverse is kept as a product-form eta file
    (one sparse eta column per pivot), so ftran/btran cost O(nnz) per eta
    rather than O(m²) dense updates.  The file is rebuilt from the basis
    every {!Tol.default_refactor_interval} pivots with a drift check of
    the maintained basic solution.  Entering variables are priced by
    Dantzig rule over a small candidate list (partial pricing); full scans
    run only to replenish the list or certify optimality.  This wins when
    the LP has many more columns than rows — exactly the shape of the
    explicit channel-allocation LPs, whose column count is Σ|support|
    while rows are only n(k+1).

    Numerical behaviour can differ from the tableau in degenerate cases
    (both use Dantzig-with-Bland-fallback); the test suite cross-validates
    objectives between the two engines and certifies both with
    {!Certify}. *)

type basis = int array
(** A simplex basis: one internal column index per row.  Opaque to callers
    except as a warm-start token — valid only for a problem of the same
    shape (same row count, same column layout) as the solve that produced
    it.  {!solve_warm} validates before use and falls back to a cold start
    when the token does not fit. *)

type stats = {
  iterations : int;  (** total simplex pivots across both phases *)
  warm_used : bool;  (** the supplied warm basis passed validation *)
}

val solve :
  ?eps:float -> ?max_iters:int -> ?deadline:float -> Simplex.problem -> Simplex.solution
(** Drop-in replacement for {!Simplex.solve}.  [deadline] is an absolute
    {!Sa_util.Timing.now} timestamp; past it the solve raises
    [Sa_util.Fail.Error (Timeout _)] (checked every 32 pivots). *)

val solve_warm :
  ?eps:float ->
  ?max_iters:int ->
  ?warm_start:basis ->
  ?deadline:float ->
  ?inject_warm_crash:bool ->
  Simplex.problem ->
  Simplex.solution * basis option * stats
(** Like {!solve} but optionally starting from a previously returned basis:
    the target columns are pivoted into the initial slack basis (one O(m²)
    pivot per structural basic variable — cached auction bases are mostly
    slack, so this is far cheaper than a full O(m³) refactorisation) and,
    if the result is still primal feasible for the new right-hand side,
    phase 1 and the all-slack start are skipped entirely — on
    repeat-topology auction LPs that differ only in objective coefficients
    this reduces pivots to the few needed to re-optimise.  An unusable warm
    basis (wrong size, stale indices, singular, infeasible) silently
    degrades to a cold solve.

    Returns the solution, the optimal basis to cache for the next warm
    start ([None] unless the status is [Optimal]), and pivot statistics.
    The warm-started objective equals the cold one (same LP), but in the
    presence of multiple optima the reported vertex may differ.

    [deadline] behaves as in {!solve}.  [inject_warm_crash] (default
    false) is the deterministic fault-injection hook: it forces the warm
    crash pivot-in to report failure *after* mutating solver state, so the
    rollback path runs and the solve degrades to a cold start — used by
    the resilience tests to certify that rollback restores the pristine
    state bitwise. *)
