type var = int
type row = int

type row_data = {
  mutable coeffs : (var * float) list;
  relation : Simplex.relation;
  rhs : float;
}

type t = {
  direction : Simplex.direction;
  mutable objs : float list; (* reversed *)
  mutable nvars : int;
  mutable rows : row_data list; (* reversed *)
  mutable nrows : int;
}

let create direction = { direction; objs = []; nvars = 0; rows = []; nrows = 0 }

let add_var t ~obj =
  let v = t.nvars in
  t.objs <- obj :: t.objs;
  t.nvars <- t.nvars + 1;
  v

let check_var t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model: variable out of range"

let add_row t coeffs relation rhs =
  List.iter (fun (v, _) -> check_var t v) coeffs;
  let r = t.nrows in
  t.rows <- { coeffs; relation; rhs } :: t.rows;
  t.nrows <- t.nrows + 1;
  r

let add_to_row t r v coeff =
  check_var t v;
  if r < 0 || r >= t.nrows then invalid_arg "Model.add_to_row: row out of range";
  (* rows are stored reversed *)
  let idx = t.nrows - 1 - r in
  let data = List.nth t.rows idx in
  data.coeffs <- (v, coeff) :: data.coeffs

let num_vars t = t.nvars
let num_rows t = t.nrows

type solution = {
  status : Simplex.status;
  objective : float;
  value : var -> float;
  dual : row -> float;
}

type engine = Dense_tableau | Revised_sparse

type warm_solution = {
  solution : solution;
  basis : Revised.basis option;
  stats : Revised.stats;
}

let to_problem t =
  let c = Array.of_list (List.rev t.objs) in
  let dense_row data =
    let a = Array.make t.nvars 0.0 in
    List.iter (fun (v, coeff) -> a.(v) <- a.(v) +. coeff) data.coeffs;
    (a, data.relation, data.rhs)
  in
  let rows = Array.of_list (List.rev_map dense_row t.rows) in
  { Simplex.direction = t.direction; c; rows }

let wrap t sol =
  {
    status = sol.Simplex.status;
    objective = sol.Simplex.objective;
    value =
      (fun v ->
        check_var t v;
        sol.Simplex.x.(v));
    dual =
      (fun r ->
        if r < 0 || r >= t.nrows then invalid_arg "Model: row out of range";
        sol.Simplex.duals.(r));
  }

let solve_with_basis ?(engine = Dense_tableau) ?eps ?max_iters ?warm_start
    ?deadline ?inject_warm_crash t =
  let problem = to_problem t in
  match engine with
  | Dense_tableau ->
      (* the dense tableau has no warm-start path; pivot count unknown *)
      let sol = Simplex.solve ?eps ?max_iters ?deadline problem in
      {
        solution = wrap t sol;
        basis = None;
        stats = { Revised.iterations = 0; warm_used = false };
      }
  | Revised_sparse ->
      let sol, basis, stats =
        Revised.solve_warm ?eps ?max_iters ?warm_start ?deadline
          ?inject_warm_crash problem
      in
      { solution = wrap t sol; basis; stats }

let solve ?engine ?eps ?max_iters ?deadline t =
  (solve_with_basis ?engine ?eps ?max_iters ?deadline t).solution
