type var = int
type row = int

type row_data = {
  mutable coeffs : (var * float) list;
  relation : Simplex.relation;
  rhs : float;
}

type t = {
  direction : Simplex.direction;
  mutable objs : float list; (* reversed *)
  mutable nvars : int;
  mutable rows : row_data list; (* reversed *)
  mutable nrows : int;
}

let create direction = { direction; objs = []; nvars = 0; rows = []; nrows = 0 }

let add_var t ~obj =
  let v = t.nvars in
  t.objs <- obj :: t.objs;
  t.nvars <- t.nvars + 1;
  v

let check_var t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model: variable out of range"

let add_row t coeffs relation rhs =
  List.iter (fun (v, _) -> check_var t v) coeffs;
  let r = t.nrows in
  t.rows <- { coeffs; relation; rhs } :: t.rows;
  t.nrows <- t.nrows + 1;
  r

let add_to_row t r v coeff =
  check_var t v;
  if r < 0 || r >= t.nrows then invalid_arg "Model.add_to_row: row out of range";
  (* rows are stored reversed *)
  let idx = t.nrows - 1 - r in
  let data = List.nth t.rows idx in
  data.coeffs <- (v, coeff) :: data.coeffs

let num_vars t = t.nvars
let num_rows t = t.nrows

type solution = {
  status : Simplex.status;
  objective : float;
  value : var -> float;
  dual : row -> float;
}

type engine = Dense_tableau | Revised_sparse

type pricing = Revised.pricing = Dantzig | Devex

type warm_solution = {
  solution : solution;
  basis : Revised.basis option;
  stats : Revised.stats;
}

let to_problem t =
  let c = Array.of_list (List.rev t.objs) in
  let dense_row data =
    let a = Array.make t.nvars 0.0 in
    List.iter (fun (v, coeff) -> a.(v) <- a.(v) +. coeff) data.coeffs;
    (a, data.relation, data.rhs)
  in
  let rows = Array.of_list (List.rev_map dense_row t.rows) in
  { Simplex.direction = t.direction; c; rows }

(* Workspace slot assignments (slots 16..23 of each typed pool belong to
   this module; see Workspace docs). *)
module Slot = struct
  (* float slots *)
  let obj = 16
  let rhs = 17
  let acc = 18
  let cval = 19

  (* int slots *)
  let stamp = 16
  let touched = 17
  let cstart = 18
  let crow = 19
  let next = 20
end

(* Build the sparse column-major spec directly from the row lists, into
   workspace buffers — the allocation-free replacement for [to_problem]'s
   O(rows · vars) densification on the column-generation hot path.

   Bitwise compatibility with the dense path: duplicate (row, var) entries
   are summed starting from 0.0 in list order, exactly as [to_problem]'s
   [a.(v) <- a.(v) +. coeff] accumulation, and an entry is kept iff the
   merged value is nonzero, so the spec describes the identical matrix. *)
let to_spec ws t =
  let nvars = t.nvars in
  let m = t.nrows in
  let rows_arr = Array.of_list (List.rev t.rows) in
  let c = Workspace.floats ws ~slot:Slot.obj nvars in
  List.iteri (fun k obj -> c.(nvars - 1 - k) <- obj) t.objs;
  let rel = Array.make m Simplex.Le in
  let rhs = Workspace.floats ws ~slot:Slot.rhs m in
  Array.iteri
    (fun i rd ->
      rel.(i) <- rd.relation;
      rhs.(i) <- rd.rhs)
    rows_arr;
  let stamp = Workspace.ints ws ~slot:Slot.stamp nvars in
  Array.fill stamp 0 nvars (-1);
  let acc = Workspace.floats ws ~slot:Slot.acc nvars in
  let touched = Workspace.ints ws ~slot:Slot.touched nvars in
  (* [merge_row tag i k] folds row [i]'s duplicate entries (0.0-seeded, in
     list order, matching the dense path bitwise) and calls [k v value] for
     each var with a nonzero merged value.  [tag] keeps the two passes'
     stamps distinct without clearing the stamp array between them. *)
  let merge_row tag i k =
    let rd = rows_arr.(i) in
    let n = ref 0 in
    List.iter
      (fun (v, coeff) ->
        if stamp.(v) = tag then acc.(v) <- acc.(v) +. coeff
        else begin
          stamp.(v) <- tag;
          acc.(v) <- 0.0 +. coeff;
          touched.(!n) <- v;
          incr n
        end)
      rd.coeffs;
    for p = 0 to !n - 1 do
      let v = touched.(p) in
      if acc.(v) <> 0.0 then k v acc.(v)
    done
  in
  let cstart = Workspace.ints ws ~slot:Slot.cstart (nvars + 1) in
  Array.fill cstart 0 (nvars + 1) 0;
  for i = 0 to m - 1 do
    merge_row i i (fun v _ -> cstart.(v + 1) <- cstart.(v + 1) + 1)
  done;
  for j = 1 to nvars do
    cstart.(j) <- cstart.(j) + cstart.(j - 1)
  done;
  let nnz = cstart.(nvars) in
  let crow = Workspace.ints ws ~slot:Slot.crow (max 1 nnz) in
  let cval = Workspace.floats ws ~slot:Slot.cval (max 1 nnz) in
  let next = Workspace.ints ws ~slot:Slot.next nvars in
  Array.blit cstart 0 next 0 nvars;
  (* rows visited ascending, so each column's entries come out
     rows-ascending as the CSC contract requires *)
  for i = 0 to m - 1 do
    merge_row (i + m) i (fun v value ->
        let p = next.(v) in
        crow.(p) <- i;
        cval.(p) <- value;
        next.(v) <- p + 1)
  done;
  {
    Revised.s_direction = t.direction;
    s_nstruct = nvars;
    s_m = m;
    s_c = c;
    s_rel = rel;
    s_rhs = rhs;
    s_cstart = cstart;
    s_crow = crow;
    s_cval = cval;
  }

let wrap t sol =
  {
    status = sol.Simplex.status;
    objective = sol.Simplex.objective;
    value =
      (fun v ->
        check_var t v;
        sol.Simplex.x.(v));
    dual =
      (fun r ->
        if r < 0 || r >= t.nrows then invalid_arg "Model: row out of range";
        sol.Simplex.duals.(r));
  }

let presolve_attrs (info : Presolve.info) =
  [
    ("presolve_rows_removed", string_of_int info.Presolve.rows_removed);
    ("presolve_cols_removed", string_of_int info.Presolve.cols_removed);
    ("presolve_duplicates", string_of_int info.Presolve.duplicates);
    ("presolve_scaling_passes", string_of_int info.Presolve.scaling_passes);
  ]

let no_presolve_attrs =
  [
    ("presolve_rows_removed", "0");
    ("presolve_cols_removed", "0");
    ("presolve_duplicates", "0");
    ("presolve_scaling_passes", "0");
  ]

let solve_with_basis ?(engine = Dense_tableau) ?eps ?max_iters ?warm_start
    ?deadline ?inject_warm_crash ?pricing ?workspace ?(presolve = false) t =
  match engine with
  | Dense_tableau ->
      (* the dense tableau has no warm-start path; pivot count unknown *)
      let sol = Simplex.solve ?eps ?max_iters ?deadline (to_problem t) in
      {
        solution = wrap t sol;
        basis = None;
        stats = { Revised.iterations = 0; warm_used = false };
      }
  | Revised_sparse -> (
      let ws = match workspace with Some ws -> ws | None -> Workspace.get () in
      let spec = to_spec ws t in
      if not presolve then
        let sol, basis, stats =
          Revised.solve_spec ?eps ?max_iters ?warm_start ?deadline
            ?inject_warm_crash ?pricing ~workspace:ws spec
        in
        { solution = wrap t sol; basis; stats }
      else
        match Presolve.reduce ~workspace:ws spec with
        | None ->
            let sol, basis, stats =
              Revised.solve_spec ?eps ?max_iters ?warm_start ?deadline
                ?inject_warm_crash ?pricing ~workspace:ws
                ~attrs:no_presolve_attrs spec
            in
            { solution = wrap t sol; basis; stats }
        | Some (reduced, pr) ->
            (* warm-start tokens stay in original internal index space at
               the API boundary: translate in, solve reduced, translate
               the optimal basis back out so callers (engine basis cache,
               colgen) never see reduced indices. *)
            let warm_red = Option.bind warm_start (Presolve.map_basis_in pr) in
            let sol, rbasis, stats =
              Revised.solve_spec ?eps ?max_iters ?warm_start:warm_red ?deadline
                ?inject_warm_crash ?pricing ~workspace:ws
                ~attrs:(presolve_attrs (Presolve.info pr))
                reduced
            in
            let sol = Presolve.postsolve pr sol in
            let basis = Option.bind rbasis (Presolve.map_basis_out pr) in
            { solution = wrap t sol; basis; stats })

let solve ?engine ?eps ?max_iters ?deadline ?pricing ?presolve t =
  (solve_with_basis ?engine ?eps ?max_iters ?deadline ?pricing ?presolve t)
    .solution
