(** Dense two-phase primal simplex.

    Replaces the external LP solver the paper implicitly assumes (it invokes
    the ellipsoid method for polynomial-time arguments; any exact LP solver
    gives the same optimum).  Handles [max/min cᵀx] subject to rows
    [aᵀx {≤,≥,=} b] with [x ≥ 0].

    Pivoting is Dantzig's rule with an automatic switch to Bland's rule
    (which cannot cycle) once the iteration count suggests degeneracy.
    Dual values are recovered from the objective row of the final tableau:
    for a ≤-row its slack column, for ≥/= rows the retained artificial
    column. *)

type relation = Le | Ge | Eq

type direction = Maximize | Minimize

type problem = {
  direction : direction;
  c : float array;  (** objective coefficients, one per structural variable *)
  rows : (float array * relation * float) array;
      (** each [(a, rel, b)]: [aᵀx rel b]; [a] must match [c] in length *)
}

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type solution = {
  status : status;
  x : float array;  (** structural variable values (zeros unless Optimal) *)
  objective : float;  (** in the problem's own direction *)
  duals : float array;
      (** one multiplier per row; sign convention: for a Maximize problem
          ≤-rows have y ≥ 0, ≥-rows y ≤ 0, =-rows free (and the reverse for
          Minimize), so that strong duality reads
          [objective = Σ_i duals.(i) * b_i] for non-degenerate optima. *)
}

val solve : ?eps:float -> ?max_iters:int -> ?deadline:float -> problem -> solution
(** [eps] is the pivot tolerance (default 1e-9); [max_iters] defaults to
    [50_000 + 50 * (rows + cols)].  [deadline] is an absolute
    {!Sa_util.Timing.now} timestamp: once the monotonic clock passes it
    (checked every 32 pivots) the solve raises
    [Sa_util.Fail.Error (Timeout _)] — the enforcement hook for the batch
    engine's per-job budgets. *)
