(** Independent certification of simplex solutions.

    The solver returns primal values and dual multipliers; this module
    re-checks them against the *original* problem data without trusting any
    solver internals: primal feasibility, dual feasibility, and the duality
    gap (which also subsumes complementary slackness at optimum).  Every LP
    result used in an experiment can therefore carry a machine-checked
    optimality certificate. *)

type report = {
  primal_feasible : bool;
  dual_feasible : bool;
  duality_gap : float;  (** |cᵀx − bᵀy| (absolute) *)
  max_primal_violation : float;  (** worst constraint/sign violation found *)
  max_dual_violation : float;
  certified : bool;  (** all of the above within tolerance *)
}

val check : ?eps:float -> Simplex.problem -> Simplex.solution -> report
(** [eps] is the certification tolerance (default {!Tol.cert_eps}, scaled
    by row/value magnitudes).  A non-[Optimal] solution is never
    certified. *)

val pp : Format.formatter -> report -> unit
