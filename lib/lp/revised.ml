(* Sparse revised simplex with an explicitly maintained basis inverse.

   Shares the external types with [Simplex].  Internally:
   - structural + slack/surplus + artificial columns, stored sparsely;
   - B_inv (m x m, dense) updated by eta pivots;
   - x_B maintained incrementally;
   - two phases, artificials blocked in phase 2.

   [solve_warm] additionally accepts a starting basis (typically the
   optimal basis of a previous solve on a same-shape problem) and, when
   that basis is still primal feasible for the new data, refactorises
   B_inv once and jumps straight to phase 2 — the warm-start path used by
   the batch engine's basis cache. *)

module Tel = Sa_telemetry.Metrics

let m_solves = Tel.counter "lp.revised.solves"
let m_pivots = Tel.counter "lp.revised.pivots"
let m_warm_attempts = Tel.counter "lp.revised.warm_attempts"
let m_warm_installs = Tel.counter "lp.revised.warm_installs"
let m_warm_rollbacks = Tel.counter "lp.revised.warm_rollbacks"
let h_solve = Tel.histogram "lp.revised.solve.seconds"
let log_src = Logs.Src.create "sa.lp.revised" ~doc:"Revised sparse simplex"

module Log = (val Logs.src_log log_src : Logs.LOG)

type sparse_col = (int * float) array (* (row, coeff), rows strictly increasing *)

type basis = int array

type stats = { iterations : int; warm_used : bool }

let feas_eps = 1e-7

type core = {
  m : int;
  ncols : int;
  cols : sparse_col array;
  artificial : bool array;
  b : float array;
  mutable b_inv : float array array;
  basis : int array;
  mutable x_b : float array;
  in_basis : bool array;
}

let col_dot col v = Array.fold_left (fun acc (r, x) -> acc +. (x *. v.(r))) 0.0 col

(* w = B^{-1} A_j *)
let ftran t col =
  let w = Array.make t.m 0.0 in
  Array.iter
    (fun (r, x) ->
      for i = 0 to t.m - 1 do
        w.(i) <- w.(i) +. (t.b_inv.(i).(r) *. x)
      done)
    col;
  w

(* y^T = c_B^T B^{-1} *)
let btran t costs =
  let y = Array.make t.m 0.0 in
  for i = 0 to t.m - 1 do
    let cb = costs.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let row = t.b_inv.(i) in
      for j = 0 to t.m - 1 do
        y.(j) <- y.(j) +. (cb *. row.(j))
      done
    end
  done;
  y

let pivot t ~row ~col ~w =
  let wr = w.(row) in
  let inv = 1.0 /. wr in
  let brow = t.b_inv.(row) in
  for j = 0 to t.m - 1 do
    brow.(j) <- brow.(j) *. inv
  done;
  t.x_b.(row) <- t.x_b.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = w.(i) in
      if Float.abs f > 1e-13 then begin
        let bi = t.b_inv.(i) in
        for j = 0 to t.m - 1 do
          bi.(j) <- bi.(j) -. (f *. brow.(j))
        done;
        t.x_b.(i) <- t.x_b.(i) -. (f *. t.x_b.(row))
      end
    end
  done;
  t.in_basis.(t.basis.(row)) <- false;
  t.in_basis.(col) <- true;
  t.basis.(row) <- col

let run_phase t ~costs ~eps ~max_iters ~allowed =
  let iter = ref 0 in
  let bland_threshold = max 2000 (10 * (t.m + t.ncols)) in
  let result = ref None in
  while !result = None do
    incr iter;
    if !iter > max_iters then result := Some `Iteration_limit
    else begin
      let y = btran t costs in
      let use_bland = !iter > bland_threshold in
      let enter = ref (-1) in
      let best = ref (-.eps) in
      (try
         for j = 0 to t.ncols - 1 do
           if allowed j && not t.in_basis.(j) then begin
             let d = costs.(j) -. col_dot t.cols.(j) y in
             if d > eps then
               if use_bland then begin
                 enter := j;
                 raise Exit
               end
               else if d > !best then begin
                 best := d;
                 enter := j
               end
           end
         done
       with Exit -> ());
      if !enter < 0 then result := Some `Optimal
      else begin
        let col = !enter in
        let w = ftran t t.cols.(col) in
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to t.m - 1 do
          if w.(i) > eps then begin
            let ratio = t.x_b.(i) /. w.(i) in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && !leave >= 0
                 && t.basis.(i) < t.basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then result := Some `Unbounded
        else pivot t ~row:!leave ~col ~w
      end
    end
  done;
  let status = match !result with Some r -> r | None -> assert false in
  Tel.add m_pivots !iter;
  (status, !iter)

(* Try to install [wb] as the starting basis by pivoting its missing
   columns into the initial (slack/artificial) basis — a "crash" start.
   The initial B_inv is the identity and a cached optimal basis is mostly
   slack columns, so this costs one O(m²) pivot per *structural* basic
   column instead of an O(m³) refactorisation.  Accept only if the basis
   assembles with stable pivots and the implied x_B is (tolerably)
   non-negative, i.e. still primal feasible for the new b; otherwise roll
   the core back to its pristine cold-start state. *)
let try_warm_basis t wb =
  Tel.incr m_warm_attempts;
  let valid =
    Array.length wb = t.m
    && Array.for_all (fun j -> j >= 0 && j < t.ncols && not t.artificial.(j)) wb
    &&
    let seen = Array.make t.ncols false in
    Array.for_all
      (fun j ->
        if seen.(j) then false
        else begin
          seen.(j) <- true;
          true
        end)
      wb
  in
  if not valid then false
  else begin
    let init_basis = Array.copy t.basis in
    let in_target = Array.make t.ncols false in
    Array.iter (fun j -> in_target.(j) <- true) wb;
    let reset () =
      Tel.incr m_warm_rollbacks;
      Log.debug (fun m ->
          m "warm basis rejected (stale for new data); cold start (m=%d)" t.m);
      Array.blit init_basis 0 t.basis 0 t.m;
      Array.fill t.in_basis 0 t.ncols false;
      Array.iter (fun j -> t.in_basis.(j) <- true) init_basis;
      t.b_inv <-
        Array.init t.m (fun i -> Array.init t.m (fun l -> if i = l then 1.0 else 0.0));
      t.x_b <- Array.copy t.b;
      false
    in
    let ok = ref true in
    Array.iter
      (fun j ->
        if !ok && not t.in_basis.(j) then begin
          let w = ftran t t.cols.(j) in
          let row = ref (-1) in
          for i = 0 to t.m - 1 do
            if
              (not in_target.(t.basis.(i)))
              && Float.abs w.(i) > 1e-7
              && (!row < 0 || Float.abs w.(i) > Float.abs w.(!row))
            then row := i
          done;
          if !row < 0 then ok := false else pivot t ~row:!row ~col:j ~w
        end)
      wb;
    if (not !ok) || Array.exists (fun x -> x < -.feas_eps) t.x_b then reset ()
    else begin
      for i = 0 to t.m - 1 do
        if t.x_b.(i) < 0.0 then t.x_b.(i) <- 0.0
      done;
      Tel.incr m_warm_installs;
      true
    end
  end

let solve_warm_impl ?(eps = 1e-9) ?max_iters ?warm_start { Simplex.direction; c; rows } =
  let nstruct = Array.length c in
  let m = Array.length rows in
  Array.iter
    (fun (a, _, _) ->
      if Array.length a <> nstruct then invalid_arg "Revised.solve: row length mismatch")
    rows;
  let sign = match direction with Simplex.Maximize -> 1.0 | Simplex.Minimize -> -1.0 in
  let flip = Array.make m false in
  let norm =
    Array.mapi
      (fun i (a, rel, b) ->
        if b < 0.0 then begin
          flip.(i) <- true;
          let rel' =
            match rel with Simplex.Le -> Simplex.Ge | Simplex.Ge -> Simplex.Le | Simplex.Eq -> Simplex.Eq
          in
          (Array.map (fun v -> -.v) a, rel', -.b)
        end
        else (a, rel, b))
      rows
  in
  let n_art =
    Array.fold_left
      (fun acc (_, rel, _) ->
        match rel with Simplex.Le -> acc | Simplex.Ge | Simplex.Eq -> acc + 1)
      0 norm
  in
  let ncols = nstruct + m + n_art in
  let cols = Array.make ncols [||] in
  let artificial = Array.make ncols false in
  let b = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let slack_col = Array.make m (-1) in
  let art_col = Array.make m (-1) in
  (* structural columns, sparse *)
  for j = 0 to nstruct - 1 do
    let entries = ref [] in
    for i = m - 1 downto 0 do
      let a, _, _ = norm.(i) in
      if a.(j) <> 0.0 then entries := (i, a.(j)) :: !entries
    done;
    cols.(j) <- Array.of_list !entries
  done;
  let next_art = ref (nstruct + m) in
  Array.iteri
    (fun i (_, rel, rhs) ->
      b.(i) <- rhs;
      let sc = nstruct + i in
      slack_col.(i) <- sc;
      match rel with
      | Simplex.Le ->
          cols.(sc) <- [| (i, 1.0) |];
          basis.(i) <- sc
      | Simplex.Ge ->
          cols.(sc) <- [| (i, -1.0) |];
          let ac = !next_art in
          incr next_art;
          cols.(ac) <- [| (i, 1.0) |];
          artificial.(ac) <- true;
          art_col.(i) <- ac;
          basis.(i) <- ac
      | Simplex.Eq ->
          cols.(sc) <- [||];
          let ac = !next_art in
          incr next_art;
          cols.(ac) <- [| (i, 1.0) |];
          artificial.(ac) <- true;
          art_col.(i) <- ac;
          basis.(i) <- ac)
    norm;
  let in_basis = Array.make ncols false in
  Array.iter (fun j -> in_basis.(j) <- true) basis;
  let t =
    {
      m;
      ncols;
      cols;
      artificial;
      b;
      b_inv = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1.0 else 0.0));
      basis;
      x_b = Array.copy b;
      in_basis;
    }
  in
  let max_iters =
    match max_iters with Some v -> v | None -> 50_000 + (50 * (m + ncols))
  in
  let infeasible_solution status =
    {
      Simplex.status;
      x = Array.make nstruct 0.0;
      objective = 0.0;
      duals = Array.make m 0.0;
    }
  in
  let c2 = Array.make ncols 0.0 in
  for j = 0 to nstruct - 1 do
    c2.(j) <- sign *. c.(j)
  done;
  let iterations = ref 0 in
  let warm_used =
    match warm_start with None -> false | Some wb -> try_warm_basis t wb
  in
  let phase1 =
    if warm_used || n_art = 0 then `Optimal
    else begin
      let c1 = Array.make ncols 0.0 in
      for j = 0 to ncols - 1 do
        if artificial.(j) then c1.(j) <- -1.0
      done;
      let status, iters = run_phase t ~costs:c1 ~eps ~max_iters ~allowed:(fun _ -> true) in
      iterations := !iterations + iters;
      match status with
      | `Optimal ->
          let z =
            Array.to_list (Array.mapi (fun i col -> (i, col)) t.basis)
            |> List.fold_left
                 (fun acc (i, col) ->
                   if artificial.(col) then acc -. t.x_b.(i) else acc)
                 0.0
          in
          if z < -.feas_eps then `Infeasible
          else begin
            (* drive basic artificials out where a non-artificial pivot exists *)
            for i = 0 to m - 1 do
              if artificial.(t.basis.(i)) then begin
                let found = ref (-1) in
                for j = 0 to ncols - 1 do
                  if !found < 0 && (not artificial.(j)) && not t.in_basis.(j) then begin
                    let w = ftran t t.cols.(j) in
                    if Float.abs w.(i) > 1e-6 then begin
                      pivot t ~row:i ~col:j ~w;
                      found := j
                    end
                  end
                done
              end
            done;
            `Optimal
          end
      | `Unbounded -> `Infeasible
      | `Iteration_limit -> `Iteration_limit
    end
  in
  let finish solution final_basis =
    (solution, final_basis, { iterations = !iterations; warm_used })
  in
  match phase1 with
  | `Infeasible -> finish (infeasible_solution Simplex.Infeasible) None
  | `Iteration_limit -> finish (infeasible_solution Simplex.Iteration_limit) None
  | `Optimal -> (
      let allowed j = not artificial.(j) in
      let status, iters = run_phase t ~costs:c2 ~eps ~max_iters ~allowed in
      iterations := !iterations + iters;
      match status with
      | `Unbounded -> finish (infeasible_solution Simplex.Unbounded) None
      | `Iteration_limit -> finish (infeasible_solution Simplex.Iteration_limit) None
      | `Optimal ->
          let x = Array.make nstruct 0.0 in
          Array.iteri
            (fun i col -> if col < nstruct then x.(col) <- t.x_b.(i))
            t.basis;
          for j = 0 to nstruct - 1 do
            if x.(j) < 0.0 && x.(j) > -.feas_eps then x.(j) <- 0.0
          done;
          let y = btran t c2 in
          let duals = Array.make m 0.0 in
          for i = 0 to m - 1 do
            let v = if flip.(i) then -.y.(i) else y.(i) in
            duals.(i) <- sign *. v
          done;
          let objective =
            let acc = ref 0.0 in
            Array.iteri (fun i col -> acc := !acc +. (c2.(col) *. t.x_b.(i))) t.basis;
            sign *. !acc
          in
          finish
            { Simplex.status = Simplex.Optimal; x; objective; duals }
            (Some (Array.copy t.basis)))

let solve_warm ?eps ?max_iters ?warm_start problem =
  Sa_telemetry.Trace.with_span ~hist:h_solve "lp.revised.solve" (fun () ->
      Tel.incr m_solves;
      solve_warm_impl ?eps ?max_iters ?warm_start problem)

let solve ?eps ?max_iters problem =
  let solution, _, _ = solve_warm ?eps ?max_iters problem in
  solution
