(* Sparse revised simplex with a product-form-inverse eta file.

   Shares the external types with [Simplex].  Internally:
   - structural + slack/surplus + artificial columns, stored sparsely;
   - the basis inverse is kept as an eta file: B = E_1 E_2 ... E_K, each
     E_k identity except for one (sparse) column, so ftran/btran cost
     O(nnz) per eta instead of O(m^2) dense updates;
   - the eta file is rebuilt from the current basis every
     [Tol.default_refactor_interval] pivots (sparsest-column-first greedy
     elimination), with a drift check of the maintained basic solution
     against the recomputed one;
   - entering columns are chosen by Dantzig rule over a small candidate
     list (partial pricing); a full cyclic scan only runs to replenish the
     list or prove optimality, with Bland's rule as the anti-cycling
     fallback;
   - two phases, artificials blocked in phase 2.

   [solve_warm] additionally accepts a starting basis (typically the
   optimal basis of a previous solve on a same-shape problem) and, when
   that basis is still primal feasible for the new data, crash-pivots it
   into the eta representation and jumps straight to phase 2 — the
   warm-start path used by the batch engine's basis cache. *)

module Tel = Sa_telemetry.Metrics

let m_solves = Tel.counter "lp.revised.solves"
let m_pivots = Tel.counter "lp.revised.pivots"
let m_refactor = Tel.counter "lp.revised.refactorizations"
let m_pricing_scans = Tel.counter "lp.revised.pricing_scans"
let m_warm_attempts = Tel.counter "lp.revised.warm_attempts"
let m_warm_installs = Tel.counter "lp.revised.warm_installs"
let m_warm_rollbacks = Tel.counter "lp.revised.warm_rollbacks"
let h_solve = Tel.histogram "lp.revised.solve.seconds"
let log_src = Logs.Src.create "sa.lp.revised" ~doc:"Revised sparse simplex"

module Log = (val Logs.src_log log_src : Logs.LOG)

type sparse_col = (int * float) array (* (row, coeff), rows strictly increasing *)

type basis = int array

type stats = { iterations : int; warm_used : bool }

let feas_eps = Tol.feas_eps

(* One elementary eta matrix: identity except column [row], whose diagonal
   is [pivot] and whose off-diagonal nonzeros are [(idx.(i), vals.(i))]. *)
type eta = { row : int; pivot : float; idx : int array; vals : float array }

type core = {
  m : int;
  ncols : int;
  cols : sparse_col array;
  artificial : bool array;
  b : float array;
  mutable etas : eta array; (* applied 0 .. n_etas-1 in ftran order *)
  mutable n_etas : int;
  mutable pivots_since_refactor : int;
      (* the rebuilt file itself holds one eta per basis column, so the
         refactorization trigger must count pivots, not file length *)
  basis : int array;
  mutable x_b : float array;
  in_basis : bool array;
  refactor_interval : int;
}

let col_dot col v = Array.fold_left (fun acc (r, x) -> acc +. (x *. v.(r))) 0.0 col

let push_eta t e =
  let cap = Array.length t.etas in
  if t.n_etas = cap then begin
    let etas = Array.make (max 8 (2 * cap)) e in
    Array.blit t.etas 0 etas 0 cap;
    t.etas <- etas
  end;
  t.etas.(t.n_etas) <- e;
  t.n_etas <- t.n_etas + 1

(* In-place w := B^{-1} w, applying eta inverses oldest-to-newest.  An eta
   whose pivot-row entry is zero leaves the vector untouched, so sparse
   inputs stay cheap. *)
let apply_etas t w =
  for k = 0 to t.n_etas - 1 do
    let e = t.etas.(k) in
    let xr = w.(e.row) in
    if xr <> 0.0 then begin
      let zr = xr /. e.pivot in
      w.(e.row) <- zr;
      let idx = e.idx and vals = e.vals in
      for i = 0 to Array.length idx - 1 do
        w.(idx.(i)) <- w.(idx.(i)) -. (vals.(i) *. zr)
      done
    end
  done

(* w = B^{-1} A_j *)
let ftran t col =
  let w = Array.make t.m 0.0 in
  Array.iter (fun (r, x) -> w.(r) <- x) col;
  apply_etas t w;
  w

(* y^T = c_B^T B^{-1}, applying eta inverses newest-to-oldest. *)
let btran t costs =
  let y = Array.make t.m 0.0 in
  for i = 0 to t.m - 1 do
    y.(i) <- costs.(t.basis.(i))
  done;
  for k = t.n_etas - 1 downto 0 do
    let e = t.etas.(k) in
    let idx = e.idx and vals = e.vals in
    let s = ref 0.0 in
    for i = 0 to Array.length idx - 1 do
      s := !s +. (y.(idx.(i)) *. vals.(i))
    done;
    y.(e.row) <- (y.(e.row) -. !s) /. e.pivot
  done;
  y

let eta_of_column ~row w =
  let m = Array.length w in
  let nnz = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && Float.abs w.(i) > 1e-13 then incr nnz
  done;
  let idx = Array.make !nnz 0 and vals = Array.make !nnz 0.0 in
  let p = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && Float.abs w.(i) > 1e-13 then begin
      idx.(!p) <- i;
      vals.(!p) <- w.(i);
      incr p
    end
  done;
  { row; pivot = w.(row); idx; vals }

(* Rebuild the eta file from the current basis: greedy elimination,
   sparsest original column first, pivot row chosen by largest magnitude
   among the rows not yet assigned.  Rows may end up reassigned to
   different basis positions — harmless, since solution and duals depend
   only on the (column, row) pairing recorded in [t.basis].  Finishes by
   recomputing x_B from scratch and checking drift of the incrementally
   maintained values. *)
let refactorize t =
  Tel.incr m_refactor;
  let old_basis = Array.copy t.basis in
  let old_xb = t.x_b in
  t.n_etas <- 0;
  t.pivots_since_refactor <- 0;
  let order = Array.copy old_basis in
  Array.sort
    (fun a b -> compare (Array.length t.cols.(a)) (Array.length t.cols.(b)))
    order;
  let assigned = Array.make t.m false in
  Array.iter
    (fun j ->
      let w = ftran t t.cols.(j) in
      let r = ref (-1) in
      for i = 0 to t.m - 1 do
        if (not assigned.(i)) && (!r < 0 || Float.abs w.(i) > Float.abs w.(!r)) then
          r := i
      done;
      let r = !r in
      if Float.abs w.(r) <= Tol.pivot_eps then begin
        (* Numerically singular basis column: fall back to a unit eta so the
           factorization stays invertible; the drift check below reports the
           damage. *)
        Log.warn (fun f ->
            f "refactorization: near-singular pivot %.3e for column %d" w.(r) j);
        push_eta t { row = r; pivot = 1.0; idx = [||]; vals = [||] }
      end
      else push_eta t (eta_of_column ~row:r w);
      assigned.(r) <- true;
      t.basis.(r) <- j)
    order;
  let xb = Array.copy t.b in
  apply_etas t xb;
  (* drift check: compare per-column values across the row reassignment *)
  let old_val = Hashtbl.create t.m in
  Array.iteri (fun i j -> Hashtbl.replace old_val j old_xb.(i)) old_basis;
  let drift = ref 0.0 in
  Array.iteri
    (fun i j ->
      match Hashtbl.find_opt old_val j with
      | Some v -> drift := Float.max !drift (Float.abs (xb.(i) -. v))
      | None -> ())
    t.basis;
  if !drift > Tol.drift_eps then
    Log.warn (fun f ->
        f "refactorization drift %.3e exceeds %.1e (m=%d, pivots since last=%d)"
          !drift Tol.drift_eps t.m t.refactor_interval);
  t.x_b <- xb

let pivot t ~row ~col ~w =
  push_eta t (eta_of_column ~row w);
  let xr = t.x_b.(row) /. w.(row) in
  t.x_b.(row) <- xr;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = w.(i) in
      if Float.abs f > 1e-13 then t.x_b.(i) <- t.x_b.(i) -. (f *. xr)
    end
  done;
  t.in_basis.(t.basis.(row)) <- false;
  t.in_basis.(col) <- true;
  t.basis.(row) <- col;
  t.pivots_since_refactor <- t.pivots_since_refactor + 1;
  if t.pivots_since_refactor >= t.refactor_interval then refactorize t

let run_phase t ~costs ~eps ~max_iters ~allowed ~deadline ~started =
  let iter = ref 0 in
  let bland_threshold = max 2000 (10 * (t.m + t.ncols)) in
  (* Dantzig partial pricing: reduced costs are evaluated only over a small
     candidate list; a full (cyclic) scan runs just to replenish the list or
     to certify optimality. *)
  let cap = max 16 (t.ncols / 16) in
  let cand = Array.make cap (-1) in
  let n_cand = ref 0 in
  let scan_start = ref 0 in
  let reduced y j = costs.(j) -. col_dot t.cols.(j) y in
  let result = ref None in
  while !result = None do
    incr iter;
    (match deadline with
    | Some d when !iter land 31 = 0 && Sa_util.Timing.now () > d ->
        Tel.add m_pivots !iter;
        Sa_util.Fail.raise_
          (Sa_util.Fail.Timeout
             { stage = "lp.revised"; elapsed_s = Sa_util.Timing.now () -. started })
    | _ -> ());
    if !iter > max_iters then result := Some `Iteration_limit
    else begin
      let y = btran t costs in
      let use_bland = !iter > bland_threshold in
      let enter = ref (-1) in
      if use_bland then (
        (* Bland: lowest eligible index, full scan — anti-cycling. *)
        try
          for j = 0 to t.ncols - 1 do
            if allowed j && (not t.in_basis.(j)) && reduced y j > eps then begin
              enter := j;
              raise Exit
            end
          done
        with Exit -> ())
      else begin
        let best = ref eps in
        let keep = ref 0 in
        for k = 0 to !n_cand - 1 do
          let j = cand.(k) in
          if allowed j && not t.in_basis.(j) then begin
            let d = reduced y j in
            if d > eps then begin
              cand.(!keep) <- j;
              incr keep;
              if d > !best then begin
                best := d;
                enter := j
              end
            end
          end
        done;
        n_cand := !keep;
        if !enter < 0 then begin
          (* candidate list exhausted: cyclic full scan to refill *)
          Tel.incr m_pricing_scans;
          n_cand := 0;
          let scanned = ref 0 in
          let j = ref !scan_start in
          while !scanned < t.ncols && !n_cand < cap do
            let jj = !j in
            if allowed jj && not t.in_basis.(jj) then begin
              let d = reduced y jj in
              if d > eps then begin
                cand.(!n_cand) <- jj;
                incr n_cand;
                if d > !best then begin
                  best := d;
                  enter := jj
                end
              end
            end;
            incr scanned;
            j := if jj + 1 >= t.ncols then 0 else jj + 1
          done;
          scan_start := !j
        end
      end;
      if !enter < 0 then result := Some `Optimal
      else begin
        let col = !enter in
        let w = ftran t t.cols.(col) in
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to t.m - 1 do
          if w.(i) > eps then begin
            let ratio = t.x_b.(i) /. w.(i) in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && !leave >= 0
                 && t.basis.(i) < t.basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then result := Some `Unbounded
        else pivot t ~row:!leave ~col ~w
      end
    end
  done;
  let status = match !result with Some r -> r | None -> assert false in
  Tel.add m_pivots !iter;
  (status, !iter)

(* Try to install [wb] as the starting basis by pivoting its missing
   columns into the initial (slack/artificial) basis — a "crash" start.
   The initial eta file is empty (identity) and a cached optimal basis is
   mostly slack columns, so this costs one eta per *structural* basic
   column.  Accept only if the basis assembles with stable pivots and the
   implied x_B is (tolerably) non-negative, i.e. still primal feasible for
   the new b; otherwise roll the core back to its pristine cold-start
   state. *)
let try_warm_basis ?(inject_crash = false) t wb =
  Tel.incr m_warm_attempts;
  let valid =
    Array.length wb = t.m
    && Array.for_all (fun j -> j >= 0 && j < t.ncols && not t.artificial.(j)) wb
    &&
    let seen = Array.make t.ncols false in
    Array.for_all
      (fun j ->
        if seen.(j) then false
        else begin
          seen.(j) <- true;
          true
        end)
      wb
  in
  if not valid then false
  else begin
    let init_basis = Array.copy t.basis in
    let in_target = Array.make t.ncols false in
    Array.iter (fun j -> in_target.(j) <- true) wb;
    let reset () =
      Tel.incr m_warm_rollbacks;
      Log.debug (fun m ->
          m "warm basis rejected (stale for new data); cold start (m=%d)" t.m);
      Array.blit init_basis 0 t.basis 0 t.m;
      Array.fill t.in_basis 0 t.ncols false;
      Array.iter (fun j -> t.in_basis.(j) <- true) init_basis;
      t.n_etas <- 0;
      t.pivots_since_refactor <- 0;
      t.x_b <- Array.copy t.b;
      false
    in
    let ok = ref true in
    Array.iter
      (fun j ->
        if !ok && not t.in_basis.(j) then begin
          let w = ftran t t.cols.(j) in
          let row = ref (-1) in
          for i = 0 to t.m - 1 do
            if
              (not in_target.(t.basis.(i)))
              && Float.abs w.(i) > 1e-7
              && (!row < 0 || Float.abs w.(i) > Float.abs w.(!row))
            then row := i
          done;
          if !row < 0 then ok := false else pivot t ~row:!row ~col:j ~w
        end)
      wb;
    (* Fault-injection hook: pretend the crash pivot-in broke down *after*
       the state mutations above, so [reset] exercises the real rollback
       path rather than the cheap never-started one. *)
    if inject_crash then ok := false;
    if (not !ok) || Array.exists (fun x -> x < -.feas_eps) t.x_b then reset ()
    else begin
      for i = 0 to t.m - 1 do
        if t.x_b.(i) < 0.0 then t.x_b.(i) <- 0.0
      done;
      Tel.incr m_warm_installs;
      true
    end
  end

let solve_warm_impl ?(eps = 1e-9) ?max_iters ?warm_start ?deadline
    ?(inject_warm_crash = false) { Simplex.direction; c; rows } =
  let started = Sa_util.Timing.now () in
  (match deadline with
  | Some d when started > d ->
      Sa_util.Fail.raise_
        (Sa_util.Fail.Timeout { stage = "lp.revised"; elapsed_s = 0.0 })
  | _ -> ());
  let nstruct = Array.length c in
  let m = Array.length rows in
  Array.iter
    (fun (a, _, _) ->
      if Array.length a <> nstruct then invalid_arg "Revised.solve: row length mismatch")
    rows;
  let sign = match direction with Simplex.Maximize -> 1.0 | Simplex.Minimize -> -1.0 in
  let flip = Array.make m false in
  let norm =
    Array.mapi
      (fun i (a, rel, b) ->
        if b < 0.0 then begin
          flip.(i) <- true;
          let rel' =
            match rel with Simplex.Le -> Simplex.Ge | Simplex.Ge -> Simplex.Le | Simplex.Eq -> Simplex.Eq
          in
          (Array.map (fun v -> -.v) a, rel', -.b)
        end
        else (a, rel, b))
      rows
  in
  let n_art =
    Array.fold_left
      (fun acc (_, rel, _) ->
        match rel with Simplex.Le -> acc | Simplex.Ge | Simplex.Eq -> acc + 1)
      0 norm
  in
  let ncols = nstruct + m + n_art in
  let cols = Array.make ncols [||] in
  let artificial = Array.make ncols false in
  let b = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let slack_col = Array.make m (-1) in
  let art_col = Array.make m (-1) in
  (* structural columns, sparse *)
  for j = 0 to nstruct - 1 do
    let entries = ref [] in
    for i = m - 1 downto 0 do
      let a, _, _ = norm.(i) in
      if a.(j) <> 0.0 then entries := (i, a.(j)) :: !entries
    done;
    cols.(j) <- Array.of_list !entries
  done;
  let next_art = ref (nstruct + m) in
  Array.iteri
    (fun i (_, rel, rhs) ->
      b.(i) <- rhs;
      let sc = nstruct + i in
      slack_col.(i) <- sc;
      match rel with
      | Simplex.Le ->
          cols.(sc) <- [| (i, 1.0) |];
          basis.(i) <- sc
      | Simplex.Ge ->
          cols.(sc) <- [| (i, -1.0) |];
          let ac = !next_art in
          incr next_art;
          cols.(ac) <- [| (i, 1.0) |];
          artificial.(ac) <- true;
          art_col.(i) <- ac;
          basis.(i) <- ac
      | Simplex.Eq ->
          cols.(sc) <- [||];
          let ac = !next_art in
          incr next_art;
          cols.(ac) <- [| (i, 1.0) |];
          artificial.(ac) <- true;
          art_col.(i) <- ac;
          basis.(i) <- ac)
    norm;
  let in_basis = Array.make ncols false in
  Array.iter (fun j -> in_basis.(j) <- true) basis;
  let t =
    {
      m;
      ncols;
      cols;
      artificial;
      b;
      etas = [||];
      n_etas = 0;
      pivots_since_refactor = 0;
      basis;
      x_b = Array.copy b;
      in_basis;
      (* Rebuilding the file costs O(m * file nnz) and one m-vector per
         basis column, so the interval must grow with m or tall problems
         spend their time refactorizing. *)
      refactor_interval = max Tol.default_refactor_interval (m / 4);
    }
  in
  let max_iters =
    match max_iters with Some v -> v | None -> 50_000 + (50 * (m + ncols))
  in
  let infeasible_solution status =
    {
      Simplex.status;
      x = Array.make nstruct 0.0;
      objective = 0.0;
      duals = Array.make m 0.0;
    }
  in
  let c2 = Array.make ncols 0.0 in
  for j = 0 to nstruct - 1 do
    c2.(j) <- sign *. c.(j)
  done;
  let iterations = ref 0 in
  let warm_used =
    match warm_start with
    | None -> false
    | Some wb -> try_warm_basis ~inject_crash:inject_warm_crash t wb
  in
  let phase1 =
    if warm_used || n_art = 0 then `Optimal
    else begin
      let c1 = Array.make ncols 0.0 in
      for j = 0 to ncols - 1 do
        if artificial.(j) then c1.(j) <- -1.0
      done;
      let status, iters =
        run_phase t ~costs:c1 ~eps ~max_iters ~allowed:(fun _ -> true) ~deadline
          ~started
      in
      iterations := !iterations + iters;
      match status with
      | `Optimal ->
          let z =
            Array.to_list (Array.mapi (fun i col -> (i, col)) t.basis)
            |> List.fold_left
                 (fun acc (i, col) ->
                   if artificial.(col) then acc -. t.x_b.(i) else acc)
                 0.0
          in
          if z < -.feas_eps then `Infeasible
          else begin
            (* drive basic artificials out where a non-artificial pivot exists *)
            for i = 0 to m - 1 do
              if artificial.(t.basis.(i)) then begin
                let found = ref (-1) in
                for j = 0 to ncols - 1 do
                  if !found < 0 && (not artificial.(j)) && not t.in_basis.(j) then begin
                    let w = ftran t t.cols.(j) in
                    if Float.abs w.(i) > 1e-6 then begin
                      pivot t ~row:i ~col:j ~w;
                      found := j
                    end
                  end
                done
              end
            done;
            `Optimal
          end
      | `Unbounded -> `Infeasible
      | `Iteration_limit -> `Iteration_limit
    end
  in
  let finish solution final_basis =
    (solution, final_basis, { iterations = !iterations; warm_used })
  in
  match phase1 with
  | `Infeasible -> finish (infeasible_solution Simplex.Infeasible) None
  | `Iteration_limit -> finish (infeasible_solution Simplex.Iteration_limit) None
  | `Optimal -> (
      let allowed j = not artificial.(j) in
      let status, iters =
        run_phase t ~costs:c2 ~eps ~max_iters ~allowed ~deadline ~started
      in
      iterations := !iterations + iters;
      match status with
      | `Unbounded -> finish (infeasible_solution Simplex.Unbounded) None
      | `Iteration_limit -> finish (infeasible_solution Simplex.Iteration_limit) None
      | `Optimal ->
          let x = Array.make nstruct 0.0 in
          Array.iteri
            (fun i col -> if col < nstruct then x.(col) <- t.x_b.(i))
            t.basis;
          for j = 0 to nstruct - 1 do
            if x.(j) < 0.0 && x.(j) > -.feas_eps then x.(j) <- 0.0
          done;
          let y = btran t c2 in
          let duals = Array.make m 0.0 in
          for i = 0 to m - 1 do
            let v = if flip.(i) then -.y.(i) else y.(i) in
            duals.(i) <- sign *. v
          done;
          let objective =
            let acc = ref 0.0 in
            Array.iteri (fun i col -> acc := !acc +. (c2.(col) *. t.x_b.(i))) t.basis;
            sign *. !acc
          in
          finish
            { Simplex.status = Simplex.Optimal; x; objective; duals }
            (Some (Array.copy t.basis)))

let solve_warm ?eps ?max_iters ?warm_start ?deadline ?inject_warm_crash problem =
  Sa_telemetry.Trace.with_span ~hist:h_solve "lp.revised.solve" (fun () ->
      Tel.incr m_solves;
      let ((solution, _, stats) as result) =
        solve_warm_impl ?eps ?max_iters ?warm_start ?deadline ?inject_warm_crash
          problem
      in
      Sa_telemetry.Trace.add_attr "pivots" (string_of_int stats.iterations);
      Sa_telemetry.Trace.add_attr "warm" (string_of_bool stats.warm_used);
      let status_label =
        match solution.Simplex.status with
        | Simplex.Optimal -> "optimal"
        | Simplex.Infeasible -> "infeasible"
        | Simplex.Unbounded -> "unbounded"
        | Simplex.Iteration_limit -> "iteration_limit"
      in
      Sa_telemetry.Eventlog.emit "revised_solve"
        [
          ("status", Sa_telemetry.Eventlog.Str status_label);
          ("pivots", Sa_telemetry.Eventlog.Int stats.iterations);
          ("warm", Sa_telemetry.Eventlog.Bool stats.warm_used);
          ("objective", Sa_telemetry.Eventlog.Float solution.Simplex.objective);
        ];
      result)

let solve ?eps ?max_iters ?deadline problem =
  let solution, _, _ = solve_warm ?eps ?max_iters ?deadline problem in
  solution
