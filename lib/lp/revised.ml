(* Sparse revised simplex with a product-form-inverse eta file.

   Shares the external types with [Simplex].  Internally:
   - structural + slack/surplus + artificial columns, stored as one flat
     CSC matrix (cstart/crow/cval) in workspace buffers;
   - the basis inverse is kept as an eta file: B = E_1 E_2 ... E_K, each
     E_k identity except for one (sparse) column, so ftran/btran cost
     O(nnz) per eta instead of O(m^2) dense updates.  The file lives in a
     structure-of-arrays bump store (eta_row/eta_pivot/eta_start backed by
     eta_idx/eta_vals pools) owned by the per-domain {!Workspace}, so
     steady-state solves stop allocating per pivot;
   - the eta file is rebuilt from the current basis every
     [Tol.default_refactor_interval] pivots (sparsest-column-first greedy
     elimination), with a drift check of the maintained basic solution
     against the recomputed one;
   - entering columns are chosen by the configured [pricing] rule:
     [Dantzig] (default) prices over a small candidate list (partial
     pricing) with full cyclic scans only to replenish the list or prove
     optimality; [Devex] keeps Forrest–Goldfarb reference weights
     (score d_j^2/gamma_j, weights reset to the unit framework at every
     refactorization) and typically needs far fewer pivots on wide LPs.
     Both fall back to Bland's rule after the anti-cycling threshold, and
     both break ties deterministically towards the lowest column index;
   - two phases, artificials blocked in phase 2.

   [solve_warm] additionally accepts a starting basis (typically the
   optimal basis of a previous solve on a same-shape problem) and, when
   that basis is still primal feasible for the new data, crash-pivots it
   into the eta representation and jumps straight to phase 2 — the
   warm-start path used by the batch engine's basis cache.

   All scratch state (CSC matrix, basis/x_b, FTRAN/BTRAN work vectors,
   pricing arrays, the eta store) is acquired from a {!Workspace} — by
   default the calling domain's arena — and fully (re)initialised over the
   range used, so results are bitwise independent of whatever solved on
   the domain before. *)

module Tel = Sa_telemetry.Metrics

let m_solves = Tel.counter "lp.revised.solves"
let m_pivots = Tel.counter "lp.revised.pivots"
let m_refactor = Tel.counter "lp.revised.refactorizations"
let m_pricing_scans = Tel.counter "lp.revised.pricing_scans"
let m_warm_attempts = Tel.counter "lp.revised.warm_attempts"
let m_warm_installs = Tel.counter "lp.revised.warm_installs"
let m_warm_rollbacks = Tel.counter "lp.revised.warm_rollbacks"
let m_devex_pivots = Tel.counter "lp.pricing.devex_pivots"
let m_dantzig_pivots = Tel.counter "lp.pricing.dantzig_pivots"
let m_pricing_resets = Tel.counter "lp.pricing.resets"
let h_solve = Tel.histogram "lp.revised.solve.seconds"
let log_src = Logs.Src.create "sa.lp.revised" ~doc:"Revised sparse simplex"

module Log = (val Logs.src_log log_src : Logs.LOG)

type basis = int array

type stats = { iterations : int; warm_used : bool }

type pricing = Dantzig | Devex

type spec = {
  s_direction : Simplex.direction;
  s_nstruct : int;
  s_m : int;
  s_c : float array;
  s_rel : Simplex.relation array;
  s_rhs : float array;
  s_cstart : int array;
  s_crow : int array;
  s_cval : float array;
}

let feas_eps = Tol.feas_eps

(* Workspace slot assignments (slots 0..15 of each typed pool belong to
   this module; see Workspace docs).  Slot numbers are per element type,
   so float slot 0 and int slot 0 are distinct buffers. *)
module Slot = struct
  (* float slots *)
  let ftran = 0
  let btran = 1
  let xb = 2
  let scratch = 3
  let eta_pivot = 4
  let eta_vals = 5
  let weights = 6
  let rho = 7
  let cost1 = 8
  let cost2 = 9
  let cval = 10
  let rhs = 11

  (* int slots *)
  let basis = 0
  let cand = 1
  let eta_row = 2
  let eta_start = 3
  let eta_idx = 4
  let cstart = 5
  let crow = 6

  (* bool slots *)
  let artificial = 0
  let in_basis = 1
  let flip = 2
  let assigned = 3
end

type core = {
  m : int;
  ncols : int;
  nstruct : int;
  (* flat CSC over structural | slack | artificial columns *)
  cstart : int array; (* ncols + 1 *)
  crow : int array;
  cval : float array;
  artificial : bool array;
  b : float array;
  (* eta file, structure-of-arrays: eta k occupies header slot k and the
     idx/vals range [eta_start.(k), eta_start.(k+1)).  Fields are rebound
     when the workspace grows a buffer (growth preserves the prefix). *)
  mutable eta_row : int array;
  mutable eta_pivot : float array;
  mutable eta_start : int array; (* n_etas + 1 entries *)
  mutable eta_idx : int array;
  mutable eta_vals : float array;
  mutable n_etas : int;
  mutable eta_nnz : int;
  mutable pivots_since_refactor : int;
      (* the rebuilt file itself holds one eta per basis column, so the
         refactorization trigger must count pivots, not file length *)
  mutable refactor_gen : int;
      (* bumped by every refactorization; devex pricing watches it to
         reset its reference weights *)
  basis : int array;
  x_b : float array; (* fixed buffer; refactorization blits into it *)
  in_basis : bool array;
  w_ftran : float array; (* shared FTRAN result; valid until the next ftran *)
  y_btran : float array; (* shared BTRAN result; valid until the next btran *)
  refactor_interval : int;
  ws : Workspace.t;
}

let col_dot t j v =
  let acc = ref 0.0 in
  for p = t.cstart.(j) to t.cstart.(j + 1) - 1 do
    acc := !acc +. (t.cval.(p) *. v.(t.crow.(p)))
  done;
  !acc

(* ------------------------------ eta store ------------------------------ *)

let ensure_eta_headers t =
  let need = t.n_etas + 1 in
  if Array.length t.eta_row < need then begin
    t.eta_row <- Workspace.ints t.ws ~slot:Slot.eta_row need;
    t.eta_pivot <- Workspace.floats t.ws ~slot:Slot.eta_pivot need
  end;
  if Array.length t.eta_start < need + 1 then
    t.eta_start <- Workspace.ints t.ws ~slot:Slot.eta_start (need + 1)

let ensure_eta_nnz t extra =
  let need = t.eta_nnz + extra in
  if Array.length t.eta_idx < need then begin
    t.eta_idx <- Workspace.ints t.ws ~slot:Slot.eta_idx need;
    t.eta_vals <- Workspace.floats t.ws ~slot:Slot.eta_vals need
  end

(* Append one eta built from [w.(0..m-1)] with the given pivot row. *)
let push_eta_from t ~row w =
  let nnz = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> row && Float.abs w.(i) > Tol.eta_drop_eps then incr nnz
  done;
  ensure_eta_headers t;
  ensure_eta_nnz t !nnz;
  let k = t.n_etas in
  t.eta_row.(k) <- row;
  t.eta_pivot.(k) <- w.(row);
  let p = ref t.eta_nnz in
  for i = 0 to t.m - 1 do
    if i <> row && Float.abs w.(i) > Tol.eta_drop_eps then begin
      t.eta_idx.(!p) <- i;
      t.eta_vals.(!p) <- w.(i);
      incr p
    end
  done;
  t.eta_nnz <- !p;
  t.n_etas <- k + 1;
  t.eta_start.(k + 1) <- !p

(* Identity-column eta used as the fallback for a numerically singular
   basis column during refactorization. *)
let push_unit_eta t ~row =
  ensure_eta_headers t;
  let k = t.n_etas in
  t.eta_row.(k) <- row;
  t.eta_pivot.(k) <- 1.0;
  t.n_etas <- k + 1;
  t.eta_start.(k + 1) <- t.eta_nnz

(* In-place w := B^{-1} w, applying eta inverses oldest-to-newest.  An eta
   whose pivot-row entry is zero leaves the vector untouched, so sparse
   inputs stay cheap. *)
let apply_etas t w =
  for k = 0 to t.n_etas - 1 do
    let r = t.eta_row.(k) in
    let xr = w.(r) in
    if xr <> 0.0 then begin
      let zr = xr /. t.eta_pivot.(k) in
      w.(r) <- zr;
      let idx = t.eta_idx and vals = t.eta_vals in
      for p = t.eta_start.(k) to t.eta_start.(k + 1) - 1 do
        w.(idx.(p)) <- w.(idx.(p)) -. (vals.(p) *. zr)
      done
    end
  done

(* w = B^{-1} A_j, into the shared FTRAN buffer. *)
let ftran t j =
  let w = t.w_ftran in
  Array.fill w 0 t.m 0.0;
  for p = t.cstart.(j) to t.cstart.(j + 1) - 1 do
    w.(t.crow.(p)) <- t.cval.(p)
  done;
  apply_etas t w;
  w

(* In-place y := y B^{-1}, applying eta inverses newest-to-oldest. *)
let btran_core t y =
  for k = t.n_etas - 1 downto 0 do
    let idx = t.eta_idx and vals = t.eta_vals in
    let s = ref 0.0 in
    for p = t.eta_start.(k) to t.eta_start.(k + 1) - 1 do
      s := !s +. (y.(idx.(p)) *. vals.(p))
    done;
    let r = t.eta_row.(k) in
    y.(r) <- (y.(r) -. !s) /. t.eta_pivot.(k)
  done

(* y^T = c_B^T B^{-1}, into the shared BTRAN buffer. *)
let btran t costs =
  let y = t.y_btran in
  for i = 0 to t.m - 1 do
    y.(i) <- costs.(t.basis.(i))
  done;
  btran_core t y;
  y

(* --------------------------- refactorization ---------------------------- *)

(* Rebuild the eta file from the current basis: greedy elimination,
   sparsest original column first, pivot row chosen by largest magnitude
   among the rows not yet assigned.  Rows may end up reassigned to
   different basis positions — harmless, since solution and duals depend
   only on the (column, row) pairing recorded in [t.basis].  Finishes by
   recomputing x_B from scratch and checking drift of the incrementally
   maintained values. *)
let refactorize t =
  Tel.incr m_refactor;
  t.refactor_gen <- t.refactor_gen + 1;
  let old_basis = Array.sub t.basis 0 t.m in
  t.n_etas <- 0;
  t.eta_nnz <- 0;
  t.eta_start.(0) <- 0;
  t.pivots_since_refactor <- 0;
  let order = Array.copy old_basis in
  let col_len j = t.cstart.(j + 1) - t.cstart.(j) in
  Array.sort (fun a b -> compare (col_len a) (col_len b)) order;
  let assigned = Workspace.bools t.ws ~slot:Slot.assigned t.m in
  Array.fill assigned 0 t.m false;
  Array.iter
    (fun j ->
      let w = ftran t j in
      let r = ref (-1) in
      for i = 0 to t.m - 1 do
        if (not assigned.(i)) && (!r < 0 || Float.abs w.(i) > Float.abs w.(!r)) then
          r := i
      done;
      let r = !r in
      if Float.abs w.(r) <= Tol.pivot_eps then begin
        (* Numerically singular basis column: fall back to a unit eta so the
           factorization stays invertible; the drift check below reports the
           damage. *)
        Log.warn (fun f ->
            f "refactorization: near-singular pivot %.3e for column %d" w.(r) j);
        push_unit_eta t ~row:r
      end
      else push_eta_from t ~row:r w;
      assigned.(r) <- true;
      t.basis.(r) <- j)
    order;
  let xb = Workspace.floats t.ws ~slot:Slot.scratch t.m in
  Array.blit t.b 0 xb 0 t.m;
  apply_etas t xb;
  (* drift check: compare per-column values across the row reassignment
     (t.x_b still holds the incrementally maintained values) *)
  let old_val = Hashtbl.create t.m in
  Array.iteri (fun i j -> Hashtbl.replace old_val j t.x_b.(i)) old_basis;
  let drift = ref 0.0 in
  for i = 0 to t.m - 1 do
    match Hashtbl.find_opt old_val t.basis.(i) with
    | Some v -> drift := Float.max !drift (Float.abs (xb.(i) -. v))
    | None -> ()
  done;
  if !drift > Tol.drift_eps then
    Log.warn (fun f ->
        f "refactorization drift %.3e exceeds %.1e (m=%d, pivots since last=%d)"
          !drift Tol.drift_eps t.m t.refactor_interval);
  Array.blit xb 0 t.x_b 0 t.m

let pivot t ~row ~col ~w =
  push_eta_from t ~row w;
  let xr = t.x_b.(row) /. w.(row) in
  t.x_b.(row) <- xr;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = w.(i) in
      if Float.abs f > Tol.eta_drop_eps then t.x_b.(i) <- t.x_b.(i) -. (f *. xr)
    end
  done;
  t.in_basis.(t.basis.(row)) <- false;
  t.in_basis.(col) <- true;
  t.basis.(row) <- col;
  t.pivots_since_refactor <- t.pivots_since_refactor + 1;
  if t.pivots_since_refactor >= t.refactor_interval then refactorize t

(* ------------------------------- pricing -------------------------------- *)

let run_phase t ~costs ~eps ~max_iters ~allowed ~pricing ~deadline ~started =
  let iter = ref 0 in
  let bland_threshold = max 2000 (10 * (t.m + t.ncols)) in
  (* Dantzig partial pricing: reduced costs are evaluated only over a small
     candidate list; a full (cyclic) scan runs just to replenish the list or
     to certify optimality. *)
  let cap = max 16 (t.ncols / 16) in
  let cand = Workspace.ints t.ws ~slot:Slot.cand cap in
  let n_cand = ref 0 in
  let scan_start = ref 0 in
  (* Devex reference weights: unit framework at phase start, reset whenever
     the eta file is refactorized. *)
  let weights =
    match pricing with
    | Dantzig -> [||]
    | Devex ->
        let gamma = Workspace.floats t.ws ~slot:Slot.weights t.ncols in
        Array.fill gamma 0 t.ncols 1.0;
        gamma
  in
  let weights_gen = ref t.refactor_gen in
  let reduced y j = costs.(j) -. col_dot t j y in
  let result = ref None in
  while !result = None do
    incr iter;
    (match deadline with
    | Some d when !iter land 31 = 0 && Sa_util.Timing.now () > d ->
        Tel.add m_pivots !iter;
        Sa_util.Fail.raise_
          (Sa_util.Fail.Timeout
             { stage = "lp.revised"; elapsed_s = Sa_util.Timing.now () -. started })
    | _ -> ());
    if !iter > max_iters then result := Some `Iteration_limit
    else begin
      let y = btran t costs in
      let use_bland = !iter > bland_threshold in
      let enter = ref (-1) in
      if use_bland then (
        (* Bland: lowest eligible index, full scan — anti-cycling. *)
        try
          for j = 0 to t.ncols - 1 do
            if allowed j && (not t.in_basis.(j)) && reduced y j > eps then begin
              enter := j;
              raise Exit
            end
          done
        with Exit -> ())
      else begin
        match pricing with
        | Devex ->
            if t.refactor_gen <> !weights_gen then begin
              (* refactorized since the last pricing step: back to the unit
                 reference framework *)
              Array.fill weights 0 t.ncols 1.0;
              weights_gen := t.refactor_gen;
              Tel.incr m_pricing_resets
            end;
            (* full devex scan: maximize d_j^2 / gamma_j; strict improvement
               only, so ties go to the lowest column index *)
            let best_score = ref 0.0 in
            for j = 0 to t.ncols - 1 do
              if allowed j && not t.in_basis.(j) then begin
                let d = reduced y j in
                if d > eps then begin
                  let score = d *. d /. weights.(j) in
                  if score > !best_score then begin
                    best_score := score;
                    enter := j
                  end
                end
              end
            done
        | Dantzig ->
            let best = ref eps in
            let keep = ref 0 in
            for k = 0 to !n_cand - 1 do
              let j = cand.(k) in
              if allowed j && not t.in_basis.(j) then begin
                let d = reduced y j in
                if d > eps then begin
                  cand.(!keep) <- j;
                  incr keep;
                  if d > !best then begin
                    best := d;
                    enter := j
                  end
                end
              end
            done;
            n_cand := !keep;
            if !enter < 0 then begin
              (* candidate list exhausted: cyclic full scan to refill *)
              Tel.incr m_pricing_scans;
              n_cand := 0;
              let scanned = ref 0 in
              let j = ref !scan_start in
              while !scanned < t.ncols && !n_cand < cap do
                let jj = !j in
                if allowed jj && not t.in_basis.(jj) then begin
                  let d = reduced y jj in
                  if d > eps then begin
                    cand.(!n_cand) <- jj;
                    incr n_cand;
                    if d > !best then begin
                      best := d;
                      enter := jj
                    end
                  end
                end;
                incr scanned;
                j := if jj + 1 >= t.ncols then 0 else jj + 1
              done;
              scan_start := !j
            end
      end;
      if !enter < 0 then result := Some `Optimal
      else begin
        let col = !enter in
        let w = ftran t col in
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to t.m - 1 do
          if w.(i) > eps then begin
            let ratio = t.x_b.(i) /. w.(i) in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && !leave >= 0
                 && t.basis.(i) < t.basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then result := Some `Unbounded
        else begin
          let r = !leave in
          (match pricing with
          | Devex when not use_bland ->
              (* Forrest–Goldfarb update.  alpha_j = rho · A_j where
                 rho = e_r^T B^{-1} (one extra btran of a unit vector);
                 gamma_j <- max(gamma_j, (alpha_j/alpha_q)^2 gamma_q) for
                 nonbasic j, and the leaving variable re-enters the
                 nonbasic set with gamma_p = max(gamma_q/alpha_q^2, 1). *)
              let rho = Workspace.floats t.ws ~slot:Slot.rho t.m in
              Array.fill rho 0 t.m 0.0;
              rho.(r) <- 1.0;
              btran_core t rho;
              let alpha_q = w.(r) in
              let gamma_q = weights.(col) in
              for j = 0 to t.ncols - 1 do
                if j <> col && allowed j && not t.in_basis.(j) then begin
                  let alpha_j = col_dot t j rho in
                  if alpha_j <> 0.0 then begin
                    let ratio = alpha_j /. alpha_q in
                    let cand_w = ratio *. ratio *. gamma_q in
                    if cand_w > weights.(j) then weights.(j) <- cand_w
                  end
                end
              done;
              let p = t.basis.(r) in
              let wp = gamma_q /. (alpha_q *. alpha_q) in
              weights.(p) <- (if wp > 1.0 then wp else 1.0)
          | _ -> ());
          pivot t ~row:r ~col ~w
        end
      end
    end
  done;
  let status = match !result with Some r -> r | None -> assert false in
  Tel.add m_pivots !iter;
  (match pricing with
  | Devex -> Tel.add m_devex_pivots !iter
  | Dantzig -> Tel.add m_dantzig_pivots !iter);
  (status, !iter)

(* ------------------------------ warm start ------------------------------ *)

(* Try to install [wb] as the starting basis by pivoting its missing
   columns into the initial (slack/artificial) basis — a "crash" start.
   The initial eta file is empty (identity) and a cached optimal basis is
   mostly slack columns, so this costs one eta per *structural* basic
   column.  Accept only if the basis assembles with stable pivots and the
   implied x_B is (tolerably) non-negative, i.e. still primal feasible for
   the new b; otherwise roll the core back to its pristine cold-start
   state. *)
let try_warm_basis ?(inject_crash = false) t wb =
  Tel.incr m_warm_attempts;
  let valid =
    Array.length wb = t.m
    && Array.for_all (fun j -> j >= 0 && j < t.ncols && not t.artificial.(j)) wb
    &&
    let seen = Array.make t.ncols false in
    Array.for_all
      (fun j ->
        if seen.(j) then false
        else begin
          seen.(j) <- true;
          true
        end)
      wb
  in
  if not valid then false
  else begin
    let init_basis = Array.sub t.basis 0 t.m in
    let in_target = Array.make t.ncols false in
    Array.iter (fun j -> in_target.(j) <- true) wb;
    let reset () =
      Tel.incr m_warm_rollbacks;
      Log.debug (fun m ->
          m "warm basis rejected (stale for new data); cold start (m=%d)" t.m);
      Array.blit init_basis 0 t.basis 0 t.m;
      Array.fill t.in_basis 0 t.ncols false;
      Array.iter (fun j -> t.in_basis.(j) <- true) init_basis;
      t.n_etas <- 0;
      t.eta_nnz <- 0;
      t.eta_start.(0) <- 0;
      t.pivots_since_refactor <- 0;
      Array.blit t.b 0 t.x_b 0 t.m;
      false
    in
    let ok = ref true in
    Array.iter
      (fun j ->
        if !ok && not t.in_basis.(j) then begin
          let w = ftran t j in
          let row = ref (-1) in
          for i = 0 to t.m - 1 do
            if
              (not in_target.(t.basis.(i)))
              && Float.abs w.(i) > Tol.warm_pivot_eps
              && (!row < 0 || Float.abs w.(i) > Float.abs w.(!row))
            then row := i
          done;
          if !row < 0 then ok := false else pivot t ~row:!row ~col:j ~w
        end)
      wb;
    (* Fault-injection hook: pretend the crash pivot-in broke down *after*
       the state mutations above, so [reset] exercises the real rollback
       path rather than the cheap never-started one. *)
    if inject_crash then ok := false;
    let x_b_feasible () =
      let ok = ref true in
      for i = 0 to t.m - 1 do
        if t.x_b.(i) < -.feas_eps then ok := false
      done;
      !ok
    in
    if (not !ok) || not (x_b_feasible ()) then reset ()
    else begin
      for i = 0 to t.m - 1 do
        if t.x_b.(i) < 0.0 then t.x_b.(i) <- 0.0
      done;
      Tel.incr m_warm_installs;
      true
    end
  end

(* ------------------------------ solve core ------------------------------ *)

let solve_spec_impl ~ws ~pricing ?(eps = Tol.solve_eps) ?max_iters ?warm_start
    ?deadline ?(inject_warm_crash = false) spec =
  let started = Sa_util.Timing.now () in
  (match deadline with
  | Some d when started > d ->
      Sa_util.Fail.raise_
        (Sa_util.Fail.Timeout { stage = "lp.revised"; elapsed_s = 0.0 })
  | _ -> ());
  let nstruct = spec.s_nstruct in
  let m = spec.s_m in
  let sign =
    match spec.s_direction with Simplex.Maximize -> 1.0 | Simplex.Minimize -> -1.0
  in
  (* Normalise rhs >= 0, flipping rows as needed; the flip is applied on
     the fly while assembling the internal CSC matrix. *)
  let flip = Workspace.bools ws ~slot:Slot.flip m in
  for i = 0 to m - 1 do
    flip.(i) <- spec.s_rhs.(i) < 0.0
  done;
  let rel i =
    let r = spec.s_rel.(i) in
    if flip.(i) then
      match r with Simplex.Le -> Simplex.Ge | Simplex.Ge -> Simplex.Le | Simplex.Eq -> Simplex.Eq
    else r
  in
  let n_art = ref 0 in
  let n_slack = ref 0 in
  for i = 0 to m - 1 do
    match rel i with
    | Simplex.Le -> incr n_slack
    | Simplex.Ge ->
        incr n_slack;
        incr n_art
    | Simplex.Eq -> incr n_art
  done;
  let n_art = !n_art in
  let ncols = nstruct + m + n_art in
  let nnz = spec.s_cstart.(nstruct) + !n_slack + n_art in
  let cstart = Workspace.ints ws ~slot:Slot.cstart (ncols + 1) in
  let crow = Workspace.ints ws ~slot:Slot.crow (max 1 nnz) in
  let cval = Workspace.floats ws ~slot:Slot.cval (max 1 nnz) in
  let artificial = Workspace.bools ws ~slot:Slot.artificial ncols in
  Array.fill artificial 0 ncols false;
  let b = Workspace.floats ws ~slot:Slot.rhs m in
  for i = 0 to m - 1 do
    b.(i) <- (if flip.(i) then -.spec.s_rhs.(i) else spec.s_rhs.(i))
  done;
  let basis = Workspace.ints ws ~slot:Slot.basis m in
  (* structural columns (rows ascending, zeros already dropped) *)
  let pos = ref 0 in
  for j = 0 to nstruct - 1 do
    cstart.(j) <- !pos;
    for p = spec.s_cstart.(j) to spec.s_cstart.(j + 1) - 1 do
      let r = spec.s_crow.(p) in
      crow.(!pos) <- r;
      cval.(!pos) <- (if flip.(r) then -.spec.s_cval.(p) else spec.s_cval.(p));
      incr pos
    done
  done;
  (* slack/surplus columns: one per row, empty for Eq rows *)
  for i = 0 to m - 1 do
    let sc = nstruct + i in
    cstart.(sc) <- !pos;
    match rel i with
    | Simplex.Le ->
        crow.(!pos) <- i;
        cval.(!pos) <- 1.0;
        incr pos;
        basis.(i) <- sc
    | Simplex.Ge ->
        crow.(!pos) <- i;
        cval.(!pos) <- -1.0;
        incr pos
    | Simplex.Eq -> ()
  done;
  (* artificial columns, assigned in row order for Ge/Eq rows *)
  let next_art = ref (nstruct + m) in
  for i = 0 to m - 1 do
    match rel i with
    | Simplex.Le -> ()
    | Simplex.Ge | Simplex.Eq ->
        let ac = !next_art in
        incr next_art;
        cstart.(ac) <- !pos;
        crow.(!pos) <- i;
        cval.(!pos) <- 1.0;
        incr pos;
        artificial.(ac) <- true;
        basis.(i) <- ac
  done;
  cstart.(ncols) <- !pos;
  let in_basis = Workspace.bools ws ~slot:Slot.in_basis ncols in
  Array.fill in_basis 0 ncols false;
  for i = 0 to m - 1 do
    in_basis.(basis.(i)) <- true
  done;
  let x_b = Workspace.floats ws ~slot:Slot.xb m in
  Array.blit b 0 x_b 0 m;
  let t =
    {
      m;
      ncols;
      nstruct;
      cstart;
      crow;
      cval;
      artificial;
      b;
      eta_row = Workspace.ints ws ~slot:Slot.eta_row 8;
      eta_pivot = Workspace.floats ws ~slot:Slot.eta_pivot 8;
      eta_start = Workspace.ints ws ~slot:Slot.eta_start 9;
      eta_idx = Workspace.ints ws ~slot:Slot.eta_idx 8;
      eta_vals = Workspace.floats ws ~slot:Slot.eta_vals 8;
      n_etas = 0;
      eta_nnz = 0;
      pivots_since_refactor = 0;
      refactor_gen = 0;
      basis;
      x_b;
      in_basis;
      w_ftran = Workspace.floats ws ~slot:Slot.ftran m;
      y_btran = Workspace.floats ws ~slot:Slot.btran m;
      (* Rebuilding the file costs O(m * file nnz) and one m-vector per
         basis column, so the interval must grow with m or tall problems
         spend their time refactorizing. *)
      refactor_interval = max Tol.default_refactor_interval (m / 4);
      ws;
    }
  in
  t.eta_start.(0) <- 0;
  let max_iters =
    match max_iters with Some v -> v | None -> 50_000 + (50 * (m + ncols))
  in
  let infeasible_solution status =
    {
      Simplex.status;
      x = Array.make nstruct 0.0;
      objective = 0.0;
      duals = Array.make m 0.0;
    }
  in
  let c2 = Workspace.floats ws ~slot:Slot.cost2 ncols in
  Array.fill c2 0 ncols 0.0;
  for j = 0 to nstruct - 1 do
    c2.(j) <- sign *. spec.s_c.(j)
  done;
  let iterations = ref 0 in
  let warm_used =
    match warm_start with
    | None -> false
    | Some wb -> try_warm_basis ~inject_crash:inject_warm_crash t wb
  in
  let phase1 =
    if warm_used || n_art = 0 then `Optimal
    else begin
      let c1 = Workspace.floats ws ~slot:Slot.cost1 ncols in
      for j = 0 to ncols - 1 do
        c1.(j) <- (if artificial.(j) then -1.0 else 0.0)
      done;
      let status, iters =
        run_phase t ~costs:c1 ~eps ~max_iters ~allowed:(fun _ -> true) ~pricing
          ~deadline ~started
      in
      iterations := !iterations + iters;
      match status with
      | `Optimal ->
          let z = ref 0.0 in
          for i = 0 to m - 1 do
            if artificial.(t.basis.(i)) then z := !z -. t.x_b.(i)
          done;
          if !z < -.feas_eps then `Infeasible
          else begin
            (* drive basic artificials out where a non-artificial pivot exists *)
            for i = 0 to m - 1 do
              if artificial.(t.basis.(i)) then begin
                let found = ref (-1) in
                for j = 0 to ncols - 1 do
                  if !found < 0 && (not artificial.(j)) && not t.in_basis.(j) then begin
                    let w = ftran t j in
                    if Float.abs w.(i) > Tol.driveout_eps then begin
                      pivot t ~row:i ~col:j ~w;
                      found := j
                    end
                  end
                done
              end
            done;
            `Optimal
          end
      | `Unbounded -> `Infeasible
      | `Iteration_limit -> `Iteration_limit
    end
  in
  let finish solution final_basis =
    (solution, final_basis, { iterations = !iterations; warm_used })
  in
  match phase1 with
  | `Infeasible -> finish (infeasible_solution Simplex.Infeasible) None
  | `Iteration_limit -> finish (infeasible_solution Simplex.Iteration_limit) None
  | `Optimal -> (
      let allowed j = not artificial.(j) in
      let status, iters =
        run_phase t ~costs:c2 ~eps ~max_iters ~allowed ~pricing ~deadline ~started
      in
      iterations := !iterations + iters;
      match status with
      | `Unbounded -> finish (infeasible_solution Simplex.Unbounded) None
      | `Iteration_limit -> finish (infeasible_solution Simplex.Iteration_limit) None
      | `Optimal ->
          let x = Array.make nstruct 0.0 in
          for i = 0 to m - 1 do
            let col = t.basis.(i) in
            if col < nstruct then x.(col) <- t.x_b.(i)
          done;
          for j = 0 to nstruct - 1 do
            if x.(j) < 0.0 && x.(j) > -.feas_eps then x.(j) <- 0.0
          done;
          let y = btran t c2 in
          let duals = Array.make m 0.0 in
          for i = 0 to m - 1 do
            let v = if flip.(i) then -.y.(i) else y.(i) in
            duals.(i) <- sign *. v
          done;
          let objective =
            let acc = ref 0.0 in
            for i = 0 to m - 1 do
              acc := !acc +. (c2.(t.basis.(i)) *. t.x_b.(i))
            done;
            sign *. !acc
          in
          finish
            { Simplex.status = Simplex.Optimal; x; objective; duals }
            (Some (Array.sub t.basis 0 m)))

(* --------------------------- public interface --------------------------- *)

(* Dense problems are converted to the sparse spec once, up front; the
   conversion is cold-path (the column-generation masters build specs
   directly via [Model]). *)
let spec_of_problem { Simplex.direction; c; rows } =
  let nstruct = Array.length c in
  let m = Array.length rows in
  Array.iter
    (fun (a, _, _) ->
      if Array.length a <> nstruct then invalid_arg "Revised.solve: row length mismatch")
    rows;
  let rel = Array.map (fun (_, r, _) -> r) rows in
  let rhs = Array.map (fun (_, _, v) -> v) rows in
  let cstart = Array.make (nstruct + 1) 0 in
  for i = 0 to m - 1 do
    let a, _, _ = rows.(i) in
    for j = 0 to nstruct - 1 do
      if a.(j) <> 0.0 then cstart.(j + 1) <- cstart.(j + 1) + 1
    done
  done;
  for j = 1 to nstruct do
    cstart.(j) <- cstart.(j) + cstart.(j - 1)
  done;
  let nnz = cstart.(nstruct) in
  let crow = Array.make (max 1 nnz) 0 in
  let cval = Array.make (max 1 nnz) 0.0 in
  let next = Array.sub cstart 0 nstruct in
  for i = 0 to m - 1 do
    let a, _, _ = rows.(i) in
    for j = 0 to nstruct - 1 do
      if a.(j) <> 0.0 then begin
        let p = next.(j) in
        crow.(p) <- i;
        cval.(p) <- a.(j);
        next.(j) <- p + 1
      end
    done
  done;
  {
    s_direction = direction;
    s_nstruct = nstruct;
    s_m = m;
    s_c = c;
    s_rel = rel;
    s_rhs = rhs;
    s_cstart = cstart;
    s_crow = crow;
    s_cval = cval;
  }

let with_ws ?workspace f =
  let ws = match workspace with Some ws -> ws | None -> Workspace.get () in
  if Workspace.acquire ws then
    Fun.protect ~finally:(fun () -> Workspace.release ws) (fun () -> f ws)
  else
    (* the domain arena is busy (reentrant solve): fall back to a transient
       arena rather than trample the outer solve's buffers *)
    f (Workspace.create ())

let instrumented ?(attrs = []) f =
  Sa_telemetry.Trace.with_span ~hist:h_solve "lp.revised.solve" (fun () ->
      Tel.incr m_solves;
      let alloc0 = Gc.allocated_bytes () in
      let ((solution, _, stats) as result) = f () in
      Sa_telemetry.Trace.add_attr "pivots" (string_of_int stats.iterations);
      Sa_telemetry.Trace.add_attr "warm" (string_of_bool stats.warm_used);
      Sa_telemetry.Trace.add_attr "alloc_bytes"
        (Printf.sprintf "%.0f" (Gc.allocated_bytes () -. alloc0));
      List.iter (fun (k, v) -> Sa_telemetry.Trace.add_attr k v) attrs;
      let status_label =
        match solution.Simplex.status with
        | Simplex.Optimal -> "optimal"
        | Simplex.Infeasible -> "infeasible"
        | Simplex.Unbounded -> "unbounded"
        | Simplex.Iteration_limit -> "iteration_limit"
      in
      Sa_telemetry.Eventlog.emit "revised_solve"
        ([
           ("status", Sa_telemetry.Eventlog.Str status_label);
           ("pivots", Sa_telemetry.Eventlog.Int stats.iterations);
           ("warm", Sa_telemetry.Eventlog.Bool stats.warm_used);
           ("objective", Sa_telemetry.Eventlog.Float solution.Simplex.objective);
         ]
        @ List.map (fun (k, v) -> (k, Sa_telemetry.Eventlog.Str v)) attrs);
      result)

let solve_spec ?eps ?max_iters ?warm_start ?deadline ?inject_warm_crash
    ?(pricing = Dantzig) ?workspace ?attrs spec =
  with_ws ?workspace (fun ws ->
      instrumented ?attrs (fun () ->
          solve_spec_impl ~ws ~pricing ?eps ?max_iters ?warm_start ?deadline
            ?inject_warm_crash spec))

let solve_warm ?eps ?max_iters ?warm_start ?deadline ?inject_warm_crash
    ?(pricing = Dantzig) ?workspace problem =
  let spec = spec_of_problem problem in
  solve_spec ?eps ?max_iters ?warm_start ?deadline ?inject_warm_crash ~pricing
    ?workspace spec

let solve ?eps ?max_iters ?deadline ?pricing ?workspace problem =
  let solution, _, _ =
    solve_warm ?eps ?max_iters ?deadline ?pricing ?workspace problem
  in
  solution
