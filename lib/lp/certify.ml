type report = {
  primal_feasible : bool;
  dual_feasible : bool;
  duality_gap : float;
  max_primal_violation : float;
  max_dual_violation : float;
  certified : bool;
}

let scale_of x = Float.max 1.0 (Float.abs x)

let check ?(eps = Tol.cert_eps) (problem : Simplex.problem) (solution : Simplex.solution) =
  let { Simplex.direction; c; rows } = problem in
  let x = solution.Simplex.x and y = solution.Simplex.duals in
  let nvars = Array.length c in
  let m = Array.length rows in
  let primal_violation = ref 0.0 in
  (* variable signs *)
  Array.iter (fun xj -> primal_violation := Float.max !primal_violation (-.xj)) x;
  (* row constraints *)
  let lhs = Array.make m 0.0 in
  Array.iteri
    (fun i (a, rel, b) ->
      let dot = ref 0.0 in
      for j = 0 to nvars - 1 do
        dot := !dot +. (a.(j) *. x.(j))
      done;
      lhs.(i) <- !dot;
      let viol =
        match rel with
        | Simplex.Le -> (!dot -. b) /. scale_of b
        | Simplex.Ge -> (b -. !dot) /. scale_of b
        | Simplex.Eq -> Float.abs (!dot -. b) /. scale_of b
      in
      primal_violation := Float.max !primal_violation viol)
    rows;
  (* Dual sign conventions (see Simplex.solution docs): for Maximize,
     Le-rows need y >= 0 and Ge-rows y <= 0; mirrored for Minimize.  Dual
     feasibility: A^T y >= c (max) resp. A^T y <= c (min). *)
  let dual_violation = ref 0.0 in
  let sign = match direction with Simplex.Maximize -> 1.0 | Simplex.Minimize -> -1.0 in
  Array.iteri
    (fun i (_, rel, _) ->
      let yi = y.(i) in
      let viol =
        match rel with
        | Simplex.Le -> -.(sign *. yi)
        | Simplex.Ge -> sign *. yi
        | Simplex.Eq -> 0.0
      in
      dual_violation := Float.max !dual_violation viol)
    rows;
  for j = 0 to nvars - 1 do
    let col = ref 0.0 in
    Array.iteri (fun i (a, _, _) -> col := !col +. (a.(j) *. y.(i))) rows;
    (* max: A^T y >= c; min: A^T y <= c *)
    let viol = sign *. (c.(j) -. !col) /. scale_of c.(j) in
    dual_violation := Float.max !dual_violation viol
  done;
  let primal_obj = ref 0.0 in
  for j = 0 to nvars - 1 do
    primal_obj := !primal_obj +. (c.(j) *. x.(j))
  done;
  let dual_obj = ref 0.0 in
  Array.iteri (fun i (_, _, b) -> dual_obj := !dual_obj +. (b *. y.(i))) rows;
  let duality_gap = Float.abs (!primal_obj -. !dual_obj) /. scale_of !primal_obj in
  let primal_feasible = !primal_violation <= eps in
  let dual_feasible = !dual_violation <= eps in
  {
    primal_feasible;
    dual_feasible;
    duality_gap;
    max_primal_violation = !primal_violation;
    max_dual_violation = !dual_violation;
    certified =
      solution.Simplex.status = Simplex.Optimal
      && primal_feasible && dual_feasible
      && duality_gap <= eps;
  }

let pp fmt r =
  Format.fprintf fmt
    "certificate: %s (primal %s, dual %s, gap %.2e; violations %.2e / %.2e)"
    (if r.certified then "OK" else "FAILED")
    (if r.primal_feasible then "feasible" else "INFEASIBLE")
    (if r.dual_feasible then "feasible" else "INFEASIBLE")
    r.duality_gap r.max_primal_violation r.max_dual_violation
