(** Grow-only per-domain scratch arena for the LP hot path.

    A workspace owns one grow-only buffer per (element type, slot) pair and
    hands the same storage back on every acquisition, so steady-state
    solver traffic — FTRAN/BTRAN vectors, the eta-file backing store,
    pricing arrays, rounding trial buffers — stops allocating per solve.

    {b Ownership contract.}  [get ()] returns the calling domain's arena
    (Domain.DLS).  This is sound because {!Sa_core.Pool} never migrates a
    job between domains mid-batch: every solve of a job runs on the domain
    that claimed it, and a domain runs one item at a time.  Slot numbers
    partition the arena between client modules:

    - slots [0..15]: {!Revised} (solver core)
    - slots [16..23]: {!Model} (sparse problem staging)
    - slots [24..31]: [Sa_core.Rounding] trial buffers
    - slots [32..39]: [Sa_core.Derand] candidate buffers
    - slots [40..47]: {!Presolve} (reduction scratch and the reduced spec)

    A client may hold its slots only within one self-contained computation
    and must not retain them across a call into another client.  Acquired
    buffer contents beyond the requested prefix are unspecified; clients
    must initialise the range they use (this is also what keeps results
    bitwise independent of whatever previously ran on the domain).

    Telemetry: [lp.workspace.bytes_reused] counts requested bytes served
    from existing capacity; [lp.workspace.grows] counts buffer
    (re)allocations. *)

type t

val create : unit -> t
(** A fresh, empty arena (all buffers zero-capacity).  Used directly by
    tests that compare reused-arena solves against fresh-arena solves, and
    as the fallback when the domain arena is busy. *)

val get : unit -> t
(** The calling domain's arena. *)

val acquire : t -> bool
(** Mark the arena busy for an exclusive client.  Returns [false] if it
    already is — the caller must then fall back to [create ()] rather than
    trample the outer computation's buffers. *)

val release : t -> unit
(** Clear the busy flag set by {!acquire}. *)

val floats : t -> slot:int -> int -> float array
(** [floats t ~slot n] returns the arena's float buffer for [slot], grown
    (by doubling) to capacity [>= n].  Growth preserves the existing
    prefix, so a slot can serve as a bump pool that survives regrowth.
    Contents are otherwise unspecified. *)

val ints : t -> slot:int -> int -> int array
(** As {!floats}, for int buffers. *)

val bools : t -> slot:int -> int -> bool array
(** As {!floats}, for bool buffers. *)
