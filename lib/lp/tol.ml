(* Shared numerical tolerances for the LP layer.

   One definition for each tolerance instead of per-module copies, so the
   dense tableau, the revised (eta-file) engine, and downstream callers such
   as the pricing oracle agree on what "zero" means. *)

let feas_eps = 1e-7
let pivot_eps = 1e-9
let drift_eps = 1e-6
let solve_eps = 1e-9
let driveout_eps = 1e-6
let eta_drop_eps = 1e-13
let warm_pivot_eps = 1e-7
let cert_eps = 1e-6
let default_refactor_interval = 64
