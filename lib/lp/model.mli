(** Incremental LP model builder on top of {!Simplex}.

    Callers register variables (all implicitly [≥ 0]) and sparse constraint
    rows, then [solve].  Variable and row handles are plain ints, stable
    across the model's lifetime, so callers can keep maps from model objects
    (bidder/bundle pairs, (vertex, channel) constraints) to handles. *)

type t

type var = int
type row = int

val create : Simplex.direction -> t

val add_var : t -> obj:float -> var
(** New variable with the given objective coefficient. *)

val add_row : t -> (var * float) list -> Simplex.relation -> float -> row
(** [add_row t coeffs rel rhs] adds [Σ coeff·x rel rhs].  Repeated variables
    in [coeffs] are summed. *)

val add_to_row : t -> row -> var -> float -> unit
(** Add [coeff] to the entry of [var] in an existing row — lets column
    generation extend previously created constraints with new variables. *)

val num_vars : t -> int
val num_rows : t -> int

type solution = {
  status : Simplex.status;
  objective : float;
  value : var -> float;
  dual : row -> float;
}

type engine = Dense_tableau | Revised_sparse

type pricing = Revised.pricing = Dantzig | Devex
(** Re-export of {!Revised.pricing} so engine-policy code can name the
    rule without depending on {!Revised} directly. *)

val solve :
  ?engine:engine ->
  ?eps:float ->
  ?max_iters:int ->
  ?deadline:float ->
  ?pricing:pricing ->
  ?presolve:bool ->
  t ->
  solution
(** Runs the chosen simplex engine (default [Dense_tableau]; see
    {!Revised}) on the current model.  The model remains usable (more
    variables/rows may be added and [solve] called again — each call solves
    from scratch).  [pricing] selects the entering-variable rule of the
    revised engine (default [Dantzig]; ignored by [Dense_tableau]);
    [presolve] (default [false]) runs the {!Presolve} reduction/scaling
    pipeline first (only honoured by [Revised_sparse]). *)

type warm_solution = {
  solution : solution;
  basis : Revised.basis option;
      (** optimal basis to reuse as a warm start for a same-shape model
          (always [None] for [Dense_tableau] or non-optimal solves) *)
  stats : Revised.stats;
}

val solve_with_basis :
  ?engine:engine ->
  ?eps:float ->
  ?max_iters:int ->
  ?warm_start:Revised.basis ->
  ?deadline:float ->
  ?inject_warm_crash:bool ->
  ?pricing:pricing ->
  ?workspace:Workspace.t ->
  ?presolve:bool ->
  t ->
  warm_solution
(** {!solve}, exposing the warm-start machinery of {!Revised.solve_warm}:
    pass the basis returned by a previous solve of a same-shape model to
    skip the cold start.  Only [Revised_sparse] honours [warm_start]; an
    invalid basis degrades silently to a cold solve.

    With [Revised_sparse] the problem is staged as a sparse {!Revised.spec}
    straight from the row lists — no dense materialisation — using
    [workspace] (default: the calling domain's arena, {!Workspace.get}),
    which is also handed to the solver for its scratch state; a
    column-generation loop therefore re-solves with allocation proportional
    to the columns added since the last round, not to the matrix size.
    [pricing] selects the entering-variable rule (default [Dantzig]).

    [to_problem]-level certification: the basis token is tied to the
    model's variable/row layout, so callers must key caches on a
    fingerprint of that layout (see {!Sa_core.Serialize}).

    [deadline] is an absolute {!Sa_util.Timing.now} timestamp enforced
    inside the pivot loops ([Sa_util.Fail.Error (Timeout _)] past it);
    [inject_warm_crash] forwards {!Revised.solve_warm}'s fault-injection
    hook and is ignored by [Dense_tableau].

    [presolve] (default [false], [Revised_sparse] only) runs
    {!Presolve.reduce} on the staged spec, solves the reduced LP, and maps
    the solution, duals, and basis back to the model's own spaces via the
    exact postsolve — the returned solution and basis are always in
    original model coordinates, and reduction counts are attached as
    [presolve_*] attrs on the solve span/event. *)
