(* LP presolve: reductions + equilibration scaling in front of the revised
   simplex, with an exact postsolve back to original variable space.

   The pipeline runs on a {!Revised.spec} (the sparse form every solve path
   already produces) and emits a reduced spec whose arrays live in
   workspace slots 40..47, so steady-state presolved solves stay
   allocation-free apart from the small per-solve outputs (reduced relation
   array, postsolved solution, mapped bases) that escape anyway.

   Reductions (single pass, in order):
   - empty rows whose relation is trivially satisfied ([0 <= b] with
     [b >= 0], [0 >= b] with [b <= 0], [0 = 0]) are dropped with dual 0;
   - singleton [a x_j <= b] rows with [a > 0]: [b = 0] fixes [x_j := 0]
     (direction [Maximize] only, so the dropped row's dual can be
     reconstructed under the Certify sign convention); [b > 0] keeps only
     the row implying the tightest bound [b/a] per column and drops the
     looser ones with dual 0;
   - duplicate rows, found by hashing (pattern, relation) with an exact
     entrywise recheck: for [Le] the smallest rhs wins, for [Ge] the
     largest, [Eq] rows dedup only on equal rhs; dropped twins are implied
     by the kept one, so their duals are exactly 0;
   - dominated / duplicate columns (only for [Maximize] problems whose
     kept rows are all [Le], i.e. the packing LPs on the hot path): if two
     kept columns have the same kept-row support, [a_.j <= a_.k]
     entrywise and [c_j >= c_k], any optimum may route column [k]'s mass
     through [j], so [x_k] is fixed to 0.  Exact ties keep the lower
     index.  Empty columns with [c_j <= 0] are fixed to 0 as well.

   Scaling: geometric-mean row/column equilibration restricted to powers
   of two.  Factors are [2^e] with integer [e], so unscaling
   ([x_j = s_j * x'_j], [y_i = r_i * y'_i], [a'_ij = r_i * a_ij * s_j])
   multiplies by exact powers of two and is bitwise-lossless: the
   postsolved primal/dual values carry no scaling round-off at all.

   Postsolve maps an optimal reduced solution back exactly: kept
   variables/rows are unscaled, presolved-away variables are 0,
   redundant rows get dual 0, and the fixing row of a fixed column gets
   [y = max 0 ((c_j - sum_{i' <> i} a_i'j y_i') / a_ij)], which keeps the
   Certify dual-feasibility and duality-gap checks intact in original
   space.  [map_basis_in]/[map_basis_out] translate warm-start bases
   between original and reduced internal column spaces so reductions
   compose with the engine's basis cache and the colgen column pool. *)

module Tel = Sa_telemetry.Metrics

let m_rows_removed = Tel.counter "lp.presolve.rows_removed"
let m_cols_removed = Tel.counter "lp.presolve.cols_removed"
let m_duplicates = Tel.counter "lp.presolve.duplicates"
let m_scaling_passes = Tel.counter "lp.presolve.scaling_passes"

type config = { reductions : bool; scaling : bool }

let default_config = { reductions = true; scaling = true }

type info = {
  rows_removed : int;
  cols_removed : int;
  duplicates : int;
  scaling_passes : int;
}

(* Workspace slot assignments (slots 40..47 of each typed pool belong to
   this module; see Workspace docs).  Several slots do double duty as
   scratch before their final content is written — the usage windows are
   strictly ordered and each use reinitialises its range. *)
module Slot = struct
  (* float slots *)
  let red_c = 40
  let red_rhs = 41
  let red_cval = 42
  let row_scale = 43 (* holds the exponent during scaling sweeps *)
  let col_scale = 44
  let rval = 45 (* CSR values of the original structural matrix *)
  let col_bound = 46 (* tightest singleton bound seen per column *)

  (* int slots *)
  let red_cstart = 40
  let red_crow = 41
  let row_tag = 42 (* CSR build scratch, then per-row disposition *)
  let col_map = 43
  let row_inv = 44 (* row/col hash scratch, then reduced-row -> orig row *)
  let col_inv = 45 (* sort-order scratch, then reduced-col -> orig col *)
  let rstart = 46
  let rcol = 47

  (* bool slots *)
  let col_keep = 41
end

(* Per-row disposition codes stored in the row_tag buffer during the
   reduction passes, then re-encoded into [row_map]. *)
let tag_keep = 0
let tag_redundant = 1
let tag_fixes j = j + 2 (* row is the fixing singleton for column j *)

type t = {
  orig : Revised.spec;
  reduced : Revised.spec;
  red_m : int;
  red_n : int;
  row_map : int array;
      (* orig row -> reduced row (>= 0) | -1 redundant | -(j+2) fixes col j *)
  col_map : int array; (* orig col -> reduced col (>= 0) | -1 fixed at 0 *)
  row_inv : int array; (* reduced row -> orig row (live prefix red_m) *)
  col_inv : int array; (* reduced col -> orig col (live prefix red_n) *)
  row_scale : float array; (* power-of-two factors, 1.0 on removed rows *)
  col_scale : float array;
  info : info;
}

let info t = t.info

(* ----------------------------- hashing ------------------------------ *)

let combine h v = ((h * 0x01000193) + v) land max_int

let float_token v = combine (Int64.to_int (Int64.bits_of_float v)) 0

let rel_token = function Simplex.Le -> 17 | Simplex.Ge -> 31 | Simplex.Eq -> 47

(* Sort the [0, len) prefix of [order] by (key.(i), i) ascending — an
   in-place heapsort so the hashing passes stay allocation-free. *)
let sort_by_key order len key =
  let lt a b = key.(a) < key.(b) || (key.(a) = key.(b) && a < b) in
  let swap i j =
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  in
  let rec sift i stop =
    let l = (2 * i) + 1 in
    if l < stop then begin
      let c = if l + 1 < stop && lt order.(l) order.(l + 1) then l + 1 else l in
      if lt order.(i) order.(c) then begin
        swap i c;
        sift c stop
      end
    end
  in
  for i = (len / 2) - 1 downto 0 do
    sift i len
  done;
  for e = len - 1 downto 1 do
    swap 0 e;
    sift 0 e
  done

(* ----------------------------- reduce ------------------------------- *)

let reduce ?(config = default_config) ~(workspace : Workspace.t) (spec : Revised.spec) =
  if (not config.reductions) && not config.scaling then None
  else begin
    let ws = workspace in
    let m = spec.Revised.s_m and n = spec.Revised.s_nstruct in
    let cstart = spec.Revised.s_cstart
    and crow = spec.Revised.s_crow
    and cval = spec.Revised.s_cval
    and rel = spec.Revised.s_rel
    and rhs = spec.Revised.s_rhs
    and c = spec.Revised.s_c in
    let nnz = cstart.(n) in
    (* CSR mirror of the structural matrix: row-major traversal for the
       row reductions and row-wise scaling sweeps. *)
    let rstart = Workspace.ints ws ~slot:Slot.rstart (m + 1) in
    let rcol = Workspace.ints ws ~slot:Slot.rcol (max 1 nnz) in
    let rval = Workspace.floats ws ~slot:Slot.rval (max 1 nnz) in
    let row_tag = Workspace.ints ws ~slot:Slot.row_tag (max 1 (max m n)) in
    for i = 0 to m do
      rstart.(i) <- 0
    done;
    for p = 0 to nnz - 1 do
      rstart.(crow.(p) + 1) <- rstart.(crow.(p) + 1) + 1
    done;
    for i = 1 to m do
      rstart.(i) <- rstart.(i) + rstart.(i - 1)
    done;
    for i = 0 to m - 1 do
      row_tag.(i) <- rstart.(i)
    done;
    for j = 0 to n - 1 do
      for p = cstart.(j) to cstart.(j + 1) - 1 do
        let i = crow.(p) in
        let pos = row_tag.(i) in
        rcol.(pos) <- j;
        rval.(pos) <- cval.(p);
        row_tag.(i) <- pos + 1
      done
    done;
    let col_keep = Workspace.bools ws ~slot:Slot.col_keep (max 1 n) in
    for j = 0 to n - 1 do
      col_keep.(j) <- true
    done;
    for i = 0 to m - 1 do
      row_tag.(i) <- tag_keep
    done;
    let rows_removed = ref 0 and cols_removed = ref 0 and duplicates = ref 0 in
    let drop_row i = row_tag.(i) <- tag_redundant; incr rows_removed in
    if config.reductions then begin
      (* Pass 1: empty rows and singleton rows. *)
      let col_bound = Workspace.floats ws ~slot:Slot.col_bound (max 1 n) in
      let best_row = Workspace.ints ws ~slot:Slot.col_inv (max 1 n) in
      for j = 0 to n - 1 do
        col_bound.(j) <- Float.infinity;
        best_row.(j) <- -1
      done;
      for i = 0 to m - 1 do
        let lo = rstart.(i) and hi = rstart.(i + 1) in
        let cnt = hi - lo in
        if cnt = 0 then begin
          let trivially_satisfied =
            match rel.(i) with
            | Simplex.Le -> rhs.(i) >= 0.0
            | Simplex.Ge -> rhs.(i) <= 0.0
            | Simplex.Eq -> rhs.(i) = 0.0
          in
          if trivially_satisfied then drop_row i
        end
        else if cnt = 1 && rel.(i) = Simplex.Le then begin
          let j = rcol.(lo) and a = rval.(lo) in
          if a > 0.0 then begin
            if rhs.(i) = 0.0 then begin
              (* x_j <= 0 fixes the variable.  Only for Maximize: the
                 postsolve dual reconstruction below assumes the Maximize
                 sign convention (Le rows need y >= 0). *)
              if spec.Revised.s_direction = Simplex.Maximize then begin
                if col_keep.(j) then begin
                  col_keep.(j) <- false;
                  incr cols_removed;
                  row_tag.(i) <- tag_fixes j;
                  incr rows_removed
                end
                else drop_row i (* a second x_j <= 0 row is implied *)
              end
            end
            else if rhs.(i) > 0.0 then begin
              let u = rhs.(i) /. a in
              if u < col_bound.(j) then begin
                (* tighter bound: the previous best row is now implied *)
                if best_row.(j) >= 0 then drop_row best_row.(j);
                col_bound.(j) <- u;
                best_row.(j) <- i
              end
              else drop_row i
            end
          end
          else if rhs.(i) > 0.0 then
            (* a < 0: x_j >= rhs/a < 0, implied by x >= 0 *)
            drop_row i
        end
        else if cnt = 1 && rel.(i) = Simplex.Ge then begin
          let a = rval.(lo) in
          if a > 0.0 && rhs.(i) <= 0.0 then drop_row i
        end
      done;
      (* Pass 2: duplicate rows via hashing with exact recheck. *)
      let hash = Workspace.ints ws ~slot:Slot.row_inv (max 1 (max m n)) in
      let order = Workspace.ints ws ~slot:Slot.col_inv (max 1 (max m n)) in
      let participants = ref 0 in
      for i = 0 to m - 1 do
        if row_tag.(i) = tag_keep && rstart.(i + 1) > rstart.(i) then begin
          let h = ref (rel_token rel.(i)) in
          for p = rstart.(i) to rstart.(i + 1) - 1 do
            h := combine (combine !h rcol.(p)) (float_token rval.(p))
          done;
          hash.(i) <- combine !h (rstart.(i + 1) - rstart.(i));
          order.(!participants) <- i;
          incr participants
        end
      done;
      sort_by_key order !participants hash;
      let rows_equal i k =
        let li = rstart.(i) and lk = rstart.(k) in
        let cnt = rstart.(i + 1) - li in
        rel.(i) = rel.(k)
        && cnt = rstart.(k + 1) - lk
        && begin
             let ok = ref true in
             let p = ref 0 in
             while !ok && !p < cnt do
               if rcol.(li + !p) <> rcol.(lk + !p) || rval.(li + !p) <> rval.(lk + !p)
               then ok := false;
               incr p
             done;
             !ok
           end
      in
      let p = ref 0 in
      while !p < !participants do
        let q = ref (!p + 1) in
        while !q < !participants && hash.(order.(!q)) = hash.(order.(!p)) do
          incr q
        done;
        (* survivors occupy order.[!p, w); later rows in the run are
           checked against them and either dropped or appended *)
        let w = ref (!p + 1) in
        for r = !p + 1 to !q - 1 do
          let i = order.(r) in
          let matched = ref false in
          let s = ref !p in
          while (not !matched) && !s < !w do
            let k = order.(!s) in
            if rows_equal k i then begin
              matched := true;
              (match rel.(i) with
              | Simplex.Le ->
                  if rhs.(i) >= rhs.(k) then begin drop_row i; incr duplicates end
                  else begin
                    drop_row k; incr duplicates;
                    order.(!s) <- i
                  end
              | Simplex.Ge ->
                  if rhs.(i) <= rhs.(k) then begin drop_row i; incr duplicates end
                  else begin
                    drop_row k; incr duplicates;
                    order.(!s) <- i
                  end
              | Simplex.Eq ->
                  if rhs.(i) = rhs.(k) then begin drop_row i; incr duplicates end
                  else matched := false (* same pattern, conflicting rhs: keep both *))
            end;
            incr s
          done;
          if not !matched then begin
            order.(!w) <- i;
            incr w
          end
        done;
        p := !q
      done;
      (* Pass 3: dominated / duplicate columns.  Sound only for Maximize
         packing shapes: every kept row must be Le so that shifting mass
         from the dominated column onto the dominating one preserves
         feasibility and never lowers the objective. *)
      let all_le = ref (spec.Revised.s_direction = Simplex.Maximize) in
      for i = 0 to m - 1 do
        if row_tag.(i) = tag_keep && rel.(i) <> Simplex.Le then all_le := false
      done;
      if !all_le && n > 1 then begin
        let participants = ref 0 in
        for j = 0 to n - 1 do
          if col_keep.(j) then begin
            let h = ref 0 and cnt = ref 0 in
            for p = cstart.(j) to cstart.(j + 1) - 1 do
              if row_tag.(crow.(p)) = tag_keep then begin
                h := combine !h crow.(p);
                incr cnt
              end
            done;
            if !cnt = 0 then begin
              (* empty column: fix at 0 when the objective cannot want it *)
              if c.(j) <= 0.0 then begin
                col_keep.(j) <- false;
                incr cols_removed
              end
            end
            else begin
              hash.(j) <- combine !h !cnt;
              order.(!participants) <- j;
              incr participants
            end
          end
        done;
        sort_by_key order !participants hash;
        (* compare columns j,k with equal support: (-1) j dominated,
           (+1) k dominated, 0 neither/different support *)
        let dominance j k =
          let lj = ref cstart.(j) and lk = ref cstart.(k) in
          let hj = cstart.(j + 1) and hk = cstart.(k + 1) in
          let same = ref true and j_le = ref true and k_le = ref true in
          while !same && (!lj < hj || !lk < hk) do
            while !lj < hj && row_tag.(crow.(!lj)) <> tag_keep do incr lj done;
            while !lk < hk && row_tag.(crow.(!lk)) <> tag_keep do incr lk done;
            if !lj < hj && !lk < hk && crow.(!lj) = crow.(!lk) then begin
              if cval.(!lj) > cval.(!lk) then j_le := false;
              if cval.(!lk) > cval.(!lj) then k_le := false;
              incr lj;
              incr lk
            end
            else if !lj < hj || !lk < hk then same := false
          done;
          if not !same then 0
          else if !j_le && c.(j) >= c.(k) then -1 (* j covers k: drop k *)
          else if !k_le && c.(k) >= c.(j) then 1
          else 0
        in
        let p = ref 0 in
        while !p < !participants do
          let q = ref (!p + 1) in
          while !q < !participants && hash.(order.(!q)) = hash.(order.(!p)) do
            incr q
          done;
          let w = ref (!p + 1) in
          for r = !p + 1 to !q - 1 do
            let k = order.(r) in
            let dropped = ref false in
            let s = ref !p in
            while (not !dropped) && !s < !w do
              let j = order.(!s) in
              match dominance j k with
              | -1 ->
                  col_keep.(k) <- false;
                  incr cols_removed;
                  dropped := true
              | 1 ->
                  col_keep.(j) <- false;
                  incr cols_removed;
                  order.(!s) <- order.(!w - 1);
                  decr w
                  (* k may dominate further survivors: keep scanning *)
              | _ -> incr s
            done;
            if not !dropped then begin
              order.(!w) <- k;
              incr w
            end
          done;
          p := !q
        done
      end
    end;
    (* ------------------------- scaling sweeps ------------------------- *)
    let row_scale = Workspace.floats ws ~slot:Slot.row_scale (max 1 m) in
    let col_scale = Workspace.floats ws ~slot:Slot.col_scale (max 1 n) in
    (* exponents during the sweeps; converted to 2^e factors afterwards *)
    for i = 0 to m - 1 do
      row_scale.(i) <- 0.0
    done;
    for j = 0 to n - 1 do
      col_scale.(j) <- 0.0
    done;
    let scaling_passes = ref 0 in
    if config.scaling then begin
      let max_passes = 3 in
      let continue = ref true in
      while !continue && !scaling_passes < max_passes do
        let changed = ref false in
        for i = 0 to m - 1 do
          if row_tag.(i) = tag_keep then begin
            let sum = ref 0.0 and cnt = ref 0 in
            for p = rstart.(i) to rstart.(i + 1) - 1 do
              if col_keep.(rcol.(p)) then begin
                sum :=
                  !sum
                  +. Float.log2 (Float.abs rval.(p))
                  +. row_scale.(i) +. col_scale.(rcol.(p));
                incr cnt
              end
            done;
            if !cnt > 0 then begin
              let e = Float.round (!sum /. float_of_int !cnt) in
              if e <> 0.0 && Float.abs (row_scale.(i) -. e) <= 512.0 then begin
                row_scale.(i) <- row_scale.(i) -. e;
                changed := true
              end
            end
          end
        done;
        for j = 0 to n - 1 do
          if col_keep.(j) then begin
            let sum = ref 0.0 and cnt = ref 0 in
            for p = cstart.(j) to cstart.(j + 1) - 1 do
              if row_tag.(crow.(p)) = tag_keep then begin
                sum :=
                  !sum
                  +. Float.log2 (Float.abs cval.(p))
                  +. row_scale.(crow.(p)) +. col_scale.(j);
                incr cnt
              end
            done;
            if !cnt > 0 then begin
              let e = Float.round (!sum /. float_of_int !cnt) in
              if e <> 0.0 && Float.abs (col_scale.(j) -. e) <= 512.0 then begin
                col_scale.(j) <- col_scale.(j) -. e;
                changed := true
              end
            end
          end
        done;
        if !changed then incr scaling_passes else continue := false
      done
    end;
    if !rows_removed = 0 && !cols_removed = 0 && !scaling_passes = 0 then None
    else begin
      (* exponents -> exact power-of-two factors *)
      for i = 0 to m - 1 do
        row_scale.(i) <-
          (if row_tag.(i) = tag_keep then Float.ldexp 1.0 (int_of_float row_scale.(i))
           else 1.0)
      done;
      for j = 0 to n - 1 do
        col_scale.(j) <-
          (if col_keep.(j) then Float.ldexp 1.0 (int_of_float col_scale.(j)) else 1.0)
      done;
      (* ------------------------- index maps -------------------------- *)
      let row_inv = Workspace.ints ws ~slot:Slot.row_inv (max 1 m) in
      let col_inv = Workspace.ints ws ~slot:Slot.col_inv (max 1 n) in
      let col_map = Workspace.ints ws ~slot:Slot.col_map (max 1 n) in
      let red_m = ref 0 in
      (* row_tag is re-encoded in place into the final row_map *)
      for i = 0 to m - 1 do
        if row_tag.(i) = tag_keep then begin
          row_inv.(!red_m) <- i;
          row_tag.(i) <- !red_m;
          incr red_m
        end
        else if row_tag.(i) = tag_redundant then row_tag.(i) <- -1
        else row_tag.(i) <- -row_tag.(i) (* fixing row: -(j+2) *)
      done;
      let red_m = !red_m in
      let red_n = ref 0 in
      for j = 0 to n - 1 do
        if col_keep.(j) then begin
          col_inv.(!red_n) <- j;
          col_map.(j) <- !red_n;
          incr red_n
        end
        else col_map.(j) <- -1
      done;
      let red_n = !red_n in
      (* ----------------------- reduced spec -------------------------- *)
      let red_c = Workspace.floats ws ~slot:Slot.red_c (max 1 red_n) in
      let red_rhs = Workspace.floats ws ~slot:Slot.red_rhs (max 1 red_m) in
      let red_rel = Array.make (max 1 red_m) Simplex.Le in
      for ir = 0 to red_m - 1 do
        let i = row_inv.(ir) in
        red_rhs.(ir) <- rhs.(i) *. row_scale.(i);
        red_rel.(ir) <- rel.(i)
      done;
      let red_cstart = Workspace.ints ws ~slot:Slot.red_cstart (red_n + 1) in
      red_cstart.(0) <- 0;
      let red_nnz = ref 0 in
      for jr = 0 to red_n - 1 do
        let j = col_inv.(jr) in
        for p = cstart.(j) to cstart.(j + 1) - 1 do
          if row_tag.(crow.(p)) >= 0 then incr red_nnz
        done;
        red_cstart.(jr + 1) <- !red_nnz
      done;
      let red_crow = Workspace.ints ws ~slot:Slot.red_crow (max 1 !red_nnz) in
      let red_cval = Workspace.floats ws ~slot:Slot.red_cval (max 1 !red_nnz) in
      let pos = ref 0 in
      for jr = 0 to red_n - 1 do
        let j = col_inv.(jr) in
        red_c.(jr) <- c.(j) *. col_scale.(j);
        for p = cstart.(j) to cstart.(j + 1) - 1 do
          let i = crow.(p) in
          if row_tag.(i) >= 0 then begin
            red_crow.(!pos) <- row_tag.(i);
            red_cval.(!pos) <- cval.(p) *. row_scale.(i) *. col_scale.(j);
            incr pos
          end
        done
      done;
      let reduced =
        {
          Revised.s_direction = spec.Revised.s_direction;
          s_nstruct = red_n;
          s_m = red_m;
          s_c = red_c;
          s_rel = red_rel;
          s_rhs = red_rhs;
          s_cstart = red_cstart;
          s_crow = red_crow;
          s_cval = red_cval;
        }
      in
      let info =
        {
          rows_removed = !rows_removed;
          cols_removed = !cols_removed;
          duplicates = !duplicates;
          scaling_passes = !scaling_passes;
        }
      in
      Tel.add m_rows_removed info.rows_removed;
      Tel.add m_cols_removed info.cols_removed;
      Tel.add m_duplicates info.duplicates;
      Tel.add m_scaling_passes info.scaling_passes;
      Some
        ( reduced,
          {
            orig = spec;
            reduced;
            red_m;
            red_n;
            row_map = row_tag;
            col_map;
            row_inv;
            col_inv;
            row_scale;
            col_scale;
            info;
          } )
    end
  end

(* ---------------------------- postsolve ----------------------------- *)

let postsolve t (sol : Simplex.solution) =
  let m = t.orig.Revised.s_m and n = t.orig.Revised.s_nstruct in
  if sol.Simplex.status <> Simplex.Optimal then
    {
      Simplex.status = sol.Simplex.status;
      x = Array.make n 0.0;
      objective = sol.Simplex.objective;
      duals = Array.make m 0.0;
    }
  else begin
    let x = Array.make n 0.0 in
    for jr = 0 to t.red_n - 1 do
      let j = t.col_inv.(jr) in
      (* power-of-two unscale: exact *)
      x.(j) <- t.col_scale.(j) *. sol.Simplex.x.(jr)
    done;
    let duals = Array.make m 0.0 in
    for ir = 0 to t.red_m - 1 do
      let i = t.row_inv.(ir) in
      duals.(i) <- t.row_scale.(i) *. sol.Simplex.duals.(ir)
    done;
    (* fixing rows: reconstruct a dual that restores A^T y >= c on the
       fixed column (Maximize/Le convention; see reduce) *)
    let cstart = t.orig.Revised.s_cstart
    and crow = t.orig.Revised.s_crow
    and cval = t.orig.Revised.s_cval in
    for i = 0 to m - 1 do
      if t.row_map.(i) <= -2 then begin
        let j = -t.row_map.(i) - 2 in
        let a = ref 0.0 and rest = ref 0.0 in
        for p = cstart.(j) to cstart.(j + 1) - 1 do
          if crow.(p) = i then a := cval.(p)
          else rest := !rest +. (cval.(p) *. duals.(crow.(p)))
        done;
        if !a > 0.0 then
          duals.(i) <- Float.max 0.0 ((t.orig.Revised.s_c.(j) -. !rest) /. !a)
      end
    done;
    { Simplex.status = Simplex.Optimal; x; objective = sol.Simplex.objective; duals }
  end

(* --------------------------- basis mapping --------------------------- *)

(* Internal column layout on both sides: structural [0, nstruct), slack
   for row i at nstruct + i, artificials beyond nstruct + m. *)

let map_basis_in t (wb : Revised.basis) =
  let m = t.orig.Revised.s_m and n = t.orig.Revised.s_nstruct in
  let out = Array.make (max 1 t.red_m) 0 in
  let slack_used = Array.make (max 1 t.red_m) false in
  let count = ref 0 in
  let overflow = ref false in
  let push e =
    if !count >= t.red_m then overflow := true
    else begin
      out.(!count) <- e;
      incr count
    end
  in
  Array.iter
    (fun e ->
      if e < n then begin
        match t.col_map.(e) with
        | jr when jr >= 0 -> push jr
        | _ -> ()
      end
      else if e < n + m then begin
        let i = e - n in
        let ir = t.row_map.(i) in
        if ir >= 0 then begin
          push (t.red_n + ir);
          if not !overflow then slack_used.(ir) <- true
        end
      end
      (* artificials are dropped *))
    wb;
  if !overflow then None
  else begin
    (* fill the shortfall with unused reduced slacks *)
    let ir = ref 0 in
    while !count < t.red_m && !ir < t.red_m do
      if not slack_used.(!ir) then push (t.red_n + !ir);
      incr ir
    done;
    if !count = t.red_m then Some (Array.sub out 0 t.red_m) else None
  end

let map_basis_out t (rb : Revised.basis) =
  let m = t.orig.Revised.s_m and n = t.orig.Revised.s_nstruct in
  if Array.length rb <> t.red_m then None
  else begin
    let out = Array.make (max 1 m) 0 in
    let pos = ref 0 in
    let ok = ref true in
    Array.iter
      (fun e ->
        if e < t.red_n then begin
          out.(!pos) <- t.col_inv.(e);
          incr pos
        end
        else if e < t.red_n + t.red_m then begin
          out.(!pos) <- n + t.row_inv.(e - t.red_n);
          incr pos
        end
        else ok := false (* reduced artificial: no original counterpart *))
      rb;
    (* removed rows re-enter with their own slack basic, which is primal
       feasible because every removed row is implied by the kept ones *)
    for i = 0 to m - 1 do
      if t.row_map.(i) < 0 && !pos < m then begin
        out.(!pos) <- n + i;
        incr pos
      end
    done;
    if !ok && !pos = m then Some (Array.sub out 0 m) else None
  end
