type estimate = { rho : float; exact : bool; witness_vertex : int }

module Tel = Sa_telemetry.Metrics

let m_estimates = Tel.counter "graph.rho.estimates"
let h_rho = Tel.histogram "graph.rho.seconds"

let rho_unweighted ?node_limit g pi =
  Sa_telemetry.Trace.with_span ~hist:h_rho "graph.rho" @@ fun () ->
  Tel.incr m_estimates;
  let best = ref 0.0 and witness = ref (-1) and all_exact = ref true in
  for v = 0 to Graph.n g - 1 do
    let backward = Array.of_list (Ordering.backward_neighbors pi g v) in
    if Array.length backward > 0 then begin
      let sub = Graph.induced g backward in
      let r = Indep.max_independent_set ?node_limit sub in
      if not r.Indep.exact then all_exact := false;
      let size = float_of_int r.Indep.value in
      if size > !best then begin
        best := size;
        witness := v
      end
    end
  done;
  { rho = !best; exact = !all_exact; witness_vertex = !witness }

let rho_weighted ?node_limit wg pi =
  Sa_telemetry.Trace.with_span ~hist:h_rho "graph.rho" @@ fun () ->
  Tel.incr m_estimates;
  let best = ref 0.0 and witness = ref (-1) and all_exact = ref true in
  for v = 0 to Weighted.n wg - 1 do
    let candidates =
      Ordering.before pi v
      |> List.filter (fun u -> Weighted.wbar wg u v > 0.0)
      |> Array.of_list
    in
    if Array.length candidates > 0 then begin
      let profit u = Weighted.wbar wg u v in
      let r = Indep.max_profit_weighted ?node_limit wg ~candidates ~profit in
      if not r.Indep.exact then all_exact := false;
      if r.Indep.value > !best then begin
        best := r.Indep.value;
        witness := v
      end
    end
  done;
  { rho = !best; exact = !all_exact; witness_vertex = !witness }

let degeneracy_ordering g =
  let size = Graph.n g in
  let removed = Array.make size false in
  let deg = Array.init size (fun v -> Graph.degree g v) in
  let order_rev = ref [] in
  let degeneracy = ref 0 in
  for _step = 1 to size do
    let v = ref (-1) in
    for u = 0 to size - 1 do
      if (not removed.(u)) && (!v < 0 || deg.(u) < deg.(!v)) then v := u
    done;
    let v = !v in
    degeneracy := max !degeneracy deg.(v);
    removed.(v) <- true;
    order_rev := v :: !order_rev;
    Graph.iter_neighbors g v (fun u -> if not removed.(u) then deg.(u) <- deg.(u) - 1)
  done;
  (* Vertices removed first have the fewest surviving neighbours; placing
     them *last* ensures each vertex sees at most [degeneracy] backward
     neighbours. *)
  (Ordering.of_order (Array.of_list !order_rev), !degeneracy)

let greedy_weighted_ordering ?(node_limit = 20_000) wg =
  let size = Weighted.n wg in
  let remaining = Array.make size true in
  let positions = Array.make size (-1) in
  (* Mass a vertex would see if placed last among the current remaining
     set: max over independent subsets of the remaining candidates of the
     incoming symmetrised weight. *)
  let backward_mass v =
    let candidates =
      List.init size Fun.id
      |> List.filter (fun u -> remaining.(u) && u <> v && Weighted.wbar wg u v > 0.0)
      |> Array.of_list
    in
    if Array.length candidates = 0 then 0.0
    else
      let profit u = Weighted.wbar wg u v in
      (Indep.max_profit_weighted ~node_limit wg ~candidates ~profit).Indep.value
  in
  for pos = size - 1 downto 0 do
    let best = ref (-1) and best_mass = ref infinity in
    for v = 0 to size - 1 do
      if remaining.(v) then begin
        let mass = backward_mass v in
        if mass < !best_mass then begin
          best_mass := mass;
          best := v
        end
      end
    done;
    positions.(pos) <- !best;
    remaining.(!best) <- false
  done;
  Ordering.of_order positions

let check_unweighted_bound g pi ~rho m =
  if not (Graph.is_independent g m) then
    invalid_arg "Inductive.check_unweighted_bound: set is not independent";
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let count =
      List.length
        (List.filter (fun u -> Graph.mem_edge g u v && Ordering.precedes pi u v) m)
    in
    if count > rho then ok := false
  done;
  !ok

let check_weighted_bound wg pi ~rho m =
  if not (Weighted.is_independent wg m) then
    invalid_arg "Inductive.check_weighted_bound: set is not independent";
  let ok = ref true in
  for v = 0 to Weighted.n wg - 1 do
    let mass =
      List.fold_left
        (fun acc u ->
          if u <> v && Ordering.precedes pi u v then acc +. Weighted.wbar wg u v
          else acc)
        0.0 m
    in
    if not (Sa_util.Floats.leq mass rho) then ok := false
  done;
  !ok
