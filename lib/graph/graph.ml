(* Packed-bitset conflict graphs.

   Adjacency is stored as one bitset row per vertex in a single flat
   [int array] ([wpr] words per row), so [mem_edge] is a bit test and
   set-vs-neighbourhood queries ([is_independent], the rounding and rho
   kernels) are word-parallel AND/popcount over rows.  Neighbour
   enumeration goes through a CSR (offsets + targets) form that is frozen
   lazily from the bitset rows and invalidated by [add_edge], keeping the
   historical mutable-builder API intact. *)

type csr = { offsets : int array; targets : int array }

type t = {
  size : int;
  wpr : int; (* words per adjacency row *)
  bits : int array; (* row v occupies bits.[v*wpr .. v*wpr+wpr-1] *)
  mutable m : int;
  mutable csr : csr option; (* frozen neighbour arrays; None after mutation *)
}

let word_bits = Bitset.word_bits

let create size =
  if size < 0 then invalid_arg "Graph.create: negative size";
  let wpr = Bitset.words_for size in
  { size; wpr; bits = Array.make (size * wpr) 0; m = 0; csr = None }

let n g = g.size
let num_edges g = g.m
let words_per_row g = g.wpr

let check_vertex g v =
  if v < 0 || v >= g.size then invalid_arg "Graph: vertex out of range"

let set_bit g u v =
  let idx = (u * g.wpr) + (v / word_bits) in
  g.bits.(idx) <- g.bits.(idx) lor (1 lsl (v mod word_bits))

let test_bit g u v =
  g.bits.((u * g.wpr) + (v / word_bits)) land (1 lsl (v mod word_bits)) <> 0

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not (test_bit g u v) then begin
    set_bit g u v;
    set_bit g v u;
    g.m <- g.m + 1;
    g.csr <- None
  end

(* Bulk loader for grid-based constructors: one validation pass, direct
   bitset writes, a single CSR invalidation at the end instead of one per
   edge.  Duplicates (including pairs already present) are merged. *)
let add_edges_bulk g pairs =
  let added = ref 0 in
  Array.iter
    (fun (u, v) ->
      check_vertex g u;
      check_vertex g v;
      if u = v then invalid_arg "Graph.add_edges_bulk: self-loop";
      if not (test_bit g u v) then begin
        set_bit g u v;
        set_bit g v u;
        incr added
      end)
    pairs;
  if !added > 0 then begin
    g.m <- g.m + !added;
    g.csr <- None
  end

let of_edges size edges =
  let g = create size in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  test_bit g u v

(* ---- frozen CSR form ----------------------------------------------------- *)

let freeze g =
  match g.csr with
  | Some c -> c
  | None ->
      let offsets = Array.make (g.size + 1) 0 in
      for v = 0 to g.size - 1 do
        let base = v * g.wpr in
        let d = ref 0 in
        for wi = 0 to g.wpr - 1 do
          let w = g.bits.(base + wi) in
          if w <> 0 then d := !d + Bitset.popcount w
        done;
        offsets.(v + 1) <- offsets.(v) + !d
      done;
      let targets = Array.make offsets.(g.size) 0 in
      for v = 0 to g.size - 1 do
        let base = v * g.wpr in
        let pos = ref offsets.(v) in
        for wi = 0 to g.wpr - 1 do
          let w = g.bits.(base + wi) in
          if w <> 0 then
            Bitset.iter_word
              (fun u ->
                targets.(!pos) <- u;
                incr pos)
              (wi * word_bits) w
        done
      done;
      let c = { offsets; targets } in
      g.csr <- Some c;
      c

let iter_neighbors g v f =
  check_vertex g v;
  let c = freeze g in
  for i = c.offsets.(v) to c.offsets.(v + 1) - 1 do
    f c.targets.(i)
  done

let fold_neighbors g v f acc =
  check_vertex g v;
  let c = freeze g in
  let acc = ref acc in
  for i = c.offsets.(v) to c.offsets.(v + 1) - 1 do
    acc := f !acc c.targets.(i)
  done;
  !acc

let exists_neighbor g v p =
  check_vertex g v;
  let c = freeze g in
  let i = ref c.offsets.(v) in
  let hi = c.offsets.(v + 1) in
  let found = ref false in
  while (not !found) && !i < hi do
    if p c.targets.(!i) then found := true;
    incr i
  done;
  !found

let neighbors g v = List.rev (fold_neighbors g v (fun acc u -> u :: acc) [])

let degree g v =
  check_vertex g v;
  let base = v * g.wpr in
  let d = ref 0 in
  for wi = 0 to g.wpr - 1 do
    let w = g.bits.(base + wi) in
    if w <> 0 then d := !d + Bitset.popcount w
  done;
  !d

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.size - 1 do
    best := max !best (degree g v)
  done;
  !best

let avg_degree g =
  if g.size = 0 then 0.0 else 2.0 *. float_of_int g.m /. float_of_int g.size

let iter_edges g f =
  let c = freeze g in
  for u = 0 to g.size - 1 do
    for i = c.offsets.(u) to c.offsets.(u + 1) - 1 do
      let v = c.targets.(i) in
      if v > u then f u v
    done
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let complement g =
  let c = create g.size in
  for u = 0 to g.size - 1 do
    for v = u + 1 to g.size - 1 do
      if not (test_bit g u v) then add_edge c u v
    done
  done;
  c

let induced g vs =
  let sub = create (Array.length vs) in
  Array.iteri
    (fun i u ->
      check_vertex g u;
      Array.iteri (fun j v -> if j > i && test_bit g u v then add_edge sub i j) vs)
    vs;
  sub

(* Distance-2 ("square") graph over the frozen CSR form: edge (i, j) when
   j is a neighbour or a 2-hop neighbour of i.  A per-source stamp array
   dedups before buffering, so the work is O(sum of deg^2) instead of the
   n^2 mem_edge probes of the naive construction. *)
let square g =
  let sq = create g.size in
  let stamp = Array.make g.size (-1) in
  let buf = ref [] in
  for i = 0 to g.size - 1 do
    iter_neighbors g i (fun u ->
        if u > i && stamp.(u) <> i then begin
          stamp.(u) <- i;
          buf := (i, u) :: !buf
        end;
        iter_neighbors g u (fun j ->
            if j > i && stamp.(j) <> i then begin
              stamp.(j) <- i;
              buf := (i, j) :: !buf
            end))
  done;
  add_edges_bulk sq (Array.of_list !buf);
  sq

let clique size =
  let g = create size in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      add_edge g u v
    done
  done;
  g

(* ---- word-parallel set queries ------------------------------------------- *)

let mask_create g = Bitset.create g.size

let mask_of_list g l =
  let s = Bitset.create g.size in
  List.iter
    (fun v ->
      check_vertex g v;
      Bitset.add s v)
    l;
  s

let row_intersects g v mask =
  check_vertex g v;
  let base = v * g.wpr in
  let rec go wi = wi < g.wpr && (g.bits.(base + wi) land mask.(wi) <> 0 || go (wi + 1)) in
  go 0

let row_inter_card g v mask =
  check_vertex g v;
  let base = v * g.wpr in
  let acc = ref 0 in
  for wi = 0 to g.wpr - 1 do
    let w = g.bits.(base + wi) land mask.(wi) in
    if w <> 0 then acc := !acc + Bitset.popcount w
  done;
  !acc

let exists_row_inter g v mask p =
  check_vertex g v;
  let base = v * g.wpr in
  let found = ref false in
  let wi = ref 0 in
  while (not !found) && !wi < g.wpr do
    let w = ref (g.bits.(base + !wi) land mask.(!wi)) in
    let wbase = !wi * word_bits in
    while (not !found) && !w <> 0 do
      if p (wbase + Bitset.lowest_bit_index !w) then found := true
      else w := !w land (!w - 1)
    done;
    incr wi
  done;
  !found

let is_independent g set =
  match set with
  | [] -> true
  | [ v ] ->
      check_vertex g v;
      true
  | _ ->
      let mask = mask_of_list g set in
      (* no self-loops, so v's own bit never appears in row v *)
      List.for_all (fun v -> not (row_intersects g v mask)) set

let copy g =
  { size = g.size; wpr = g.wpr; bits = Array.copy g.bits; m = g.m; csr = g.csr }

let pp fmt g = Format.fprintf fmt "graph(n=%d, m=%d)" g.size g.m
