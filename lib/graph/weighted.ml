(* Edge-weighted conflict graphs in two representations:

   - [Dense]: the historical n x n matrix — O(1) lookup, O(n^2) memory,
     mutable via [set].  Built by [create] / [of_function] / [of_graph].
   - [Sparse]: immutable CSR (out-rows) + CSC (in-columns) over the
     non-zero entries at or above a weight floor [w_min], built by
     [of_entries].  Each destination row carries a certified upper bound
     on the total in-weight dropped below the floor, so independence
     checks against the sparse graph are exact up to that explicit slack
     (see the .mli). *)

type dense = { dsize : int; weights : float array array }

type sparse = {
  ssize : int;
  floor : float;
  out_off : int array; (* row u: out_tgt/out_w [out_off.(u) .. out_off.(u+1)) *)
  out_tgt : int array;
  out_w : float array;
  in_off : int array; (* column v: in_src/in_w — the "into v" adjacency *)
  in_src : int array;
  in_w : float array;
  dropped_in : float array; (* certified bound on dropped in-weight per row *)
}

type t = Dense of dense | Sparse of sparse

let create size =
  if size < 0 then invalid_arg "Weighted.create: negative size";
  Dense { dsize = size; weights = Array.make_matrix size size 0.0 }

let n = function Dense d -> d.dsize | Sparse s -> s.ssize

let check_vertex t v =
  if v < 0 || v >= n t then invalid_arg "Weighted: vertex out of range"

(* binary search for [v] in [tgt] restricted to [lo, hi) *)
let rec bsearch tgt lo hi v =
  if lo >= hi then -1
  else
    let mid = (lo + hi) / 2 in
    let x = tgt.(mid) in
    if x = v then mid else if x < v then bsearch tgt (mid + 1) hi v else bsearch tgt lo mid v

let w t u v =
  check_vertex t u;
  check_vertex t v;
  match t with
  | Dense d -> d.weights.(u).(v)
  | Sparse s ->
      let i = bsearch s.out_tgt s.out_off.(u) s.out_off.(u + 1) v in
      if i < 0 then 0.0 else s.out_w.(i)

let wbar t u v = w t u v +. w t v u

let set t u v x =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Weighted.set: self-pair";
  if x < 0.0 then invalid_arg "Weighted.set: negative weight";
  match t with
  | Dense d -> d.weights.(u).(v) <- x
  | Sparse _ -> invalid_arg "Weighted.set: sparse graphs are immutable"

let of_function size f =
  let t = create size in
  for u = 0 to size - 1 do
    for v = 0 to size - 1 do
      if u <> v then set t u v (f u v)
    done
  done;
  t

let of_graph g =
  of_function (Graph.n g) (fun u v -> if Graph.mem_edge g u v then 1.0 else 0.0)

(* ---- sparse construction -------------------------------------------------- *)

let of_entries size ?(w_min = 0.0) ?dropped_in entries =
  if size < 0 then invalid_arg "Weighted.of_entries: negative size";
  if (not (Float.is_finite w_min)) || w_min < 0.0 then
    invalid_arg "Weighted.of_entries: w_min must be non-negative and finite";
  let dropped =
    match dropped_in with
    | None -> Array.make size 0.0
    | Some d ->
        if Array.length d <> size then
          invalid_arg "Weighted.of_entries: dropped_in length mismatch";
        Array.iter
          (fun x ->
            if (not (Float.is_finite x)) || x < 0.0 then
              invalid_arg "Weighted.of_entries: dropped_in entries must be >= 0")
          d;
        Array.copy d
  in
  let kept = ref [] in
  let nkept = ref 0 in
  Array.iter
    (fun ((u, v, x) as e) ->
      if u < 0 || u >= size || v < 0 || v >= size then
        invalid_arg "Weighted.of_entries: vertex out of range";
      if u = v then invalid_arg "Weighted.of_entries: self-pair";
      if (not (Float.is_finite x)) || x < 0.0 then
        invalid_arg "Weighted.of_entries: weights must be non-negative and finite";
      if x > 0.0 && x >= w_min then begin
        kept := e :: !kept;
        incr nkept
      end
      else dropped.(v) <- dropped.(v) +. x)
    entries;
  let nnz = !nkept in
  let srcs = Array.make nnz 0 and tgts = Array.make nnz 0 and ws = Array.make nnz 0.0 in
  List.iteri
    (fun i (u, v, x) ->
      srcs.(i) <- u;
      tgts.(i) <- v;
      ws.(i) <- x)
    !kept;
  (* both CSR directions are built via index permutations produced by
     stable counting sorts — O(nnz + size) per pass, no comparison sort *)
  let counting_sort_by keys order =
    let cnt = Array.make (size + 1) 0 in
    Array.iter (fun i -> cnt.(keys.(i) + 1) <- cnt.(keys.(i) + 1) + 1) order;
    for k = 1 to size do
      cnt.(k) <- cnt.(k) + cnt.(k - 1)
    done;
    let out = Array.make (Array.length order) 0 in
    Array.iter
      (fun i ->
        out.(cnt.(keys.(i))) <- i;
        cnt.(keys.(i)) <- cnt.(keys.(i)) + 1)
      order;
    out
  in
  let ident = Array.init nnz (fun i -> i) in
  let by_tgt = counting_sort_by tgts ident in
  (* stable by-src pass over a by-tgt permutation yields (u, v) order *)
  let by_out = counting_sort_by srcs by_tgt in
  for i = 1 to nnz - 1 do
    let a = by_out.(i - 1) and b = by_out.(i) in
    if srcs.(a) = srcs.(b) && tgts.(a) = tgts.(b) then
      invalid_arg "Weighted.of_entries: duplicate entry"
  done;
  let out_off = Array.make (size + 1) 0 in
  let out_tgt = Array.make nnz 0 and out_w = Array.make nnz 0.0 in
  Array.iter (fun i -> out_off.(srcs.(i) + 1) <- out_off.(srcs.(i) + 1) + 1) by_out;
  for u = 1 to size do
    out_off.(u) <- out_off.(u) + out_off.(u - 1)
  done;
  (* by_out is sorted by (u, v), so positions within a row are already
     ascending in v *)
  Array.iteri
    (fun pos i ->
      out_tgt.(pos) <- tgts.(i);
      out_w.(pos) <- ws.(i))
    by_out;
  let by_in = counting_sort_by tgts (counting_sort_by srcs ident) in
  let in_off = Array.make (size + 1) 0 in
  let in_src = Array.make nnz 0 and in_w = Array.make nnz 0.0 in
  Array.iter (fun i -> in_off.(tgts.(i) + 1) <- in_off.(tgts.(i) + 1) + 1) by_in;
  for v = 1 to size do
    in_off.(v) <- in_off.(v) + in_off.(v - 1)
  done;
  Array.iteri
    (fun pos i ->
      in_src.(pos) <- srcs.(i);
      in_w.(pos) <- ws.(i))
    by_in;
  Sparse
    { ssize = size; floor = w_min; out_off; out_tgt; out_w; in_off; in_src; in_w;
      dropped_in = dropped }

let is_sparse = function Dense _ -> false | Sparse _ -> true

let w_min = function Dense _ -> 0.0 | Sparse s -> s.floor

let dropped_in_bound t v =
  check_vertex t v;
  match t with Dense _ -> 0.0 | Sparse s -> s.dropped_in.(v)

let nnz = function
  | Sparse s -> Array.length s.out_tgt
  | Dense d ->
      let c = ref 0 in
      Array.iter (Array.iter (fun x -> if x > 0.0 then incr c)) d.weights;
      !c

let iter_out t u f =
  check_vertex t u;
  match t with
  | Dense d ->
      let row = d.weights.(u) in
      for v = 0 to d.dsize - 1 do
        if row.(v) > 0.0 then f v row.(v)
      done
  | Sparse s ->
      for i = s.out_off.(u) to s.out_off.(u + 1) - 1 do
        f s.out_tgt.(i) s.out_w.(i)
      done

let iter_into t v f =
  check_vertex t v;
  match t with
  | Dense d ->
      for u = 0 to d.dsize - 1 do
        if d.weights.(u).(v) > 0.0 then f u d.weights.(u).(v)
      done
  | Sparse s ->
      for i = s.in_off.(v) to s.in_off.(v + 1) - 1 do
        f s.in_src.(i) s.in_w.(i)
      done

let in_weight t v =
  let acc = ref 0.0 in
  iter_into t v (fun _ x -> acc := !acc +. x);
  !acc

(* ---- independence --------------------------------------------------------- *)

let incoming t ~into set =
  List.fold_left (fun acc u -> if u = into then acc else acc +. w t u into) 0.0 set

let is_independent t set = List.for_all (fun v -> incoming t ~into:v set < 1.0) set

let is_independent_arr t mask =
  if Array.length mask <> n t then invalid_arg "Weighted.is_independent_arr: bad mask";
  match t with
  | Dense d ->
      let ok = ref true in
      for v = 0 to d.dsize - 1 do
        if mask.(v) then begin
          let total = ref 0.0 in
          for u = 0 to d.dsize - 1 do
            if mask.(u) && u <> v then total := !total +. d.weights.(u).(v)
          done;
          if !total >= 1.0 then ok := false
        end
      done;
      !ok
  | Sparse s ->
      let ok = ref true in
      for v = 0 to s.ssize - 1 do
        if mask.(v) then begin
          let total = ref 0.0 in
          for i = s.in_off.(v) to s.in_off.(v + 1) - 1 do
            if mask.(s.in_src.(i)) then total := !total +. s.in_w.(i)
          done;
          if !total >= 1.0 then ok := false
        end
      done;
      !ok

let copy = function
  | Dense d -> Dense { d with weights = Array.map Array.copy d.weights }
  | Sparse s ->
      Sparse
        {
          s with
          out_off = Array.copy s.out_off;
          out_tgt = Array.copy s.out_tgt;
          out_w = Array.copy s.out_w;
          in_off = Array.copy s.in_off;
          in_src = Array.copy s.in_src;
          in_w = Array.copy s.in_w;
          dropped_in = Array.copy s.dropped_in;
        }

let pp fmt t =
  match t with
  | Dense d -> Format.fprintf fmt "weighted-graph(n=%d)" d.dsize
  | Sparse s ->
      Format.fprintf fmt "weighted-graph(n=%d, nnz=%d, w_min=%g)" s.ssize
        (Array.length s.out_tgt) s.floor
