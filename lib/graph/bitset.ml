(* Word-packed bitsets over [0, n) used by the graph hot kernels.

   A set is a bare [int array]; bit [i] of word [i / word_bits] encodes
   membership of element [i].  Words are native OCaml ints (63 usable bits
   on 64-bit platforms), so intersection tests and cardinalities run
   word-parallel: one AND + one popcount per 63 vertices instead of one
   probe per vertex. *)

let word_bits = Sys.int_size

let words_for n =
  if n < 0 then invalid_arg "Bitset.words_for: negative size";
  (n + word_bits - 1) / word_bits

let create n = Array.make (words_for n) 0

let clear s = Array.fill s 0 (Array.length s) 0

let add s i = s.(i / word_bits) <- s.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove s i =
  s.(i / word_bits) <- s.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let mem s i = s.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let of_list n l =
  let s = create n in
  List.iter (fun i -> add s i) l;
  s

(* 16-bit-chunk popcount: a 65536-entry table beats SWAR here because OCaml
   ints are 63-bit, which rules out the usual 64-bit magic constants. *)
let pop16 =
  lazy
    (let t = Bytes.create 65536 in
     for i = 0 to 65535 do
       let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
       Bytes.unsafe_set t i (Char.chr (count i 0))
     done;
     t)

let popcount w =
  let t = Lazy.force pop16 in
  let c i = Char.code (Bytes.unsafe_get t i) in
  c (w land 0xffff)
  + c ((w lsr 16) land 0xffff)
  + c ((w lsr 32) land 0xffff)
  + c ((w lsr 48) land 0xffff)

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s

let inter_nonempty a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i = i < n && (a.(i) land b.(i) <> 0 || go (i + 1)) in
  go 0

let inter_cardinal a b =
  let n = min (Array.length a) (Array.length b) in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let w = a.(i) land b.(i) in
    if w <> 0 then acc := !acc + popcount w
  done;
  !acc

(* Index of the lowest set bit of [w] (w <> 0): isolate it, then popcount
   the run of ones below it. *)
let lowest_bit_index w =
  let b = w land -w in
  popcount (b - 1)

let iter_word f base w =
  let w = ref w in
  while !w <> 0 do
    f (base + lowest_bit_index !w);
    w := !w land (!w - 1)
  done

let iter f s =
  Array.iteri (fun wi w -> if w <> 0 then iter_word f (wi * word_bits) w) s

let exists_bit p s =
  let n = Array.length s in
  let found = ref false in
  let wi = ref 0 in
  while (not !found) && !wi < n do
    let w = ref s.(!wi) in
    let base = !wi * word_bits in
    while (not !found) && !w <> 0 do
      if p (base + lowest_bit_index !w) then found := true else w := !w land (!w - 1)
    done;
    incr wi
  done;
  !found
