(** Unweighted conflict graphs (Section 2).

    Vertices are bidders [0 .. n-1]; an edge means the two bidders may never
    share a channel.  Feasible channel allocations are exactly the
    independent sets (Problem 1).

    Adjacency is stored as packed bitset rows (word-parallel AND/popcount
    queries) plus a lazily frozen CSR neighbour form; the mutable builder
    API ([create] / [add_edge]) is unchanged, and mutation invalidates the
    frozen form. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds the graph; self-loops are rejected, duplicate
    edges are merged. *)

val n : t -> int
(** Number of vertices. *)

val num_edges : t -> int

val add_edge : t -> int -> int -> unit
(** Idempotent; rejects self-loops and out-of-range vertices. *)

val add_edges_bulk : t -> (int * int) array -> unit
(** Add every pair in one pass, writing the packed bitset rows directly:
    no per-edge frozen-form invalidation (the CSR is dropped once at the
    end).  Duplicate pairs and edges already present are merged, exactly
    like repeated {!add_edge}.  The bulk entry point for grid-based
    constructors emitting candidate edge lists. *)

val mem_edge : t -> int -> int -> bool
(** O(1) adjacency test. *)

val neighbors : t -> int -> int list
(** Sorted list of neighbours. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Ascending neighbour iteration over the frozen CSR form — no per-call
    allocation, unlike {!neighbors}. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val exists_neighbor : t -> int -> (int -> bool) -> bool
(** Early-exit existential over neighbours (ascending). *)

val degree : t -> int -> int

val max_degree : t -> int

val avg_degree : t -> float
(** Average vertex degree [d̄] (the edge-LP bound of §2.1 is [(d̄+1)/2]). *)

val edges : t -> (int * int) list
(** All edges [(u, v)] with [u < v]. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val complement : t -> t

val induced : t -> int array -> t
(** [induced g vs] is the subgraph induced by [vs]; vertex [i] of the result
    corresponds to [vs.(i)]. *)

val square : t -> t
(** Distance-2 graph: edge [(i, j)] when [j] is within two hops of [i].
    Runs over the frozen CSR form in O(Σ deg²) — the shared kernel behind
    the distance-2 coloring constructions (Prop 17). *)

val clique : int -> t
(** Complete graph — models a regular combinatorial auction (every pair of
    bidders conflicts). *)

val is_independent : t -> int list -> bool
(** No edge inside the set (word-wise row/set intersection). *)

val words_per_row : t -> int
(** Words per packed adjacency row; masks from {!mask_create} /
    {!mask_of_list} have exactly this length. *)

val mask_create : t -> int array
(** Empty {!Bitset} mask over this graph's vertices. *)

val mask_of_list : t -> int list -> int array

val row_intersects : t -> int -> int array -> bool
(** [row_intersects g v mask] — does [v] have a neighbour inside [mask]?
    One AND per word, early exit. *)

val row_inter_card : t -> int -> int array -> int
(** Number of neighbours of [v] inside [mask] (AND + popcount). *)

val exists_row_inter : t -> int -> int array -> (int -> bool) -> bool
(** [exists_row_inter g v mask p] — is there a neighbour [u] of [v] with
    [mask] membership and [p u]?  Scans only the set bits of the word-wise
    intersection. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Summary ["graph(n=…, m=…)"]. *)
