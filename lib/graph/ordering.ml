type t = { order : int array; ranks : int array }

let of_order order =
  let size = Array.length order in
  let ranks = Array.make size (-1) in
  Array.iteri
    (fun pos v ->
      if v < 0 || v >= size then invalid_arg "Ordering.of_order: vertex out of range";
      if ranks.(v) >= 0 then invalid_arg "Ordering.of_order: not a permutation";
      ranks.(v) <- pos)
    order;
  { order = Array.copy order; ranks }

let identity size = of_order (Array.init size (fun i -> i))

let n t = Array.length t.order
let rank t v = t.ranks.(v)
let vertex_at t pos = t.order.(pos)
let precedes t u v = t.ranks.(u) < t.ranks.(v)

let before t v =
  let r = t.ranks.(v) in
  List.init r (fun pos -> t.order.(pos))

let after t v =
  let r = t.ranks.(v) in
  let size = n t in
  List.init (size - r - 1) (fun i -> t.order.(r + 1 + i))

let by_key size key =
  let order = Array.init size (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare (key a) (key b) in
      if c <> 0 then c else compare a b)
    order;
  of_order order

let reverse t =
  let size = n t in
  of_order (Array.init size (fun pos -> t.order.(size - 1 - pos)))

let backward_neighbors t g v =
  (* CSR fold instead of materialising the full neighbour list *)
  let rv = t.ranks.(v) in
  List.rev
    (Graph.fold_neighbors g v (fun acc u -> if t.ranks.(u) < rv then u :: acc else acc) [])

let to_order t = Array.copy t.order

let pp fmt t =
  Format.fprintf fmt "ordering[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
       Format.pp_print_int)
    (Array.to_list t.order)
