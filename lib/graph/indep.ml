type 'a result = { set : int list; value : 'a; exact : bool }

exception Budget_exhausted

let default_node_limit = 2_000_000

let greedy_weight g ~weights =
  let size = Graph.n g in
  let order = Array.init size (fun i -> i) in
  Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
  let chosen = ref [] in
  let chosen_mask = Graph.mask_create g in
  Array.iter
    (fun v ->
      if weights.(v) > 0.0 && not (Graph.row_intersects g v chosen_mask) then begin
        Bitset.add chosen_mask v;
        chosen := v :: !chosen
      end)
    order;
  let total = List.fold_left (fun acc v -> acc +. weights.(v)) 0.0 !chosen in
  (!chosen, total)

(* Branch and bound for maximum-weight independent set: vertices are
   processed in decreasing weight order; the bound is the weight collected so
   far plus the total weight still processable. *)
let max_weight_independent_set ?(node_limit = default_node_limit) g ~weights =
  let size = Graph.n g in
  if Array.length weights <> size then
    invalid_arg "Indep.max_weight_independent_set: weights length mismatch";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Indep.max_weight_independent_set: negative weight")
    weights;
  let order = Array.init size (fun i -> i) in
  Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
  let candidates = Array.to_list order in
  let best_set = ref [] and best_w = ref 0.0 in
  let nodes = ref 0 in
  let rec go current cur_w remaining rem_total =
    incr nodes;
    if !nodes > node_limit then raise Budget_exhausted;
    if cur_w > !best_w then begin
      best_w := cur_w;
      best_set := current
    end;
    match remaining with
    | [] -> ()
    | v :: rest ->
        if cur_w +. rem_total > !best_w then begin
          (* include v *)
          let rest_in = List.filter (fun u -> not (Graph.mem_edge g u v)) rest in
          let rem_in = List.fold_left (fun acc u -> acc +. weights.(u)) 0.0 rest_in in
          go (v :: current) (cur_w +. weights.(v)) rest_in rem_in;
          (* exclude v *)
          go current cur_w rest (rem_total -. weights.(v))
        end
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let exact =
    try
      go [] 0.0 candidates total;
      true
    with Budget_exhausted -> false
  in
  if exact then { set = !best_set; value = !best_w; exact = true }
  else
    let gset, gw = greedy_weight g ~weights in
    if gw > !best_w then { set = gset; value = gw; exact = false }
    else { set = !best_set; value = !best_w; exact = false }

let max_independent_set ?node_limit g =
  let weights = Array.make (Graph.n g) 1.0 in
  let r = max_weight_independent_set ?node_limit g ~weights in
  { set = r.set; value = List.length r.set; exact = r.exact }

(* Weighted-graph (Definition 2) inner problem.  Independence is downward
   closed and adding a vertex only increases incoming sums, so an include
   branch can be pruned as soon as it is infeasible. *)

let feasible_with wg chosen incoming u =
  (* [incoming.(v)] holds the interference into chosen vertex [v] from the
     other chosen vertices; check that adding [u] keeps everyone below 1. *)
  let into_u = List.fold_left (fun acc v -> acc +. Weighted.w wg v u) 0.0 chosen in
  into_u < 1.0
  && List.for_all (fun v -> incoming.(v) +. Weighted.w wg u v < 1.0) chosen

let greedy_profit_weighted wg ~candidates ~profit =
  let cands = Array.copy candidates in
  Array.sort (fun a b -> compare (profit b) (profit a)) cands;
  let incoming = Array.make (Weighted.n wg) 0.0 in
  let chosen = ref [] in
  Array.iter
    (fun u ->
      if profit u > 0.0 && feasible_with wg !chosen incoming u then begin
        List.iter (fun v -> incoming.(v) <- incoming.(v) +. Weighted.w wg u v) !chosen;
        incoming.(u) <-
          List.fold_left (fun acc v -> acc +. Weighted.w wg v u) 0.0 !chosen;
        chosen := u :: !chosen
      end)
    cands;
  let total = List.fold_left (fun acc u -> acc +. profit u) 0.0 !chosen in
  (!chosen, total)

let max_profit_weighted ?(node_limit = default_node_limit) wg ~candidates ~profit =
  Array.iter
    (fun u -> if profit u < 0.0 then invalid_arg "Indep.max_profit_weighted: negative profit")
    candidates;
  let cands = Array.copy candidates in
  Array.sort (fun a b -> compare (profit b) (profit a)) cands;
  let cand_list = Array.to_list cands in
  let incoming = Array.make (Weighted.n wg) 0.0 in
  let best_set = ref [] and best_p = ref 0.0 in
  let nodes = ref 0 in
  let rec go chosen cur_p remaining rem_total =
    incr nodes;
    if !nodes > node_limit then raise Budget_exhausted;
    if cur_p > !best_p then begin
      best_p := cur_p;
      best_set := chosen
    end;
    match remaining with
    | [] -> ()
    | u :: rest ->
        if cur_p +. rem_total > !best_p then begin
          if feasible_with wg chosen incoming u then begin
            List.iter (fun v -> incoming.(v) <- incoming.(v) +. Weighted.w wg u v) chosen;
            incoming.(u) <-
              List.fold_left (fun acc v -> acc +. Weighted.w wg v u) 0.0 chosen;
            go (u :: chosen) (cur_p +. profit u) rest (rem_total -. profit u);
            List.iter (fun v -> incoming.(v) <- incoming.(v) -. Weighted.w wg u v) chosen;
            incoming.(u) <- 0.0
          end;
          go chosen cur_p rest (rem_total -. profit u)
        end
  in
  let total = Array.fold_left (fun acc u -> acc +. profit u) 0.0 cands in
  let exact =
    try
      go [] 0.0 cand_list total;
      true
    with Budget_exhausted -> false
  in
  if exact then { set = !best_set; value = !best_p; exact = true }
  else
    let gset, gp = greedy_profit_weighted wg ~candidates ~profit in
    if gp > !best_p then { set = gset; value = gp; exact = false }
    else { set = !best_set; value = !best_p; exact = false }
