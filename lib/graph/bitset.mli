(** Word-packed bitsets over [0, n).

    The representation is a bare [int array] (bit [i] of word
    [i / word_bits]), shared with {!Graph}'s packed adjacency rows so that
    set-vs-neighbourhood tests run word-parallel (AND + popcount) instead of
    one probe per vertex. *)

val word_bits : int
(** Usable bits per word ([Sys.int_size], 63 on 64-bit platforms). *)

val words_for : int -> int
(** Number of words needed for a ground set of the given size. *)

val create : int -> int array
(** [create n] is the empty set over [0, n). *)

val clear : int array -> unit

val add : int array -> int -> unit

val remove : int array -> int -> unit

val mem : int array -> int -> bool

val of_list : int -> int list -> int array

val popcount : int -> int
(** Set bits in one word. *)

val cardinal : int array -> int

val inter_nonempty : int array -> int array -> bool
(** Whether the two sets share an element (word-wise AND, early exit). *)

val inter_cardinal : int array -> int array -> int

val lowest_bit_index : int -> int
(** Index of the least-significant set bit ([w <> 0]). *)

val iter_word : (int -> unit) -> int -> int -> unit
(** [iter_word f base w] calls [f (base + i)] for every set bit [i] of [w],
    ascending. *)

val iter : (int -> unit) -> int array -> unit
(** Ascending iteration over members. *)

val exists_bit : (int -> bool) -> int array -> bool
(** Early-exit existential over members (ascending). *)
