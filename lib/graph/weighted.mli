(** Edge-weighted conflict graphs (Section 3).

    A non-negative, possibly asymmetric weight [w u v] is attached to every
    ordered pair; a set [M] is independent when the incoming interference
    [Σ_{u ∈ M, u ≠ v} w u v < 1] for every [v ∈ M].  The algorithms use the
    symmetrised weights [w̄ u v = w u v + w v u] (Definition 2).

    Two representations share this interface:

    - {b dense} — the historical n×n matrix built by [create] /
      [of_function] / [of_graph]; O(1) lookup, mutable via [set].
    - {b sparse} — immutable CSR out-rows plus CSC in-columns over the
      entries at or above a weight floor [w_min], built by [of_entries].
      Each vertex [v] carries a certified bound [dropped_in_bound t v] on
      the total in-weight that was dropped below the floor, so a sparse
      independence check [Σ_{u ∈ M} w u v < 1] under-counts the true
      incoming interference by at most that explicit slack — enough to
      keep LP (3) feasibility auditable: a set accepted against the
      sparse graph violates the true constraint at [v] by less than
      [dropped_in_bound t v]. *)

type t

val create : int -> t
(** [create n]: all weights zero (dense). *)

val of_function : int -> (int -> int -> float) -> t
(** [of_function n f] sets [w u v = f u v] for all [u ≠ v]; diagonal forced
    to zero; negative weights rejected.  Dense. *)

val of_graph : Graph.t -> t
(** Embed an unweighted graph: [w u v = 1] on edges (in both directions), so
    weighted independence coincides with graph independence.  Dense. *)

val of_entries :
  int -> ?w_min:float -> ?dropped_in:float array -> (int * int * float) array -> t
(** [of_entries n ~w_min ~dropped_in entries] builds a sparse graph from
    directed [(u, v, x)] entries.  Entries with [x < w_min] (or [x = 0])
    are not stored; their weight is accumulated into vertex [v]'s dropped
    in-weight bound.  [dropped_in] (length [n], default all zero) seeds
    that bound with slack for entries the caller never enumerated — e.g. a
    per-row [w_min × (number of non-enumerated predecessors)] term from a
    distance-cutoff construction.  Rejects self-pairs, out-of-range
    vertices, negative/non-finite weights, and duplicate [(u, v)] pairs. *)

val n : t -> int

val is_sparse : t -> bool

val nnz : t -> int
(** Stored positive directed entries (sparse: stored entries; dense:
    positive matrix cells, counted in O(n²)). *)

val w_min : t -> float
(** The sparse weight floor; [0.] for dense graphs. *)

val dropped_in_bound : t -> int -> float
(** Certified upper bound on [Σ_u] true in-weight into [v] not represented
    in this graph; [0.] for dense graphs. *)

val w : t -> int -> int -> float
(** Directed weight into the second argument.  Sparse lookup is a binary
    search in [u]'s out-row. *)

val wbar : t -> int -> int -> float
(** Symmetrised weight [w u v + w v u]. *)

val set : t -> int -> int -> float -> unit
(** [set t u v x] sets [w u v <- x]; rejects self-pairs and negative [x].
    Raises [Invalid_argument] on sparse graphs (immutable). *)

val iter_out : t -> int -> (int -> float -> unit) -> unit
(** [iter_out t u f] calls [f v (w u v)] for every stored positive
    out-entry of [u], ascending in [v]. *)

val iter_into : t -> int -> (int -> float -> unit) -> unit
(** [iter_into t v f] calls [f u (w u v)] for every stored positive
    in-entry of [v], ascending in [u]. *)

val in_weight : t -> int -> float
(** Total stored in-weight [Σ_u w u v] (true row sum is within
    [dropped_in_bound t v] above this). *)

val incoming : t -> into:int -> int list -> float
(** [incoming t ~into:v set] is [Σ_{u ∈ set, u ≠ v} w u v]. *)

val is_independent : t -> int list -> bool
(** [incoming] strictly below 1 for every member. *)

val is_independent_arr : t -> bool array -> bool
(** Same over a membership mask (avoids list allocation in hot loops;
    sparse graphs scan only stored in-entries per member). *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
