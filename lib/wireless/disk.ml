module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Point = Sa_geom.Point
module Spatial = Sa_geom.Spatial
module Prng = Sa_util.Prng
module Tel = Sa_telemetry.Metrics

let m_kept = Tel.counter "wireless.construction.edges_kept"
let m_dropped = Tel.counter "wireless.construction.edges_dropped"

type t = { points : Point.t array; radii : float array }

let make points radii =
  if Array.length points <> Array.length radii then
    invalid_arg "Disk.make: points/radii length mismatch";
  Array.iter (fun r -> if r <= 0.0 then invalid_arg "Disk.make: non-positive radius") radii;
  { points = Array.copy points; radii = Array.copy radii }

let n t = Array.length t.points
let point t i = t.points.(i)
let radius t i = t.radii.(i)

(* Disks of radius r_i, r_j intersect only when the centres are within
   2 * max radius, so the grid enumerates candidate pairs at that radius
   and the exact naive predicate decides each one — the resulting graph is
   identical to the all-pairs construction. *)
let conflict_graph t =
  let size = n t in
  let g = Graph.create size in
  if size > 0 then begin
    let rmax = Array.fold_left Float.max 0.0 t.radii in
    let sp = Spatial.create ~cell:(2.0 *. rmax) t.points in
    let buf = ref [] in
    let kept = ref 0 and dropped = ref 0 in
    Spatial.iter_candidate_pairs sp ~r:(2.0 *. rmax) (fun i j ->
        if Spatial.dist sp i j < t.radii.(i) +. t.radii.(j) then begin
          incr kept;
          buf := (i, j) :: !buf
        end
        else incr dropped);
    Graph.add_edges_bulk g (Array.of_list !buf);
    Tel.add m_kept !kept;
    Tel.add m_dropped !dropped
  end;
  g

let ordering t = Ordering.by_key (n t) (fun i -> -.t.radii.(i))

let rho_bound = 5

let distance2_coloring_graph t = Graph.square (conflict_graph t)

let distance2_matching t =
  let base = conflict_graph t in
  let disk_edges = Array.of_list (Graph.edges base) in
  let m = Array.length disk_edges in
  let g = Graph.create m in
  for e = 0 to m - 1 do
    for f = e + 1 to m - 1 do
      let ea, eb = disk_edges.(e) and fa, fb = disk_edges.(f) in
      let share_endpoint = ea = fa || ea = fb || eb = fa || eb = fb in
      (* some disk-graph edge connects an endpoint of e to one of f — four
         O(1) adjacency probes, not a scan over the whole edge list *)
      let joined =
        share_endpoint
        || Graph.mem_edge base ea fa
        || Graph.mem_edge base ea fb
        || Graph.mem_edge base eb fa
        || Graph.mem_edge base eb fb
      in
      if joined then Graph.add_edge g e f
    done
  done;
  let r_of_edge e =
    let a, b = disk_edges.(e) in
    t.radii.(a) +. t.radii.(b)
  in
  (g, Ordering.by_key m r_of_edge, disk_edges)

let random g ~n:count ~side ~rmin ~rmax =
  if rmin <= 0.0 || rmax < rmin then invalid_arg "Disk.random: need 0 < rmin <= rmax";
  let points = Sa_geom.Placement.uniform g ~n:count ~side in
  let radii = Array.init count (fun _ -> Prng.uniform_in g rmin rmax) in
  make points radii
