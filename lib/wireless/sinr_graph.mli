(** Edge-weighted conflict graphs for the physical model.

    Two constructions from the paper:

    - {!prop11_graph}: fixed powers (Proposition 11).  Weights are the
      (1+ε)-corrected affectances, so that a link set satisfies the SINR
      constraints iff it is independent in the weighted graph.  With a
      monotone power scheme the decreasing-length ordering has
      ρ = O(log n) (Lemma 12).

    - {!thm13_graph}: power control (Theorem 13).  Weights are the
      distance-ratio terms scaled by [1/τ], [τ = 1 / (2·3^α·(4β+2))];
      independent sets admit a feasible power assignment computed by
      {!Power_control}.  [weight_scale] overrides [1/τ] for the ablation
      study (the paper's τ is a worst-case constant; the experiments probe
      how far it can be relaxed before power control starts failing).
      {!thm13_graph_sparse} is the same construction with a weight floor
      and CSR storage for large instances. *)

val prop11_graph :
  Link.system -> Sinr.params -> powers:float array -> Sa_graph.Weighted.t

val prop11_epsilon : Link.system -> Sinr.params -> float
(** The ε of Proposition 11:
    [β/2 · min_{ℓ,ℓ'} (d(s,r)^α / d(s',r)^α)] over links [ℓ=(s,r)],
    [ℓ'=(s',r')], [ℓ ≠ ℓ'].  Depends only on the geometry and [α], [β] —
    not on the transmit powers.  On Euclidean metrics the inner
    minimisation is a farthest-sender grid query per receiver. *)

val ordering : Link.system -> Sa_graph.Ordering.t
(** Decreasing link length — backward neighbours of a link are *longer*
    links, matching Lemma 12's premise. *)

val tau : Sinr.params -> float
(** [1 / (2·3^α·(4β+2))]. *)

val thm13_graph :
  ?weight_scale:float -> Link.system -> Sinr.params -> Sa_graph.Weighted.t
(** Directed weights from longer onto shorter links (zero in the other
    direction):
    [w(ℓ,ℓ') = scale·(min(1, d(ℓ)^α/d(s,r')^α) + min(1, d(ℓ)^α/d(s',r)^α)]
    where [ℓ=(s,r)] precedes [ℓ'=(s',r')] in decreasing-length order and
    [scale] defaults to [1/τ].  Dense n×n storage. *)

val thm13_graph_sparse :
  ?weight_scale:float -> w_min:float -> Link.system -> Sinr.params ->
  Sa_graph.Weighted.t
(** {!thm13_graph} with a positive weight floor [w_min]: entries below the
    floor are not stored, and every stored entry is bitwise equal to the
    dense one.  On Euclidean metrics, candidate pairs come from a midpoint
    grid with per-link cutoff radius
    [D_ℓ = d(ℓ) · (2·scale / w_min)^(1/α)] (entries with both cross
    distances beyond [D_ℓ] are certified [< w_min]); elsewhere every
    ordered pair is evaluated and floored.  Each row [ℓ'] of the result
    carries [Weighted.dropped_in_bound] ≤ [w_min ·] (number of links
    preceding [ℓ']) — the feasibility slack for LP (3): a set independent
    in the sparse graph violates the true incoming-interference constraint
    at [ℓ'] by less than that bound. *)

val sinr_iff_independent :
  Link.system -> Sinr.params -> powers:float array -> int list -> bool * bool
(** [(sinr_feasible, independent)] for a link set — the two sides of the
    Proposition 11 equivalence, for tests. *)
