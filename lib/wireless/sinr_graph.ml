module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Metric = Sa_geom.Metric
module Point = Sa_geom.Point
module Spatial = Sa_geom.Spatial
module Tel = Sa_telemetry.Metrics

let m_kept = Tel.counter "wireless.construction.edges_kept"
let m_dropped = Tel.counter "wireless.construction.edges_dropped"

(* epsilon = beta/2 * min_{i, j<>i} (d_i / d(s_j, r_i))^alpha.  For fixed i
   the minimum is attained at the sender farthest from r_i, so on Euclidean
   metrics a farthest-point grid query per receiver replaces the inner loop
   (x -> x^alpha is monotone, alpha > 0). *)
let prop11_epsilon sys prm =
  let n = Link.n sys in
  let alpha = prm.Sinr.alpha in
  let best = ref infinity in
  (match Metric.points (Link.metric sys) with
  | Some pts when n > 1 ->
      let senders = Array.init n (fun j -> pts.((Link.link sys j).Link.sender)) in
      let sp = Spatial.create senders in
      for i = 0 to n - 1 do
        let ri = pts.((Link.link sys i).Link.receiver) in
        match Spatial.farthest_from sp ~excluding:i ri with
        | None -> ()
        | Some (_, dmax) ->
            let di = Link.length sys i in
            let ratio = (di /. dmax) ** alpha in
            if ratio < !best then best := ratio
      done
  | _ ->
      for i = 0 to n - 1 do
        let di = Link.length sys i in
        for j = 0 to n - 1 do
          if i <> j then begin
            let d_sj_ri = Link.dist_sr sys ~from_sender_of:j ~to_receiver_of:i in
            let ratio = (di /. d_sj_ri) ** alpha in
            if ratio < !best then best := ratio
          end
        done
      done);
  if !best = infinity then prm.Sinr.beta /. 2.0 else prm.Sinr.beta /. 2.0 *. !best

let prop11_graph sys prm ~powers =
  Sinr.validate_params prm;
  let n = Link.n sys in
  let eps = prop11_epsilon sys prm in
  let beta' = prm.Sinr.beta /. (1.0 +. eps) in
  Weighted.of_function n (fun j i ->
      (* weight of ℓ' = j into ℓ = i *)
      let signal_i = powers.(i) /. (Link.length sys i ** prm.Sinr.alpha) in
      let budget = signal_i -. (beta' *. prm.Sinr.noise) in
      if budget <= 0.0 then 1.0
      else
        let recv = Sinr.received sys prm ~powers ~from_link:j ~at_receiver_of:i in
        Float.min 1.0 (beta' *. recv /. budget))

let ordering sys = Link.ordering_by_length ~decreasing:true sys

let tau prm =
  1.0 /. (2.0 *. (3.0 ** prm.Sinr.alpha) *. ((4.0 *. prm.Sinr.beta) +. 2.0))

(* The exact thm13 weight of longer link l onto shorter link l', written
   with the same float expressions as the dense construction so the sparse
   path stores bitwise-identical values. *)
let thm13_weight sys ~alpha ~scale l l' =
  let dl = Link.length sys l ** alpha in
  let d_s_r' = Link.dist_sr sys ~from_sender_of:l ~to_receiver_of:l' in
  let d_s'_r = Link.dist_sr sys ~from_sender_of:l' ~to_receiver_of:l in
  let term1 = Float.min 1.0 (dl /. (d_s_r' ** alpha)) in
  let term2 = Float.min 1.0 (dl /. (d_s'_r ** alpha)) in
  scale *. (term1 +. term2)

let resolve_scale prm = function
  | Some s -> s
  | None -> 1.0 /. tau prm

let thm13_graph ?weight_scale sys prm =
  Sinr.validate_params prm;
  let scale = resolve_scale prm weight_scale in
  if scale <= 0.0 then invalid_arg "Sinr_graph.thm13_graph: scale must be positive";
  let n = Link.n sys in
  let pi = ordering sys in
  let alpha = prm.Sinr.alpha in
  Weighted.of_function n (fun l l' ->
      if not (Ordering.precedes pi l l') then 0.0
      else thm13_weight sys ~alpha ~scale l l')

let thm13_graph_sparse ?weight_scale ~w_min sys prm =
  Sinr.validate_params prm;
  let scale = resolve_scale prm weight_scale in
  if scale <= 0.0 then
    invalid_arg "Sinr_graph.thm13_graph_sparse: scale must be positive";
  if (not (Float.is_finite w_min)) || w_min <= 0.0 then
    invalid_arg "Sinr_graph.thm13_graph_sparse: w_min must be positive and finite";
  let n = Link.n sys in
  let pi = ordering sys in
  let alpha = prm.Sinr.alpha in
  match Metric.points (Link.metric sys) with
  | None ->
      (* no geometry: evaluate every ordered pair, let the floor drop the
         tail (the dropped bound is then exact, no w_min slack needed) *)
      let entries = ref [] in
      for l = 0 to n - 1 do
        for l' = 0 to n - 1 do
          if l <> l' && Ordering.precedes pi l l' then
            entries := (l, l', thm13_weight sys ~alpha ~scale l l') :: !entries
        done
      done;
      Weighted.of_entries n ~w_min (Array.of_list !entries)
  | Some pts ->
      (* w(l, l') >= w_min forces one of the two cross distances below
         D_l = d_l * (2 scale / w_min)^(1/alpha); the (1 + 1e-9) factor
         absorbs float rounding so every skipped entry is certified
         < w_min.  Midpoints of such pairs are within D_l plus half the
         two link lengths, so a midpoint grid at D_max + maxlen
         enumerates a superset of the kept entries. *)
      let len = Array.init n (Link.length sys) in
      (* len_pow.(l) repeats the dense construction's [Link.length l ** α]
         expression, so kept entries stay bitwise identical *)
      let len_pow = Array.map (fun d -> d ** alpha) len in
      let maxlen = Array.fold_left Float.max 0.0 len in
      let cut_factor = ((2.0 *. scale /. w_min) ** (1.0 /. alpha)) *. (1.0 +. 1e-9) in
      let cutoff = Array.map (fun d -> d *. cut_factor) len in
      let dmax = Array.fold_left Float.max 0.0 cutoff in
      let mids =
        Array.init n (fun i ->
            let l = Link.link sys i in
            let s = pts.(l.Link.sender) and r = pts.(l.Link.receiver) in
            Point.make
              ((s.Point.x +. r.Point.x) /. 2.0)
              ((s.Point.y +. r.Point.y) /. 2.0))
      in
      let sp = Spatial.create mids in
      let entries = ref [] in
      let enum_pred = Array.make n 0 in
      let kept = ref 0 and rejected = ref 0 in
      (if n > 0 then
         Spatial.iter_candidate_pairs sp ~r:(dmax +. maxlen) (fun a b ->
             let l, l' = if Ordering.precedes pi a b then (a, b) else (b, a) in
             (* cheap reject: midpoints farther than D_l + (len_l+len_l')/2
                imply both cross distances exceed D_l *)
             if Spatial.dist sp a b <= cutoff.(l) +. ((len.(l) +. len.(l')) /. 2.0)
             then begin
               let d1 = Link.dist_sr sys ~from_sender_of:l ~to_receiver_of:l' in
               let d2 = Link.dist_sr sys ~from_sender_of:l' ~to_receiver_of:l in
               if d1 <= cutoff.(l) || d2 <= cutoff.(l) then begin
                 enum_pred.(l') <- enum_pred.(l') + 1;
                 incr kept;
                 let dl = len_pow.(l) in
                 let term1 = Float.min 1.0 (dl /. (d1 ** alpha)) in
                 let term2 = Float.min 1.0 (dl /. (d2 ** alpha)) in
                 entries := (l, l', scale *. (term1 +. term2)) :: !entries
               end
               else incr rejected
             end
             else incr rejected));
      (* every non-enumerated predecessor contributes < w_min in-weight *)
      let dropped_in =
        Array.init n (fun v ->
            w_min *. float_of_int (Ordering.rank pi v - enum_pred.(v)))
      in
      Tel.add m_kept !kept;
      Tel.add m_dropped !rejected;
      Weighted.of_entries n ~w_min ~dropped_in (Array.of_list !entries)

let sinr_iff_independent sys prm ~powers set =
  let wg = prop11_graph sys prm ~powers in
  (Sinr.feasible sys prm ~powers set, Weighted.is_independent wg set)
