module Graph = Sa_graph.Graph
module Point = Sa_geom.Point
module Spatial = Sa_geom.Spatial
module Prng = Sa_util.Prng
module Tel = Sa_telemetry.Metrics

type t = { points : Point.t array; graph : Graph.t }

let m_kept = Tel.counter "wireless.construction.edges_kept"
let m_dropped = Tel.counter "wireless.construction.edges_dropped"

let make points ~r ~s g =
  let count = Array.length points in
  if Graph.n g <> count then invalid_arg "Civilized.make: graph size mismatch";
  if count > 0 then begin
    (* separation check via the grid: any violating pair is within s, so it
       appears among the candidates at that radius *)
    let sp = Spatial.create ~cell:s points in
    Spatial.iter_candidate_pairs sp ~r:s (fun i j ->
        if Spatial.dist sp i j < s -. 1e-12 then
          invalid_arg "Civilized.make: points closer than s")
  end;
  Graph.iter_edges g (fun u v ->
      if Point.dist points.(u) points.(v) > r +. 1e-12 then
        invalid_arg "Civilized.make: edge longer than r");
  { points = Array.copy points; graph = Graph.copy g }

let random g ~n:target ~side ~r ~s ~edge_prob =
  if s <= 0.0 || r < s then invalid_arg "Civilized.random: need 0 < s <= r";
  let placed = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  let max_attempts = target * 50 in
  while !count < target && !attempts < max_attempts do
    incr attempts;
    let p = Point.make (Prng.float g side) (Prng.float g side) in
    if List.for_all (fun q -> Point.dist p q >= s) !placed then begin
      placed := p :: !placed;
      incr count
    end
  done;
  let points = Array.of_list (List.rev !placed) in
  let m = Array.length points in
  let graph = Graph.create m in
  if m > 0 then begin
    (* The all-pairs loop draws one bernoulli per lexicographic pair with
       d <= r.  [pairs_within] returns exactly those pairs in the same
       order, so the PRNG stream — and hence the sampled graph — is
       bit-identical to the naive construction. *)
    let sp = Spatial.create ~cell:r points in
    let close = Spatial.pairs_within sp r in
    let buf = ref [] in
    let kept = ref 0 and dropped = ref 0 in
    List.iter
      (fun (i, j) ->
        if Prng.bernoulli g edge_prob then begin
          incr kept;
          buf := (i, j) :: !buf
        end
        else incr dropped)
      close;
    Graph.add_edges_bulk graph (Array.of_list !buf);
    Tel.add m_kept !kept;
    Tel.add m_dropped !dropped
  end;
  { points; graph }

let graph t = t.graph
let points t = Array.copy t.points
let n t = Array.length t.points

let distance2_coloring_graph t = Graph.square t.graph

let rho_bound ~r ~s =
  let q = (4.0 *. r /. s) +. 2.0 in
  q *. q
