module Graph = Sa_graph.Graph
module Metric = Sa_geom.Metric
module Point = Sa_geom.Point
module Spatial = Sa_geom.Spatial
module Tel = Sa_telemetry.Metrics

let m_kept = Tel.counter "wireless.construction.edges_kept"
let m_dropped = Tel.counter "wireless.construction.edges_dropped"

(* Grid support for Euclidean link systems.  If links i and j conflict
   under either the protocol or the 802.11 predicate with guard factor
   (1 + delta), then some endpoint of i is within (1 + delta) * Lmax of
   some endpoint of j, hence the link midpoints are within
   (1 + delta) * Lmax + Lmax/2 + Lmax/2 = (2 + delta) * Lmax.  Candidate
   pairs are enumerated at that radius and the exact predicate — the same
   Metric.dist expressions as the all-pairs loop — decides each one, so
   the graph is identical to the naive construction. *)
let midpoints sys =
  match Metric.points (Link.metric sys) with
  | None -> None
  | Some pts ->
      let n = Link.n sys in
      let mids =
        Array.init n (fun i ->
            let l = Link.link sys i in
            let s = pts.(l.Link.sender) and r = pts.(l.Link.receiver) in
            Point.make ((s.Point.x +. r.Point.x) /. 2.0) ((s.Point.y +. r.Point.y) /. 2.0))
      in
      Some mids

let max_length sys =
  let best = ref 0.0 in
  for i = 0 to Link.n sys - 1 do
    best := Float.max !best (Link.length sys i)
  done;
  !best

let build_conflicts sys ~delta conflict =
  let n = Link.n sys in
  let g = Graph.create n in
  (match midpoints sys with
  | Some mids when n > 0 ->
      let reach = (2.0 +. delta) *. max_length sys in
      let sp = Spatial.create ~cell:reach mids in
      let buf = ref [] in
      let kept = ref 0 and dropped = ref 0 in
      Spatial.iter_candidate_pairs sp ~r:reach (fun i j ->
          if conflict i j then begin
            incr kept;
            buf := (i, j) :: !buf
          end
          else incr dropped);
      Graph.add_edges_bulk g (Array.of_list !buf);
      Tel.add m_kept !kept;
      Tel.add m_dropped !dropped
  | _ ->
      (* general metric: no geometry to index, fall back to all pairs *)
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if conflict i j then Graph.add_edge g i j
        done
      done);
  g

let conflict_graph sys ~delta =
  if delta <= 0.0 then invalid_arg "Protocol.conflict_graph: delta must be positive";
  build_conflicts sys ~delta (fun i j ->
      (* j's sender too close to i's receiver, or vice versa *)
      Link.dist_sr sys ~from_sender_of:j ~to_receiver_of:i
      < (1.0 +. delta) *. Link.length sys i
      || Link.dist_sr sys ~from_sender_of:i ~to_receiver_of:j
         < (1.0 +. delta) *. Link.length sys j)

let conflict_graph_80211 sys ~delta =
  if delta <= 0.0 then invalid_arg "Protocol.conflict_graph_80211: delta must be positive";
  let m = Link.metric sys in
  build_conflicts sys ~delta (fun i j ->
      let li = Link.link sys i and lj = Link.link sys j in
      let guard = (1.0 +. delta) *. Float.max (Link.length sys i) (Link.length sys j) in
      let endpoints l = [ l.Link.sender; l.Link.receiver ] in
      List.exists
        (fun a -> List.exists (fun b -> Metric.dist m a b < guard) (endpoints lj))
        (endpoints li))

let ordering sys = Link.ordering_by_length ~decreasing:false sys

let rho_bound ~delta =
  if delta <= 0.0 then invalid_arg "Protocol.rho_bound: delta must be positive";
  let angle = asin (delta /. (2.0 *. (delta +. 1.0))) in
  int_of_float (Float.ceil (Float.pi /. angle)) - 1

let rho_bound_80211 = 23
