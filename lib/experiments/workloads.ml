module Prng = Sa_util.Prng
module Placement = Sa_geom.Placement
module Inductive = Sa_graph.Inductive
module Vgen = Sa_val.Gen
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Disk = Sa_wireless.Disk
module Sinr = Sa_wireless.Sinr
module Sinr_graph = Sa_wireless.Sinr_graph
module Instance = Sa_core.Instance

type bid_profile = Xor_small | Xor_heavy | Mixed

let bidders g ~n ~k ~profile =
  match profile with
  | Xor_small ->
      Array.init n (fun _ ->
          Vgen.random_xor g ~k ~bids:3 ~max_bundle:(min 2 k)
            ~dist:(Vgen.Uniform (1.0, 10.0)))
  | Xor_heavy ->
      Array.init n (fun _ ->
          Vgen.random_xor g ~k ~bids:4 ~max_bundle:(min 4 k)
            ~dist:(Vgen.Pareto { alpha = 1.8; xmin = 1.0 }))
  | Mixed ->
      Array.init n (fun _ -> Vgen.random_mixed g ~k ~dist:(Vgen.Uniform (1.0, 10.0)))

let rate_based_bidders g ~sys ~k ~prm =
  Sinr.validate_params prm;
  Array.init (Link.n sys) (fun i ->
      let d = Link.length sys i in
      let snr =
        let noise = Float.max prm.Sinr.noise 1e-6 in
        1.0 /. (d ** prm.Sinr.alpha) /. noise
      in
      let rate = Sa_util.Floats.log2 (1.0 +. snr) in
      let demand = Prng.uniform_in g 0.5 2.0 in
      (* concave aggregation: m channels give rate * (1 + 1/2 + ... + 1/m) *)
      let f = Array.make (k + 1) 0.0 in
      for m = 1 to k do
        f.(m) <- f.(m - 1) +. (demand *. rate /. float_of_int m)
      done;
      Sa_val.Valuation.Symmetric f)

(* Side length grows with sqrt n so spatial density (and hence conflict
   degree) stays roughly constant across the n sweep. *)
let side_for n = 4.0 *. sqrt (float_of_int n)

let sinr_default_params = { Sinr.alpha = 3.0; beta = 1.5; noise = 0.0 }

let measured_rho_unweighted graph pi =
  Float.max 1.0 (Inductive.rho_unweighted ~node_limit:500_000 graph pi).Inductive.rho

let protocol_conflict ~seed ~n ?(delta = 1.0) () =
  let g = Prng.create ~seed in
  let pairs = Placement.random_links g ~n ~side:(side_for n) ~min_len:0.5 ~max_len:1.5 in
  let sys = Link.of_point_pairs pairs in
  let graph = Protocol.conflict_graph sys ~delta in
  let key =
    let pts =
      match Sa_geom.Metric.points (Link.metric sys) with Some p -> p | None -> [||]
    in
    Sa_geom.Spatial.fingerprint ~tag:"protocol" ~extra:[| delta |] pts
  in
  (g, sys, Instance.Unweighted graph, key)

let protocol_instance ~seed ~n ~k ?(delta = 1.0) ?(profile = Xor_small) () =
  let g, sys, conflict, _ = protocol_conflict ~seed ~n ~delta () in
  let graph =
    match conflict with Instance.Unweighted gr -> gr | _ -> assert false
  in
  let pi = Protocol.ordering sys in
  let rho = measured_rho_unweighted graph pi in
  Instance.make ~conflict ~k ~bidders:(bidders g ~n ~k ~profile) ~ordering:pi ~rho

let disk_conflict ~seed ~n () =
  let g = Prng.create ~seed in
  let disks = Disk.random g ~n ~side:(side_for n) ~rmin:0.5 ~rmax:1.5 in
  let graph = Disk.conflict_graph disks in
  let key =
    let pts = Array.init n (Disk.point disks) in
    let radii = Array.init n (Disk.radius disks) in
    Sa_geom.Spatial.fingerprint ~tag:"disk" ~extra:radii pts
  in
  (g, disks, Instance.Unweighted graph, key)

let disk_instance ~seed ~n ~k ?(profile = Xor_small) () =
  let g, disks, conflict, _ = disk_conflict ~seed ~n () in
  let graph =
    match conflict with Instance.Unweighted gr -> gr | _ -> assert false
  in
  let pi = Disk.ordering disks in
  let rho = measured_rho_unweighted graph pi in
  Instance.make ~conflict ~k ~bidders:(bidders g ~n ~k ~profile) ~ordering:pi ~rho

let sinr_fixed_instance ~seed ~n ~k ~scheme ?(profile = Xor_small) () =
  let g = Prng.create ~seed in
  let pairs =
    Placement.random_links g ~n ~side:(2.0 *. side_for n) ~min_len:0.5 ~max_len:2.0
  in
  let sys = Link.of_point_pairs pairs in
  let prm = { sinr_default_params with Sinr.noise = 0.01 } in
  let powers = Sinr.powers sys prm scheme in
  let wg = Sinr_graph.prop11_graph sys prm ~powers in
  let pi = Sinr_graph.ordering sys in
  let rho =
    Float.max 1.0 (Inductive.rho_weighted ~node_limit:200_000 wg pi).Inductive.rho
  in
  let inst =
    Instance.make ~conflict:(Instance.Edge_weighted wg) ~k
      ~bidders:(bidders g ~n ~k ~profile) ~ordering:pi ~rho
  in
  (inst, sys)

let sinr_powercontrol_instance ~seed ~n ~k ~weight_scale ?(profile = Xor_small) () =
  let g = Prng.create ~seed in
  let pairs =
    Placement.random_links g ~n ~side:(2.0 *. side_for n) ~min_len:0.5 ~max_len:2.0
  in
  let sys = Link.of_point_pairs pairs in
  let prm = sinr_default_params in
  let wg = Sinr_graph.thm13_graph ~weight_scale sys prm in
  let pi = Sinr_graph.ordering sys in
  let rho =
    Float.max 1.0 (Inductive.rho_weighted ~node_limit:200_000 wg pi).Inductive.rho
  in
  let inst =
    Instance.make ~conflict:(Instance.Edge_weighted wg) ~k
      ~bidders:(bidders g ~n ~k ~profile) ~ordering:pi ~rho
  in
  (inst, sys, prm)

let asymmetric_instance ~seed ~n ~k ~d =
  let g = Prng.create ~seed in
  let base = Sa_graph.Generators.random_bounded_degree g ~n ~d in
  let inst, _ = Sa_core.Hardness.theorem14_instance base ~k in
  inst

let asymmetric_weighted_instance ~seed ~n ~k ?(profile = Xor_small) () =
  let g = Prng.create ~seed in
  let pairs =
    Placement.random_links g ~n ~side:(2.0 *. side_for n) ~min_len:0.5 ~max_len:2.0
  in
  let sys = Link.of_point_pairs pairs in
  (* Channel j models a different frequency band: lower channels propagate
     further (smaller path-loss exponent), so each channel gets its own
     Prop-11 weighted conflict graph. *)
  let graphs =
    Array.init k (fun j ->
        let alpha = 2.5 +. (0.5 *. float_of_int j) in
        let prm = { Sinr.alpha; beta = 1.5; noise = 0.01 } in
        let powers = Sinr.powers sys prm Sinr.Uniform in
        Sinr_graph.prop11_graph sys prm ~powers)
  in
  let pi = Sinr_graph.ordering sys in
  let rho =
    Array.fold_left
      (fun acc wg ->
        Float.max acc (Inductive.rho_weighted ~node_limit:100_000 wg pi).Inductive.rho)
      1.0 graphs
  in
  let inst =
    Instance.make ~conflict:(Instance.Per_channel_weighted graphs) ~k
      ~bidders:(bidders g ~n ~k ~profile) ~ordering:pi ~rho
  in
  (inst, sys)

let clique_instance ~seed ~n ~k ?(profile = Xor_small) () =
  let g = Prng.create ~seed in
  let graph = Sa_graph.Graph.clique n in
  Instance.make ~conflict:(Instance.Unweighted graph) ~k
    ~bidders:(bidders g ~n ~k ~profile)
    ~ordering:(Sa_graph.Ordering.identity n) ~rho:1.0
