(** Shared synthetic workload builders for the experiment suite (E1–E10).

    Every builder is deterministic in its [seed]; experiments report means
    over several seeds.  See DESIGN.md §3 for the experiment index. *)

type bid_profile =
  | Xor_small  (** 3 XOR bids on bundles of ≤ 2 channels, Uniform(1,10) *)
  | Xor_heavy  (** 4 XOR bids on bundles of ≤ 4 channels, Pareto values *)
  | Mixed  (** random mix of the four bidding languages *)

val bidders :
  Sa_util.Prng.t -> n:int -> k:int -> profile:bid_profile -> Sa_val.Valuation.t array

val rate_based_bidders :
  Sa_util.Prng.t ->
  sys:Sa_wireless.Link.system ->
  k:int ->
  prm:Sa_wireless.Sinr.params ->
  Sa_val.Valuation.t array
(** Geometry-aware valuations (§1: values depend on "locations … and
    interference conditions"): a link's per-channel value is the Shannon-
    style achievable rate [log2(1 + SNR)] of the link alone under uniform
    power — short links are worth more — times a random per-bidder traffic
    demand; expressed as a concave [Symmetric] valuation over the number of
    channels (channel aggregation with diminishing returns). *)

val protocol_instance :
  seed:int -> n:int -> k:int -> ?delta:float -> ?profile:bid_profile -> unit ->
  Sa_core.Instance.t
(** Links uniform in a square scaled so conflict density stays moderate as
    [n] grows; protocol-model conflict graph, length ordering, ρ set to the
    *measured* ρ(π) (the LP is tighter and the guarantee still valid). *)

val protocol_conflict :
  seed:int -> n:int -> ?delta:float -> unit ->
  Sa_util.Prng.t * Sa_wireless.Link.system * Sa_core.Instance.conflict * string
(** The conflict structure of {!protocol_instance} plus the generator
    (positioned to draw the bidders next) and an O(n) placement
    fingerprint ({!Sa_geom.Spatial.fingerprint} over the node coordinates
    and δ) for {!Sa_engine.Engine.prepare}'s topology-cache key. *)

val disk_instance :
  seed:int -> n:int -> k:int -> ?profile:bid_profile -> unit -> Sa_core.Instance.t

val disk_conflict :
  seed:int -> n:int -> unit ->
  Sa_util.Prng.t * Sa_wireless.Disk.t * Sa_core.Instance.conflict * string
(** Same contract as {!protocol_conflict} for the disk model; the
    fingerprint covers centres and radii. *)

val sinr_fixed_instance :
  seed:int ->
  n:int ->
  k:int ->
  scheme:Sa_wireless.Sinr.power_scheme ->
  ?profile:bid_profile ->
  unit ->
  Sa_core.Instance.t * Sa_wireless.Link.system
(** Edge-weighted instance from the Proposition-11 graph (fixed powers). *)

val sinr_powercontrol_instance :
  seed:int ->
  n:int ->
  k:int ->
  weight_scale:float ->
  ?profile:bid_profile ->
  unit ->
  Sa_core.Instance.t * Sa_wireless.Link.system * Sa_wireless.Sinr.params
(** Edge-weighted instance from the Theorem-13 graph at the given scale. *)

val asymmetric_instance :
  seed:int -> n:int -> k:int -> d:int -> Sa_core.Instance.t
(** Theorem-14 construction over a random degree-≤d graph. *)

val asymmetric_weighted_instance :
  seed:int -> n:int -> k:int -> ?profile:bid_profile -> unit ->
  Sa_core.Instance.t * Sa_wireless.Link.system
(** Section 6 in full generality: per-channel *edge-weighted* conflict
    graphs — each channel is a different frequency band with its own
    path-loss exponent, hence its own Prop-11 SINR graph. *)

val clique_instance :
  seed:int -> n:int -> k:int -> ?profile:bid_profile -> unit -> Sa_core.Instance.t
(** Regular combinatorial auction (clique conflicts, ρ = 1). *)

val sinr_default_params : Sa_wireless.Sinr.params
(** α = 3, β = 1.5, ν = 0 — used by all SINR experiments. *)
