(* Uniform grid over planar points: cell = interaction radius, CSR bucket
   layout (offsets + point ids), flat floatarray coordinates so the
   distance kernels run on unboxed floats without per-pair closures. *)

module Tel = Sa_telemetry.Metrics

let m_cells = Tel.counter "geom.grid.cells_scanned"
let m_candidates = Tel.counter "geom.grid.candidates"

type t = {
  n : int;
  xs : floatarray;
  ys : floatarray;
  x0 : float;
  y0 : float;
  cw : float; (* cell width, possibly grown from the requested one *)
  ncx : int;
  ncy : int;
  offsets : int array; (* ncx*ncy + 1 *)
  ids : int array; (* point indices grouped by cell *)
}

let n t = t.n
let cell_size t = t.cw
let xs t = t.xs
let ys t = t.ys

let point t i =
  if i < 0 || i >= t.n then invalid_arg "Spatial.point: index out of range";
  Point.make (Float.Array.get t.xs i) (Float.Array.get t.ys i)

(* Same expression as Point.dist: sqrt (dx*dx + dy*dy). *)
let dist_xy ax ay bx by =
  let dx = ax -. bx and dy = ay -. by in
  sqrt ((dx *. dx) +. (dy *. dy))

let dist t i j =
  dist_xy (Float.Array.get t.xs i) (Float.Array.get t.ys i)
    (Float.Array.get t.xs j) (Float.Array.get t.ys j)

let dist_to t i (p : Point.t) =
  dist_xy (Float.Array.get t.xs i) (Float.Array.get t.ys i) p.Point.x p.Point.y

let clampi lo hi v = if v < lo then lo else if v > hi then hi else v

let cell_x t x = clampi 0 (t.ncx - 1) (int_of_float ((x -. t.x0) /. t.cw))
let cell_y t y = clampi 0 (t.ncy - 1) (int_of_float ((y -. t.y0) /. t.cw))

let create ?cell pts =
  let count = Array.length pts in
  let xs = Float.Array.create count and ys = Float.Array.create count in
  Array.iteri
    (fun i (p : Point.t) ->
      Float.Array.set xs i p.Point.x;
      Float.Array.set ys i p.Point.y)
    pts;
  let x0 = ref infinity and y0 = ref infinity in
  let x1 = ref neg_infinity and y1 = ref neg_infinity in
  for i = 0 to count - 1 do
    let x = Float.Array.get xs i and y = Float.Array.get ys i in
    if x < !x0 then x0 := x;
    if x > !x1 then x1 := x;
    if y < !y0 then y0 := y;
    if y > !y1 then y1 := y
  done;
  let x0 = if count = 0 then 0.0 else !x0 and y0 = if count = 0 then 0.0 else !y0 in
  let wx = if count = 0 then 0.0 else !x1 -. x0
  and wy = if count = 0 then 0.0 else !y1 -. y0 in
  let cw =
    match cell with
    | Some c ->
        if (not (Float.is_finite c)) || c <= 0.0 then
          invalid_arg "Spatial.create: cell must be positive and finite";
        c
    | None ->
        let diag = sqrt ((wx *. wx) +. (wy *. wy)) in
        let c = diag /. sqrt (float_of_int (max 1 count)) in
        if c > 0.0 then c else 1.0
  in
  (* Grow the cell when the requested width would allocate far more cells
     than points (tiny radius in a huge domain): pruning weakens, results
     do not change. *)
  let cells_at c =
    let nx = (int_of_float (wx /. c)) + 1 and ny = (int_of_float (wy /. c)) + 1 in
    (max 1 nx, max 1 ny)
  in
  let target = max 16 (4 * max 1 count) in
  let cw =
    let nx, ny = cells_at cw in
    if nx * ny <= target then cw
    else cw *. sqrt (float_of_int (nx * ny) /. float_of_int target)
  in
  let ncx, ncy = cells_at cw in
  let t =
    {
      n = count;
      xs;
      ys;
      x0;
      y0;
      cw;
      ncx;
      ncy;
      offsets = Array.make ((ncx * ncy) + 1) 0;
      ids = Array.make count 0;
    }
  in
  (* counting sort into cells *)
  let cell_of i =
    (cell_y t (Float.Array.get ys i) * ncx) + cell_x t (Float.Array.get xs i)
  in
  for i = 0 to count - 1 do
    let c = cell_of i in
    t.offsets.(c + 1) <- t.offsets.(c + 1) + 1
  done;
  for c = 1 to ncx * ncy do
    t.offsets.(c) <- t.offsets.(c) + t.offsets.(c - 1)
  done;
  let fill = Array.copy t.offsets in
  for i = 0 to count - 1 do
    let c = cell_of i in
    t.ids.(fill.(c)) <- i;
    fill.(c) <- fill.(c) + 1
  done;
  t

(* ---- queries -------------------------------------------------------------- *)

(* Cell ranges covering the axis-aligned box of the r-ball around (px, py). *)
let box_ranges t px py r =
  let cx_lo = cell_x t (px -. r) and cx_hi = cell_x t (px +. r) in
  let cy_lo = cell_y t (py -. r) and cy_hi = cell_y t (py +. r) in
  (cx_lo, cx_hi, cy_lo, cy_hi)

let iter_box t px py r f =
  if t.n > 0 then begin
    let cx_lo, cx_hi, cy_lo, cy_hi = box_ranges t px py r in
    let cells = ref 0 and cands = ref 0 in
    for cy = cy_lo to cy_hi do
      for cx = cx_lo to cx_hi do
        incr cells;
        let c = (cy * t.ncx) + cx in
        for s = t.offsets.(c) to t.offsets.(c + 1) - 1 do
          incr cands;
          f t.ids.(s)
        done
      done
    done;
    Tel.add m_cells !cells;
    Tel.add m_candidates !cands
  end

let iter_candidates t (p : Point.t) ~r f =
  if (not (Float.is_finite r)) || r < 0.0 then
    invalid_arg "Spatial.iter_candidates: r must be non-negative and finite";
  iter_box t p.Point.x p.Point.y r f

let iter_candidate_pairs t ~r f =
  if (not (Float.is_finite r)) || r < 0.0 then
    invalid_arg "Spatial.iter_candidate_pairs: r must be non-negative and finite";
  for i = 0 to t.n - 1 do
    iter_box t (Float.Array.get t.xs i) (Float.Array.get t.ys i) r (fun j ->
        if j > i then f i j)
  done

let neighbors_within t i r =
  if i < 0 || i >= t.n then invalid_arg "Spatial.neighbors_within: index out of range";
  let xi = Float.Array.get t.xs i and yi = Float.Array.get t.ys i in
  let acc = ref [] in
  iter_box t xi yi r (fun j ->
      if j <> i && dist t i j <= r then acc := j :: !acc);
  List.sort compare !acc

let pairs_within t r =
  let acc = ref [] in
  iter_candidate_pairs t ~r (fun u v -> if dist t u v <= r then acc := (u, v) :: !acc);
  List.sort compare !acc

(* Minimum / maximum distance from (px,py) to the cell rectangle (cx,cy). *)
let cell_min_dist t px py cx cy =
  let rx0 = t.x0 +. (float_of_int cx *. t.cw) in
  let ry0 = t.y0 +. (float_of_int cy *. t.cw) in
  let dx = Float.max 0.0 (Float.max (rx0 -. px) (px -. (rx0 +. t.cw))) in
  let dy = Float.max 0.0 (Float.max (ry0 -. py) (py -. (ry0 +. t.cw))) in
  sqrt ((dx *. dx) +. (dy *. dy))

let cell_max_dist t px py cx cy =
  let rx0 = t.x0 +. (float_of_int cx *. t.cw) in
  let ry0 = t.y0 +. (float_of_int cy *. t.cw) in
  let dx = Float.max (Float.abs (px -. rx0)) (Float.abs (px -. (rx0 +. t.cw))) in
  let dy = Float.max (Float.abs (py -. ry0)) (Float.abs (py -. (ry0 +. t.cw))) in
  sqrt ((dx *. dx) +. (dy *. dy))

let iter_annulus t i ~r_lo ~r_hi f =
  if i < 0 || i >= t.n then invalid_arg "Spatial.iter_annulus: index out of range";
  if r_lo < 0.0 || r_hi < r_lo then
    invalid_arg "Spatial.iter_annulus: need 0 <= r_lo <= r_hi";
  let px = Float.Array.get t.xs i and py = Float.Array.get t.ys i in
  let cx_lo, cx_hi, cy_lo, cy_hi = box_ranges t px py r_hi in
  let cells = ref 0 and cands = ref 0 in
  let acc = ref [] in
  for cy = cy_lo to cy_hi do
    for cx = cx_lo to cx_hi do
      incr cells;
      (* skip cells entirely inside the inner ball or outside the outer *)
      if cell_max_dist t px py cx cy >= r_lo && cell_min_dist t px py cx cy <= r_hi
      then begin
        let c = (cy * t.ncx) + cx in
        for s = t.offsets.(c) to t.offsets.(c + 1) - 1 do
          incr cands;
          let j = t.ids.(s) in
          if j <> i then begin
            let d = dist t i j in
            if d >= r_lo && d <= r_hi then acc := j :: !acc
          end
        done
      end
    done
  done;
  Tel.add m_cells !cells;
  Tel.add m_candidates !cands;
  List.iter f (List.sort compare !acc)

let farthest_from t ?(excluding = -1) (p : Point.t) =
  if t.n = 0 || (t.n = 1 && excluding = 0) then None
  else begin
    let px = p.Point.x and py = p.Point.y in
    (* upper bound per non-empty cell, visited best-first *)
    let cells = ref [] in
    for cy = 0 to t.ncy - 1 do
      for cx = 0 to t.ncx - 1 do
        let c = (cy * t.ncx) + cx in
        if t.offsets.(c + 1) > t.offsets.(c) then
          cells := (cell_max_dist t px py cx cy, c) :: !cells
      done
    done;
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) !cells in
    let best_d = ref neg_infinity and best_i = ref (-1) in
    let scanned = ref 0 and cands = ref 0 in
    (try
       List.iter
         (fun (ub, c) ->
           if ub < !best_d then raise Exit;
           incr scanned;
           for s = t.offsets.(c) to t.offsets.(c + 1) - 1 do
             let j = t.ids.(s) in
             if j <> excluding then begin
               incr cands;
               let d = dist_xy (Float.Array.get t.xs j) (Float.Array.get t.ys j) px py in
               if d > !best_d || (d = !best_d && j < !best_i) then begin
                 best_d := d;
                 best_i := j
               end
             end
           done)
         sorted
     with Exit -> ());
    Tel.add m_cells !scanned;
    Tel.add m_candidates !cands;
    if !best_i < 0 then None else Some (!best_i, !best_d)
  end

(* ---- fingerprints ---------------------------------------------------------- *)

let fingerprint ?(tag = "") ?(extra = [||]) pts =
  let buf = Buffer.create (16 + (16 * Array.length pts)) in
  Buffer.add_string buf tag;
  Buffer.add_char buf '\000';
  Buffer.add_string buf (string_of_int (Array.length pts));
  Array.iter
    (fun (p : Point.t) ->
      Buffer.add_int64_le buf (Int64.bits_of_float p.Point.x);
      Buffer.add_int64_le buf (Int64.bits_of_float p.Point.y))
    pts;
  Buffer.add_char buf '\001';
  Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)) extra;
  Digest.to_hex (Digest.string (Buffer.contents buf))
