(** Uniform-grid spatial index over planar placements.

    Every wireless constructor (disk, protocol, civilized, SINR) is
    geometrically local: a pair can only conflict when some pair of
    endpoints is within a known interaction radius.  The grid buckets
    points into square cells of that radius so candidate enumeration
    touches only the O(1) cells overlapping a query ball instead of all n
    points, turning the all-pairs O(n²) construction loops near-linear at
    constant density.

    Coordinates are stored in flat [floatarray]s ({!xs} / {!ys}); the
    distance kernels below operate on those directly (one multiply-add
    pipeline per candidate) rather than calling a per-pair closure.
    {!dist} evaluates the same float expression as {!Point.dist}, so
    predicates written against either are bitwise identical — the grid
    constructors reproduce the naive graphs exactly.

    Candidate queries ([iter_candidates], [iter_candidate_pairs]) prune at
    cell granularity only and therefore return a {e superset} of the true
    ball: callers re-apply their exact predicate (strict or non-strict,
    per-pair radii) on the candidates.  The exact queries
    ([neighbors_within], [pairs_within], [iter_annulus]) apply an
    inclusive [dist <= r] filter themselves.

    Telemetry: queries bump [geom.grid.cells_scanned] and
    [geom.grid.candidates] on the default registry. *)

type t

val create : ?cell:float -> Point.t array -> t
(** [create ~cell pts] buckets [pts] into square cells of width [cell] —
    pass the maximum interaction radius of the construction.  Cell width
    is grown automatically when the requested width would allocate far
    more cells than points (sparse domains), which only weakens pruning,
    never correctness.  Default cell: the bounding-box diagonal over
    [sqrt n] (a density heuristic for generic point sets).  Raises
    [Invalid_argument] on non-positive or non-finite [cell]. *)

val n : t -> int
val point : t -> int -> Point.t
val cell_size : t -> float
(** The actual (possibly grown) cell width. *)

val xs : t -> floatarray
val ys : t -> floatarray
(** The flat coordinate arrays, indexed by point id (not copies — treat as
    read-only). *)

val dist : t -> int -> int -> float
(** [dist t i j] from the flat arrays; bitwise equal to
    [Point.dist (point t i) (point t j)]. *)

val dist_to : t -> int -> Point.t -> float
(** Distance from point [i] to an arbitrary query point, same kernel. *)

val iter_candidates : t -> Point.t -> r:float -> (int -> unit) -> unit
(** All points in cells overlapping the axis-aligned bounding box of the
    [r]-ball around the query point — a superset of the ball, no distance
    filtering.  The caller applies its exact predicate. *)

val iter_candidate_pairs : t -> r:float -> (int -> int -> unit) -> unit
(** Candidate pairs [(u, v)], [u < v], from cell-bounding-box pruning at
    radius [r]; each true pair within distance [r] is emitted at least
    once, and no pair is emitted twice. *)

val neighbors_within : t -> int -> float -> int list
(** [neighbors_within t i r]: all [j <> i] with [dist t i j <= r],
    ascending. *)

val pairs_within : t -> float -> (int * int) list
(** All pairs [(u, v)], [u < v], with [dist t u v <= r], lexicographic. *)

val iter_annulus : t -> int -> r_lo:float -> r_hi:float -> (int -> unit) -> unit
(** All [j <> i] with [r_lo <= dist t i j <= r_hi], ascending; cells
    entirely inside the inner ball or outside the outer ball are skipped
    without touching their points. *)

val farthest_from : t -> ?excluding:int -> Point.t -> (int * float) option
(** Farthest indexed point from the query point (optionally ignoring index
    [excluding]), with its distance.  Grid-bucketed far-field pruning:
    cells are visited in decreasing order of an upper bound (distance to
    the farthest cell corner) and the scan stops as soon as the bound
    drops below the best point found, so typically only the few extremal
    cells are opened.  [None] when no eligible point exists.  Ties resolve
    to the lowest index, matching a naive [max] scan with strict [>]. *)

val fingerprint : ?tag:string -> ?extra:float array -> Point.t array -> string
(** Placement fingerprint: digest of the raw coordinate bytes, plus an
    optional caller tag (model name, parameters) and auxiliary float array
    (radii, delta, ...).  Two placements get equal fingerprints iff their
    coordinate (and extra) bit patterns agree — the cache key the engine
    uses to recognise a repeated geometric topology without serialising
    the derived conflict graph. *)
