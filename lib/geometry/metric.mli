(** Finite metric spaces over indexed nodes.

    The physical (SINR) model of Section 4.2 places nodes "in a metric
    space"; Theorem 13 distinguishes *fading* (bounded doubling dimension,
    e.g. the Euclidean plane) from *general* metrics.  A value of type [t]
    gives distances between the [size] nodes of an instance. *)

type t

val size : t -> int
(** Number of points. *)

val dist : t -> int -> int -> float
(** [dist m i j] — symmetric, non-negative, zero iff [i = j] for the
    constructors in this module. *)

val of_points : Point.t array -> t
(** Euclidean plane metric over explicit points (a fading metric). *)

val of_matrix : float array array -> t
(** Explicit distance matrix.  Raises [Invalid_argument] if the matrix is not
    square, symmetric (up to 1e-9), with zero diagonal and positive
    off-diagonal entries.  Triangle inequality is checked only by
    {!check_triangle}. *)

val points : t -> Point.t array option
(** Underlying points when the metric came from {!of_points}. *)

val check_triangle : t -> bool
(** Exhaustive triangle-inequality audit over all ordered triples — Θ(n³)
    distance evaluations, quadratic memory traffic on matrix metrics.  It
    is exported (any caller can reach it), but it is meant for validating
    hand-built matrices and for the test suite; no construction or solve
    path in this library calls it.  Do not put it on a per-instance hot
    path at scale — at n = 4000 it is ~6.4e10 comparisons. *)

val star_metric : int -> arm:float -> t
(** A general (non-fading) metric: [n] leaves at pairwise distance [2*arm],
    i.e. a star with arm length [arm].  Used to exercise the "general
    metrics" branch of Theorem 13. *)

val uniform_metric : int -> d:float -> t
(** All pairwise distances equal to [d] — the extreme non-fading case. *)
