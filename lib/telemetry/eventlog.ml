(* Append-only decision event log.

   Solver layers emit structured events (job accepted, LP solved, fault
   absorbed, retry, tier chosen, guarantee certified) into a global sink
   while a job is being served.  Events are deliberately timing-free: every
   field is a deterministic function of the job, so the rendered log is a
   reproducibility artifact, not a profile.

   Determinism across domain counts: a global sequence counter would
   capture the racy interleaving of domains, so events instead carry
   (job id, per-job emission index) — the job id comes from the ambient
   domain-local scope installed by [with_job] and the index from a per-scope
   counter, both independent of which domain ran the job.  [events]/[to_jsonl]
   sort by (job, index) (the fixed merge order) and assign the final
   monotonic sequence numbers at drain time, so two same-seed runs render
   byte-identical logs at any --domains value. *)

type field = Bool of bool | Int of int | Float of float | Str of string

type event = {
  job : int;
  index : int;  (** per-job emission order, 0-based *)
  kind : string;
  fields : (string * field) list;
}

type t = { lock : Mutex.t; mutable events : event list }

let m_logged = Metrics.counter "telemetry.events.logged"
let m_dropped = Metrics.counter "telemetry.events.dropped"

let create () = { lock = Mutex.create (); events = [] }

(* ------------------------------ global sink ------------------------------ *)

let sink : t option Atomic.t = Atomic.make None
let install s = Atomic.set sink s
let installed () = Atomic.get sink

(* ----------------------------- ambient scope ----------------------------- *)

type scope = { job : int; mutable next_index : int }

let scope_key : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_job job f =
  let r = Domain.DLS.get scope_key in
  let saved = !r in
  r := Some { job; next_index = 0 };
  Fun.protect ~finally:(fun () -> r := saved) f

let current_job () =
  match !(Domain.DLS.get scope_key) with
  | Some sc -> Some sc.job
  | None -> None

let emit kind fields =
  match Atomic.get sink with
  | None -> ()
  | Some t -> (
      match !(Domain.DLS.get scope_key) with
      | None ->
          (* no ambient job: the event has no deterministic merge position,
             so it is dropped (counted) rather than logged racily *)
          Metrics.incr m_dropped
      | Some sc ->
          let index = sc.next_index in
          sc.next_index <- index + 1;
          Mutex.lock t.lock;
          t.events <- { job = sc.job; index; kind; fields } :: t.events;
          Mutex.unlock t.lock;
          Metrics.incr m_logged)

(* -------------------------------- drains --------------------------------- *)

let events t =
  let evs = Mutex.protect t.lock (fun () -> t.events) in
  List.stable_sort
    (fun (a : event) (b : event) ->
      match compare a.job b.job with 0 -> compare a.index b.index | c -> c)
    evs

let clear t = Mutex.protect t.lock (fun () -> t.events <- [])

(* JSON rendering, self-contained so the log layer stays below Export in
   the module graph.  Floats use the shortest decimal that round-trips
   (byte-stability is the contract); non-finite floats become null. *)
let float_str v =
  if not (Float.is_finite v) then "null"
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_field b (key, v) =
  Buffer.add_string b ",\"";
  escape b key;
  Buffer.add_string b "\":";
  match v with
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int x -> Buffer.add_string b (string_of_int x)
  | Float x -> Buffer.add_string b (float_str x)
  | Str x ->
      Buffer.add_char b '"';
      escape b x;
      Buffer.add_char b '"'

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iteri
    (fun seq (ev : event) ->
      Buffer.add_string b
        (Printf.sprintf "{\"seq\":%d,\"job\":%d,\"kind\":\"" seq ev.job);
      escape b ev.kind;
      Buffer.add_char b '"';
      List.iter (add_field b) ev.fields;
      Buffer.add_string b "}\n")
    (events t);
  Buffer.contents b
