(* Hierarchical tracing spans.

   A span is one timed region (an LP solve, a rho estimation, an engine
   job) with a monotonic start timestamp (Sa_util.Timing.now, origin
   arbitrary), a process-unique id, the id of the enclosing span on the
   same domain (ambient parent, kept in domain-local storage so nesting is
   automatic and exact under Parallel.map_array sharding), and a list of
   string key/value attributes.

   Completed spans land in a global ring buffer — recent history only, old
   spans are overwritten — and their duration is also recorded in a
   histogram of the default metrics registry, so aggregate latency
   survives ring eviction. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  dur_s : float;
  domain : int;
  attrs : (string * string) list;
}

let default_capacity = 512

let initial_capacity =
  (* SA_TRACE_CAPACITY overrides the ring size at startup; unparsable or
     non-positive values are ignored (start-up must never fail on an env
     var), use set_capacity for a validating override. *)
  match Sys.getenv_opt "SA_TRACE_CAPACITY" with
  | None -> default_capacity
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some c when c >= 1 -> c
      | Some _ | None -> default_capacity)

let lock = Mutex.create ()
let buf : span option array ref = ref (Array.make initial_capacity None)
let next = ref 0
let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let capacity () = locked (fun () -> Array.length !buf)

let set_capacity c =
  if c < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  locked (fun () ->
      buf := Array.make c None;
      next := 0)

let record sp =
  if Atomic.get enabled then
    locked (fun () ->
        let b = !buf in
        b.(!next) <- Some sp;
        next := (!next + 1) mod Array.length b)

let recent () =
  locked (fun () ->
      let b = !buf in
      let cap = Array.length b in
      let out = ref [] in
      for i = 0 to cap - 1 do
        (* starting at [next] visits surviving spans oldest-first *)
        match b.((!next + i) mod cap) with
        | Some sp -> out := sp :: !out
        | None -> ()
      done;
      List.rev !out)

let clear () =
  locked (fun () ->
      Array.fill !buf 0 (Array.length !buf) None;
      next := 0)

(* ------------------------- ambient span context ------------------------- *)

(* The stack of open spans on the current domain.  A freshly spawned domain
   starts empty, so spans recorded from inside Parallel.map_array workers
   are roots of their own per-domain track (exactly what the Chrome trace
   exporter renders, one track per domain). *)
type open_span = {
  o_id : int;
  mutable o_attrs : (string * string) list;  (* reversed; reversed back on record *)
}

let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let next_id = Atomic.make 1

let current_span_id () =
  match !(Domain.DLS.get stack_key) with [] -> None | o :: _ -> Some o.o_id

let add_attr key value =
  match !(Domain.DLS.get stack_key) with
  | [] -> ()
  | o :: _ -> o.o_attrs <- (key, value) :: o.o_attrs

let with_span ?hist ?(attrs = []) name f =
  let stack = Domain.DLS.get stack_key in
  let parent = match !stack with [] -> None | o :: _ -> Some o.o_id in
  let id = Atomic.fetch_and_add next_id 1 in
  let o = { o_id = id; o_attrs = List.rev attrs } in
  stack := o :: !stack;
  let start_s = Sa_util.Timing.now () in
  Fun.protect
    ~finally:(fun () ->
      let dur_s = Sa_util.Timing.now () -. start_s in
      (stack := match !stack with _ :: tl -> tl | [] -> []);
      let h =
        match hist with
        | Some h -> h
        | None -> Metrics.histogram (name ^ ".seconds")
      in
      Metrics.observe h dur_s;
      record
        {
          id;
          parent;
          name;
          start_s;
          dur_s;
          domain = (Domain.self () :> int);
          attrs = List.rev o.o_attrs;
        })
    f
