(* Lightweight tracing spans.

   A span is one timed region (an LP solve, a rho estimation) with a
   monotonic start timestamp (Sa_util.Timing.now, origin arbitrary).
   Completed spans land in a fixed-capacity global ring buffer — recent
   history only, old spans are overwritten — and their duration is also
   recorded in a histogram of the default metrics registry, so aggregate
   latency survives ring eviction. *)

type span = { name : string; start_s : float; dur_s : float; domain : int }

let capacity = 512
let lock = Mutex.create ()
let buf : span option array = Array.make capacity None
let next = ref 0
let enabled = Atomic.make true

let set_enabled b = Atomic.set enabled b

let record sp =
  if Atomic.get enabled then begin
    Mutex.lock lock;
    buf.(!next) <- Some sp;
    next := (!next + 1) mod capacity;
    Mutex.unlock lock
  end

let recent () =
  Mutex.lock lock;
  let out = ref [] in
  for i = 0 to capacity - 1 do
    (* starting at [next] visits surviving spans oldest-first *)
    match buf.((!next + i) mod capacity) with
    | Some sp -> out := sp :: !out
    | None -> ()
  done;
  Mutex.unlock lock;
  List.rev !out

let clear () =
  Mutex.lock lock;
  Array.fill buf 0 capacity None;
  next := 0;
  Mutex.unlock lock

let with_span ?hist name f =
  let start_s = Sa_util.Timing.now () in
  Fun.protect
    ~finally:(fun () ->
      let dur_s = Sa_util.Timing.now () -. start_s in
      let h =
        match hist with
        | Some h -> h
        | None -> Metrics.histogram (name ^ ".seconds")
      in
      Metrics.observe h dur_s;
      record { name; start_s; dur_s; domain = (Domain.self () :> int) })
    f
