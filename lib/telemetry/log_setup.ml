(* Logs reporter for the binaries: human-readable lines on stderr (stdout
   stays machine-parseable), serialised across domains with a mutex. *)

let reporter_mutex = Mutex.create ()

let install ?(level = Some Logs.Warning) () =
  Logs.set_reporter_mutex
    ~lock:(fun () -> Mutex.lock reporter_mutex)
    ~unlock:(fun () -> Mutex.unlock reporter_mutex);
  Logs.set_level ~all:true level;
  Logs.set_reporter
    (Logs_fmt.reporter ~app:Format.err_formatter ~dst:Format.err_formatter ())
