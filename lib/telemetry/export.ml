(* Snapshot exporters: JSON (with a matching minimal parser, so snapshots
   round-trip without external deps) and Prometheus text format.

   JSON layout — one metric per line, names sorted, so counter blocks of
   two runs can be diffed textually:

   {
     "version": 1,
     "counters": {
       "engine.jobs": 19,
       ...
     },
     "gauges": { ... },
     "histograms": {
       "lp.revised.solve.seconds": {"le": [...], "counts": [...],
                                    "sum": 0.012, "count": 19},
       ...
     },
     "spans": [
       {"id": 7, "parent": 3, "name": "lp.revised.solve", "start_s": 12.3,
        "dur_s": 0.001, "domain": 0, "attrs": {"pivots": "41"}},
       ...
     ]
   }

   Version history: 1 = flat anonymous spans; 2 = spans gained
   id/parent/attrs (PR 7). *)

let version = 2

(* ------------------------------ float text ------------------------------ *)

(* Shortest decimal that round-trips; non-finite values become null (JSON
   has no nan/inf) and parse back as nan. *)
let float_str v =
  if not (Float.is_finite v) then "null"
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* -------------------------------- writer -------------------------------- *)

let add_kv_block b ~label ~last items emit =
  Buffer.add_string b (Printf.sprintf "  \"%s\": {\n" label);
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b "    \"";
      escape b name;
      Buffer.add_string b "\": ";
      emit b v;
      if i < List.length items - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    items;
  Buffer.add_string b (if last then "  }\n" else "  },\n")

let add_float_array b arr =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (float_str v))
    arr;
  Buffer.add_char b ']'

let add_int_array b arr =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (string_of_int v))
    arr;
  Buffer.add_char b ']'

let add_hist b (h : Metrics.hist_view) =
  Buffer.add_string b "{\"le\": ";
  add_float_array b h.Metrics.le;
  Buffer.add_string b ", \"counts\": ";
  add_int_array b h.Metrics.counts;
  Buffer.add_string b (Printf.sprintf ", \"sum\": %s" (float_str h.Metrics.sum));
  Buffer.add_string b (Printf.sprintf ", \"count\": %d}" h.Metrics.count)

let add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\": \"";
      escape b v;
      Buffer.add_char b '"')
    attrs;
  Buffer.add_char b '}'

let add_span b (sp : Trace.span) =
  Buffer.add_string b
    (Printf.sprintf "    {\"id\": %d, \"parent\": %s, \"name\": \"" sp.Trace.id
       (match sp.Trace.parent with None -> "null" | Some p -> string_of_int p));
  escape b sp.Trace.name;
  Buffer.add_string b
    (Printf.sprintf "\", \"start_s\": %s, \"dur_s\": %s, \"domain\": %d, \"attrs\": "
       (float_str sp.Trace.start_s) (float_str sp.Trace.dur_s) sp.Trace.domain);
  add_attrs b sp.Trace.attrs;
  Buffer.add_char b '}'

let snapshot_to_json ?(spans = []) (v : Metrics.view) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"version\": %d,\n" version);
  add_kv_block b ~label:"counters" ~last:false v.Metrics.counters (fun b n ->
      Buffer.add_string b (string_of_int n));
  add_kv_block b ~label:"gauges" ~last:false v.Metrics.gauges (fun b x ->
      Buffer.add_string b (float_str x));
  add_kv_block b ~label:"histograms" ~last:false v.Metrics.histograms add_hist;
  Buffer.add_string b "  \"spans\": [\n";
  List.iteri
    (fun i sp ->
      add_span b sp;
      if i < List.length spans - 1 then Buffer.add_char b ',';
      Buffer.add_char b '\n')
    spans;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let counters_to_json counters =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b name;
      Buffer.add_string b (Printf.sprintf "\":%d" n))
    counters;
  Buffer.add_char b '}';
  Buffer.contents b

(* -------------------------------- parser -------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then
      parse_error "expected %c at offset %d" c !pos;
    advance ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_error "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then parse_error "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then parse_error "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> parse_error "bad \\u escape"
              in
              (* ASCII only — snapshot strings are metric names *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              pos := !pos + 4
          | c -> parse_error "bad escape \\%c" c);
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> parse_error "bad number at offset %d" start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> parse_error "expected , or } at offset %d" !pos
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> parse_error "expected , or ] at offset %d" !pos
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing garbage at offset %d" !pos;
  v

let num = function
  | Num v -> v
  | Null -> Float.nan (* non-finite floats are serialized as null *)
  | _ -> parse_error "expected number"

let as_int j =
  let v = num j in
  if Float.is_integer v then int_of_float v else parse_error "expected integer"

let obj_field fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> parse_error "missing field %s" name

let snapshot_of_json text : Metrics.view * Trace.span list =
  let fields =
    match parse_json text with
    | Obj fields -> fields
    | _ -> parse_error "snapshot must be a JSON object"
  in
  (match obj_field fields "version" with
  | Num v when int_of_float v = version -> ()
  | _ -> parse_error "unsupported snapshot version");
  let kv label of_json =
    match obj_field fields label with
    | Obj entries -> List.map (fun (name, v) -> (name, of_json v)) entries
    | _ -> parse_error "%s must be an object" label
  in
  let hist = function
    | Obj h ->
        let floats = function
          | Arr items -> Array.of_list (List.map num items)
          | _ -> parse_error "le must be an array"
        in
        let ints = function
          | Arr items -> Array.of_list (List.map as_int items)
          | _ -> parse_error "counts must be an array"
        in
        {
          Metrics.le = floats (obj_field h "le");
          counts = ints (obj_field h "counts");
          sum = num (obj_field h "sum");
          count = as_int (obj_field h "count");
        }
    | _ -> parse_error "histogram must be an object"
  in
  let spans =
    match obj_field fields "spans" with
    | Arr items ->
        List.map
          (function
            | Obj sp ->
                {
                  Trace.id = as_int (obj_field sp "id");
                  parent =
                    (match obj_field sp "parent" with
                    | Null -> None
                    | j -> Some (as_int j));
                  name =
                    (match obj_field sp "name" with
                    | Str s -> s
                    | _ -> parse_error "span name must be a string");
                  start_s = num (obj_field sp "start_s");
                  dur_s = num (obj_field sp "dur_s");
                  domain = as_int (obj_field sp "domain");
                  attrs =
                    (match obj_field sp "attrs" with
                    | Obj kvs ->
                        List.map
                          (fun (k, v) ->
                            match v with
                            | Str s -> (k, s)
                            | _ -> parse_error "span attr must be a string")
                          kvs
                    | _ -> parse_error "span attrs must be an object");
                }
            | _ -> parse_error "span must be an object")
          items
    | _ -> parse_error "spans must be an array"
  in
  ( {
      Metrics.counters = kv "counters" as_int;
      gauges = kv "gauges" num;
      histograms = kv "histograms" hist;
    },
    spans )

(* ------------------------------ prometheus ------------------------------ *)

let prom_name prefix name =
  prefix ^ String.map (fun c -> if c = '.' then '_' else c) name

(* HELP text is newline-terminated; Prometheus escapes are \\ and \n. *)
let add_help b nm name =
  match Metrics.help name with
  | None -> ()
  | Some d ->
      Buffer.add_string b (Printf.sprintf "# HELP %s " nm);
      String.iter
        (function
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | c -> Buffer.add_char b c)
        d;
      Buffer.add_char b '\n'

let to_prometheus ?(prefix = "specauction_") (v : Metrics.view) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, n) ->
      let nm = prom_name prefix name in
      add_help b nm name;
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" nm nm n))
    v.Metrics.counters;
  List.iter
    (fun (name, x) ->
      let nm = prom_name prefix name in
      add_help b nm name;
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s gauge\n%s %s\n" nm nm (float_str x)))
    v.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let nm = prom_name prefix name in
      add_help b nm name;
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" nm);
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          let le =
            if i < Array.length h.Metrics.le then float_str h.Metrics.le.(i)
            else "+Inf"
          in
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" nm le !cum))
        h.Metrics.counts;
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n%s_count %d\n" nm
           (float_str h.Metrics.sum)
           nm h.Metrics.count))
    v.Metrics.histograms;
  Buffer.contents b

(* ----------------------------- chrome trace ------------------------------ *)

(* Chrome Trace Event format, JSON Object variant: {"traceEvents": [...]}.
   Each span becomes one complete ("ph":"X") event; ts/dur are microseconds
   (Trace timestamps are seconds).  tid is the recording domain, so Perfetto
   renders one track per domain; a metadata event names each track.  Span
   ids and parent ids ride along in args, next to the span's attributes
   (attr keys that would collide with ours are prefixed). *)

let span_domains spans =
  List.sort_uniq compare (List.map (fun sp -> sp.Trace.domain) spans)

let add_chrome_event b first sp =
  if not first then Buffer.add_string b ",\n";
  Buffer.add_string b "    {\"name\": \"";
  escape b sp.Trace.name;
  Buffer.add_string b
    (Printf.sprintf
       "\", \"ph\": \"X\", \"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": %d, \
        \"args\": {"
       (float_str (sp.Trace.start_s *. 1e6))
       (float_str (sp.Trace.dur_s *. 1e6))
       sp.Trace.domain);
  Buffer.add_string b (Printf.sprintf "\"span_id\": %d" sp.Trace.id);
  (match sp.Trace.parent with
  | None -> ()
  | Some p -> Buffer.add_string b (Printf.sprintf ", \"parent_span_id\": %d" p));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ", \"";
      escape b
        (if k = "span_id" || k = "parent_span_id" then "attr." ^ k else k);
      Buffer.add_string b "\": \"";
      escape b v;
      Buffer.add_char b '"')
    sp.Trace.attrs;
  Buffer.add_string b "}}"

let spans_to_chrome spans =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  let first = ref true in
  List.iter
    (fun d ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
            \"tid\": %d, \"args\": {\"name\": \"domain %d\"}}"
           d d))
    (span_domains spans);
  List.iter
    (fun sp ->
      add_chrome_event b !first sp;
      first := false)
    spans;
  Buffer.add_string b "\n  ]}\n";
  Buffer.contents b

let validate_chrome text =
  let events =
    match parse_json text with
    | Obj fields -> (
        match obj_field fields "traceEvents" with
        | Arr items -> items
        | _ -> parse_error "traceEvents must be an array")
    | _ -> parse_error "chrome trace must be a JSON object"
  in
  let str fields k =
    match obj_field fields k with
    | Str s -> s
    | _ -> parse_error "%s must be a string" k
  in
  let count = ref 0 in
  List.iter
    (function
      | Obj ev -> (
          ignore (str ev "name");
          ignore (as_int (obj_field ev "pid"));
          ignore (as_int (obj_field ev "tid"));
          match str ev "ph" with
          | "M" -> ()
          | "X" ->
              let ts = num (obj_field ev "ts") in
              let dur = num (obj_field ev "dur") in
              if not (Float.is_finite ts && Float.is_finite dur) then
                parse_error "non-finite ts/dur";
              if dur < 0.0 then parse_error "negative dur";
              (match obj_field ev "args" with
              | Obj args ->
                  ignore (as_int (obj_field args "span_id"));
                  List.iter
                    (fun (_, v) ->
                      match v with
                      | Str _ | Num _ -> ()
                      | _ -> parse_error "args values must be scalars")
                    args
              | _ -> parse_error "args must be an object");
              incr count
          | ph -> parse_error "unsupported event phase %s" ph)
      | _ -> parse_error "trace event must be an object")
    events;
  !count
