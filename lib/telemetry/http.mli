(** Dependency-free blocking HTTP/1.0 server for telemetry scraping.

    A single accept-loop domain answers GET requests one connection at a
    time ([Connection: close]) — a scrape endpoint for Prometheus and
    debugging, not a general web server.  The handler runs on the server
    domain, so anything it touches must be domain-safe ({!Metrics} is;
    publish mutable state through [Atomic] references). *)

type response = { status : int; content_type : string; body : string }

type t
(** A running server. *)

val start : ?host:string -> port:int -> (string -> response) -> t
(** [start ~port handler] binds [host] (default ["127.0.0.1"]) on [port]
    ([0] picks an ephemeral port — read it back with {!port}) and serves
    requests on a spawned domain.  The handler receives the request path
    with any query string stripped; exceptions it raises become 500
    responses.  @raise Unix.Unix_error if the bind fails. *)

val port : t -> int
(** The bound port (useful with [~port:0]). *)

val wait : t -> unit
(** Block until the server domain exits (i.e. until {!stop}).  Used by
    [auction serve --listen] to keep the process alive after the batch. *)

val stop : t -> unit
(** Close the listener and join the server domain.  Call at most once;
    do not combine with a concurrent {!wait}. *)

val get : ?host:string -> port:int -> string -> int * string
(** Minimal blocking HTTP/1.0 GET client: returns (status code, body).
    Used by tests and [auction get] so smoke scripts need no [curl]. *)
