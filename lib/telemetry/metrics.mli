(** Domain-safe metrics registry: counters, gauges and histograms backed by
    [Atomic], exact under {!Sa_core.Parallel.map_array} sharding.

    Metric names use the scheme [<library>.<component>.<quantity>], lower
    case, [a-z0-9._] only (e.g. ["lp.revised.pivots"]).  Registration is
    idempotent: requesting a name that already exists returns the existing
    metric; requesting it with a different kind (or different histogram
    buckets) raises [Invalid_argument].  Updates are lock-free; snapshots
    are a per-metric-atomic (not globally consistent) cut. *)

type t
(** A registry.  Most code uses {!default}; tests create private ones. *)

val create : unit -> t

val default : t
(** The process-wide registry.  All well-known metrics (see DESIGN.md
    "Observability") are pre-registered here at module initialisation, so
    snapshots always carry the full schema. *)

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : ?registry:t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0]. *)

val counter_name : counter -> string
val counter_value : counter -> int

(** {1 Gauges} — instantaneous float values. *)

type gauge

val gauge : ?registry:t -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_name : gauge -> string
val gauge_value : gauge -> float

(** {1 Histograms} — bucketed observations (durations in seconds by
    default). *)

type histogram

val default_time_buckets : float array
(** [1e-5 .. 10] seconds, decade spacing. *)

val histogram : ?registry:t -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; an implicit [+inf]
    bucket is appended.  Defaults to {!default_time_buckets}. *)

val observe : histogram -> float -> unit
val histogram_name : histogram -> string
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Snapshots} *)

type hist_view = { le : float array; counts : int array; sum : float; count : int }

type view = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

val snapshot : ?registry:t -> unit -> view

val find_counter : view -> string -> int option
val find_gauge : view -> string -> float option
val find_histogram : view -> string -> hist_view option

val reset : ?registry:t -> unit -> unit
(** Zero every metric (registrations are kept).  Intended for benches and
    tests that attribute counts to a phase. *)

(** {1 Well-known schema}

    Names pre-registered in {!default} at module initialisation, so empty
    snapshots still carry them.  {!help} returns the one-line description
    the Prometheus exporter renders as a [# HELP] line. *)

val well_known_counters : string list
val well_known_gauges : string list
val well_known_histograms : string list

val help : string -> string option
(** Description of a well-known metric; [None] for ad-hoc names. *)
