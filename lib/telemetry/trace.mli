(** Hierarchical tracing spans with monotonic timestamps.

    A span records one timed region: a process-unique [id], the [id] of
    the enclosing span on the same domain ([parent], derived from a
    domain-local ambient stack, so {!with_span} calls nest automatically —
    including under {!Sa_core.Parallel.map_array}, where each spawned
    domain starts a fresh track), and string key/value [attrs].

    Completed spans are kept in a global ring buffer (most recent
    {!capacity} spans) and their durations feed a histogram in
    {!Metrics.default}, so aggregate latency is never lost to ring
    eviction.  Timestamps come from {!Sa_util.Timing.now} — monotonic,
    arbitrary origin, comparable only within a process. *)

type span = {
  id : int;  (** process-unique, > 0; allocation order, not start order *)
  parent : int option;
      (** id of the enclosing span {e on the same domain}; [None] for
          roots (including the first span of a spawned domain) *)
  name : string;
  start_s : float;  (** monotonic start, seconds *)
  dur_s : float;  (** duration, seconds *)
  domain : int;  (** domain that ran the region *)
  attrs : (string * string) list;
      (** key/value attributes, in the order they were attached *)
}

val capacity : unit -> int
(** Current ring capacity.  Defaults to 512; overridable at startup with
    the [SA_TRACE_CAPACITY] environment variable (values that do not
    parse to an int >= 1 are ignored) or at runtime with
    {!set_capacity}. *)

val set_capacity : int -> unit
(** Resize the ring.  Discards all currently buffered spans.
    @raise Invalid_argument if the capacity is < 1. *)

val with_span :
  ?hist:Metrics.histogram ->
  ?attrs:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] times [f ()], records a span named [name] (also on
    exception), and observes the duration in [hist] (default: histogram
    [name ^ ".seconds"] in {!Metrics.default}).  Pass a pre-created [hist]
    on hot paths to skip the registry lookup.  While [f] runs, the span is
    the ambient parent on this domain: nested [with_span] calls record it
    as their [parent], and {!add_attr} appends to its [attrs]. *)

val add_attr : string -> string -> unit
(** [add_attr key value] appends an attribute to the innermost open span
    of the calling domain (after any [?attrs] passed to {!with_span}).
    No-op when no span is open. *)

val current_span_id : unit -> int option
(** Id of the innermost open span on the calling domain, if any. *)

val recent : unit -> span list
(** Surviving spans, in recording (completion) order.  The ring evicts
    strictly oldest-recorded-first: once more than {!capacity} spans have
    been recorded, each new span overwrites the oldest surviving one, so
    [recent] always returns the last [min total capacity] spans recorded,
    oldest first.  Note that under wraparound a child span can survive its
    evicted parent (children complete, and are therefore recorded, before
    their parents): consumers must treat a dangling [parent] id as "parent
    evicted", not as corruption. *)

val clear : unit -> unit

val set_enabled : bool -> unit
(** Disable/enable ring recording (histograms still update).  On by
    default. *)
