(** Lightweight tracing spans with monotonic timestamps.

    Spans are kept in a global fixed-capacity ring buffer (most recent
    {!capacity} spans) and their durations feed a histogram in
    {!Metrics.default}, so aggregate latency is never lost to ring
    eviction.  Timestamps come from {!Sa_util.Timing.now} — monotonic,
    arbitrary origin, comparable only within a process. *)

type span = {
  name : string;
  start_s : float;  (** monotonic start, seconds *)
  dur_s : float;  (** duration, seconds *)
  domain : int;  (** domain that ran the region *)
}

val capacity : int

val with_span : ?hist:Metrics.histogram -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()], records a span named [name] (also on
    exception), and observes the duration in [hist] (default: histogram
    [name ^ ".seconds"] in {!Metrics.default}).  Pass a pre-created [hist]
    on hot paths to skip the registry lookup. *)

val recent : unit -> span list
(** Surviving spans, oldest first. *)

val clear : unit -> unit

val set_enabled : bool -> unit
(** Disable/enable ring recording (histograms still update).  On by
    default. *)
