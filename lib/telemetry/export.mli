(** Snapshot exporters: JSON (with a matching parser — snapshots
    round-trip with no external deps) and Prometheus text format. *)

val version : int
(** Snapshot format version, embedded in the JSON. *)

val snapshot_to_json : ?spans:Trace.span list -> Metrics.view -> string
(** Pretty JSON, one metric per line, names sorted — the counter block of
    two snapshots can be diffed textually.  Non-finite floats are written
    as [null] and parse back as [nan]. *)

val counters_to_json : (string * int) list -> string
(** One-line JSON object for a counter list (e.g. per-phase deltas in
    bench output). *)

val snapshot_of_json : string -> Metrics.view * Trace.span list
(** Inverse of {!snapshot_to_json}.  @raise Parse_error on malformed
    input. *)

exception Parse_error of string

val to_prometheus : ?prefix:string -> Metrics.view -> string
(** Prometheus text exposition (counters, gauges, histograms with
    cumulative buckets).  Metric names have ['.'] mapped to ['_'] and are
    prefixed with [prefix] (default ["specauction_"]). *)
