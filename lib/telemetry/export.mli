(** Snapshot exporters: JSON (with a matching parser — snapshots
    round-trip with no external deps), Chrome Trace Event JSON for span
    timelines, and Prometheus text format. *)

val version : int
(** Snapshot format version, embedded in the JSON.  2 since spans gained
    id/parent/attrs. *)

val float_str : float -> string
(** Shortest decimal that round-trips through [float_of_string];
    non-finite values render as ["null"]. *)

val snapshot_to_json : ?spans:Trace.span list -> Metrics.view -> string
(** Pretty JSON, one metric per line, names sorted — the counter block of
    two snapshots can be diffed textually.  Non-finite floats are written
    as [null] and parse back as [nan]. *)

val counters_to_json : (string * int) list -> string
(** One-line JSON object for a counter list (e.g. per-phase deltas in
    bench output). *)

val snapshot_of_json : string -> Metrics.view * Trace.span list
(** Inverse of {!snapshot_to_json}.  @raise Parse_error on malformed
    input. *)

exception Parse_error of string

(** {1 Generic JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> json
(** Minimal JSON parser (ASCII strings; [\u] escapes above 127 become
    ['?']).  @raise Parse_error on malformed input. *)

(** {1 Chrome Trace Event format} *)

val spans_to_chrome : Trace.span list -> string
(** Render spans as Chrome Trace Event JSON (the object form,
    [{"traceEvents": [...]}]), loadable in Perfetto / chrome://tracing.
    Each span becomes a complete ([ph:"X"]) event with microsecond
    [ts]/[dur]; [tid] is the recording domain (one track per domain, named
    by metadata events); span id, parent id and attributes ride in
    [args]. *)

val validate_chrome : string -> int
(** Schema-check a Chrome trace produced by {!spans_to_chrome} and return
    the number of complete (non-metadata) events.  @raise Parse_error if
    the text is not valid JSON or violates the event schema. *)

(** {1 Prometheus} *)

val to_prometheus : ?prefix:string -> Metrics.view -> string
(** Prometheus text exposition (counters, gauges, histograms with
    cumulative buckets).  Metric names have ['.'] mapped to ['_'] and are
    prefixed with [prefix] (default ["specauction_"]); well-known metrics
    get a [# HELP] line from {!Metrics.help}. *)
