(** Append-only decision event log (JSONL).

    Solver layers record {e decisions} — job accepted, LP solved, fault
    absorbed, retry scheduled, tier chosen, guarantee certified — as
    structured events.  Events are timing-free by design: every field must
    be a deterministic function of the job, so the rendered log is a
    reproducibility artifact.

    Events are only captured while a sink is {!install}ed {e and} an
    ambient job scope ({!with_job}) is active on the emitting domain.
    Each event carries the ambient job id and a per-job emission index;
    {!to_jsonl} merges events in the fixed order (job id, index) and
    assigns monotonic [seq] numbers positionally, so same-seed logs are
    byte-identical at any [--domains] value (jobs never migrate domains
    under {!Sa_core.Parallel.map_array}).  Events emitted with no ambient
    job are dropped and counted in [telemetry.events.dropped]. *)

type field = Bool of bool | Int of int | Float of float | Str of string

type event = {
  job : int;
  index : int;  (** per-job emission order, 0-based *)
  kind : string;
  fields : (string * field) list;
}

type t
(** A mutable, thread-safe event collection. *)

val create : unit -> t

val install : t option -> unit
(** Set (or with [None], clear) the global sink that {!emit} appends to. *)

val installed : unit -> t option

val with_job : int -> (unit -> 'a) -> 'a
(** [with_job id f] runs [f] with [id] as the ambient job on this domain;
    restores the previous scope afterwards (also on exception). *)

val current_job : unit -> int option

val emit : string -> (string * field) list -> unit
(** [emit kind fields] appends an event for the ambient job.  No-op when
    no sink is installed; counted as dropped when a sink is installed but
    no job scope is active. *)

val events : t -> event list
(** All captured events in the canonical merge order: ascending (job id,
    emission index). *)

val to_jsonl : t -> string
(** Render {!events} as JSON Lines.  Each line is an object
    [{"seq":N,"job":J,"kind":"...",...fields}] with [seq] assigned
    positionally from the canonical order; floats use shortest
    round-trip rendering (non-finite floats become [null]). *)

val clear : t -> unit
