(* Domain-safe metrics registry.

   Counters and histograms are backed by [Atomic] so concurrent updates
   from domains sharded by [Sa_core.Parallel.map_array] are exact: no
   update is lost and counter totals are independent of the domain count
   and interleaving.  Gauges use a CAS loop for read-modify-write.

   Registration (name -> metric) is mutex-protected and idempotent:
   requesting an existing name returns the existing metric, so modules can
   declare their handles at toplevel without coordination.  Updates never
   take the registry lock. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  bounds : float array; (* upper bucket bounds, strictly increasing *)
  buckets : int Atomic.t array; (* length = Array.length bounds + 1 (+inf) *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { lock : Mutex.t; table : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 64 }
let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let valid_name name =
  name <> ""
  && String.for_all
       (fun ch ->
         (ch >= 'a' && ch <= 'z')
         || (ch >= '0' && ch <= '9')
         || ch = '.' || ch = '_')
       name

let intern registry name make view =
  if not (valid_name name) then
    invalid_arg ("Metrics: bad metric name (want [a-z0-9._]+): " ^ name);
  locked registry (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some m -> view m
      | None ->
          let m = make () in
          Hashtbl.add registry.table name m;
          view m)

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered with a different kind" name)

(* ------------------------------- counters ------------------------------- *)

let counter ?(registry = default) name =
  intern registry name
    (fun () -> Counter { c_name = name; c_value = Atomic.make 0 })
    (function Counter c -> c | Gauge _ | Histogram _ -> kind_error name)

let incr c = ignore (Atomic.fetch_and_add c.c_value 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic (n >= 0)";
  ignore (Atomic.fetch_and_add c.c_value n)

let counter_name c = c.c_name
let counter_value c = Atomic.get c.c_value

(* -------------------------------- gauges -------------------------------- *)

let gauge ?(registry = default) name =
  intern registry name
    (fun () -> Gauge { g_name = name; g_value = Atomic.make 0.0 })
    (function Gauge g -> g | Counter _ | Histogram _ -> kind_error name)

let set_gauge g v = Atomic.set g.g_value v

let rec add_gauge g d =
  let cur = Atomic.get g.g_value in
  (* CAS compares the box we just read, so a lost race simply retries *)
  if not (Atomic.compare_and_set g.g_value cur (cur +. d)) then add_gauge g d

let gauge_name g = g.g_name
let gauge_value g = Atomic.get g.g_value

(* ------------------------------ histograms ------------------------------ *)

let default_time_buckets = [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let histogram ?(registry = default) ?buckets name =
  let bounds = match buckets with None -> default_time_buckets | Some b -> b in
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done;
  intern registry name
    (fun () ->
      Histogram
        {
          h_name = name;
          bounds = Array.copy bounds;
          buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.0;
          h_count = Atomic.make 0;
        })
    (function
      | Histogram h ->
          (match buckets with
          | Some b when b <> h.bounds -> kind_error name
          | Some _ | None -> ());
          h
      | Counter _ | Gauge _ -> kind_error name)

let rec atomic_float_add a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_float_add a d

let observe h v =
  let nb = Array.length h.bounds in
  let i = ref 0 in
  while !i < nb && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  ignore (Atomic.fetch_and_add h.buckets.(!i) 1);
  atomic_float_add h.h_sum v;
  ignore (Atomic.fetch_and_add h.h_count 1)

let histogram_name h = h.h_name
let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Atomic.get h.h_sum

(* -------------------------------- views --------------------------------- *)

type hist_view = { le : float array; counts : int array; sum : float; count : int }

type view = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

let snapshot ?(registry = default) () =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  locked registry (fun () ->
      Hashtbl.iter
        (fun name -> function
          | Counter c -> cs := (name, Atomic.get c.c_value) :: !cs
          | Gauge g -> gs := (name, Atomic.get g.g_value) :: !gs
          | Histogram h ->
              hs :=
                ( name,
                  {
                    le = Array.copy h.bounds;
                    counts = Array.map Atomic.get h.buckets;
                    sum = Atomic.get h.h_sum;
                    count = Atomic.get h.h_count;
                  } )
                :: !hs)
        registry.table);
  let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  { counters = sort !cs; gauges = sort !gs; histograms = sort !hs }

let find_counter view name = List.assoc_opt name view.counters
let find_gauge view name = List.assoc_opt name view.gauges
let find_histogram view name = List.assoc_opt name view.histograms

let reset ?(registry = default) () =
  locked registry (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.h_sum 0.0;
              Atomic.set h.h_count 0)
        registry.table)

(* --------------------------- well-known names --------------------------- *)

(* Pre-registered so every snapshot carries the full schema (a counter an
   execution never touched still appears, as 0) regardless of which
   instrumented modules the linker kept.  The naming scheme is
   <library>.<component>.<quantity>; see DESIGN.md "Observability". *)

(* Each well-known name pairs with a one-line description; the Prometheus
   exporter renders these as # HELP lines.  Keep descriptions on one line
   (Prometheus HELP is newline-terminated). *)

let counter_descriptions =
  [
    ("lp.simplex.solves", "Dense tableau simplex solves completed");
    ("lp.simplex.pivots", "Dense tableau simplex pivot steps");
    ("lp.revised.solves", "Revised (eta-file) simplex solves completed");
    ("lp.revised.pivots", "Revised simplex pivot steps");
    ("lp.revised.warm_attempts", "Warm-start basis installations attempted");
    ("lp.revised.warm_installs", "Warm-start basis installations that succeeded");
    ( "lp.revised.warm_rollbacks",
      "Warm-start installations rolled back to a cold start" );
    ("lp.presolve.rows_removed", "Rows removed by LP presolve reductions");
    ("lp.presolve.cols_removed", "Columns fixed at zero by LP presolve");
    ( "lp.presolve.duplicates",
      "Duplicate rows found by the presolve hashing pass" );
    ( "lp.presolve.scaling_passes",
      "Presolve equilibration sweeps that changed a scaling factor" );
    ("core.colgen.solves", "Column-generation master problems solved");
    ("core.colgen.rounds", "Column-generation pricing rounds");
    ("core.colgen.oracle_calls", "Demand-oracle invocations during pricing");
    ("core.colgen.columns", "Columns added to the restricted master");
    ( "core.colgen.price_recomputes",
      "Incremental-pricing dirty recomputations of a bidder price" );
    ("core.colgen.pool.hits", "Cross-job column pool lookups that found columns");
    ("core.colgen.pool.misses", "Cross-job column pool lookups that found nothing");
    ( "core.colgen.pool.seeded_columns",
      "Pooled columns accepted into a restricted master after re-verification" );
    ("core.rounding.trials", "Randomized rounding trials evaluated");
    ("core.rounding.improvements", "Rounding trials that improved the incumbent");
    ("core.derand.candidates", "Conditional-expectation candidates scored");
    ("graph.rho.estimates", "Inductive-independence rho estimations");
    ("geom.grid.cells_scanned", "Spatial-grid cells visited by queries");
    ("geom.grid.candidates", "Spatial-grid candidate points produced");
    ( "wireless.construction.edges_kept",
      "Conflict edges kept by exact predicates after grid filtering" );
    ( "wireless.construction.edges_dropped",
      "Grid candidate edges rejected by exact predicates" );
    ("engine.jobs", "Jobs completed by the batch engine");
    ("engine.warm_used", "Jobs solved using a cached warm-start basis");
    ("engine.topology.hits", "Topology cache hits");
    ("engine.topology.misses", "Topology cache misses");
    ("engine.basis.lookups", "Warm-start basis cache lookups");
    ("engine.basis.hits", "Warm-start basis cache hits");
    ("engine.job.retries", "Job attempts re-run after an absorbed failure");
    ("engine.job.failed", "Jobs that exhausted every tier and failed");
    ("engine.fallback.greedy", "Jobs degraded to the greedy fallback tier");
    ("engine.fallback.online", "Jobs degraded to the online first-fit tier");
    ("engine.deadline_exceeded", "Job attempts aborted by the per-job deadline");
    ("engine.faults.injected", "Faults injected by the deterministic harness");
    (* Scheduler occupancy of the persistent domain pool.  Batch/item
       totals depend on how many call sites went parallel (a --domains 1
       run bypasses the pool) and chunk/steal counts on timing, so these
       are excluded from cross-domain-count determinism comparisons. *)
    ("engine.pool.batches", "Batches submitted to the persistent domain pool");
    ("engine.pool.items", "Items scheduled through the domain pool");
    ("engine.pool.chunks", "Chunks claimed from pool batch cursors");
    ("engine.pool.steals", "Chunk halves stolen from busy pool participants");
    ("engine.pool.workers_spawned", "Worker domains spawned by the pool");
    ("telemetry.events.logged", "Decision events appended to the event log");
    ( "telemetry.events.dropped",
      "Decision events dropped for lack of an ambient job scope" );
    ("telemetry.http.requests", "HTTP requests served by the telemetry endpoint");
    ( "telemetry.http.read_errors",
      "Unexpected socket errors while reading an HTTP request head" );
  ]

let gauge_descriptions =
  [
    ("engine.topology.entries", "Topology cache population");
    ("engine.basis.entries", "Warm-start basis cache population");
    ("engine.pool.workers", "Worker domains currently parked in the pool");
  ]

let histogram_descriptions =
  [
    ("lp.revised.solve.seconds", "Wall time of revised simplex solves");
    ("core.colgen.solve.seconds", "Wall time of column-generation solves");
    ("graph.rho.seconds", "Wall time of rho estimations");
    ("engine.job.lp.seconds", "Wall time of the LP phase per job");
    ("engine.job.round.seconds", "Wall time of the rounding phase per job");
    ("engine.job.seconds", "End-to-end wall time per engine job");
    ( "engine.attempt.seconds",
      "Wall time per job attempt across the retry/fallback chain" );
  ]

let well_known_counters = List.map fst counter_descriptions
let well_known_gauges = List.map fst gauge_descriptions
let well_known_histograms = List.map fst histogram_descriptions

let help name =
  match List.assoc_opt name counter_descriptions with
  | Some _ as d -> d
  | None -> (
      match List.assoc_opt name gauge_descriptions with
      | Some _ as d -> d
      | None -> List.assoc_opt name histogram_descriptions)

let () =
  List.iter (fun n -> ignore (counter n)) well_known_counters;
  List.iter (fun n -> ignore (gauge n)) well_known_gauges;
  List.iter (fun n -> ignore (histogram n)) well_known_histograms
