(* Dependency-free blocking HTTP/1.0 server for telemetry scraping.

   One accept-loop domain, one request per connection (Connection: close),
   GET only.  This is a scrape endpoint for Prometheus/debugging, not a
   general web server: requests are answered in arrival order by a single
   handler call, and slow handlers block later scrapers — which is fine at
   scrape rates.  The handler runs on the server domain; anything it reads
   must be domain-safe (Metrics is; callers publish job tables through an
   Atomic ref). *)

type response = { status : int; content_type : string; body : string }

type t = {
  sock : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  domain : unit Domain.t;
}

let m_requests = Metrics.counter "telemetry.http.requests"
let m_read_errors = Metrics.counter "telemetry.http.read_errors"

(* One read from the request socket.  EINTR retries; ECONNRESET/EAGAIN are
   ordinary peer-went-away conditions treated as EOF; any other error is
   unexpected on a blocking scrape socket — still mapped to EOF so the
   connection handler can answer/close, but counted rather than silently
   swallowed. *)
let rec read_some fd chunk =
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | k -> k
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd chunk
  | exception
      Unix.Unix_error ((Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      0
  | exception Unix.Unix_error (_, _, _) ->
      Metrics.incr m_read_errors;
      0

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let respond { status; content_type; body } =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status (reason status) content_type (String.length body) body

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write_substring fd s !off (n - !off)
     done
   with Unix.Unix_error _ -> (* peer went away mid-response *) ())

(* Read until the blank line ending the request head (we ignore bodies —
   GET only), bounded to keep a misbehaving client from growing the
   buffer. *)
let read_head fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length b > 16384 then Buffer.contents b
    else
      let k = read_some fd chunk in
      if k = 0 then Buffer.contents b
      else begin
        Buffer.add_subbytes b chunk 0 k;
        let s = Buffer.contents b in
        let rec has_blank i =
          if i + 1 >= String.length s then false
          else if s.[i] = '\n' && (s.[i + 1] = '\n' || (s.[i + 1] = '\r' && i + 2 < String.length s && s.[i + 2] = '\n'))
          then true
          else has_blank (i + 1)
        in
        if has_blank 0 then s else go ()
      end
  in
  go ()

let parse_request head =
  match String.index_opt head '\n' with
  | None -> Error 400
  | Some eol -> (
      let line = String.trim (String.sub head 0 eol) in
      match String.split_on_char ' ' line with
      | [ meth; target; _version ] ->
          if meth <> "GET" then Error 405
          else
            (* strip any ?query — handlers dispatch on the path only *)
            let path =
              match String.index_opt target '?' with
              | Some q -> String.sub target 0 q
              | None -> target
            in
            Ok path
      | _ -> Error 400)

let serve_conn handler client =
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      let head = read_head client in
      Metrics.incr m_requests;
      let resp =
        match parse_request head with
        | Error status ->
            { status; content_type = "text/plain"; body = reason status ^ "\n" }
        | Ok path -> (
            try handler path
            with exn ->
              {
                status = 500;
                content_type = "text/plain";
                body = Printexc.to_string exn ^ "\n";
              })
      in
      write_all client (respond resp))

let accept_loop sock stop_flag handler =
  let rec go () =
    match Unix.accept sock with
    | client, _ ->
        if Atomic.get stop_flag then (
          try Unix.close client with Unix.Unix_error _ -> ())
        else begin
          (try serve_conn handler client
           with _ -> (* a broken connection must not kill the loop *) ());
          go ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ ->
        (* the listener was closed by stop () *)
        ()
  in
  go ()

let start ?(host = "127.0.0.1") ~port handler =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock addr;
     Unix.listen sock 16
   with exn ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise exn);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let stop_flag = Atomic.make false in
  let domain = Domain.spawn (fun () -> accept_loop sock stop_flag handler) in
  { sock; port; stop_flag; domain }

let port t = t.port
let wait t = Domain.join t.domain

let stop t =
  Atomic.set t.stop_flag true;
  (* shutdown (not close) wakes a domain blocked in accept(2) on Linux;
     close the fd only after the loop has exited *)
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Domain.join t.domain with _ -> ());
  try Unix.close t.sock with Unix.Unix_error _ -> ()

(* ------------------------------- client --------------------------------- *)

let recv_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let k = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
    if k > 0 then begin
      Buffer.add_subbytes b chunk 0 k;
      go ()
    end
  in
  go ();
  Buffer.contents b

let get ?(host = "127.0.0.1") ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      write_all sock
        (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" path host);
      let raw = recv_all sock in
      let body_at =
        let n = String.length raw in
        let rec find i =
          if i + 3 < n then
            if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
            else if raw.[i] = '\n' && raw.[i + 1] = '\n' then Some (i + 2)
            else find (i + 1)
          else None
        in
        find 0
      in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> ( match int_of_string_opt code with Some c -> c | None -> 0)
        | _ -> 0
      in
      match body_at with
      | Some i -> (status, String.sub raw i (String.length raw - i))
      | None -> (status, ""))
