(** Default [Logs] reporter for the binaries. *)

val install : ?level:Logs.level option -> unit -> unit
(** [install ~level ()] sets the global log level (default
    [Some Logs.Warning]; [None] silences everything — the [--quiet] flag)
    and installs a reporter that prints to stderr, serialised across
    domains.  Pass the value of [Logs_cli.level ()] straight through. *)
