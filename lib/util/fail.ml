type t =
  | Solver_numerical of { stage : string; detail : string }
  | Colgen_stall of { rounds : int }
  | Oracle_error of { bidder : int; detail : string }
  | Timeout of { stage : string; elapsed_s : float }
  | Malformed_job of { detail : string }

exception Error of t

let label = function
  | Solver_numerical _ -> "solver-numerical"
  | Colgen_stall _ -> "colgen-stall"
  | Oracle_error _ -> "oracle-error"
  | Timeout _ -> "timeout"
  | Malformed_job _ -> "malformed-job"

let to_string = function
  | Solver_numerical { stage; detail } ->
      Printf.sprintf "solver-numerical at %s: %s" stage detail
  | Colgen_stall { rounds } ->
      Printf.sprintf "colgen-stall: no convergence after %d rounds" rounds
  | Oracle_error { bidder; detail } ->
      Printf.sprintf "oracle-error for bidder %d: %s" bidder detail
  | Timeout { stage; elapsed_s } ->
      Printf.sprintf "timeout at %s after %.3fs" stage elapsed_s
  | Malformed_job { detail } -> Printf.sprintf "malformed-job: %s" detail

let raise_ t = raise (Error t)

let is_timeout = function Timeout _ -> true | _ -> false

(* Anything escaping a solver stage maps into the taxonomy: structured
   failures pass through, validation errors become malformed-job, and the
   rest is conservatively classed as numerical breakdown. *)
let of_exn ~stage = function
  | Error f -> f
  | Invalid_argument detail | Failure detail -> Malformed_job { detail }
  | e -> Solver_numerical { stage; detail = Printexc.to_string e }

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Sa_util.Fail.Error: " ^ to_string t)
    | _ -> None)
