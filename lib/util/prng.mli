(** Deterministic, splittable pseudo-random number generation.

    All randomized algorithms in this project take an explicit [Prng.t] so
    that experiments are reproducible from a single seed.  The implementation
    wraps [Random.State] (a lagged-Fibonacci generator in OCaml 5) and adds
    the handful of samplers the auction algorithms need. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator determined entirely by [seed]. *)

val split : t -> t
(** [split g] returns a fresh generator seeded from [g]'s stream, advancing
    [g].  Used to hand independent streams to sub-computations so that adding
    draws in one place does not perturb another. *)

val copy : t -> t
(** [copy g] duplicates the current state (same future stream). *)

val float : t -> float -> float
(** [float g bound] draws uniformly from [\[0, bound)]. *)

val int : t -> int -> int
(** [int g bound] draws uniformly from [{0, ..., bound-1}]. Requires
    [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val uniform_in : t -> float -> float -> float
(** [uniform_in g lo hi] draws uniformly from [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential g lambda] draws from Exp(lambda), [lambda > 0]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal sample. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** Heavy-tailed sample; used for valuation generation. *)

val poisson : t -> float -> int
(** [poisson g lambda] draws from Poisson(lambda), [lambda > 0] (Knuth's
    product method; fine for the small rates used in simulations). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform random permutation of [0..n-1]. *)

val categorical : ?len:int -> t -> float array -> int
(** [categorical g weights] draws index [i] with probability proportional to
    [weights.(i)].  Requires non-negative weights with positive sum.
    [len] restricts the draw to the first [len] entries — for callers that
    reuse an over-sized scratch buffer — with the same draw (bitwise) as a
    [len]-sized array holding those entries. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g m n] draws [m] distinct values from
    [0..n-1], in random order.  Requires [m <= n]. *)
