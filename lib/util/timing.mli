(** Monotonic timing helpers.

    Bechamel handles micro-benchmarks in [bench/]; this module covers the
    coarse per-run timings reported in experiment tables and the telemetry
    spans.  All elapsed times use a monotonic clock (never negative under
    wall-clock adjustment), with a [gettimeofday] fallback if the clock
    stub is unavailable. *)

val monotonic_available : bool
(** Whether the monotonic clock stub works on this platform. *)

val now : unit -> float
(** Monotonic timestamp in seconds.  Arbitrary origin: only differences
    are meaningful, and only within one process. *)

val now_ns : unit -> int64
(** Same clock, nanoseconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)

val time_only : (unit -> 'a) -> float
(** Elapsed seconds only, discarding the result. *)

val repeat : int -> (unit -> 'a) -> float array
(** [repeat n f] runs [f] [n] times and returns the per-run timings. *)
