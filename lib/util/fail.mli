(** Structured failure taxonomy for the solving pipeline.

    Every way a solver stage can go wrong is one constructor here, so the
    batch engine can classify, retry, and degrade instead of aborting a
    whole batch on a bare exception.  Lives in [sa_util] (the bottom of the
    library graph) so the LP layer, the column-generation layer and the
    engine all share the single exception {!Error}; the engine re-exports
    it as [Sa_engine.Failure]. *)

type t =
  | Solver_numerical of { stage : string; detail : string }
      (** simplex breakdown: cycling / iteration limit, unexpected
          infeasible/unbounded status, singular basis *)
  | Colgen_stall of { rounds : int }
      (** column generation still finding improving columns when its round
          budget ran out *)
  | Oracle_error of { bidder : int; detail : string }
      (** a demand oracle raised *)
  | Timeout of { stage : string; elapsed_s : float }
      (** a monotonic-clock deadline expired inside [stage] *)
  | Malformed_job of { detail : string }
      (** the job itself is invalid (bad instance / algorithm mismatch) *)

exception Error of t

val label : t -> string
(** Stable short tag (["solver-numerical"], ["timeout"], ...) used in
    telemetry and JSON. *)

val to_string : t -> string

val raise_ : t -> 'a
(** [raise_ f] raises [Error f]. *)

val is_timeout : t -> bool

val of_exn : stage:string -> exn -> t
(** Classify an arbitrary exception escaping [stage]: [Error] passes
    through, [Invalid_argument]/[Failure] become {!Malformed_job}, anything
    else {!Solver_numerical}.  Never re-raises. *)
