(* Monotonic timing.

   [Unix.gettimeofday] jumps under NTP/manual clock adjustment, which can
   make measured spans negative.  OCaml's unix library exposes no
   CLOCK_MONOTONIC, so we use the tiny linux clock_gettime(MONOTONIC) stub
   shipped with bechamel (no Mtime dependency), falling back to
   gettimeofday if the stub ever fails at runtime. *)

let monotonic_available =
  match Monotonic_clock.now () with
  | (_ : int64) -> true
  | exception _ -> false

let now_ns () =
  if monotonic_available then Monotonic_clock.now ()
  else Int64.of_float (Unix.gettimeofday () *. 1e9)

let now () =
  if monotonic_available then Int64.to_float (Monotonic_clock.now ()) *. 1e-9
  else Unix.gettimeofday ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

let time_only f = snd (time f)

let repeat n f = Array.init n (fun _ -> time_only f)
