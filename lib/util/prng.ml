type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5a5a5a5a; seed lxor 0x9e3779b9 |]

let split g =
  let s0 = Random.State.bits g and s1 = Random.State.bits g in
  Random.State.make [| s0; s1; s0 lxor (s1 lsl 7) |]

let copy = Random.State.copy
let float g bound = Random.State.float g bound

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Random.State.int g bound

let bool g = Random.State.bool g

let bernoulli g p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float g 1.0 < p

let uniform_in g lo hi = lo +. Random.State.float g (hi -. lo)

let exponential g lambda =
  if lambda <= 0. then invalid_arg "Prng.exponential: lambda must be positive";
  let u = 1.0 -. Random.State.float g 1.0 in
  -.log u /. lambda

let gaussian g ~mean ~stddev =
  let u1 = 1.0 -. Random.State.float g 1.0 in
  let u2 = Random.State.float g 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pareto g ~alpha ~xmin =
  if alpha <= 0. || xmin <= 0. then invalid_arg "Prng.pareto: parameters must be positive";
  let u = 1.0 -. Random.State.float g 1.0 in
  xmin /. (u ** (1.0 /. alpha))

let poisson g lambda =
  if lambda <= 0.0 then invalid_arg "Prng.poisson: lambda must be positive";
  let threshold = exp (-.lambda) in
  let rec go count product =
    let product = product *. Random.State.float g 1.0 in
    if product <= threshold then count else go (count + 1) product
  in
  go 0 1.0

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(Random.State.int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let categorical ?len g weights =
  let n =
    match len with
    | None -> Array.length weights
    | Some l ->
        if l < 0 || l > Array.length weights then
          invalid_arg "Prng.categorical: len out of range";
        l
  in
  (* Left-to-right sum, bitwise equal to [Array.fold_left (+.)] over the
     first [n] entries. *)
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. weights.(i)
  done;
  let total = !total in
  if total <= 0. then invalid_arg "Prng.categorical: weights must have positive sum";
  let target = Random.State.float g total in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let sample_without_replacement g m n =
  if m > n then invalid_arg "Prng.sample_without_replacement: m > n";
  let a = permutation g n in
  Array.sub a 0 m
