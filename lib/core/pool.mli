(** Persistent domain pool with dynamic self-scheduling and chunk-splitting
    work stealing.

    Worker domains are spawned lazily on the first batch that needs them
    and then parked on a condition variable between batches — no
    [Domain.spawn]/[Domain.join] per call.  A batch's items are claimed in
    chunks from a shared atomic cursor; the chunk size either is fixed
    ([?chunk]) or adapts to the remaining work
    ([max 1 (remaining / (2·participants))], capped at 64).  Once the
    cursor is exhausted, idle participants split the largest visible
    remainder of a busy sibling (top-half steal), which re-balances
    skewed-cost batches.

    {b Determinism.}  Scheduling only decides where an item runs:
    [map_array f arr] writes [f arr.(i)] into slot [i] of a preallocated
    result array, so the output is bitwise identical for every [domains]
    and [chunk] value (provided [f i] depends on [i] alone — the
    per-index-PRNG-stream convention the rounding and engine layers
    already follow).  The scheduler's own telemetry ([engine.pool.chunks],
    [engine.pool.steals]) is timing-dependent and excluded from the
    determinism contract.

    {b Nesting.}  The submitter always participates in its own batch and
    never waits for a free worker, so nested [map_array] calls (a parallel
    rounding stage inside a pool-executed engine job) cannot deadlock:
    every batch makes progress on its submitting domain alone. *)

type t

val create : unit -> t
(** A fresh pool with no workers (they are spawned on demand by
    {!map_array}). *)

val default : unit -> t
(** The process-wide pool used by {!Fanout} and {!Parallel}.  If the
    current default has been {!shutdown}, a fresh pool is created — the
    pool is restartable. *)

val map_array : ?pool:t -> ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f arr] is [Array.map f arr]; with [domains > 1] the items
    are scheduled across [min domains (length arr)] participants (the
    calling domain plus up to [domains - 1] pool workers).  [pool]
    defaults to {!default}[ ()]; [domains] defaults to 1 (callers such as
    {!Fanout.map_array} pass their own default); [chunk] fixes the
    self-scheduling chunk size (default: adaptive).

    Element 0 is computed eagerly on the caller to seed the result buffer,
    so the pool path allocates no per-element options.

    {b Failure contract}: if one or more applications of [f] raise, every
    item still runs to completion, and the exception of the {e
    lowest-index} failure is re-raised on the caller with its original
    backtrace — deterministic regardless of scheduling.

    Rejects [domains < 1] and [chunk < 1].  Raises [Invalid_argument] if
    [pool] was explicitly supplied and already shut down. *)

val worker_count : t -> int
(** Worker domains currently alive (0 until the first multi-domain
    batch). *)

val shutdown : t -> unit
(** Wake and join every worker.  Queued batches are drained first (each
    submitter is itself a participant, so no batch is lost).  Submitting
    to an explicitly shut-down pool raises; the {!default} pool is
    replaced on next use instead. *)
