module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation

let version = 1

(* ------------------------------- writing ------------------------------- *)

let emit_graph buf g =
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v));
  Buffer.add_string buf "end\n"

let emit_weighted buf wg =
  let n = Weighted.n wg in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let w = Weighted.w wg u v in
        if w > 0.0 then Buffer.add_string buf (Printf.sprintf "w %d %d %.17g\n" u v w)
      end
    done
  done;
  Buffer.add_string buf "end\n"

let emit_floats buf xs =
  Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf " %.17g" x)) xs

let emit_bidder buf v valuation =
  match valuation with
  | Valuation.Xor bids ->
      Buffer.add_string buf (Printf.sprintf "bidder %d xor %d\n" v (List.length bids));
      List.iter
        (fun (b, value) ->
          Buffer.add_string buf
            (Printf.sprintf "bid %d %.17g\n" (Bundle.to_int b) value))
        bids
  | Valuation.Additive values ->
      Buffer.add_string buf (Printf.sprintf "bidder %d additive" v);
      emit_floats buf values;
      Buffer.add_char buf '\n'
  | Valuation.Unit_demand values ->
      Buffer.add_string buf (Printf.sprintf "bidder %d unit-demand" v);
      emit_floats buf values;
      Buffer.add_char buf '\n'
  | Valuation.Symmetric f ->
      Buffer.add_string buf (Printf.sprintf "bidder %d symmetric" v);
      emit_floats buf f;
      Buffer.add_char buf '\n'
  | Valuation.Budget_additive { values; budget } ->
      Buffer.add_string buf (Printf.sprintf "bidder %d budget-additive %.17g" v budget);
      emit_floats buf values;
      Buffer.add_char buf '\n'
  | Valuation.Or_bids bids ->
      Buffer.add_string buf (Printf.sprintf "bidder %d or %d\n" v (List.length bids));
      List.iter
        (fun (b, value) ->
          Buffer.add_string buf
            (Printf.sprintf "bid %d %.17g\n" (Bundle.to_int b) value))
        bids

let emit_conflict buf conflict =
  match conflict with
  | Instance.Unweighted g ->
      Buffer.add_string buf "conflict unweighted\n";
      emit_graph buf g
  | Instance.Edge_weighted wg ->
      Buffer.add_string buf "conflict weighted\n";
      emit_weighted buf wg
  | Instance.Per_channel gs ->
      Buffer.add_string buf "conflict per-channel\n";
      Array.iteri
        (fun j g ->
          Buffer.add_string buf (Printf.sprintf "channel %d\n" j);
          emit_graph buf g)
        gs
  | Instance.Per_channel_weighted wgs ->
      Buffer.add_string buf "conflict per-channel-weighted\n";
      Array.iteri
        (fun j wg ->
          Buffer.add_string buf (Printf.sprintf "channel %d\n" j);
          emit_weighted buf wg)
        wgs

let instance_to_string inst =
  let buf = Buffer.create 4096 in
  let n = Instance.n inst in
  Buffer.add_string buf (Printf.sprintf "specauction-instance %d\n" version);
  Buffer.add_string buf
    (Printf.sprintf "n %d k %d rho %.17g\n" n inst.Instance.k inst.Instance.rho);
  Buffer.add_string buf "ordering";
  Array.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v))
    (Ordering.to_order inst.Instance.ordering);
  Buffer.add_char buf '\n';
  emit_conflict buf inst.Instance.conflict;
  Array.iteri
    (fun v mask ->
      if not (Bundle.equal mask (Bundle.full inst.Instance.k)) then
        Buffer.add_string buf
          (Printf.sprintf "available %d %d\n" v (Bundle.to_int mask)))
    inst.Instance.available;
  Array.iteri (fun v b -> emit_bidder buf v b) inst.Instance.bidders;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* ------------------------------- reading ------------------------------- *)

type reader = { lines : string array; mutable pos : int }

let fail r msg = failwith (Printf.sprintf "Serialize: line %d: %s" (r.pos + 1) msg)

let next_line r =
  let rec go () =
    if r.pos >= Array.length r.lines then None
    else begin
      let line = String.trim r.lines.(r.pos) in
      r.pos <- r.pos + 1;
      if line = "" || line.[0] = '#' then go () else Some line
    end
  in
  go ()

let expect_line r =
  match next_line r with Some l -> l | None -> fail r "unexpected end of input"

let words line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let int_of r s =
  match int_of_string_opt s with Some v -> v | None -> fail r ("bad int: " ^ s)

let float_of r s =
  match float_of_string_opt s with Some v -> v | None -> fail r ("bad float: " ^ s)

let read_graph r n =
  let g = Graph.create n in
  let rec go () =
    match words (expect_line r) with
    | [ "end" ] -> g
    | [ "edge"; u; v ] ->
        Graph.add_edge g (int_of r u) (int_of r v);
        go ()
    | _ -> fail r "expected 'edge u v' or 'end'"
  in
  go ()

let read_weighted r n =
  let wg = Weighted.create n in
  let rec go () =
    match words (expect_line r) with
    | [ "end" ] -> wg
    | [ "w"; u; v; x ] ->
        Weighted.set wg (int_of r u) (int_of r v) (float_of r x);
        go ()
    | _ -> fail r "expected 'w u v x' or 'end'"
  in
  go ()

let read_per_channel r n k read_one =
  Array.init k (fun j ->
      match words (expect_line r) with
      | [ "channel"; j' ] when int_of r j' = j -> read_one r n
      | _ -> fail r (Printf.sprintf "expected 'channel %d'" j))

let read_bidders r n k first_line =
  let bidders = Array.make n (Valuation.Xor []) in
  let masks = ref [] in
  let parse_floats rest = Array.of_list (List.map (float_of r) rest) in
  let rec go line =
    match words line with
    | [ "end" ] -> ()
    | [ "available"; v; mask ] ->
        let v = int_of r v in
        if v < 0 || v >= n then fail r "availability index out of range";
        masks := (v, Bundle.of_int (int_of r mask)) :: !masks;
        go (expect_line r)
    | "bidder" :: v :: "xor" :: [ count ] ->
        let v = int_of r v and count = int_of r count in
        if v < 0 || v >= n then fail r "bidder index out of range";
        let bids =
          List.init count (fun _ ->
              match words (expect_line r) with
              | [ "bid"; mask; value ] ->
                  (Bundle.of_int (int_of r mask), float_of r value)
              | _ -> fail r "expected 'bid mask value'")
        in
        bidders.(v) <- Valuation.Xor bids;
        go (expect_line r)
    | "bidder" :: v :: "additive" :: rest ->
        bidders.(int_of r v) <- Valuation.Additive (parse_floats rest);
        go (expect_line r)
    | "bidder" :: v :: "unit-demand" :: rest ->
        bidders.(int_of r v) <- Valuation.Unit_demand (parse_floats rest);
        go (expect_line r)
    | "bidder" :: v :: "symmetric" :: rest ->
        bidders.(int_of r v) <- Valuation.Symmetric (parse_floats rest);
        go (expect_line r)
    | "bidder" :: v :: "budget-additive" :: budget :: rest ->
        bidders.(int_of r v) <-
          Valuation.Budget_additive
            { values = parse_floats rest; budget = float_of r budget };
        go (expect_line r)
    | "bidder" :: v :: "or" :: [ count ] ->
        let v = int_of r v and count = int_of r count in
        if v < 0 || v >= n then fail r "bidder index out of range";
        let bids =
          List.init count (fun _ ->
              match words (expect_line r) with
              | [ "bid"; mask; value ] ->
                  (Bundle.of_int (int_of r mask), float_of r value)
              | _ -> fail r "expected 'bid mask value'")
        in
        bidders.(v) <- Valuation.Or_bids bids;
        go (expect_line r)
    | _ -> fail r "expected a bidder declaration or 'end'"
  in
  go first_line;
  let available =
    if !masks = [] then None
    else begin
      let arr = Array.make n (Bundle.full k) in
      List.iter (fun (v, m) -> arr.(v) <- m) !masks;
      Some arr
    end
  in
  (bidders, available)

let instance_of_string s =
  let r = { lines = Array.of_list (String.split_on_char '\n' s); pos = 0 } in
  (match words (expect_line r) with
  | [ "specauction-instance"; v ] when int_of r v = version -> ()
  | _ -> fail r "bad header");
  let n, k, rho =
    match words (expect_line r) with
    | [ "n"; n; "k"; k; "rho"; rho ] -> (int_of r n, int_of r k, float_of r rho)
    | _ -> fail r "expected 'n <n> k <k> rho <rho>'"
  in
  let ordering =
    match words (expect_line r) with
    | "ordering" :: rest ->
        Ordering.of_order (Array.of_list (List.map (int_of r) rest))
    | _ -> fail r "expected 'ordering ...'"
  in
  let conflict =
    match words (expect_line r) with
    | [ "conflict"; "unweighted" ] -> Instance.Unweighted (read_graph r n)
    | [ "conflict"; "weighted" ] -> Instance.Edge_weighted (read_weighted r n)
    | [ "conflict"; "per-channel" ] ->
        Instance.Per_channel (read_per_channel r n k read_graph)
    | [ "conflict"; "per-channel-weighted" ] ->
        Instance.Per_channel_weighted (read_per_channel r n k read_weighted)
    | _ -> fail r "expected a conflict section"
  in
  let bidders, available = read_bidders r n k (expect_line r) in
  let inst = Instance.make ~conflict ~k ~bidders ~ordering ~rho in
  match available with
  | None -> inst
  | Some masks -> Instance.with_available inst masks

(* ------------------------------ allocations ----------------------------- *)

let allocation_to_string alloc =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "specauction-allocation %d\n" version);
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Array.length alloc));
  Array.iteri
    (fun v b ->
      if not (Bundle.is_empty b) then
        Buffer.add_string buf (Printf.sprintf "alloc %d %d\n" v (Bundle.to_int b)))
    alloc;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let allocation_of_string s =
  let r = { lines = Array.of_list (String.split_on_char '\n' s); pos = 0 } in
  (match words (expect_line r) with
  | [ "specauction-allocation"; v ] when int_of r v = version -> ()
  | _ -> fail r "bad header");
  let n =
    match words (expect_line r) with
    | [ "n"; n ] -> int_of r n
    | _ -> fail r "expected 'n <n>'"
  in
  let alloc = Allocation.empty n in
  let rec go () =
    match words (expect_line r) with
    | [ "end" ] -> alloc
    | [ "alloc"; v; mask ] ->
        let v = int_of r v in
        if v < 0 || v >= n then fail r "bidder index out of range";
        alloc.(v) <- Bundle.of_int (int_of r mask);
        go ()
    | _ -> fail r "expected 'alloc v mask' or 'end'"
  in
  go ()

(* ------------------------------ fingerprints ----------------------------- *)

let digest_hex s = Digest.to_hex (Digest.string s)

let fingerprint inst = digest_hex (instance_to_string inst)

let conflict_fingerprint conflict =
  let buf = Buffer.create 1024 in
  emit_conflict buf conflict;
  digest_hex (Buffer.contents buf)

let shape_fingerprint inst =
  let buf = Buffer.create 4096 in
  let n = Instance.n inst in
  Buffer.add_string buf
    (Printf.sprintf "shape n %d k %d rho %.17g\n" n inst.Instance.k inst.Instance.rho);
  Buffer.add_string buf "ordering";
  Array.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v))
    (Ordering.to_order inst.Instance.ordering);
  Buffer.add_char buf '\n';
  emit_conflict buf inst.Instance.conflict;
  (* availability-filtered support masks, in the order [Lp_relaxation]
     materialises columns — this pins the LP's variable and row layout *)
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "support %d" v);
    Valuation.support inst.Instance.bidders.(v) ~k:inst.Instance.k
    |> List.filter (fun (bundle, _) ->
           Bundle.equal bundle (Instance.restrict_bundle inst ~bidder:v bundle))
    |> List.iter (fun (bundle, _) ->
           Buffer.add_string buf (Printf.sprintf " %d" (Bundle.to_int bundle)));
    Buffer.add_char buf '\n'
  done;
  digest_hex (Buffer.contents buf)

(* --------------------------------- files -------------------------------- *)

let save_instance path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (instance_to_string inst))

let load_instance path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      instance_of_string (really_input_string ic len))
