module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Ordering = Sa_graph.Ordering
module Model = Sa_lp.Model
module Simplex = Sa_lp.Simplex
module Floats = Sa_util.Floats

type column = { bidder : int; bundle : Bundle.t; x : float }

type fractional = { columns : column array; objective : float }

let by_bidder frac ~n =
  let per = Array.make n [] in
  Array.iter
    (fun { bidder; bundle; x } -> per.(bidder) <- (bundle, x) :: per.(bidder))
    frac.columns;
  per

let column_value inst { bidder; bundle; x } =
  Valuation.value inst.Instance.bidders.(bidder) bundle *. x

let of_allocation inst alloc =
  let columns =
    Array.to_list alloc
    |> List.mapi (fun v bundle -> { bidder = v; bundle; x = 1.0 })
    |> List.filter (fun c -> not (Bundle.is_empty c.bundle))
    |> Array.of_list
  in
  let objective =
    Array.fold_left (fun acc c -> acc +. column_value inst c) 0.0 columns
  in
  { columns; objective }

(* Channel-j interference mass of [columns] into vertex [v]:
   Σ_{u: π(u)<π(v)} Σ_{T∋j} w̄_j(u,v)·x_{u,T}. *)
let interference_mass inst columns ~v ~channel =
  let pi = inst.Instance.ordering in
  Array.fold_left
    (fun acc { bidder = u; bundle; x } ->
      if u <> v && Ordering.precedes pi u v && Bundle.mem channel bundle then
        acc +. (Instance.wbar inst ~channel u v *. x)
      else acc)
    0.0 columns

let is_lp_feasible ?(eps = Floats.default_eps) inst frac =
  let n = Instance.n inst and k = inst.Instance.k in
  let nonneg = Array.for_all (fun c -> c.x >= -.eps) frac.columns in
  let mass = Array.make n 0.0 in
  Array.iter (fun c -> mass.(c.bidder) <- mass.(c.bidder) +. c.x) frac.columns;
  let unit_ok = Array.for_all (fun m -> Floats.leq ~eps m 1.0) mass in
  let interference_ok = ref true in
  for v = 0 to n - 1 do
    for channel = 0 to k - 1 do
      let m = interference_mass inst frac.columns ~v ~channel in
      if not (Floats.leq ~eps m inst.Instance.rho) then interference_ok := false
    done
  done;
  nonneg && unit_ok && !interference_ok

let fractional_value_of_bidder inst frac v =
  Array.fold_left
    (fun acc c -> if c.bidder = v then acc +. column_value inst c else acc)
    0.0 frac.columns

type solve_stats = {
  basis : Sa_lp.Revised.basis option;
  iterations : int;
  warm_start_used : bool;
}

let solve_explicit_stats ?engine ?(zeroed = []) ?warm_start ?max_iters ?deadline
    ?inject_warm_crash ?pricing ?presolve inst =
  let n = Instance.n inst and k = inst.Instance.k in
  let pi = inst.Instance.ordering in
  let m = Model.create Simplex.Maximize in
  (* Materialise columns. *)
  let cols = ref [] in
  for v = 0 to n - 1 do
    let support =
      Valuation.support inst.Instance.bidders.(v) ~k
      (* availability masks: a bidder may only receive channels open to it *)
      |> List.filter (fun (bundle, _) ->
             Bundle.equal bundle (Instance.restrict_bundle inst ~bidder:v bundle))
    in
    let zero = List.mem v zeroed in
    List.iter
      (fun (bundle, value) ->
        let obj = if zero then 0.0 else value in
        let var = Model.add_var m ~obj in
        cols := (v, bundle, var) :: !cols)
      support
  done;
  let cols = Array.of_list (List.rev !cols) in
  (* Unit-mass rows. *)
  let per_bidder_vars = Array.make n [] in
  Array.iter
    (fun (v, _, var) -> per_bidder_vars.(v) <- (var, 1.0) :: per_bidder_vars.(v))
    cols;
  for v = 0 to n - 1 do
    if per_bidder_vars.(v) <> [] then
      ignore (Model.add_row m per_bidder_vars.(v) Simplex.Le 1.0)
  done;
  (* Interference rows, skipping empty ones. *)
  for v = 0 to n - 1 do
    for channel = 0 to k - 1 do
      let coeffs = ref [] in
      Array.iter
        (fun (u, bundle, var) ->
          if u <> v && Ordering.precedes pi u v && Bundle.mem channel bundle then begin
            let w = Instance.wbar inst ~channel u v in
            if w > 0.0 then coeffs := (var, w) :: !coeffs
          end)
        cols;
      if !coeffs <> [] then
        ignore (Model.add_row m !coeffs Simplex.Le inst.Instance.rho)
    done
  done;
  let ws =
    Model.solve_with_basis ?engine ?warm_start ?max_iters ?deadline
      ?inject_warm_crash ?pricing ?presolve m
  in
  let sol = ws.Model.solution in
  let numerical detail =
    Sa_util.Fail.raise_
      (Sa_util.Fail.Solver_numerical { stage = "lp.explicit"; detail })
  in
  (match sol.Model.status with
  | Simplex.Optimal -> ()
  | Simplex.Infeasible -> numerical "LP reported infeasible (packing LP is always feasible)"
  | Simplex.Unbounded -> numerical "LP reported unbounded (objective is bounded by Σ v_max)"
  | Simplex.Iteration_limit -> numerical "simplex iteration limit reached");
  let columns =
    Array.to_list cols
    |> List.filter_map (fun (v, bundle, var) ->
           let x = sol.Model.value var in
           if x > 1e-10 then Some { bidder = v; bundle; x } else None)
    |> Array.of_list
  in
  ( { columns; objective = sol.Model.objective },
    {
      basis = ws.Model.basis;
      iterations = ws.Model.stats.Sa_lp.Revised.iterations;
      warm_start_used = ws.Model.stats.Sa_lp.Revised.warm_used;
    } )

let solve_explicit ?engine ?zeroed inst =
  fst (solve_explicit_stats ?engine ?zeroed inst)

let scale frac factor =
  if factor < 0.0 || factor > 1.0 then invalid_arg "Lp_relaxation.scale: factor in [0,1]";
  {
    columns = Array.map (fun c -> { c with x = c.x *. factor }) frac.columns;
    objective = frac.objective *. factor;
  }
