(** Demand-oracle LP solving (Section 3.1).

    The explicit LP needs one column per (bidder, bundle) — exponential in
    [k] for general valuations.  The paper separates the dual with demand
    oracles under bidder-specific channel prices

    [p_{v,j} = Σ_{u: π(u) > π(v)} w̄_j(u,v) · y_{u,j}]

    and invokes the ellipsoid method.  This module implements the practical
    equivalent: column generation on the primal.  A restricted master LP is
    solved; its duals [y] (interference rows) and [z] (unit-mass rows) price
    the channels; every bidder's demand oracle proposes its utility-
    maximising bundle; columns with positive reduced cost
    [b_{v,T} − Σ_{j∈T} p_{v,j} − z_v > ε] enter the master.  With exact
    oracles the procedure terminates at the true LP optimum. *)

type stats = {
  iterations : int;  (** master re-solves *)
  columns_generated : int;  (** columns in the final master *)
  lp_solves_time : float;  (** seconds in the simplex *)
}

type pricing =
  | Naive  (** recompute every (bidder, channel) price from scratch *)
  | Incremental
      (** recompute only entries whose contributing interference duals
          changed since the previous master solve; bitwise identical to
          [Naive] (same summation order per entry) *)

val solve :
  ?max_rounds:int ->
  ?eps:float ->
  ?engine:Sa_lp.Model.engine ->
  ?pricing:pricing ->
  ?domains:int ->
  ?deadline:float ->
  ?on_stall:[ `Accept | `Fail ] ->
  Instance.t ->
  Lp_relaxation.fractional * stats
(** [max_rounds] caps master iterations (default 200).  Raises
    [Sa_util.Fail.Error (Solver_numerical _)] on simplex breakdown and
    [Sa_util.Fail.Error (Oracle_error _)] when a demand oracle raises.

    [deadline] is an absolute {!Sa_util.Timing.now} timestamp checked
    before every round and enforced inside the master's pivot loop; past
    it the solve raises [Sa_util.Fail.Error (Timeout _)].  [on_stall]
    decides what happens when the round budget runs out while columns are
    still improving: [`Accept] (default, historical behaviour) returns the
    restricted-master optimum, [`Fail] raises
    [Sa_util.Fail.Error (Colgen_stall _)].

    [engine] selects the master-LP solver (default [Revised_sparse]; the
    sparse engine is warm-started across rounds from the previous optimal
    basis, with slack indices remapped as columns are appended).
    [pricing] defaults to [Incremental].  [domains] (default 1) fans the
    per-round demand-oracle calls across OCaml 5 domains; answers merge in
    bidder order, so the generated column sequence — and every telemetry
    counter — is independent of the domain count. *)

val prices_for :
  Instance.t -> y:(int -> int -> float) -> bidder:int -> float array
(** The Section-3.1 bidder-specific prices from interference duals
    [y u j] — exposed for tests. *)
