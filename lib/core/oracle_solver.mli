(** Demand-oracle LP solving (Section 3.1).

    The explicit LP needs one column per (bidder, bundle) — exponential in
    [k] for general valuations.  The paper separates the dual with demand
    oracles under bidder-specific channel prices

    [p_{v,j} = Σ_{u: π(u) > π(v)} w̄_j(u,v) · y_{u,j}]

    and invokes the ellipsoid method.  This module implements the practical
    equivalent: column generation on the primal.  A restricted master LP is
    solved; its duals [y] (interference rows) and [z] (unit-mass rows) price
    the channels; every bidder's demand oracle proposes its utility-
    maximising bundle; columns with positive reduced cost
    [b_{v,T} − Σ_{j∈T} p_{v,j} − z_v > ε] enter the master.  With exact
    oracles the procedure terminates at the true LP optimum. *)

type stats = {
  iterations : int;  (** master re-solves *)
  columns_generated : int;  (** columns in the final master *)
  lp_solves_time : float;  (** seconds in the simplex *)
  seeded_columns : int;
      (** columns pre-loaded from the cross-job {!Column_pool} (0 without
          one) *)
}

(** Cross-job column pool: a bounded LRU of generated (bidder, bundle)
    columns keyed by conflict fingerprint
    ({!Sa_core.Serialize.conflict_fingerprint}), shared across solves the
    way the engine's basis cache shares warm bases.  A solve over a
    fingerprint the pool has seen seeds its restricted master from the
    pooled columns — after re-verifying each against its own bundle
    constraints — typically cutting the colgen round count on
    repeated-topology workloads.  Mutex-guarded; hit/miss counters are
    atomics, safe to read from any domain. *)
module Column_pool : sig
  type t

  val create : ?max_keys:int -> ?max_columns_per_key:int -> unit -> t
  (** LRU bounds: at most [max_keys] fingerprints (default 64), each
      holding at most [max_columns_per_key] columns (default 512,
      earliest-generated kept).  Rejects bounds < 1. *)

  val find : t -> string -> (int * Sa_val.Bundle.t) list
  (** Pooled columns for a fingerprint, in generation order ([] on miss).
      Counts a hit or miss and refreshes LRU recency. *)

  val store : t -> string -> (int * Sa_val.Bundle.t) list -> unit
  (** Merge columns (generation order) after the key's existing ones,
      deduplicated on (bidder, bundle), truncated to the per-key bound;
      evicts least-recently-used keys past [max_keys]. *)

  val entries : t -> int
  val hit_count : t -> int
  val miss_count : t -> int
end

type pricing =
  | Naive  (** recompute every (bidder, channel) price from scratch *)
  | Incremental
      (** recompute only entries whose contributing interference duals
          changed since the previous master solve; bitwise identical to
          [Naive] (same summation order per entry) *)

val solve :
  ?max_rounds:int ->
  ?eps:float ->
  ?engine:Sa_lp.Model.engine ->
  ?pricing:pricing ->
  ?lp_pricing:Sa_lp.Model.pricing ->
  ?presolve:bool ->
  ?domains:int ->
  ?deadline:float ->
  ?on_stall:[ `Accept | `Fail ] ->
  ?column_pool:Column_pool.t * string ->
  Instance.t ->
  Lp_relaxation.fractional * stats
(** [max_rounds] caps master iterations (default 200).  Raises
    [Sa_util.Fail.Error (Solver_numerical _)] on simplex breakdown and
    [Sa_util.Fail.Error (Oracle_error _)] when a demand oracle raises.

    [deadline] is an absolute {!Sa_util.Timing.now} timestamp checked
    before every round and enforced inside the master's pivot loop; past
    it the solve raises [Sa_util.Fail.Error (Timeout _)].  [on_stall]
    decides what happens when the round budget runs out while columns are
    still improving: [`Accept] (default, historical behaviour) returns the
    restricted-master optimum, [`Fail] raises
    [Sa_util.Fail.Error (Colgen_stall _)].

    [engine] selects the master-LP solver (default [Revised_sparse]; the
    sparse engine is warm-started across rounds from the previous optimal
    basis, with slack indices remapped as columns are appended).
    [pricing] defaults to [Incremental].  [lp_pricing] selects the
    *simplex* entering-variable rule inside each master solve
    ({!Sa_lp.Model.pricing}, default [Dantzig]) — distinct from [pricing],
    which governs how the colgen dual prices are recomputed.  Master
    re-solves share the domain's {!Sa_lp.Workspace} arena, so a re-solve
    allocates only for the columns added since the previous round.
    [presolve] (default [false]) runs {!Sa_lp.Presolve} in front of every
    master solve; reductions compose with the cross-round warm start (the
    basis cache stays in original coordinates) and with the column pool —
    fingerprints are computed on the pre-presolve model, so a column
    dropped by presolve in one round is still internable and may re-enter
    later.
    [domains] (default 1) fans the
    per-round demand-oracle calls across OCaml 5 domains; answers merge in
    bidder order, so the generated column sequence — and every telemetry
    counter — is independent of the domain count.

    [column_pool] is a cross-job {!Column_pool} plus this instance's
    conflict fingerprint: pooled columns for the fingerprint seed the
    restricted master (each re-verified with
    {!Instance.restrict_bundle} and re-priced with this instance's
    valuations before entry), and every column this solve generates is
    interned back, in generation order.  The certified optimum is
    unaffected — seeding changes where colgen starts, not where it
    converges.

    After convergence the master is re-solved once from a cold start
    (final refactorization), so the returned solution is a pure function
    of the final column set rather than of the warm-start pivot history
    that discovered it.  In particular a pool-seeded solve that converges
    on its donor's column set reproduces the donor's certified objective
    bitwise. *)

val prices_for :
  Instance.t -> y:(int -> int -> float) -> bidder:int -> float array
(** The Section-3.1 bidder-specific prices from interference duals
    [y u j] — exposed for tests. *)
