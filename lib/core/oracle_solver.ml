module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Ordering = Sa_graph.Ordering
module Model = Sa_lp.Model
module Simplex = Sa_lp.Simplex
module Tel = Sa_telemetry.Metrics

let m_solves = Tel.counter "core.colgen.solves"
let m_rounds = Tel.counter "core.colgen.rounds"
let m_oracle_calls = Tel.counter "core.colgen.oracle_calls"
let m_columns = Tel.counter "core.colgen.columns"
let m_price_recomputes = Tel.counter "core.colgen.price_recomputes"
let m_pool_hits = Tel.counter "core.colgen.pool.hits"
let m_pool_misses = Tel.counter "core.colgen.pool.misses"
let m_pool_seeded = Tel.counter "core.colgen.pool.seeded_columns"
let h_solve = Tel.histogram "core.colgen.solve.seconds"
let log_src = Logs.Src.create "sa.core.colgen" ~doc:"Column generation"
module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  iterations : int;
  columns_generated : int;
  lp_solves_time : float;
  seeded_columns : int;
}

type pricing = Naive | Incremental

(* ------------------------- cross-job column pool ------------------------- *)

(* Bounded LRU of generated (bidder, bundle) columns keyed by conflict
   fingerprint, shared across jobs the way the engine's basis cache shares
   warm bases: a mutex guards the table, atomics mirror the hit counters so
   they are readable from any domain without the lock.  Columns are kept in
   generation order — the order the donor solve discovered them — so a
   seeded master reproduces the donor's column sequence and, on a
   non-degenerate LP, its exact optimal vertex. *)
module Column_pool = struct
  type entry = { cols : (int * Bundle.t) list; mutable stamp : int }

  type t = {
    lock : Mutex.t;
    table : (string, entry) Hashtbl.t;
    mutable tick : int;
    max_keys : int;
    max_columns_per_key : int;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create ?(max_keys = 64) ?(max_columns_per_key = 512) () =
    if max_keys < 1 then invalid_arg "Column_pool.create: max_keys must be >= 1";
    if max_columns_per_key < 1 then
      invalid_arg "Column_pool.create: max_columns_per_key must be >= 1";
    {
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      tick = 0;
      max_keys;
      max_columns_per_key;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let find t key =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
            t.tick <- t.tick + 1;
            e.stamp <- t.tick;
            Atomic.incr t.hits;
            Tel.incr m_pool_hits;
            e.cols
        | None ->
            Atomic.incr t.misses;
            Tel.incr m_pool_misses;
            [])

  let evict_lru t =
    while Hashtbl.length t.table > t.max_keys do
      let victim =
        Hashtbl.fold
          (fun key e acc ->
            match acc with
            | Some (_, stamp) when stamp <= e.stamp -> acc
            | _ -> Some (key, e.stamp))
          t.table None
      in
      match victim with
      | Some (key, _) -> Hashtbl.remove t.table key
      | None -> ()
    done

  (* Merge [cols] (generation order) after the key's existing columns,
     deduplicating on (bidder, bundle) and truncating to the per-key bound
     — earliest-generated columns win, keeping the stored prefix stable
     across repeated stores of the same solve. *)
  let store t key cols =
    locked t (fun () ->
        t.tick <- t.tick + 1;
        let existing =
          match Hashtbl.find_opt t.table key with Some e -> e.cols | None -> []
        in
        let seen = Hashtbl.create 64 in
        let keep = ref [] in
        let count = ref 0 in
        List.iter
          (fun (v, b) ->
            let k = (v, Bundle.to_int b) in
            if !count < t.max_columns_per_key && not (Hashtbl.mem seen k) then begin
              Hashtbl.add seen k ();
              keep := (v, b) :: !keep;
              incr count
            end)
          (existing @ cols);
        Hashtbl.replace t.table key { cols = List.rev !keep; stamp = t.tick };
        evict_lru t)

  let entries t = locked t (fun () -> Hashtbl.length t.table)
  let hit_count t = Atomic.get t.hits
  let miss_count t = Atomic.get t.misses
end

(* Raw Section-3.1 price sums, before clamping and availability deterrents:
   p_raw(v,j) = Σ_{u ≻ v} w̄_j(u,v) · y(u,j), accumulated with u ascending.
   The incremental path recomputes stale entries with this exact function,
   so its results are bitwise identical to a full naive recompute. *)
let raw_price inst ~y ~bidder ~channel =
  let pi = inst.Instance.ordering in
  let acc = ref 0.0 in
  for u = 0 to Instance.n inst - 1 do
    if u <> bidder && Ordering.precedes pi bidder u then begin
      let w = Instance.wbar inst ~channel u bidder in
      if w > 0.0 then acc := !acc +. (w *. y u channel)
    end
  done;
  !acc

(* Clamp numerical noise and price unavailable channels prohibitively.  The
   deterrent needs [Valuation.max_value] — a scan of the whole valuation —
   so it is only computed when this bidder actually has a blocked channel
   ([deterrent] is called lazily, letting callers cache per bidder). *)
let finish_prices inst ~bidder ~deterrent prices =
  let prices = Array.map (fun p -> Float.max 0.0 p) prices in
  let avail = inst.Instance.available.(bidder) in
  if Bundle.card avail = inst.Instance.k then prices
  else begin
    let d = deterrent () in
    Array.mapi (fun j p -> if Bundle.mem j avail then p else d) prices
  end

let default_deterrent inst ~bidder () =
  (2.0 *. Valuation.max_value inst.Instance.bidders.(bidder) ~k:inst.Instance.k)
  +. 1.0

let prices_for inst ~y ~bidder =
  let k = inst.Instance.k in
  let prices =
    Array.init k (fun channel -> raw_price inst ~y ~bidder ~channel)
  in
  finish_prices inst ~bidder ~deterrent:(default_deterrent inst ~bidder) prices

(* Incremental dual-price state: the n×k table of raw sums plus the duals
   it was computed from.  After a master re-solve, only the (v,j) entries
   whose contributing duals y(u,j) actually changed are recomputed. *)
type price_state = {
  raw : float array array; (* n×k raw sums *)
  y_prev : float array array; (* n×k duals the sums were computed from *)
  dirty : bool array array;
}

let price_state_create n k =
  {
    raw = Array.make_matrix n k 0.0;
    y_prev = Array.make_matrix n k 0.0;
    dirty = Array.make_matrix n k false;
  }

let price_state_update inst st ~y =
  let n = Instance.n inst in
  let k = inst.Instance.k in
  let pi = inst.Instance.ordering in
  (* mark (v,j) dirty for every v preceding a u whose y(u,j) changed *)
  for u = 0 to n - 1 do
    for j = 0 to k - 1 do
      let yu = y u j in
      if yu <> st.y_prev.(u).(j) then begin
        st.y_prev.(u).(j) <- yu;
        for v = 0 to n - 1 do
          if
            v <> u
            && Ordering.precedes pi v u
            && (not st.dirty.(v).(j))
            && Instance.wbar inst ~channel:j u v > 0.0
          then st.dirty.(v).(j) <- true
        done
      end
    done
  done;
  let yv u j = st.y_prev.(u).(j) in
  let recomputed = ref 0 in
  for v = 0 to n - 1 do
    for j = 0 to k - 1 do
      if st.dirty.(v).(j) then begin
        st.dirty.(v).(j) <- false;
        st.raw.(v).(j) <- raw_price inst ~y:yv ~bidder:v ~channel:j;
        incr recomputed
      end
    done
  done;
  Tel.add m_price_recomputes !recomputed

let solve ?(max_rounds = 200) ?(eps = Sa_lp.Tol.feas_eps)
    ?(engine = Model.Revised_sparse) ?(pricing = Incremental) ?lp_pricing
    ?presolve ?(domains = 1) ?deadline ?(on_stall = `Accept) ?column_pool inst =
  Sa_telemetry.Trace.with_span ~hist:h_solve "core.colgen.solve" @@ fun () ->
  Tel.incr m_solves;
  if domains < 1 then invalid_arg "Oracle_solver.solve: domains must be >= 1";
  let started = Sa_util.Timing.now () in
  let check_deadline () =
    match deadline with
    | Some d when Sa_util.Timing.now () > d ->
        Sa_util.Fail.raise_
          (Sa_util.Fail.Timeout
             { stage = "colgen"; elapsed_s = Sa_util.Timing.now () -. started })
    | _ -> ()
  in
  check_deadline ();
  let n = Instance.n inst in
  let k = inst.Instance.k in
  let pi = inst.Instance.ordering in
  let m = Model.create Simplex.Maximize in
  (* Fixed row structure. *)
  let unit_row = Array.init n (fun _ -> Model.add_row m [] Simplex.Le 1.0) in
  let intf_row = Array.make_matrix n k (-1) in
  for v = 0 to n - 1 do
    for j = 0 to k - 1 do
      intf_row.(v).(j) <- Model.add_row m [] Simplex.Le inst.Instance.rho
    done
  done;
  let present = Hashtbl.create 256 in
  let columns = ref [] in
  let add_column v bundle =
    let key = (v, Bundle.to_int bundle) in
    if not (Bundle.equal bundle (Instance.restrict_bundle inst ~bidder:v bundle)) then
      false
    else if Hashtbl.mem present key then false
    else begin
      Hashtbl.add present key ();
      let value = Valuation.value inst.Instance.bidders.(v) bundle in
      let var = Model.add_var m ~obj:value in
      Model.add_to_row m unit_row.(v) var 1.0;
      (* The column appears in the interference row of every later vertex
         for every channel it contains. *)
      for v' = 0 to n - 1 do
        if v' <> v && Ordering.precedes pi v v' then
          Bundle.iter
            (fun j ->
              let w = Instance.wbar inst ~channel:j v v' in
              if w > 0.0 then Model.add_to_row m intf_row.(v').(j) var w)
            bundle
      done;
      columns := (v, bundle, var) :: !columns;
      Tel.incr m_columns;
      true
    end
  in
  (* Per-bidder deterrent cache (satisfies the laziness contract of
     [finish_prices] across rounds). *)
  let deterrent_cache = Array.make n nan in
  let deterrent v () =
    if Float.is_nan deterrent_cache.(v) then
      deterrent_cache.(v) <- default_deterrent inst ~bidder:v ();
    deterrent_cache.(v)
  in
  let price_st =
    match pricing with Naive -> None | Incremental -> Some (price_state_create n k)
  in
  (* Priced channel vectors for every bidder under duals [y]. *)
  let all_prices y =
    (match price_st with
    | None -> ()
    | Some st -> price_state_update inst st ~y);
    Array.init n (fun v ->
        let raw =
          match price_st with
          | Some st -> Array.copy st.raw.(v)
          | None -> Array.init k (fun channel -> raw_price inst ~y ~bidder:v ~channel)
        in
        finish_prices inst ~bidder:v ~deterrent:(deterrent v) raw)
  in
  (* Demand oracles fan across domains; answers merge in bidder order, so
     the generated column sequence is independent of [domains]. *)
  let all_demands prices =
    Tel.add m_oracle_calls n;
    Fanout.map_array ~domains
      (fun v ->
        (* Classify anything escaping a demand oracle: the engine needs to
           know which bidder's oracle broke to report (and retry) the job. *)
        try Valuation.demand inst.Instance.bidders.(v) ~prices:prices.(v) with
        | Sa_util.Fail.Error _ as e -> raise e
        | e ->
            Sa_util.Fail.raise_
              (Sa_util.Fail.Oracle_error
                 { bidder = v; detail = Printexc.to_string e }))
      (Array.init n Fun.id)
  in
  (* Cross-job seeding: columns interned by an earlier solve over the same
     conflict fingerprint enter the restricted master up front, in their
     original generation order.  [add_column] re-verifies each one against
     THIS instance's bundle constraints ([Instance.restrict_bundle]) and
     prices it with THIS instance's valuations, so a stale or foreign
     column can narrow the seeding but never corrupt the LP. *)
  let seeded =
    match column_pool with
    | None -> 0
    | Some (cp, key) ->
        let pooled = Column_pool.find cp key in
        List.fold_left
          (fun acc (v, bundle) ->
            if
              v >= 0 && v < n
              && (not (Bundle.is_empty bundle))
              && add_column v bundle
            then acc + 1
            else acc)
          0 pooled
  in
  Tel.add m_pool_seeded seeded;
  (* Seed: every bidder's favourite bundle at zero prices (blocked channels
     still carry their deterrent price). *)
  let seed_demands = all_demands (all_prices (fun _ _ -> 0.0)) in
  Array.iteri
    (fun v (bundle, util) ->
      if util > 0.0 && not (Bundle.is_empty bundle) then ignore (add_column v bundle))
    seed_demands;
  let lp_time = ref 0.0 in
  (* Warm-start bookkeeping for the sparse engine: the previous optimal
     basis stays primal feasible when columns are appended, but slack
     indices shift by the number of new structural columns — remap before
     reuse. *)
  let warm_basis = ref None in
  let basis_nstruct = ref 0 in
  (* One arena for every master re-solve this job performs (and, since it
     is the domain's arena, shared with every other job this domain
     serves): round N's buffers are round N+1's, so a re-solve allocates
     only for the columns added since the previous round. *)
  let lp_workspace = Sa_lp.Workspace.get () in
  let solve_master () =
    let nstruct = Model.num_vars m in
    let warm_start =
      match !warm_basis with
      | Some b when engine = Model.Revised_sparse ->
          let shift = nstruct - !basis_nstruct in
          Some (Array.map (fun j -> if j < !basis_nstruct then j else j + shift) b)
      | _ -> None
    in
    let r, dt =
      Sa_util.Timing.time (fun () ->
          Model.solve_with_basis ~engine ?warm_start ?deadline
            ?pricing:lp_pricing ?presolve ~workspace:lp_workspace m)
    in
    lp_time := !lp_time +. dt;
    warm_basis := r.Model.basis;
    basis_nstruct := nstruct;
    (match r.Model.solution.Model.status with
    | Simplex.Optimal -> ()
    | (Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit) as st ->
        let detail =
          match st with
          | Simplex.Infeasible -> "master LP reported infeasible"
          | Simplex.Unbounded -> "master LP reported unbounded"
          | _ -> "master LP hit its iteration limit"
        in
        Sa_util.Fail.raise_
          (Sa_util.Fail.Solver_numerical { stage = "colgen.master"; detail }));
    r.Model.solution
  in
  let rounds = ref 0 in
  let finished = ref false in
  let last_sol = ref (solve_master ()) in
  incr rounds;
  while (not !finished) && !rounds < max_rounds do
    check_deadline ();
    let sol = !last_sol in
    let y u j = sol.Model.dual intf_row.(u).(j) in
    let demands = all_demands (all_prices y) in
    let added = ref false in
    Array.iteri
      (fun v (bundle, util) ->
        if not (Bundle.is_empty bundle) then begin
          let z_v = sol.Model.dual unit_row.(v) in
          if util -. z_v > eps then if add_column v bundle then added := true
        end)
      demands;
    if !added then begin
      Log.debug (fun m ->
          m "colgen round %d: new columns, re-solving master (cols=%d)" !rounds
            (Hashtbl.length present));
      last_sol := solve_master ();
      incr rounds
    end
    else finished := true
  done;
  Tel.add m_rounds !rounds;
  (* Round budget exhausted while columns were still entering: the current
     master optimum is a valid (restricted) solution but not certified as
     the LP optimum.  [`Accept] keeps the historical behaviour of returning
     it; [`Fail] surfaces the stall to the engine's retry logic. *)
  (if (not !finished) && on_stall = `Fail then
     Sa_util.Fail.raise_ (Sa_util.Fail.Colgen_stall { rounds = !rounds }));
  (* Final refactorization: re-solve the converged master from a cold
     start.  The incremental x_b carried across warm-started rounds drifts
     by ulps with the pivot history, so without this the certified values
     would depend on the path (cold, warm-across-rounds, pool-seeded) that
     discovered the final column set.  One clean solve over the finished
     master makes the answer a pure function of that column set — which is
     what lets a pool-seeded exact repeat reproduce its donor bitwise. *)
  warm_basis := None;
  last_sol := solve_master ();
  let sol = !last_sol in
  let cols =
    List.rev !columns
    |> List.filter_map (fun (v, bundle, var) ->
           let x = sol.Model.value var in
           if x > 1e-10 then
             Some { Lp_relaxation.bidder = v; bundle; x }
           else None)
    |> Array.of_list
  in
  (* Intern everything this solve generated (seeded columns included — they
     passed [add_column], so they are live for this fingerprint). *)
  (match column_pool with
  | None -> ()
  | Some (cp, key) ->
      Column_pool.store cp key (List.rev_map (fun (v, b, _) -> (v, b)) !columns));
  Sa_telemetry.Trace.add_attr "rounds" (string_of_int !rounds);
  Sa_telemetry.Trace.add_attr "columns" (string_of_int (Hashtbl.length present));
  Sa_telemetry.Trace.add_attr "seeded" (string_of_int seeded);
  Sa_telemetry.Eventlog.emit "colgen_done"
    [
      ("rounds", Sa_telemetry.Eventlog.Int !rounds);
      ("columns", Sa_telemetry.Eventlog.Int (Hashtbl.length present));
      ("converged", Sa_telemetry.Eventlog.Bool !finished);
      ("objective", Sa_telemetry.Eventlog.Float sol.Model.objective);
    ];
  ( { Lp_relaxation.columns = cols; objective = sol.Model.objective },
    {
      iterations = !rounds;
      columns_generated = Hashtbl.length present;
      lp_solves_time = !lp_time;
      seeded_columns = seeded;
    } )
