module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Ordering = Sa_graph.Ordering
module Model = Sa_lp.Model
module Simplex = Sa_lp.Simplex
module Tel = Sa_telemetry.Metrics

let m_solves = Tel.counter "core.colgen.solves"
let m_rounds = Tel.counter "core.colgen.rounds"
let m_oracle_calls = Tel.counter "core.colgen.oracle_calls"
let m_columns = Tel.counter "core.colgen.columns"
let h_solve = Tel.histogram "core.colgen.solve.seconds"
let log_src = Logs.Src.create "sa.core.colgen" ~doc:"Column generation"
module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  iterations : int;
  columns_generated : int;
  lp_solves_time : float;
}

let prices_for inst ~y ~bidder =
  let k = inst.Instance.k in
  let pi = inst.Instance.ordering in
  let prices = Array.make k 0.0 in
  for u = 0 to Instance.n inst - 1 do
    if u <> bidder && Ordering.precedes pi bidder u then
      for j = 0 to k - 1 do
        let w = Instance.wbar inst ~channel:j u bidder in
        if w > 0.0 then prices.(j) <- prices.(j) +. (w *. y u j)
      done
  done;
  (* Numerical noise in duals can leave tiny negatives; demand oracles
     require non-negative prices. *)
  let prices = Array.map (fun p -> Float.max 0.0 p) prices in
  (* Channels unavailable to this bidder are priced prohibitively, so an
     exact demand oracle never proposes them. *)
  let deterrent =
    (2.0 *. Valuation.max_value inst.Instance.bidders.(bidder) ~k) +. 1.0
  in
  Array.mapi
    (fun j p ->
      if Instance.channel_available inst ~bidder ~channel:j then p else deterrent)
    prices

let solve ?(max_rounds = 200) ?(eps = 1e-7) inst =
  Sa_telemetry.Trace.with_span ~hist:h_solve "core.colgen.solve" @@ fun () ->
  Tel.incr m_solves;
  let n = Instance.n inst in
  let k = inst.Instance.k in
  let pi = inst.Instance.ordering in
  let m = Model.create Simplex.Maximize in
  (* Fixed row structure. *)
  let unit_row = Array.init n (fun _ -> Model.add_row m [] Simplex.Le 1.0) in
  let intf_row = Array.make_matrix n k (-1) in
  for v = 0 to n - 1 do
    for j = 0 to k - 1 do
      intf_row.(v).(j) <- Model.add_row m [] Simplex.Le inst.Instance.rho
    done
  done;
  let present = Hashtbl.create 256 in
  let columns = ref [] in
  let add_column v bundle =
    let key = (v, Bundle.to_int bundle) in
    if not (Bundle.equal bundle (Instance.restrict_bundle inst ~bidder:v bundle)) then
      false
    else if Hashtbl.mem present key then false
    else begin
      Hashtbl.add present key ();
      let value = Valuation.value inst.Instance.bidders.(v) bundle in
      let var = Model.add_var m ~obj:value in
      Model.add_to_row m unit_row.(v) var 1.0;
      (* The column appears in the interference row of every later vertex
         for every channel it contains. *)
      for v' = 0 to n - 1 do
        if v' <> v && Ordering.precedes pi v v' then
          Bundle.iter
            (fun j ->
              let w = Instance.wbar inst ~channel:j v v' in
              if w > 0.0 then Model.add_to_row m intf_row.(v').(j) var w)
            bundle
      done;
      columns := (v, bundle, var) :: !columns;
      Tel.incr m_columns;
      true
    end
  in
  (* Seed: every bidder's favourite bundle at zero prices (blocked channels
     still carry their deterrent price). *)
  for v = 0 to n - 1 do
    let prices = prices_for inst ~y:(fun _ _ -> 0.0) ~bidder:v in
    Tel.incr m_oracle_calls;
    let bundle, util = Valuation.demand inst.Instance.bidders.(v) ~prices in
    if util > 0.0 && not (Bundle.is_empty bundle) then ignore (add_column v bundle)
  done;
  let lp_time = ref 0.0 in
  let solve_master () =
    let sol, dt = Sa_util.Timing.time (fun () -> Model.solve m) in
    lp_time := !lp_time +. dt;
    (match sol.Model.status with
    | Simplex.Optimal -> ()
    | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit ->
        failwith "Oracle_solver: master LP failed");
    sol
  in
  let rounds = ref 0 in
  let finished = ref false in
  let last_sol = ref (solve_master ()) in
  incr rounds;
  while (not !finished) && !rounds < max_rounds do
    let sol = !last_sol in
    let y u j = sol.Model.dual intf_row.(u).(j) in
    let added = ref false in
    for v = 0 to n - 1 do
      let prices = prices_for inst ~y ~bidder:v in
      Tel.incr m_oracle_calls;
      let bundle, util = Valuation.demand inst.Instance.bidders.(v) ~prices in
      if not (Bundle.is_empty bundle) then begin
        let z_v = sol.Model.dual unit_row.(v) in
        if util -. z_v > eps then if add_column v bundle then added := true
      end
    done;
    if !added then begin
      Log.debug (fun m ->
          m "colgen round %d: new columns, re-solving master (cols=%d)" !rounds
            (Hashtbl.length present));
      last_sol := solve_master ();
      incr rounds
    end
    else finished := true
  done;
  Tel.add m_rounds !rounds;
  let sol = !last_sol in
  let cols =
    List.rev !columns
    |> List.filter_map (fun (v, bundle, var) ->
           let x = sol.Model.value var in
           if x > 1e-10 then
             Some { Lp_relaxation.bidder = v; bundle; x }
           else None)
    |> Array.of_list
  in
  ( { Lp_relaxation.columns = cols; objective = sol.Model.objective },
    {
      iterations = !rounds;
      columns_generated = Hashtbl.length present;
      lp_solves_time = !lp_time;
    } )
