let prime = 101

let m_candidates = Sa_telemetry.Metrics.counter "core.derand.candidates"

(* h_{a,b}(v) = ((a*v + b) mod p) / p — a pairwise-independent [0,1) family.
   The enumeration makes p² rounding passes, so the uniforms live in one
   reused buffer from the domain's scratch arena (float slot 32 is reserved
   for this module; see [Sa_lp.Workspace]) instead of a fresh n-array per
   candidate. *)
let slot_uniforms = 32

let fill_uniforms u ~n a b =
  for v = 0 to n - 1 do
    u.(v) <- float_of_int (((a * v) + b) mod prime) /. float_of_int prime
  done

let better inst x y = if Allocation.value inst x >= Allocation.value inst y then x else y

let enumerate inst round_pass =
  let n = Instance.n inst in
  let ws = Sa_lp.Workspace.get () in
  let uniforms = Sa_lp.Workspace.floats ws ~slot:slot_uniforms (max n 1) in
  let best = ref (Allocation.empty n) in
  for a = 0 to prime - 1 do
    for b = 0 to prime - 1 do
      Sa_telemetry.Metrics.incr m_candidates;
      fill_uniforms uniforms ~n a b;
      let alloc = round_pass uniforms in
      best := better inst !best alloc
    done
  done;
  !best

let algorithm1_derand inst frac =
  (match inst.Instance.conflict with
  | Instance.Unweighted _ -> ()
  | Instance.Edge_weighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _ ->
      invalid_arg "Derand.algorithm1_derand: unweighted instances only");
  let k = float_of_int inst.Instance.k in
  let scale_down = 2.0 *. sqrt k *. inst.Instance.rho in
  enumerate inst (fun uniforms ->
      Rounding.round_with_uniforms inst frac ~scale_down ~uniforms)

let algorithm23_derand inst frac =
  (match inst.Instance.conflict with
  | Instance.Edge_weighted _ -> ()
  | Instance.Unweighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _ ->
      invalid_arg "Derand.algorithm23_derand: edge-weighted instances only");
  let k = float_of_int inst.Instance.k in
  let scale_down = 4.0 *. sqrt k *. inst.Instance.rho in
  enumerate inst (fun uniforms ->
      let partly = Rounding.round_with_uniforms inst frac ~scale_down ~uniforms in
      Rounding.algorithm3 inst partly)
