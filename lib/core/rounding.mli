(** The paper's rounding algorithms.

    - {!algorithm1}: LP rounding for unweighted conflict graphs (§2.2).
      Expected value ≥ [b*/8√k·ρ] (Theorem 3).
    - {!algorithm2}: rounding to a *partly feasible* allocation for
      edge-weighted graphs (§3.2), expected value ≥ [b*/16√k·ρ] (Lemma 7).
    - {!algorithm3}: conflict-resolution decomposition turning a partly
      feasible allocation into a feasible one, losing ≤ [log₂ n] (Lemma 8).
    - {!algorithm_asymmetric}: the Section-6 variant for per-channel
      conflict graphs with scaling [1/2kρ].

    All rounding stages resolve conflicts against the *tentative* (rounded)
    allocation, exactly as the proofs of Lemma 4 / Lemma 7 analyse. *)

val algorithm1 :
  Sa_util.Prng.t -> Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Requires an [Unweighted] instance; the result is always feasible. *)

val algorithm1_scaled :
  Sa_util.Prng.t ->
  Instance.t ->
  Lp_relaxation.fractional ->
  scale_down:float ->
  Allocation.t
(** {!algorithm1} with an explicit rounding denominator instead of the
    canonical [2√k·ρ] — feasibility holds for any positive scale; only the
    Theorem-3 expectation bound needs the canonical one.  Exposed for the
    scale-ablation experiments. *)

val algorithm2_scaled :
  Sa_util.Prng.t ->
  Instance.t ->
  Lp_relaxation.fractional ->
  scale_down:float ->
  Allocation.t
(** {!algorithm2} with an explicit scale; Condition (5) holds regardless. *)

val algorithm_asymmetric_scaled :
  Sa_util.Prng.t ->
  Instance.t ->
  Lp_relaxation.fractional ->
  scale_down:float ->
  Allocation.t
(** {!algorithm_asymmetric} with an explicit scale. *)

val algorithm_asymmetric_weighted :
  Sa_util.Prng.t -> Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Section 6 in full generality — a different edge-weight function per
    channel ([Per_channel_weighted] instances).  Rounds with scale [4kρ]
    and enforces the per-channel Condition-(5) analogue; the output is
    partly feasible per channel and must be finished with
    {!algorithm3_asymmetric}.  Total factor [O(kρ log n)]. *)

val algorithm_asymmetric_weighted_scaled :
  Sa_util.Prng.t ->
  Instance.t ->
  Lp_relaxation.fractional ->
  scale_down:float ->
  Allocation.t
(** {!algorithm_asymmetric_weighted} with an explicit scale. *)

val algorithm3_asymmetric : Instance.t -> Allocation.t -> Allocation.t
(** Per-channel Algorithm-3 analogue for [Per_channel_weighted] instances:
    iteratively drops, by decreasing rank, any vertex one of whose channels
    receives incoming interference ≥ 1, keeping the best candidate.  Output
    is always feasible. *)

val algorithm2 :
  Sa_util.Prng.t -> Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Requires an [Edge_weighted] instance; the result satisfies the
    partly-feasible Condition (5) but may violate full independence. *)

val is_partly_feasible : Instance.t -> Allocation.t -> bool
(** Condition (5): backward shared-channel interference below 1/2 for every
    allocated vertex. *)

val algorithm3 : Instance.t -> Allocation.t -> Allocation.t
(** Requires [Edge_weighted]; input must satisfy Condition (5).  Decomposes
    into ≤ log₂ n feasible candidates and returns the most valuable. *)

val algorithm_asymmetric :
  Sa_util.Prng.t -> Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Requires a [Per_channel] instance; feasible output. *)

val solve :
  ?trials:int ->
  Sa_util.Prng.t ->
  Instance.t ->
  Lp_relaxation.fractional ->
  Allocation.t
(** Dispatch on the conflict structure and return the best feasible
    allocation over [trials] independent runs (default 8) — the
    "derandomization by repetition" used throughout the experiments. *)

val solve_par :
  ?domains:int ->
  ?chunk:int ->
  ?trials:int ->
  seed:int ->
  Instance.t ->
  Lp_relaxation.fractional ->
  Allocation.t
(** {!solve} with the trials fanned across OCaml 5 domains
    ({!Fanout.map_array}; [chunk] fixes the pool's self-scheduling chunk
    size).  Each trial runs on its own PRNG stream derived from [seed] and
    trial index — never from the domain assignment — and the best
    allocation is chosen in fixed index order, so the result is
    byte-identical across domain counts and chunk sizes. *)

val round_with_uniforms :
  Instance.t ->
  Lp_relaxation.fractional ->
  scale_down:float ->
  uniforms:float array ->
  Allocation.t
(** One deterministic rounding-plus-resolution pass where bidder [v]'s
    randomness is the supplied [uniforms.(v) ∈ \[0,1)] (inverse-CDF over its
    columns).  [uniforms] may be longer than [n] — a reused scratch buffer —
    in which case entries past [n - 1] are ignored.  Applies the resolution stage matching the conflict structure:
    the output is feasible for unweighted/per-channel instances and partly
    feasible (Condition (5)) for edge-weighted ones — feed it to
    {!algorithm3}.  This is the randomness interface the pairwise-
    independence derandomization ({!Derand}) drives. *)

val solve_adaptive :
  ?trials:int ->
  Sa_util.Prng.t ->
  Instance.t ->
  Lp_relaxation.fractional ->
  Allocation.t
(** Practical variant: tries a geometric ladder of rounding scales from the
    canonical [2√k·ρ] (resp. [4√k·ρ], [2k·ρ]) down to 1, [trials] runs each
    (default 4), and keeps the best feasible allocation.  The conflict-
    resolution stages enforce feasibility at *any* scale, so this retains
    the worst-case guarantee (the canonical scale is included) while
    allocating much more aggressively on benign instances — the ablation of
    experiment E8. *)

val guarantee : Instance.t -> float
(** The theoretical approximation factor of {!solve} for this instance:
    [8√k·ρ], [16√k·ρ·log₂ n] or [4k·ρ] respectively (an upper bound on
    LP-opt / expected value). *)
