(** Multicore execution of the embarrassingly parallel stages (OCaml 5
    domains).

    Two stages dominate wall-clock time and parallelise trivially:
    best-of-R randomized rounding (independent trials) and the
    derandomization's seed-family enumeration (independent seeds).  Both
    are provided here with deterministic results: the parallel
    derandomization returns an allocation of exactly the same value as the
    sequential scan, and parallel rounding with [domains·trials_per_domain]
    trials follows the same distribution as the sequential best-of-R.

    Speedup tracks the machine's core count
    ({!Domain.recommended_domain_count}); on a single-core host the code
    still runs correctly, just without gain. *)

val default_domains : int
(** [max 1 (Domain.recommended_domain_count () - 1)]. *)

val map_array : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f arr] is [Array.map f arr] scheduled across up to
    [domains] OCaml 5 domains (default {!default_domains}) on the
    persistent {!Pool} — dynamic chunk self-scheduling ([chunk] fixes the
    chunk size, default adaptive) with work stealing.  Output order and
    content are identical to the sequential map whenever [f] is a function
    of its argument alone; this is the generic fan-out the batch engine
    builds on.  [f] must be safe to run concurrently from several
    domains.  Failure contract as in {!Fanout.map_array}. *)

val solve_rounding :
  ?domains:int ->
  ?trials_per_domain:int ->
  seed:int ->
  Instance.t ->
  Lp_relaxation.fractional ->
  Allocation.t
(** Best feasible allocation over [domains × trials_per_domain] (default
    [default_domains × 4]) independent {!Rounding.solve_adaptive} trials,
    each domain on its own deterministic PRNG stream derived from [seed]. *)

val derand1 :
  ?domains:int -> Instance.t -> Lp_relaxation.fractional -> Allocation.t
(** Parallel {!Derand.algorithm1_derand}: partitions the [p²] seed family
    across domains.  Same welfare as the sequential version (ties may pick
    a different witness). *)
