(** The paper's LP relaxations — LP (1), LP (3) and the asymmetric variant.

    One variable [x_{v,T}] per (bidder, bundle) column; constraints:

    - interference, one per (vertex, channel):
      [Σ_{u: π(u)<π(v)} Σ_{T∋j} w̄_j(u,v)·x_{u,T} ≤ ρ]   (1b)/(3b)
    - unit mass per bidder: [Σ_T x_{v,T} ≤ 1]              (1c)/(3c)
    - [x ≥ 0].

    [solve_explicit] materialises columns from {!Sa_val.Valuation.support}
    (polynomial for XOR bids, exponential enumeration capped at small [k] for
    the other languages); the demand-oracle path lives in {!Oracle_solver}. *)

type column = { bidder : int; bundle : Sa_val.Bundle.t; x : float }

type fractional = {
  columns : column array;  (** only strictly positive entries *)
  objective : float;  (** LP optimum [b^*] *)
}

val by_bidder : fractional -> n:int -> (Sa_val.Bundle.t * float) list array
(** Per-bidder view of the solution. *)

val column_value : Instance.t -> column -> float
(** [b_{v,T} · x_{v,T}]. *)

val of_allocation : Instance.t -> Allocation.t -> fractional
(** The integral LP point of Lemma 1 (x_{v,S(v)} = 1). *)

val is_lp_feasible : ?eps:float -> Instance.t -> fractional -> bool
(** Checks (1b)/(3b), (1c) and non-negativity against the instance's ρ. *)

val fractional_value_of_bidder : Instance.t -> fractional -> int -> float
(** [Σ_T b_{v,T}·x_{v,T}]. *)

val solve_explicit :
  ?engine:Sa_lp.Model.engine -> ?zeroed:int list -> Instance.t -> fractional
(** Solve the LP with explicit columns.  [zeroed] lists bidders whose
    valuations are treated as identically zero (used for VCG-style payment
    computations: "the LP without bidder v").  [engine] picks the simplex
    implementation (default dense tableau).  Raises
    [Sa_util.Fail.Error (Solver_numerical _)] when the simplex fails to
    reach optimality. *)

type solve_stats = {
  basis : Sa_lp.Revised.basis option;
      (** optimal simplex basis; reusable as [warm_start] for any instance
          with the same {!Serialize.shape_fingerprint} *)
  iterations : int;  (** simplex pivots spent (0 for the dense engine) *)
  warm_start_used : bool;
}

val solve_explicit_stats :
  ?engine:Sa_lp.Model.engine ->
  ?zeroed:int list ->
  ?warm_start:Sa_lp.Revised.basis ->
  ?max_iters:int ->
  ?deadline:float ->
  ?inject_warm_crash:bool ->
  ?pricing:Sa_lp.Model.pricing ->
  ?presolve:bool ->
  Instance.t ->
  fractional * solve_stats
(** {!solve_explicit} with the warm-start plumbing exposed: pass a basis
    cached from a previous same-shape solve to skip the cold start
    ([Revised_sparse] engine only), and read back the basis/pivot counts
    the batch engine's cache records.

    [max_iters] caps simplex pivots per phase (the engine's per-job pivot
    budget; exceeding it surfaces as [Solver_numerical]); [deadline] is an
    absolute {!Sa_util.Timing.now} timestamp enforced in the pivot loop
    ([Sa_util.Fail.Error (Timeout _)] past it);
    [inject_warm_crash] forces the warm pivot-in to fail after mutating
    state, exercising the rollback path (fault injection; [Revised_sparse]
    only); [pricing] selects the revised engine's entering-variable rule
    (default [Dantzig]); [presolve] (default [false], [Revised_sparse]
    only) runs the {!Sa_lp.Presolve} reduction/scaling pipeline before the
    solve — results come back in original coordinates via the exact
    postsolve, so deterrent prices and certificates are unchanged within
    [Tol]. *)

val scale : fractional -> float -> fractional
(** Scale every [x] (and the objective) by a factor in [\[0,1\]] — LP
    feasibility is preserved by the packing structure (Observation 2). *)
