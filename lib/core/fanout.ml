(* Domain fan-out primitive shared by the rounding, pricing, and engine
   layers.  Lives below [Rounding] in the module graph so that rounding can
   parallelize its own trials without depending on [Parallel] (which depends
   on [Rounding]).

   Since the scheduler rework this is a thin wrapper over [Pool]: work runs
   on the persistent default domain pool (spawned lazily, reused across
   calls) with dynamic chunk self-scheduling instead of the historical
   spawn-per-call static striding. *)

let default_domains = max 1 (Domain.recommended_domain_count () - 1)

let map_array ?(domains = default_domains) ?chunk f arr =
  if domains < 1 then invalid_arg "Fanout.map_array: domains must be >= 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Fanout.map_array: chunk must be >= 1"
  | _ -> ());
  Pool.map_array ~pool:(Pool.default ()) ~domains ?chunk f arr
