(* Domain fan-out primitive shared by the rounding, pricing, and engine
   layers.  Lives below [Rounding] in the module graph so that rounding can
   parallelize its own trials without depending on [Parallel] (which depends
   on [Rounding]). *)

let default_domains = max 1 (Domain.recommended_domain_count () - 1)

let map_array ?(domains = default_domains) f arr =
  if domains < 1 then invalid_arg "Fanout.map_array: domains must be >= 1";
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let d = min domains n in
    if d = 1 then Array.map f arr
    else begin
      let results = Array.make n None in
      let worker i () =
        (* strided assignment: domain i owns indices i, i+d, i+2d, … so
           heterogeneous job costs spread evenly; slots are disjoint, so no
           synchronisation is needed on [results] *)
        let j = ref i in
        while !j < n do
          results.(!j) <- Some (f arr.(!j));
          j := !j + d
        done
      in
      let handles = List.init d (fun i -> Domain.spawn (worker i)) in
      List.iter Domain.join handles;
      Array.map (function Some v -> v | None -> assert false) results
    end
  end
