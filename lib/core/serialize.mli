(** Plain-text (de)serialization of instances and allocations.

    A small line-oriented format (no external dependencies) so auctions can
    be saved, shared, and re-run: the CLI's [--save]/[--load].  The format
    is versioned; [of_string] validates everything through
    {!Instance.make}, so a loaded instance satisfies the same invariants as
    a constructed one.

    Format sketch (see [instance_to_string] output):
    {v
    specauction-instance 1
    n 4 k 2 rho 2.0
    ordering 0 1 2 3
    conflict unweighted
    edge 0 1
    end
    bidder 0 xor 2
    bid 1 5.0
    bid 3 7.5
    bidder 1 additive 1.0 2.0
    ...
    end
    v}
    Bundles are serialised as their bitmask integers. *)

val instance_to_string : Instance.t -> string

val instance_of_string : string -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val allocation_to_string : Allocation.t -> string

val allocation_of_string : string -> Allocation.t
(** Raises [Failure] on malformed input. *)

val fingerprint : Instance.t -> string
(** Hex digest of the full serialised instance — two instances share a
    fingerprint iff they serialise identically (conflict, ordering, k, ρ,
    availability, and every bid value). *)

val conflict_fingerprint : Instance.conflict -> string
(** Hex digest of the conflict structure alone.  Keys the engine's
    topology cache (ordering π, ρ estimate, neighborhood lists): two
    instances over the same (weighted) graph collide here even when their
    bidders differ. *)

val shape_fingerprint : Instance.t -> string
(** Hex digest of everything that determines the explicit LP's *layout*:
    conflict structure, ordering, k, ρ, and each bidder's availability-
    filtered support masks — but not the bid values.  Two instances with
    equal shape fingerprints build LPs with identical variable/row
    structure and constraint coefficients (only objectives differ), so a
    simplex basis cached under this key is a valid warm start
    ({!Sa_lp.Revised.solve_warm}). *)

val save_instance : string -> Instance.t -> unit
(** [save_instance path inst] writes the file. *)

val load_instance : string -> Instance.t
