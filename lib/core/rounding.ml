module Bundle = Sa_val.Bundle
module Ordering = Sa_graph.Ordering
module Graph = Sa_graph.Graph
module Bitset = Sa_graph.Bitset
module Weighted = Sa_graph.Weighted
module Prng = Sa_util.Prng
module Floats = Sa_util.Floats
module Tel = Sa_telemetry.Metrics

let m_trials = Tel.counter "core.rounding.trials"
let m_improvements = Tel.counter "core.rounding.improvements"

(* The rounding trial loops borrow the domain's LP scratch arena for their
   per-bidder weight buffers (float slots 24-31 are reserved for this
   module; see [Sa_lp.Workspace]).  Trials never run concurrently with a
   simplex solve on the same domain, and the slots are disjoint from the
   solver's in any case. *)
module Ws = Sa_lp.Workspace

let slot_weights = 24

(* Rounding stage shared by all variants: every bidder independently picks
   bundle T with probability x_{v,T} / scale_down, and the empty bundle with
   the remaining probability. *)
let tentative g ~scale_down per_bidder =
  let ws = Ws.get () in
  Array.map
    (fun cols ->
      let total = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 cols in
      let p_any = total /. scale_down in
      if p_any > 0.0 && Prng.bernoulli g p_any then begin
        let len = List.length cols in
        let weights = Ws.floats ws ~slot:slot_weights len in
        List.iteri (fun i (_, x) -> weights.(i) <- x) cols;
        fst (List.nth cols (Prng.categorical ~len g weights))
      end
      else Bundle.empty)
    per_bidder

let split_by_size per_bidder ~threshold =
  let small =
    Array.map
      (List.filter (fun (b, _) -> float_of_int (Bundle.card b) <= threshold))
      per_bidder
  in
  let large =
    Array.map
      (List.filter (fun (b, _) -> float_of_int (Bundle.card b) > threshold))
      per_bidder
  in
  (small, large)

let require_conflict inst expected name =
  match (inst.Instance.conflict, expected) with
  | Instance.Unweighted g, `Unweighted -> `G g
  | Instance.Edge_weighted wg, `Weighted -> `W wg
  | Instance.Per_channel gs, `Per_channel -> `P gs
  | Instance.Per_channel_weighted wgs, `Per_channel_weighted -> `PW wgs
  | _ -> invalid_arg (name ^ ": wrong conflict structure for this algorithm")

let better inst a b = if Allocation.value inst a >= Allocation.value inst b then a else b

(* ------------------------------------------------------------------ *)
(* Algorithm 1: unweighted conflict graphs.                            *)

let resolve_unweighted inst g tentative_alloc =
  let n = Instance.n inst in
  let pi = inst.Instance.ordering in
  let final = Array.copy tentative_alloc in
  (* bidders with a non-empty tentative bundle, as a word-packed mask: the
     per-vertex conflict check scans only the set bits of row ∧ mask *)
  let active = Graph.mask_create g in
  for v = 0 to n - 1 do
    if not (Bundle.is_empty tentative_alloc.(v)) then Bitset.add active v
  done;
  for v = 0 to n - 1 do
    if not (Bundle.is_empty tentative_alloc.(v)) then begin
      let conflicted =
        Graph.exists_row_inter g v active (fun u ->
            Ordering.precedes pi u v
            && Bundle.intersects tentative_alloc.(u) tentative_alloc.(v))
      in
      if conflicted then final.(v) <- Bundle.empty
    end
  done;
  final

let algorithm1_scaled g_rng inst frac ~scale_down =
  let graph = match require_conflict inst `Unweighted "Rounding.algorithm1" with
    | `G g -> g
    | `W _ | `P _ | `PW _ -> assert false
  in
  let n = Instance.n inst in
  let k = float_of_int inst.Instance.k in
  let per_bidder = Lp_relaxation.by_bidder frac ~n in
  let small, large = split_by_size per_bidder ~threshold:(sqrt k) in
  let run cols =
    let t = tentative g_rng ~scale_down cols in
    resolve_unweighted inst graph t
  in
  better inst (run small) (run large)

let algorithm1 g_rng inst frac =
  let k = float_of_int inst.Instance.k in
  algorithm1_scaled g_rng inst frac ~scale_down:(2.0 *. sqrt k *. inst.Instance.rho)

(* ------------------------------------------------------------------ *)
(* Algorithm 2: edge-weighted graphs, partly feasible output.          *)

let backward_shared_mass inst wg alloc v =
  let pi = inst.Instance.ordering in
  let total = ref 0.0 in
  for u = 0 to Instance.n inst - 1 do
    if
      u <> v
      && Ordering.precedes pi u v
      && Bundle.intersects alloc.(u) alloc.(v)
    then total := !total +. Weighted.wbar wg u v
  done;
  !total

let resolve_partial inst wg tentative_alloc =
  let n = Instance.n inst in
  let final = Array.copy tentative_alloc in
  for v = 0 to n - 1 do
    if not (Bundle.is_empty tentative_alloc.(v)) then
      if backward_shared_mass inst wg tentative_alloc v >= 0.5 then
        final.(v) <- Bundle.empty
  done;
  final

let algorithm2_scaled g_rng inst frac ~scale_down =
  let wg = match require_conflict inst `Weighted "Rounding.algorithm2" with
    | `W wg -> wg
    | `G _ | `P _ | `PW _ -> assert false
  in
  let n = Instance.n inst in
  let k = float_of_int inst.Instance.k in
  let per_bidder = Lp_relaxation.by_bidder frac ~n in
  let small, large = split_by_size per_bidder ~threshold:(sqrt k) in
  let run cols =
    let t = tentative g_rng ~scale_down cols in
    resolve_partial inst wg t
  in
  better inst (run small) (run large)

let algorithm2 g_rng inst frac =
  let k = float_of_int inst.Instance.k in
  algorithm2_scaled g_rng inst frac ~scale_down:(4.0 *. sqrt k *. inst.Instance.rho)

let is_partly_feasible inst alloc =
  match inst.Instance.conflict with
  | Instance.Edge_weighted wg ->
      let ok = ref true in
      Array.iteri
        (fun v bundle ->
          if not (Bundle.is_empty bundle) then
            if backward_shared_mass inst wg alloc v >= 0.5 then ok := false)
        alloc;
      !ok
  | Instance.Unweighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _
    ->
      invalid_arg "Rounding.is_partly_feasible: edge-weighted instances only"

(* ------------------------------------------------------------------ *)
(* Algorithm 3: decompose a partly feasible allocation into <= log n   *)
(* feasible candidates, keep the best.                                 *)

let algorithm3 inst alloc =
  let wg = match require_conflict inst `Weighted "Rounding.algorithm3" with
    | `W wg -> wg
    | `G _ | `P _ | `PW _ -> assert false
  in
  let n = Instance.n inst in
  let pi = inst.Instance.ordering in
  let by_rank_desc =
    List.init n (fun pos -> Ordering.vertex_at pi (n - 1 - pos))
  in
  let best = ref (Allocation.empty n) in
  let remaining = ref (Allocation.allocated_bidders alloc) in
  let continue_ = ref (!remaining <> []) in
  while !continue_ do
    (* Candidate S_i: the vertices removed from every previous pass. *)
    let si = Allocation.empty n in
    List.iter (fun v -> si.(v) <- alloc.(v)) !remaining;
    let removed = ref [] in
    (* Full conflict resolution by decreasing rank: a vertex is dropped when
       its incoming interference from vertices still present reaches 1. *)
    List.iter
      (fun v ->
        if not (Bundle.is_empty si.(v)) then begin
          let incoming = ref 0.0 in
          for u = 0 to n - 1 do
            if u <> v && Bundle.intersects si.(u) si.(v) then
              incoming := !incoming +. Weighted.wbar wg u v
          done;
          if !incoming >= 1.0 then begin
            si.(v) <- Bundle.empty;
            removed := v :: !removed
          end
        end)
      by_rank_desc;
    best := better inst !best si;
    if !removed = [] || List.length !removed >= List.length !remaining then
      continue_ := false
    else remaining := !removed;
    if !removed = [] then continue_ := false
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Asymmetric channels (Section 6): scaling 1/2kρ, per-channel graphs. *)

let resolve_asymmetric inst graphs t =
  let n = Instance.n inst in
  let k = inst.Instance.k in
  let pi = inst.Instance.ordering in
  let final = Array.copy t in
  (* per-channel masks of tentative holders: "some earlier neighbour holds
     channel j" becomes one row ∧ mask scan in G_j *)
  let holders = Array.init k (fun j -> Graph.mask_create graphs.(j)) in
  for u = 0 to n - 1 do
    Bundle.iter (fun j -> Bitset.add holders.(j) u) t.(u)
  done;
  for v = 0 to n - 1 do
    if not (Bundle.is_empty t.(v)) then begin
      let conflicted =
        Bundle.fold
          (fun j acc ->
            acc
            || Graph.exists_row_inter graphs.(j) v holders.(j) (fun u ->
                   Ordering.precedes pi u v))
          t.(v) false
      in
      if conflicted then final.(v) <- Bundle.empty
    end
  done;
  final

let algorithm_asymmetric_scaled g_rng inst frac ~scale_down =
  let graphs = match require_conflict inst `Per_channel "Rounding.algorithm_asymmetric" with
    | `P gs -> gs
    | `G _ | `W _ | `PW _ -> assert false
  in
  let n = Instance.n inst in
  let per_bidder = Lp_relaxation.by_bidder frac ~n in
  let t = tentative g_rng ~scale_down per_bidder in
  resolve_asymmetric inst graphs t

let algorithm_asymmetric g_rng inst frac =
  let k = float_of_int inst.Instance.k in
  algorithm_asymmetric_scaled g_rng inst frac
    ~scale_down:(2.0 *. k *. inst.Instance.rho)

(* ------------------------------------------------------------------ *)
(* Weighted asymmetric channels: per-channel weight functions w_j      *)
(* (Section 6, full generality).  The rounding scales by 1/4kρ; the    *)
(* partial resolution enforces the Condition-(5) analogue per channel, *)
(* and a per-channel Algorithm-3 pass makes the result feasible.       *)

(* Channel-j interference into v from tentatively allocated backward
   vertices sharing channel j. *)
let backward_channel_mass inst wgs alloc v j =
  let pi = inst.Instance.ordering in
  let total = ref 0.0 in
  for u = 0 to Instance.n inst - 1 do
    if u <> v && Ordering.precedes pi u v && Bundle.mem j alloc.(u) then
      total := !total +. Weighted.wbar wgs.(j) u v
  done;
  !total

let resolve_partial_asymmetric inst wgs t =
  let n = Instance.n inst in
  let final = Array.copy t in
  for v = 0 to n - 1 do
    if not (Bundle.is_empty t.(v)) then begin
      let violated =
        Bundle.fold
          (fun j acc -> acc || backward_channel_mass inst wgs t v j >= 0.5)
          t.(v) false
      in
      if violated then final.(v) <- Bundle.empty
    end
  done;
  final

let algorithm_asymmetric_weighted_scaled g_rng inst frac ~scale_down =
  let wgs =
    match require_conflict inst `Per_channel_weighted "Rounding.algorithm_asymmetric_weighted" with
    | `PW wgs -> wgs
    | `G _ | `W _ | `P _ -> assert false
  in
  let n = Instance.n inst in
  let per_bidder = Lp_relaxation.by_bidder frac ~n in
  let t = tentative g_rng ~scale_down per_bidder in
  resolve_partial_asymmetric inst wgs t

let algorithm_asymmetric_weighted g_rng inst frac =
  let k = float_of_int inst.Instance.k in
  algorithm_asymmetric_weighted_scaled g_rng inst frac
    ~scale_down:(4.0 *. k *. inst.Instance.rho)

(* Algorithm-3 analogue for per-channel weights: vertices by decreasing
   rank; a vertex is dropped when some channel it holds receives incoming
   interference >= 1 from the vertices still present. *)
let algorithm3_asymmetric inst alloc =
  let wgs =
    match require_conflict inst `Per_channel_weighted "Rounding.algorithm3_asymmetric" with
    | `PW wgs -> wgs
    | `G _ | `W _ | `P _ -> assert false
  in
  let n = Instance.n inst in
  let pi = inst.Instance.ordering in
  let by_rank_desc = List.init n (fun pos -> Ordering.vertex_at pi (n - 1 - pos)) in
  let incoming si v j =
    let total = ref 0.0 in
    for u = 0 to n - 1 do
      if u <> v && Bundle.mem j si.(u) then total := !total +. Weighted.wbar wgs.(j) u v
    done;
    !total
  in
  let best = ref (Allocation.empty n) in
  let remaining = ref (Allocation.allocated_bidders alloc) in
  let continue_ = ref (!remaining <> []) in
  while !continue_ do
    let si = Allocation.empty n in
    List.iter (fun v -> si.(v) <- alloc.(v)) !remaining;
    let removed = ref [] in
    List.iter
      (fun v ->
        if not (Bundle.is_empty si.(v)) then begin
          let violated =
            Bundle.fold (fun j acc -> acc || incoming si v j >= 1.0) si.(v) false
          in
          if violated then begin
            si.(v) <- Bundle.empty;
            removed := v :: !removed
          end
        end)
      by_rank_desc;
    best := better inst !best si;
    if !removed = [] || List.length !removed >= List.length !remaining then
      continue_ := false
    else remaining := !removed
  done;
  !best

(* ------------------------------------------------------------------ *)

let solve ?(trials = 8) g_rng inst frac =
  if trials < 1 then invalid_arg "Rounding.solve: trials must be >= 1";
  let one () =
    match inst.Instance.conflict with
    | Instance.Unweighted _ -> algorithm1 g_rng inst frac
    | Instance.Edge_weighted _ -> algorithm3 inst (algorithm2 g_rng inst frac)
    | Instance.Per_channel _ -> algorithm_asymmetric g_rng inst frac
    | Instance.Per_channel_weighted _ ->
        algorithm3_asymmetric inst (algorithm_asymmetric_weighted g_rng inst frac)
  in
  Tel.incr m_trials;
  let best = ref (one ()) in
  for _ = 2 to trials do
    Tel.incr m_trials;
    let cand = one () in
    if Allocation.value inst cand > Allocation.value inst !best then begin
      Tel.incr m_improvements;
      best := cand
    end
  done;
  !best

(* Parallel best-of-[trials]: one independent PRNG stream per *trial*
   (never per domain), merged in fixed index order, so the result is a
   deterministic function of [seed] alone — running with 1 or N domains
   returns byte-identical allocations. *)
let solve_par ?(domains = Fanout.default_domains) ?chunk ?(trials = 8) ~seed inst frac =
  if trials < 1 then invalid_arg "Rounding.solve_par: trials must be >= 1";
  let one t =
    let g_rng = Prng.create ~seed:(seed + (7919 * (t + 1))) in
    Tel.incr m_trials;
    match inst.Instance.conflict with
    | Instance.Unweighted _ -> algorithm1 g_rng inst frac
    | Instance.Edge_weighted _ -> algorithm3 inst (algorithm2 g_rng inst frac)
    | Instance.Per_channel _ -> algorithm_asymmetric g_rng inst frac
    | Instance.Per_channel_weighted _ ->
        algorithm3_asymmetric inst (algorithm_asymmetric_weighted g_rng inst frac)
  in
  let cands = Fanout.map_array ~domains ?chunk one (Array.init trials Fun.id) in
  let best = ref cands.(0) in
  for t = 1 to trials - 1 do
    if Allocation.value inst cands.(t) > Allocation.value inst !best then begin
      Tel.incr m_improvements;
      best := cands.(t)
    end
  done;
  !best

(* Deterministic rounding pass from explicit per-bidder uniforms (used by
   the pairwise-independence derandomization in [Derand]).  The bidder's
   bundle is picked by inverse-CDF over its columns scaled by
   [1/scale_down]. *)
let tentative_from_uniforms ~scale_down per_bidder uniforms =
  Array.mapi
    (fun v cols ->
      let u = uniforms.(v) in
      let rec pick acc = function
        | [] -> Bundle.empty
        | (bundle, x) :: rest ->
            let acc' = acc +. (x /. scale_down) in
            if u < acc' then bundle else pick acc' rest
      in
      pick 0.0 cols)
    per_bidder

let round_with_uniforms inst frac ~scale_down ~uniforms =
  if Array.length uniforms < Instance.n inst then
    invalid_arg "Rounding.round_with_uniforms: uniforms shorter than n";
  let n = Instance.n inst in
  let k = float_of_int inst.Instance.k in
  let per_bidder = Lp_relaxation.by_bidder frac ~n in
  match inst.Instance.conflict with
  | Instance.Unweighted g ->
      let small, large = split_by_size per_bidder ~threshold:(sqrt k) in
      let run cols =
        resolve_unweighted inst g (tentative_from_uniforms ~scale_down cols uniforms)
      in
      better inst (run small) (run large)
  | Instance.Edge_weighted wg ->
      let small, large = split_by_size per_bidder ~threshold:(sqrt k) in
      let run cols =
        resolve_partial inst wg (tentative_from_uniforms ~scale_down cols uniforms)
      in
      better inst (run small) (run large)
  | Instance.Per_channel gs ->
      resolve_asymmetric inst gs
        (tentative_from_uniforms ~scale_down per_bidder uniforms)
  | Instance.Per_channel_weighted wgs ->
      algorithm3_asymmetric inst
        (resolve_partial_asymmetric inst wgs
           (tentative_from_uniforms ~scale_down per_bidder uniforms))

(* Adaptive-scale rounding.  The conflict-resolution stages enforce
   feasibility (resp. Condition (5)) for ANY rounding scale; only the
   expectation analysis needs the canonical scale.  Trying a geometric
   ladder of more aggressive scales — the canonical one included — keeps
   the worst-case guarantee while often allocating far more in practice. *)
let scale_ladder canonical =
  let rec go s acc = if s <= 1.0 then 1.0 :: acc else go (s /. 2.0) (s :: acc) in
  go canonical []

let solve_adaptive ?(trials = 4) g_rng inst frac =
  if trials < 1 then invalid_arg "Rounding.solve_adaptive: trials must be >= 1";
  let k = float_of_int inst.Instance.k in
  let rho = inst.Instance.rho in
  let canonical, one =
    match inst.Instance.conflict with
    | Instance.Unweighted _ ->
        ( 2.0 *. sqrt k *. rho,
          fun scale_down -> algorithm1_scaled g_rng inst frac ~scale_down )
    | Instance.Edge_weighted _ ->
        ( 4.0 *. sqrt k *. rho,
          fun scale_down ->
            algorithm3 inst (algorithm2_scaled g_rng inst frac ~scale_down) )
    | Instance.Per_channel _ ->
        ( 2.0 *. k *. rho,
          fun scale_down -> algorithm_asymmetric_scaled g_rng inst frac ~scale_down )
    | Instance.Per_channel_weighted _ ->
        ( 4.0 *. k *. rho,
          fun scale_down ->
            algorithm3_asymmetric inst
              (algorithm_asymmetric_weighted_scaled g_rng inst frac ~scale_down) )
  in
  let best = ref (Allocation.empty (Instance.n inst)) in
  List.iter
    (fun scale_down ->
      for _ = 1 to trials do
        Tel.incr m_trials;
        let cand = one scale_down in
        if Allocation.value inst cand > Allocation.value inst !best then begin
          Tel.incr m_improvements;
          best := cand
        end
      done)
    (scale_ladder canonical);
  !best

let guarantee inst =
  let k = float_of_int inst.Instance.k in
  let rho = inst.Instance.rho in
  match inst.Instance.conflict with
  | Instance.Unweighted _ -> 8.0 *. sqrt k *. rho
  | Instance.Edge_weighted _ ->
      16.0 *. sqrt k *. rho *. Floats.log2n (Instance.n inst)
  | Instance.Per_channel _ -> 4.0 *. k *. rho
  | Instance.Per_channel_weighted _ ->
      16.0 *. k *. rho *. Floats.log2n (Instance.n inst)
