(** Domain fan-out primitive.

    [map_array f arr] behaves exactly like [Array.map f arr]; with more
    than one domain the work is strided across OCaml 5 domains and results
    land in their original slots, so the output is independent of the
    domain count (provided [f] is pure up to {!Sa_telemetry} updates, which
    are atomic and hence exact under sharding). *)

val default_domains : int
(** [recommended_domain_count () - 1], at least 1. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Rejects [domains < 1].  Defaults to {!default_domains}. *)
