(** Domain fan-out primitive.

    [map_array f arr] behaves exactly like [Array.map f arr]; with more
    than one domain the work is scheduled on the persistent {!Pool} (one
    shared set of worker domains, dynamic chunk self-scheduling plus work
    stealing) and results land in their original slots, so the output is
    independent of the domain count and chunk size (provided [f] is pure
    up to {!Sa_telemetry} updates, which are atomic and hence exact under
    sharding). *)

val default_domains : int
(** [recommended_domain_count () - 1], at least 1. *)

val map_array : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Rejects [domains < 1] and [chunk < 1].  Defaults to
    {!default_domains} and adaptive chunking.

    {b Failure contract} (inherited from {!Pool.map_array}): when
    applications of [f] raise, all items still run, and the exception of
    the lowest-index failure is re-raised with its original backtrace —
    the same failure surfaces no matter how work was scheduled.  With
    [domains = 1] the call degrades to a plain sequential [Array.map],
    where the first (= lowest-index) failure propagates directly. *)
