(* Persistent domain pool with a dynamic self-scheduling (work-stealing)
   batch scheduler.

   Every [Fanout.map_array] used to pay [Domain.spawn]/[Domain.join] per
   call and assigned indices in fixed strides, so one expensive item
   stalled its stride while sibling domains idled.  Here worker domains
   are spawned once (lazily, on the first batch that needs them), parked
   on a condition variable between batches, and items are handed out in
   chunks claimed from a shared atomic cursor — chunk size adapts to the
   remaining work, guided-self-scheduling style — with chunk splitting
   (stealing the top half of another participant's remainder) once the
   cursor runs dry.

   Determinism: scheduling decides only WHERE an item runs, never what it
   computes — [run i] writes into a preassigned slot [i] and derives any
   randomness from [i] — so results are bitwise independent of the domain
   count, the chunk size, and the steal pattern.  The scheduler's own
   telemetry (chunks claimed, steals) is timing-dependent and documented
   as such.

   Deadlock freedom: the submitter always participates in its own batch
   and never blocks waiting for a free worker, so a batch completes even
   when every pool worker is busy — in particular a nested [map_array]
   issued from inside a pool item makes progress on the submitting domain
   alone.  Waits only ever point from a submitter to the items of the
   batch it submitted (strict nesting), so there is no cycle. *)

module Tel = Sa_telemetry.Metrics

let m_batches = Tel.counter "engine.pool.batches"
let m_items = Tel.counter "engine.pool.items"
let m_chunks = Tel.counter "engine.pool.chunks"
let m_steals = Tel.counter "engine.pool.steals"
let m_spawned = Tel.counter "engine.pool.workers_spawned"
let g_workers = Tel.gauge "engine.pool.workers"

(* A participant's unfinished chunk, packed [(lo lsl 31) lor hi] into one
   atomic int so owner pops (lo side) and thief splits (hi side) are single
   CASes.  Ranges come from a strictly increasing cursor, so a packed value
   can never recur — no ABA.  Caps batches at 2^31 items. *)
let pack lo hi = (lo lsl 31) lor hi

let unpack x = (x lsr 31, x land 0x7FFFFFFF)
let empty_slot = pack 0 0
let max_items = 1 lsl 31

(* Adaptive chunks taper as work drains: take remaining/(2·participants),
   clamped to [1, 64] so early chunks amortize claim traffic and late ones
   keep the tail balanced. *)
let max_adaptive_chunk = 64

type batch = {
  total : int; (* items are the indices [start, total) of the source array *)
  run : int -> unit; (* executes one item; writes its preassigned slot *)
  cursor : int Atomic.t;
  pending : int Atomic.t;
  chunk : int option; (* fixed chunk size; [None] = adaptive *)
  width : int; (* max participants = slot count *)
  slots : int Atomic.t array;
  next_slot : int Atomic.t;
  b_chunks : int Atomic.t;
  b_steals : int Atomic.t;
  mu : Mutex.t;
  cv : Condition.t;
  mutable finished : bool;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-index failure; items keep running after one fails so the
         recorded index is deterministic *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable queue : batch list;
  mutable workers : unit Domain.t list;
  mutable nworkers : int;
  mutable stopping : bool;
}

let create () =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    queue = [];
    workers = [];
    nworkers = 0;
    stopping = false;
  }

let worker_count t =
  Mutex.lock t.lock;
  let n = t.nworkers in
  Mutex.unlock t.lock;
  n

(* ------------------------------ batch work ------------------------------- *)

let claim_slot b =
  if Atomic.get b.next_slot >= b.width then None
  else
    let s = Atomic.fetch_and_add b.next_slot 1 in
    if s < b.width then Some s else None

let rec pop_own b s =
  let x = Atomic.get b.slots.(s) in
  let lo, hi = unpack x in
  if lo >= hi then None
  else if Atomic.compare_and_set b.slots.(s) x (pack (lo + 1) hi) then Some lo
  else pop_own b s

let claim_chunk b s =
  let cur = Atomic.get b.cursor in
  if cur >= b.total then false
  else begin
    let take =
      match b.chunk with
      | Some c -> c
      | None ->
          max 1 (min max_adaptive_chunk ((b.total - cur) / (2 * b.width)))
    in
    let lo = Atomic.fetch_and_add b.cursor take in
    if lo >= b.total then false
    else begin
      Atomic.set b.slots.(s) (pack lo (min b.total (lo + take)));
      Atomic.incr b.b_chunks;
      true
    end
  end

(* Steal the top half of another participant's remainder.  Only attempted
   once the cursor is exhausted, so the extra contention is confined to the
   batch tail, where it pays for itself on skewed item costs. *)
let try_steal b s =
  let rec scan v =
    if v >= b.width then false
    else if v = s then scan (v + 1)
    else
      let x = Atomic.get b.slots.(v) in
      let lo, hi = unpack x in
      if hi - lo >= 2 then begin
        let take = (hi - lo) / 2 in
        if Atomic.compare_and_set b.slots.(v) x (pack lo (hi - take)) then begin
          Atomic.set b.slots.(s) (pack (hi - take) hi);
          Atomic.incr b.b_steals;
          true
        end
        else scan v
      end
      else scan (v + 1)
  in
  scan 0

let finish_batch t b =
  Mutex.lock t.lock;
  t.queue <- List.filter (fun b' -> b' != b) t.queue;
  Mutex.unlock t.lock;
  Mutex.lock b.mu;
  b.finished <- true;
  Condition.broadcast b.cv;
  Mutex.unlock b.mu

let exec t b i =
  (try b.run i
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock b.mu;
     (match b.failure with
     | Some (j, _, _) when j <= i -> ()
     | _ -> b.failure <- Some (i, e, bt));
     Mutex.unlock b.mu);
  if Atomic.fetch_and_add b.pending (-1) = 1 then finish_batch t b

let participate t b =
  match claim_slot b with
  | None -> ()
  | Some s ->
      let continue_ = ref true in
      while !continue_ do
        match pop_own b s with
        | Some i -> exec t b i
        | None ->
            if not (claim_chunk b s) && not (try_steal b s) then
              continue_ := false
      done

(* A batch is worth joining while it still has claimable or stealable items
   and a free participant slot.  The check races benignly with completion:
   [participate] just returns when it finds nothing. *)
let joinable b =
  Atomic.get b.next_slot < b.width
  && (Atomic.get b.cursor < b.total
     || Array.exists
          (fun slot ->
            let lo, hi = unpack (Atomic.get slot) in
            hi - lo >= 2)
          b.slots)

(* ------------------------------- workers --------------------------------- *)

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec find () =
    match List.find_opt joinable t.queue with
    | Some b -> Some b
    | None ->
        if t.stopping then None
        else begin
          Condition.wait t.cond t.lock;
          find ()
        end
  in
  match find () with
  | None -> Mutex.unlock t.lock
  | Some b ->
      Mutex.unlock t.lock;
      participate t b;
      worker_loop t

(* Lazily grow the worker set to [want] domains (the submitter is the
   extra participant, so a [domains = d] batch asks for [d - 1]). *)
let max_workers = 64

let ensure_workers t want =
  let want = min want max_workers in
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool: submitted to a shut-down pool"
  end;
  let missing = want - t.nworkers in
  if missing > 0 then begin
    Tel.add m_spawned missing;
    for _ = 1 to missing do
      t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
    done;
    t.nworkers <- t.nworkers + missing;
    Tel.set_gauge g_workers (float_of_int t.nworkers)
  end;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.cond;
  let ws = t.workers in
  t.workers <- [];
  t.nworkers <- 0;
  Mutex.unlock t.lock;
  List.iter Domain.join ws;
  Tel.set_gauge g_workers 0.0

(* ----------------------------- default pool ------------------------------ *)

(* Process-wide pool shared by [Fanout]/[Parallel].  [shutdown] on it is
   honoured — the next [default ()] transparently builds a fresh pool, so
   tests (and embedders that fork) can recycle the worker set. *)
let default_lock = Mutex.create ()
let default_pool = ref None

let default () =
  Mutex.lock default_lock;
  let t =
    match !default_pool with
    | Some t when not t.stopping -> t
    | _ ->
        let t = create () in
        default_pool := Some t;
        t
  in
  Mutex.unlock default_lock;
  t

(* ------------------------------ submission ------------------------------- *)

let map_array ?pool ?(domains = 1) ?chunk f arr =
  if domains < 1 then invalid_arg "Pool.map_array: domains must be >= 1";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.map_array: chunk must be >= 1"
  | _ -> ());
  let n = Array.length arr in
  if n = 0 then [||]
  else if n >= max_items then invalid_arg "Pool.map_array: array too large"
  else
    let d = min domains n in
    if d = 1 then Array.map f arr
    else begin
      let t = match pool with Some t -> t | None -> default () in
      (* Index 0 runs eagerly on the submitter: its result seeds the
         placeholder-free result buffer (no per-element option boxing), and
         an exception it raises propagates directly — index 0 is by
         definition the lowest failure. *)
      let r0 = f arr.(0) in
      let results = Array.make n r0 in
      let b =
        {
          total = n;
          run = (fun i -> results.(i) <- f arr.(i));
          cursor = Atomic.make 1;
          pending = Atomic.make (n - 1);
          chunk;
          width = d;
          slots = Array.init d (fun _ -> Atomic.make empty_slot);
          next_slot = Atomic.make 0;
          b_chunks = Atomic.make 0;
          b_steals = Atomic.make 0;
          mu = Mutex.create ();
          cv = Condition.create ();
          finished = false;
          failure = None;
        }
      in
      Tel.incr m_batches;
      Tel.add m_items (n - 1);
      ensure_workers t (d - 1);
      Mutex.lock t.lock;
      t.queue <- t.queue @ [ b ];
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      participate t b;
      Mutex.lock b.mu;
      while not b.finished do
        Condition.wait b.cv b.mu
      done;
      let failure = b.failure in
      Mutex.unlock b.mu;
      Tel.add m_chunks (Atomic.get b.b_chunks);
      Tel.add m_steals (Atomic.get b.b_steals);
      Sa_telemetry.Trace.add_attr "pool.chunks"
        (string_of_int (Atomic.get b.b_chunks));
      Sa_telemetry.Trace.add_attr "pool.steals"
        (string_of_int (Atomic.get b.b_steals));
      (match failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      results
    end
