module Prng = Sa_util.Prng

let default_domains = Fanout.default_domains

let map_array ?(domains = default_domains) ?chunk f arr =
  if domains < 1 then invalid_arg "Parallel.map_array: domains must be >= 1";
  Fanout.map_array ~domains ?chunk f arr

let better inst a b = if Allocation.value inst a >= Allocation.value inst b then a else b

let reduce_best inst results =
  Array.fold_left (better inst) (Allocation.empty (Instance.n inst)) results

let solve_rounding ?(domains = default_domains) ?(trials_per_domain = 4) ~seed inst
    frac =
  if domains < 1 then invalid_arg "Parallel.solve_rounding: domains must be >= 1";
  if trials_per_domain < 1 then
    invalid_arg "Parallel.solve_rounding: trials_per_domain must be >= 1";
  let worker d =
    (* each shard gets an independent deterministic stream (kept per shard
       index, not per executing domain, so results don't depend on where
       the pool runs the shard) *)
    let g = Prng.create ~seed:(seed + (1_000_003 * (d + 1))) in
    Rounding.solve_adaptive ~trials:trials_per_domain g inst frac
  in
  if domains = 1 then worker 0
  else reduce_best inst (Fanout.map_array ~domains worker (Array.init domains Fun.id))

let derand1 ?(domains = default_domains) inst frac =
  (match inst.Instance.conflict with
  | Instance.Unweighted _ -> ()
  | Instance.Edge_weighted _ | Instance.Per_channel _ | Instance.Per_channel_weighted _
    ->
      invalid_arg "Parallel.derand1: unweighted instances only");
  if domains < 1 then invalid_arg "Parallel.derand1: domains must be >= 1";
  let p = Derand.prime in
  let n = Instance.n inst in
  let k = float_of_int inst.Instance.k in
  let scale_down = 2.0 *. sqrt k *. inst.Instance.rho in
  let scan_range (a_lo, a_hi) =
    let best = ref (Allocation.empty n) in
    for a = a_lo to a_hi - 1 do
      for b = 0 to p - 1 do
        let uniforms =
          Array.init n (fun v -> float_of_int (((a * v) + b) mod p) /. float_of_int p)
        in
        let alloc = Rounding.round_with_uniforms inst frac ~scale_down ~uniforms in
        best := better inst !best alloc
      done
    done;
    !best
  in
  if domains = 1 then scan_range (0, p)
  else begin
    let chunk = (p + domains - 1) / domains in
    let ranges =
      Array.init domains (fun d -> (d * chunk, min p ((d + 1) * chunk)))
    in
    reduce_best inst (Fanout.map_array ~domains scan_range ranges)
  end
