module Prng = Sa_util.Prng

type t = { seed : int; rate : float }

let create ?(seed = 0) ~rate () =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Faultgen.create: rate must be in [0,1]";
  { seed; rate }

let seed t = t.seed
let rate t = t.rate

type site = Warm_install | Lp_solve | Round | Greedy

let site_name = function
  | Warm_install -> "warm-install"
  | Lp_solve -> "lp-solve"
  | Round -> "round"
  | Greedy -> "greedy"

(* One PRNG stream per (job, attempt), derived from the harness seed and
   nothing else — in particular not from the domain a job happens to run
   on — so the fault pattern is a pure function of the workload and
   reproducible at any [--domains].  The multipliers match the repo's
   seed-derivation idiom (distinct odd constants per axis). *)
let stream t ~job ~attempt =
  Prng.create ~seed:(t.seed + (1_000_003 * (job + 1)) + (7919 * attempt))

(* Every call draws exactly one Bernoulli, even when the caller will ignore
   the outcome, so the stream position after N sites is the same for every
   job — the fixed draw order is what keeps patterns reproducible. *)
let fires t g (_ : site) = Prng.bernoulli g t.rate

(* The synthesized failure for a fired site.  Deliberately never [Timeout]
   (so [engine.deadline_exceeded] counts only real clock expiries) and
   never anything time-dependent: the failure value itself must be
   identical across runs for the JSON-determinism guarantee. *)
let injected ~site ~job =
  match site with
  | Warm_install ->
      Sa_util.Fail.Solver_numerical
        {
          stage = "fault.warm-install";
          detail = Printf.sprintf "injected warm-basis crash (job %d)" job;
        }
  | Lp_solve ->
      Sa_util.Fail.Solver_numerical
        {
          stage = "fault.lp-solve";
          detail = Printf.sprintf "injected simplex breakdown (job %d)" job;
        }
  | Round ->
      Sa_util.Fail.Oracle_error
        { bidder = 0; detail = Printf.sprintf "injected oracle fault (job %d)" job }
  | Greedy ->
      Sa_util.Fail.Solver_numerical
        {
          stage = "fault.greedy";
          detail = Printf.sprintf "injected greedy fault (job %d)" job;
        }
