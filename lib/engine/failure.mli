(** Structured failure taxonomy of the solving pipeline — the engine-level
    re-export of {!Sa_util.Fail} (same type, same exception), so callers of
    {!Engine} can classify failures without reaching below the engine.

    Every recoverable way a job can go wrong is one constructor; the
    engine's retry/fallback logic keys off it, and {!label} gives the
    stable tag used in telemetry and JSON output. *)

type t = Sa_util.Fail.t =
  | Solver_numerical of { stage : string; detail : string }
      (** simplex breakdown: cycling / iteration limit, unexpected
          infeasible/unbounded status, singular basis *)
  | Colgen_stall of { rounds : int }
      (** column generation still finding improving columns when its round
          budget ran out *)
  | Oracle_error of { bidder : int; detail : string }
      (** a demand oracle raised *)
  | Timeout of { stage : string; elapsed_s : float }
      (** a monotonic-clock deadline expired inside [stage] *)
  | Malformed_job of { detail : string }
      (** the job itself is invalid (bad instance / algorithm mismatch) *)

exception Error of t
(** Physically the same exception as [Sa_util.Fail.Error]. *)

val label : t -> string
(** Stable short tag (["solver-numerical"], ["timeout"], ...). *)

val to_string : t -> string
val raise_ : t -> 'a
val is_timeout : t -> bool

val of_exn : stage:string -> exn -> t
(** Classify an arbitrary exception escaping [stage]; never re-raises. *)
