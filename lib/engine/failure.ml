(* The failure taxonomy lives in [Sa_util.Fail] (the bottom of the library
   graph) so the LP and column-generation layers can raise it; the engine
   re-exports it under its own name as the API callers program against. *)
include Sa_util.Fail
