(** Workload files for the batch engine: a line-oriented description of
    job batches that [auction serve] replays through {!Engine}.

    Format (one [batch] line per job family, '#' comments allowed):
    {v
    specauction-workload 1
    batch model=protocol n=18 k=3 seed=11 algorithm=adaptive trials=4 repeat=6 revalue=true
    batch model=random n=16 k=3 seed=5 algorithm=lp-round repeat=4
    end
    v}

    [repeat=r] expands into [r] jobs on the same conflict topology; with
    [revalue=true] (default) repeats keep every bidder's bundle structure
    but re-draw the bid values — the repeated-auction pattern the engine's
    warm-start cache is built for (same
    {!Sa_core.Serialize.shape_fingerprint}, different objective). *)

type model = Protocol | Disk | Sinr | Clique | Asymmetric | Random_graph

val model_name : model -> string
val model_of_name : string -> model option

type spec = {
  model : model;
  n : int;
  k : int;
  seed : int;
  algorithm : Engine.algorithm;
  trials : int;
  repeat : int;
  revalue_bids : bool;
}

val spec :
  ?model:model ->
  ?n:int ->
  ?k:int ->
  ?seed:int ->
  ?algorithm:Engine.algorithm ->
  ?trials:int ->
  ?repeat:int ->
  ?revalue_bids:bool ->
  unit ->
  spec

val revalue : seed:int -> Sa_core.Instance.t -> Sa_core.Instance.t
(** Re-draw every bid value (deterministically in [seed]) while keeping
    bundle structure, availability, conflict, ordering and ρ — the result
    has the same shape fingerprint as the input, so its LP warm-starts
    from the input's basis. *)

val to_string : spec list -> string
val of_string : string -> spec list
(** Raises [Failure] with a line-numbered message on malformed input. *)

val load : string -> spec list
val save : string -> spec list -> unit

val expand : Engine.t -> spec list -> Engine.job list
(** Materialise the job list: builds each batch's base instance (model
    [random] resolves ordering/ρ through the engine's topology cache),
    applies [revalue] to repeats, and numbers jobs sequentially from 0. *)

val demo : spec list
(** A small mixed workload used by [--demo] and the bench smoke run. *)
