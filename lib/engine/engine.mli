(** Batch auction engine: a queue of auction jobs sharded across OCaml 5
    domains, with cross-job caching of the expensive shared work.

    The repeated short-term license auctions of Hoefer–Kesselheim (arXiv
    1110.5753) re-solve near-identical instances: the conflict graph and
    ordering persist across rounds while bids change.  The engine exploits
    that structure twice:

    - {b topology cache} — keyed by {!Sa_core.Serialize.conflict_fingerprint},
      stores the inductive-independence ordering π, the measured ρ estimate,
      and the per-vertex backward neighbourhoods, so repeat-topology
      instances skip the NP-hard ρ computation ({!prepare});
    - {b basis cache} — keyed by {!Sa_core.Serialize.shape_fingerprint},
      stores the last optimal basis of the revised simplex, so repeat-shape
      LPs warm-start ({!Sa_lp.Revised.solve_warm}) instead of solving from
      scratch.

    Determinism: with [warm_start:false] every job's result depends only on
    the job itself, so batch results are byte-identical across any domain
    count and to sequential single-job runs.  With [warm_start:true] the LP
    objective is unchanged (the warm solve is certified optimal for the
    same LP) but degenerate instances may report a different optimal vertex
    depending on cache interleaving, and rounding then sees that vertex. *)

type algorithm =
  | Lp_round
  | Adaptive
  | Greedy_lp
  | Derand_seq
  | Oracle_round
      (** LP via {!Sa_core.Oracle_solver} column generation (seeded from
          the engine's cross-job column pool when enabled) + adaptive
          rounding.  [result.lp_iterations] counts colgen rounds, not
          pivots, for these jobs; the warm-start basis cache and pivot
          budget do not apply. *)

val algorithm_name : algorithm -> string
(** ["lp-round"], ["adaptive"], ["greedy-lp"], ["derand"], ["oracle"]. *)

val algorithm_of_name : string -> algorithm option

type job = private {
  id : int;
  instance : Sa_core.Instance.t;
  algorithm : algorithm;
  seed : int;
  trials : int;
  shape_key : string option;
}

val job :
  ?algorithm:algorithm ->
  ?seed:int ->
  ?trials:int ->
  ?shape_key:string ->
  id:int ->
  Sa_core.Instance.t ->
  job
(** Defaults: [Adaptive], seed 0, 4 trials.  [shape_key] must be the
    instance's {!Sa_core.Serialize.shape_fingerprint} when supplied; batch
    producers that know their jobs repeat a topology (e.g.
    {!Workload.expand}) pass it to amortise the fingerprint across the
    batch. *)

type job_timings = { lp_s : float; round_s : float; total_s : float }

(** {2 Robustness: tiers, policies}

    Every job runs through a degradation chain — LP + rounding first
    (retried on recoverable failures), then the value-greedy heuristic,
    then online first-fit in decreasing-value order — so a batch never
    aborts on a single bad job.  Each tier carries a certified
    approximation factor; the result records which tier served the job. *)

type tier =
  | Tier_lp  (** LP relaxation + rounding; factor {!Sa_core.Rounding.guarantee} *)
  | Tier_greedy  (** value-greedy fallback; factor k·(ρ+1) *)
  | Tier_online
      (** online first-fit, bidders in decreasing max-value order; factor n
          (the most valuable bidder is always served).  Never fails. *)

val tier_name : tier -> string
(** ["lp"], ["greedy"], ["online"]. *)

type policy = {
  deadline_s : float option;
      (** per-job wall-clock budget, monotonic; enforced inside the simplex
          pivot loops.  Expiry skips remaining retries (the budget is per
          job) and drops to the fallback chain, which ignores it. *)
  pivot_budget : int option;  (** max simplex pivots per LP attempt *)
  max_retries : int;
      (** additional LP attempts after the first; retries solve cold (no
          warm basis) with a fresh rounding seed *)
  fallback : bool;
      (** when false, jobs whose LP tier fails are reported with
          [tier = None] and an empty allocation instead of degrading *)
  faults : Faultgen.t option;  (** deterministic fault injection, tests only *)
  lp_pricing : Sa_lp.Model.pricing;
      (** simplex entering-variable rule for every LP this job solves —
          explicit masters and colgen masters alike (default [Dantzig];
          [Devex] trades more work per pivot for fewer pivots) *)
  lp_presolve : bool;
      (** run the {!Sa_lp.Presolve} reduction/scaling pipeline in front of
          every LP this job solves (default [false]).  Solutions, duals,
          prices and certificates come back in original coordinates via
          the exact postsolve, so results agree with the unpresolved solve
          within [Tol]. *)
}

val default_policy : policy
(** No deadline, no pivot budget, 1 retry, fallback on, no faults. *)

val policy :
  ?deadline_s:float ->
  ?pivot_budget:int ->
  ?max_retries:int ->
  ?fallback:bool ->
  ?faults:Faultgen.t ->
  ?lp_pricing:Sa_lp.Model.pricing ->
  ?lp_presolve:bool ->
  unit ->
  policy
(** Validating constructor over {!default_policy}'s defaults. *)

type result = {
  job_id : int;
  allocation : Sa_core.Allocation.t;
  welfare : float;
  lp_objective : float;  (** 0 when the LP tier never completed *)
  lp_iterations : int;  (** simplex pivots this job paid for *)
  warm_start : bool;  (** LP was warm-started from a cached basis *)
  tier : tier option;  (** [None] = failed (only with [fallback = false]) *)
  guarantee : float;
      (** certified approximation factor of the serving tier; [infinity]
          for failed jobs *)
  retries : int;  (** LP attempts beyond the first *)
  failures : Failure.t list;  (** chronological; empty on a clean solve *)
  timings : job_timings;
}

type t
(** An engine instance: configuration plus mutable caches.  Safe to share
    across domains (cache access is mutex-protected). *)

val create : ?warm_start:bool -> ?column_pool:bool -> unit -> t
(** [warm_start] (default true) enables the LP basis cache.
    [column_pool] (default true) enables the cross-job
    {!Sa_core.Oracle_solver.Column_pool} used by {!Oracle_round} jobs:
    generated columns are interned per conflict fingerprint (bounded LRU)
    and seed later same-topology colgen solves.  Like the basis cache,
    pool hit {e counts} depend on job interleaving, but the certified LP
    optimum of every job is unchanged — seeding moves colgen's starting
    point, not its fixed point.  Exact repeats (same fingerprint {e and}
    bids) reproduce the cold solve byte for byte: the seeded master holds
    the donor's full column set in generation order, so the final master
    LP is identical.  Revalued repeats agree to solver tolerance — the
    seeded master carries extra columns, so the simplex may walk a
    different arithmetic path to the same optimum. *)

val warm_start_enabled : t -> bool
val column_pool_enabled : t -> bool

type topology = {
  ordering : Sa_graph.Ordering.t;
  rho : float;
  backward : int list array;
}

val topology_of_conflict : ?key:string -> t -> Sa_core.Instance.conflict -> topology
(** Cached (ordering π, ρ, backward neighbourhoods) for a conflict
    structure: degeneracy ordering + measured ρ for unweighted graphs,
    identity ordering + weighted ρ for edge-weighted ones, and the natural
    per-channel generalisations.

    [key] overrides the cache key (default:
    {!Sa_core.Serialize.conflict_fingerprint}, which serialises the whole
    graph).  Geometric producers pass
    {!Sa_geom.Spatial.fingerprint} of the placement instead — O(n) and
    available before the conflict graph is even built.  The caller must
    guarantee the key determines the conflict structure. *)

val prepare :
  ?key:string -> t -> conflict:Sa_core.Instance.conflict -> k:int ->
  Sa_val.Valuation.t array -> Sa_core.Instance.t
(** Build an instance for fresh bidders over a (possibly already seen)
    conflict structure, reusing the cached topology when available — the
    repeated-auction entry point.  [key] as in {!topology_of_conflict}. *)

val run_job : t -> job -> result
(** [run_job_robust] under {!default_policy}: LP (revised simplex,
    warm-started when the cache has a same-shape basis) then the chosen
    allocation algorithm, seeded from [job.seed] only; one cold retry and
    the greedy/online fallback chain on failure — so it never raises on a
    solver failure. *)

val run_job_robust : t -> policy -> job -> result
(** Solve one job under an explicit robustness policy.  The degradation
    chain guarantees a feasible allocation for every job unless
    [policy.fallback] is false.  Fault-injection draws (when
    [policy.faults] is set) are a pure function of [(seed, job.id,
    attempt)], never of the executing domain. *)

type summary = {
  jobs : int;
  total_welfare : float;
  total_lp_objective : float;
  lp_iterations : int;
  warm_hits : int;
  lp_seconds : float;
  round_seconds : float;
  wall_seconds : float;
  topology_hits : int;
  topology_misses : int;
  basis_entries : int;
  served_lp : int;  (** jobs served by the LP tier *)
  served_greedy : int;
  served_online : int;
  failed : int;  (** jobs with [tier = None] (only with [fallback=false]) *)
  retries : int;  (** total LP attempts beyond the first, batch-wide *)
  deadline_hits : int;  (** total [Timeout] failures recorded *)
}

val run_batch :
  ?domains:int -> ?chunk:int -> ?policy:policy -> t -> job list ->
  result array * summary
(** Run every job (default sequentially; [domains > 1] schedules on the
    persistent domain pool via {!Sa_core.Parallel.map_array}; [chunk]
    fixes the pool's self-scheduling chunk size, default adaptive).
    [results.(i)] corresponds to the i-th job of the input list regardless
    of scheduling.  [policy] defaults to {!default_policy}. *)

val pp_summary : Format.formatter -> summary -> unit

val summary_to_json : ?extra:(string * string) list -> summary -> string
(** One JSON object (no external deps) — embedded in [BENCH_engine.json]
    and [auction serve --json].  [extra] appends [(key, json_value)] pairs
    verbatim after the summary fields (e.g. an embedded telemetry
    snapshot); keys must be plain identifiers, values already-valid
    JSON. *)

val results_to_json : result array -> string
(** JSON array with one record per job — including failed jobs, which get
    [{"status":"failed","tier":"none",...}] rather than being omitted.
    Deliberately timing-free: two runs with the same workload, seed and
    fault pattern serialise to identical bytes, the determinism contract
    [scripts/check.sh] diffs on. *)
