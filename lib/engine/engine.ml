module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Derand = Sa_core.Derand
module Parallel = Sa_core.Parallel
module Oracle_solver = Sa_core.Oracle_solver
module Serialize = Sa_core.Serialize
module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Inductive = Sa_graph.Inductive
module Valuation = Sa_val.Valuation
module Online = Sa_core.Online
module Prng = Sa_util.Prng
module Timing = Sa_util.Timing
module Tel = Sa_telemetry.Metrics
module Trace = Sa_telemetry.Trace
module Eventlog = Sa_telemetry.Eventlog

let m_jobs = Tel.counter "engine.jobs"
let m_warm_used = Tel.counter "engine.warm_used"
let m_topo_hits = Tel.counter "engine.topology.hits"
let m_topo_misses = Tel.counter "engine.topology.misses"
let m_basis_lookups = Tel.counter "engine.basis.lookups"
let m_basis_hits = Tel.counter "engine.basis.hits"
let m_retries = Tel.counter "engine.job.retries"
let m_fb_greedy = Tel.counter "engine.fallback.greedy"
let m_fb_online = Tel.counter "engine.fallback.online"
let m_deadline = Tel.counter "engine.deadline_exceeded"
let m_failed = Tel.counter "engine.job.failed"
let m_faults = Tel.counter "engine.faults.injected"
let g_topo_entries = Tel.gauge "engine.topology.entries"
let g_basis_entries = Tel.gauge "engine.basis.entries"
let h_lp = Tel.histogram "engine.job.lp.seconds"
let h_round = Tel.histogram "engine.job.round.seconds"
let h_job = Tel.histogram "engine.job.seconds"
let h_attempt = Tel.histogram "engine.attempt.seconds"
let log_src = Logs.Src.create "sa.engine" ~doc:"Batch auction engine"
module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------- job types ------------------------------ *)

type algorithm = Lp_round | Adaptive | Greedy_lp | Derand_seq | Oracle_round

let algorithm_name = function
  | Lp_round -> "lp-round"
  | Adaptive -> "adaptive"
  | Greedy_lp -> "greedy-lp"
  | Derand_seq -> "derand"
  | Oracle_round -> "oracle"

let algorithm_of_name = function
  | "lp-round" -> Some Lp_round
  | "adaptive" -> Some Adaptive
  | "greedy-lp" -> Some Greedy_lp
  | "derand" -> Some Derand_seq
  | "oracle" -> Some Oracle_round
  | _ -> None

type job = {
  id : int;
  instance : Instance.t;
  algorithm : algorithm;
  seed : int;
  trials : int;
  shape_key : string option;
      (* precomputed Serialize.shape_fingerprint; batch producers that know
         their jobs repeat a topology pay the serialisation once *)
}

let job ?(algorithm = Adaptive) ?(seed = 0) ?(trials = 4) ?shape_key ~id instance =
  if trials < 1 then invalid_arg "Engine.job: trials must be >= 1";
  { id; instance; algorithm; seed; trials; shape_key }

type job_timings = { lp_s : float; round_s : float; total_s : float }

(* ----------------------- robustness policy & tiers ----------------------- *)

type tier = Tier_lp | Tier_greedy | Tier_online

let tier_name = function
  | Tier_lp -> "lp"
  | Tier_greedy -> "greedy"
  | Tier_online -> "online"

type policy = {
  deadline_s : float option;
  pivot_budget : int option;
  max_retries : int;
  fallback : bool;
  faults : Faultgen.t option;
  lp_pricing : Sa_lp.Model.pricing;
  lp_presolve : bool;
}

let default_policy =
  { deadline_s = None; pivot_budget = None; max_retries = 1; fallback = true;
    faults = None; lp_pricing = Sa_lp.Model.Dantzig; lp_presolve = false }

let policy ?deadline_s ?pivot_budget ?(max_retries = 1) ?(fallback = true)
    ?faults ?(lp_pricing = Sa_lp.Model.Dantzig) ?(lp_presolve = false) () =
  if max_retries < 0 then invalid_arg "Engine.policy: max_retries must be >= 0";
  (match deadline_s with
  | Some s when s < 0.0 -> invalid_arg "Engine.policy: deadline_s must be >= 0"
  | _ -> ());
  (match pivot_budget with
  | Some p when p < 1 -> invalid_arg "Engine.policy: pivot_budget must be >= 1"
  | _ -> ());
  { deadline_s; pivot_budget; max_retries; fallback; faults; lp_pricing;
    lp_presolve }

type result = {
  job_id : int;
  allocation : Allocation.t;
  welfare : float;
  lp_objective : float;
  lp_iterations : int;
  warm_start : bool;
  tier : tier option;
  guarantee : float;
  retries : int;
  failures : Failure.t list;
  timings : job_timings;
}

(* -------------------------------- caches -------------------------------- *)

type topology = {
  ordering : Ordering.t;
  rho : float;
  backward : int list array;
      (* per-vertex backward neighbourhoods under [ordering] *)
}

type t = {
  warm_start : bool;
  lock : Mutex.t;
  topologies : (string, topology) Hashtbl.t;
  bases : (string, Sa_lp.Revised.basis) Hashtbl.t;
  columns : Oracle_solver.Column_pool.t option;
      (* cross-job column pool for oracle-algorithm jobs, keyed by conflict
         fingerprint (None = disabled) *)
  (* per-engine counters mirror the global telemetry registry; atomics make
     them safe to bump outside [lock] from any domain *)
  topology_hits : int Atomic.t;
  topology_misses : int Atomic.t;
  basis_lookups : int Atomic.t;
  basis_found : int Atomic.t;
}

let create ?(warm_start = true) ?(column_pool = true) () =
  {
    warm_start;
    lock = Mutex.create ();
    topologies = Hashtbl.create 16;
    bases = Hashtbl.create 64;
    columns =
      (if column_pool then Some (Oracle_solver.Column_pool.create ()) else None);
    topology_hits = Atomic.make 0;
    topology_misses = Atomic.make 0;
    basis_lookups = Atomic.make 0;
    basis_found = Atomic.make 0;
  }

let warm_start_enabled t = t.warm_start
let column_pool_enabled t = t.columns <> None

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ----------------------------- topology cache ---------------------------- *)

let rho_node_limit = 500_000

let union_graph gs =
  let n = Graph.n gs.(0) in
  let g = Graph.create n in
  Array.iter (fun gj -> Graph.iter_edges gj (fun u v -> Graph.add_edge g u v)) gs;
  g

let weighted_backward wg pi =
  let n = Weighted.n wg in
  Array.init n (fun v ->
      Ordering.before pi v |> List.filter (fun u -> Weighted.wbar wg u v > 0.0))

let compute_topology conflict =
  match conflict with
  | Instance.Unweighted g ->
      let pi, degeneracy = Inductive.degeneracy_ordering g in
      let rho =
        Float.max
          (float_of_int (max 1 degeneracy))
          (Inductive.rho_unweighted ~node_limit:rho_node_limit g pi).Inductive.rho
      in
      let backward = Array.init (Graph.n g) (Ordering.backward_neighbors pi g) in
      { ordering = pi; rho = Float.max 1.0 rho; backward }
  | Instance.Edge_weighted wg ->
      let pi = Ordering.identity (Weighted.n wg) in
      let rho = (Inductive.rho_weighted ~node_limit:rho_node_limit wg pi).Inductive.rho in
      { ordering = pi; rho = Float.max 1.0 rho; backward = weighted_backward wg pi }
  | Instance.Per_channel gs ->
      let union = union_graph gs in
      let pi, _ = Inductive.degeneracy_ordering union in
      let rho =
        Array.fold_left
          (fun acc gj ->
            Float.max acc
              (Inductive.rho_unweighted ~node_limit:rho_node_limit gj pi).Inductive.rho)
          1.0 gs
      in
      let backward = Array.init (Graph.n union) (Ordering.backward_neighbors pi union) in
      { ordering = pi; rho; backward }
  | Instance.Per_channel_weighted wgs ->
      let pi = Ordering.identity (Weighted.n wgs.(0)) in
      let rho =
        Array.fold_left
          (fun acc wg ->
            Float.max acc
              (Inductive.rho_weighted ~node_limit:rho_node_limit wg pi).Inductive.rho)
          1.0 wgs
      in
      let backward =
        Array.init (Weighted.n wgs.(0)) (fun v ->
            Ordering.before pi v
            |> List.filter (fun u ->
                   Array.exists (fun wg -> Weighted.wbar wg u v > 0.0) wgs))
      in
      { ordering = pi; rho; backward }

let topology_of_conflict ?key t conflict =
  let key =
    match key with Some k -> k | None -> Serialize.conflict_fingerprint conflict
  in
  match locked t (fun () -> Hashtbl.find_opt t.topologies key) with
  | Some topo ->
      Atomic.incr t.topology_hits;
      Tel.incr m_topo_hits;
      topo
  | None ->
      (* computed outside the lock: ρ estimation is the expensive part and
         must not serialise the other domains *)
      let topo = compute_topology conflict in
      Atomic.incr t.topology_misses;
      Tel.incr m_topo_misses;
      locked t (fun () ->
          if not (Hashtbl.mem t.topologies key) then Hashtbl.add t.topologies key topo);
      topo

let prepare ?key t ~conflict ~k bidders =
  let topo = topology_of_conflict ?key t conflict in
  Instance.make ~conflict ~k ~bidders ~ordering:topo.ordering ~rho:topo.rho

(* -------------------------------- solving ------------------------------- *)

let run_algorithm job inst frac =
  let g = Prng.create ~seed:job.seed in
  match job.algorithm with
  | Lp_round -> Rounding.solve ~trials:job.trials g inst frac
  | Adaptive | Oracle_round -> Rounding.solve_adaptive ~trials:job.trials g inst frac
  | Greedy_lp -> Greedy.from_lp inst frac
  | Derand_seq -> (
      match inst.Instance.conflict with
      | Instance.Unweighted _ -> Derand.algorithm1_derand inst frac
      | Instance.Edge_weighted _ -> Derand.algorithm23_derand inst frac
      | Instance.Per_channel _ | Instance.Per_channel_weighted _ ->
          invalid_arg "Engine: derand supports unweighted/edge-weighted instances only")

(* Certified approximation factor of the greedy fallback: the value-greedy
   rule over a ρ-inductive-independent conflict structure with k channels
   loses at most a factor k·(ρ+1) — each admitted bidder blocks at most ρ
   interference mass per channel among its successors, and splitting OPT
   per channel costs the extra k (the folklore inductive-independence
   greedy bound; cf. the paper's Section 4 greedy analysis). *)
let greedy_guarantee inst =
  float_of_int inst.Instance.k *. (inst.Instance.rho +. 1.0)

(* The online tier serves bidders in decreasing max-bundle-value order, so
   the single most valuable bidder is always considered first against an
   empty allocation and gets its best feasible bundle: welfare ≥ v_max ≥
   OPT/n.  A weak factor, but certified — and the tier cannot fail. *)
let online_order inst =
  let n = Instance.n inst in
  let value v = Valuation.max_value inst.Instance.bidders.(v) ~k:inst.Instance.k in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare (value b) (value a) with 0 -> compare a b | c -> c)
    order;
  order

let run_job_robust_impl t policy job =
  let inst = job.instance in
  let started = Timing.now () in
  Tel.incr m_jobs;
  Eventlog.emit "job_accepted"
    [
      ("algorithm", Eventlog.Str (algorithm_name job.algorithm));
      ("n", Eventlog.Int (Instance.n inst));
      ("k", Eventlog.Int inst.Instance.k);
      ("seed", Eventlog.Int job.seed);
    ];
  let deadline = Option.map (fun s -> started +. s) policy.deadline_s in
  let failures = ref [] in
  let retries = ref 0 in
  let lp_s_total = ref 0.0 in
  let record f =
    failures := f :: !failures;
    if Failure.is_timeout f then Tel.incr m_deadline
  in
  (* Draw all of an attempt's site Bernoullis up front, in the fixed order,
     so the stream position never depends on which site fires first. *)
  let attempt_faults attempt =
    match policy.faults with
    | None -> (false, false, false)
    | Some f ->
        let g = Faultgen.stream f ~job:job.id ~attempt in
        let draw site =
          let b = Faultgen.fires f g site in
          if b then begin
            Tel.incr m_faults;
            Eventlog.emit "fault_absorbed"
              [
                ("site", Eventlog.Str (Faultgen.site_name site));
                ("attempt", Eventlog.Int attempt);
              ]
          end;
          b
        in
        let warm = draw Faultgen.Warm_install in
        let lp = draw Faultgen.Lp_solve in
        let round = draw Faultgen.Round in
        (warm, lp, round)
  in
  let shape_key =
    if (not t.warm_start) || job.algorithm = Oracle_round then None
    else
      Some
        (match job.shape_key with
        | Some k -> k
        | None -> Serialize.shape_fingerprint inst)
  in
  (* Oracle jobs route the LP through colgen; with a column pool they key
     it on the conflict fingerprint (topology-only, so revalued repeats of
     the same graph still hit), computed once per job. *)
  let oracle_pool =
    match (job.algorithm, t.columns) with
    | Oracle_round, Some cp ->
        Some (cp, Serialize.conflict_fingerprint inst.Instance.conflict)
    | _ -> None
  in
  (* One LP-tier attempt.  Attempt 0 may warm-start from the basis cache;
     retries go cold (the cached basis is suspect after a failure) with a
     fresh rounding seed. *)
  let attempt_lp attempt =
    Trace.with_span ~hist:h_attempt "engine.attempt"
      ~attrs:[ ("attempt", string_of_int attempt) ]
    @@ fun () ->
    let fire_warm, fire_lp, fire_round = attempt_faults attempt in
    try
      let warm_basis =
        match shape_key with
        | Some key when attempt = 0 ->
            Atomic.incr t.basis_lookups;
            Tel.incr m_basis_lookups;
            let cached = locked t (fun () -> Hashtbl.find_opt t.bases key) in
            if cached <> None then begin
              Atomic.incr t.basis_found;
              Tel.incr m_basis_hits
            end;
            cached
        | _ -> None
      in
      if fire_lp then
        Failure.raise_ (Faultgen.injected ~site:Faultgen.Lp_solve ~job:job.id);
      let (frac, stats), lp_s =
        Timing.time (fun () ->
            match job.algorithm with
            | Oracle_round ->
                (* Column generation instead of the explicit LP.  Reported
                   [iterations] are colgen rounds (master re-solves), not
                   pivots; the per-attempt pivot budget is not threaded
                   through — the deadline is the binding control. *)
                let frac, ostats =
                  Oracle_solver.solve ~engine:Sa_lp.Model.Revised_sparse
                    ~lp_pricing:policy.lp_pricing ~presolve:policy.lp_presolve
                    ?deadline ?column_pool:oracle_pool inst
                in
                ( frac,
                  {
                    Lp.basis = None;
                    iterations = ostats.Oracle_solver.iterations;
                    warm_start_used = false;
                  } )
            | _ ->
                Lp.solve_explicit_stats ~engine:Sa_lp.Model.Revised_sparse
                  ?warm_start:warm_basis ?deadline ?max_iters:policy.pivot_budget
                  ~inject_warm_crash:fire_warm ~pricing:policy.lp_pricing
                  ~presolve:policy.lp_presolve inst)
      in
      lp_s_total := !lp_s_total +. lp_s;
      (match (shape_key, stats.Lp.basis) with
      | Some key, Some basis ->
          locked t (fun () -> Hashtbl.replace t.bases key basis)
      | _ -> ());
      if stats.Lp.warm_start_used then Tel.incr m_warm_used;
      if fire_round then
        Failure.raise_ (Faultgen.injected ~site:Faultgen.Round ~job:job.id);
      let seed = job.seed + (9176 * attempt) in
      let alloc, round_s =
        Timing.time (fun () -> run_algorithm { job with seed } inst frac)
      in
      Tel.observe h_lp lp_s;
      Tel.observe h_round round_s;
      Eventlog.emit "lp_solved"
        [
          ("attempt", Eventlog.Int attempt);
          ("objective", Eventlog.Float frac.Lp.objective);
          ("pivots", Eventlog.Int stats.Lp.iterations);
          ("warm", Eventlog.Bool stats.Lp.warm_start_used);
        ];
      Log.debug (fun m ->
          m "job %d (%s): lp %.4fs (%d pivots%s), round %.4fs" job.id
            (algorithm_name job.algorithm)
            lp_s stats.Lp.iterations
            (if stats.Lp.warm_start_used then ", warm" else "")
            round_s);
      Some (frac, stats, alloc, round_s)
    with e ->
      let f = Failure.of_exn ~stage:"engine.lp" e in
      record f;
      Log.debug (fun m ->
          m "job %d attempt %d failed: %s" job.id attempt (Failure.to_string f));
      None
  in
  let rec lp_tier attempt =
    match attempt_lp attempt with
    | Some _ as ok -> ok
    | None ->
        (* A deadline expiry dooms every further attempt (the budget is per
           job, not per attempt) and a malformed job fails identically each
           time — skip straight to the fallback chain for both. *)
        let fatal =
          match !failures with
          | (Timeout _ | Malformed_job _) :: _ -> true
          | _ -> false
        in
        if fatal || attempt >= policy.max_retries then None
        else begin
          incr retries;
          Tel.incr m_retries;
          Eventlog.emit "retry"
            [
              ("attempt", Eventlog.Int (attempt + 1));
              ( "cause",
                Eventlog.Str
                  (match !failures with f :: _ -> Failure.label f | [] -> "?")
              );
            ];
          lp_tier (attempt + 1)
        end
  in
  let finish ~alloc ~tier ~guarantee ~lp_objective ~lp_iterations ~warm_start
      ~round_s =
    let tier_label = match tier with Some tr -> tier_name tr | None -> "failed" in
    Trace.add_attr "tier" tier_label;
    Trace.add_attr "retries" (string_of_int !retries);
    Eventlog.emit "tier_chosen"
      [
        ("tier", Eventlog.Str tier_label);
        ("retries", Eventlog.Int !retries);
        ("failures", Eventlog.Int (List.length !failures));
      ];
    if tier <> None then
      Eventlog.emit "guarantee_certified"
        [
          ("tier", Eventlog.Str tier_label);
          ("factor", Eventlog.Float guarantee);
          ("welfare", Eventlog.Float (Allocation.value inst alloc));
        ];
    {
      job_id = job.id;
      allocation = alloc;
      welfare = Allocation.value inst alloc;
      lp_objective;
      lp_iterations;
      warm_start;
      tier;
      guarantee;
      retries = !retries;
      failures = List.rev !failures;
      timings =
        { lp_s = !lp_s_total; round_s; total_s = Timing.now () -. started };
    }
  in
  match lp_tier 0 with
  | Some (frac, stats, alloc, round_s) ->
      finish ~alloc ~tier:(Some Tier_lp) ~guarantee:(Rounding.guarantee inst)
        ~lp_objective:frac.Lp.objective ~lp_iterations:stats.Lp.iterations
        ~warm_start:stats.Lp.warm_start_used ~round_s
  | None when not policy.fallback ->
      Tel.incr m_failed;
      finish
        ~alloc:(Allocation.empty (Instance.n inst))
        ~tier:None ~guarantee:infinity ~lp_objective:0.0 ~lp_iterations:0
        ~warm_start:false ~round_s:0.0
  | None -> (
      (* Fallback tiers deliberately ignore the deadline: they are cheap
         (no LP) and their job is to guarantee completion. *)
      let fire_greedy =
        match policy.faults with
        | None -> false
        | Some f ->
            let g =
              Faultgen.stream f ~job:job.id ~attempt:(policy.max_retries + 1)
            in
            let b = Faultgen.fires f g Faultgen.Greedy in
            if b then begin
              Tel.incr m_faults;
              Eventlog.emit "fault_absorbed"
                [
                  ("site", Eventlog.Str (Faultgen.site_name Faultgen.Greedy));
                  ("attempt", Eventlog.Int (policy.max_retries + 1));
                ]
            end;
            b
      in
      let greedy_result =
        try
          if fire_greedy then
            Failure.raise_ (Faultgen.injected ~site:Faultgen.Greedy ~job:job.id);
          let alloc, round_s = Timing.time (fun () -> Greedy.by_value inst) in
          Some (alloc, round_s)
        with e ->
          record (Failure.of_exn ~stage:"engine.greedy" e);
          None
      in
      match greedy_result with
      | Some (alloc, round_s) ->
          Tel.incr m_fb_greedy;
          finish ~alloc ~tier:(Some Tier_greedy)
            ~guarantee:(greedy_guarantee inst) ~lp_objective:0.0
            ~lp_iterations:0 ~warm_start:false ~round_s
      | None ->
          (* Last tier: online first-fit in decreasing-value order.  Never
             injected, never raises — total by construction. *)
          Tel.incr m_fb_online;
          let r, round_s =
            Timing.time (fun () ->
                Online.first_fit inst ~order:(online_order inst))
          in
          finish ~alloc:r.Online.allocation ~tier:(Some Tier_online)
            ~guarantee:(float_of_int (Instance.n inst)) ~lp_objective:0.0
            ~lp_iterations:0 ~warm_start:false ~round_s)

(* The public entry wraps the implementation in the ambient observability
   scopes: the job's event-log scope (so nested layers' emits carry this
   job id) and a root span carrying the job's identity, to which [finish]
   attaches the chosen tier and retry count. *)
let run_job_robust t policy job =
  Eventlog.with_job job.id @@ fun () ->
  Trace.with_span ~hist:h_job "engine.job"
    ~attrs:
      [
        ("job", string_of_int job.id);
        ("algorithm", algorithm_name job.algorithm);
      ]
    (fun () -> run_job_robust_impl t policy job)

let run_job t job = run_job_robust t default_policy job

(* ------------------------------- batch runs ------------------------------ *)

type summary = {
  jobs : int;
  total_welfare : float;
  total_lp_objective : float;
  lp_iterations : int;
  warm_hits : int;
  lp_seconds : float;
  round_seconds : float;
  wall_seconds : float;
  topology_hits : int;
  topology_misses : int;
  basis_entries : int;
  served_lp : int;
  served_greedy : int;
  served_online : int;
  failed : int;
  retries : int;
  deadline_hits : int;
}

let summarize (eng : t) results ~wall =
  let acc =
    Array.fold_left
      (fun (w, o, it, wh, ls, rs) r ->
        ( w +. r.welfare,
          o +. r.lp_objective,
          it + r.lp_iterations,
          wh + (if r.warm_start then 1 else 0),
          ls +. r.timings.lp_s,
          rs +. r.timings.round_s ))
      (0.0, 0.0, 0, 0, 0.0, 0.0) results
  in
  let w, o, it, wh, ls, rs = acc in
  let count p = Array.fold_left (fun n r -> if p r then n + 1 else n) 0 results in
  let sum f = Array.fold_left (fun n r -> n + f r) 0 results in
  {
    jobs = Array.length results;
    total_welfare = w;
    total_lp_objective = o;
    lp_iterations = it;
    warm_hits = wh;
    lp_seconds = ls;
    round_seconds = rs;
    wall_seconds = wall;
    topology_hits = Atomic.get eng.topology_hits;
    topology_misses = Atomic.get eng.topology_misses;
    basis_entries = Hashtbl.length eng.bases;
    served_lp = count (fun r -> r.tier = Some Tier_lp);
    served_greedy = count (fun r -> r.tier = Some Tier_greedy);
    served_online = count (fun r -> r.tier = Some Tier_online);
    failed = count (fun r -> r.tier = None);
    retries = sum (fun r -> r.retries);
    deadline_hits =
      sum (fun r ->
          List.length (List.filter Failure.is_timeout r.failures));
  }

let publish_cache_gauges t =
  let topo, bases =
    locked t (fun () -> (Hashtbl.length t.topologies, Hashtbl.length t.bases))
  in
  Tel.set_gauge g_topo_entries (float_of_int topo);
  Tel.set_gauge g_basis_entries (float_of_int bases)

let run_batch ?(domains = 1) ?chunk ?(policy = default_policy) t jobs =
  let arr = Array.of_list jobs in
  let results, wall =
    Timing.time (fun () ->
        Parallel.map_array ~domains ?chunk (run_job_robust t policy) arr)
  in
  publish_cache_gauges t;
  let summary = summarize t results ~wall in
  Log.info (fun m ->
      m "batch: %d jobs in %.3fs (lp %.3fs, round %.3fs, warm %d/%d)"
        summary.jobs summary.wall_seconds summary.lp_seconds
        summary.round_seconds summary.warm_hits summary.jobs);
  (results, summary)

let summary_to_json ?(extra = []) s =
  let extra_fields =
    String.concat ""
      (List.map (fun (key, json) -> Printf.sprintf ",\"%s\":%s" key json) extra)
  in
  Printf.sprintf
    "{\"jobs\":%d,\"total_welfare\":%.6f,\"total_lp_objective\":%.6f,\
     \"lp_iterations\":%d,\"warm_hits\":%d,\"lp_seconds\":%.6f,\
     \"round_seconds\":%.6f,\"wall_seconds\":%.6f,\"topology_hits\":%d,\
     \"topology_misses\":%d,\"basis_entries\":%d,\"served_lp\":%d,\
     \"served_greedy\":%d,\"served_online\":%d,\"failed\":%d,\"retries\":%d,\
     \"deadline_hits\":%d%s}"
    s.jobs s.total_welfare s.total_lp_objective s.lp_iterations s.warm_hits
    s.lp_seconds s.round_seconds s.wall_seconds s.topology_hits s.topology_misses
    s.basis_entries s.served_lp s.served_greedy s.served_online s.failed
    s.retries s.deadline_hits extra_fields

(* Per-job records, timing-free so two same-seed runs serialise to the same
   bytes — the determinism contract `scripts/check.sh` diffs on.  Failed
   jobs are emitted (status "failed"), not silently dropped. *)
let results_to_json results =
  let buf = Buffer.create (64 * Array.length results) in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let status, tier =
        match r.tier with
        | None -> ("failed", "none")
        | Some tr -> ("ok", tier_name tr)
      in
      let failures =
        String.concat ","
          (List.map (fun f -> Printf.sprintf "\"%s\"" (Failure.label f)) r.failures)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"job\":%d,\"status\":\"%s\",\"tier\":\"%s\",\"welfare\":%.6f,\
            \"lp_objective\":%.6f,\"guarantee\":%s,\"retries\":%d,\
            \"failures\":[%s]}"
           r.job_id status tier r.welfare r.lp_objective
           (if Float.is_finite r.guarantee then
              Printf.sprintf "%.6f" r.guarantee
            else "null")
           r.retries failures))
    results;
  Buffer.add_char buf ']';
  Buffer.contents buf

let pp_summary fmt s =
  Format.fprintf fmt
    "jobs %d  welfare %.3f  lp-ub %.3f  pivots %d  warm-hits %d/%d@\n\
     lp %.3fs  round %.3fs  wall %.3fs  topo-cache %d hit / %d miss  bases %d@\n\
     tiers lp %d / greedy %d / online %d  failed %d  retries %d  deadline %d"
    s.jobs s.total_welfare s.total_lp_objective s.lp_iterations s.warm_hits s.jobs
    s.lp_seconds s.round_seconds s.wall_seconds s.topology_hits s.topology_misses
    s.basis_entries s.served_lp s.served_greedy s.served_online s.failed
    s.retries s.deadline_hits
