module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Derand = Sa_core.Derand
module Parallel = Sa_core.Parallel
module Serialize = Sa_core.Serialize
module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Inductive = Sa_graph.Inductive
module Prng = Sa_util.Prng
module Timing = Sa_util.Timing
module Tel = Sa_telemetry.Metrics

let m_jobs = Tel.counter "engine.jobs"
let m_warm_used = Tel.counter "engine.warm_used"
let m_topo_hits = Tel.counter "engine.topology.hits"
let m_topo_misses = Tel.counter "engine.topology.misses"
let m_basis_lookups = Tel.counter "engine.basis.lookups"
let m_basis_hits = Tel.counter "engine.basis.hits"
let g_topo_entries = Tel.gauge "engine.topology.entries"
let g_basis_entries = Tel.gauge "engine.basis.entries"
let h_lp = Tel.histogram "engine.job.lp.seconds"
let h_round = Tel.histogram "engine.job.round.seconds"
let log_src = Logs.Src.create "sa.engine" ~doc:"Batch auction engine"
module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------- job types ------------------------------ *)

type algorithm = Lp_round | Adaptive | Greedy_lp | Derand_seq

let algorithm_name = function
  | Lp_round -> "lp-round"
  | Adaptive -> "adaptive"
  | Greedy_lp -> "greedy-lp"
  | Derand_seq -> "derand"

let algorithm_of_name = function
  | "lp-round" -> Some Lp_round
  | "adaptive" -> Some Adaptive
  | "greedy-lp" -> Some Greedy_lp
  | "derand" -> Some Derand_seq
  | _ -> None

type job = {
  id : int;
  instance : Instance.t;
  algorithm : algorithm;
  seed : int;
  trials : int;
  shape_key : string option;
      (* precomputed Serialize.shape_fingerprint; batch producers that know
         their jobs repeat a topology pay the serialisation once *)
}

let job ?(algorithm = Adaptive) ?(seed = 0) ?(trials = 4) ?shape_key ~id instance =
  if trials < 1 then invalid_arg "Engine.job: trials must be >= 1";
  { id; instance; algorithm; seed; trials; shape_key }

type job_timings = { lp_s : float; round_s : float; total_s : float }

type result = {
  job_id : int;
  allocation : Allocation.t;
  welfare : float;
  lp_objective : float;
  lp_iterations : int;
  warm_start : bool;
  timings : job_timings;
}

(* -------------------------------- caches -------------------------------- *)

type topology = {
  ordering : Ordering.t;
  rho : float;
  backward : int list array;
      (* per-vertex backward neighbourhoods under [ordering] *)
}

type t = {
  warm_start : bool;
  lock : Mutex.t;
  topologies : (string, topology) Hashtbl.t;
  bases : (string, Sa_lp.Revised.basis) Hashtbl.t;
  (* per-engine counters mirror the global telemetry registry; atomics make
     them safe to bump outside [lock] from any domain *)
  topology_hits : int Atomic.t;
  topology_misses : int Atomic.t;
  basis_lookups : int Atomic.t;
  basis_found : int Atomic.t;
}

let create ?(warm_start = true) () =
  {
    warm_start;
    lock = Mutex.create ();
    topologies = Hashtbl.create 16;
    bases = Hashtbl.create 64;
    topology_hits = Atomic.make 0;
    topology_misses = Atomic.make 0;
    basis_lookups = Atomic.make 0;
    basis_found = Atomic.make 0;
  }

let warm_start_enabled t = t.warm_start

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ----------------------------- topology cache ---------------------------- *)

let rho_node_limit = 500_000

let union_graph gs =
  let n = Graph.n gs.(0) in
  let g = Graph.create n in
  Array.iter (fun gj -> Graph.iter_edges gj (fun u v -> Graph.add_edge g u v)) gs;
  g

let weighted_backward wg pi =
  let n = Weighted.n wg in
  Array.init n (fun v ->
      Ordering.before pi v |> List.filter (fun u -> Weighted.wbar wg u v > 0.0))

let compute_topology conflict =
  match conflict with
  | Instance.Unweighted g ->
      let pi, degeneracy = Inductive.degeneracy_ordering g in
      let rho =
        Float.max
          (float_of_int (max 1 degeneracy))
          (Inductive.rho_unweighted ~node_limit:rho_node_limit g pi).Inductive.rho
      in
      let backward = Array.init (Graph.n g) (Ordering.backward_neighbors pi g) in
      { ordering = pi; rho = Float.max 1.0 rho; backward }
  | Instance.Edge_weighted wg ->
      let pi = Ordering.identity (Weighted.n wg) in
      let rho = (Inductive.rho_weighted ~node_limit:rho_node_limit wg pi).Inductive.rho in
      { ordering = pi; rho = Float.max 1.0 rho; backward = weighted_backward wg pi }
  | Instance.Per_channel gs ->
      let union = union_graph gs in
      let pi, _ = Inductive.degeneracy_ordering union in
      let rho =
        Array.fold_left
          (fun acc gj ->
            Float.max acc
              (Inductive.rho_unweighted ~node_limit:rho_node_limit gj pi).Inductive.rho)
          1.0 gs
      in
      let backward = Array.init (Graph.n union) (Ordering.backward_neighbors pi union) in
      { ordering = pi; rho; backward }
  | Instance.Per_channel_weighted wgs ->
      let pi = Ordering.identity (Weighted.n wgs.(0)) in
      let rho =
        Array.fold_left
          (fun acc wg ->
            Float.max acc
              (Inductive.rho_weighted ~node_limit:rho_node_limit wg pi).Inductive.rho)
          1.0 wgs
      in
      let backward =
        Array.init (Weighted.n wgs.(0)) (fun v ->
            Ordering.before pi v
            |> List.filter (fun u ->
                   Array.exists (fun wg -> Weighted.wbar wg u v > 0.0) wgs))
      in
      { ordering = pi; rho; backward }

let topology_of_conflict ?key t conflict =
  let key =
    match key with Some k -> k | None -> Serialize.conflict_fingerprint conflict
  in
  match locked t (fun () -> Hashtbl.find_opt t.topologies key) with
  | Some topo ->
      Atomic.incr t.topology_hits;
      Tel.incr m_topo_hits;
      topo
  | None ->
      (* computed outside the lock: ρ estimation is the expensive part and
         must not serialise the other domains *)
      let topo = compute_topology conflict in
      Atomic.incr t.topology_misses;
      Tel.incr m_topo_misses;
      locked t (fun () ->
          if not (Hashtbl.mem t.topologies key) then Hashtbl.add t.topologies key topo);
      topo

let prepare ?key t ~conflict ~k bidders =
  let topo = topology_of_conflict ?key t conflict in
  Instance.make ~conflict ~k ~bidders ~ordering:topo.ordering ~rho:topo.rho

(* -------------------------------- solving ------------------------------- *)

let run_algorithm job inst frac =
  let g = Prng.create ~seed:job.seed in
  match job.algorithm with
  | Lp_round -> Rounding.solve ~trials:job.trials g inst frac
  | Adaptive -> Rounding.solve_adaptive ~trials:job.trials g inst frac
  | Greedy_lp -> Greedy.from_lp inst frac
  | Derand_seq -> (
      match inst.Instance.conflict with
      | Instance.Unweighted _ -> Derand.algorithm1_derand inst frac
      | Instance.Edge_weighted _ -> Derand.algorithm23_derand inst frac
      | Instance.Per_channel _ | Instance.Per_channel_weighted _ ->
          invalid_arg "Engine: derand supports unweighted/edge-weighted instances only")

let run_job t job =
  let inst = job.instance in
  let started = Timing.now () in
  Tel.incr m_jobs;
  let warm =
    if not t.warm_start then None
    else begin
      let key =
        match job.shape_key with
        | Some k -> k
        | None -> Serialize.shape_fingerprint inst
      in
      Atomic.incr t.basis_lookups;
      Tel.incr m_basis_lookups;
      let cached = locked t (fun () -> Hashtbl.find_opt t.bases key) in
      if cached <> None then begin
        Atomic.incr t.basis_found;
        Tel.incr m_basis_hits
      end;
      Some (key, cached)
    end
  in
  let (frac, stats), lp_s =
    Timing.time (fun () ->
        Lp.solve_explicit_stats ~engine:Sa_lp.Model.Revised_sparse
          ?warm_start:(match warm with Some (_, b) -> b | None -> None)
          inst)
  in
  (match (warm, stats.Lp.basis) with
  | Some (key, _), Some basis ->
      locked t (fun () -> Hashtbl.replace t.bases key basis)
  | _ -> ());
  if stats.Lp.warm_start_used then Tel.incr m_warm_used;
  let alloc, round_s = Timing.time (fun () -> run_algorithm job inst frac) in
  Tel.observe h_lp lp_s;
  Tel.observe h_round round_s;
  Log.debug (fun m ->
      m "job %d (%s): lp %.4fs (%d pivots%s), round %.4fs" job.id
        (algorithm_name job.algorithm)
        lp_s stats.Lp.iterations
        (if stats.Lp.warm_start_used then ", warm" else "")
        round_s);
  {
    job_id = job.id;
    allocation = alloc;
    welfare = Allocation.value inst alloc;
    lp_objective = frac.Lp.objective;
    lp_iterations = stats.Lp.iterations;
    warm_start = stats.Lp.warm_start_used;
    timings = { lp_s; round_s; total_s = Timing.now () -. started };
  }

(* ------------------------------- batch runs ------------------------------ *)

type summary = {
  jobs : int;
  total_welfare : float;
  total_lp_objective : float;
  lp_iterations : int;
  warm_hits : int;
  lp_seconds : float;
  round_seconds : float;
  wall_seconds : float;
  topology_hits : int;
  topology_misses : int;
  basis_entries : int;
}

let summarize (eng : t) results ~wall =
  let acc =
    Array.fold_left
      (fun (w, o, it, wh, ls, rs) r ->
        ( w +. r.welfare,
          o +. r.lp_objective,
          it + r.lp_iterations,
          wh + (if r.warm_start then 1 else 0),
          ls +. r.timings.lp_s,
          rs +. r.timings.round_s ))
      (0.0, 0.0, 0, 0, 0.0, 0.0) results
  in
  let w, o, it, wh, ls, rs = acc in
  {
    jobs = Array.length results;
    total_welfare = w;
    total_lp_objective = o;
    lp_iterations = it;
    warm_hits = wh;
    lp_seconds = ls;
    round_seconds = rs;
    wall_seconds = wall;
    topology_hits = Atomic.get eng.topology_hits;
    topology_misses = Atomic.get eng.topology_misses;
    basis_entries = Hashtbl.length eng.bases;
  }

let publish_cache_gauges t =
  let topo, bases =
    locked t (fun () -> (Hashtbl.length t.topologies, Hashtbl.length t.bases))
  in
  Tel.set_gauge g_topo_entries (float_of_int topo);
  Tel.set_gauge g_basis_entries (float_of_int bases)

let run_batch ?(domains = 1) t jobs =
  let arr = Array.of_list jobs in
  let results, wall =
    Timing.time (fun () -> Parallel.map_array ~domains (run_job t) arr)
  in
  publish_cache_gauges t;
  let summary = summarize t results ~wall in
  Log.info (fun m ->
      m "batch: %d jobs in %.3fs (lp %.3fs, round %.3fs, warm %d/%d)"
        summary.jobs summary.wall_seconds summary.lp_seconds
        summary.round_seconds summary.warm_hits summary.jobs);
  (results, summary)

let summary_to_json ?(extra = []) s =
  let extra_fields =
    String.concat ""
      (List.map (fun (key, json) -> Printf.sprintf ",\"%s\":%s" key json) extra)
  in
  Printf.sprintf
    "{\"jobs\":%d,\"total_welfare\":%.6f,\"total_lp_objective\":%.6f,\
     \"lp_iterations\":%d,\"warm_hits\":%d,\"lp_seconds\":%.6f,\
     \"round_seconds\":%.6f,\"wall_seconds\":%.6f,\"topology_hits\":%d,\
     \"topology_misses\":%d,\"basis_entries\":%d%s}"
    s.jobs s.total_welfare s.total_lp_objective s.lp_iterations s.warm_hits
    s.lp_seconds s.round_seconds s.wall_seconds s.topology_hits s.topology_misses
    s.basis_entries extra_fields

let pp_summary fmt s =
  Format.fprintf fmt
    "jobs %d  welfare %.3f  lp-ub %.3f  pivots %d  warm-hits %d/%d@\n\
     lp %.3fs  round %.3fs  wall %.3fs  topo-cache %d hit / %d miss  bases %d"
    s.jobs s.total_welfare s.total_lp_objective s.lp_iterations s.warm_hits s.jobs
    s.lp_seconds s.round_seconds s.wall_seconds s.topology_hits s.topology_misses
    s.basis_entries
