module Prng = Sa_util.Prng
module Instance = Sa_core.Instance
module Valuation = Sa_val.Valuation
module Generators = Sa_graph.Generators
module Workloads = Sa_exp.Workloads

(* ------------------------------- revaluing ------------------------------- *)

let jitter g v = v *. Prng.uniform_in g 0.6 1.4

let revalue_valuation g = function
  | Valuation.Xor bids -> Valuation.Xor (List.map (fun (b, v) -> (b, jitter g v)) bids)
  | Valuation.Additive vs -> Valuation.Additive (Array.map (jitter g) vs)
  | Valuation.Unit_demand vs -> Valuation.Unit_demand (Array.map (jitter g) vs)
  | Valuation.Symmetric f ->
      (* one factor for the whole curve keeps it a valid concave profile *)
      let s = Prng.uniform_in g 0.6 1.4 in
      Valuation.Symmetric (Array.map (fun v -> v *. s) f)
  | Valuation.Budget_additive { values; budget } ->
      let s = Prng.uniform_in g 0.6 1.4 in
      Valuation.Budget_additive
        { values = Array.map (fun v -> v *. s) values; budget = budget *. s }
  | Valuation.Or_bids bids ->
      Valuation.Or_bids (List.map (fun (b, v) -> (b, jitter g v)) bids)

let revalue ~seed inst =
  let g = Prng.create ~seed in
  let bidders = Array.map (revalue_valuation g) inst.Instance.bidders in
  let fresh =
    Instance.make ~conflict:inst.Instance.conflict ~k:inst.Instance.k ~bidders
      ~ordering:inst.Instance.ordering ~rho:inst.Instance.rho
  in
  Instance.with_available fresh inst.Instance.available

(* --------------------------------- specs --------------------------------- *)

type model = Protocol | Disk | Sinr | Clique | Asymmetric | Random_graph

let model_name = function
  | Protocol -> "protocol"
  | Disk -> "disk"
  | Sinr -> "sinr"
  | Clique -> "clique"
  | Asymmetric -> "asymmetric"
  | Random_graph -> "random"

let model_of_name = function
  | "protocol" -> Some Protocol
  | "disk" -> Some Disk
  | "sinr" -> Some Sinr
  | "clique" -> Some Clique
  | "asymmetric" -> Some Asymmetric
  | "random" -> Some Random_graph
  | _ -> None

type spec = {
  model : model;
  n : int;
  k : int;
  seed : int;
  algorithm : Engine.algorithm;
  trials : int;
  repeat : int;
  revalue_bids : bool;
}

let spec ?(model = Protocol) ?(n = 20) ?(k = 3) ?(seed = 1) ?(algorithm = Engine.Adaptive)
    ?(trials = 4) ?(repeat = 1) ?(revalue_bids = true) () =
  if n < 1 || k < 1 || trials < 1 || repeat < 1 then
    invalid_arg "Workload.spec: n, k, trials, repeat must be >= 1";
  { model; n; k; seed; algorithm; trials; repeat; revalue_bids }

(* ------------------------------ file format ------------------------------ *)

let version = 1

let spec_to_line s =
  Printf.sprintf "batch model=%s n=%d k=%d seed=%d algorithm=%s trials=%d repeat=%d revalue=%b"
    (model_name s.model) s.n s.k s.seed
    (Engine.algorithm_name s.algorithm)
    s.trials s.repeat s.revalue_bids

let to_string specs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "specauction-workload %d\n" version);
  List.iter
    (fun s ->
      Buffer.add_string buf (spec_to_line s);
      Buffer.add_char buf '\n')
    specs;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let fail line msg = failwith (Printf.sprintf "Workload: line %d: %s" line msg)

let parse_spec lineno words =
  let get key of_string fallback =
    let prefix = key ^ "=" in
    match
      List.find_opt (fun w -> String.length w > String.length prefix
                              && String.sub w 0 (String.length prefix) = prefix) words
    with
    | None -> (
        match fallback with
        | Some v -> v
        | None -> fail lineno (Printf.sprintf "missing %s=..." key))
    | Some w -> (
        let raw = String.sub w (String.length prefix)
                    (String.length w - String.length prefix) in
        match of_string raw with
        | Some v -> v
        | None -> fail lineno (Printf.sprintf "bad value for %s: %s" key raw))
  in
  let int_k = int_of_string_opt and bool_k = bool_of_string_opt in
  {
    model = get "model" model_of_name None;
    n = get "n" int_k None;
    k = get "k" int_k None;
    seed = get "seed" int_k (Some 1);
    algorithm = get "algorithm" Engine.algorithm_of_name (Some Engine.Adaptive);
    trials = get "trials" int_k (Some 4);
    repeat = get "repeat" int_k (Some 1);
    revalue_bids = get "revalue" bool_k (Some true);
  }

let of_string text =
  let lines = String.split_on_char '\n' text in
  let specs = ref [] and seen_header = ref false and seen_end = ref false in
  List.iteri
    (fun i raw ->
      let line = String.trim raw in
      let lineno = i + 1 in
      if line = "" || line.[0] = '#' || !seen_end then ()
      else if not !seen_header then begin
        match String.split_on_char ' ' line with
        | [ "specauction-workload"; v ] when int_of_string_opt v = Some version ->
            seen_header := true
        | _ -> fail lineno "bad header (expected 'specauction-workload 1')"
      end
      else if line = "end" then seen_end := true
      else
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | "batch" :: rest -> specs := parse_spec lineno rest :: !specs
        | _ -> fail lineno "expected 'batch key=value ...' or 'end'")
    lines;
  if not !seen_header then failwith "Workload: empty input";
  if not !seen_end then failwith "Workload: missing 'end'";
  List.rev !specs

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

let save path specs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string specs))

(* ------------------------------- expansion ------------------------------- *)

let base_instance engine s =
  match s.model with
  | Protocol ->
      (* geometric models key the engine's topology cache on the O(n)
         placement fingerprint instead of serialising the conflict graph *)
      let g, _, conflict, key = Workloads.protocol_conflict ~seed:s.seed ~n:s.n () in
      let bidders = Workloads.bidders g ~n:s.n ~k:s.k ~profile:Workloads.Xor_small in
      Engine.prepare engine ~key ~conflict ~k:s.k bidders
  | Disk ->
      let g, _, conflict, key = Workloads.disk_conflict ~seed:s.seed ~n:s.n () in
      let bidders = Workloads.bidders g ~n:s.n ~k:s.k ~profile:Workloads.Xor_small in
      Engine.prepare engine ~key ~conflict ~k:s.k bidders
  | Sinr ->
      fst
        (Workloads.sinr_fixed_instance ~seed:s.seed ~n:s.n ~k:s.k
           ~scheme:Sa_wireless.Sinr.Uniform ())
  | Clique -> Workloads.clique_instance ~seed:s.seed ~n:s.n ~k:s.k ()
  | Asymmetric -> Workloads.asymmetric_instance ~seed:s.seed ~n:s.n ~k:s.k ~d:4
  | Random_graph ->
      (* ordering and ρ come from the engine's topology cache: repeated
         batches over the same (seed, n) share the expensive ρ estimate *)
      let g = Prng.create ~seed:s.seed in
      let graph = Generators.random_bounded_degree g ~n:s.n ~d:4 in
      let bidders = Workloads.bidders g ~n:s.n ~k:s.k ~profile:Workloads.Xor_small in
      Engine.prepare engine ~conflict:(Instance.Unweighted graph) ~k:s.k bidders

let expand engine specs =
  let next_id = ref 0 in
  List.concat_map
    (fun s ->
      let base = base_instance engine s in
      (* [revalue] preserves the LP shape, so one fingerprint serves the
         whole batch *)
      let shape_key = Sa_core.Serialize.shape_fingerprint base in
      List.init s.repeat (fun i ->
          let inst =
            if i = 0 || not s.revalue_bids then base
            else revalue ~seed:(s.seed + (7919 * i)) base
          in
          let id = !next_id in
          incr next_id;
          Engine.job ~algorithm:s.algorithm ~seed:(s.seed + i) ~trials:s.trials
            ~shape_key ~id inst))
    specs

let demo =
  [
    spec ~model:Protocol ~n:18 ~k:3 ~seed:11 ~algorithm:Engine.Adaptive ~repeat:6 ();
    spec ~model:Random_graph ~n:16 ~k:3 ~seed:5 ~algorithm:Engine.Lp_round ~repeat:4 ();
    spec ~model:Random_graph ~n:16 ~k:3 ~seed:5 ~algorithm:Engine.Greedy_lp ~repeat:2 ();
    spec ~model:Sinr ~n:12 ~k:2 ~seed:3 ~algorithm:Engine.Adaptive ~repeat:3 ();
  ]
