(** Deterministic fault injection for the batch engine.

    A harness is a (seed, rate) pair.  Each job attempt gets its own PRNG
    stream derived from [(seed, job id, attempt)] — never from the domain
    the job runs on — and each injection site draws exactly one Bernoulli
    from that stream in a fixed order.  Consequently the full fault
    pattern is a pure function of the workload: identical across runs,
    across [--domains] values, and across retries of *other* jobs.

    Sites map to the stages of {!Engine.run_job}: [Warm_install] forces
    the warm-basis crash pivot-in to roll back ({!Sa_lp.Revised.solve_warm}'s
    [inject_warm_crash]), [Lp_solve] and [Round] raise a synthesized
    {!Failure.t} before the LP solve / rounding stage, and [Greedy] fails
    the greedy fallback tier so the online tier is exercised.  The online
    tier is never injected — every job terminates with a feasible
    allocation no matter the rate. *)

type t

val create : ?seed:int -> rate:float -> unit -> t
(** [rate] is the per-site Bernoulli probability, in [\[0,1\]];
    [invalid_arg] otherwise.  Default seed 0. *)

val seed : t -> int
val rate : t -> float

type site = Warm_install | Lp_solve | Round | Greedy

val site_name : site -> string

val stream : t -> job:int -> attempt:int -> Sa_util.Prng.t
(** The PRNG stream for one job attempt. *)

val fires : t -> Sa_util.Prng.t -> site -> bool
(** Draw the site's Bernoulli from the stream.  Always consumes exactly
    one draw, so callers must invoke it for every site in the fixed order
    even when an earlier outcome already decided the attempt's fate. *)

val injected : site:site -> job:int -> Sa_util.Fail.t
(** The synthesized failure for a fired site — deterministic (no clocks),
    and never {!Sa_util.Fail.Timeout} so deadline telemetry counts only
    real expiries. *)
