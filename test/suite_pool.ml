(* Tests for the persistent domain pool scheduler and the cross-job column
   pool: bitwise result parity at any (domains, chunk), deterministic
   lowest-index failure reporting, pool restart after shutdown, nested
   batches, and seeded-vs-cold colgen objective equality. *)

module Prng = Sa_util.Prng
module Pool = Sa_core.Pool
module Fanout = Sa_core.Fanout
module Bundle = Sa_val.Bundle
module Instance = Sa_core.Instance
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Oracle = Sa_core.Oracle_solver
module Serialize = Sa_core.Serialize
module Workloads = Sa_exp.Workloads
module Engine = Sa_engine.Engine
module Workload = Sa_engine.Workload
module Eventlog = Sa_telemetry.Eventlog

let schedules =
  (* every (domains, chunk) combination the acceptance criteria name *)
  List.concat_map
    (fun d -> List.map (fun c -> (d, c)) [ Some 1; Some 8; None ])
    [ 1; 2; 4 ]

let schedule_label (d, c) =
  Printf.sprintf "d%d/%s" d
    (match c with Some c -> string_of_int c | None -> "adaptive")

(* ---------- scheduler parity ---------------------------------------------- *)

(* map_array must be bitwise Array.map for any schedule, including when the
   per-item work is derived from the index (the PRNG-stream convention). *)
let prop_map_array_parity =
  QCheck.Test.make ~name:"map_array bitwise parity at any (domains, chunk)"
    ~count:30
    QCheck.(pair small_nat (int_bound 1000))
    (fun (seed, n) ->
      let arr = Array.init n (fun i -> i + seed) in
      let f x =
        let g = Prng.create ~seed:(x * 7919) in
        Prng.float g 1.0
      in
      let expected = Array.map f arr in
      List.for_all
        (fun (domains, chunk) ->
          Fanout.map_array ~domains ?chunk f arr = expected)
        schedules)

let test_map_array_skewed_parity () =
  (* heavily skewed item costs force actual stealing; results must not
     care *)
  let arr = Array.init 64 Fun.id in
  let f i =
    let spins = if i mod 16 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for j = 1 to spins do
      acc := (!acc + (i * j)) land 0xFFFF
    done;
    !acc
  in
  let expected = Array.map f arr in
  List.iter
    (fun sched ->
      let d, c = sched in
      Alcotest.(check (array int))
        (schedule_label sched) expected
        (Fanout.map_array ~domains:d ?chunk:c f arr))
    schedules

let test_lowest_index_failure () =
  (* several items fail; the reported exception must be the lowest index
     regardless of scheduling.  On the pool path (domains >= 2) every item
     runs to completion before the batch reports; the domains = 1 fallback
     is plain sequential Array.map and stops at the first failure. *)
  let ran = Array.make 200 false in
  List.iter
    (fun (domains, chunk) ->
      Array.fill ran 0 (Array.length ran) false;
      let f i =
        ran.(i) <- true;
        if i mod 37 = 5 then failwith (Printf.sprintf "item %d" i);
        i
      in
      (match
         Fanout.map_array ~domains ?chunk f (Array.init 200 Fun.id)
       with
      | _ -> Alcotest.fail "expected a failure"
      | exception Failure msg ->
          Alcotest.(check string)
            (schedule_label (domains, chunk))
            "item 5" msg);
      if domains >= 2 then
        Alcotest.(check bool)
          (schedule_label (domains, chunk) ^ " all items ran")
          true
          (Array.for_all Fun.id ran))
    schedules

let test_validation () =
  Alcotest.check_raises "bad domains"
    (Invalid_argument "Fanout.map_array: domains must be >= 1") (fun () ->
      ignore (Fanout.map_array ~domains:0 Fun.id [| 1 |]));
  Alcotest.check_raises "bad chunk"
    (Invalid_argument "Fanout.map_array: chunk must be >= 1") (fun () ->
      ignore (Fanout.map_array ~domains:2 ~chunk:0 Fun.id [| 1; 2 |]))

let test_pool_restart_after_shutdown () =
  let before = Fanout.map_array ~domains:4 (fun i -> i * i) (Array.init 50 Fun.id) in
  Pool.shutdown (Pool.default ());
  Alcotest.(check int) "workers joined" 0 (Pool.worker_count (Pool.default ()));
  let after = Fanout.map_array ~domains:4 (fun i -> i * i) (Array.init 50 Fun.id) in
  Alcotest.(check (array int)) "restarted pool agrees" before after;
  Alcotest.check_raises "explicit shut-down pool rejects work"
    (Invalid_argument "Pool: submitted to a shut-down pool") (fun () ->
      let p = Pool.create () in
      Pool.shutdown p;
      ignore (Pool.map_array ~pool:p ~domains:2 Fun.id [| 1; 2; 3 |]))

let test_nested_map_array () =
  (* rounding-style fan-out inside a pool item: must complete even though
     every worker may be busy with the outer batch *)
  let inst = Workloads.protocol_instance ~seed:3 ~n:12 ~k:2 () in
  let frac = Lp.solve_explicit inst in
  let outer =
    Fanout.map_array ~domains:4
      (fun seed ->
        let inner = Rounding.solve_par ~domains:4 ~trials:4 ~seed inst frac in
        Sa_core.Allocation.value inst inner)
      (Array.init 8 Fun.id)
  in
  let seq =
    Array.init 8 (fun seed ->
        Sa_core.Allocation.value inst
          (Rounding.solve_par ~domains:1 ~trials:4 ~seed inst frac))
  in
  Alcotest.(check (array (float 0.0))) "nested = sequential" seq outer

(* ---------- engine-level parity ------------------------------------------- *)

let parity_specs =
  [
    Workload.spec ~model:Workload.Random_graph ~n:14 ~k:2 ~seed:9
      ~algorithm:Engine.Adaptive ~repeat:3 ();
    Workload.spec ~model:Workload.Random_graph ~n:12 ~k:2 ~seed:4
      ~algorithm:Engine.Lp_round ~repeat:2 ();
  ]

let run_batch_json ~domains ~chunk =
  let engine = Engine.create ~warm_start:false () in
  let jobs = Workload.expand engine parity_specs in
  let log = Eventlog.create () in
  Eventlog.install (Some log);
  Fun.protect
    ~finally:(fun () -> Eventlog.install None)
    (fun () ->
      let results, _ = Engine.run_batch ~domains ?chunk engine jobs in
      (Engine.results_to_json results, Eventlog.to_jsonl log))

let test_engine_parity_across_schedules () =
  let reference = run_batch_json ~domains:1 ~chunk:None in
  List.iter
    (fun sched ->
      let d, c = sched in
      let results, events = run_batch_json ~domains:d ~chunk:c in
      let ref_results, ref_events = reference in
      Alcotest.(check string)
        (schedule_label sched ^ " results bytes")
        ref_results results;
      Alcotest.(check string)
        (schedule_label sched ^ " event-log bytes")
        ref_events events)
    schedules

(* qcheck over seeds: Engine.run results and event logs are bitwise equal
   across domains 1/2/4 x chunk {1, 8, adaptive} for arbitrary workloads *)
let prop_engine_parity =
  QCheck.Test.make ~name:"engine batch bitwise parity (qcheck seeds)" ~count:6
    QCheck.(int_bound 1000)
    (fun seed ->
      let specs =
        [
          Workload.spec ~model:Workload.Random_graph ~n:10 ~k:2 ~seed:(seed + 1)
            ~algorithm:Engine.Adaptive ~repeat:2 ();
        ]
      in
      let run ~domains ~chunk =
        let engine = Engine.create ~warm_start:false () in
        let jobs = Workload.expand engine specs in
        let log = Eventlog.create () in
        Eventlog.install (Some log);
        Fun.protect
          ~finally:(fun () -> Eventlog.install None)
          (fun () ->
            let results, _ = Engine.run_batch ~domains ?chunk engine jobs in
            (Engine.results_to_json results, Eventlog.to_jsonl log))
      in
      let reference = run ~domains:1 ~chunk:None in
      List.for_all
        (fun (domains, chunk) -> run ~domains ~chunk = reference)
        schedules)

(* ---------- cross-job column pool ----------------------------------------- *)

let test_column_pool_hit_matches_cold () =
  let inst = Workloads.protocol_instance ~seed:17 ~n:14 ~k:3 () in
  let key = Serialize.conflict_fingerprint inst.Instance.conflict in
  let cold_frac, _cold_stats = Oracle.solve inst in
  let pool = Oracle.Column_pool.create () in
  let first_frac, first_stats = Oracle.solve ~column_pool:(pool, key) inst in
  Alcotest.(check int) "first solve seeds nothing" 0 first_stats.Oracle.seeded_columns;
  Alcotest.(check int) "one miss" 1 (Oracle.Column_pool.miss_count pool);
  let warm_frac, warm_stats = Oracle.solve ~column_pool:(pool, key) inst in
  Alcotest.(check int) "one hit" 1 (Oracle.Column_pool.hit_count pool);
  Alcotest.(check bool) "columns were seeded" true
    (warm_stats.Oracle.seeded_columns > 0);
  Alcotest.(check bool)
    (Printf.sprintf "rounds cut or equal (%d -> %d)" first_stats.Oracle.iterations
       warm_stats.Oracle.iterations)
    true
    (warm_stats.Oracle.iterations <= first_stats.Oracle.iterations);
  (* certified objective must be bitwise identical, seeded or not *)
  Alcotest.(check int64) "seeded objective bitwise = cold"
    (Int64.bits_of_float cold_frac.Lp.objective)
    (Int64.bits_of_float warm_frac.Lp.objective);
  Alcotest.(check int64) "pool-first objective bitwise = cold"
    (Int64.bits_of_float cold_frac.Lp.objective)
    (Int64.bits_of_float first_frac.Lp.objective)

let test_column_pool_reverify_rejects_foreign () =
  (* columns interned under one instance's fingerprint must be re-verified
     before entering another instance: a bidder with a restricted channel
     set silently rejects a pooled bundle it cannot hold *)
  let inst = Workloads.protocol_instance ~seed:23 ~n:10 ~k:2 () in
  let key = "forged-key" in
  let pool = Oracle.Column_pool.create () in
  (* forge garbage columns: out-of-range bidders and over-wide bundles *)
  Oracle.Column_pool.store pool key
    [ (-1, Bundle.full 2); (500, Bundle.full 2); (0, Bundle.full 2) ];
  let frac, _ = Oracle.solve ~column_pool:(pool, key) inst in
  let cold, _ = Oracle.solve inst in
  Alcotest.(check int64) "objective unaffected by garbage seeds"
    (Int64.bits_of_float cold.Lp.objective)
    (Int64.bits_of_float frac.Lp.objective)

let test_column_pool_lru_bounds () =
  let pool = Oracle.Column_pool.create ~max_keys:2 ~max_columns_per_key:3 () in
  let cols n = List.init n (fun i -> (i, Bundle.singleton 0)) in
  Oracle.Column_pool.store pool "a" (cols 5);
  Alcotest.(check int) "per-key truncation" 3
    (List.length (Oracle.Column_pool.find pool "a"));
  Oracle.Column_pool.store pool "b" (cols 1);
  Oracle.Column_pool.store pool "c" (cols 1);
  Alcotest.(check int) "max_keys bound" 2 (Oracle.Column_pool.entries pool);
  (* recency at eviction time: "a" touched before "b" and "c" were stored,
     so "a" is the least-recently-used victim and the younger keys stay *)
  Alcotest.(check int) "lru victim evicted" 0
    (List.length (Oracle.Column_pool.find pool "a"));
  Alcotest.(check int) "younger key kept" 1
    (List.length (Oracle.Column_pool.find pool "b"))

let run_oracle_batch ~column_pool ~revalue_bids =
  (* clique conflicts make the zero-price seed columns mutually exclusive,
     so cold colgen needs several pricing rounds — room for seeding to cut *)
  let specs =
    [
      Workload.spec ~model:Workload.Clique ~n:24 ~k:4 ~seed:9
        ~algorithm:Engine.Oracle_round ~repeat:4 ~revalue_bids ();
    ]
  in
  let engine = Engine.create ~warm_start:false ~column_pool () in
  let jobs = Workload.expand engine specs in
  let results, summary = Engine.run_batch ~domains:1 engine jobs in
  (results, Engine.results_to_json results, summary)

let test_engine_oracle_exact_repeats () =
  (* exact repeats (same topology AND same bids): the seeded master starts
     from the donor's full column set, re-solves the identical LP over the
     identical column order, and must reproduce the cold run byte for
     byte — with strictly fewer colgen rounds *)
  let rp, with_pool, s_pool = run_oracle_batch ~column_pool:true ~revalue_bids:false in
  let rc, without_pool, s_cold =
    run_oracle_batch ~column_pool:false ~revalue_bids:false
  in
  Alcotest.(check int) "all jobs on lp tier" 4 s_pool.Engine.served_lp;
  Alcotest.(check string) "results bytes identical pool on/off" without_pool
    with_pool;
  Array.iteri
    (fun i (r : Engine.result) ->
      Alcotest.(check int64)
        (Printf.sprintf "job %d objective bitwise = cold" i)
        (Int64.bits_of_float rc.(i).Engine.lp_objective)
        (Int64.bits_of_float r.Engine.lp_objective))
    rp;
  Alcotest.(check bool)
    (Printf.sprintf "pool cut total colgen rounds (%d -> %d)"
       s_cold.Engine.lp_iterations s_pool.Engine.lp_iterations)
    true
    (s_pool.Engine.lp_iterations < s_cold.Engine.lp_iterations)

let test_engine_oracle_revalued_repeats () =
  (* revalued repeats: same topology, fresh bids.  The seeded master holds
     different columns than the cold one, so the simplex takes a different
     arithmetic path to the same optimum — the certified objective must
     agree to solver tolerance (bitwise equality is the exact-repeat
     contract, tested above) *)
  let rp, _, s_pool = run_oracle_batch ~column_pool:true ~revalue_bids:true in
  let rc, _, s_cold = run_oracle_batch ~column_pool:false ~revalue_bids:true in
  Alcotest.(check int) "same job count" (Array.length rc) (Array.length rp);
  Array.iteri
    (fun i (r : Engine.result) ->
      let cold = rc.(i).Engine.lp_objective in
      let rel = abs_float (r.Engine.lp_objective -. cold) /. max 1.0 (abs_float cold) in
      Alcotest.(check bool)
        (Printf.sprintf "job %d certified objective = cold (rel err %.2e)" i rel)
        true (rel <= 1e-9))
    rp;
  Alcotest.(check bool) "pool does not add colgen rounds" true
    (s_pool.Engine.lp_iterations <= s_cold.Engine.lp_iterations)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_map_array_parity;
    Alcotest.test_case "map_array parity under skewed costs" `Quick
      test_map_array_skewed_parity;
    Alcotest.test_case "lowest-index failure deterministic" `Quick
      test_lowest_index_failure;
    Alcotest.test_case "map_array validation" `Quick test_validation;
    Alcotest.test_case "pool restarts after shutdown" `Quick
      test_pool_restart_after_shutdown;
    Alcotest.test_case "nested map_array does not deadlock" `Quick
      test_nested_map_array;
    Alcotest.test_case "engine parity across schedules" `Quick
      test_engine_parity_across_schedules;
    QCheck_alcotest.to_alcotest prop_engine_parity;
    Alcotest.test_case "column pool hit matches cold colgen" `Quick
      test_column_pool_hit_matches_cold;
    Alcotest.test_case "column pool re-verifies foreign columns" `Quick
      test_column_pool_reverify_rejects_foreign;
    Alcotest.test_case "column pool LRU bounds" `Quick test_column_pool_lru_bounds;
    Alcotest.test_case "engine oracle exact repeats byte-identical" `Quick
      test_engine_oracle_exact_repeats;
    Alcotest.test_case "engine oracle revalued repeats objective parity" `Quick
      test_engine_oracle_revalued_repeats;
  ]
