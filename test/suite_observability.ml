(* Observability suite: correlated tracing, the decision event log, the
   Chrome trace exporter and the scrape endpoint (PR 7 tentpole).

   The load-bearing properties: span parent/child links are exact (no
   orphans while the ring holds everything; children nest inside their
   parent's interval on the same domain, including under
   Parallel.map_array), the event log renders byte-identically at any
   --domains value, the Chrome exporter emits schema-valid JSON for any
   span contents, and /metrics serves every well-known metric. *)

module Metrics = Sa_telemetry.Metrics
module Trace = Sa_telemetry.Trace
module Export = Sa_telemetry.Export
module Eventlog = Sa_telemetry.Eventlog
module Http = Sa_telemetry.Http
module Parallel = Sa_core.Parallel
module Workloads = Sa_exp.Workloads
module Engine = Sa_engine.Engine

(* Trace state is global: park the ring at a large capacity for a test and
   restore the default afterwards so later suites see pristine state. *)
let with_trace_capacity cap f =
  Trace.set_capacity cap;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_capacity 512;
      Trace.clear ())
    (fun () ->
      Trace.clear ();
      f ())

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* ---------- span hierarchy ------------------------------------------------ *)

let test_span_nesting_single_domain () =
  with_trace_capacity 1024 @@ fun () ->
  let registry = Metrics.create () in
  let h = Metrics.histogram ~registry "obs.nest.seconds" in
  Trace.with_span ~hist:h "outer" (fun () ->
      Trace.add_attr "tier" "lp";
      Trace.with_span ~hist:h "inner" (fun () ->
          Trace.with_span ~hist:h "leaf" ignore));
  match Trace.recent () with
  | [ leaf; inner; outer ] ->
      (* completion order: leaf, inner, outer *)
      Alcotest.(check string) "outer name" "outer" outer.Trace.name;
      Alcotest.(check bool) "outer is root" true (outer.Trace.parent = None);
      Alcotest.(check bool)
        "inner child of outer" true
        (inner.Trace.parent = Some outer.Trace.id);
      Alcotest.(check bool)
        "leaf child of inner" true
        (leaf.Trace.parent = Some inner.Trace.id);
      Alcotest.(check (list (pair string string)))
        "attr attached to open span"
        [ ("tier", "lp") ]
        outer.Trace.attrs
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_span_exception_still_recorded () =
  with_trace_capacity 64 @@ fun () ->
  let registry = Metrics.create () in
  let h = Metrics.histogram ~registry "obs.exn.seconds" in
  (try Trace.with_span ~hist:h "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  (match Trace.recent () with
  | [ sp ] -> Alcotest.(check string) "span recorded on exn" "boom" sp.Trace.name
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans));
  Alcotest.(check bool) "stack popped" true (Trace.current_span_id () = None)

(* Parent/child well-formedness under domain sharding: no orphans, every
   child starts and ends within its parent's interval, and parent/child
   always share a domain (the ambient stack is domain-local). *)
let test_span_wellformed_across_domains () =
  with_trace_capacity 4096 @@ fun () ->
  let registry = Metrics.create () in
  let h = Metrics.histogram ~registry "obs.par.seconds" in
  ignore
    (Parallel.map_array ~domains:4
       (fun i ->
         Trace.with_span ~hist:h "task" (fun () ->
             Trace.add_attr "task" (string_of_int i);
             Trace.with_span ~hist:h "sub" (fun () ->
                 ignore (Sys.opaque_identity (i * i)))))
       (Array.init 32 Fun.id));
  let spans = Trace.recent () in
  Alcotest.(check int) "all spans survive" 64 (List.length spans);
  let by_id = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.Trace.id sp) spans;
  List.iter
    (fun sp ->
      match sp.Trace.parent with
      | None -> Alcotest.(check string) "roots are tasks" "task" sp.Trace.name
      | Some pid -> (
          match Hashtbl.find_opt by_id pid with
          | None -> Alcotest.failf "orphan span %d (parent %d)" sp.Trace.id pid
          | Some parent ->
              Alcotest.(check string) "children are subs" "sub" sp.Trace.name;
              Alcotest.(check int) "same domain" parent.Trace.domain
                sp.Trace.domain;
              if sp.Trace.start_s +. 1e-9 < parent.Trace.start_s then
                Alcotest.fail "child starts before parent";
              if
                sp.Trace.start_s +. sp.Trace.dur_s
                > parent.Trace.start_s +. parent.Trace.dur_s +. 1e-6
              then Alcotest.fail "child outlives parent"))
    spans

let test_capacity_validation_and_wraparound () =
  with_trace_capacity 4 @@ fun () ->
  let raised =
    try
      Trace.set_capacity 0;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "capacity 0 rejected" true raised;
  Alcotest.(check int) "capacity unchanged after reject" 4 (Trace.capacity ());
  let registry = Metrics.create () in
  let h = Metrics.histogram ~registry "obs.wrap.seconds" in
  for i = 1 to 7 do
    Trace.with_span ~hist:h (Printf.sprintf "s%d" i) ignore
  done;
  (* strictly oldest-recorded-first eviction: 7 spans through a ring of 4
     leave s4..s7, oldest first *)
  Alcotest.(check (list string))
    "last capacity spans, oldest first"
    [ "s4"; "s5"; "s6"; "s7" ]
    (List.map (fun sp -> sp.Trace.name) (Trace.recent ()))

(* ---------- chrome trace exporter (qcheck round-trip) --------------------- *)

let arbitrary_spans =
  let open QCheck in
  let name_gen =
    Gen.oneofl [ "engine.job"; "lp.revised.solve"; "we\"ird\n"; "x" ]
  in
  let attr_gen =
    Gen.oneofl
      [ []; [ ("tier", "lp") ]; [ ("job", "3"); ("esc", "a\"b\\c") ] ]
  in
  let span_gen =
    Gen.map
      (fun ((id, parent, name), (start_ms, dur_ms, domain, attrs)) ->
        {
          Trace.id = 1 + abs id;
          parent = (match parent with 0 -> None | p -> Some (abs p));
          name;
          start_s = float_of_int (abs start_ms) /. 1e3;
          dur_s = float_of_int (abs dur_ms) /. 1e3;
          domain = abs domain mod 8;
          attrs;
        })
      Gen.(
        pair
          (triple small_int small_int name_gen)
          (quad small_int small_int small_int attr_gen))
  in
  make
    ~print:(fun spans ->
      String.concat ";" (List.map (fun sp -> sp.Trace.name) spans))
    (Gen.list_size (Gen.int_range 0 40) span_gen)

let prop_chrome_schema_valid =
  QCheck.Test.make ~name:"chrome export validates for any spans" ~count:100
    arbitrary_spans (fun spans ->
      Export.validate_chrome (Export.spans_to_chrome spans)
      = List.length spans)

let prop_snapshot_spans_round_trip =
  QCheck.Test.make ~name:"snapshot round-trips hierarchical spans" ~count:50
    arbitrary_spans (fun spans ->
      let view = Metrics.snapshot ~registry:(Metrics.create ()) () in
      let _, spans' = Export.snapshot_of_json (Export.snapshot_to_json ~spans view) in
      spans = spans')

(* ---------- event log ----------------------------------------------------- *)

(* Schema: every line of to_jsonl parses as a JSON object, seq is the line
   number, and (job, per-job order) is preserved regardless of emission
   interleaving across jobs. *)
let prop_eventlog_jsonl_schema =
  QCheck.Test.make ~name:"event log renders schema-valid ordered JSONL"
    ~count:50
    QCheck.(list_of_size (Gen.int_range 0 20) (pair (int_range 0 5) small_nat))
    (fun emissions ->
      let t = Eventlog.create () in
      Eventlog.install (Some t);
      Fun.protect
        ~finally:(fun () -> Eventlog.install None)
        (fun () ->
          List.iter
            (fun (job, payload) ->
              Eventlog.with_job job (fun () ->
                  Eventlog.emit "e"
                    [
                      ("payload", Eventlog.Int payload);
                      ("text", Eventlog.Str "a\"b\n");
                      ("frac", Eventlog.Float 0.5);
                      ("flag", Eventlog.Bool true);
                    ]))
            emissions);
      let lines =
        String.split_on_char '\n' (Eventlog.to_jsonl t)
        |> List.filter (fun l -> l <> "")
      in
      List.length lines = List.length emissions
      && List.for_all2
           (fun seq line ->
             match Export.parse_json line with
             | Export.Obj fields ->
                 List.assoc_opt "seq" fields = Some (Export.Num (float_of_int seq))
                 && List.assoc_opt "kind" fields = Some (Export.Str "e")
                 && List.mem_assoc "job" fields
                 && List.assoc_opt "flag" fields = Some (Export.Bool true)
             | _ -> false)
           (List.init (List.length lines) Fun.id)
           lines
      &&
      (* jobs nondecreasing down the file (the canonical merge order) *)
      let jobs = List.map (fun (e : Eventlog.event) -> e.Eventlog.job) (Eventlog.events t) in
      List.sort compare jobs = jobs)

let test_eventlog_needs_scope_and_sink () =
  let t = Eventlog.create () in
  (* no sink installed: emit is a free no-op *)
  Eventlog.emit "ignored" [];
  Eventlog.install (Some t);
  Fun.protect
    ~finally:(fun () -> Eventlog.install None)
    (fun () ->
      (* sink installed but no ambient job: dropped, counted *)
      let dropped_before =
        Metrics.counter_value (Metrics.counter "telemetry.events.dropped")
      in
      Eventlog.emit "dropped" [];
      Alcotest.(check int) "dropped counted" (dropped_before + 1)
        (Metrics.counter_value (Metrics.counter "telemetry.events.dropped"));
      Eventlog.with_job 7 (fun () -> Eventlog.emit "kept" []);
      match Eventlog.events t with
      | [ e ] ->
          Alcotest.(check int) "job scope applied" 7 e.Eventlog.job;
          Alcotest.(check string) "kind kept" "kept" e.Eventlog.kind
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

(* Byte-identical logs at --domains 1 vs 4 on a real engine batch (cold
   engines: the shared warm-start cache is the one order-dependent piece). *)
let test_eventlog_domains_byte_identical () =
  let jobs =
    List.init 8 (fun id ->
        let inst =
          Workloads.protocol_instance ~seed:(1 + (id mod 3)) ~n:10 ~k:2 ()
        in
        Engine.job ~algorithm:Engine.Adaptive ~seed:(50 + id) ~trials:2 ~id inst)
  in
  let run domains =
    let t = Eventlog.create () in
    Eventlog.install (Some t);
    Fun.protect
      ~finally:(fun () -> Eventlog.install None)
      (fun () ->
        ignore
          (Engine.run_batch ~domains (Engine.create ~warm_start:false ()) jobs);
        Eventlog.to_jsonl t)
  in
  let log1 = run 1 and log4 = run 4 in
  Alcotest.(check bool) "log nonempty" true (String.length log1 > 0);
  Alcotest.(check bool) "d1 = d4 bytes" true (log1 = log4);
  Alcotest.(check bool) "d1 reproducible" true (run 1 = log1)

(* ---------- engine spans carry provenance --------------------------------- *)

let test_engine_spans_have_attrs () =
  with_trace_capacity 4096 @@ fun () ->
  let inst = Workloads.protocol_instance ~seed:3 ~n:10 ~k:2 () in
  let jobs = [ Engine.job ~algorithm:Engine.Adaptive ~seed:5 ~trials:2 ~id:0 inst ] in
  ignore (Engine.run_batch (Engine.create ~warm_start:false ()) jobs);
  let spans = Trace.recent () in
  let job_span =
    List.find_opt (fun sp -> sp.Trace.name = "engine.job") spans
  in
  (match job_span with
  | None -> Alcotest.fail "no engine.job span"
  | Some sp ->
      let attr k = List.assoc_opt k sp.Trace.attrs in
      Alcotest.(check (option string)) "job attr" (Some "0") (attr "job");
      Alcotest.(check (option string)) "tier attr" (Some "lp") (attr "tier");
      Alcotest.(check (option string)) "retries attr" (Some "0") (attr "retries");
      (* attempt + lp spans nest under the job span *)
      let children =
        List.filter (fun c -> c.Trace.parent = Some sp.Trace.id) spans
      in
      Alcotest.(check bool) "attempt span nested" true
        (List.exists (fun c -> c.Trace.name = "engine.attempt") children));
  let lp_span =
    List.find_opt (fun sp -> sp.Trace.name = "lp.revised.solve") spans
  in
  match lp_span with
  | None -> Alcotest.fail "no lp.revised.solve span"
  | Some sp ->
      Alcotest.(check bool) "lp span has pivots attr" true
        (List.mem_assoc "pivots" sp.Trace.attrs)

(* ---------- http endpoint ------------------------------------------------- *)

let test_http_scrape_metrics () =
  let server =
    Http.start ~port:0 (fun path ->
        match path with
        | "/healthz" ->
            { Http.status = 200; content_type = "text/plain"; body = "ok\n" }
        | "/metrics" ->
            {
              Http.status = 200;
              content_type = "text/plain";
              body = Export.to_prometheus (Metrics.snapshot ());
            }
        | _ ->
            { Http.status = 404; content_type = "text/plain"; body = "no\n" })
  in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let port = Http.port server in
      Alcotest.(check bool) "ephemeral port bound" true (port > 0);
      let status, body = Http.get ~port "/healthz" in
      Alcotest.(check int) "healthz 200" 200 status;
      Alcotest.(check string) "healthz body" "ok\n" body;
      let status, body = Http.get ~port "/metrics" in
      Alcotest.(check int) "metrics 200" 200 status;
      (* every well-known metric must appear in the exposition *)
      let prom name =
        "specauction_" ^ String.map (fun c -> if c = '.' then '_' else c) name
      in
      List.iter
        (fun name ->
          if not (contains body (prom name)) then
            Alcotest.failf "well-known metric %s missing from /metrics" name)
        (Metrics.well_known_counters @ Metrics.well_known_gauges
        @ Metrics.well_known_histograms);
      Alcotest.(check bool) "HELP lines present" true (contains body "# HELP ");
      let status, _ = Http.get ~port "/nothere" in
      Alcotest.(check int) "unknown path 404" 404 status)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "span nesting on one domain" `Quick
      test_span_nesting_single_domain;
    Alcotest.test_case "span recorded on exception" `Quick
      test_span_exception_still_recorded;
    Alcotest.test_case "span hierarchy well-formed across domains" `Quick
      test_span_wellformed_across_domains;
    Alcotest.test_case "ring capacity validation + wraparound order" `Quick
      test_capacity_validation_and_wraparound;
    q prop_chrome_schema_valid;
    q prop_snapshot_spans_round_trip;
    q prop_eventlog_jsonl_schema;
    Alcotest.test_case "eventlog needs sink and job scope" `Quick
      test_eventlog_needs_scope_and_sink;
    Alcotest.test_case "event log byte-identical at domains 1 vs 4" `Quick
      test_eventlog_domains_byte_identical;
    Alcotest.test_case "engine spans carry job/tier/retry attrs" `Quick
      test_engine_spans_have_attrs;
    Alcotest.test_case "http scrape serves every well-known metric" `Quick
      test_http_scrape_metrics;
  ]
