(* Tests for the simplex solver and LP model builder. *)

module Simplex = Sa_lp.Simplex
module Model = Sa_lp.Model
module Prng = Sa_util.Prng

let check_float = Alcotest.(check (float 1e-6))

let solve_max c rows =
  Simplex.solve { Simplex.direction = Maximize; c; rows = Array.of_list rows }

let solve_min c rows =
  Simplex.solve { Simplex.direction = Minimize; c; rows = Array.of_list rows }

let status_testable =
  Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt
        (match s with
        | Simplex.Optimal -> "Optimal"
        | Simplex.Infeasible -> "Infeasible"
        | Simplex.Unbounded -> "Unbounded"
        | Simplex.Iteration_limit -> "Iteration_limit"))
    ( = )

let test_basic_max () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> (4, 0), obj 12 *)
  let s = solve_max [| 3.; 2. |] [ ([| 1.; 1. |], Simplex.Le, 4.); ([| 1.; 3. |], Simplex.Le, 6.) ] in
  Alcotest.check status_testable "status" Simplex.Optimal s.Simplex.status;
  check_float "objective" 12.0 s.Simplex.objective;
  check_float "x" 4.0 s.Simplex.x.(0);
  check_float "y" 0.0 s.Simplex.x.(1)

let test_basic_max_interior () =
  (* max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj 21 *)
  let s =
    solve_max [| 5.; 4. |]
      [ ([| 6.; 4. |], Simplex.Le, 24.); ([| 1.; 2. |], Simplex.Le, 6.) ]
  in
  check_float "objective" 21.0 s.Simplex.objective;
  check_float "x" 3.0 s.Simplex.x.(0);
  check_float "y" 1.5 s.Simplex.x.(1)

let test_duals_max () =
  (* Duals of the previous LP: y1 = 0.75, y2 = 0.5. *)
  let s =
    solve_max [| 5.; 4. |]
      [ ([| 6.; 4. |], Simplex.Le, 24.); ([| 1.; 2. |], Simplex.Le, 6.) ]
  in
  check_float "dual 1" 0.75 s.Simplex.duals.(0);
  check_float "dual 2" 0.5 s.Simplex.duals.(1);
  (* strong duality: b.y = objective *)
  check_float "strong duality" s.Simplex.objective
    ((24. *. s.Simplex.duals.(0)) +. (6. *. s.Simplex.duals.(1)))

let test_basic_min () =
  (* min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> x = 1.6, y = 1.2, obj 2.8 *)
  let s =
    solve_min [| 1.; 1. |]
      [ ([| 1.; 2. |], Simplex.Ge, 4.); ([| 3.; 1. |], Simplex.Ge, 6.) ]
  in
  Alcotest.check status_testable "status" Simplex.Optimal s.Simplex.status;
  check_float "objective" 2.8 s.Simplex.objective;
  check_float "x" 1.6 s.Simplex.x.(0);
  check_float "y" 1.2 s.Simplex.x.(1)

let test_equality () =
  (* max x s.t. x + y = 3, x <= 2 -> x = 2, y = 1 *)
  let s =
    solve_max [| 1.; 0. |]
      [ ([| 1.; 1. |], Simplex.Eq, 3.); ([| 1.; 0. |], Simplex.Le, 2.) ]
  in
  check_float "objective" 2.0 s.Simplex.objective;
  check_float "y" 1.0 s.Simplex.x.(1)

let test_infeasible () =
  let s = solve_max [| 1. |] [ ([| 1. |], Simplex.Le, 1.); ([| 1. |], Simplex.Ge, 2.) ] in
  Alcotest.check status_testable "status" Simplex.Infeasible s.Simplex.status

let test_unbounded () =
  let s = solve_max [| 1. |] [ ([| -1. |], Simplex.Le, 1.) ] in
  Alcotest.check status_testable "status" Simplex.Unbounded s.Simplex.status

let test_negative_rhs () =
  (* max -x s.t. -x <= -2  (i.e. x >= 2) -> x = 2, obj -2 *)
  let s = solve_max [| -1. |] [ ([| -1. |], Simplex.Le, -2.) ] in
  Alcotest.check status_testable "status" Simplex.Optimal s.Simplex.status;
  check_float "objective" (-2.0) s.Simplex.objective

let test_degenerate () =
  (* Beale-like degenerate LP; just has to terminate at the optimum 0.05. *)
  let s =
    solve_max
      [| 0.75; -150.; 0.02; -6. |]
      [
        ([| 0.25; -60.; -0.04; 9. |], Simplex.Le, 0.);
        ([| 0.5; -90.; -0.02; 3. |], Simplex.Le, 0.);
        ([| 0.; 0.; 1.; 0. |], Simplex.Le, 1.);
      ]
  in
  Alcotest.check status_testable "status" Simplex.Optimal s.Simplex.status;
  check_float "objective" 0.05 s.Simplex.objective

let test_zero_rows () =
  let s = solve_max [| 2.; 1. |] [ ([| 1.; 0. |], Simplex.Le, 5.) ] in
  Alcotest.check status_testable "status" Simplex.Unbounded s.Simplex.status

let test_model_builder () =
  let m = Model.create Simplex.Maximize in
  let x = Model.add_var m ~obj:3.0 in
  let y = Model.add_var m ~obj:2.0 in
  let r1 = Model.add_row m [ (x, 1.0); (y, 1.0) ] Simplex.Le 4.0 in
  let _r2 = Model.add_row m [ (x, 1.0); (y, 3.0) ] Simplex.Le 6.0 in
  let sol = Model.solve m in
  check_float "objective" 12.0 sol.Model.objective;
  check_float "x" 4.0 (sol.Model.value x);
  check_float "dual r1" 3.0 (sol.Model.dual r1)

let test_model_add_to_row () =
  let m = Model.create Simplex.Maximize in
  let x = Model.add_var m ~obj:1.0 in
  let r = Model.add_row m [ (x, 1.0) ] Simplex.Le 10.0 in
  (* Column generation style: add a second variable into the same row. *)
  let y = Model.add_var m ~obj:2.0 in
  Model.add_to_row m r y 2.0;
  let sol = Model.solve m in
  (* max x + 2y s.t. x + 2y <= 10 -> obj 10 *)
  check_float "objective" 10.0 sol.Model.objective

let test_model_duplicate_coeffs () =
  let m = Model.create Simplex.Maximize in
  let x = Model.add_var m ~obj:1.0 in
  (* x listed twice: effective coefficient 2 *)
  let _ = Model.add_row m [ (x, 1.0); (x, 1.0) ] Simplex.Le 4.0 in
  let sol = Model.solve m in
  check_float "objective" 2.0 sol.Model.objective

(* Random property: simplex optimum on packing LPs satisfies weak duality
   against the feasible point 0 and its duals price the rhs exactly. *)
let prop_random_packing =
  QCheck.Test.make ~name:"random packing LP: strong duality + feasibility"
    ~count:60
    QCheck.(pair (int_range 1 6) (int_range 1 8))
    (fun (nv, nr) ->
      let g = Prng.create ~seed:((nv * 1000) + nr) in
      let c = Array.init nv (fun _ -> Prng.float g 10.0) in
      let rows =
        Array.init nr (fun _ ->
            ( Array.init nv (fun _ -> Prng.float g 3.0),
              Simplex.Le,
              1.0 +. Prng.float g 5.0 ))
      in
      let s = Simplex.solve { Simplex.direction = Maximize; c; rows } in
      (* A packing LP with a bounded feasible region... may still be
         unbounded if some column is all-zero; accept Optimal or Unbounded,
         and verify properties when Optimal. *)
      match s.Simplex.status with
      | Simplex.Unbounded -> true
      | Simplex.Optimal ->
          let feasible =
            Array.for_all
              (fun (a, _, b) ->
                let lhs = ref 0.0 in
                Array.iteri (fun j aj -> lhs := !lhs +. (aj *. s.Simplex.x.(j))) a;
                !lhs <= b +. 1e-6)
              rows
          in
          let dual_obj =
            Array.to_list rows
            |> List.mapi (fun i (_, _, b) -> b *. s.Simplex.duals.(i))
            |> List.fold_left ( +. ) 0.0
          in
          let duality = Float.abs (dual_obj -. s.Simplex.objective) < 1e-5 in
          let duals_nonneg = Array.for_all (fun y -> y >= -1e-9) s.Simplex.duals in
          feasible && duality && duals_nonneg
      | _ -> false)

(* Dual feasibility: A^T y >= c for maximization with <= rows. *)
let prop_dual_feasible =
  QCheck.Test.make ~name:"random packing LP: dual feasibility" ~count:60
    QCheck.(int_range 1 400)
    (fun seed ->
      let g = Prng.create ~seed in
      let nv = 1 + Prng.int g 6 and nr = 1 + Prng.int g 6 in
      let c = Array.init nv (fun _ -> Prng.float g 10.0) in
      let rows =
        Array.init nr (fun _ ->
            ( Array.init nv (fun _ -> 0.1 +. Prng.float g 3.0),
              Simplex.Le,
              1.0 +. Prng.float g 5.0 ))
      in
      let s = Simplex.solve { Simplex.direction = Maximize; c; rows } in
      match s.Simplex.status with
      | Simplex.Optimal ->
          let ok = ref true in
          for j = 0 to nv - 1 do
            let col = ref 0.0 in
            Array.iteri
              (fun i (a, _, _) -> col := !col +. (a.(j) *. s.Simplex.duals.(i)))
              rows;
            if !col < c.(j) -. 1e-5 then ok := false
          done;
          !ok
      | _ -> false)

(* ---------- Certification --------------------------------------------- *)

let test_certify_simple () =
  let p =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 5.; 4. |];
      rows = [| ([| 6.; 4. |], Simplex.Le, 24.); ([| 1.; 2. |], Simplex.Le, 6.) |];
    }
  in
  let s = Simplex.solve p in
  let r = Sa_lp.Certify.check p s in
  Alcotest.(check bool) "certified" true r.Sa_lp.Certify.certified

let test_certify_rejects_tampering () =
  let p =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 1.0 |];
      rows = [| ([| 1.0 |], Simplex.Le, 3.0) |];
    }
  in
  let s = Simplex.solve p in
  let tampered = { s with Simplex.x = [| 5.0 |] } in
  let r = Sa_lp.Certify.check p tampered in
  Alcotest.(check bool) "primal violation caught" false
    r.Sa_lp.Certify.primal_feasible;
  let bad_dual = { s with Simplex.duals = [| -1.0 |] } in
  let r2 = Sa_lp.Certify.check p bad_dual in
  Alcotest.(check bool) "dual sign violation caught" false
    r2.Sa_lp.Certify.dual_feasible

let prop_certify_random =
  QCheck.Test.make ~name:"random packing LPs certify" ~count:80
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let nv = 1 + Prng.int g 7 and nr = 1 + Prng.int g 7 in
      let c = Array.init nv (fun _ -> Prng.float g 10.0) in
      let rows =
        Array.init nr (fun _ ->
            ( Array.init nv (fun _ -> 0.05 +. Prng.float g 3.0),
              Simplex.Le,
              0.5 +. Prng.float g 5.0 ))
      in
      let p = { Simplex.direction = Simplex.Maximize; c; rows } in
      let s = Simplex.solve p in
      match s.Simplex.status with
      | Simplex.Optimal -> (Sa_lp.Certify.check p s).Sa_lp.Certify.certified
      | _ -> false)

let prop_certify_min_random =
  QCheck.Test.make ~name:"random covering LPs certify (minimize)" ~count:60
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let nv = 1 + Prng.int g 5 and nr = 1 + Prng.int g 5 in
      let c = Array.init nv (fun _ -> 0.5 +. Prng.float g 10.0) in
      let rows =
        Array.init nr (fun _ ->
            ( Array.init nv (fun _ -> 0.1 +. Prng.float g 3.0),
              Simplex.Ge,
              0.5 +. Prng.float g 5.0 ))
      in
      let p = { Simplex.direction = Simplex.Minimize; c; rows } in
      let s = Simplex.solve p in
      match s.Simplex.status with
      | Simplex.Optimal -> (Sa_lp.Certify.check p s).Sa_lp.Certify.certified
      | _ -> false)

(* ---------- Certification on degenerate LPs ----------------------------- *)

(* Degenerate packing LPs: coefficients from a tiny integer set, duplicated
   rows and zero right-hand sides force ties in the ratio test and
   zero-length pivots.  The certificates must still come back with clean
   feasibility flags and a duality gap within tolerance — for the dense
   tableau and for the revised engine under both pricing rules. *)
let prop_certify_degenerate =
  QCheck.Test.make ~name:"degenerate packing LPs certify (flags + gap)"
    ~count:80
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let nv = 1 + Prng.int g 6 and nr = 2 + Prng.int g 5 in
      let coeff () = float_of_int (Prng.int g 3) in
      let base = Array.init nv (fun _ -> coeff ()) in
      let rows =
        Array.init nr (fun i ->
            let a =
              if i mod 2 = 1 then Array.copy base
              else Array.init nv (fun _ -> coeff ())
            in
            let b =
              if Prng.bernoulli g 0.3 then 0.0
              else float_of_int (1 + Prng.int g 3)
            in
            (a, Simplex.Le, b))
      in
      let c = Array.init nv (fun _ -> float_of_int (Prng.int g 4)) in
      let p = { Simplex.direction = Simplex.Maximize; c; rows } in
      (* x = 0 is feasible (Le rows, b >= 0) so the LP is never infeasible;
         an all-zero column with positive objective makes it unbounded,
         which we accept. *)
      let s = Simplex.solve p in
      match s.Simplex.status with
      | Simplex.Unbounded -> true
      | Simplex.Optimal ->
          let r = Sa_lp.Certify.check p s in
          r.Sa_lp.Certify.primal_feasible && r.Sa_lp.Certify.dual_feasible
          && r.Sa_lp.Certify.duality_gap
             <= 1e-6 *. Float.max 1.0 (Float.abs s.Simplex.objective)
          && r.Sa_lp.Certify.certified
          && List.for_all
               (fun pricing ->
                 let b = Sa_lp.Revised.solve ~pricing p in
                 b.Simplex.status = Simplex.Optimal
                 && (Sa_lp.Certify.check p b).Sa_lp.Certify.certified)
               [ Sa_lp.Revised.Dantzig; Sa_lp.Revised.Devex ]
      | _ -> false)

let test_certify_edge_cases () =
  (* zero row: 0·x <= 1 is vacuous but must still be priced; single column
     with redundant parallel rows sits at a degenerate vertex *)
  let p_zero_row =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 1.0 |];
      rows = [| ([| 0.0 |], Simplex.Le, 1.0); ([| 1.0 |], Simplex.Le, 2.0) |];
    }
  in
  let p_single_col =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 3.0 |];
      rows =
        [|
          ([| 1.0 |], Simplex.Le, 2.0);
          ([| 2.0 |], Simplex.Le, 4.0);
          ([| 1.0 |], Simplex.Le, 2.0);
        |];
    }
  in
  let solvers =
    [
      ("dense", fun p -> Simplex.solve p);
      ( "revised-dantzig",
        fun p -> Sa_lp.Revised.solve ~pricing:Sa_lp.Revised.Dantzig p );
      ( "revised-devex",
        fun p -> Sa_lp.Revised.solve ~pricing:Sa_lp.Revised.Devex p );
    ]
  in
  List.iter
    (fun (name, p, expect) ->
      List.iter
        (fun (ename, solve) ->
          let tag msg = Printf.sprintf "%s %s (%s)" name msg ename in
          let s = solve p in
          Alcotest.(check bool)
            (tag "optimal") true
            (s.Simplex.status = Simplex.Optimal);
          Alcotest.(check (float 1e-9)) (tag "objective") expect
            s.Simplex.objective;
          let r = Sa_lp.Certify.check p s in
          Alcotest.(check bool)
            (tag "primal feasible") true r.Sa_lp.Certify.primal_feasible;
          Alcotest.(check bool)
            (tag "dual feasible") true r.Sa_lp.Certify.dual_feasible;
          Alcotest.(check bool)
            (tag "gap within tolerance") true
            (r.Sa_lp.Certify.duality_gap <= 1e-6);
          Alcotest.(check bool) (tag "certified") true r.Sa_lp.Certify.certified)
        solvers)
    [ ("zero-row", p_zero_row, 2.0); ("single-col", p_single_col, 6.0) ]

(* ---------- Pricing rules + workspace reuse ----------------------------- *)

let random_packing_problem g =
  let nb = 2 + Prng.int g 5 and k = 1 + Prng.int g 3 in
  let ncols = nb * (1 + Prng.int g 3) in
  let owner = Array.init ncols (fun c -> c mod nb) in
  let c = Array.init ncols (fun _ -> Prng.float g 10.0) in
  let unit_rows =
    Array.init nb (fun v ->
        ( Array.init ncols (fun cix -> if owner.(cix) = v then 1.0 else 0.0),
          Simplex.Le,
          1.0 ))
  in
  let intf_rows =
    Array.init (nb * k) (fun _ ->
        ( Array.init ncols (fun _ ->
              if Prng.bernoulli g 0.3 then Prng.float g 1.0 else 0.0),
          Simplex.Le,
          1.0 +. Prng.float g 2.0 ))
  in
  {
    Simplex.direction = Simplex.Maximize;
    c;
    rows = Array.append unit_rows intf_rows;
  }

(* Devex and Dantzig walk different pivot sequences but must certify the
   same optimum on packing LPs (every column is covered by its owner's
   unit row, so the LP is bounded and feasible). *)
let prop_devex_dantzig_parity =
  QCheck.Test.make ~name:"devex = dantzig: certified objective parity"
    ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let p = random_packing_problem g in
      let d = Sa_lp.Revised.solve ~pricing:Sa_lp.Revised.Dantzig p in
      let x = Sa_lp.Revised.solve ~pricing:Sa_lp.Revised.Devex p in
      match (d.Simplex.status, x.Simplex.status) with
      | Simplex.Optimal, Simplex.Optimal ->
          (Sa_lp.Certify.check p d).Sa_lp.Certify.certified
          && (Sa_lp.Certify.check p x).Sa_lp.Certify.certified
          && Float.abs (d.Simplex.objective -. x.Simplex.objective)
             <= 1e-6 *. Float.max 1.0 (Float.abs d.Simplex.objective)
      | sd, sx -> sd = sx)

(* Workspace-reuse solves must be bitwise equal to fresh-allocation solves:
   the shared arena first runs a different LP — leaving grown buffers full
   of stale data — and then the probe LP.  Every buffer the solver reads
   must have been re-initialised over its used range, so the result matches
   a virgin arena's bit for bit, under both pricing rules. *)
let prop_workspace_reuse_bitwise =
  QCheck.Test.make ~name:"workspace reuse bitwise = fresh arena" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let decoy = random_packing_problem g in
      let p = random_packing_problem g in
      let bits s =
        ( s.Simplex.status,
          Array.map Int64.bits_of_float s.Simplex.x,
          Array.map Int64.bits_of_float s.Simplex.duals,
          Int64.bits_of_float s.Simplex.objective )
      in
      List.for_all
        (fun pricing ->
          let fresh =
            Sa_lp.Revised.solve ~pricing
              ~workspace:(Sa_lp.Workspace.create ())
              p
          in
          let arena = Sa_lp.Workspace.create () in
          ignore (Sa_lp.Revised.solve ~pricing ~workspace:arena decoy);
          let reused = Sa_lp.Revised.solve ~pricing ~workspace:arena p in
          bits fresh = bits reused)
        [ Sa_lp.Revised.Dantzig; Sa_lp.Revised.Devex ])

(* ---------- Presolve ----------------------------------------------------- *)

module Presolve = Sa_lp.Presolve

let solution_bits s =
  ( s.Simplex.status,
    Array.map Int64.bits_of_float s.Simplex.x,
    Array.map Int64.bits_of_float s.Simplex.duals,
    Int64.bits_of_float s.Simplex.objective )

(* A packing LP engineered so the only presolve reductions are the junk we
   inject — and each injected reduction is pivot-path-neutral, so the
   presolved solve must match the raw solve {e bitwise}:
   - every bidder owns two columns and every interference row has >= 2
     entries (no singleton rows, no empty rows in the base matrix);
   - same-owner columns get distinct interference supports (membership
     [(cix + r) mod 3 < 2]), so no accidental cross-column domination with
     unequal values — only the injected exact-duplicate columns group;
   - appended exact-duplicate rows carry strictly larger rhs (their slack
     never wins the ratio test against the kept twin's);
   - appended exact-duplicate columns carry strictly smaller objective
     (their reduced cost always trails the original's, so they never
     enter);
   - sizes keep nstruct + m <= 16, so the Dantzig partial-pricing window
     always covers every column, and pivots stay far below the
     refactorization interval. *)
let presolve_probe g =
  let nb = 2 in
  let mult = 2 in
  let k = 1 + Prng.int g 2 in
  let ncols0 = nb * mult in
  let owner = Array.init ncols0 (fun cix -> cix mod nb) in
  let c0 = Array.init ncols0 (fun _ -> 0.1 +. Prng.float g 10.0) in
  let unit_rows =
    Array.init nb (fun v ->
        ( Array.init ncols0 (fun cix -> if owner.(cix) = v then 1.0 else 0.0),
          Simplex.Le,
          1.0 ))
  in
  let intf_rows =
    Array.init (nb * k) (fun r ->
        ( Array.init ncols0 (fun cix ->
              if (cix + r) mod 3 < 2 then 0.1 +. Prng.float g 1.0 else 0.0),
          Simplex.Le,
          1.0 +. Prng.float g 2.0 ))
  in
  let rows0 = Array.append unit_rows intf_rows in
  (* duplicate columns, strictly cheaper, appended after the originals *)
  let dup_srcs = [| Prng.int g ncols0; Prng.int g ncols0 |] in
  let ncols = ncols0 + Array.length dup_srcs in
  let extend a = Array.init ncols (fun j -> if j < ncols0 then a.(j) else a.(dup_srcs.(j - ncols0))) in
  let c = extend c0 in
  Array.iteri (fun d src -> c.(ncols0 + d) <- 0.5 *. c0.(src)) dup_srcs;
  let rows = Array.map (fun (a, rel, b) -> (extend a, rel, b)) rows0 in
  (* duplicate rows with strictly larger rhs, plus a zero row, appended *)
  let dup_row i slack =
    let a, rel, b = rows.(i) in
    (Array.copy a, rel, b +. slack)
  in
  let nrows0 = Array.length rows in
  let junk =
    [|
      dup_row (Prng.int g nrows0) 0.5;
      dup_row (Prng.int g nrows0) (1.0 +. Prng.float g 1.0);
      (Array.make ncols 0.0, Simplex.Le, 1.0);
    |]
  in
  { Simplex.direction = Simplex.Maximize; c; rows = Array.append rows junk }

let no_scaling = { Presolve.reductions = true; scaling = false }

let prop_presolve_postsolve_bitwise =
  QCheck.Test.make
    ~name:"presolve o postsolve bitwise = raw solve (both pricings)" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let p = presolve_probe g in
      let spec = Sa_lp.Revised.spec_of_problem p in
      List.for_all
        (fun pricing ->
          let baseline, _, _ =
            Sa_lp.Revised.solve_spec ~pricing
              ~workspace:(Sa_lp.Workspace.create ())
              spec
          in
          let ws = Sa_lp.Workspace.create () in
          match Presolve.reduce ~config:no_scaling ~workspace:ws spec with
          | None -> false (* the injected junk guarantees reductions *)
          | Some (reduced, pr) ->
              let info = Presolve.info pr in
              let rsol, rbasis, _ =
                Sa_lp.Revised.solve_spec ~pricing ~workspace:ws reduced
              in
              let sol = Presolve.postsolve pr rsol in
              info.Presolve.rows_removed >= 3
              && info.Presolve.cols_removed >= 2
              && info.Presolve.duplicates >= 2
              && solution_bits sol = solution_bits baseline
              && (Sa_lp.Certify.check p sol).Sa_lp.Certify.certified
              &&
              (* the lifted optimal basis warm-starts the raw LP *)
              match Option.bind rbasis (Presolve.map_basis_out pr) with
              | Some ob ->
                  let s2, _, st2 =
                    Sa_lp.Revised.solve_spec ~pricing ~warm_start:ob
                      ~workspace:(Sa_lp.Workspace.create ())
                      spec
                  in
                  st2.Sa_lp.Revised.warm_used
                  && Float.abs (s2.Simplex.objective -. sol.Simplex.objective)
                     <= 1e-9 *. Float.max 1.0 (Float.abs sol.Simplex.objective)
              | None -> false)
        [ Sa_lp.Revised.Dantzig; Sa_lp.Revised.Devex ])

(* Full pipeline (reductions + power-of-two scaling) on unconstrained
   random packing LPs: the pivot path may legitimately differ, but the
   postsolved solution must certify against the *original* problem and
   agree with the raw objective within tolerance. *)
let prop_presolve_certified_parity =
  QCheck.Test.make ~name:"presolve+scaling certified parity" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let p = random_packing_problem g in
      let spec = Sa_lp.Revised.spec_of_problem p in
      List.for_all
        (fun pricing ->
          let baseline, _, _ =
            Sa_lp.Revised.solve_spec ~pricing
              ~workspace:(Sa_lp.Workspace.create ())
              spec
          in
          let ws = Sa_lp.Workspace.create () in
          match Presolve.reduce ~workspace:ws spec with
          | None -> true (* nothing to reduce or scale: raw solve is used *)
          | Some (reduced, pr) ->
              let rsol, _, _ =
                Sa_lp.Revised.solve_spec ~pricing ~workspace:ws reduced
              in
              let sol = Presolve.postsolve pr rsol in
              (match (sol.Simplex.status, baseline.Simplex.status) with
              | Simplex.Optimal, Simplex.Optimal ->
                  (Sa_lp.Certify.check p sol).Sa_lp.Certify.certified
                  && Float.abs (sol.Simplex.objective -. baseline.Simplex.objective)
                     <= 1e-6 *. Float.max 1.0 (Float.abs baseline.Simplex.objective)
              | s, s' -> s = s'))
        [ Sa_lp.Revised.Dantzig; Sa_lp.Revised.Devex ])

let test_presolve_edge_cases () =
  (* all rows (and columns) presolved away: fixing rows get reconstructed
     duals and the empty reduced LP still certifies in original space *)
  let p_all_fixed =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 1.0; 2.0 |];
      rows =
        [|
          ([| 1.0; 0.0 |], Simplex.Le, 0.0);
          ([| 0.0; 1.0 |], Simplex.Le, 0.0);
          ([| 0.0; 0.0 |], Simplex.Le, 5.0);
        |];
    }
  in
  let spec = Sa_lp.Revised.spec_of_problem p_all_fixed in
  let ws = Sa_lp.Workspace.create () in
  (match Presolve.reduce ~workspace:ws spec with
  | None -> Alcotest.fail "expected reductions on the all-fixed model"
  | Some (reduced, pr) ->
      Alcotest.(check int) "all rows removed" 3 (Presolve.info pr).Presolve.rows_removed;
      Alcotest.(check int) "all cols removed" 2 (Presolve.info pr).Presolve.cols_removed;
      let rsol, _, _ = Sa_lp.Revised.solve_spec ~workspace:ws reduced in
      let sol = Presolve.postsolve pr rsol in
      Alcotest.check status_testable "status" Simplex.Optimal sol.Simplex.status;
      check_float "objective" 0.0 sol.Simplex.objective;
      check_float "x0" 0.0 sol.Simplex.x.(0);
      check_float "x1" 0.0 sol.Simplex.x.(1);
      check_float "fixing dual 0" 1.0 sol.Simplex.duals.(0);
      check_float "fixing dual 1" 2.0 sol.Simplex.duals.(1);
      check_float "redundant dual" 0.0 sol.Simplex.duals.(2);
      Alcotest.(check bool)
        "certified" true
        (Sa_lp.Certify.check p_all_fixed sol).Sa_lp.Certify.certified);
  (* fully dominated model: one column survives *)
  let p_dominated =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 5.0; 4.0; 3.0 |];
      rows = [| ([| 1.0; 1.0; 1.0 |], Simplex.Le, 1.0) |];
    }
  in
  let spec = Sa_lp.Revised.spec_of_problem p_dominated in
  let ws = Sa_lp.Workspace.create () in
  (match Presolve.reduce ~config:no_scaling ~workspace:ws spec with
  | None -> Alcotest.fail "expected column elimination on the dominated model"
  | Some (reduced, pr) ->
      Alcotest.(check int) "dominated cols removed" 2
        (Presolve.info pr).Presolve.cols_removed;
      Alcotest.(check int) "one col left" 1 reduced.Sa_lp.Revised.s_nstruct;
      let rsol, _, _ = Sa_lp.Revised.solve_spec ~workspace:ws reduced in
      let sol = Presolve.postsolve pr rsol in
      check_float "objective" 5.0 sol.Simplex.objective;
      check_float "x0" 1.0 sol.Simplex.x.(0);
      check_float "x1" 0.0 sol.Simplex.x.(1);
      check_float "x2" 0.0 sol.Simplex.x.(2);
      Alcotest.(check bool)
        "certified" true
        (Sa_lp.Certify.check p_dominated sol).Sa_lp.Certify.certified);
  (* 1x1 LP, scaling only: power-of-two unscaling is exact *)
  let p_tiny =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 3.0 |];
      rows = [| ([| 2.0 |], Simplex.Le, 4.0) |];
    }
  in
  let spec = Sa_lp.Revised.spec_of_problem p_tiny in
  let ws = Sa_lp.Workspace.create () in
  (match Presolve.reduce ~workspace:ws spec with
  | None -> Alcotest.fail "expected a scaling pass on the 1x1 model"
  | Some (reduced, pr) ->
      Alcotest.(check bool)
        "scaling pass ran" true
        ((Presolve.info pr).Presolve.scaling_passes >= 1);
      let rsol, _, _ = Sa_lp.Revised.solve_spec ~workspace:ws reduced in
      let sol = Presolve.postsolve pr rsol in
      let raw =
        Sa_lp.Revised.solve ~workspace:(Sa_lp.Workspace.create ()) p_tiny
      in
      Alcotest.(check bool)
        "bitwise equal to raw solve" true
        (solution_bits sol = solution_bits raw);
      check_float "objective" 6.0 sol.Simplex.objective;
      check_float "x" 2.0 sol.Simplex.x.(0);
      check_float "dual" 1.5 sol.Simplex.duals.(0));
  (* irreducible spec: reduce declines *)
  let p_irreducible =
    {
      Simplex.direction = Simplex.Minimize;
      c = [| 1.0; 1.0 |];
      rows =
        [|
          ([| 1.0; 2.0 |], Simplex.Ge, 4.0); ([| 3.0; 1.0 |], Simplex.Ge, 6.0);
        |];
    }
  in
  let spec = Sa_lp.Revised.spec_of_problem p_irreducible in
  match
    Presolve.reduce ~config:no_scaling ~workspace:(Sa_lp.Workspace.create ()) spec
  with
  | None -> ()
  | Some _ -> Alcotest.fail "expected no reductions on the irreducible model"

(* The integrated path: Model.solve_with_basis ~presolve composes with the
   warm-start token contract (bases stay in original coordinates). *)
let test_presolve_model_integration () =
  let build () =
    let m = Model.create Simplex.Maximize in
    let x0 = Model.add_var m ~obj:4.0 in
    let x1 = Model.add_var m ~obj:3.0 in
    let x2 = Model.add_var m ~obj:2.0 (* duplicate of x1, cheaper *) in
    ignore (Model.add_row m [ (x0, 1.0); (x1, 1.0); (x2, 1.0) ] Simplex.Le 2.0);
    ignore (Model.add_row m [ (x0, 2.0); (x1, 1.0); (x2, 1.0) ] Simplex.Le 3.0);
    ignore (Model.add_row m [ (x0, 2.0); (x1, 1.0); (x2, 1.0) ] Simplex.Le 4.5);
    ignore (Model.add_row m [] Simplex.Le 1.0);
    m
  in
  let plain =
    Model.solve_with_basis ~engine:Model.Revised_sparse
      ~workspace:(Sa_lp.Workspace.create ()) (build ())
  in
  let pre =
    Model.solve_with_basis ~engine:Model.Revised_sparse ~presolve:true
      ~workspace:(Sa_lp.Workspace.create ()) (build ())
  in
  Alcotest.check status_testable "status" Simplex.Optimal
    pre.Model.solution.Model.status;
  check_float "objective parity" plain.Model.solution.Model.objective
    pre.Model.solution.Model.objective;
  (match pre.Model.basis with
  | None -> Alcotest.fail "presolved solve should return a basis"
  | Some basis ->
      let rewarmed =
        Model.solve_with_basis ~engine:Model.Revised_sparse ~presolve:true
          ~warm_start:basis
          ~workspace:(Sa_lp.Workspace.create ())
          (build ())
      in
      Alcotest.(check bool)
        "warm start survives presolve" true
        rewarmed.Model.stats.Sa_lp.Revised.warm_used;
      check_float "rewarmed objective" pre.Model.solution.Model.objective
        rewarmed.Model.solution.Model.objective);
  (* duals exposed by the model are already postsolved to original rows *)
  check_float "redundant row dual" 0.0 (pre.Model.solution.Model.dual 2);
  check_float "empty row dual" 0.0 (pre.Model.solution.Model.dual 3)

(* ---------- Revised simplex cross-validation --------------------------- *)

let test_revised_matches_dense_basics () =
  let problems =
    [
      {
        Simplex.direction = Simplex.Maximize;
        c = [| 3.; 2. |];
        rows = [| ([| 1.; 1. |], Simplex.Le, 4.); ([| 1.; 3. |], Simplex.Le, 6.) |];
      };
      {
        Simplex.direction = Simplex.Minimize;
        c = [| 1.; 1. |];
        rows = [| ([| 1.; 2. |], Simplex.Ge, 4.); ([| 3.; 1. |], Simplex.Ge, 6.) |];
      };
      {
        Simplex.direction = Simplex.Maximize;
        c = [| 1.; 0. |];
        rows = [| ([| 1.; 1. |], Simplex.Eq, 3.); ([| 1.; 0. |], Simplex.Le, 2.) |];
      };
    ]
  in
  List.iter
    (fun p ->
      let a = Simplex.solve p and b = Sa_lp.Revised.solve p in
      Alcotest.(check bool) "status agrees" true (a.Simplex.status = b.Simplex.status);
      Alcotest.(check (float 1e-6)) "objective agrees" a.Simplex.objective
        b.Simplex.objective;
      Alcotest.(check bool) "revised certified" true
        (Sa_lp.Certify.check p b).Sa_lp.Certify.certified)
    problems

let test_revised_detects_infeasible_unbounded () =
  let infeasible =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 1. |];
      rows = [| ([| 1. |], Simplex.Le, 1.); ([| 1. |], Simplex.Ge, 2.) |];
    }
  in
  Alcotest.(check bool) "infeasible" true
    ((Sa_lp.Revised.solve infeasible).Simplex.status = Simplex.Infeasible);
  let unbounded =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 1. |];
      rows = [| ([| -1. |], Simplex.Le, 1.) |];
    }
  in
  Alcotest.(check bool) "unbounded" true
    ((Sa_lp.Revised.solve unbounded).Simplex.status = Simplex.Unbounded)

let prop_revised_matches_dense =
  QCheck.Test.make ~name:"revised = dense on random LPs" ~count:120
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let nv = 1 + Prng.int g 8 and nr = 1 + Prng.int g 8 in
      let c = Array.init nv (fun _ -> Prng.float g 10.0 -. 2.0) in
      let rel_of = function
        | 0 -> Simplex.Le
        | 1 -> Simplex.Ge
        | _ -> Simplex.Eq
      in
      let rows =
        Array.init nr (fun _ ->
            let rel = if Prng.bernoulli g 0.7 then Simplex.Le else rel_of (Prng.int g 3) in
            ( Array.init nv (fun _ -> Prng.float g 4.0 -. 1.0),
              rel,
              Prng.float g 6.0 -. 1.0 ))
      in
      let direction = if Prng.bool g then Simplex.Maximize else Simplex.Minimize in
      let p = { Simplex.direction; c; rows } in
      let a = Simplex.solve p and b = Sa_lp.Revised.solve p in
      match (a.Simplex.status, b.Simplex.status) with
      | Simplex.Optimal, Simplex.Optimal ->
          Float.abs (a.Simplex.objective -. b.Simplex.objective)
          <= 1e-5 *. Float.max 1.0 (Float.abs a.Simplex.objective)
      | sa, sb -> sa = sb)

(* The eta-file engine must reach the same certified optimum as the dense
   tableau on LP(1)-shaped packing instances (unit rows + interference rows),
   both cold and warm-started from its own optimal basis, and do so
   identically whether the solves run on 1 domain or are fanned across 4. *)
let prop_eta_warm_matches_dense_across_domains =
  QCheck.Test.make ~name:"eta revised (cold+warm) = dense across domains" ~count:30
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let nb = 2 + Prng.int g 6 and k = 1 + Prng.int g 3 in
      let ncols = nb * (1 + Prng.int g 3) in
      let owner = Array.init ncols (fun c -> c mod nb) in
      let c = Array.init ncols (fun _ -> Prng.float g 10.0) in
      let rho = 1.0 +. Prng.float g 2.0 in
      let unit_rows =
        Array.init nb (fun v ->
            ( Array.init ncols (fun cix -> if owner.(cix) = v then 1.0 else 0.0),
              Simplex.Le,
              1.0 ))
      in
      let intf_rows =
        Array.init (nb * k) (fun _ ->
            ( Array.init ncols (fun _ ->
                  if Prng.bernoulli g 0.3 then Prng.float g 1.0 else 0.0),
              Simplex.Le,
              rho ))
      in
      let p =
        {
          Simplex.direction = Simplex.Maximize;
          c;
          rows = Array.append unit_rows intf_rows;
        }
      in
      let dense = Simplex.solve p in
      let close a = Float.abs (a -. dense.Simplex.objective) <= 1e-6 *. Float.max 1.0 (Float.abs dense.Simplex.objective) in
      let certified s = (Sa_lp.Certify.check p s).Sa_lp.Certify.certified in
      let run _ =
        let s1, b1, _ = Sa_lp.Revised.solve_warm p in
        let s2, _, st2 = Sa_lp.Revised.solve_warm ?warm_start:b1 p in
        s1.Simplex.status = Simplex.Optimal
        && certified s1 && certified s2
        && close s1.Simplex.objective
        && close s2.Simplex.objective
        && st2.Sa_lp.Revised.warm_used
      in
      dense.Simplex.status = Simplex.Optimal
      && Array.for_all Fun.id (Sa_core.Fanout.map_array ~domains:1 run (Array.init 2 Fun.id))
      && Array.for_all Fun.id (Sa_core.Fanout.map_array ~domains:4 run (Array.init 4 Fun.id)))

let suite =
  [
    Alcotest.test_case "basic max" `Quick test_basic_max;
    Alcotest.test_case "revised simplex basics" `Quick test_revised_matches_dense_basics;
    Alcotest.test_case "revised: infeasible/unbounded" `Quick test_revised_detects_infeasible_unbounded;
    QCheck_alcotest.to_alcotest prop_revised_matches_dense;
    Alcotest.test_case "certify optimal solution" `Quick test_certify_simple;
    Alcotest.test_case "certify rejects tampering" `Quick test_certify_rejects_tampering;
    QCheck_alcotest.to_alcotest prop_certify_random;
    QCheck_alcotest.to_alcotest prop_certify_min_random;
    Alcotest.test_case "interior optimum" `Quick test_basic_max_interior;
    Alcotest.test_case "duals of max LP" `Quick test_duals_max;
    Alcotest.test_case "basic min with >= rows" `Quick test_basic_min;
    Alcotest.test_case "equality row" `Quick test_equality;
    Alcotest.test_case "infeasible detected" `Quick test_infeasible;
    Alcotest.test_case "unbounded detected" `Quick test_unbounded;
    Alcotest.test_case "negative rhs normalised" `Quick test_negative_rhs;
    Alcotest.test_case "degenerate LP terminates" `Quick test_degenerate;
    Alcotest.test_case "unbounded via uncovered column" `Quick test_zero_rows;
    Alcotest.test_case "model builder" `Quick test_model_builder;
    Alcotest.test_case "model add_to_row (column generation)" `Quick test_model_add_to_row;
    Alcotest.test_case "model duplicate coefficients summed" `Quick test_model_duplicate_coeffs;
    QCheck_alcotest.to_alcotest prop_random_packing;
    QCheck_alcotest.to_alcotest prop_dual_feasible;
    QCheck_alcotest.to_alcotest prop_eta_warm_matches_dense_across_domains;
    QCheck_alcotest.to_alcotest prop_certify_degenerate;
    Alcotest.test_case "certify edge cases (zero row, single column)" `Quick
      test_certify_edge_cases;
    QCheck_alcotest.to_alcotest prop_devex_dantzig_parity;
    QCheck_alcotest.to_alcotest prop_workspace_reuse_bitwise;
    QCheck_alcotest.to_alcotest prop_presolve_postsolve_bitwise;
    QCheck_alcotest.to_alcotest prop_presolve_certified_parity;
    Alcotest.test_case "presolve edge cases" `Quick test_presolve_edge_cases;
    Alcotest.test_case "presolve model integration" `Quick
      test_presolve_model_integration;
  ]
