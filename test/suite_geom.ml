(* Tests for Sa_geom: points, metrics, placements, spatial index. *)

module Point = Sa_geom.Point
module Metric = Sa_geom.Metric
module Placement = Sa_geom.Placement
module Spatial = Sa_geom.Spatial
module Prng = Sa_util.Prng

let test_point_dist () =
  let a = Point.make 0.0 0.0 and b = Point.make 3.0 4.0 in
  Alcotest.(check (float 1e-12)) "dist" 5.0 (Point.dist a b);
  Alcotest.(check (float 1e-12)) "dist_sq" 25.0 (Point.dist_sq a b);
  Alcotest.(check (float 1e-12)) "symmetric" (Point.dist a b) (Point.dist b a);
  Alcotest.(check (float 1e-12)) "self" 0.0 (Point.dist a a)

let test_point_midpoint_translate () =
  let a = Point.make 0.0 0.0 and b = Point.make 2.0 4.0 in
  let m = Point.midpoint a b in
  Alcotest.(check (float 1e-12)) "mid x" 1.0 m.Point.x;
  Alcotest.(check (float 1e-12)) "mid y" 2.0 m.Point.y;
  let t = Point.translate a ~dx:1.0 ~dy:(-1.0) in
  Alcotest.(check (float 1e-12)) "tx" 1.0 t.Point.x;
  Alcotest.(check (float 1e-12)) "ty" (-1.0) t.Point.y

let test_metric_euclidean () =
  let pts = [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 0.0 1.0 |] in
  let m = Metric.of_points pts in
  Alcotest.(check int) "size" 3 (Metric.size m);
  Alcotest.(check (float 1e-12)) "d01" 1.0 (Metric.dist m 0 1);
  Alcotest.(check (float 1e-12)) "d12" (sqrt 2.0) (Metric.dist m 1 2);
  Alcotest.(check bool) "triangle" true (Metric.check_triangle m)

let test_metric_matrix_validation () =
  let bad = [| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |] in
  Alcotest.check_raises "asymmetric rejected"
    (Invalid_argument "Metric.of_matrix: not symmetric") (fun () ->
      ignore (Metric.of_matrix bad))

let test_metric_star () =
  let m = Metric.star_metric 5 ~arm:1.0 in
  Alcotest.(check (float 1e-12)) "leaf distance" 2.0 (Metric.dist m 0 4);
  Alcotest.(check bool) "triangle holds" true (Metric.check_triangle m)

let test_placement_uniform () =
  let g = Prng.create ~seed:1 in
  let pts = Placement.uniform g ~n:200 ~side:10.0 in
  Alcotest.(check int) "count" 200 (Array.length pts);
  Array.iter
    (fun p ->
      if p.Point.x < 0.0 || p.Point.x > 10.0 || p.Point.y < 0.0 || p.Point.y > 10.0
      then Alcotest.failf "point outside square")
    pts

let test_placement_clustered () =
  let g = Prng.create ~seed:2 in
  let pts = Placement.clustered g ~n:100 ~side:10.0 ~clusters:3 ~spread:0.5 in
  Alcotest.(check int) "count" 100 (Array.length pts);
  Array.iter
    (fun p ->
      if p.Point.x < 0.0 || p.Point.x > 10.0 || p.Point.y < 0.0 || p.Point.y > 10.0
      then Alcotest.failf "point outside square")
    pts

let test_placement_grid () =
  let pts = Placement.grid ~n:9 ~side:2.0 in
  Alcotest.(check int) "count" 9 (Array.length pts);
  Alcotest.(check (float 1e-12)) "first at origin" 0.0 pts.(0).Point.x;
  (* neighbours on the 3x3 grid over [0,2] are 1.0 apart *)
  Alcotest.(check (float 1e-12)) "spacing" 1.0 (Point.dist pts.(0) pts.(1))

let test_random_links () =
  let g = Prng.create ~seed:3 in
  let links = Placement.random_links g ~n:100 ~side:10.0 ~min_len:0.5 ~max_len:2.0 in
  Alcotest.(check int) "count" 100 (Array.length links);
  Array.iter
    (fun (s, r) ->
      let len = Point.dist s r in
      if len <= 0.0 then Alcotest.failf "degenerate link";
      (* clamping can shorten links, but never beyond the max *)
      if len > 2.0 +. 1e-9 then Alcotest.failf "link too long: %f" len)
    links

(* ---------- Spatial index: grid queries vs brute force ---------------------- *)

let random_cloud seed =
  let g = Prng.create ~seed in
  let n = 1 + Prng.int g 60 in
  let pts = Placement.uniform g ~n ~side:6.0 in
  let r = Prng.uniform_in g 0.3 3.0 in
  (g, pts, r)

let brute_pairs pts r =
  let n = Array.length pts in
  let acc = ref [] in
  for j = n - 1 downto 0 do
    for i = j - 1 downto 0 do
      if Point.dist pts.(i) pts.(j) <= r then acc := (i, j) :: !acc
    done
  done;
  List.sort compare !acc

let prop_pairs_within =
  QCheck.Test.make ~name:"Spatial.pairs_within equals brute force" ~count:80
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let _, pts, r = random_cloud seed in
      let sp = Spatial.create pts in
      Spatial.pairs_within sp r = brute_pairs pts r)

let prop_neighbors_within =
  QCheck.Test.make ~name:"Spatial.neighbors_within equals brute force" ~count:80
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g, pts, r = random_cloud seed in
      let n = Array.length pts in
      let i = Prng.int g n in
      let sp = Spatial.create pts in
      let naive =
        List.filter
          (fun j -> j <> i && Point.dist pts.(i) pts.(j) <= r)
          (List.init n Fun.id)
      in
      Spatial.neighbors_within sp i r = naive)

let prop_farthest_from =
  QCheck.Test.make ~name:"Spatial.farthest_from equals naive argmax" ~count:80
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g, pts, _ = random_cloud seed in
      let n = Array.length pts in
      let q = Point.make (Prng.float g 6.0) (Prng.float g 6.0) in
      let excluding = Prng.int g n in
      let sp = Spatial.create pts in
      (* naive strict-> scan: farthest point, ties to the lowest index *)
      let best = ref None in
      for j = 0 to n - 1 do
        if j <> excluding then begin
          let d = Point.dist pts.(j) q in
          match !best with
          | Some (_, bd) when d <= bd -> ()
          | _ -> best := Some (j, d)
        end
      done;
      Spatial.farthest_from sp ~excluding q = !best)

let prop_triangle_euclidean =
  QCheck.Test.make ~name:"euclidean metrics satisfy triangle inequality"
    ~count:50
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = Prng.create ~seed in
      let pts = Placement.uniform g ~n:8 ~side:5.0 in
      Metric.check_triangle (Metric.of_points pts))

let suite =
  [
    Alcotest.test_case "point distances" `Quick test_point_dist;
    Alcotest.test_case "midpoint/translate" `Quick test_point_midpoint_translate;
    Alcotest.test_case "euclidean metric" `Quick test_metric_euclidean;
    Alcotest.test_case "matrix metric validation" `Quick test_metric_matrix_validation;
    Alcotest.test_case "star metric" `Quick test_metric_star;
    Alcotest.test_case "uniform placement" `Quick test_placement_uniform;
    Alcotest.test_case "clustered placement" `Quick test_placement_clustered;
    Alcotest.test_case "grid placement" `Quick test_placement_grid;
    Alcotest.test_case "random links" `Quick test_random_links;
    QCheck_alcotest.to_alcotest prop_triangle_euclidean;
    QCheck_alcotest.to_alcotest prop_pairs_within;
    QCheck_alcotest.to_alcotest prop_neighbors_within;
    QCheck_alcotest.to_alcotest prop_farthest_from;
  ]
