(* Resilience suite: the fault-tolerant engine's degradation chain.

   Covers the tentpole guarantees of the robustness layer: every job
   terminates with a feasible allocation under any fault pattern, the
   fault pattern (and hence the per-job JSON) is bitwise deterministic
   across runs and domain counts, the warm-start rollback restores the
   pristine cold path exactly, deadlines degrade instead of aborting, and
   the structured failure taxonomy reaches the per-job records. *)

module Prng = Sa_util.Prng
module Timing = Sa_util.Timing
module Simplex = Sa_lp.Simplex
module Revised = Sa_lp.Revised
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Oracle_solver = Sa_core.Oracle_solver
module Workloads = Sa_exp.Workloads
module Engine = Sa_engine.Engine
module Faultgen = Sa_engine.Faultgen
module Failure = Sa_engine.Failure

(* ---------- fixtures ----------------------------------------------------- *)

let small_instance seed =
  let n = 8 + (seed mod 7) and k = 2 + (seed mod 2) in
  if seed mod 2 = 0 then Workloads.protocol_instance ~seed ~n ~k ()
  else Workloads.disk_instance ~seed ~n ~k ()

(* A mixed batch over repeated topologies, exercising all rounding paths. *)
let mixed_jobs ?(count = 6) () =
  List.init count (fun id ->
      let inst = small_instance (1 + (id mod 3)) in
      let algorithm =
        match id mod 3 with
        | 0 -> Engine.Adaptive
        | 1 -> Engine.Lp_round
        | _ -> Engine.Greedy_lp
      in
      Engine.job ~algorithm ~seed:(100 + id) ~trials:2 ~id inst)

let check_result_invariants what (r : Engine.result) jobs =
  let job = List.nth jobs r.Engine.job_id in
  let inst = job.Engine.instance in
  if r.Engine.tier = None then
    Alcotest.failf "%s: job %d failed despite fallback" what r.Engine.job_id;
  if not (Allocation.is_feasible inst r.Engine.allocation) then
    Alcotest.failf "%s: job %d infeasible allocation (tier %s)" what
      r.Engine.job_id
      (match r.Engine.tier with Some t -> Engine.tier_name t | None -> "none");
  Alcotest.(check (float 1e-9))
    (what ^ ": welfare consistent")
    (Allocation.value inst r.Engine.allocation)
    r.Engine.welfare;
  if not (Float.is_finite r.Engine.guarantee && r.Engine.guarantee >= 1.0) then
    Alcotest.failf "%s: job %d guarantee %.3f not certified" what r.Engine.job_id
      r.Engine.guarantee

(* ---------- feasibility under any fault pattern (satellite a) ------------ *)

let prop_feasible_under_faults =
  QCheck.Test.make ~count:12
    ~name:"every job feasible under any fault pattern"
    QCheck.(pair (int_range 0 10_000) (int_range 0 2))
    (fun (fault_seed, rate_idx) ->
      let rate = [| 0.25; 0.5; 1.0 |].(rate_idx) in
      let jobs = mixed_jobs () in
      let faults = Faultgen.create ~seed:fault_seed ~rate () in
      let policy = Engine.policy ~max_retries:1 ~faults () in
      let engine = Engine.create ~warm_start:false () in
      let results, summary = Engine.run_batch ~policy engine jobs in
      Array.iter (fun r -> check_result_invariants "faults" r jobs) results;
      if summary.Engine.failed <> 0 then
        QCheck.Test.fail_reportf "summary reports %d failed jobs"
          summary.Engine.failed;
      if
        summary.Engine.served_lp + summary.Engine.served_greedy
        + summary.Engine.served_online
        <> summary.Engine.jobs
      then QCheck.Test.fail_reportf "tier counts do not partition the batch";
      true)

(* ---------- bitwise determinism (satellite a) ----------------------------- *)

let run_to_json ~domains ~fault_seed ~rate jobs =
  let faults = Faultgen.create ~seed:fault_seed ~rate () in
  let policy = Engine.policy ~max_retries:1 ~faults () in
  (* warm-start off: cache interleaving is the one sanctioned source of
     cross-domain nondeterminism, and this test is about everything else *)
  let engine = Engine.create ~warm_start:false () in
  let results, _ = Engine.run_batch ~domains ~policy engine jobs in
  Engine.results_to_json results

let test_determinism_across_domains () =
  let jobs = mixed_jobs ~count:8 () in
  let j1 = run_to_json ~domains:1 ~fault_seed:7 ~rate:0.4 jobs in
  let j1' = run_to_json ~domains:1 ~fault_seed:7 ~rate:0.4 jobs in
  let j4 = run_to_json ~domains:4 ~fault_seed:7 ~rate:0.4 jobs in
  Alcotest.(check string) "same seed, same run" j1 j1';
  Alcotest.(check string) "domains 1 = domains 4" j1 j4

let test_rate_zero_matches_fault_free () =
  (* A zero-rate harness draws from every stream but never fires; results
     must be bitwise identical to running with no harness at all. *)
  let jobs = mixed_jobs ~count:4 () in
  let with_harness = run_to_json ~domains:1 ~fault_seed:3 ~rate:0.0 jobs in
  let engine = Engine.create ~warm_start:false () in
  let results, _ = Engine.run_batch engine jobs in
  Alcotest.(check string) "rate 0 = no harness" with_harness
    (Engine.results_to_json results)

(* ---------- full-pressure degradation ------------------------------------ *)

let test_rate_one_all_online () =
  (* rate 1.0 fires every site: LP attempts all fail, greedy fails, so the
     online tier (never injected) must serve every job. *)
  let jobs = mixed_jobs ~count:4 () in
  let faults = Faultgen.create ~seed:1 ~rate:1.0 () in
  let policy = Engine.policy ~max_retries:2 ~faults () in
  let engine = Engine.create ~warm_start:false () in
  let results, summary = Engine.run_batch ~policy engine jobs in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "served online" true (r.Engine.tier = Some Engine.Tier_online);
      Alcotest.(check int) "all retries spent" 2 r.Engine.retries;
      check_result_invariants "rate-1" r jobs)
    results;
  Alcotest.(check int) "summary online count" (List.length jobs)
    summary.Engine.served_online;
  Alcotest.(check int) "summary retries" (2 * List.length jobs)
    summary.Engine.retries

(* ---------- warm-start rollback (satellite d) ----------------------------- *)

let random_packing_lp g ~nv ~nr =
  let c = Array.init nv (fun _ -> 1.0 +. Prng.float g 9.0) in
  let rows =
    Array.init nr (fun _ ->
        ( Array.init nv (fun _ -> Prng.float g 3.0),
          Simplex.Le,
          1.0 +. Prng.float g 5.0 ))
  in
  { Simplex.direction = Simplex.Maximize; c; rows }

let bits = Int64.bits_of_float

let test_warm_crash_rollback_bitwise () =
  (* Force the warm pivot-in to break down after mutating solver state: the
     rollback must restore the pristine cold start, so the result is
     bitwise identical to a solve that never saw the warm basis. *)
  for seed = 1 to 10 do
    let g = Prng.create ~seed in
    let p = random_packing_lp g ~nv:8 ~nr:5 in
    let _, basis, _ = Revised.solve_warm p in
    let basis = Option.get basis in
    let p' =
      { p with Simplex.c = Array.map (fun v -> v *. 1.1) p.Simplex.c }
    in
    let cold, cold_basis, _ = Revised.solve_warm p' in
    let crashed, crashed_basis, stats =
      Revised.solve_warm ~warm_start:basis ~inject_warm_crash:true p'
    in
    Alcotest.(check bool) "warm install rolled back" false stats.Revised.warm_used;
    if bits cold.Simplex.objective <> bits crashed.Simplex.objective then
      Alcotest.failf "seed %d: objective differs after rollback" seed;
    Array.iteri
      (fun i x ->
        if bits x <> bits crashed.Simplex.x.(i) then
          Alcotest.failf "seed %d: x.(%d) differs after rollback" seed i)
      cold.Simplex.x;
    Array.iteri
      (fun i y ->
        if bits y <> bits crashed.Simplex.duals.(i) then
          Alcotest.failf "seed %d: dual %d differs after rollback" seed i)
      cold.Simplex.duals;
    Alcotest.(check bool) "same final basis" true (cold_basis = crashed_basis)
  done

(* ---------- deadlines ----------------------------------------------------- *)

let test_expired_deadline_degrades () =
  let inst = Workloads.protocol_instance ~seed:5 ~n:12 ~k:2 () in
  let job = Engine.job ~seed:1 ~id:0 inst in
  let policy = Engine.policy ~deadline_s:0.0 ~max_retries:3 () in
  let engine = Engine.create ~warm_start:false () in
  let r = Engine.run_job_robust engine policy job in
  Alcotest.(check bool) "fell back" true
    (r.Engine.tier = Some Engine.Tier_greedy
    || r.Engine.tier = Some Engine.Tier_online);
  Alcotest.(check bool) "feasible" true
    (Allocation.is_feasible inst r.Engine.allocation);
  (match r.Engine.failures with
  | [ Failure.Timeout _ ] -> ()
  | fs ->
      Alcotest.failf "expected a single timeout, got [%s]"
        (String.concat "; " (List.map Failure.to_string fs)));
  Alcotest.(check int) "timeout is fatal: no retries burned" 0 r.Engine.retries

let test_generous_deadline_serves_lp () =
  let inst = Workloads.protocol_instance ~seed:5 ~n:12 ~k:2 () in
  let job = Engine.job ~seed:1 ~id:0 inst in
  let policy = Engine.policy ~deadline_s:60.0 () in
  let engine = Engine.create ~warm_start:false () in
  let r = Engine.run_job_robust engine policy job in
  Alcotest.(check bool) "lp tier" true (r.Engine.tier = Some Engine.Tier_lp);
  Alcotest.(check bool) "no failures" true (r.Engine.failures = [])

(* ---------- malformed jobs & fallback-off (satellite c) ------------------- *)

let malformed_job () =
  (* Derand over a per-channel conflict structure is the engine's canonical
     malformed job: the LP solves, the rounding stage rejects it. *)
  let inst = Workloads.asymmetric_instance ~seed:3 ~n:10 ~k:2 ~d:3 in
  Engine.job ~algorithm:Engine.Derand_seq ~seed:2 ~id:0 inst

let test_malformed_job_falls_back () =
  let job = malformed_job () in
  let engine = Engine.create ~warm_start:false () in
  let r = Engine.run_job_robust engine Engine.default_policy job in
  Alcotest.(check bool) "greedy tier" true (r.Engine.tier = Some Engine.Tier_greedy);
  (match r.Engine.failures with
  | [ Failure.Malformed_job _ ] -> ()
  | fs ->
      Alcotest.failf "expected a single malformed-job, got [%s]"
        (String.concat "; " (List.map Failure.to_string fs)));
  Alcotest.(check int) "malformed is fatal: no retries burned" 0 r.Engine.retries

let test_no_fallback_reports_failed () =
  let job = malformed_job () in
  let engine = Engine.create ~warm_start:false () in
  let policy = Engine.policy ~fallback:false () in
  let results, summary = Engine.run_batch ~policy engine [ job ] in
  let r = results.(0) in
  Alcotest.(check bool) "failed" true (r.Engine.tier = None);
  Alcotest.(check (float 0.0)) "empty allocation" 0.0 r.Engine.welfare;
  Alcotest.(check bool) "guarantee infinite" true (r.Engine.guarantee = infinity);
  Alcotest.(check int) "summary failed" 1 summary.Engine.failed;
  let json = Engine.results_to_json results in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json emits failed record" true
    (contains json "\"status\":\"failed\"");
  Alcotest.(check bool) "json names the failure" true
    (contains json "\"malformed-job\"")

(* ---------- oracle solver: deadline & stall ------------------------------- *)

let test_oracle_deadline () =
  let inst = Workloads.protocol_instance ~seed:11 ~n:10 ~k:2 () in
  match Oracle_solver.solve ~deadline:(Timing.now () -. 1.0) inst with
  | _ -> Alcotest.fail "expected a timeout"
  | exception Failure.Error (Failure.Timeout { stage; _ }) ->
      Alcotest.(check string) "stage" "colgen" stage

let test_oracle_stall_modes () =
  let inst = Workloads.protocol_instance ~seed:11 ~n:10 ~k:2 () in
  (* max_rounds 1 can never certify optimality: `Fail must raise, `Accept
     must return the (restricted) master optimum. *)
  (match Oracle_solver.solve ~max_rounds:1 ~on_stall:`Fail inst with
  | _ -> Alcotest.fail "expected a colgen stall"
  | exception Failure.Error (Failure.Colgen_stall { rounds }) ->
      Alcotest.(check int) "rounds spent" 1 rounds);
  let frac, _ = Oracle_solver.solve ~max_rounds:1 ~on_stall:`Accept inst in
  Alcotest.(check bool) "accept returns a bounded objective" true
    (Float.is_finite frac.Sa_core.Lp_relaxation.objective)

(* ---------- fault generator ----------------------------------------------- *)

let test_faultgen_deterministic () =
  let f = Faultgen.create ~seed:42 ~rate:0.5 () in
  let draws () =
    let g = Faultgen.stream f ~job:3 ~attempt:1 in
    List.map (fun s -> Faultgen.fires f g s)
      [ Faultgen.Warm_install; Faultgen.Lp_solve; Faultgen.Round ]
  in
  Alcotest.(check (list bool)) "stream reproducible" (draws ()) (draws ());
  let zero = Faultgen.create ~seed:42 ~rate:0.0 () in
  let g = Faultgen.stream zero ~job:0 ~attempt:0 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "rate 0 never fires" false
      (Faultgen.fires zero g Faultgen.Lp_solve)
  done;
  let one = Faultgen.create ~seed:42 ~rate:1.0 () in
  let g = Faultgen.stream one ~job:0 ~attempt:0 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "rate 1 always fires" true
      (Faultgen.fires one g Faultgen.Lp_solve)
  done;
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Faultgen.create: rate must be in [0,1]") (fun () ->
      ignore (Faultgen.create ~rate:1.5 ()))

let test_injected_failures_shape () =
  List.iter
    (fun site ->
      let f = Faultgen.injected ~site ~job:7 in
      (match f with
      | Failure.Timeout _ ->
          Alcotest.fail "injected faults must never be timeouts"
      | _ -> ());
      Alcotest.(check bool) "label stable" true (String.length (Failure.label f) > 0))
    [ Faultgen.Warm_install; Faultgen.Lp_solve; Faultgen.Round; Faultgen.Greedy ]

(* ---------- summary JSON carries the resilience fields --------------------- *)

let test_summary_json_resilience_fields () =
  let jobs = mixed_jobs ~count:3 () in
  let engine = Engine.create ~warm_start:false () in
  let _, summary = Engine.run_batch engine jobs in
  let json = Engine.summary_to_json summary in
  List.iter
    (fun key ->
      let needle = Printf.sprintf "\"%s\":" key in
      let lh = String.length json and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub json i ln = needle || go (i + 1)) in
      if not (go 0) then Alcotest.failf "summary JSON missing %s" key)
    [ "served_lp"; "served_greedy"; "served_online"; "failed"; "retries";
      "deadline_hits" ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_feasible_under_faults;
    Alcotest.test_case "bitwise determinism: runs and domains" `Quick
      test_determinism_across_domains;
    Alcotest.test_case "rate 0 harness = no harness" `Quick
      test_rate_zero_matches_fault_free;
    Alcotest.test_case "rate 1: online tier serves everything" `Quick
      test_rate_one_all_online;
    Alcotest.test_case "warm crash rollback is bitwise cold" `Quick
      test_warm_crash_rollback_bitwise;
    Alcotest.test_case "expired deadline degrades, no abort" `Quick
      test_expired_deadline_degrades;
    Alcotest.test_case "generous deadline stays on LP tier" `Quick
      test_generous_deadline_serves_lp;
    Alcotest.test_case "malformed job falls back to greedy" `Quick
      test_malformed_job_falls_back;
    Alcotest.test_case "no-fallback reports failed jobs in JSON" `Quick
      test_no_fallback_reports_failed;
    Alcotest.test_case "oracle solver honours deadlines" `Quick
      test_oracle_deadline;
    Alcotest.test_case "oracle solver stall modes" `Quick test_oracle_stall_modes;
    Alcotest.test_case "fault generator deterministic" `Quick
      test_faultgen_deterministic;
    Alcotest.test_case "injected failures well-shaped" `Quick
      test_injected_failures_shape;
    Alcotest.test_case "summary JSON resilience fields" `Quick
      test_summary_json_resilience_fields;
  ]
