(* Tests for the batch engine: warm-start correctness (simplex, LP layer,
   engine layer), the topology and basis caches, workload files, and the
   generic parallel map the sharding is built on. *)

module Prng = Sa_util.Prng
module Floats = Sa_util.Floats
module Simplex = Sa_lp.Simplex
module Revised = Sa_lp.Revised
module Certify = Sa_lp.Certify
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Parallel = Sa_core.Parallel
module Serialize = Sa_core.Serialize
module Workloads = Sa_exp.Workloads
module Engine = Sa_engine.Engine
module Workload = Sa_engine.Workload

(* ---------- warm start: revised simplex level ---------------------------- *)

let random_packing_lp g ~nv ~nr =
  let c = Array.init nv (fun _ -> 1.0 +. Prng.float g 9.0) in
  let rows =
    Array.init nr (fun _ ->
        ( Array.init nv (fun _ -> Prng.float g 3.0),
          Simplex.Le,
          1.0 +. Prng.float g 5.0 ))
  in
  { Simplex.direction = Simplex.Maximize; c; rows }

let test_warm_basis_same_objective_certified () =
  (* Solving a perturbed-objective LP from the previous optimum's basis must
     give the same optimum as a cold solve, and both solutions must carry an
     independent optimality certificate. *)
  for seed = 1 to 12 do
    let g = Prng.create ~seed in
    let p = random_packing_lp g ~nv:8 ~nr:5 in
    let _, basis, _ = Revised.solve_warm p in
    let basis =
      match basis with
      | Some b -> b
      | None -> Alcotest.failf "seed %d: cold solve returned no basis" seed
    in
    (* same shape, new objective: the warm start's use case *)
    let p' = { p with Simplex.c = Array.map (fun v -> v *. Prng.uniform_in g 0.5 1.5) p.Simplex.c } in
    let cold, _, cold_stats = Revised.solve_warm p' in
    let warm, _, warm_stats = Revised.solve_warm ~warm_start:basis p' in
    Alcotest.(check bool) "warm basis accepted" true warm_stats.Revised.warm_used;
    if not (Floats.approx_eq ~eps:1e-6 cold.Simplex.objective warm.Simplex.objective)
    then
      Alcotest.failf "seed %d: cold %.9f <> warm %.9f" seed cold.Simplex.objective
        warm.Simplex.objective;
    let certify what sol =
      let report = Certify.check p' sol in
      if not report.Certify.certified then
        Alcotest.failf "seed %d: %s solution not certified" seed what
    in
    certify "cold" cold;
    certify "warm" warm;
    ignore cold_stats
  done

let test_warm_basis_garbage_degrades_to_cold () =
  let g = Prng.create ~seed:99 in
  let p = random_packing_lp g ~nv:6 ~nr:4 in
  let cold, _, _ = Revised.solve_warm p in
  List.iter
    (fun (what, bogus) ->
      let warm, _, stats = Revised.solve_warm ~warm_start:bogus p in
      Alcotest.(check bool) (what ^ " rejected") false stats.Revised.warm_used;
      Alcotest.(check (float 1e-9)) (what ^ " objective unchanged")
        cold.Simplex.objective warm.Simplex.objective)
    [
      ("wrong length", [| 0 |]);
      ("out of range", [| 999; 998; 997; 996 |]);
      ("duplicate", [| 0; 0; 1; 2 |]);
    ]

(* ---------- warm start: auction LP level --------------------------------- *)

let test_warm_lp_matches_cold () =
  (* Cold-solve an instance, revalue its bids (same shape fingerprint), then
     solve the revalued LP cold and from the cached basis: objectives agree
     within the project tolerance and both solutions satisfy the LP. *)
  for seed = 1 to 6 do
    let inst = Workloads.protocol_instance ~seed ~n:14 ~k:3 () in
    let _, stats0 =
      Lp.solve_explicit_stats ~engine:Sa_lp.Model.Revised_sparse inst
    in
    let basis =
      match stats0.Lp.basis with
      | Some b -> b
      | None -> Alcotest.failf "seed %d: no basis from cold solve" seed
    in
    let jittered = Workload.revalue ~seed:(seed + 100) inst in
    Alcotest.(check string) "revalue keeps shape"
      (Serialize.shape_fingerprint inst)
      (Serialize.shape_fingerprint jittered);
    let cold, _ = Lp.solve_explicit_stats ~engine:Sa_lp.Model.Revised_sparse jittered in
    let warm, wstats =
      Lp.solve_explicit_stats ~engine:Sa_lp.Model.Revised_sparse ~warm_start:basis
        jittered
    in
    Alcotest.(check bool) "warm start used" true wstats.Lp.warm_start_used;
    if not (Floats.approx_eq cold.Lp.objective warm.Lp.objective) then
      Alcotest.failf "seed %d: cold %.9f <> warm %.9f" seed cold.Lp.objective
        warm.Lp.objective;
    Alcotest.(check bool) "cold LP-feasible" true (Lp.is_lp_feasible jittered cold);
    Alcotest.(check bool) "warm LP-feasible" true (Lp.is_lp_feasible jittered warm)
  done

(* ---------- engine caches ------------------------------------------------ *)

let test_engine_warm_hits_and_objective () =
  let specs = [ Workload.spec ~model:Workload.Protocol ~n:14 ~k:3 ~seed:4 ~repeat:5 () ] in
  let warm_engine = Engine.create ~warm_start:true () in
  let jobs = Workload.expand warm_engine specs in
  let warm_results, warm_summary = Engine.run_batch warm_engine jobs in
  let cold_engine = Engine.create ~warm_start:false () in
  let cold_results, cold_summary =
    Engine.run_batch cold_engine (Workload.expand cold_engine specs)
  in
  (* first job of a fresh shape is necessarily cold; the repeats must hit *)
  Alcotest.(check bool) "job 0 cold" false warm_results.(0).Engine.warm_start;
  for i = 1 to Array.length warm_results - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "job %d warm" i)
      true warm_results.(i).Engine.warm_start
  done;
  Alcotest.(check int) "summary counts the hits" 4 warm_summary.Engine.warm_hits;
  Alcotest.(check int) "cold run has none" 0 cold_summary.Engine.warm_hits;
  Alcotest.(check int) "one cached basis" 1 warm_summary.Engine.basis_entries;
  (* warm or cold, each job's LP optimum is the same *)
  Array.iteri
    (fun i w ->
      if not (Floats.approx_eq w.Engine.lp_objective cold_results.(i).Engine.lp_objective)
      then
        Alcotest.failf "job %d: warm lp %.9f <> cold lp %.9f" i w.Engine.lp_objective
          cold_results.(i).Engine.lp_objective)
    warm_results;
  (* warm runs must not pay more pivots overall than cold runs *)
  Alcotest.(check bool) "warm pivots <= cold pivots" true
    (warm_summary.Engine.lp_iterations <= cold_summary.Engine.lp_iterations)

let test_topology_cache_reuses () =
  let engine = Engine.create () in
  let inst = Workloads.protocol_instance ~seed:7 ~n:12 ~k:2 () in
  let t1 = Engine.topology_of_conflict engine inst.Instance.conflict in
  let t2 = Engine.topology_of_conflict engine inst.Instance.conflict in
  Alcotest.(check bool) "second lookup returns the cached record" true (t1 == t2);
  let prepared =
    Engine.prepare engine ~conflict:inst.Instance.conflict ~k:inst.Instance.k
      inst.Instance.bidders
  in
  Alcotest.(check (float 1e-12)) "prepare reuses cached rho" t1.Engine.rho
    prepared.Instance.rho

let test_job_validation () =
  let inst = Workloads.protocol_instance ~seed:1 ~n:6 ~k:2 () in
  Alcotest.check_raises "trials >= 1"
    (Invalid_argument "Engine.job: trials must be >= 1") (fun () ->
      ignore (Engine.job ~trials:0 ~id:0 inst))

let test_summary_json_well_formed () =
  let engine = Engine.create () in
  let jobs = Workload.expand engine Workload.demo in
  let _, summary = Engine.run_batch engine jobs in
  let json = Engine.summary_to_json summary in
  List.iter
    (fun key ->
      let needle = Printf.sprintf "\"%s\":" key in
      let found =
        let nl = String.length needle and jl = String.length json in
        let rec scan i = i + nl <= jl && (String.sub json i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (key ^ " present") true found)
    [
      "jobs"; "total_welfare"; "total_lp_objective"; "lp_iterations"; "warm_hits";
      "lp_seconds"; "round_seconds"; "wall_seconds"; "topology_hits";
      "topology_misses"; "basis_entries";
    ]

(* ---------- workload files ----------------------------------------------- *)

let test_workload_round_trip () =
  let specs = Workload.demo in
  let back = Workload.of_string (Workload.to_string specs) in
  Alcotest.(check bool) "specs survive the file format" true (back = specs)

let test_workload_rejects_malformed () =
  let bad text = try ignore (Workload.of_string text); false with Failure _ -> true in
  Alcotest.(check bool) "bad header" true (bad "nonsense 1\nend\n");
  Alcotest.(check bool) "missing end" true (bad "specauction-workload 1\n");
  Alcotest.(check bool) "bad model" true
    (bad "specauction-workload 1\nbatch model=cubic n=4 k=2\nend\n");
  Alcotest.(check bool) "missing n" true
    (bad "specauction-workload 1\nbatch model=protocol k=2\nend\n")

(* ---------- Parallel.map_array ------------------------------------------- *)

let test_map_array_matches_sequential () =
  let arr = Array.init 23 (fun i -> i) in
  let f i = (i * i) + 1 in
  let expected = Array.map f arr in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "%d domains" domains)
        expected
        (Parallel.map_array ~domains f arr))
    [ 1; 2; 3; 7; 64 ];
  Alcotest.(check (array int)) "empty input" [||] (Parallel.map_array ~domains:4 f [||]);
  Alcotest.check_raises "domains >= 1"
    (Invalid_argument "Parallel.map_array: domains must be >= 1") (fun () ->
      ignore (Parallel.map_array ~domains:0 f arr))

(* ---------- registration ------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "warm basis: same objective, both certified" `Quick
      test_warm_basis_same_objective_certified;
    Alcotest.test_case "warm basis: garbage degrades to cold" `Quick
      test_warm_basis_garbage_degrades_to_cold;
    Alcotest.test_case "auction LP: warm = cold within tolerance" `Quick
      test_warm_lp_matches_cold;
    Alcotest.test_case "engine: warm hits and equal LP optima" `Quick
      test_engine_warm_hits_and_objective;
    Alcotest.test_case "engine: topology cache reuses" `Quick test_topology_cache_reuses;
    Alcotest.test_case "engine: job validation" `Quick test_job_validation;
    Alcotest.test_case "engine: summary JSON well-formed" `Quick
      test_summary_json_well_formed;
    Alcotest.test_case "workload: file round-trip" `Quick test_workload_round_trip;
    Alcotest.test_case "workload: malformed input rejected" `Quick
      test_workload_rejects_malformed;
    Alcotest.test_case "parallel: map_array = Array.map" `Quick
      test_map_array_matches_sequential;
  ]
