let () =
  Alcotest.run "specauction"
    [
      ("util", Suite_util.suite);
      ("geometry", Suite_geom.suite);
      ("graph", Suite_graph.suite);
      ("lp", Suite_lp.suite);
      ("valuation", Suite_valuation.suite);
      ("wireless", Suite_wireless.suite);
      ("core", Suite_core.suite);
      ("mechanism", Suite_mechanism.suite);
      ("double-auction", Suite_double_auction.suite);
      ("serialize", Suite_serialize.suite);
      ("viz", Suite_viz.suite);
      ("primary", Suite_primary.suite);
      ("simulation", Suite_sim.suite);
      ("edge-cases", Suite_edge_cases.suite);
      ("online", Suite_online.suite);
      ("parallel", Suite_parallel.suite);
      ("metrics", Suite_metrics.suite);
      ("telemetry", Suite_telemetry.suite);
      ("observability", Suite_observability.suite);
      ("properties", Suite_properties.suite);
      ("engine", Suite_engine.suite);
      ("resilience", Suite_resilience.suite);
      ("pool", Suite_pool.suite);
    ]
