(* Telemetry registry, exporters and tracing (lib/telemetry).

   The load-bearing property is domain-safety: counter totals must be
   EXACT — not approximately right — when increments race across the
   domains of Parallel.map_array, because scripts/check.sh diffs counter
   blocks across --domains values byte-for-byte. *)

module Metrics = Sa_telemetry.Metrics
module Trace = Sa_telemetry.Trace
module Export = Sa_telemetry.Export
module Parallel = Sa_core.Parallel
module Timing = Sa_util.Timing

let test_counter_exact_across_domains () =
  List.iter
    (fun domains ->
      let registry = Metrics.create () in
      let c = Metrics.counter ~registry "test.shard.hits" in
      let per_task = 1_000 in
      let tasks = Array.init 64 Fun.id in
      ignore
        (Parallel.map_array ~domains
           (fun _ ->
             for _ = 1 to per_task do
               Metrics.incr c
             done)
           tasks);
      Alcotest.(check int)
        (Printf.sprintf "%d domains exact" domains)
        (Array.length tasks * per_task)
        (Metrics.counter_value c))
    [ 1; 2; 3; 4; 8 ]

let prop_counter_add_exact =
  QCheck.Test.make ~name:"counter total = sum of racing adds" ~count:30
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.return 32) (int_range 0 50)))
    (fun (domains, amounts) ->
      let registry = Metrics.create () in
      let c = Metrics.counter ~registry "test.prop.adds" in
      let arr = Array.of_list amounts in
      ignore (Parallel.map_array ~domains (fun n -> Metrics.add c n) arr);
      Metrics.counter_value c = Array.fold_left ( + ) 0 arr)

let test_histogram_exact_across_domains () =
  let registry = Metrics.create () in
  let h =
    Metrics.histogram ~registry ~buckets:[| 1.0; 2.0; 4.0 |] "test.shard.obs"
  in
  (* 0.5 -> bucket <=1, 1.5 -> <=2, 8.0 -> +inf overflow *)
  let samples = Array.init 90 (fun i -> [| 0.5; 1.5; 8.0 |].(i mod 3)) in
  ignore (Parallel.map_array ~domains:4 (Metrics.observe h) samples);
  Alcotest.(check int) "count" 90 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" (30.0 *. (0.5 +. 1.5 +. 8.0))
    (Metrics.histogram_sum h);
  let view = Metrics.snapshot ~registry () in
  match Metrics.find_histogram view "test.shard.obs" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hv ->
      Alcotest.(check (array int)) "per-bucket counts" [| 30; 30; 0; 30 |]
        hv.Metrics.counts

let test_gauge_ops () =
  let registry = Metrics.create () in
  let g = Metrics.gauge ~registry "test.gauge" in
  Metrics.set_gauge g 2.5;
  Metrics.add_gauge g 0.75;
  Alcotest.(check (float 1e-12)) "set+add" 3.25 (Metrics.gauge_value g);
  (* concurrent add_gauge must not lose updates (CAS loop) *)
  ignore
    (Parallel.map_array ~domains:4
       (fun _ -> Metrics.add_gauge g 1.0)
       (Array.make 400 ()));
  Alcotest.(check (float 1e-9)) "racing adds" 403.25 (Metrics.gauge_value g)

let test_registration_idempotent_and_kind_safe () =
  let registry = Metrics.create () in
  let a = Metrics.counter ~registry "test.dup" in
  let b = Metrics.counter ~registry "test.dup" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "same metric" 2 (Metrics.counter_value a);
  (let raised =
     try
       ignore (Metrics.gauge ~registry "test.dup");
       false
     with Invalid_argument _ -> true
   in
   Alcotest.(check bool) "kind clash raises" true raised);
  let raised =
    try
      ignore (Metrics.counter ~registry "Bad Name!");
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "invalid name raises" true raised;
  let raised =
    try
      Metrics.add a (-1);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative add raises" true raised

let test_reset_zeroes_keeps_schema () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "test.reset.c" in
  let g = Metrics.gauge ~registry "test.reset.g" in
  let h = Metrics.histogram ~registry "test.reset.h" in
  Metrics.add c 7;
  Metrics.set_gauge g 3.0;
  Metrics.observe h 0.01;
  Metrics.reset ~registry ();
  let view = Metrics.snapshot ~registry () in
  Alcotest.(check (option int)) "counter zero" (Some 0)
    (Metrics.find_counter view "test.reset.c");
  Alcotest.(check (option (float 0.0))) "gauge zero" (Some 0.0)
    (Metrics.find_gauge view "test.reset.g");
  Alcotest.(check int) "histogram count zero" 0 (Metrics.histogram_count h)

let test_snapshot_json_round_trip () =
  let registry = Metrics.create () in
  let c1 = Metrics.counter ~registry "rt.alpha" in
  let c2 = Metrics.counter ~registry "rt.beta" in
  let g = Metrics.gauge ~registry "rt.gamma" in
  let h = Metrics.histogram ~registry ~buckets:[| 0.001; 0.1 |] "rt.delta" in
  Metrics.add c1 42;
  Metrics.incr c2;
  Metrics.set_gauge g (1.0 /. 3.0);
  Metrics.observe h 0.0005;
  Metrics.observe h 17.25;
  let view = Metrics.snapshot ~registry () in
  let spans =
    [
      {
        Trace.id = 3;
        parent = None;
        name = "rt.span";
        start_s = 1.5;
        dur_s = 0.25;
        domain = 0;
        attrs = [ ("job", "0"); ("tier", "lp") ];
      };
      {
        Trace.id = 4;
        parent = Some 3;
        name = "rt.child";
        start_s = 1.6;
        dur_s = 0.05;
        domain = 0;
        attrs = [];
      };
    ]
  in
  let json = Export.snapshot_to_json ~spans view in
  let view', spans' = Export.snapshot_of_json json in
  Alcotest.(check bool) "views equal" true (view = view');
  Alcotest.(check bool) "spans equal" true (spans = spans')

let test_snapshot_json_rejects_garbage () =
  List.iter
    (fun bad ->
      let raised =
        try
          ignore (Export.snapshot_of_json bad);
          false
        with Export.Parse_error _ -> true
      in
      Alcotest.(check bool) ("rejects " ^ bad) true raised)
    [ ""; "{"; "not json"; "{\"counters\": [}"; "{\"version\": 1" ]

let test_prometheus_format () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "prom.lp.pivots" in
  let h = Metrics.histogram ~registry ~buckets:[| 0.5 |] "prom.lat" in
  Metrics.add c 9;
  Metrics.observe h 0.1;
  Metrics.observe h 2.0;
  let text = Export.to_prometheus (Metrics.snapshot ~registry ()) in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true
    (contains "specauction_prom_lp_pivots 9");
  Alcotest.(check bool) "counter type" true
    (contains "# TYPE specauction_prom_lp_pivots counter");
  Alcotest.(check bool) "cumulative +Inf bucket" true
    (contains "le=\"+Inf\"} 2")

let test_trace_spans () =
  Trace.clear ();
  let registry = Metrics.create () in
  let h = Metrics.histogram ~registry "test.span.seconds" in
  let result = Trace.with_span ~hist:h "test.span" (fun () -> 1 + 1) in
  Alcotest.(check int) "body result" 2 result;
  Alcotest.(check int) "histogram observed" 1 (Metrics.histogram_count h);
  (match List.rev (Trace.recent ()) with
  | [] -> Alcotest.fail "no span recorded"
  | span :: _ ->
      Alcotest.(check string) "span name" "test.span" span.Trace.name;
      Alcotest.(check bool) "duration >= 0" true (span.Trace.dur_s >= 0.0));
  (* spans survive exceptions *)
  Trace.clear ();
  (try
     Trace.with_span ~hist:h "test.span.raise" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "observed on exception" 2 (Metrics.histogram_count h);
  Alcotest.(check int) "span recorded on exception" 1
    (List.length (Trace.recent ()))

let test_timing_monotonic () =
  let prev = ref (Timing.now ()) in
  for _ = 1 to 1_000 do
    let t = Timing.now () in
    if t < !prev then Alcotest.fail "Timing.now went backwards";
    prev := t
  done;
  let _, dt = Timing.time (fun () -> Sys.opaque_identity (Array.make 1000 0)) in
  Alcotest.(check bool) "elapsed >= 0" true (dt >= 0.0)

let test_well_known_schema () =
  (* The default registry pre-registers the pipeline counters so snapshots
     carry the full schema even for binaries that never touch a path. *)
  let view = Metrics.snapshot () in
  List.iter
    (fun name ->
      if Metrics.find_counter view name = None then
        Alcotest.fail (name ^ " not pre-registered"))
    [
      "lp.simplex.pivots"; "lp.revised.pivots"; "core.colgen.oracle_calls";
      "core.rounding.trials"; "core.derand.candidates"; "graph.rho.estimates";
      "engine.topology.hits"; "engine.basis.lookups";
    ]

let suite =
  [
    Alcotest.test_case "counters exact across 1..8 domains" `Quick
      test_counter_exact_across_domains;
    QCheck_alcotest.to_alcotest prop_counter_add_exact;
    Alcotest.test_case "histogram exact across domains" `Quick
      test_histogram_exact_across_domains;
    Alcotest.test_case "gauge set/add, racing adds" `Quick test_gauge_ops;
    Alcotest.test_case "registration idempotent, kind/name safe" `Quick
      test_registration_idempotent_and_kind_safe;
    Alcotest.test_case "reset zeroes, keeps schema" `Quick
      test_reset_zeroes_keeps_schema;
    Alcotest.test_case "JSON snapshot round-trips" `Quick
      test_snapshot_json_round_trip;
    Alcotest.test_case "JSON parser rejects garbage" `Quick
      test_snapshot_json_rejects_garbage;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_format;
    Alcotest.test_case "trace spans record and survive exceptions" `Quick
      test_trace_spans;
    Alcotest.test_case "Timing.now is monotone" `Quick test_timing_monotonic;
    Alcotest.test_case "well-known metrics pre-registered" `Quick
      test_well_known_schema;
  ]
