(* Integration tests for the core auction pipeline: LP relaxation, rounding
   algorithms, demand-oracle column generation, exact solver, baselines. *)

module Prng = Sa_util.Prng
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Vgen = Sa_val.Gen
module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Generators = Sa_graph.Generators
module Inductive = Sa_graph.Inductive
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Oracle = Sa_core.Oracle_solver
module Exact = Sa_core.Exact
module Greedy = Sa_core.Greedy
module Edge_lp = Sa_core.Edge_lp
module Hardness = Sa_core.Hardness

(* ---------- fixtures ---------------------------------------------------- *)

(* A small random unweighted instance with XOR bidders on a bounded-degree
   graph, using the degeneracy ordering. *)
let random_unweighted_instance ~seed ~n ~k ~d =
  let g = Prng.create ~seed in
  let graph = Generators.random_bounded_degree g ~n ~d in
  let pi, degeneracy = Inductive.degeneracy_ordering graph in
  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:3 ~max_bundle:(min 3 k)
          ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi
    ~rho:(float_of_int (max 1 degeneracy))

(* A small edge-weighted instance with random weights. *)
let random_weighted_instance ~seed ~n ~k =
  let g = Prng.create ~seed in
  let wg = Generators.random_weighted g ~n ~density:0.4 ~scale:0.6 in
  let pi = Ordering.identity n in
  let rho_est = (Inductive.rho_weighted wg pi).Inductive.rho in
  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:3 ~max_bundle:(min 3 k)
          ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  Instance.make ~conflict:(Instance.Edge_weighted wg) ~k ~bidders ~ordering:pi
    ~rho:(Float.max 1.0 rho_est)

(* ---------- LP relaxation ----------------------------------------------- *)

let test_lemma1 () =
  (* Any feasible allocation, injected as a 0/1 vector, satisfies the LP. *)
  let inst = random_unweighted_instance ~seed:42 ~n:14 ~k:3 ~d:4 in
  let exact = Exact.solve inst in
  Alcotest.(check bool) "exact solver finished" true exact.Exact.exact;
  Alcotest.(check bool)
    "optimal allocation is feasible" true
    (Allocation.is_feasible inst exact.Exact.allocation);
  let point = Lp.of_allocation inst exact.Exact.allocation in
  Alcotest.(check bool) "Lemma 1: integral point is LP-feasible" true
    (Lp.is_lp_feasible inst point)

let test_lp_upper_bounds_opt () =
  let inst = random_unweighted_instance ~seed:7 ~n:12 ~k:2 ~d:3 in
  let frac = Lp.solve_explicit inst in
  let exact = Exact.solve inst in
  Alcotest.(check bool) "LP optimum >= integral optimum" true
    (frac.Lp.objective >= exact.Exact.value -. 1e-6)

let test_lp_solution_feasible () =
  let inst = random_unweighted_instance ~seed:11 ~n:16 ~k:4 ~d:4 in
  let frac = Lp.solve_explicit inst in
  Alcotest.(check bool) "LP optimum satisfies its own constraints" true
    (Lp.is_lp_feasible inst frac)

let test_lp_zeroed_bidder () =
  let inst = random_unweighted_instance ~seed:3 ~n:10 ~k:2 ~d:3 in
  let full = Lp.solve_explicit inst in
  let without0 = Lp.solve_explicit ~zeroed:[ 0 ] inst in
  Alcotest.(check bool) "removing a bidder cannot raise the optimum" true
    (without0.Lp.objective <= full.Lp.objective +. 1e-6)

let test_lp_engines_agree () =
  (* The two simplex engines must produce the same optimum on real auction
     LPs (values can differ at degenerate vertices; objectives cannot). *)
  for seed = 1 to 6 do
    let inst = random_unweighted_instance ~seed ~n:15 ~k:3 ~d:4 in
    let dense = Lp.solve_explicit ~engine:Sa_lp.Model.Dense_tableau inst in
    let revised = Lp.solve_explicit ~engine:Sa_lp.Model.Revised_sparse inst in
    if Float.abs (dense.Lp.objective -. revised.Lp.objective) > 1e-5 then
      Alcotest.failf "engines disagree: %.8f vs %.8f" dense.Lp.objective
        revised.Lp.objective;
    Alcotest.(check bool) "revised solution LP-feasible" true
      (Lp.is_lp_feasible inst revised)
  done

let test_lp_scale () =
  let inst = random_unweighted_instance ~seed:5 ~n:10 ~k:2 ~d:3 in
  let frac = Lp.solve_explicit inst in
  let half = Lp.scale frac 0.5 in
  Alcotest.(check (float 1e-9)) "objective halves" (frac.Lp.objective /. 2.0)
    half.Lp.objective;
  Alcotest.(check bool) "scaled point stays feasible (Observation 2)" true
    (Lp.is_lp_feasible inst half)

(* ---------- Algorithm 1 -------------------------------------------------- *)

let test_algorithm1_feasible () =
  let inst = random_unweighted_instance ~seed:19 ~n:20 ~k:4 ~d:5 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:100 in
  for _ = 1 to 30 do
    let alloc = Rounding.algorithm1 g inst frac in
    if not (Allocation.is_feasible inst alloc) then
      Alcotest.failf "algorithm1 produced an infeasible allocation"
  done

let test_algorithm1_expectation () =
  (* Theorem 3: E[value] >= b*/8√k·ρ.  Empirical mean over many runs should
     clear half the bound comfortably. *)
  let inst = random_unweighted_instance ~seed:23 ~n:20 ~k:4 ~d:4 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:7 in
  let runs = 300 in
  let total = ref 0.0 in
  for _ = 1 to runs do
    total := !total +. Allocation.value inst (Rounding.algorithm1 g inst frac)
  done;
  let mean = !total /. float_of_int runs in
  let bound = frac.Lp.objective /. Rounding.guarantee inst in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f >= 0.5 * bound %.3f" mean bound)
    true
    (mean >= 0.5 *. bound)

let test_solve_never_worse_than_bound_needed () =
  let inst = random_unweighted_instance ~seed:31 ~n:18 ~k:2 ~d:4 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:8 in
  let alloc = Rounding.solve ~trials:16 g inst frac in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc);
  Alcotest.(check bool) "value below LP optimum" true
    (Allocation.value inst alloc <= frac.Lp.objective +. 1e-6)

(* ---------- Algorithms 2 + 3 --------------------------------------------- *)

let test_algorithm2_partly_feasible () =
  let inst = random_weighted_instance ~seed:13 ~n:16 ~k:3 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:55 in
  for _ = 1 to 30 do
    let partly = Rounding.algorithm2 g inst frac in
    if not (Rounding.is_partly_feasible inst partly) then
      Alcotest.failf "algorithm2 violated Condition (5)"
  done

let test_algorithm3_feasible () =
  let inst = random_weighted_instance ~seed:17 ~n:16 ~k:3 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:56 in
  for _ = 1 to 30 do
    let partly = Rounding.algorithm2 g inst frac in
    let final = Rounding.algorithm3 inst partly in
    if not (Allocation.is_feasible inst final) then
      Alcotest.failf "algorithm3 output infeasible";
    (* Algorithm 3 only ever removes vertices. *)
    Array.iteri
      (fun v b ->
        if not (Bundle.is_empty b) then
          Alcotest.(check bool) "subset of input" true (Bundle.equal b partly.(v)))
      final
  done

let test_algorithm3_value_bound () =
  (* Lemma 8: the output keeps at least 1/log2 n of the partly feasible
     value. *)
  let inst = random_weighted_instance ~seed:29 ~n:20 ~k:2 in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:57 in
  let logn = Sa_util.Floats.log2n (Instance.n inst) in
  for _ = 1 to 20 do
    let partly = Rounding.algorithm2 g inst frac in
    let final = Rounding.algorithm3 inst partly in
    let pv = Allocation.value inst partly and fv = Allocation.value inst final in
    if fv < (pv /. logn) -. 1e-9 then
      Alcotest.failf "algorithm3 kept %.4f < %.4f/log n" fv pv
  done

(* ---------- Oracle solver ------------------------------------------------ *)

let test_oracle_matches_explicit_xor () =
  let inst = random_unweighted_instance ~seed:37 ~n:14 ~k:3 ~d:4 in
  let explicit = Lp.solve_explicit inst in
  let oracle, stats = Oracle.solve inst in
  Alcotest.(check bool)
    (Printf.sprintf "oracle %.6f vs explicit %.6f (cols %d)"
       oracle.Lp.objective explicit.Lp.objective stats.Oracle.columns_generated)
    true
    (Float.abs (oracle.Lp.objective -. explicit.Lp.objective) < 1e-5);
  Alcotest.(check bool) "oracle solution LP-feasible" true
    (Lp.is_lp_feasible inst oracle)

let test_oracle_matches_explicit_mixed () =
  (* Non-XOR bidders: explicit enumeration vs column generation. *)
  let seed = 41 in
  let g = Prng.create ~seed in
  let n = 10 and k = 3 in
  let graph = Generators.random_bounded_degree g ~n ~d:3 in
  let pi, degeneracy = Inductive.degeneracy_ordering graph in
  let bidders =
    Array.init n (fun _ -> Vgen.random_mixed g ~k ~dist:(Vgen.Uniform (1.0, 5.0)))
  in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k ~bidders ~ordering:pi
      ~rho:(float_of_int (max 1 degeneracy))
  in
  let explicit = Lp.solve_explicit inst in
  let oracle, _ = Oracle.solve inst in
  Alcotest.(check bool)
    (Printf.sprintf "oracle %.6f vs explicit %.6f" oracle.Lp.objective
       explicit.Lp.objective)
    true
    (Float.abs (oracle.Lp.objective -. explicit.Lp.objective) < 1e-4)

let test_oracle_weighted () =
  let inst = random_weighted_instance ~seed:43 ~n:12 ~k:2 in
  let explicit = Lp.solve_explicit inst in
  let oracle, _ = Oracle.solve inst in
  Alcotest.(check bool)
    (Printf.sprintf "oracle %.6f vs explicit %.6f" oracle.Lp.objective
       explicit.Lp.objective)
    true
    (Float.abs (oracle.Lp.objective -. explicit.Lp.objective) < 1e-4)

(* Incremental dual pricing recomputes only stale entries but in the same
   summation order as the naive path, so (for a fixed LP engine) the whole
   column-generation trajectory — objective, rounds, generated columns —
   must be bitwise identical; likewise fanning the demand oracles across
   domains must change nothing. *)
let test_oracle_pricing_parity () =
  List.iter
    (fun inst ->
      let run ~pricing ~domains =
        Oracle.solve ~engine:Sa_lp.Model.Revised_sparse ~pricing ~domains inst
      in
      let f_naive, s_naive = run ~pricing:Oracle.Naive ~domains:1 in
      let f_inc, s_inc = run ~pricing:Oracle.Incremental ~domains:1 in
      let f_par, s_par = run ~pricing:Oracle.Incremental ~domains:4 in
      Alcotest.(check (float 0.0))
        "incremental objective bitwise equal" f_naive.Lp.objective
        f_inc.Lp.objective;
      Alcotest.(check int) "incremental columns equal" s_naive.Oracle.columns_generated
        s_inc.Oracle.columns_generated;
      Alcotest.(check int) "incremental rounds equal" s_naive.Oracle.iterations
        s_inc.Oracle.iterations;
      Alcotest.(check (float 0.0))
        "4-domain objective bitwise equal" f_inc.Lp.objective f_par.Lp.objective;
      Alcotest.(check int) "4-domain columns equal" s_inc.Oracle.columns_generated
        s_par.Oracle.columns_generated;
      Alcotest.(check int) "4-domain rounds equal" s_inc.Oracle.iterations
        s_par.Oracle.iterations)
    [
      random_unweighted_instance ~seed:61 ~n:16 ~k:3 ~d:4;
      random_weighted_instance ~seed:67 ~n:12 ~k:2;
    ]

(* Rounding.solve_par: per-trial PRNG streams merged in index order, so the
   chosen allocation is a function of the seed alone, not the domain count. *)
let test_rounding_solve_par_deterministic () =
  let inst = random_unweighted_instance ~seed:71 ~n:18 ~k:3 ~d:4 in
  let frac = Lp.solve_explicit inst in
  let a1 = Rounding.solve_par ~domains:1 ~trials:6 ~seed:5 inst frac in
  let a4 = Rounding.solve_par ~domains:4 ~trials:6 ~seed:5 inst frac in
  Alcotest.(check bool) "identical allocations" true (a1 = a4);
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst a1)

(* ---------- Exact and greedy --------------------------------------------- *)

let test_exact_beats_greedy () =
  for seed = 1 to 10 do
    let inst = random_unweighted_instance ~seed ~n:10 ~k:2 ~d:3 in
    let e = Exact.solve inst in
    let g1 = Greedy.by_value inst in
    let g2 = Greedy.by_density inst in
    Alcotest.(check bool) "greedy by_value feasible" true (Allocation.is_feasible inst g1);
    Alcotest.(check bool) "greedy by_density feasible" true (Allocation.is_feasible inst g2);
    Alcotest.(check bool) "exact >= greedy" true
      (e.Exact.value >= Allocation.value inst g1 -. 1e-9
      && e.Exact.value >= Allocation.value inst g2 -. 1e-9)
  done

let test_greedy_from_lp () =
  let inst = random_unweighted_instance ~seed:47 ~n:15 ~k:3 ~d:4 in
  let frac = Lp.solve_explicit inst in
  let alloc = Greedy.from_lp inst frac in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_rate_based_bidders () =
  let g = Prng.create ~seed:97 in
  let sys =
    Sa_wireless.Link.of_point_pairs
      (Sa_geom.Placement.random_links g ~n:10 ~side:8.0 ~min_len:0.5 ~max_len:2.0)
  in
  let prm = { Sa_wireless.Sinr.alpha = 3.0; beta = 1.5; noise = 0.01 } in
  let bidders = Sa_exp.Workloads.rate_based_bidders g ~sys ~k:3 ~prm in
  Alcotest.(check int) "one per link" 10 (Array.length bidders);
  Array.iter (fun b -> Valuation.validate b ~k:3) bidders;
  (* shorter links are worth more per channel (same demand would be needed
     for a strict check; verify the monotone rate component instead) *)
  Array.iteri
    (fun i b ->
      let v1 = Valuation.value b (Bundle.singleton 0) in
      Alcotest.(check bool)
        (Printf.sprintf "link %d positive value" i)
        true (v1 > 0.0);
      (* concavity: marginal value decreases *)
      let v2 = Valuation.value b (Bundle.of_list [ 0; 1 ]) in
      let v3 = Valuation.value b (Bundle.full 3) in
      Alcotest.(check bool) "diminishing returns" true
        (v2 -. v1 <= v1 +. 1e-9 && v3 -. v2 <= v2 -. v1 +. 1e-9))
    bidders

(* ---------- Derandomization ---------------------------------------------- *)

let test_derand_deterministic () =
  let inst = random_unweighted_instance ~seed:71 ~n:12 ~k:2 ~d:3 in
  let frac = Lp.solve_explicit inst in
  let a = Sa_core.Derand.algorithm1_derand inst frac in
  let b = Sa_core.Derand.algorithm1_derand inst frac in
  Alcotest.(check bool) "same result on re-run" true (a = b);
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst a)

let test_derand_meets_bound () =
  (* The seed family realises the Theorem-3 expectation on average, so its
     best member must clear the bound (up to 1/p quantisation slack). *)
  for seed = 1 to 5 do
    let inst = random_unweighted_instance ~seed ~n:12 ~k:2 ~d:3 in
    let frac = Lp.solve_explicit inst in
    let alloc = Sa_core.Derand.algorithm1_derand inst frac in
    let bound = frac.Lp.objective /. Rounding.guarantee inst in
    let v = Allocation.value inst alloc in
    if v < 0.9 *. bound then
      Alcotest.failf "derandomized value %.4f below bound %.4f" v bound
  done

let test_derand_weighted () =
  let inst = random_weighted_instance ~seed:73 ~n:10 ~k:2 in
  let frac = Lp.solve_explicit inst in
  let alloc = Sa_core.Derand.algorithm23_derand inst frac in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_derand_beats_expectation () =
  (* max over the family >= mean of random rounding (sanity of the
     construction, not a theorem). *)
  let inst = random_unweighted_instance ~seed:79 ~n:12 ~k:2 ~d:3 in
  let frac = Lp.solve_explicit inst in
  let derand = Allocation.value inst (Sa_core.Derand.algorithm1_derand inst frac) in
  let g = Prng.create ~seed:80 in
  let runs = 100 in
  let total = ref 0.0 in
  for _ = 1 to runs do
    total := !total +. Allocation.value inst (Rounding.algorithm1 g inst frac)
  done;
  Alcotest.(check bool) "derand >= mean of random" true
    (derand >= !total /. float_of_int runs -. 1e-9)

(* ---------- Asymmetric channels / hardness gadgets ----------------------- *)

let test_theorem14_instance () =
  let g = Prng.create ~seed:53 in
  let base = Generators.random_bounded_degree g ~n:16 ~d:4 in
  let inst, pi = Hardness.theorem14_instance base ~k:2 in
  Alcotest.(check bool) "asymmetric" true (Instance.is_asymmetric inst);
  (* An allocation giving the full bundle to an independent set of the base
     graph must be feasible, and its welfare equals the set size. *)
  let mis = (Sa_graph.Indep.max_independent_set base).Sa_graph.Indep.set in
  let alloc = Allocation.empty (Instance.n inst) in
  List.iter (fun v -> alloc.(v) <- Bundle.full 2) mis;
  Alcotest.(check bool) "independent set fully allocable" true
    (Allocation.is_feasible inst alloc);
  Alcotest.(check (float 1e-9)) "welfare = |MIS|"
    (float_of_int (List.length mis))
    (Allocation.value inst alloc);
  ignore pi

let test_asymmetric_rounding () =
  let g = Prng.create ~seed:59 in
  let base = Generators.random_bounded_degree g ~n:16 ~d:4 in
  let inst, _ = Hardness.theorem14_instance base ~k:3 in
  let frac = Lp.solve_explicit inst in
  let rng = Prng.create ~seed:60 in
  for _ = 1 to 20 do
    let alloc = Rounding.algorithm_asymmetric rng inst frac in
    if not (Allocation.is_feasible inst alloc) then
      Alcotest.failf "asymmetric rounding infeasible"
  done

let random_weighted_asym_instance ~seed ~n ~k =
  (* Per-channel random weighted graphs with identity ordering. *)
  let g = Prng.create ~seed in
  let graphs =
    Array.init k (fun _ -> Generators.random_weighted g ~n ~density:0.3 ~scale:0.6)
  in
  let pi = Ordering.identity n in
  let rho =
    Array.fold_left
      (fun acc wg -> Float.max acc (Inductive.rho_weighted wg pi).Inductive.rho)
      1.0 graphs
  in
  let bidders =
    Array.init n (fun _ ->
        Vgen.random_xor g ~k ~bids:3 ~max_bundle:(min 2 k)
          ~dist:(Vgen.Uniform (1.0, 10.0)))
  in
  Instance.make ~conflict:(Instance.Per_channel_weighted graphs) ~k ~bidders
    ~ordering:pi ~rho

let test_asymmetric_weighted_rounding () =
  let inst = random_weighted_asym_instance ~seed:91 ~n:14 ~k:3 in
  let frac = Lp.solve_explicit inst in
  Alcotest.(check bool) "LP solution feasible" true (Lp.is_lp_feasible inst frac);
  let g = Prng.create ~seed:92 in
  for _ = 1 to 20 do
    let partly = Rounding.algorithm_asymmetric_weighted g inst frac in
    let final = Rounding.algorithm3_asymmetric inst partly in
    if not (Allocation.is_feasible inst final) then
      Alcotest.failf "asymmetric weighted pipeline infeasible";
    (* the make-feasible pass only removes whole bundles *)
    Array.iteri
      (fun v b ->
        if not (Bundle.is_empty b) then
          Alcotest.(check bool) "subset of partial" true (Bundle.equal b partly.(v)))
      final
  done

let test_asymmetric_weighted_solve_and_exact () =
  let inst = random_weighted_asym_instance ~seed:93 ~n:10 ~k:2 in
  let frac = Lp.solve_explicit inst in
  let e = Exact.solve inst in
  Alcotest.(check bool) "LP >= exact" true (frac.Lp.objective >= e.Exact.value -. 1e-6);
  let g = Prng.create ~seed:94 in
  let alloc = Rounding.solve ~trials:8 g inst frac in
  Alcotest.(check bool) "solve dispatches + feasible" true
    (Allocation.is_feasible inst alloc);
  let adaptive = Rounding.solve_adaptive ~trials:4 g inst frac in
  Alcotest.(check bool) "adaptive feasible" true
    (Allocation.is_feasible inst adaptive);
  Alcotest.(check bool) "below exact+eps... below LP" true
    (Allocation.value inst adaptive <= frac.Lp.objective +. 1e-6)

let test_asymmetric_weighted_lemma1 () =
  let inst = random_weighted_asym_instance ~seed:95 ~n:10 ~k:2 in
  let e = Exact.solve inst in
  let point = Lp.of_allocation inst e.Exact.allocation in
  Alcotest.(check bool) "integral optimum is an LP point" true
    (Lp.is_lp_feasible inst point)

let test_clique_gap () =
  (* §2.1: edge LP value n/2 on the clique; the ρ-based LP stays O(ρ). *)
  let n = 12 in
  let inst = Hardness.clique_auction ~n in
  let frac = Lp.solve_explicit inst in
  let weights = Array.make n 1.0 in
  let edge = Edge_lp.solve (Graph.clique n) ~weights in
  Alcotest.(check (float 1e-6)) "edge LP = n/2" (float_of_int n /. 2.0)
    edge.Edge_lp.lp_value;
  Alcotest.(check bool)
    (Printf.sprintf "rho-LP %.3f <= 2" frac.Lp.objective)
    true
    (frac.Lp.objective <= 2.0 +. 1e-6)

(* ---------- property tests ----------------------------------------------- *)

let prop_rounding_feasible =
  QCheck.Test.make ~name:"algorithm1 always feasible (random instances)"
    ~count:25
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst = random_unweighted_instance ~seed ~n:12 ~k:3 ~d:4 in
      let frac = Lp.solve_explicit inst in
      let g = Prng.create ~seed:(seed + 1) in
      let alloc = Rounding.algorithm1 g inst frac in
      Allocation.is_feasible inst alloc)

let prop_alg23_feasible =
  QCheck.Test.make ~name:"algorithm2+3 always feasible (random weighted)"
    ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst = random_weighted_instance ~seed ~n:12 ~k:2 in
      let frac = Lp.solve_explicit inst in
      let g = Prng.create ~seed:(seed + 1) in
      let partly = Rounding.algorithm2 g inst frac in
      let final = Rounding.algorithm3 inst partly in
      Rounding.is_partly_feasible inst partly && Allocation.is_feasible inst final)

let prop_lp_bounds_exact =
  QCheck.Test.make ~name:"LP optimum dominates integral optimum" ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst = random_unweighted_instance ~seed ~n:9 ~k:2 ~d:3 in
      let frac = Lp.solve_explicit inst in
      let e = Exact.solve inst in
      frac.Lp.objective >= e.Exact.value -. 1e-6)

let suite =
  [
    Alcotest.test_case "Lemma 1: allocations are LP points" `Quick test_lemma1;
    Alcotest.test_case "LP bounds the integral optimum" `Quick test_lp_upper_bounds_opt;
    Alcotest.test_case "LP optimum self-feasible" `Quick test_lp_solution_feasible;
    Alcotest.test_case "zeroed bidder lowers LP" `Quick test_lp_zeroed_bidder;
    Alcotest.test_case "Observation 2: scaling keeps feasibility" `Quick test_lp_scale;
    Alcotest.test_case "LP engines agree on auction LPs" `Quick test_lp_engines_agree;
    Alcotest.test_case "algorithm1 feasibility" `Quick test_algorithm1_feasible;
    Alcotest.test_case "algorithm1 expectation bound (Thm 3)" `Slow test_algorithm1_expectation;
    Alcotest.test_case "rounding below LP optimum" `Quick test_solve_never_worse_than_bound_needed;
    Alcotest.test_case "algorithm2 partly feasible (Lemma 7)" `Quick test_algorithm2_partly_feasible;
    Alcotest.test_case "algorithm3 feasible + monotone" `Quick test_algorithm3_feasible;
    Alcotest.test_case "algorithm3 value bound (Lemma 8)" `Quick test_algorithm3_value_bound;
    Alcotest.test_case "oracle = explicit (XOR)" `Quick test_oracle_matches_explicit_xor;
    Alcotest.test_case "oracle = explicit (mixed languages)" `Quick test_oracle_matches_explicit_mixed;
    Alcotest.test_case "oracle = explicit (weighted graph)" `Quick test_oracle_weighted;
    Alcotest.test_case "oracle pricing: naive = incremental = 4 domains" `Quick
      test_oracle_pricing_parity;
    Alcotest.test_case "rounding solve_par deterministic across domains" `Quick
      test_rounding_solve_par_deterministic;
    Alcotest.test_case "exact >= greedy; greedy feasible" `Quick test_exact_beats_greedy;
    Alcotest.test_case "LP-guided greedy feasible" `Quick test_greedy_from_lp;
    Alcotest.test_case "rate-based valuations" `Quick test_rate_based_bidders;
    Alcotest.test_case "derandomization deterministic + feasible" `Quick test_derand_deterministic;
    Alcotest.test_case "derandomization meets Theorem 3 bound" `Slow test_derand_meets_bound;
    Alcotest.test_case "derandomization (weighted) feasible" `Quick test_derand_weighted;
    Alcotest.test_case "derandomization beats random mean" `Slow test_derand_beats_expectation;
    Alcotest.test_case "Theorem 14 construction" `Quick test_theorem14_instance;
    Alcotest.test_case "asymmetric rounding feasible" `Quick test_asymmetric_rounding;
    Alcotest.test_case "asymmetric weighted pipeline" `Quick test_asymmetric_weighted_rounding;
    Alcotest.test_case "asymmetric weighted solve + exact" `Quick test_asymmetric_weighted_solve_and_exact;
    Alcotest.test_case "asymmetric weighted Lemma 1" `Quick test_asymmetric_weighted_lemma1;
    Alcotest.test_case "clique integrality gap (edge LP vs rho LP)" `Quick test_clique_gap;
    QCheck_alcotest.to_alcotest prop_rounding_feasible;
    QCheck_alcotest.to_alcotest prop_alg23_feasible;
    QCheck_alcotest.to_alcotest prop_lp_bounds_exact;
  ]
