(* Error paths and boundary conditions across the stack. *)

module Prng = Sa_util.Prng
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Simplex = Sa_lp.Simplex
module Model = Sa_lp.Model
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Exact = Sa_core.Exact
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol

(* ---------- Instance validation ------------------------------------------ *)

let unit_bidders n = Array.make n (Valuation.Xor [ (Bundle.singleton 0, 1.0) ])

let test_instance_validation () =
  let g3 = Graph.create 3 in
  let check msg exn f = Alcotest.check_raises msg exn f in
  check "bidders size" (Invalid_argument "Instance.make: bidders size mismatch")
    (fun () ->
      ignore
        (Instance.make ~conflict:(Instance.Unweighted g3) ~k:1
           ~bidders:(unit_bidders 2) ~ordering:(Ordering.identity 3) ~rho:1.0));
  check "ordering size" (Invalid_argument "Instance.make: ordering size mismatch")
    (fun () ->
      ignore
        (Instance.make ~conflict:(Instance.Unweighted g3) ~k:1
           ~bidders:(unit_bidders 3) ~ordering:(Ordering.identity 2) ~rho:1.0));
  check "bad k" (Invalid_argument "Instance.make: bad k") (fun () ->
      ignore
        (Instance.make ~conflict:(Instance.Unweighted g3) ~k:0
           ~bidders:(unit_bidders 3) ~ordering:(Ordering.identity 3) ~rho:1.0));
  check "rho < 1" (Invalid_argument "Instance.make: rho must be >= 1") (fun () ->
      ignore
        (Instance.make ~conflict:(Instance.Unweighted g3) ~k:1
           ~bidders:(unit_bidders 3) ~ordering:(Ordering.identity 3) ~rho:0.5));
  check "per-channel count"
    (Invalid_argument "Instance.make: Per_channel needs exactly k graphs") (fun () ->
      ignore
        (Instance.make
           ~conflict:(Instance.Per_channel [| Graph.create 3 |])
           ~k:2 ~bidders:(unit_bidders 3) ~ordering:(Ordering.identity 3) ~rho:1.0))

let test_wrong_conflict_type_rejected () =
  let inst =
    Instance.make
      ~conflict:(Instance.Unweighted (Graph.create 2))
      ~k:1 ~bidders:(unit_bidders 2) ~ordering:(Ordering.identity 2) ~rho:1.0
  in
  let frac = Lp.solve_explicit inst in
  let g = Prng.create ~seed:1 in
  Alcotest.check_raises "algorithm2 on unweighted"
    (Invalid_argument "Rounding.algorithm2: wrong conflict structure for this algorithm")
    (fun () -> ignore (Rounding.algorithm2 g inst frac));
  Alcotest.check_raises "asymmetric on unweighted"
    (Invalid_argument
       "Rounding.algorithm_asymmetric: wrong conflict structure for this algorithm")
    (fun () -> ignore (Rounding.algorithm_asymmetric g inst frac))

(* ---------- Degenerate instances ------------------------------------------ *)

let test_single_bidder () =
  let inst =
    Instance.make
      ~conflict:(Instance.Unweighted (Graph.create 1))
      ~k:2
      ~bidders:[| Valuation.Xor [ (Bundle.full 2, 7.0) ] |]
      ~ordering:(Ordering.identity 1) ~rho:1.0
  in
  let frac = Lp.solve_explicit inst in
  Alcotest.(check (float 1e-9)) "LP = 7" 7.0 frac.Lp.objective;
  let e = Exact.solve inst in
  Alcotest.(check (float 1e-9)) "exact = 7" 7.0 e.Exact.value;
  let g = Prng.create ~seed:2 in
  let alloc = Rounding.solve_adaptive ~trials:8 g inst frac in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst alloc)

let test_all_zero_valuations () =
  let inst =
    Instance.make
      ~conflict:(Instance.Unweighted (Graph.clique 4))
      ~k:1
      ~bidders:(Array.make 4 (Valuation.Xor []))
      ~ordering:(Ordering.identity 4) ~rho:1.0
  in
  let frac = Lp.solve_explicit inst in
  Alcotest.(check (float 1e-9)) "LP = 0" 0.0 frac.Lp.objective;
  Alcotest.(check int) "no columns" 0 (Array.length frac.Lp.columns);
  let g = Prng.create ~seed:3 in
  let alloc = Rounding.solve g inst frac in
  Alcotest.(check (float 1e-9)) "welfare 0" 0.0 (Allocation.value inst alloc);
  let e = Exact.solve inst in
  Alcotest.(check (float 1e-9)) "exact 0" 0.0 e.Exact.value

let test_violations_reporting () =
  let graph = Graph.of_edges 3 [ (0, 1) ] in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k:2
      ~bidders:
        (Array.make 3 (Valuation.Xor [ (Bundle.full 2, 1.0) ]))
      ~ordering:(Ordering.identity 3) ~rho:1.0
  in
  let alloc = Allocation.empty 3 in
  alloc.(0) <- Bundle.full 2;
  alloc.(1) <- Bundle.singleton 1;
  let violations = Allocation.violations inst alloc in
  (* channel 1 is shared by adjacent bidders 0 and 1; channel 0 is fine *)
  Alcotest.(check int) "one bad channel" 1 (List.length violations);
  (match violations with
  | [ (channel, holders) ] ->
      Alcotest.(check int) "channel 1" 1 channel;
      Alcotest.(check (list int)) "holders" [ 0; 1 ] (List.sort compare holders)
  | _ -> Alcotest.fail "unexpected violations shape");
  Alcotest.(check bool) "is_feasible false" false (Allocation.is_feasible inst alloc)

let test_exact_budget_exhausted () =
  (* A big dense instance with a tiny node budget: must fall back to greedy
     and report exact = false, while staying feasible. *)
  let g = Prng.create ~seed:5 in
  let graph = Sa_graph.Generators.gnp g ~n:30 ~p:0.3 in
  let bidders =
    Array.init 30 (fun _ ->
        Sa_val.Gen.random_xor g ~k:3 ~bids:3 ~max_bundle:2
          ~dist:(Sa_val.Gen.Uniform (1.0, 5.0)))
  in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k:3 ~bidders
      ~ordering:(Ordering.identity 30) ~rho:5.0
  in
  let r = Exact.solve ~node_limit:50 inst in
  Alcotest.(check bool) "budget exhausted" false r.Exact.exact;
  Alcotest.(check bool) "still feasible" true (Allocation.is_feasible inst r.Exact.allocation);
  Alcotest.(check bool) "still positive" true (r.Exact.value > 0.0)

(* ---------- Simplex boundary cases ----------------------------------------- *)

let test_simplex_iteration_limit () =
  let p =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 1.0; 1.0 |];
      rows = [| ([| 1.0; 1.0 |], Simplex.Le, 10.0); ([| 1.0; 0.0 |], Simplex.Le, 5.0) |];
    }
  in
  let s = Simplex.solve ~max_iters:1 p in
  Alcotest.(check bool) "hits iteration limit" true
    (s.Simplex.status = Simplex.Iteration_limit)

let test_simplex_empty_objective () =
  (* all-zero objective: optimal trivially, value 0 *)
  let p =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 0.0 |];
      rows = [| ([| 1.0 |], Simplex.Le, 1.0) |];
    }
  in
  let s = Simplex.solve p in
  Alcotest.(check bool) "optimal" true (s.Simplex.status = Simplex.Optimal);
  Alcotest.(check (float 1e-12)) "zero" 0.0 s.Simplex.objective

let test_simplex_equality_infeasible () =
  let p =
    {
      Simplex.direction = Simplex.Maximize;
      c = [| 1.0 |];
      rows = [| ([| 1.0 |], Simplex.Eq, 2.0); ([| 1.0 |], Simplex.Eq, 3.0) |];
    }
  in
  let s = Simplex.solve p in
  Alcotest.(check bool) "infeasible" true (s.Simplex.status = Simplex.Infeasible)

let test_model_row_bounds () =
  let m = Model.create Simplex.Maximize in
  let x = Model.add_var m ~obj:1.0 in
  Alcotest.check_raises "row out of range"
    (Invalid_argument "Model.add_to_row: row out of range") (fun () ->
      Model.add_to_row m 0 x 1.0);
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Model: variable out of range") (fun () ->
      ignore (Model.add_row m [ (99, 1.0) ] Simplex.Le 1.0))

(* ---------- Wireless boundary cases ----------------------------------------- *)

let test_protocol_delta_validation () =
  let sys =
    Link.of_point_pairs
      [| (Sa_geom.Point.make 0.0 0.0, Sa_geom.Point.make 1.0 0.0) |]
  in
  Alcotest.check_raises "delta 0"
    (Invalid_argument "Protocol.conflict_graph: delta must be positive") (fun () ->
      ignore (Protocol.conflict_graph sys ~delta:0.0))

let test_link_validation () =
  let m = Sa_geom.Metric.of_points [| Sa_geom.Point.make 0.0 0.0; Sa_geom.Point.make 1.0 0.0 |] in
  Alcotest.check_raises "sender = receiver"
    (Invalid_argument "Link.make: sender = receiver") (fun () ->
      ignore (Link.make m [| { Link.sender = 0; receiver = 0 } |]));
  Alcotest.check_raises "endpoint outside"
    (Invalid_argument "Link.make: endpoint outside the metric") (fun () ->
      ignore (Link.make m [| { Link.sender = 0; receiver = 5 } |]))

let test_weighted_negative_rejected () =
  let wg = Weighted.create 2 in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Weighted.set: negative weight") (fun () ->
      Weighted.set wg 0 1 (-0.5))

(* ---------- round_with_uniforms -------------------------------------------- *)

let test_round_with_uniforms_extremes () =
  let graph = Graph.of_edges 3 [ (0, 1) ] in
  let inst =
    Instance.make ~conflict:(Instance.Unweighted graph) ~k:1
      ~bidders:(Array.make 3 (Valuation.Xor [ (Bundle.singleton 0, 2.0) ]))
      ~ordering:(Ordering.identity 3) ~rho:1.0
  in
  let frac = Lp.solve_explicit inst in
  (* uniforms at ~1: nobody selected *)
  let none =
    Rounding.round_with_uniforms inst frac ~scale_down:2.0
      ~uniforms:[| 0.999; 0.999; 0.999 |]
  in
  Alcotest.(check int) "nobody wins" 0 (List.length (Allocation.allocated_bidders none));
  (* uniforms at 0 with scale 1: everyone with x=1 tentatively selected;
     conflict resolution drops the later of 0-1 *)
  let all =
    Rounding.round_with_uniforms inst frac ~scale_down:1.0 ~uniforms:[| 0.0; 0.0; 0.0 |]
  in
  Alcotest.(check bool) "feasible" true (Allocation.is_feasible inst all);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Rounding.round_with_uniforms: uniforms shorter than n")
    (fun () ->
      ignore (Rounding.round_with_uniforms inst frac ~scale_down:1.0 ~uniforms:[| 0.0 |]))

let test_poisson () =
  let g = Prng.create ~seed:21 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Prng.poisson g 3.0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean %.3f near 3" mean) true
    (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.check_raises "bad lambda"
    (Invalid_argument "Prng.poisson: lambda must be positive") (fun () ->
      ignore (Prng.poisson g 0.0))

let suite =
  [
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "wrong conflict type rejected" `Quick test_wrong_conflict_type_rejected;
    Alcotest.test_case "single bidder" `Quick test_single_bidder;
    Alcotest.test_case "all-zero valuations" `Quick test_all_zero_valuations;
    Alcotest.test_case "violations reporting" `Quick test_violations_reporting;
    Alcotest.test_case "exact budget exhaustion fallback" `Quick test_exact_budget_exhausted;
    Alcotest.test_case "simplex iteration limit" `Quick test_simplex_iteration_limit;
    Alcotest.test_case "simplex zero objective" `Quick test_simplex_empty_objective;
    Alcotest.test_case "simplex conflicting equalities" `Quick test_simplex_equality_infeasible;
    Alcotest.test_case "model bound checks" `Quick test_model_row_bounds;
    Alcotest.test_case "protocol delta validation" `Quick test_protocol_delta_validation;
    Alcotest.test_case "link validation" `Quick test_link_validation;
    Alcotest.test_case "negative weights rejected" `Quick test_weighted_negative_rejected;
    Alcotest.test_case "round_with_uniforms extremes" `Quick test_round_with_uniforms_extremes;
    Alcotest.test_case "poisson sampler" `Quick test_poisson;
  ]
