(* Tests for Sa_wireless: links, protocol model, disk graphs, civilized
   graphs, SINR model, conflict-graph constructions, power control. *)

module Point = Sa_geom.Point
module Metric = Sa_geom.Metric
module Placement = Sa_geom.Placement
module Prng = Sa_util.Prng
module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Inductive = Sa_graph.Inductive
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Disk = Sa_wireless.Disk
module Civilized = Sa_wireless.Civilized
module Sinr = Sa_wireless.Sinr
module Sinr_graph = Sa_wireless.Sinr_graph
module Power_control = Sa_wireless.Power_control

let random_links ~seed ~n ~side =
  let g = Prng.create ~seed in
  Link.of_point_pairs
    (Placement.random_links g ~n ~side ~min_len:0.5 ~max_len:2.0)

(* ---------- Link ----------------------------------------------------------- *)

let test_link_basic () =
  let sys =
    Link.of_point_pairs
      [| (Point.make 0.0 0.0, Point.make 1.0 0.0); (Point.make 5.0 0.0, Point.make 5.0 2.0) |]
  in
  Alcotest.(check int) "2 links" 2 (Link.n sys);
  Alcotest.(check (float 1e-12)) "len 0" 1.0 (Link.length sys 0);
  Alcotest.(check (float 1e-12)) "len 1" 2.0 (Link.length sys 1);
  Alcotest.(check (float 1e-12)) "cross distance" 5.0
    (Link.dist_sr sys ~from_sender_of:0 ~to_receiver_of:1
    |> fun d -> Float.abs (d -. sqrt 29.0) |> fun diff -> if diff < 1e-9 then 5.0 else d);
  let pi = Link.ordering_by_length sys in
  Alcotest.(check int) "shortest first" 0 (Ordering.vertex_at pi 0)

let test_protocol_conflict () =
  (* Two parallel short links far apart: no conflict; close: conflict. *)
  let far =
    Link.of_point_pairs
      [| (Point.make 0.0 0.0, Point.make 1.0 0.0); (Point.make 100.0 0.0, Point.make 101.0 0.0) |]
  in
  let g = Protocol.conflict_graph far ~delta:0.5 in
  Alcotest.(check int) "no conflict when far" 0 (Graph.num_edges g);
  let near =
    Link.of_point_pairs
      [| (Point.make 0.0 0.0, Point.make 1.0 0.0); (Point.make 1.2 0.0, Point.make 2.2 0.0) |]
  in
  let g' = Protocol.conflict_graph near ~delta:0.5 in
  Alcotest.(check int) "conflict when near" 1 (Graph.num_edges g')

let test_protocol_rho_bound_formula () =
  (* Δ = 1: ceil(pi / asin(1/4)) - 1 = ceil(12.44) - 1 = 12 *)
  Alcotest.(check int) "rho bound at delta=1" 12 (Protocol.rho_bound ~delta:1.0);
  Alcotest.(check bool) "smaller delta, larger bound" true
    (Protocol.rho_bound ~delta:0.2 > Protocol.rho_bound ~delta:2.0)

let test_protocol_rho_measured_within_bound () =
  let sys = random_links ~seed:31 ~n:40 ~side:12.0 in
  let delta = 1.0 in
  let g = Protocol.conflict_graph sys ~delta in
  let pi = Protocol.ordering sys in
  let e = Inductive.rho_unweighted g pi in
  let bound = float_of_int (Protocol.rho_bound ~delta) in
  Alcotest.(check bool)
    (Printf.sprintf "rho(pi) %.0f <= Prop 9 bound %.0f" e.Inductive.rho bound)
    true
    (e.Inductive.rho <= bound +. 1e-9)

let test_80211_contains_protocol () =
  (* The bidirectional model is more conservative: its conflict graph
     contains the protocol-model edges. *)
  let sys = random_links ~seed:37 ~n:30 ~side:10.0 in
  let gp = Protocol.conflict_graph sys ~delta:0.5 in
  let gb = Protocol.conflict_graph_80211 sys ~delta:0.5 in
  Graph.iter_edges gp (fun u v ->
      if not (Graph.mem_edge gb u v) then
        Alcotest.failf "protocol edge (%d,%d) missing in 802.11 graph" u v)

(* ---------- Disk graphs ---------------------------------------------------- *)

let test_disk_conflict () =
  let d =
    Disk.make
      [| Point.make 0.0 0.0; Point.make 3.0 0.0; Point.make 10.0 0.0 |]
      [| 2.0; 2.0; 1.0 |]
  in
  let g = Disk.conflict_graph d in
  Alcotest.(check bool) "overlapping disks conflict" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "distant disk free" false (Graph.mem_edge g 0 2)

let test_disk_rho_within_5 () =
  let g = Prng.create ~seed:41 in
  for _ = 1 to 5 do
    let d = Disk.random g ~n:30 ~side:10.0 ~rmin:0.5 ~rmax:2.0 in
    let cg = Disk.conflict_graph d in
    let e = Inductive.rho_unweighted cg (Disk.ordering d) in
    if e.Inductive.rho > float_of_int Disk.rho_bound +. 1e-9 then
      Alcotest.failf "disk rho %.0f > 5" e.Inductive.rho
  done

let test_distance2_coloring_superset () =
  let g = Prng.create ~seed:43 in
  let d = Disk.random g ~n:20 ~side:8.0 ~rmin:0.5 ~rmax:1.5 in
  let g1 = Disk.conflict_graph d in
  let g2 = Disk.distance2_coloring_graph d in
  Graph.iter_edges g1 (fun u v ->
      if not (Graph.mem_edge g2 u v) then Alcotest.failf "dist-2 lost an edge")

let test_distance2_matching () =
  let g = Prng.create ~seed:47 in
  let d = Disk.random g ~n:12 ~side:6.0 ~rmin:0.8 ~rmax:1.5 in
  let mg, pi, edge_map = Disk.distance2_matching d in
  Alcotest.(check int) "one bidder per disk edge"
    (Graph.num_edges (Disk.conflict_graph d))
    (Graph.n mg);
  Alcotest.(check int) "ordering matches" (Graph.n mg) (Ordering.n pi);
  (* adjacent disk-edges (sharing an endpoint) must conflict *)
  let m = Array.length edge_map in
  for e = 0 to m - 1 do
    for f = e + 1 to m - 1 do
      let a, b = edge_map.(e) and c, d' = edge_map.(f) in
      if (a = c || a = d' || b = c || b = d') && not (Graph.mem_edge mg e f) then
        Alcotest.failf "adjacent edges %d %d not in conflict" e f
    done
  done

(* ---------- Civilized graphs ------------------------------------------------ *)

let test_civilized_random () =
  let g = Prng.create ~seed:53 in
  let c = Civilized.random g ~n:25 ~side:10.0 ~r:2.0 ~s:1.0 ~edge_prob:0.8 in
  Alcotest.(check bool) "some points placed" true (Civilized.n c > 5);
  (* separation respected *)
  let pts = Civilized.points c in
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j q -> if i < j && Point.dist p q < 1.0 -. 1e-9 then Alcotest.failf "separation violated")
        pts)
    pts

let test_civilized_rho_bound () =
  let g = Prng.create ~seed:59 in
  let r = 2.0 and s = 1.0 in
  let c = Civilized.random g ~n:25 ~side:8.0 ~r ~s ~edge_prob:0.9 in
  let g2 = Civilized.distance2_coloring_graph c in
  (* Prop 18 holds for ANY ordering *)
  let rng = Prng.create ~seed:60 in
  let pi = Ordering.of_order (Prng.permutation rng (Civilized.n c)) in
  let e = Inductive.rho_unweighted g2 pi in
  Alcotest.(check bool)
    (Printf.sprintf "rho %.0f <= bound %.0f" e.Inductive.rho (Civilized.rho_bound ~r ~s))
    true
    (e.Inductive.rho <= Civilized.rho_bound ~r ~s +. 1e-9)

(* ---------- SINR ------------------------------------------------------------ *)

let params = { Sinr.alpha = 3.0; beta = 1.5; noise = 0.1 }

let test_sinr_single_link () =
  let sys = Link.of_point_pairs [| (Point.make 0.0 0.0, Point.make 1.0 0.0) |] in
  let powers = Sinr.powers sys params Sinr.Uniform in
  (* alone: SINR = p/(d^a * noise) = 1/0.1 = 10 >= beta *)
  Alcotest.(check bool) "single link feasible" true (Sinr.feasible sys params ~powers [ 0 ]);
  Alcotest.(check (float 1e-9)) "sinr value" 10.0
    (Sinr.sinr sys params ~powers ~active:[ 0 ] 0)

let test_sinr_interference () =
  (* Two identical links very close: infeasible together under uniform
     power; far apart: feasible. *)
  let close_sys =
    Link.of_point_pairs
      [| (Point.make 0.0 0.0, Point.make 1.0 0.0); (Point.make 0.0 0.3, Point.make 1.0 0.3) |]
  in
  let powers = Sinr.powers close_sys params Sinr.Uniform in
  Alcotest.(check bool) "close links clash" false
    (Sinr.feasible close_sys params ~powers [ 0; 1 ]);
  let far_sys =
    Link.of_point_pairs
      [| (Point.make 0.0 0.0, Point.make 1.0 0.0); (Point.make 0.0 50.0, Point.make 1.0 50.0) |]
  in
  let powers' = Sinr.powers far_sys params Sinr.Uniform in
  Alcotest.(check bool) "far links coexist" true
    (Sinr.feasible far_sys params ~powers:powers' [ 0; 1 ])

let test_power_schemes () =
  let sys = random_links ~seed:61 ~n:10 ~side:8.0 in
  let uniform = Sinr.powers sys params Sinr.Uniform in
  Alcotest.(check bool) "uniform all 1" true (Array.for_all (fun p -> p = 1.0) uniform);
  let linear = Sinr.powers sys params Sinr.Linear in
  Array.iteri
    (fun i p ->
      Alcotest.(check (float 1e-9)) "linear = d^alpha" (Link.length sys i ** 3.0) p)
    linear;
  let sq = Sinr.powers sys params Sinr.Square_root in
  Array.iteri
    (fun i p ->
      Alcotest.(check (float 1e-9)) "sqrt scheme" (Link.length sys i ** 1.5) p)
    sq

let test_affectance_capped () =
  let sys = random_links ~seed:67 ~n:8 ~side:4.0 in
  let powers = Sinr.powers sys params Sinr.Uniform in
  for i = 0 to 7 do
    for j = 0 to 7 do
      if i <> j then begin
        let a = Sinr.affectance sys params ~powers j i in
        if a < 0.0 || a > 1.0 then Alcotest.failf "affectance out of [0,1]: %f" a
      end
    done
  done

(* ---------- Proposition 11 graph -------------------------------------------- *)

let test_prop11_sinr_implies_independent () =
  (* The safe direction of the equivalence holds exactly: an SINR-feasible
     set is independent in the (1+eps)-corrected weighted graph. *)
  let sys = random_links ~seed:71 ~n:20 ~side:15.0 in
  let powers = Sinr.powers sys params Sinr.Linear in
  let wg = Sinr_graph.prop11_graph sys params ~powers in
  let g = Prng.create ~seed:72 in
  let failures = ref 0 in
  for _ = 1 to 200 do
    let size = 1 + Prng.int g 6 in
    let set = Array.to_list (Prng.sample_without_replacement g size 20) in
    let sinr_ok = Sinr.feasible sys params ~powers set in
    let indep = Weighted.is_independent wg set in
    if sinr_ok && not indep then incr failures
  done;
  Alcotest.(check int) "SINR => independent, always" 0 !failures

let test_prop11_independent_implies_near_sinr () =
  (* Conversely, independence implies SINR within the (1+eps) slack. *)
  let sys = random_links ~seed:73 ~n:20 ~side:15.0 in
  let powers = Sinr.powers sys params Sinr.Uniform in
  let wg = Sinr_graph.prop11_graph sys params ~powers in
  let eps = Sinr_graph.prop11_epsilon sys params in
  let relaxed = params.Sinr.beta /. (1.0 +. eps) in
  let g = Prng.create ~seed:74 in
  let failures = ref 0 in
  for _ = 1 to 200 do
    let size = 1 + Prng.int g 6 in
    let set =
      Array.to_list (Prng.sample_without_replacement g size 20)
      (* The equivalence presumes each link can at least overcome ambient
         noise by itself; links that cannot are infeasible in isolation yet
         vacuously "independent" as singletons. *)
      |> List.filter (fun i -> Sinr.feasible sys params ~powers [ i ])
    in
    if Weighted.is_independent wg set then
      List.iter
        (fun i ->
          if Sinr.sinr sys params ~powers ~active:set i < relaxed -. 1e-9 then
            incr failures)
        set
  done;
  Alcotest.(check int) "independent => SINR within (1+eps)" 0 !failures

let test_prop11_rho_moderate () =
  (* Lemma 12 / Prop 11: with a monotone scheme and decreasing-length
     ordering, rho stays small (O(log n)); sanity-check it is far below n. *)
  let n = 40 in
  let sys = random_links ~seed:79 ~n ~side:20.0 in
  let powers = Sinr.powers sys params Sinr.Linear in
  let wg = Sinr_graph.prop11_graph sys params ~powers in
  let pi = Sinr_graph.ordering sys in
  let e = Inductive.rho_weighted ~node_limit:300_000 wg pi in
  Alcotest.(check bool)
    (Printf.sprintf "rho %.2f << n %d" e.Inductive.rho n)
    true
    (e.Inductive.rho < float_of_int n /. 2.0)

(* ---------- Theorem 13 graph + power control --------------------------------- *)

let test_tau_formula () =
  let t = Sinr_graph.tau params in
  Alcotest.(check (float 1e-12)) "tau" (1.0 /. (2.0 *. 27.0 *. 8.0)) t

let test_thm13_weights_directed () =
  let sys = random_links ~seed:83 ~n:10 ~side:8.0 in
  let wg = Sinr_graph.thm13_graph sys params in
  let pi = Sinr_graph.ordering sys in
  for u = 0 to 9 do
    for v = 0 to 9 do
      if u <> v && not (Ordering.precedes pi u v) then
        Alcotest.(check (float 1e-12)) "no weight against the ordering" 0.0
          (Weighted.w wg u v)
    done
  done

let test_power_control_feasible_on_independent_sets () =
  (* Theorem 13 / Kesselheim Thm 3: independent sets under the tau-weights
     admit feasible powers via the recursive assignment. *)
  let zero_noise = { params with Sinr.noise = 0.0 } in
  let g = Prng.create ~seed:89 in
  let failures = ref 0 and tested = ref 0 in
  for trial = 1 to 20 do
    let sys = random_links ~seed:(90 + trial) ~n:25 ~side:25.0 in
    let wg = Sinr_graph.thm13_graph sys zero_noise in
    (* find independent sets greedily from random orders *)
    let order = Prng.permutation g 25 in
    let set = ref [] in
    Array.iter
      (fun i ->
        if Weighted.is_independent wg (i :: !set) then set := i :: !set)
      order;
    if List.length !set >= 1 then begin
      incr tested;
      let r = Power_control.assign sys zero_noise !set in
      if not r.Power_control.feasible then incr failures
    end
  done;
  Alcotest.(check bool) "tested something" true (!tested > 0);
  Alcotest.(check int) "power control always feasible" 0 !failures

let test_power_control_singleton () =
  let sys = random_links ~seed:97 ~n:3 ~side:5.0 in
  let r = Power_control.assign sys { params with Sinr.noise = 0.0 } [ 1 ] in
  Alcotest.(check bool) "singleton feasible" true r.Power_control.feasible;
  Alcotest.(check bool) "power positive" true (r.Power_control.powers.(1) > 0.0)

let test_rayleigh_probabilities () =
  let sys =
    Link.of_point_pairs
      [| (Point.make 0.0 0.0, Point.make 1.0 0.0); (Point.make 0.0 30.0, Point.make 1.0 30.0) |]
  in
  let prm = { Sinr.alpha = 3.0; beta = 1.0; noise = 0.01 } in
  let powers = Sinr.powers sys prm Sinr.Uniform in
  let g = Prng.create ~seed:301 in
  (* a lone strong link: deterministic SINR = 1/0.01 = 100 >> beta, fading
     success probability should be high but strictly below 1 *)
  let p_solo =
    Sinr.rayleigh_success_probability g sys prm ~powers ~active:[ 0 ] ~trials:4000 0
  in
  Alcotest.(check bool) (Printf.sprintf "solo %.3f in (0.9, 1)" p_solo) true
    (p_solo > 0.9 && p_solo <= 1.0);
  (* far-apart links barely interfere: joint success also high *)
  let p_both =
    Sinr.rayleigh_all_success g sys prm ~powers ~active:[ 0; 1 ] ~trials:2000
  in
  Alcotest.(check bool) (Printf.sprintf "joint %.3f > 0.8" p_both) true (p_both > 0.8);
  (* joint success of both <= marginal of one (monotonicity, sampled) *)
  Alcotest.(check bool) "joint <= solo + noise" true (p_both <= p_solo +. 0.05)

let test_rayleigh_close_links_fail () =
  (* Two overlapping identical links: deterministic SINR is ~1 < beta;
     fading success must be low. *)
  let sys =
    Link.of_point_pairs
      [| (Point.make 0.0 0.0, Point.make 1.0 0.0); (Point.make 0.0 0.2, Point.make 1.0 0.2) |]
  in
  let prm = { Sinr.alpha = 3.0; beta = 2.0; noise = 0.0 } in
  let powers = Sinr.powers sys prm Sinr.Uniform in
  let g = Prng.create ~seed:302 in
  let p = Sinr.rayleigh_all_success g sys prm ~powers ~active:[ 0; 1 ] ~trials:2000 in
  Alcotest.(check bool) (Printf.sprintf "clashing links %.3f < 0.3" p) true (p < 0.3)

let test_rayleigh_empty_set () =
  let sys = random_links ~seed:303 ~n:3 ~side:5.0 in
  let g = Prng.create ~seed:304 in
  Alcotest.(check (float 1e-12)) "empty set trivially succeeds" 1.0
    (Sinr.rayleigh_all_success g sys params ~powers:(Sinr.powers sys params Sinr.Uniform)
       ~active:[] ~trials:10)

(* ---------- grid constructions vs naive all-pairs references ---------------- *)

(* Naive O(n^2) re-implementations of the constructors' predicates, written
   with the same float expressions; the grid versions must reproduce them
   exactly (the grid only prunes candidates, it never changes a predicate). *)

let naive_disk_graph d =
  let n = Disk.n d in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Point.dist (Disk.point d i) (Disk.point d j) < Disk.radius d i +. Disk.radius d j
      then Graph.add_edge g i j
    done
  done;
  g

let naive_protocol_graph sys ~delta =
  let n = Link.n sys in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        Link.dist_sr sys ~from_sender_of:j ~to_receiver_of:i
        < (1.0 +. delta) *. Link.length sys i
        || Link.dist_sr sys ~from_sender_of:i ~to_receiver_of:j
           < (1.0 +. delta) *. Link.length sys j
      then Graph.add_edge g i j
    done
  done;
  g

(* Replays Civilized.random's exact PRNG stream with naive loops: dart
   placement, then one bernoulli per lexicographic pair within r. *)
let naive_civilized ~seed ~n:target ~side ~r ~s ~edge_prob =
  let g = Prng.create ~seed in
  let placed = ref [] in
  let count = ref 0 and attempts = ref 0 in
  let max_attempts = target * 50 in
  while !count < target && !attempts < max_attempts do
    incr attempts;
    let p = Point.make (Prng.float g side) (Prng.float g side) in
    if List.for_all (fun q -> Point.dist p q >= s) !placed then begin
      placed := p :: !placed;
      incr count
    end
  done;
  let points = Array.of_list (List.rev !placed) in
  let m = Array.length points in
  let graph = Graph.create m in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if Point.dist points.(i) points.(j) <= r && Prng.bernoulli g edge_prob then
        Graph.add_edge graph i j
    done
  done;
  (points, graph)

let prop_disk_grid_equals_naive =
  QCheck.Test.make ~name:"disk grid construction equals naive all-pairs" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let n = 1 + Prng.int g 60 in
      let d = Disk.random g ~n ~side:(2.0 *. sqrt (float_of_int n)) ~rmin:0.3 ~rmax:1.5 in
      Graph.edges (Disk.conflict_graph d) = Graph.edges (naive_disk_graph d))

let prop_protocol_grid_equals_naive =
  QCheck.Test.make ~name:"protocol grid construction equals naive all-pairs"
    ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let n = 1 + Prng.int g 50 in
      let delta = Prng.uniform_in g 0.2 2.0 in
      let sys = random_links ~seed:(seed + 1) ~n ~side:(3.0 *. sqrt (float_of_int n)) in
      Graph.edges (Protocol.conflict_graph sys ~delta)
      = Graph.edges (naive_protocol_graph sys ~delta))

let prop_civilized_grid_equals_naive =
  QCheck.Test.make ~name:"civilized grid construction equals naive replay" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let n = 1 + Prng.int (Prng.create ~seed) 40 in
      let c =
        Civilized.random (Prng.create ~seed:(seed + 1)) ~n ~side:8.0 ~r:2.0 ~s:0.7
          ~edge_prob:0.6
      in
      let pts, naive =
        naive_civilized ~seed:(seed + 1) ~n ~side:8.0 ~r:2.0 ~s:0.7 ~edge_prob:0.6
      in
      Civilized.points c = pts && Graph.edges (Civilized.graph c) = Graph.edges naive)

let prop_thm13_sparse_matches_dense =
  QCheck.Test.make ~name:"thm13 sparse CSR matches dense within dropped bound"
    ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let n = 50 in
      let sys = random_links ~seed ~n ~side:18.0 in
      let prm = { Sinr.alpha = 3.0; beta = 1.5; noise = 0.0 } in
      let dense = Sinr_graph.thm13_graph sys prm in
      let w_min = 0.05 in
      let sparse = Sinr_graph.thm13_graph_sparse ~w_min sys prm in
      let ok = ref true in
      for v = 0 to n - 1 do
        for u = 0 to n - 1 do
          if u <> v then begin
            let ws = Weighted.w sparse u v and wd = Weighted.w dense u v in
            (* stored entries are bitwise the dense weights ... *)
            if ws > 0.0 && ws <> wd then ok := false;
            (* ... and nothing at or above the floor is ever dropped *)
            if ws = 0.0 && wd >= w_min then ok := false
          end
        done;
        (* dense and sparse in-weights differ by at most the certified bound *)
        let dsum = ref 0.0 in
        for u = 0 to n - 1 do
          if u <> v then dsum := !dsum +. Weighted.w dense u v
        done;
        let gap = !dsum -. Weighted.in_weight sparse v in
        let bound = Weighted.dropped_in_bound sparse v in
        if gap < -1e-9 || gap > bound +. 1e-9 then ok := false;
        if bound > (w_min *. float_of_int n) +. 1e-9 then ok := false
      done;
      !ok)

let test_prop11_epsilon_formula () =
  (* pins prop11_epsilon to its definition: eps = beta/2 * min over ordered
     pairs (i, j), j <> i, of (d_i / d(s_j, r_i))^alpha — the grid
     farthest-point path must reproduce the naive double loop exactly *)
  let n = 30 in
  let sys = random_links ~seed:107 ~n ~side:12.0 in
  let eps = Sinr_graph.prop11_epsilon sys params in
  let best = ref infinity in
  for i = 0 to n - 1 do
    let di = Link.length sys i in
    for j = 0 to n - 1 do
      if i <> j then begin
        let d = Link.dist_sr sys ~from_sender_of:j ~to_receiver_of:i in
        let ratio = (di /. d) ** params.Sinr.alpha in
        if ratio < !best then best := ratio
      end
    done
  done;
  let expected = params.Sinr.beta /. 2.0 *. !best in
  Alcotest.(check (float 1e-15)) "epsilon = beta/2 * min ratio^alpha" expected eps;
  (* and it no longer depends on any power assignment: a single-link system
     degenerates to beta/2 *)
  let solo = Link.of_point_pairs [| (Point.make 0.0 0.0, Point.make 1.0 0.0) |] in
  Alcotest.(check (float 1e-15)) "n=1 gives beta/2" (params.Sinr.beta /. 2.0)
    (Sinr_graph.prop11_epsilon solo params)

let test_power_control_empty () =
  let sys = random_links ~seed:101 ~n:3 ~side:5.0 in
  let r = Power_control.assign sys params [] in
  Alcotest.(check bool) "empty set trivially feasible" true r.Power_control.feasible

let suite =
  [
    Alcotest.test_case "link system basics" `Quick test_link_basic;
    Alcotest.test_case "protocol conflicts" `Quick test_protocol_conflict;
    Alcotest.test_case "Prop 9 bound formula" `Quick test_protocol_rho_bound_formula;
    Alcotest.test_case "Prop 9: measured rho within bound" `Quick test_protocol_rho_measured_within_bound;
    Alcotest.test_case "802.11 graph contains protocol graph" `Quick test_80211_contains_protocol;
    Alcotest.test_case "disk conflicts" `Quick test_disk_conflict;
    Alcotest.test_case "Prop 15: disk rho <= 5" `Quick test_disk_rho_within_5;
    Alcotest.test_case "distance-2 coloring superset" `Quick test_distance2_coloring_superset;
    Alcotest.test_case "distance-2 matching structure" `Quick test_distance2_matching;
    Alcotest.test_case "civilized placement" `Quick test_civilized_random;
    Alcotest.test_case "Prop 18: civilized rho bound" `Quick test_civilized_rho_bound;
    Alcotest.test_case "SINR single link" `Quick test_sinr_single_link;
    Alcotest.test_case "SINR interference" `Quick test_sinr_interference;
    Alcotest.test_case "power schemes" `Quick test_power_schemes;
    Alcotest.test_case "affectance capped" `Quick test_affectance_capped;
    Alcotest.test_case "Prop 11: SINR => independent" `Quick test_prop11_sinr_implies_independent;
    Alcotest.test_case "Prop 11: independent => near-SINR" `Quick test_prop11_independent_implies_near_sinr;
    Alcotest.test_case "Prop 11: rho moderate" `Quick test_prop11_rho_moderate;
    Alcotest.test_case "tau formula" `Quick test_tau_formula;
    Alcotest.test_case "Thm 13 weights directed" `Quick test_thm13_weights_directed;
    Alcotest.test_case "Thm 13: power control on independent sets" `Quick test_power_control_feasible_on_independent_sets;
    Alcotest.test_case "power control singleton" `Quick test_power_control_singleton;
    Alcotest.test_case "power control empty set" `Quick test_power_control_empty;
    Alcotest.test_case "rayleigh fading probabilities" `Quick test_rayleigh_probabilities;
    Alcotest.test_case "rayleigh: clashing links fail" `Quick test_rayleigh_close_links_fail;
    Alcotest.test_case "rayleigh: empty set" `Quick test_rayleigh_empty_set;
    Alcotest.test_case "Prop 11: epsilon formula pinned" `Quick test_prop11_epsilon_formula;
    QCheck_alcotest.to_alcotest prop_disk_grid_equals_naive;
    QCheck_alcotest.to_alcotest prop_protocol_grid_equals_naive;
    QCheck_alcotest.to_alcotest prop_civilized_grid_equals_naive;
    QCheck_alcotest.to_alcotest prop_thm13_sparse_matches_dense;
  ]
