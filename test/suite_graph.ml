(* Tests for Sa_graph: graphs, weighted graphs, orderings, independent sets,
   inductive independence. *)

module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Indep = Sa_graph.Indep
module Inductive = Sa_graph.Inductive
module Generators = Sa_graph.Generators
module Prng = Sa_util.Prng

(* ---------- Graph -------------------------------------------------------- *)

let test_graph_basic () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.num_edges g);
  Alcotest.(check bool) "edge 0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "edge 1-0 symmetric" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "no edge 0-2" false (Graph.mem_edge g 0 2);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 2 ] (Graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g)

let test_graph_duplicate_edges () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "merged" 1 (Graph.num_edges g)

let test_graph_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.of_edges 3 [ (1, 1) ]))

let test_graph_clique_complement () =
  let c = Graph.clique 5 in
  Alcotest.(check int) "clique edges" 10 (Graph.num_edges c);
  let comp = Graph.complement c in
  Alcotest.(check int) "complement empty" 0 (Graph.num_edges comp)

let test_graph_induced () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let sub = Graph.induced g [| 0; 1; 2 |] in
  Alcotest.(check int) "sub n" 3 (Graph.n sub);
  Alcotest.(check int) "sub m" 2 (Graph.num_edges sub)

let test_graph_independence () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "independent" true (Graph.is_independent g [ 0; 2 ]);
  Alcotest.(check bool) "not independent" false (Graph.is_independent g [ 0; 1 ])

(* ---------- Weighted ------------------------------------------------------ *)

let test_weighted_basic () =
  let wg = Weighted.create 3 in
  Weighted.set wg 0 1 0.4;
  Weighted.set wg 1 0 0.3;
  Alcotest.(check (float 1e-12)) "w directed" 0.4 (Weighted.w wg 0 1);
  Alcotest.(check (float 1e-12)) "wbar symmetric" 0.7 (Weighted.wbar wg 0 1);
  Alcotest.(check (float 1e-12)) "wbar other way" 0.7 (Weighted.wbar wg 1 0)

let test_weighted_independence () =
  let wg = Weighted.create 3 in
  Weighted.set wg 0 2 0.6;
  Weighted.set wg 1 2 0.6;
  (* each alone is fine with 2, but together they exceed 1 into vertex 2 *)
  Alcotest.(check bool) "pair ok" true (Weighted.is_independent wg [ 0; 2 ]);
  Alcotest.(check bool) "triple not ok" false (Weighted.is_independent wg [ 0; 1; 2 ]);
  Alcotest.(check bool) "senders only ok" true (Weighted.is_independent wg [ 0; 1 ])

let test_weighted_of_graph () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let wg = Weighted.of_graph g in
  Alcotest.(check bool) "same independence (edge)" false
    (Weighted.is_independent wg [ 0; 1 ]);
  Alcotest.(check bool) "same independence (non-edge)" true
    (Weighted.is_independent wg [ 0; 2 ])

let test_weighted_mask_check () =
  let wg = Weighted.create 4 in
  Weighted.set wg 0 1 1.2;
  let mask = [| true; true; false; false |] in
  Alcotest.(check bool) "mask version agrees" false (Weighted.is_independent_arr wg mask);
  Alcotest.(check bool) "mask version agrees (ok set)" true
    (Weighted.is_independent_arr wg [| true; false; true; true |])

(* ---------- Ordering ------------------------------------------------------ *)

let test_ordering_basic () =
  let pi = Ordering.of_order [| 2; 0; 1 |] in
  Alcotest.(check int) "rank of 2" 0 (Ordering.rank pi 2);
  Alcotest.(check int) "vertex at 0" 2 (Ordering.vertex_at pi 0);
  Alcotest.(check bool) "2 precedes 0" true (Ordering.precedes pi 2 0);
  Alcotest.(check (list int)) "before 1" [ 2; 0 ] (Ordering.before pi 1);
  Alcotest.(check (list int)) "after 2" [ 0; 1 ] (Ordering.after pi 2)

let test_ordering_by_key () =
  let pi = Ordering.by_key 3 (fun v -> float_of_int (-v)) in
  Alcotest.(check int) "largest key first... smallest value" 2 (Ordering.vertex_at pi 0)

let test_ordering_reverse () =
  let pi = Ordering.of_order [| 0; 1; 2 |] in
  let rev = Ordering.reverse pi in
  Alcotest.(check int) "reversed" 2 (Ordering.vertex_at rev 0)

let test_ordering_backward_neighbors () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let pi = Ordering.identity 3 in
  Alcotest.(check (list int)) "backward of 1" [ 0 ] (Ordering.backward_neighbors pi g 1);
  Alcotest.(check (list int)) "backward of 0" [] (Ordering.backward_neighbors pi g 0)

let test_ordering_not_permutation () =
  Alcotest.check_raises "dup" (Invalid_argument "Ordering.of_order: not a permutation")
    (fun () -> ignore (Ordering.of_order [| 0; 0; 1 |]))

(* ---------- Independent sets ---------------------------------------------- *)

let test_mis_path () =
  (* path of 5 vertices: MIS = {0,2,4} *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let r = Indep.max_independent_set g in
  Alcotest.(check bool) "exact" true r.Indep.exact;
  Alcotest.(check int) "size 3" 3 r.Indep.value;
  Alcotest.(check bool) "is independent" true (Graph.is_independent g r.Indep.set)

let test_mwis_weights () =
  (* path 0-1-2; weights 1, 5, 1: MWIS = {1} *)
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let r = Indep.max_weight_independent_set g ~weights:[| 1.0; 5.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "weight 5" 5.0 r.Indep.value;
  Alcotest.(check (list int)) "the middle vertex" [ 1 ] r.Indep.set

let test_mis_clique () =
  let g = Graph.clique 8 in
  let r = Indep.max_independent_set g in
  Alcotest.(check int) "MIS of clique = 1" 1 r.Indep.value

let test_greedy_weight_feasible () =
  let g = Prng.create ~seed:5 in
  let graph = Generators.gnp g ~n:20 ~p:0.3 in
  let weights = Array.init 20 (fun _ -> Prng.float g 10.0) in
  let set, total = Indep.greedy_weight graph ~weights in
  Alcotest.(check bool) "independent" true (Graph.is_independent graph set);
  Alcotest.(check bool) "total positive" true (total > 0.0)

let test_max_profit_weighted () =
  let wg = Weighted.create 3 in
  (* 0 and 1 heavily conflict; 2 is free *)
  Weighted.set wg 0 1 0.8;
  Weighted.set wg 1 0 0.8;
  let r =
    Indep.max_profit_weighted wg ~candidates:[| 0; 1; 2 |]
      ~profit:(fun v -> float_of_int (v + 1))
  in
  Alcotest.(check bool) "exact" true r.Indep.exact;
  (* {1,2} profit 5 beats {0,2} = 4 and {0,1,2} is infeasible (0.8+0.8>1?
     no: incoming into 1 is only w(0,1)+w(2,1)=0.8<1, into 0 is 0.8<1 —
     so {0,1,2} IS feasible with profit 6. *)
  Alcotest.(check (float 1e-12)) "profit" 6.0 r.Indep.value

let test_max_profit_weighted_blocked () =
  let wg = Weighted.create 2 in
  Weighted.set wg 0 1 1.0;
  let r =
    Indep.max_profit_weighted wg ~candidates:[| 0; 1 |] ~profit:(fun _ -> 1.0)
  in
  (* w(0,1) = 1 >= 1 blocks the pair *)
  Alcotest.(check (float 1e-12)) "only one" 1.0 r.Indep.value

(* ---------- Inductive independence ---------------------------------------- *)

let test_rho_clique () =
  (* For a clique, every backward neighbourhood is a clique: MIS = 1. *)
  let g = Graph.clique 6 in
  let e = Inductive.rho_unweighted g (Ordering.identity 6) in
  Alcotest.(check (float 1e-12)) "rho = 1" 1.0 e.Inductive.rho;
  Alcotest.(check bool) "exact" true e.Inductive.exact

let test_rho_star () =
  (* Star with centre last: backward neighbourhood of the centre is all
     leaves — an independent set of size n-1. *)
  let n = 6 in
  let g = Graph.of_edges n (List.init (n - 1) (fun i -> (i, n - 1))) in
  let e = Inductive.rho_unweighted g (Ordering.identity n) in
  Alcotest.(check (float 1e-12)) "rho = n-1" (float_of_int (n - 1)) e.Inductive.rho;
  Alcotest.(check int) "witness is the centre" (n - 1) e.Inductive.witness_vertex;
  (* Centre first: every leaf sees only the centre backward: rho = 1. *)
  let order = Array.of_list ((n - 1) :: List.init (n - 1) Fun.id) in
  let e' = Inductive.rho_unweighted g (Ordering.of_order order) in
  Alcotest.(check (float 1e-12)) "centre-first rho = 1" 1.0 e'.Inductive.rho

let test_degeneracy_ordering_bound () =
  let g = Prng.create ~seed:9 in
  let graph = Generators.gnp g ~n:25 ~p:0.2 in
  let pi, d = Inductive.degeneracy_ordering graph in
  let e = Inductive.rho_unweighted graph pi in
  Alcotest.(check bool)
    (Printf.sprintf "rho(pi) = %.0f <= degeneracy %d" e.Inductive.rho d)
    true
    (e.Inductive.rho <= float_of_int d +. 1e-9)

let test_rho_weighted_simple () =
  let wg = Weighted.create 3 in
  Weighted.set wg 0 2 0.4;
  Weighted.set wg 1 2 0.4;
  let e = Inductive.rho_weighted wg (Ordering.identity 3) in
  (* backward of 2 = {0,1}, independent together, mass 0.8 *)
  Alcotest.(check (float 1e-9)) "rho" 0.8 e.Inductive.rho;
  Alcotest.(check bool) "exact" true e.Inductive.exact

let test_check_bounds () =
  let g = Graph.of_edges 4 [ (0, 3); (1, 3); (2, 3) ] in
  let pi = Ordering.identity 4 in
  Alcotest.(check bool) "bound 3 holds" true
    (Inductive.check_unweighted_bound g pi ~rho:3 [ 0; 1; 2 ]);
  Alcotest.(check bool) "bound 2 fails" false
    (Inductive.check_unweighted_bound g pi ~rho:2 [ 0; 1; 2 ])

let test_greedy_weighted_ordering () =
  (* Weighted star: all weight flows into vertex 0 from the leaves.  The
     greedy ordering should place vertex 0 early (few backward neighbours)
     rather than last. *)
  let n = 8 in
  let wg = Weighted.create n in
  for u = 1 to n - 1 do
    Weighted.set wg u 0 0.3
  done;
  let pi = Inductive.greedy_weighted_ordering wg in
  let rho_greedy = (Inductive.rho_weighted wg pi).Inductive.rho in
  (* centre-last identity ordering would pay ~0.9 (three 0.3-leaves form an
     independent set into 0)... compare against the worst ordering: centre
     at the very end. *)
  let worst = Ordering.of_order (Array.of_list (List.init (n - 1) (fun i -> i + 1) @ [ 0 ])) in
  let rho_worst = (Inductive.rho_weighted wg worst).Inductive.rho in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.3f <= worst %.3f" rho_greedy rho_worst)
    true (rho_greedy <= rho_worst +. 1e-9)

let prop_greedy_ordering_not_worse_than_random =
  QCheck.Test.make ~name:"greedy weighted ordering beats random (usually)" ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let wg = Generators.random_weighted g ~n:10 ~density:0.4 ~scale:0.5 in
      let greedy_pi = Inductive.greedy_weighted_ordering wg in
      let random_pi = Ordering.of_order (Prng.permutation g 10) in
      let r_g = (Inductive.rho_weighted wg greedy_pi).Inductive.rho in
      let r_r = (Inductive.rho_weighted wg random_pi).Inductive.rho in
      (* greedy is a heuristic: allow slack, but it must not be much worse *)
      r_g <= r_r +. 0.5)

(* ---------- Weighted.Sparse boundary cases -------------------------------- *)

let test_sparse_empty_rows () =
  (* No entries at all: every row is empty, every dropped bound zero, and
     everything is trivially independent. *)
  let wg = Weighted.of_entries 4 ~w_min:0.5 [||] in
  Alcotest.(check bool) "sparse" true (Weighted.is_sparse wg);
  Alcotest.(check int) "nnz" 0 (Weighted.nnz wg);
  for v = 0 to 3 do
    Alcotest.(check (float 0.0)) "in_weight" 0.0 (Weighted.in_weight wg v);
    Alcotest.(check (float 0.0)) "dropped bound" 0.0 (Weighted.dropped_in_bound wg v)
  done;
  Alcotest.(check bool) "all vertices independent" true
    (Weighted.is_independent wg [ 0; 1; 2; 3 ])

let test_sparse_floor_boundary () =
  (* An entry exactly at the w_min floor is kept; one just below is dropped
     into the destination's bound.  The floor comparison is >=, not >. *)
  let wmin = 0.25 in
  let below = 0.25 -. 1e-9 in
  let wg = Weighted.of_entries 3 ~w_min:wmin [| (0, 2, wmin); (1, 2, below) |] in
  Alcotest.(check int) "only the exact-floor entry stored" 1 (Weighted.nnz wg);
  Alcotest.(check (float 0.0)) "exact-floor entry kept" wmin (Weighted.w wg 0 2);
  Alcotest.(check (float 0.0)) "below-floor entry zeroed" 0.0 (Weighted.w wg 1 2);
  Alcotest.(check (float 0.0)) "dropped bound = the below-floor mass" below
    (Weighted.dropped_in_bound wg 2);
  Alcotest.(check (float 0.0)) "in_weight counts stored mass only" wmin
    (Weighted.in_weight wg 2)

let test_sparse_all_dropped () =
  (* Every entry below the floor: the graph stores nothing, but each
     destination's dropped bound is the exact (same-order) sum of its
     unstored in-mass — dropped_in_bound is exact, not just an upper
     bound, when the caller enumerated every entry. *)
  let entries = [| (0, 2, 0.4); (1, 2, 0.5); (0, 1, 0.3) |] in
  let wg = Weighted.of_entries 3 ~w_min:1.0 entries in
  Alcotest.(check int) "nothing stored" 0 (Weighted.nnz wg);
  Alcotest.(check (float 0.0)) "v2 bound exact" (0.0 +. 0.4 +. 0.5)
    (Weighted.dropped_in_bound wg 2);
  Alcotest.(check (float 0.0)) "v1 bound exact" 0.3 (Weighted.dropped_in_bound wg 1);
  Alcotest.(check (float 0.0)) "v0 nothing dropped" 0.0 (Weighted.dropped_in_bound wg 0);
  (* zero-weight entries are elided without polluting the bound *)
  let wg0 = Weighted.of_entries 2 ~w_min:0.0 [| (0, 1, 0.0) |] in
  Alcotest.(check int) "zero entry elided" 0 (Weighted.nnz wg0);
  Alcotest.(check (float 0.0)) "zero entry adds no slack" 0.0
    (Weighted.dropped_in_bound wg0 1)

let test_sparse_dropped_in_seed () =
  (* Caller-supplied slack for never-enumerated entries adds on top of the
     below-floor mass. *)
  let wg =
    Weighted.of_entries 3 ~w_min:0.5 ~dropped_in:[| 0.0; 0.0; 0.125 |]
      [| (0, 2, 0.25); (1, 2, 0.75) |]
  in
  Alcotest.(check (float 0.0)) "seed + dropped mass" (0.125 +. 0.25)
    (Weighted.dropped_in_bound wg 2);
  Alcotest.(check (float 0.0)) "stored mass unaffected" 0.75
    (Weighted.in_weight wg 2)

let prop_sparse_mass_conserved =
  QCheck.Test.make ~count:100
    ~name:"sparse: stored in-weight + dropped bound = total in-mass"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let n = 2 + Prng.int g 8 in
      let wmin = Prng.float g 0.6 in
      let seen = Hashtbl.create 16 in
      let entries =
        List.init (Prng.int g (3 * n)) (fun _ ->
            let u = Prng.int g n and v = Prng.int g n in
            if u = v || Hashtbl.mem seen (u, v) then None
            else begin
              Hashtbl.add seen (u, v) ();
              Some (u, v, Prng.float g 1.0)
            end)
        |> List.filter_map Fun.id |> Array.of_list
      in
      let wg = Weighted.of_entries n ~w_min:wmin entries in
      let total = Array.make n 0.0 in
      Array.iter (fun (_, v, x) -> total.(v) <- total.(v) +. x) entries;
      List.for_all
        (fun v ->
          Float.abs
            (Weighted.in_weight wg v +. Weighted.dropped_in_bound wg v -. total.(v))
          < 1e-9)
        (List.init n Fun.id))

(* ---------- Generators ----------------------------------------------------- *)

let test_gnp_extremes () =
  let g = Prng.create ~seed:11 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.num_edges (Generators.gnp g ~n:10 ~p:0.0));
  Alcotest.(check int) "p=1 complete" 45 (Graph.num_edges (Generators.gnp g ~n:10 ~p:1.0))

let test_bounded_degree () =
  let g = Prng.create ~seed:13 in
  let graph = Generators.random_bounded_degree g ~n:30 ~d:4 in
  Alcotest.(check bool) "degree cap respected" true (Graph.max_degree graph <= 4)

let test_split_asymmetric_union () =
  let g = Prng.create ~seed:17 in
  let graph = Generators.gnp g ~n:15 ~p:0.3 in
  let pi = Ordering.identity 15 in
  let parts = Generators.split_for_asymmetric_channels graph pi ~k:3 in
  Alcotest.(check int) "3 parts" 3 (Array.length parts);
  (* union of parts = original *)
  let total = Array.fold_left (fun acc p -> acc + Graph.num_edges p) 0 parts in
  Alcotest.(check int) "edges partitioned" (Graph.num_edges graph) total;
  Graph.iter_edges graph (fun u v ->
      if not (Array.exists (fun p -> Graph.mem_edge p u v) parts) then
        Alcotest.failf "edge (%d,%d) lost" u v)

let test_split_backward_degree () =
  let g = Prng.create ~seed:19 in
  let graph = Generators.random_bounded_degree g ~n:20 ~d:6 in
  let pi, _ = Inductive.degeneracy_ordering graph in
  let k = 3 in
  let parts = Generators.split_for_asymmetric_channels graph pi ~k in
  (* every part has backward degree <= ceil(d_back/k) *)
  for v = 0 to 19 do
    let total_back = List.length (Ordering.backward_neighbors pi graph v) in
    let cap = (total_back + k - 1) / k in
    Array.iter
      (fun p ->
        let b = List.length (Ordering.backward_neighbors pi p v) in
        if b > cap then Alcotest.failf "backward degree %d > cap %d" b cap)
      parts
  done

(* ---------- property tests -------------------------------------------------- *)

let prop_mis_maximal =
  QCheck.Test.make ~name:"exact MIS beats greedy" ~count:50
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let graph = Generators.gnp g ~n:14 ~p:0.3 in
      let weights = Array.init 14 (fun _ -> 0.1 +. Prng.float g 5.0) in
      let exact = Indep.max_weight_independent_set graph ~weights in
      let _, greedy = Indep.greedy_weight graph ~weights in
      exact.Indep.exact
      && exact.Indep.value >= greedy -. 1e-9
      && Graph.is_independent graph exact.Indep.set)

let prop_rho_witnesses_definition =
  QCheck.Test.make ~name:"rho(pi) bounds all independent sets (Def 1)" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let g = Prng.create ~seed in
      let graph = Generators.gnp g ~n:12 ~p:0.25 in
      let pi = Ordering.of_order (Prng.permutation g 12) in
      let e = Inductive.rho_unweighted graph pi in
      let m = (Indep.max_independent_set graph).Indep.set in
      Inductive.check_unweighted_bound graph pi
        ~rho:(int_of_float e.Inductive.rho) m)

(* ---------- packed bitset graph vs naive dense reference ----------------- *)

(* The packed representation (bitset rows + frozen CSR) must be
   observationally identical to a naive adjacency matrix on every query the
   rest of the system uses. *)
let prop_packed_matches_dense =
  QCheck.Test.make ~name:"packed bitset graph = dense reference" ~count:150
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g_rng = Prng.create ~seed in
      let n = 1 + Prng.int g_rng 70 in
      let dense = Array.make_matrix n n false in
      let g = Graph.create n in
      let m = Prng.int g_rng (1 + (n * (n - 1) / 3)) in
      for _ = 1 to m do
        let u = Prng.int g_rng n and v = Prng.int g_rng n in
        if u <> v then begin
          dense.(u).(v) <- true;
          dense.(v).(u) <- true;
          Graph.add_edge g u v
        end
      done;
      let ref_neighbors v =
        List.filter (fun u -> dense.(v).(u)) (List.init n Fun.id)
      in
      let ref_edges = ref 0 in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if dense.(u).(v) then incr ref_edges
        done
      done;
      let subset =
        List.filter (fun _ -> Prng.bernoulli g_rng 0.3) (List.init n Fun.id)
      in
      let ref_independent set =
        List.for_all
          (fun u -> List.for_all (fun v -> u = v || not dense.(u).(v)) set)
          set
      in
      let mask = Graph.mask_of_list g subset in
      Graph.num_edges g = !ref_edges
      && List.for_all
           (fun v ->
             Graph.neighbors g v = ref_neighbors v
             && Graph.degree g v = List.length (ref_neighbors v)
             && List.for_all (fun u -> Graph.mem_edge g u v = dense.(u).(v))
                  (List.init n Fun.id)
             && Graph.row_inter_card g v mask
                = List.length (List.filter (fun u -> dense.(v).(u)) subset)
             && Graph.row_intersects g v mask
                = List.exists (fun u -> dense.(v).(u)) subset
             && Graph.exists_row_inter g v mask (fun u -> u mod 2 = 0)
                = List.exists (fun u -> dense.(v).(u) && u mod 2 = 0) subset)
           (List.init n Fun.id)
      && Graph.is_independent g subset = ref_independent subset)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basic;
    Alcotest.test_case "duplicate edges merged" `Quick test_graph_duplicate_edges;
    Alcotest.test_case "self-loops rejected" `Quick test_graph_self_loop_rejected;
    Alcotest.test_case "clique/complement" `Quick test_graph_clique_complement;
    Alcotest.test_case "induced subgraph" `Quick test_graph_induced;
    Alcotest.test_case "independence check" `Quick test_graph_independence;
    Alcotest.test_case "weighted basics" `Quick test_weighted_basic;
    Alcotest.test_case "weighted independence" `Quick test_weighted_independence;
    Alcotest.test_case "weighted of_graph embedding" `Quick test_weighted_of_graph;
    Alcotest.test_case "weighted mask check" `Quick test_weighted_mask_check;
    Alcotest.test_case "ordering basics" `Quick test_ordering_basic;
    Alcotest.test_case "ordering by key" `Quick test_ordering_by_key;
    Alcotest.test_case "ordering reverse" `Quick test_ordering_reverse;
    Alcotest.test_case "backward neighbors" `Quick test_ordering_backward_neighbors;
    Alcotest.test_case "bad permutation rejected" `Quick test_ordering_not_permutation;
    Alcotest.test_case "MIS on a path" `Quick test_mis_path;
    Alcotest.test_case "MWIS picks heavy middle" `Quick test_mwis_weights;
    Alcotest.test_case "MIS of clique" `Quick test_mis_clique;
    Alcotest.test_case "greedy MWIS feasible" `Quick test_greedy_weight_feasible;
    Alcotest.test_case "weighted profit B&B" `Quick test_max_profit_weighted;
    Alcotest.test_case "weighted profit blocked pair" `Quick test_max_profit_weighted_blocked;
    Alcotest.test_case "rho of clique" `Quick test_rho_clique;
    Alcotest.test_case "rho of star (both orderings)" `Quick test_rho_star;
    Alcotest.test_case "degeneracy bounds rho" `Quick test_degeneracy_ordering_bound;
    Alcotest.test_case "weighted rho" `Quick test_rho_weighted_simple;
    Alcotest.test_case "Definition 1 checker" `Quick test_check_bounds;
    Alcotest.test_case "greedy weighted ordering (star)" `Quick test_greedy_weighted_ordering;
    QCheck_alcotest.to_alcotest prop_greedy_ordering_not_worse_than_random;
    Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
    Alcotest.test_case "bounded-degree generator" `Quick test_bounded_degree;
    Alcotest.test_case "Theorem 14 split: union preserved" `Quick test_split_asymmetric_union;
    Alcotest.test_case "Theorem 14 split: backward degree" `Quick test_split_backward_degree;
    QCheck_alcotest.to_alcotest prop_mis_maximal;
    QCheck_alcotest.to_alcotest prop_rho_witnesses_definition;
    QCheck_alcotest.to_alcotest prop_packed_matches_dense;
    Alcotest.test_case "sparse: empty rows" `Quick test_sparse_empty_rows;
    Alcotest.test_case "sparse: w_min floor boundary" `Quick test_sparse_floor_boundary;
    Alcotest.test_case "sparse: all entries dropped" `Quick test_sparse_all_dropped;
    Alcotest.test_case "sparse: dropped_in seeding" `Quick test_sparse_dropped_in_seed;
    QCheck_alcotest.to_alcotest prop_sparse_mass_conserved;
  ]
