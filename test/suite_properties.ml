(* QCheck property suite: allocation feasibility and bundle containment for
   every rounding path (including the batch engine), parallel/sequential
   derandomization equivalence, engine batch determinism under sharding,
   and serialization round-trips. *)

module Prng = Sa_util.Prng
module Floats = Sa_util.Floats
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Derand = Sa_core.Derand
module Parallel = Sa_core.Parallel
module Serialize = Sa_core.Serialize
module Workloads = Sa_exp.Workloads
module Engine = Sa_engine.Engine
module Workload = Sa_engine.Workload

(* ---------- fixtures ---------------------------------------------------- *)

(* Alternate between the two geometric conflict models the paper benchmarks:
   protocol (pairwise interference radii) and disk (unit disks). *)
let random_geometric_instance seed =
  let n = 8 + (seed mod 9) and k = 2 + (seed mod 3) in
  if seed mod 2 = 0 then Workloads.protocol_instance ~seed ~n ~k ()
  else Workloads.disk_instance ~seed ~n ~k ()

(* ---------- allocation sanity ------------------------------------------- *)

(* A returned allocation must (a) give each channel an independent holder
   set and (b) never hand a bidder channels outside a bundle it asked for:
   every non-empty allocated bundle is one of the bidder's support bundles
   (clipped to its availability). *)
let requested_bundles inst v =
  Valuation.support inst.Instance.bidders.(v) ~k:inst.Instance.k
  |> List.map (fun (b, _) -> Instance.restrict_bundle inst ~bidder:v b)

let bundle_requested inst v b =
  Bundle.is_empty b
  || List.exists (fun r -> Bundle.to_int r = Bundle.to_int b) (requested_bundles inst v)

let check_allocation ~what inst alloc =
  if not (Allocation.is_feasible inst alloc) then
    QCheck.Test.fail_reportf "%s: infeasible allocation (violations on %d channels)"
      what
      (List.length (Allocation.violations inst alloc));
  Array.iteri
    (fun v b ->
      if not (bundle_requested inst v b) then
        QCheck.Test.fail_reportf "%s: bidder %d allocated unrequested bundle %d" what v
          (Bundle.to_int b))
    alloc;
  true

let prop_allocations_feasible_and_requested =
  QCheck.Test.make
    ~name:"rounding/greedy/engine allocations: independent per channel, only requested bundles"
    ~count:25
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst = random_geometric_instance seed in
      let frac = Lp.solve_explicit inst in
      let g = Prng.create ~seed in
      ignore (check_allocation ~what:"rounding" inst (Rounding.solve ~trials:3 g inst frac));
      ignore
        (check_allocation ~what:"adaptive" inst
           (Rounding.solve_adaptive ~trials:3 g inst frac));
      ignore (check_allocation ~what:"greedy" inst (Greedy.from_lp inst frac));
      let engine = Engine.create ~warm_start:true () in
      let job = Engine.job ~algorithm:Engine.Adaptive ~seed ~trials:3 ~id:0 inst in
      let r = Engine.run_job engine job in
      ignore (check_allocation ~what:"engine" inst r.Engine.allocation);
      (* the engine's welfare accounting must match the allocation it returns *)
      Floats.approx_eq r.Engine.welfare (Allocation.value inst r.Engine.allocation))

(* ---------- derandomization equivalence --------------------------------- *)

let prop_parallel_derand_equals_sequential =
  QCheck.Test.make
    ~name:"Parallel.derand1 welfare = Derand.algorithm1_derand welfare" ~count:15
    QCheck.(pair (int_range 1 10_000) (int_range 1 3))
    (fun (seed, domains) ->
      let inst = Workloads.protocol_instance ~seed ~n:(10 + (seed mod 6)) ~k:2 () in
      let frac = Lp.solve_explicit inst in
      let seq = Derand.algorithm1_derand inst frac in
      let par = Parallel.derand1 ~domains inst frac in
      if not (Allocation.is_feasible inst par) then
        QCheck.Test.fail_reportf "parallel derand infeasible (seed %d)" seed;
      Floats.approx_eq ~eps:1e-9 (Allocation.value inst seq) (Allocation.value inst par))

(* ---------- engine determinism under sharding ---------------------------- *)

let render results =
  results
  |> Array.map (fun r -> Serialize.allocation_to_string r.Engine.allocation)
  |> Array.to_list |> String.concat "--\n"

let prop_engine_batch_deterministic =
  QCheck.Test.make
    ~name:"engine batches byte-identical: sequential vs sharded (warm off)" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let specs =
        [
          Workload.spec ~model:Workload.Protocol ~n:10 ~k:2 ~seed ~repeat:3 ();
          Workload.spec ~model:Workload.Random_graph ~n:9 ~k:2 ~seed:(seed + 1)
            ~algorithm:Engine.Lp_round ~repeat:2 ();
        ]
      in
      (* warm start off: each job depends only on its own seed, so results
         must be byte-identical whatever the domain count — and identical to
         running each job alone on a fresh engine. *)
      let batch domains =
        let engine = Engine.create ~warm_start:false () in
        let jobs = Workload.expand engine specs in
        fst (Engine.run_batch ~domains engine jobs)
      in
      let seq = batch 1 and par = batch 3 in
      let single =
        let engine = Engine.create ~warm_start:false () in
        Workload.expand engine specs
        |> List.map (fun j ->
               Engine.run_job (Engine.create ~warm_start:false ()) j)
        |> Array.of_list
      in
      let a = render seq and b = render par and c = render single in
      if a <> b then QCheck.Test.fail_reportf "1-domain and 3-domain batches differ";
      if a <> c then QCheck.Test.fail_reportf "batch and single-job runs differ";
      true)

(* ---------- serialization round-trip ------------------------------------ *)

let prop_serialize_round_trip =
  QCheck.Test.make ~name:"instance serialization round-trips (incl. fingerprint)"
    ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst = random_geometric_instance seed in
      let text = Serialize.instance_to_string inst in
      let back = Serialize.instance_of_string text in
      (* the round-trip must preserve everything the format captures:
         re-serialising gives the same bytes, hence the same fingerprint *)
      if Serialize.instance_to_string back <> text then
        QCheck.Test.fail_reportf "re-serialisation differs (seed %d)" seed;
      if Serialize.fingerprint back <> Serialize.fingerprint inst then
        QCheck.Test.fail_reportf "fingerprint not preserved (seed %d)" seed;
      if Serialize.shape_fingerprint back <> Serialize.shape_fingerprint inst then
        QCheck.Test.fail_reportf "shape fingerprint not preserved (seed %d)" seed;
      (* spot-check semantic equality: same n/k and same value on every
         support bundle of every bidder *)
      if Instance.n back <> Instance.n inst || back.Instance.k <> inst.Instance.k then
        QCheck.Test.fail_reportf "n/k not preserved (seed %d)" seed;
      Array.iteri
        (fun v bidder ->
          List.iter
            (fun (b, _) ->
              let value = Valuation.value bidder b
              and value' = Valuation.value back.Instance.bidders.(v) b in
              if not (Floats.approx_eq ~eps:1e-9 value value') then
                QCheck.Test.fail_reportf
                  "bidder %d: value of bundle %d changed %.9f -> %.9f" v
                  (Bundle.to_int b) value value')
            (Valuation.support bidder ~k:inst.Instance.k))
        inst.Instance.bidders;
      true)

let prop_revalue_preserves_shape =
  QCheck.Test.make
    ~name:"Workload.revalue preserves the LP shape fingerprint, not the full one"
    ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let inst = random_geometric_instance seed in
      let jittered = Workload.revalue ~seed:(seed + 17) inst in
      Serialize.shape_fingerprint jittered = Serialize.shape_fingerprint inst
      && Serialize.fingerprint jittered <> Serialize.fingerprint inst)

(* ---------- registration ------------------------------------------------- *)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_allocations_feasible_and_requested;
    QCheck_alcotest.to_alcotest prop_parallel_derand_equals_sequential;
    QCheck_alcotest.to_alcotest prop_engine_batch_deterministic;
    QCheck_alcotest.to_alcotest prop_serialize_round_trip;
    QCheck_alcotest.to_alcotest prop_revalue_preserves_shape;
  ]
