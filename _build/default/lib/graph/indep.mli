(** Independent-set computations.

    Exact solvers are branch-and-bound with a node budget; every exact entry
    point returns whether the budget sufficed, and falls back to its greedy
    counterpart's value otherwise (still a valid lower bound, since both
    notions of independence are downward closed). *)

type 'a result = { set : int list; value : 'a; exact : bool }

val max_weight_independent_set :
  ?node_limit:int -> Graph.t -> weights:float array -> float result
(** Maximum-weight independent set in an unweighted conflict graph
    (non-negative vertex weights).  [node_limit] defaults to 2_000_000
    branch nodes. *)

val max_independent_set : ?node_limit:int -> Graph.t -> int result
(** Maximum-cardinality independent set. *)

val greedy_weight : Graph.t -> weights:float array -> int list * float
(** Greedy by decreasing weight. *)

val max_profit_weighted :
  ?node_limit:int ->
  Weighted.t ->
  candidates:int array ->
  profit:(int -> float) ->
  float result
(** Over subsets [M] of [candidates] that are independent in the
    edge-weighted sense, maximise [Σ_{u ∈ M} profit u]  (profits must be
    non-negative).  This is the inner problem of Definition 2. *)

val greedy_profit_weighted :
  Weighted.t -> candidates:int array -> profit:(int -> float) -> int list * float
(** Greedy by decreasing profit, keeping weighted independence. *)
