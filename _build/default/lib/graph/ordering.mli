(** Vertex orderings π (Definition 1).

    The inductive independence number is always relative to an ordering; the
    algorithms only ever ask "does u precede v" and "which vertices precede
    v", so both directions of the permutation are stored. *)

type t

val of_order : int array -> t
(** [of_order a]: [a.(pos)] is the vertex at position [pos].  Must be a
    permutation of [0 .. n-1]. *)

val identity : int -> t

val n : t -> int

val rank : t -> int -> int
(** [rank t v] is π(v), the position of [v] (0-based). *)

val vertex_at : t -> int -> int
(** Inverse of {!rank}. *)

val precedes : t -> int -> int -> bool
(** [precedes t u v] iff π(u) < π(v). *)

val before : t -> int -> int list
(** All vertices [u] with π(u) < π(v), ascending by rank. *)

val after : t -> int -> int list
(** All vertices [u] with π(u) > π(v), ascending by rank. *)

val by_key : int -> (int -> float) -> t
(** [by_key n key] orders vertices by increasing [key] (ties by index).
    E.g. disk graphs use *decreasing* radius: pass [fun v -> -. r v]. *)

val reverse : t -> t

val backward_neighbors : t -> Graph.t -> int -> int list
(** [Γ_π(v)]: neighbours of [v] in the graph that precede [v]. *)

val to_order : t -> int array
(** Copy of the position→vertex array. *)

val pp : Format.formatter -> t -> unit
