(** Edge-weighted conflict graphs (Section 3).

    A non-negative, possibly asymmetric weight [w u v] is attached to every
    ordered pair; a set [M] is independent when the incoming interference
    [Σ_{u ∈ M, u ≠ v} w u v < 1] for every [v ∈ M].  The algorithms use the
    symmetrised weights [w̄ u v = w u v + w v u] (Definition 2). *)

type t

val create : int -> t
(** [create n]: all weights zero. *)

val of_function : int -> (int -> int -> float) -> t
(** [of_function n f] sets [w u v = f u v] for all [u ≠ v]; diagonal forced
    to zero; negative weights rejected. *)

val of_graph : Graph.t -> t
(** Embed an unweighted graph: [w u v = 1] on edges (in both directions), so
    weighted independence coincides with graph independence. *)

val n : t -> int

val w : t -> int -> int -> float
(** Directed weight into the second argument. *)

val wbar : t -> int -> int -> float
(** Symmetrised weight [w u v + w v u]. *)

val set : t -> int -> int -> float -> unit
(** [set t u v x] sets [w u v <- x]; rejects self-pairs and negative [x]. *)

val incoming : t -> into:int -> int list -> float
(** [incoming t ~into:v set] is [Σ_{u ∈ set, u ≠ v} w u v]. *)

val is_independent : t -> int list -> bool
(** [incoming] strictly below 1 for every member. *)

val is_independent_arr : t -> bool array -> bool
(** Same over a membership mask (avoids list allocation in hot loops). *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
