module Prng = Sa_util.Prng

let gnp g ~n ~p =
  let graph = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli g p then Graph.add_edge graph u v
    done
  done;
  graph

let random_bounded_degree g ~n ~d =
  if d < 0 then invalid_arg "Generators.random_bounded_degree: negative degree";
  let graph = Graph.create n in
  let attempts = n * d * 4 in
  for _ = 1 to attempts do
    if n >= 2 then begin
      let u = Prng.int g n and v = Prng.int g n in
      if u <> v
         && (not (Graph.mem_edge graph u v))
         && Graph.degree graph u < d
         && Graph.degree graph v < d
      then Graph.add_edge graph u v
    end
  done;
  graph

let random_weighted g ~n ~density ~scale =
  let wg = Weighted.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Prng.bernoulli g density then
        Weighted.set wg u v (Prng.float g scale)
    done
  done;
  wg

let split_for_asymmetric_channels graph pi ~k =
  if k <= 0 then invalid_arg "Generators.split_for_asymmetric_channels: k <= 0";
  let n = Graph.n graph in
  let parts = Array.init k (fun _ -> Graph.create n) in
  for v = 0 to n - 1 do
    let backward = Ordering.backward_neighbors pi graph v in
    List.iteri (fun i u -> Graph.add_edge parts.(i mod k) u v) backward
  done;
  parts
