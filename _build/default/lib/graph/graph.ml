type t = {
  size : int;
  adj : bool array array;
  mutable m : int;
}

let create size =
  if size < 0 then invalid_arg "Graph.create: negative size";
  { size; adj = Array.make_matrix size size false; m = 0 }

let n g = g.size
let num_edges g = g.m

let check_vertex g v =
  if v < 0 || v >= g.size then invalid_arg "Graph: vertex out of range"

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if not g.adj.(u).(v) then begin
    g.adj.(u).(v) <- true;
    g.adj.(v).(u) <- true;
    g.m <- g.m + 1
  end

let of_edges size edges =
  let g = create size in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  g.adj.(u).(v)

let neighbors g v =
  check_vertex g v;
  let rec collect u acc =
    if u < 0 then acc
    else collect (u - 1) (if g.adj.(v).(u) then u :: acc else acc)
  in
  collect (g.size - 1) []

let degree g v =
  check_vertex g v;
  let d = ref 0 in
  for u = 0 to g.size - 1 do
    if g.adj.(v).(u) then incr d
  done;
  !d

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.size - 1 do
    best := max !best (degree g v)
  done;
  !best

let avg_degree g =
  if g.size = 0 then 0.0 else 2.0 *. float_of_int g.m /. float_of_int g.size

let iter_edges g f =
  for u = 0 to g.size - 1 do
    for v = u + 1 to g.size - 1 do
      if g.adj.(u).(v) then f u v
    done
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let complement g =
  let c = create g.size in
  for u = 0 to g.size - 1 do
    for v = u + 1 to g.size - 1 do
      if not g.adj.(u).(v) then add_edge c u v
    done
  done;
  c

let induced g vs =
  let sub = create (Array.length vs) in
  Array.iteri (fun i u ->
      Array.iteri (fun j v -> if j > i && g.adj.(u).(v) then add_edge sub i j) vs)
    vs;
  sub

let clique size =
  let g = create size in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      add_edge g u v
    done
  done;
  g

let is_independent g set =
  let rec check = function
    | [] -> true
    | v :: rest -> List.for_all (fun u -> not (mem_edge g u v)) rest && check rest
  in
  check set

let copy g = { size = g.size; adj = Array.map Array.copy g.adj; m = g.m }

let pp fmt g = Format.fprintf fmt "graph(n=%d, m=%d)" g.size g.m
