lib/graph/inductive.mli: Graph Ordering Weighted
