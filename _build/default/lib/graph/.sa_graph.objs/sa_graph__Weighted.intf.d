lib/graph/weighted.mli: Format Graph
