lib/graph/indep.ml: Array Graph List Weighted
