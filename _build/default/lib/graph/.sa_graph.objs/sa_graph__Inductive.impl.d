lib/graph/inductive.ml: Array Fun Graph Indep List Ordering Sa_util Weighted
