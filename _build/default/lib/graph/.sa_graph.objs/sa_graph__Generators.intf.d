lib/graph/generators.mli: Graph Ordering Sa_util Weighted
