lib/graph/ordering.mli: Format Graph
