lib/graph/indep.mli: Graph Weighted
