lib/graph/weighted.ml: Array Format Graph List
