lib/graph/generators.ml: Array Graph List Ordering Sa_util Weighted
