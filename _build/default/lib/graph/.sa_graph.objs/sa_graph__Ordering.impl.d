lib/graph/ordering.ml: Array Format Graph List
