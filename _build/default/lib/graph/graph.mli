(** Unweighted conflict graphs (Section 2).

    Vertices are bidders [0 .. n-1]; an edge means the two bidders may never
    share a channel.  Feasible channel allocations are exactly the
    independent sets (Problem 1). *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds the graph; self-loops are rejected, duplicate
    edges are merged. *)

val n : t -> int
(** Number of vertices. *)

val num_edges : t -> int

val add_edge : t -> int -> int -> unit
(** Idempotent; rejects self-loops and out-of-range vertices. *)

val mem_edge : t -> int -> int -> bool
(** O(1) adjacency test. *)

val neighbors : t -> int -> int list
(** Sorted list of neighbours. *)

val degree : t -> int -> int

val max_degree : t -> int

val avg_degree : t -> float
(** Average vertex degree [d̄] (the edge-LP bound of §2.1 is [(d̄+1)/2]). *)

val edges : t -> (int * int) list
(** All edges [(u, v)] with [u < v]. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val complement : t -> t

val induced : t -> int array -> t
(** [induced g vs] is the subgraph induced by [vs]; vertex [i] of the result
    corresponds to [vs.(i)]. *)

val clique : int -> t
(** Complete graph — models a regular combinatorial auction (every pair of
    bidders conflicts). *)

val is_independent : t -> int list -> bool
(** No edge inside the set. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Summary ["graph(n=…, m=…)"]. *)
