(** The inductive independence number ρ (Definitions 1 and 2).

    Computing ρ exactly over all orderings is itself intractable; the paper
    always works with a *given* ordering π supplied by the interference
    model.  This module evaluates ρ(π) — exactly via branch and bound where
    the budget allows, otherwise as a greedy lower bound — and provides the
    degeneracy ordering, which certifies ρ(π) ≤ degeneracy for unweighted
    graphs. *)

type estimate = { rho : float; exact : bool; witness_vertex : int }
(** [rho] is the largest backward independent-set mass found; [witness_vertex]
    attains it ([-1] on empty graphs). *)

val rho_unweighted : ?node_limit:int -> Graph.t -> Ordering.t -> estimate
(** ρ(π) per Definition 1: max over v of the maximum independent set inside
    Γ_π(v).  [rho] is integral (cast to float for a uniform interface). *)

val rho_weighted : ?node_limit:int -> Weighted.t -> Ordering.t -> estimate
(** ρ(π) per Definition 2: max over v of max_{M independent, M before v}
    Σ_{u ∈ M} w̄(u,v).  Candidates are restricted to u with w̄(u,v) > 0
    (zero-weight vertices never help the objective). *)

val degeneracy_ordering : Graph.t -> Ordering.t * int
(** Smallest-degree-last ordering and the graph degeneracy [d]; the returned
    ordering satisfies ρ(π) ≤ backward-degree ≤ d. *)

val greedy_weighted_ordering : ?node_limit:int -> Weighted.t -> Ordering.t
(** Ordering search for arbitrary edge-weighted graphs (when no
    interference model supplies π): repeatedly place *last*, among the
    remaining vertices, the one whose backward independent-set mass
    (Definition 2, restricted to the remaining set) is smallest — the
    weighted generalisation of the degeneracy ordering.  The resulting
    ordering heuristically minimises ρ(π); tests compare it against random
    and identity orderings.  Inner maxima are computed by branch and bound
    under [node_limit] (default 20_000 per step), falling back to greedy. *)

val check_unweighted_bound : Graph.t -> Ordering.t -> rho:int -> int list -> bool
(** [check_unweighted_bound g pi ~rho m] verifies the Definition-1 inequality
    for the specific independent set [m]: every vertex [v] has at most [rho]
    members of [m] in its backward neighbourhood.  Used by property tests. *)

val check_weighted_bound :
  Weighted.t -> Ordering.t -> rho:float -> int list -> bool
(** Definition-2 analogue: [Σ_{u ∈ m, π(u) < π(v)} w̄(u,v) <= rho] for every
    vertex [v], up to the default float tolerance. *)
