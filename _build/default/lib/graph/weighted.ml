type t = { size : int; weights : float array array }

let create size =
  if size < 0 then invalid_arg "Weighted.create: negative size";
  { size; weights = Array.make_matrix size size 0.0 }

let n t = t.size

let check_vertex t v =
  if v < 0 || v >= t.size then invalid_arg "Weighted: vertex out of range"

let w t u v =
  check_vertex t u;
  check_vertex t v;
  t.weights.(u).(v)

let wbar t u v = w t u v +. w t v u

let set t u v x =
  check_vertex t u;
  check_vertex t v;
  if u = v then invalid_arg "Weighted.set: self-pair";
  if x < 0.0 then invalid_arg "Weighted.set: negative weight";
  t.weights.(u).(v) <- x

let of_function size f =
  let t = create size in
  for u = 0 to size - 1 do
    for v = 0 to size - 1 do
      if u <> v then set t u v (f u v)
    done
  done;
  t

let of_graph g =
  of_function (Graph.n g) (fun u v -> if Graph.mem_edge g u v then 1.0 else 0.0)

let incoming t ~into set =
  List.fold_left
    (fun acc u -> if u = into then acc else acc +. w t u into)
    0.0 set

let is_independent t set = List.for_all (fun v -> incoming t ~into:v set < 1.0) set

let is_independent_arr t mask =
  if Array.length mask <> t.size then invalid_arg "Weighted.is_independent_arr: bad mask";
  let ok = ref true in
  for v = 0 to t.size - 1 do
    if mask.(v) then begin
      let total = ref 0.0 in
      for u = 0 to t.size - 1 do
        if mask.(u) && u <> v then total := !total +. t.weights.(u).(v)
      done;
      if !total >= 1.0 then ok := false
    end
  done;
  !ok

let copy t = { size = t.size; weights = Array.map Array.copy t.weights }

let pp fmt t = Format.fprintf fmt "weighted-graph(n=%d)" t.size
