(** Random and structured conflict-graph generators.

    Besides the wireless models (built in [Sa_wireless] from geometry), the
    experiments need abstract graph families: G(n,p), bounded-degree graphs
    (the hardness reductions of Theorems 5 and 14 start from these), and the
    Theorem-14 edge-splitting construction for asymmetric channels. *)

val gnp : Sa_util.Prng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi G(n,p). *)

val random_bounded_degree : Sa_util.Prng.t -> n:int -> d:int -> Graph.t
(** Random graph with maximum degree at most [d] (random edge insertions
    that respect the cap; not uniform over all such graphs, which is fine
    for workload purposes). *)

val random_weighted :
  Sa_util.Prng.t -> n:int -> density:float -> scale:float -> Weighted.t
(** Random edge-weighted conflict graph: each ordered pair independently
    receives weight [Uniform(0, scale)] with probability [density]. *)

val split_for_asymmetric_channels :
  Graph.t -> Ordering.t -> k:int -> Graph.t array
(** The Theorem-14 construction: distribute each vertex's backward edges
    round-robin over [k] edge sets, so that every [G_j] has backward degree
    (hence inductive independence w.r.t. the same ordering) at most
    [⌈d_back/k⌉].  The union of the returned graphs is the input graph. *)
