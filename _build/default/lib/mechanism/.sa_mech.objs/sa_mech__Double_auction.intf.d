lib/mechanism/double_auction.mli: Sa_graph
