lib/mechanism/lavi_swamy.ml: Array Decomposition Float Sa_core Sa_val
