lib/mechanism/decomposition.ml: Array Float Hashtbl List Sa_core Sa_lp Sa_util Sa_val String
