lib/mechanism/vcg.mli: Sa_core
