lib/mechanism/double_auction.ml: Array Float Fun Hashtbl List Sa_graph
