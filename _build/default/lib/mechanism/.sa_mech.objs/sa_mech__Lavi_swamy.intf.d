lib/mechanism/lavi_swamy.mli: Decomposition Sa_core Sa_util Sa_val
