lib/mechanism/vcg.ml: Array Float Sa_core Sa_val
