lib/mechanism/decomposition.mli: Sa_core Sa_util
