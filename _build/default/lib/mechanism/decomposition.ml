module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Exact = Sa_core.Exact
module Model = Sa_lp.Model
module Simplex = Sa_lp.Simplex
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Prng = Sa_util.Prng

type t = {
  allocations : Sa_core.Allocation.t array;
  weights : float array;
  alpha_effective : float;
}

let alloc_key alloc =
  String.concat ";" (Array.to_list (Array.map (fun b -> string_of_int (Bundle.to_int b)) alloc))

(* The pricing problem: a conflict-graph auction whose bidders place XOR
   bids with dual values on the support bundles. *)
let pricing_instance inst support mu =
  let n = Instance.n inst in
  let bids = Array.make n [] in
  Array.iteri
    (fun c (v, bundle) ->
      if mu.(c) > 1e-12 then bids.(v) <- (bundle, mu.(c)) :: bids.(v))
    support;
  let bidders = Array.map (fun b -> Valuation.Xor b) bids in
  Instance.with_available
    (Instance.make ~conflict:inst.Instance.conflict ~k:inst.Instance.k ~bidders
       ~ordering:inst.Instance.ordering ~rho:inst.Instance.rho)
    inst.Instance.available

(* Dual mass of an allocation: Σ_c μ_c · [χ(v) = T_c]. *)
let dual_mass support mu alloc =
  let total = ref 0.0 in
  Array.iteri
    (fun c (v, bundle) -> if Bundle.equal alloc.(v) bundle then total := !total +. mu.(c))
    support;
  !total

let best_pricing_allocation g_rng inst support mu ~pricing_trials =
  let pinst = pricing_instance inst support mu in
  let candidates = ref [] in
  (try
     let frac = Lp.solve_explicit pinst in
     candidates := Rounding.solve ~trials:pricing_trials g_rng pinst frac :: !candidates;
     candidates := Greedy.from_lp pinst frac :: !candidates
   with Failure _ -> ());
  candidates := Greedy.by_value pinst :: !candidates;
  if Instance.n pinst <= 14 then begin
    let e = Exact.solve ~node_limit:200_000 pinst in
    candidates := e.Exact.allocation :: !candidates
  end;
  (* The pricing valuations are the duals restricted to support bundles, but
     the candidates' masses must be measured in exact dual terms. *)
  List.fold_left
    (fun (best, best_mass) alloc ->
      let mass = dual_mass support mu alloc in
      if mass > best_mass then (alloc, mass) else (best, best_mass))
    (Allocation.empty (Instance.n inst), 0.0)
    !candidates

let decompose ?(max_rounds = 60) ?(pricing_trials = 12) g_rng inst frac ~alpha =
  if alpha < 1.0 then invalid_arg "Decomposition.decompose: alpha must be >= 1";
  let n = Instance.n inst in
  let support =
    Array.map (fun c -> (c.Lp.bidder, c.Lp.bundle)) frac.Lp.columns
  in
  let ncols = Array.length support in
  let target = Array.map (fun c -> c.Lp.x /. alpha) frac.Lp.columns in
  (* Master model: min Σ λ s.t. coverage >= target. *)
  let m = Model.create Simplex.Minimize in
  let rows = Array.init ncols (fun c -> Model.add_row m [] Simplex.Ge target.(c)) in
  let allocations = ref [] (* (alloc, var), reversed *) in
  let seen = Hashtbl.create 64 in
  let add_allocation alloc =
    let key = alloc_key alloc in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      let var = Model.add_var m ~obj:1.0 in
      Array.iteri
        (fun c (v, bundle) ->
          if Bundle.equal alloc.(v) bundle then Model.add_to_row m rows.(c) var 1.0)
        support;
      allocations := (alloc, var) :: !allocations;
      true
    end
  in
  (* Seed: singleton allocations — one per support column — guarantee master
     feasibility (a lone bidder is always independent). *)
  Array.iter
    (fun (v, bundle) ->
      let alloc = Allocation.empty n in
      alloc.(v) <- bundle;
      ignore (add_allocation alloc))
    support;
  let solve_master () =
    let sol = Model.solve m in
    match sol.Model.status with
    | Simplex.Optimal -> sol
    | _ -> failwith "Decomposition: master LP failed"
  in
  let sol = ref (solve_master ()) in
  let rounds = ref 0 in
  let improving = ref true in
  while !improving && !rounds < max_rounds do
    incr rounds;
    let mu = Array.map (fun r -> Float.max 0.0 ((!sol).Model.dual r)) rows in
    let alloc, mass = best_pricing_allocation g_rng inst support mu ~pricing_trials in
    if mass > 1.0 +. 1e-7 && add_allocation alloc then sol := solve_master ()
    else improving := false
  done;
  let lambda =
    List.rev_map (fun (alloc, var) -> (Array.copy alloc, (!sol).Model.value var)) !allocations
    |> List.filter (fun (_, w) -> w > 1e-12)
  in
  let gamma = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 lambda in
  (* gamma <= 1: pad with the empty allocation.  gamma > 1: the verified
     factor is alpha * gamma; normalise weights. *)
  let alpha_effective, lambda =
    if gamma <= 1.0 then (alpha, ((Allocation.empty n, 1.0 -. gamma) :: lambda))
    else (alpha *. gamma, List.map (fun (a, w) -> (a, w /. gamma)) lambda)
  in
  let scale_targets = alpha /. alpha_effective in
  let final_target = Array.map (fun t -> t *. scale_targets) target in
  (* Shrink overshoot to exact equality using downward closure. *)
  let entries = ref (List.map (fun (a, w) -> ref (a, w)) lambda) in
  Array.iteri
    (fun c (v, bundle) ->
      let coverage =
        List.fold_left
          (fun acc r ->
            let a, w = !r in
            if Bundle.equal a.(v) bundle then acc +. w else acc)
          0.0 !entries
      in
      let excess = ref (coverage -. final_target.(c)) in
      if !excess > 1e-12 then
        List.iter
          (fun r ->
            let a, w = !r in
            if !excess > 1e-12 && Bundle.equal a.(v) bundle && w > 0.0 then begin
              let delta = Float.min w !excess in
              (* Move [delta] of this allocation's weight to a copy in which
                 bidder v is dropped — still feasible. *)
              let reduced = Array.copy a in
              reduced.(v) <- Bundle.empty;
              r := (a, w -. delta);
              entries := ref (reduced, delta) :: !entries;
              excess := !excess -. delta
            end)
          !entries)
    support;
  (* Merge duplicates and drop zero weights. *)
  let merged = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let a, w = !r in
      if w > 1e-12 then
        let key = alloc_key a in
        match Hashtbl.find_opt merged key with
        | Some (a0, w0) -> Hashtbl.replace merged key (a0, w0 +. w)
        | None -> Hashtbl.add merged key (a, w))
    !entries;
  let pairs = Hashtbl.fold (fun _ pair acc -> pair :: acc) merged [] in
  (* Re-normalise the tiny drift from dropped sub-1e-12 weights. *)
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  let pairs =
    if total > 0.0 then List.map (fun (a, w) -> (a, w /. total)) pairs else pairs
  in
  {
    allocations = Array.of_list (List.map fst pairs);
    weights = Array.of_list (List.map snd pairs);
    alpha_effective;
  }

let verify ?(eps = 1e-6) inst frac t =
  let total = Array.fold_left ( +. ) 0.0 t.weights in
  let weights_ok = Float.abs (total -. 1.0) <= eps in
  let feasible_ok = Array.for_all (Allocation.is_feasible inst) t.allocations in
  let support = Array.map (fun c -> (c.Lp.bidder, c.Lp.bundle)) frac.Lp.columns in
  let coverage_ok = ref true in
  Array.iteri
    (fun c (v, bundle) ->
      let coverage = ref 0.0 in
      Array.iteri
        (fun l alloc ->
          if Bundle.equal alloc.(v) bundle then coverage := !coverage +. t.weights.(l))
        t.allocations;
      let want = frac.Lp.columns.(c).Lp.x /. t.alpha_effective in
      if Float.abs (!coverage -. want) > eps then coverage_ok := false)
    support;
  (* No mass outside the support. *)
  let in_support v bundle =
    Array.exists (fun (u, b) -> u = v && Bundle.equal b bundle) support
  in
  let off_support = ref false in
  Array.iter
    (fun alloc ->
      Array.iteri
        (fun v bundle ->
          if (not (Bundle.is_empty bundle)) && not (in_support v bundle) then
            off_support := true)
        alloc)
    t.allocations;
  weights_ok && feasible_ok && !coverage_ok && not !off_support

let expected_value_of_bidder inst t v =
  let total = ref 0.0 in
  Array.iteri
    (fun l alloc ->
      total :=
        !total +. (t.weights.(l) *. Allocation.bidder_value inst alloc v))
    t.allocations;
  !total

let sample g t = t.allocations.(Prng.categorical g t.weights)
