(** Lavi–Swamy decomposition (Section 5).

    Given the LP optimum [x*] and a factor [α] at least the verified
    integrality gap, express [x*/α] as a convex combination of feasible
    integral allocations:  [Σ_l λ_l·χ_l = x*/α], [Σ_l λ_l = 1], [λ ≥ 0].

    Implementation: column generation on the covering master
    [min Σλ  s.t.  Σ_l λ_l χ_l(v,T) ≥ x*_{v,T}/α].  The pricing problem —
    find a feasible allocation maximising the dual mass [Σ μ_{v,T} χ(v,T)] —
    is itself a conflict-graph auction with XOR valuations on the support of
    [x*], solved with the paper's own approximation algorithm (plus greedy
    and, on small instances, the exact solver).  Overshoot is then *shrunk*
    to exact equality using downward closure (dropping a bidder from a
    feasible allocation keeps it feasible), and the weights are normalised;
    if the master could not reach Σλ ≤ 1 with verified pricing, the returned
    [alpha_effective ≥ α] records the actually-achieved factor (the paper's
    "verifies an integrality gap" role of the algorithm). *)

type t = {
  allocations : Sa_core.Allocation.t array;
  weights : float array;  (** convex weights, same length *)
  alpha_effective : float;
}

val decompose :
  ?max_rounds:int ->
  ?pricing_trials:int ->
  Sa_util.Prng.t ->
  Sa_core.Instance.t ->
  Sa_core.Lp_relaxation.fractional ->
  alpha:float ->
  t
(** [alpha] must be ≥ 1.  Every returned allocation is feasible. *)

val verify : ?eps:float -> Sa_core.Instance.t -> Sa_core.Lp_relaxation.fractional -> t -> bool
(** Checks [Σ λ = 1], all allocations feasible, and
    [Σ_l λ_l·χ_l(v,T) = x*_{v,T}/alpha_effective] on the support (and zero
    off-support). *)

val expected_value_of_bidder : Sa_core.Instance.t -> t -> int -> float
(** [Σ_l λ_l · b_v(χ_l(v))]. *)

val sample : Sa_util.Prng.t -> t -> Sa_core.Allocation.t
(** Draw an allocation according to the weights. *)
