(** Truthful double spectrum auction (related work [32], TRUST-style).

    The single-sided mechanisms assume the auctioneer owns the spectrum; in
    a real secondary market *primary licence holders sell* while secondary
    users buy.  This module implements the TRUST/McAfee construction for
    single-channel, single-minded buyers over a conflict graph:

    1. Buyers are partitioned into *bid-independent* groups, each an
       independent set of the conflict graph (greedy maximal independent
       sets in a structure-only order) — a group can share one channel.
    2. Each group places the virtual bid [π_g = |g| · min_{i∈g} b_i].
    3. McAfee clearing between the sorted group bids (descending) and the
       sellers' asks (ascending): with [q] = the largest index where
       [π_q ≥ a_q], the top [q−1] groups trade with the cheapest [q−1]
       sellers; every winning group pays [π_q] (split equally among its
       members) and every trading seller receives [a_q].

    Standard properties, all verified by the test suite: truthfulness for
    buyers and sellers (the clearing prices are set by the excluded
    [q]-th participants), ex-post individual rationality, budget balance
    ([q−1]·(π_q − a_q) ≥ 0 surplus to the market maker), and per-channel
    feasibility. *)

type group = { members : int list; channel : int option; group_bid : float }

type outcome = {
  groups : group array;  (** all groups, winners carry [channel = Some j] *)
  buyer_payments : float array;  (** per buyer; 0 for losers *)
  seller_revenue : float array;  (** per seller; 0 for non-traders *)
  traded : int;  (** number of channels traded (= q − 1, or 0) *)
  buyer_welfare : float;  (** Σ winning bids *)
  surplus : float;  (** Σ payments − Σ revenue, ≥ 0 *)
}

val run :
  Sa_graph.Graph.t -> bids:float array -> asks:float array -> outcome
(** [run graph ~bids ~asks]: one bid per buyer (vertex), one ask per
    seller (channel).  Bids and asks must be non-negative. *)

val is_feasible : Sa_graph.Graph.t -> outcome -> bool
(** Every winning group is an independent set and channels are assigned to
    at most one group. *)
