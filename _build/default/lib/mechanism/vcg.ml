module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Exact = Sa_core.Exact
module Valuation = Sa_val.Valuation

type outcome = {
  allocation : Sa_core.Allocation.t;
  welfare : float;
  payments : float array;
}

let without_bidder inst v =
  let bidders = Array.copy inst.Instance.bidders in
  bidders.(v) <- Valuation.Xor [];
  Instance.with_available
    (Instance.make ~conflict:inst.Instance.conflict ~k:inst.Instance.k ~bidders
       ~ordering:inst.Instance.ordering ~rho:inst.Instance.rho)
    inst.Instance.available

let run ?node_limit inst =
  let n = Instance.n inst in
  let solve instance =
    let r = Exact.solve ?node_limit instance in
    if not r.Exact.exact then failwith "Vcg.run: exact solver budget exhausted";
    r
  in
  let full = solve inst in
  let payments =
    Array.init n (fun v ->
        let value_v = Allocation.bidder_value inst full.Exact.allocation v in
        let others_with_v = full.Exact.value -. value_v in
        let without = solve (without_bidder inst v) in
        let p = without.Exact.value -. others_with_v in
        (* Clarke payments are non-negative up to numerical noise. *)
        Float.max 0.0 p)
  in
  { allocation = full.Exact.allocation; welfare = full.Exact.value; payments }
