(** Exact VCG over the integral problem (small instances).

    The classical benchmark: welfare-optimal allocation with Clarke-pivot
    payments [p_v = opt(-v) − (opt − value_v(opt))].  Exponential via the
    exact branch-and-bound solver — usable only on small instances, which is
    precisely its role: ground truth against the Lavi–Swamy mechanism. *)

type outcome = {
  allocation : Sa_core.Allocation.t;
  welfare : float;
  payments : float array;  (** Clarke payments, non-negative *)
}

val run : ?node_limit:int -> Sa_core.Instance.t -> outcome
(** Requires the exact solver to finish within the budget on [n+1]
    subproblems; raises [Failure] otherwise. *)
