(** The truthful-in-expectation mechanism (Section 5).

    Pipeline: solve the LP → decompose [x*/α] into a lottery over feasible
    integral allocations ({!Decomposition}) → charge scaled VCG payments.

    Payments follow Lavi–Swamy: the *fractional* VCG payment of bidder [v]
    is [p_v = LP_{-v} − (LP − fv_v)] where [fv_v = Σ_T b_{v,T}·x*_{v,T}] is
    [v]'s fractional value; when the lottery realises allocation [S], bidder
    [v] pays [p_v · b_v(S(v)) / fv_v] — so expected payment is [p_v / α] and
    reporting truthfully maximises expected utility. *)

type outcome = {
  fractional : Sa_core.Lp_relaxation.fractional;
  lottery : Decomposition.t;
  alpha : float;  (** effective scaling factor of the lottery *)
  fractional_payments : float array;  (** the [p_v] above *)
  fractional_values : float array;  (** the [fv_v] above *)
}

val run :
  ?alpha:float ->
  ?max_rounds:int ->
  ?pricing_trials:int ->
  Sa_util.Prng.t ->
  Sa_core.Instance.t ->
  outcome
(** [alpha] defaults to the instance's theoretical guarantee
    ({!Sa_core.Rounding.guarantee}).  Uses the explicit LP solver. *)

val sample : Sa_util.Prng.t -> Sa_core.Instance.t -> outcome -> Sa_core.Allocation.t * float array
(** Draw an allocation and the realised per-bidder payments. *)

val expected_payment : outcome -> int -> float
(** [p_v / α] (exact, from the lottery). *)

val expected_utility :
  Sa_core.Instance.t -> outcome -> bidder:int -> true_valuation:Sa_val.Valuation.t -> float
(** Expected utility of [bidder] when its *true* valuation is
    [true_valuation] but the mechanism ran on the instance's (possibly
    misreported) valuations.  Computed exactly from the lottery. *)
