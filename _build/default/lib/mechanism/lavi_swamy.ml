module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Valuation = Sa_val.Valuation

type outcome = {
  fractional : Lp.fractional;
  lottery : Decomposition.t;
  alpha : float;
  fractional_payments : float array;
  fractional_values : float array;
}

let run ?alpha ?max_rounds ?pricing_trials g_rng inst =
  let n = Instance.n inst in
  let alpha = match alpha with Some a -> a | None -> Rounding.guarantee inst in
  let frac = Lp.solve_explicit inst in
  let lottery = Decomposition.decompose ?max_rounds ?pricing_trials g_rng inst frac ~alpha in
  let fractional_values =
    Array.init n (fun v -> Lp.fractional_value_of_bidder inst frac v)
  in
  let fractional_payments =
    Array.init n (fun v ->
        if fractional_values.(v) <= 1e-12 then 0.0
        else begin
          let without = Lp.solve_explicit ~zeroed:[ v ] inst in
          let others_with_v = frac.Lp.objective -. fractional_values.(v) in
          Float.max 0.0 (without.Lp.objective -. others_with_v)
        end)
  in
  { fractional = frac; lottery; alpha = lottery.Decomposition.alpha_effective;
    fractional_payments; fractional_values }

let realised_payment inst outcome alloc v =
  let fv = outcome.fractional_values.(v) in
  if fv <= 1e-12 then 0.0
  else
    outcome.fractional_payments.(v) *. Allocation.bidder_value inst alloc v /. fv

let sample g inst outcome =
  let alloc = Decomposition.sample g outcome.lottery in
  let payments =
    Array.init (Instance.n inst) (fun v -> realised_payment inst outcome alloc v)
  in
  (alloc, payments)

let expected_payment outcome v =
  (* E[b_v(S(v))] = fv_v / alpha by the decomposition, so the realised
     payment averages to p_v / alpha. *)
  outcome.fractional_payments.(v) /. outcome.alpha

let expected_utility inst outcome ~bidder ~true_valuation =
  let lottery = outcome.lottery in
  let value = ref 0.0 and payment = ref 0.0 in
  Array.iteri
    (fun l alloc ->
      let w = lottery.Decomposition.weights.(l) in
      value := !value +. (w *. Valuation.value true_valuation alloc.(bidder));
      payment := !payment +. (w *. realised_payment inst outcome alloc bidder))
    lottery.Decomposition.allocations;
  !value -. !payment
