module Graph = Sa_graph.Graph

type group = { members : int list; channel : int option; group_bid : float }

type outcome = {
  groups : group array;
  buyer_payments : float array;
  seller_revenue : float array;
  traded : int;
  buyer_welfare : float;
  surplus : float;
}

(* Bid-independent group formation: repeatedly peel a maximal independent
   set, scanning vertices in index order (structure-only, so misreporting a
   bid cannot move a buyer between groups). *)
let form_groups graph =
  let n = Graph.n graph in
  let assigned = Array.make n false in
  let groups = ref [] in
  let remaining = ref n in
  while !remaining > 0 do
    let members = ref [] in
    for v = 0 to n - 1 do
      if
        (not assigned.(v))
        && List.for_all (fun u -> not (Graph.mem_edge graph u v)) !members
      then members := v :: !members
    done;
    List.iter
      (fun v ->
        assigned.(v) <- true;
        decr remaining)
      !members;
    groups := List.rev !members :: !groups
  done;
  List.rev !groups

let run graph ~bids ~asks =
  let n = Graph.n graph in
  if Array.length bids <> n then invalid_arg "Double_auction.run: bids size mismatch";
  Array.iter (fun b -> if b < 0.0 then invalid_arg "Double_auction.run: negative bid") bids;
  Array.iter (fun a -> if a < 0.0 then invalid_arg "Double_auction.run: negative ask") asks;
  let m = Array.length asks in
  let raw_groups = form_groups graph in
  let group_bid members =
    match members with
    | [] -> 0.0
    | _ ->
        let size = float_of_int (List.length members) in
        let lowest = List.fold_left (fun acc v -> Float.min acc bids.(v)) infinity members in
        size *. lowest
  in
  let groups =
    List.map (fun members -> { members; channel = None; group_bid = group_bid members }) raw_groups
    |> Array.of_list
  in
  (* Sort group indices by bid descending, seller indices by ask ascending. *)
  let by_bid = Array.init (Array.length groups) Fun.id in
  Array.sort (fun a b -> compare groups.(b).group_bid groups.(a).group_bid) by_bid;
  let by_ask = Array.init m Fun.id in
  Array.sort (fun a b -> compare asks.(a) asks.(b)) by_ask;
  (* q = largest 1-based index with bid_q >= ask_q. *)
  let limit = min (Array.length groups) m in
  let q = ref 0 in
  for l = 0 to limit - 1 do
    if groups.(by_bid.(l)).group_bid >= asks.(by_ask.(l)) then q := l + 1
  done;
  let traded = max 0 (!q - 1) in
  let buyer_payments = Array.make n 0.0 in
  let seller_revenue = Array.make m 0.0 in
  let buyer_welfare = ref 0.0 in
  let final_groups = Array.copy groups in
  if traded > 0 then begin
    let clearing_bid = groups.(by_bid.(!q - 1)).group_bid in
    let clearing_ask = asks.(by_ask.(!q - 1)) in
    for l = 0 to traded - 1 do
      let gi = by_bid.(l) in
      let seller = by_ask.(l) in
      let g = groups.(gi) in
      final_groups.(gi) <- { g with channel = Some seller };
      let share = clearing_bid /. float_of_int (List.length g.members) in
      List.iter
        (fun v ->
          buyer_payments.(v) <- share;
          buyer_welfare := !buyer_welfare +. bids.(v))
        g.members;
      seller_revenue.(seller) <- clearing_ask
    done
  end;
  let total_payments = Array.fold_left ( +. ) 0.0 buyer_payments in
  let total_revenue = Array.fold_left ( +. ) 0.0 seller_revenue in
  {
    groups = final_groups;
    buyer_payments;
    seller_revenue;
    traded;
    buyer_welfare = !buyer_welfare;
    surplus = total_payments -. total_revenue;
  }

let is_feasible graph outcome =
  let channel_ok = Hashtbl.create 8 in
  Array.for_all
    (fun g ->
      match g.channel with
      | None -> true
      | Some j ->
          let fresh = not (Hashtbl.mem channel_ok j) in
          Hashtbl.replace channel_ok j ();
          fresh && Graph.is_independent graph g.members)
    outcome.groups
