(** Deployment-map rendering: link systems, disk deployments, allocations.

    Channels are colour-coded with a fixed palette; unallocated bidders are
    grey.  Output is a standalone SVG (see {!Svg}). *)

val channel_color : int -> string
(** Stable palette, cycling after 10 channels. *)

val links :
  ?alloc:Sa_core.Allocation.t ->
  ?title:string ->
  Sa_wireless.Link.system ->
  Svg.t
(** Senders as dots, receivers as hollow dots, the link as an arrowless
    line.  With [alloc], a link is coloured by its first allocated channel
    (grey when unallocated) and thicker when it won; the legend shows the
    channels in use.  Requires a planar link system (built from points). *)

val disks :
  ?alloc:Sa_core.Allocation.t ->
  ?title:string ->
  Sa_wireless.Disk.t ->
  Svg.t
(** Transmitters as centre dots with their coverage disks; with [alloc],
    disks are filled (translucent) in their first channel's colour. *)

val write : string -> Svg.t -> unit
(** Alias of {!Svg.write_file} with the arguments in render-pipeline
    order. *)
