(** Minimal SVG document builder (no dependencies).

    Just enough to draw deployment maps: shapes are accumulated and
    rendered into a standalone [<svg>] document.  Coordinates are in the
    caller's world units; a world-box-to-pixels transform is applied at
    render time. *)

type t

val create : world:float * float * float * float -> width_px:int -> t
(** [create ~world:(x0, y0, x1, y1) ~width_px] — world bounding box mapped
    to [width_px] pixels wide (height follows the aspect ratio); the y axis
    is flipped so world "up" renders up. *)

val circle :
  t -> cx:float -> cy:float -> r:float -> ?fill:string -> ?stroke:string ->
  ?stroke_width:float -> ?opacity:float -> unit -> unit
(** [r] is in world units. *)

val line :
  t -> x1:float -> y1:float -> x2:float -> y2:float -> ?stroke:string ->
  ?stroke_width:float -> ?dashed:bool -> unit -> unit

val text :
  t -> x:float -> y:float -> ?size_px:int -> ?fill:string -> string -> unit

val title : t -> string -> unit
(** Caption along the bottom edge (pixel space). *)

val legend : t -> (string * string) list -> unit
(** [(color, label)] swatches stacked in the top-left corner (pixel space). *)

val to_string : t -> string

val write_file : string -> t -> unit
