type t = {
  x0 : float;
  y0 : float;
  scale : float;
  width_px : int;
  height_px : int;
  mutable shapes : string list; (* reversed *)
}

let create ~world:(x0, y0, x1, y1) ~width_px =
  if x1 <= x0 || y1 <= y0 then invalid_arg "Svg.create: empty world box";
  let scale = float_of_int width_px /. (x1 -. x0) in
  let height_px = int_of_float (Float.ceil ((y1 -. y0) *. scale)) in
  { x0; y0; scale; width_px; height_px; shapes = [] }

let px t x = (x -. t.x0) *. t.scale
let py t y = float_of_int t.height_px -. ((y -. t.y0) *. t.scale)

let add t s = t.shapes <- s :: t.shapes

let circle t ~cx ~cy ~r ?(fill = "none") ?(stroke = "black") ?(stroke_width = 1.0)
    ?(opacity = 1.0) () =
  add t
    (Printf.sprintf
       {|<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" stroke="%s" stroke-width="%.2f" opacity="%.2f"/>|}
       (px t cx) (py t cy) (r *. t.scale) fill stroke stroke_width opacity)

let line t ~x1 ~y1 ~x2 ~y2 ?(stroke = "black") ?(stroke_width = 1.5)
    ?(dashed = false) () =
  add t
    (Printf.sprintf
       {|<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"%s/>|}
       (px t x1) (py t y1) (px t x2) (py t y2) stroke stroke_width
       (if dashed then {| stroke-dasharray="4 3"|} else ""))

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let text t ~x ~y ?(size_px = 11) ?(fill = "black") s =
  add t
    (Printf.sprintf {|<text x="%.2f" y="%.2f" font-size="%d" fill="%s">%s</text>|}
       (px t x) (py t y) size_px fill (escape s))

let title t s =
  add t
    (Printf.sprintf
       {|<text x="%d" y="%d" font-size="14" font-weight="bold">%s</text>|}
       8 (t.height_px - 8) (escape s))

let legend t entries =
  List.iteri
    (fun i (color, label) ->
      let y = 16 + (18 * i) in
      add t
        (Printf.sprintf {|<rect x="8" y="%d" width="12" height="12" fill="%s"/>|}
           (y - 10) color);
      add t
        (Printf.sprintf {|<text x="26" y="%d" font-size="12">%s</text>|} y
           (escape label)))
    entries

let to_string t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       {|<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">|}
       t.width_px t.height_px t.width_px t.height_px);
  Buffer.add_string buf "\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    (List.rev t.shapes);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
