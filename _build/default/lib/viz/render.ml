module Point = Sa_geom.Point
module Metric = Sa_geom.Metric
module Bundle = Sa_val.Bundle
module Link = Sa_wireless.Link
module Disk = Sa_wireless.Disk

let palette =
  [|
    "#1f77b4"; "#ff7f0e"; "#2ca02c"; "#d62728"; "#9467bd";
    "#8c564b"; "#e377c2"; "#7f7f7f"; "#bcbd22"; "#17becf";
  |]

let channel_color j = palette.(j mod Array.length palette)
let grey = "#c8c8c8"

let color_of_bundle = function
  | b when Bundle.is_empty b -> grey
  | b -> channel_color (List.hd (Bundle.to_list b))

let world_of_points pts =
  let xs = Array.map (fun p -> p.Point.x) pts in
  let ys = Array.map (fun p -> p.Point.y) pts in
  let min_of a = Array.fold_left Float.min a.(0) a in
  let max_of a = Array.fold_left Float.max a.(0) a in
  let pad = 0.05 *. Float.max 1.0 (max_of xs -. min_of xs) in
  (min_of xs -. pad, min_of ys -. pad, max_of xs +. pad, max_of ys +. pad)

let legend_of_alloc alloc =
  match alloc with
  | None -> []
  | Some a ->
      let channels =
        Array.to_list a
        |> List.concat_map Bundle.to_list
        |> List.sort_uniq compare
      in
      List.map (fun j -> (channel_color j, Printf.sprintf "channel %d" j)) channels
      @ [ (grey, "unallocated") ]

let add_title svg = function None -> () | Some t -> Svg.title svg t

let links ?alloc ?title sys =
  let pts =
    match Metric.points (Link.metric sys) with
    | Some pts -> pts
    | None -> invalid_arg "Render.links: link system has no planar embedding"
  in
  let svg = Svg.create ~world:(world_of_points pts) ~width_px:720 in
  add_title svg title;
  for i = 0 to Link.n sys - 1 do
    let l = Link.link sys i in
    let s = pts.(l.Link.sender) and r = pts.(l.Link.receiver) in
    let bundle = match alloc with Some a -> a.(i) | None -> Bundle.empty in
    let color = match alloc with Some _ -> color_of_bundle bundle | None -> "black" in
    let width = if Bundle.is_empty bundle then 1.0 else 2.5 in
    Svg.line svg ~x1:s.Point.x ~y1:s.Point.y ~x2:r.Point.x ~y2:r.Point.y
      ~stroke:color ~stroke_width:width ();
    Svg.circle svg ~cx:s.Point.x ~cy:s.Point.y ~r:0.08 ~fill:color ~stroke:"none" ();
    Svg.circle svg ~cx:r.Point.x ~cy:r.Point.y ~r:0.08 ~fill:"white" ~stroke:color ()
  done;
  Svg.legend svg (legend_of_alloc alloc);
  svg

let disks ?alloc ?title d =
  let pts = Array.init (Disk.n d) (Disk.point d) in
  let x0, y0, x1, y1 = world_of_points pts in
  let rmax =
    let best = ref 0.0 in
    for i = 0 to Disk.n d - 1 do
      best := Float.max !best (Disk.radius d i)
    done;
    !best
  in
  let svg =
    Svg.create ~world:(x0 -. rmax, y0 -. rmax, x1 +. rmax, y1 +. rmax) ~width_px:720
  in
  add_title svg title;
  for i = 0 to Disk.n d - 1 do
    let p = Disk.point d i in
    let bundle = match alloc with Some a -> a.(i) | None -> Bundle.empty in
    let color = match alloc with Some _ -> color_of_bundle bundle | None -> "black" in
    let fill = if Bundle.is_empty bundle then "none" else color in
    Svg.circle svg ~cx:p.Point.x ~cy:p.Point.y ~r:(Disk.radius d i) ~fill
      ~stroke:color ~opacity:0.35 ();
    Svg.circle svg ~cx:p.Point.x ~cy:p.Point.y ~r:0.06 ~fill:color ~stroke:"none" ()
  done;
  Svg.legend svg (legend_of_alloc alloc);
  svg

let write path svg = Svg.write_file path svg
