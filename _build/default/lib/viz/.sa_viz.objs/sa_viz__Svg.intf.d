lib/viz/svg.mli:
