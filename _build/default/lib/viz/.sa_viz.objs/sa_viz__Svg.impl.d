lib/viz/svg.ml: Buffer Float Fun List Printf String
