lib/viz/render.ml: Array Float List Printf Sa_geom Sa_val Sa_wireless Svg
