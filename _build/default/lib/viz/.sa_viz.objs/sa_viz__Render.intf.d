lib/viz/render.mli: Sa_core Sa_wireless Svg
