(** Descriptive statistics over float samples.

    Used by the experiment harness to summarise repeated randomized runs
    (approximation ratios, running times, ρ estimates). *)

type summary = {
  n : int;  (** number of samples *)
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  q1 : float;  (** 25th percentile *)
  q3 : float;  (** 75th percentile *)
}

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than 2 samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]], linear interpolation between order
    statistics.  Requires a non-empty array. *)

val median : float array -> float
(** [quantile xs 0.5]. *)

val summarize : float array -> summary
(** Full summary; requires a non-empty array. *)

val ci95_halfwidth : float array -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean ([1.96 * stddev / sqrt n]); 0 when fewer than 2 samples. *)

val geometric_mean : float array -> float
(** Geometric mean of positive samples; used for ratio aggregation. *)

val jain_index : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] over non-negative samples:
    1 when perfectly equal, → 1/n when one sample dominates.  Returns 1 on
    empty or all-zero input. *)

val histogram : float array -> bins:int -> (float * float * int) array
(** [histogram xs ~bins] returns [(lo, hi, count)] per bin over the sample
    range.  Requires a non-empty array and [bins >= 1]. *)
