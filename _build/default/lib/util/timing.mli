(** Wall-clock timing helpers for the experiment driver.

    Bechamel handles micro-benchmarks in [bench/]; this module covers the
    coarse per-run timings reported in experiment tables. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)

val time_only : (unit -> 'a) -> float
(** Elapsed seconds only, discarding the result. *)

val repeat : int -> (unit -> 'a) -> float array
(** [repeat n f] runs [f] [n] times and returns the per-run timings. *)
