type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create headers = { headers; rows = [] }

let add_row t cells =
  let width = List.length t.headers in
  let given = List.length cells in
  if given > width then invalid_arg "Table.add_row: more cells than headers";
  let padded = cells @ List.init (width - given) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let cell_f ?(prec = 3) x = Printf.sprintf "%.*f" prec x
let cell_i = string_of_int

let add_floats t ?prec xs = add_row t (List.map (cell_f ?prec) xs)
let add_sep t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure all_cell_rows;
  let buf = Buffer.create 1024 in
  let pad i c = c ^ String.make (widths.(i) - String.length c) ' ' in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_sep () =
    Buffer.add_char buf '|';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '|')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_sep ();
  List.iter (function Cells c -> emit_cells c | Separator -> emit_sep ()) rows;
  Buffer.contents buf

let to_string = render
let print ?(oc = stdout) t = output_string oc (render t)
