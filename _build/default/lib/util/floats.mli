(** Tolerance-aware float comparisons.

    All LP and verification code compares floats through this module so that
    numerical slack is applied consistently (see DESIGN.md, tolerances). *)

val default_eps : float
(** 1e-7, the project-wide feasibility tolerance. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] holds when [|a - b| <= eps * max(1, |a|, |b|)]
    (relative-absolute hybrid). *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b + eps * max(1, |a|, |b|)]. *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b] is [b <= a] up to tolerance, i.e. [leq b a]. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is [|x| <= eps]. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp to a closed interval. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val log2n : int -> float
(** [log2n n] is the "log n" factor used in the paper's bounds: [max 1 (log2
    n)], so that tiny instances do not produce vacuous or negative factors. *)

val sum : float array -> float
(** Kahan-compensated sum (LP objective rows can mix magnitudes). *)
