(** Fixed-width plain-text tables for experiment output.

    The experiment driver prints every reproduced "table" through this module
    so that outputs are aligned, diffable, and easy to paste into
    EXPERIMENTS.md. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded, longer ones raise
    [Invalid_argument]. *)

val add_floats : t -> ?prec:int -> float list -> unit
(** Convenience: format every cell with [%.*f] (default precision 3). *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val print : ?oc:out_channel -> t -> unit
(** Render with column alignment to [oc] (default [stdout]). *)

val to_string : t -> string
(** Render to a string. *)

val cell_f : ?prec:int -> float -> string
(** Format one float cell ([%.*f], default precision 3). *)

val cell_i : int -> string
(** Format one int cell. *)
