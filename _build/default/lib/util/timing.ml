let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_only f = snd (time f)

let repeat n f = Array.init n (fun _ -> time_only f)
