let default_eps = 1e-7

let scale a b = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
let approx_eq ?(eps = default_eps) a b = Float.abs (a -. b) <= eps *. scale a b
let leq ?(eps = default_eps) a b = a <= b +. (eps *. scale a b)
let geq ?eps a b = leq ?eps b a
let is_zero ?(eps = default_eps) x = Float.abs x <= eps

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let log2 x = log x /. log 2.0
let log2n n = Float.max 1.0 (log2 (float_of_int n))

let sum xs =
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total
