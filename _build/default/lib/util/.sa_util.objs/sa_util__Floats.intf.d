lib/util/floats.mli:
