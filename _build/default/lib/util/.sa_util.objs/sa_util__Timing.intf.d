lib/util/timing.mli:
