lib/util/table.mli:
