lib/util/floats.ml: Array Float
