lib/util/stats.mli:
