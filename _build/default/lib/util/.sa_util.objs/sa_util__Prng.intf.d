lib/util/prng.mli:
