type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  q1 : float;
  q3 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sq /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = median xs;
    q1 = quantile xs 0.25;
    q3 = quantile xs 0.75;
  }

let ci95_halfwidth xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else 1.96 *. stddev xs /. sqrt (float_of_int n)

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample") xs;
    exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int n)
  end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    Array.iter
      (fun x -> if x < 0.0 then invalid_arg "Stats.jain_index: negative sample")
      xs;
    let total = Array.fold_left ( +. ) 0.0 xs in
    let sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sq <= 0.0 then 1.0 else total *. total /. (float_of_int n *. sq)
  end

let histogram xs ~bins =
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty sample";
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let bin_of x =
    let b = int_of_float ((x -. lo) /. width) in
    if b >= bins then bins - 1 else if b < 0 then 0 else b
  in
  Array.iter (fun x -> counts.(bin_of x) <- counts.(bin_of x) + 1) xs;
  Array.init bins (fun b ->
      (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
