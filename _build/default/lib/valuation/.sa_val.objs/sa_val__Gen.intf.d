lib/valuation/gen.mli: Sa_util Valuation
