lib/valuation/bundle.mli: Format
