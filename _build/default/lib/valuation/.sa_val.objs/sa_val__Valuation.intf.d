lib/valuation/valuation.mli: Bundle Format
