lib/valuation/gen.ml: Array Bundle Float List Sa_util Valuation
