lib/valuation/bundle.ml: Format Int List
