lib/valuation/valuation.ml: Array Bundle Float Format List Printf
