type t =
  | Xor of (Bundle.t * float) list
  | Additive of float array
  | Unit_demand of float array
  | Symmetric of float array
  | Budget_additive of { values : float array; budget : float }
  | Or_bids of (Bundle.t * float) list

(* Max-weight packing of pairwise-disjoint bids with non-negative weights;
   [eligible] filters the usable bids.  Exact DFS with a remaining-weight
   bound — fine for the <= 20 atomic bids [validate] accepts. *)
let best_packing bids ~weight ~eligible =
  let usable =
    List.filter eligible bids
    |> List.filter (fun b -> weight b > 0.0)
    |> List.sort (fun a b -> compare (weight b) (weight a))
  in
  let rec go used acc remaining rem_total best =
    let best = Float.max best acc in
    match remaining with
    | [] -> best
    | ((bundle, _) as bid) :: rest ->
        if acc +. rem_total <= best then best
        else begin
          let best =
            if Bundle.intersects bundle used then best
            else go (Bundle.union used bundle) (acc +. weight bid) rest
                   (rem_total -. weight bid) best
          in
          go used acc rest (rem_total -. weight bid) best
        end
  in
  let total = List.fold_left (fun a b -> a +. weight b) 0.0 usable in
  go Bundle.empty 0.0 usable total 0.0

(* The demand-optimal bundle: greedy reconstruction is fiddly, so rerun the
   DFS tracking the argmax set. *)
let best_packing_set bids ~weight ~eligible =
  let usable =
    List.filter eligible bids
    |> List.filter (fun b -> weight b > 0.0)
    |> List.sort (fun a b -> compare (weight b) (weight a))
  in
  let best_v = ref 0.0 and best_set = ref Bundle.empty in
  let rec go used acc remaining rem_total =
    if acc > !best_v then begin
      best_v := acc;
      best_set := used
    end;
    match remaining with
    | [] -> ()
    | ((bundle, _) as bid) :: rest ->
        if acc +. rem_total > !best_v then begin
          if not (Bundle.intersects bundle used) then
            go (Bundle.union used bundle) (acc +. weight bid) rest
              (rem_total -. weight bid);
          go used acc rest (rem_total -. weight bid)
        end
  in
  let total = List.fold_left (fun a b -> a +. weight b) 0.0 usable in
  go Bundle.empty 0.0 usable total;
  (!best_set, !best_v)

let validate t ~k =
  if k < 0 || k > Bundle.max_channels then invalid_arg "Valuation.validate: bad k";
  let check_channel_array name a =
    if Array.length a <> k then
      invalid_arg (Printf.sprintf "Valuation.validate: %s needs length k" name);
    Array.iter (fun v -> if v < 0.0 then invalid_arg "Valuation.validate: negative value") a
  in
  match t with
  | Xor bids ->
      List.iter
        (fun (b, v) ->
          if v < 0.0 then invalid_arg "Valuation.validate: negative bid value";
          if not (Bundle.subset b (Bundle.full k)) then
            invalid_arg "Valuation.validate: bid uses channel >= k";
          if Bundle.is_empty b && v > 0.0 then
            invalid_arg "Valuation.validate: positive value on empty bundle")
        bids
  | Additive values -> check_channel_array "Additive" values
  | Unit_demand values -> check_channel_array "Unit_demand" values
  | Symmetric f ->
      if Array.length f <> k + 1 then
        invalid_arg "Valuation.validate: Symmetric needs length k+1";
      if f.(0) <> 0.0 then invalid_arg "Valuation.validate: Symmetric f(0) must be 0";
      Array.iter (fun v -> if v < 0.0 then invalid_arg "Valuation.validate: negative value") f
  | Budget_additive { values; budget } ->
      check_channel_array "Budget_additive" values;
      if budget < 0.0 then invalid_arg "Valuation.validate: negative budget"
  | Or_bids bids ->
      if List.length bids > 20 then
        invalid_arg "Valuation.validate: Or_bids limited to 20 atomic bids";
      List.iter
        (fun (b, v) ->
          if v < 0.0 then invalid_arg "Valuation.validate: negative bid value";
          if not (Bundle.subset b (Bundle.full k)) then
            invalid_arg "Valuation.validate: bid uses channel >= k";
          if Bundle.is_empty b && v > 0.0 then
            invalid_arg "Valuation.validate: positive value on empty bundle")
        bids

let value t bundle =
  match t with
  | Xor bids ->
      List.fold_left
        (fun acc (b, v) -> if Bundle.subset b bundle then Float.max acc v else acc)
        0.0 bids
  | Additive values ->
      Bundle.fold (fun j acc -> acc +. values.(j)) bundle 0.0
  | Unit_demand values ->
      Bundle.fold (fun j acc -> Float.max acc values.(j)) bundle 0.0
  | Symmetric f ->
      let m = Bundle.card bundle in
      if m < Array.length f then f.(m) else f.(Array.length f - 1)
  | Budget_additive { values; budget } ->
      Float.min budget (Bundle.fold (fun j acc -> acc +. values.(j)) bundle 0.0)
  | Or_bids bids ->
      best_packing bids ~weight:snd ~eligible:(fun (b, _) -> Bundle.subset b bundle)

let price_of prices bundle = Bundle.fold (fun j acc -> acc +. prices.(j)) bundle 0.0

let demand t ~prices =
  Array.iter
    (fun p -> if p < -1e-12 then invalid_arg "Valuation.demand: negative price")
    prices;
  match t with
  | Xor bids ->
      List.fold_left
        (fun (best_b, best_u) (b, v) ->
          let u = v -. price_of prices b in
          if u > best_u then (b, u) else (best_b, best_u))
        (Bundle.empty, 0.0) bids
  | Additive values ->
      let bundle = ref Bundle.empty and util = ref 0.0 in
      Array.iteri
        (fun j v ->
          if v > prices.(j) then begin
            bundle := Bundle.add j !bundle;
            util := !util +. (v -. prices.(j))
          end)
        values;
      (!bundle, !util)
  | Unit_demand values ->
      let best = ref (Bundle.empty, 0.0) in
      Array.iteri
        (fun j v ->
          let u = v -. prices.(j) in
          if u > snd !best then best := (Bundle.singleton j, u))
        values;
      !best
  | Symmetric f ->
      let k = Array.length prices in
      let order = Array.init k (fun j -> j) in
      Array.sort (fun a b -> compare prices.(a) prices.(b)) order;
      let best = ref (Bundle.empty, 0.0) in
      let bundle = ref Bundle.empty and cost = ref 0.0 in
      Array.iteri
        (fun i j ->
          bundle := Bundle.add j !bundle;
          cost := !cost +. prices.(j);
          let m = i + 1 in
          let v = if m < Array.length f then f.(m) else f.(Array.length f - 1) in
          let u = v -. !cost in
          if u > snd !best then best := (!bundle, u))
        order;
      !best
  | Budget_additive { values; budget } ->
      (* Exact by enumeration over the positive-value channels (min-knapsack
         is NP-hard; the oracle contract allows any exact procedure). *)
      let relevant =
        Array.to_list (Array.mapi (fun j v -> (j, v)) values)
        |> List.filter (fun (_, v) -> v > 0.0)
        |> List.map fst
      in
      if List.length relevant > 14 then
        invalid_arg "Valuation.demand: Budget_additive limited to 14 positive channels";
      let rec enumerate chosen remaining best =
        match remaining with
        | [] ->
            let value =
              Float.min budget
                (Bundle.fold (fun j acc -> acc +. values.(j)) chosen 0.0)
            in
            let u = value -. Bundle.fold (fun j acc -> acc +. prices.(j)) chosen 0.0 in
            if u > snd best then (chosen, u) else best
        | j :: rest ->
            let best = enumerate (Bundle.add j chosen) rest best in
            enumerate chosen rest best
      in
      enumerate Bundle.empty relevant (Bundle.empty, 0.0)
  | Or_bids bids ->
      (* utility decomposes over disjoint bids: weight = v - p(B) *)
      best_packing_set bids
        ~weight:(fun (b, v) -> v -. price_of prices b)
        ~eligible:(fun _ -> true)

let max_value t ~k =
  match t with
  | Xor bids -> List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 bids
  | Additive values -> Array.fold_left ( +. ) 0.0 values
  | Unit_demand values -> Array.fold_left Float.max 0.0 values
  | Symmetric f -> Array.fold_left Float.max 0.0 f
  | Budget_additive { values; budget } ->
      Float.min budget (Array.fold_left ( +. ) 0.0 values)
  | Or_bids bids -> best_packing bids ~weight:snd ~eligible:(fun _ -> true)
  |> fun v ->
  ignore k;
  v

let enumeration_cap = 14

let support t ~k =
  match t with
  | Xor bids ->
      List.filter (fun (b, v) -> (not (Bundle.is_empty b)) && v > 0.0) bids
  | Additive _ | Unit_demand _ | Symmetric _ | Budget_additive _ | Or_bids _ ->
      if k > enumeration_cap then
        invalid_arg
          "Valuation.support: enumeration only up to k = 14; use the demand \
           oracle (column generation) instead";
      Bundle.all_nonempty_subsets k
      |> List.filter_map (fun b ->
             let v = value t b in
             if v > 0.0 then Some (b, v) else None)

let scale t factor =
  if factor < 0.0 then invalid_arg "Valuation.scale: negative factor";
  match t with
  | Xor bids -> Xor (List.map (fun (b, v) -> (b, v *. factor)) bids)
  | Additive values -> Additive (Array.map (fun v -> v *. factor) values)
  | Unit_demand values -> Unit_demand (Array.map (fun v -> v *. factor) values)
  | Symmetric f -> Symmetric (Array.map (fun v -> v *. factor) f)
  | Budget_additive { values; budget } ->
      Budget_additive
        { values = Array.map (fun v -> v *. factor) values; budget = budget *. factor }
  | Or_bids bids -> Or_bids (List.map (fun (b, v) -> (b, v *. factor)) bids)

let pp fmt = function
  | Xor bids -> Format.fprintf fmt "xor(%d bids)" (List.length bids)
  | Additive _ -> Format.pp_print_string fmt "additive"
  | Unit_demand _ -> Format.pp_print_string fmt "unit-demand"
  | Symmetric _ -> Format.pp_print_string fmt "symmetric"
  | Budget_additive _ -> Format.pp_print_string fmt "budget-additive"
  | Or_bids bids -> Format.fprintf fmt "or(%d bids)" (List.length bids)
