(** Random valuation generators for synthetic workloads.

    Values follow either uniform or Pareto (heavy-tailed) marginals — the
    latter models the realistic situation where a few secondary users (e.g.
    congested operators) value spectrum far more than the rest. *)

type value_dist = Uniform of float * float | Pareto of { alpha : float; xmin : float }

val draw_value : Sa_util.Prng.t -> value_dist -> float

val random_xor :
  Sa_util.Prng.t ->
  k:int ->
  bids:int ->
  max_bundle:int ->
  dist:value_dist ->
  Valuation.t
(** [bids] bids on distinct random bundles of size [1 .. max_bundle];
    superadditive tilt: a bundle's value is the drawn per-channel value times
    [|B|^1.1], so larger bundles are worth slightly more than the sum. *)

val random_additive : Sa_util.Prng.t -> k:int -> dist:value_dist -> Valuation.t

val random_unit_demand : Sa_util.Prng.t -> k:int -> dist:value_dist -> Valuation.t

val random_symmetric :
  Sa_util.Prng.t -> k:int -> dist:value_dist -> concave:bool -> Valuation.t
(** Non-decreasing [f]; concave (diminishing returns) when [concave]. *)

val random_budget_additive :
  Sa_util.Prng.t -> k:int -> dist:value_dist -> Valuation.t
(** Additive values with a budget drawn between the largest single value and
    the total, so the cap genuinely binds on large bundles. *)

val random_or :
  Sa_util.Prng.t ->
  k:int ->
  bids:int ->
  max_bundle:int ->
  dist:value_dist ->
  Valuation.t
(** OR bids on random bundles, value scaled by bundle size. *)

val random_mixed : Sa_util.Prng.t -> k:int -> dist:value_dist -> Valuation.t
(** One of the six languages, uniformly at random. *)
