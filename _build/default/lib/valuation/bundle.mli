(** Channel bundles [T ⊆ \[k\]] as bitmasks.

    Channels are numbered [0 .. k-1]; the project supports [k ≤ 62] (an OCaml
    [int] of channel bits), far beyond the experiment range. *)

type t = private int

val max_channels : int
(** 62. *)

val empty : t
val is_empty : t -> bool

val full : int -> t
(** [full k] is [{0, …, k-1}].  Requires [0 ≤ k ≤ max_channels]. *)

val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val intersects : t -> t -> bool
val card : t -> int
val of_list : int list -> t
val to_list : t -> int list
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit

val all_subsets : int -> t list
(** [all_subsets k]: all [2^k] bundles over [k] channels (including empty).
    Requires small [k] (raises above [k = 20] to protect callers). *)

val all_nonempty_subsets : int -> t list

val of_int : int -> t
(** Unsafe-ish escape hatch for iteration: reinterpret a bitmask.  Negative
    masks are rejected. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints e.g. ["{0,2,5}"]. *)
