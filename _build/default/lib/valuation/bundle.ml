type t = int

let max_channels = 62

let check_channel j =
  if j < 0 || j >= max_channels then invalid_arg "Bundle: channel out of range"

let empty = 0
let is_empty t = t = 0

let full k =
  if k < 0 || k > max_channels then invalid_arg "Bundle.full: bad k";
  if k = 0 then 0 else (1 lsl k) - 1

let singleton j =
  check_channel j;
  1 lsl j

let mem j t =
  check_channel j;
  t land (1 lsl j) <> 0

let add j t =
  check_channel j;
  t lor (1 lsl j)

let remove j t =
  check_channel j;
  t land lnot (1 lsl j)

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let intersects a b = a land b <> 0

let card t =
  let rec count t acc = if t = 0 then acc else count (t lsr 1) (acc + (t land 1)) in
  count t 0

let of_list js = List.fold_left (fun acc j -> add j acc) empty js

let to_list t =
  let rec collect j acc =
    if j < 0 then acc
    else collect (j - 1) (if t land (1 lsl j) <> 0 then j :: acc else acc)
  in
  collect (max_channels - 1) []

let fold f t init =
  let rec go j acc =
    if j >= max_channels then acc
    else go (j + 1) (if t land (1 lsl j) <> 0 then f j acc else acc)
  in
  go 0 init

let iter f t = fold (fun j () -> f j) t ()

let all_subsets k =
  if k < 0 || k > 20 then invalid_arg "Bundle.all_subsets: k must be in [0, 20]";
  List.init (1 lsl k) (fun mask -> mask)

let all_nonempty_subsets k = List.filter (fun t -> t <> 0) (all_subsets k)

let of_int mask =
  if mask < 0 then invalid_arg "Bundle.of_int: negative mask";
  mask

let to_int t = t
let equal = Int.equal
let compare = Int.compare

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_int)
    (to_list t)
