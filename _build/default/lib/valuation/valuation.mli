(** Bidder valuations [b_{v,T}] and their demand oracles (Section 3.1).

    The algorithms interact with bidders in exactly two ways:

    - [value t bundle] — the valuation of being allocated exactly [bundle];
    - [demand t ~prices] — the demand oracle: a utility-maximising bundle
      under non-negative per-channel prices, i.e.
      [argmax_T (value T − Σ_{j∈T} prices.(j))], where the empty bundle
      (utility 0) is always available.

    Four standard bidding languages are provided.  [Xor] uses free-disposal
    semantics: the value of [T] is the best listed bid contained in [T], so
    with non-negative prices the demand oracle is exact over *all* bundles
    while only inspecting listed bids. *)

type t =
  | Xor of (Bundle.t * float) list
      (** explicit bids [(B, val)]; value of [T] = max over [B ⊆ T] *)
  | Additive of float array  (** per-channel values; [value T = Σ_{j∈T} v.(j)] *)
  | Unit_demand of float array  (** [value T = max_{j∈T} v.(j)] *)
  | Symmetric of float array
      (** [value T = f.(|T|)]; [f.(0)] must be 0; length [k+1] *)
  | Budget_additive of { values : float array; budget : float }
      (** [value T = min(budget, Σ_{j∈T} values.(j))] — additive up to a
          cap.  The exact demand oracle enumerates subsets of the
          positive-value channels (the underlying problem is a min-knapsack,
          NP-hard in general), so it requires at most 14 such channels. *)
  | Or_bids of (Bundle.t * float) list
      (** OR bids: atomic bids that may be satisfied *simultaneously* when
          disjoint — [value T] is the best total value of pairwise-disjoint
          atomic bids contained in [T] (weighted set packing, solved exactly
          by branch and bound over the ≤ 20 atomic bids accepted). *)

val validate : t -> k:int -> unit
(** Raises [Invalid_argument] if the representation is malformed for [k]
    channels: negative values, bids outside [\[k\]], [Symmetric] arrays of
    wrong length or non-zero [f.(0)]. *)

val value : t -> Bundle.t -> float
(** Valuation of exactly [bundle]; always [≥ 0], and [0] on the empty
    bundle. *)

val demand : t -> prices:float array -> Bundle.t * float
(** [(bundle, utility)] maximising [value − price]; utility [≥ 0] and
    [(∅, 0)] when nothing positive exists.  Prices must be non-negative and
    of length [k]. *)

val max_value : t -> k:int -> float
(** [max_T value T] over all bundles — an upper bound used for pruning. *)

val support : t -> k:int -> (Bundle.t * float) list
(** A list of bundles that suffices for the LP: placing all probability mass
    on these bundles loses nothing (for [Xor] the listed bids; for the other
    languages an explicit enumeration — the per-cardinality optimum for
    [Symmetric], the full/singleton structure for [Additive]/[Unit_demand]).
    Empty bundles and zero-value entries are dropped. *)

val scale : t -> float -> t
(** Multiply all values by a non-negative factor (used by misreport tests). *)

val pp : Format.formatter -> t -> unit
