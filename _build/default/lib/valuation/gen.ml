module Prng = Sa_util.Prng

type value_dist = Uniform of float * float | Pareto of { alpha : float; xmin : float }

let draw_value g = function
  | Uniform (lo, hi) -> Prng.uniform_in g lo hi
  | Pareto { alpha; xmin } -> Prng.pareto g ~alpha ~xmin

let random_bundle g ~k ~max_bundle =
  let size = 1 + Prng.int g (min max_bundle k) in
  Bundle.of_list (Array.to_list (Prng.sample_without_replacement g size k))

let random_xor g ~k ~bids ~max_bundle ~dist =
  if k <= 0 then invalid_arg "Gen.random_xor: k must be positive";
  let rec draw_bids acc seen remaining =
    if remaining = 0 then acc
    else
      let b = random_bundle g ~k ~max_bundle in
      if List.mem b seen then draw_bids acc seen (remaining - 1)
      else
        let per_channel = draw_value g dist in
        let v = per_channel *. (float_of_int (Bundle.card b) ** 1.1) in
        draw_bids ((b, v) :: acc) (b :: seen) (remaining - 1)
  in
  Valuation.Xor (draw_bids [] [] bids)

let random_additive g ~k ~dist =
  Valuation.Additive (Array.init k (fun _ -> draw_value g dist))

let random_unit_demand g ~k ~dist =
  Valuation.Unit_demand (Array.init k (fun _ -> draw_value g dist))

let random_symmetric g ~k ~dist ~concave =
  let f = Array.make (k + 1) 0.0 in
  let increment = ref (draw_value g dist) in
  for m = 1 to k do
    f.(m) <- f.(m - 1) +. !increment;
    if concave then increment := !increment *. Prng.uniform_in g 0.4 0.95
    else increment := draw_value g dist
  done;
  (* Non-concave draws can decrease marginals arbitrarily, which is fine:
     the paper allows arbitrary (even non-monotone) valuations, but we keep
     f non-decreasing here for interpretability. *)
  Valuation.Symmetric f

let random_budget_additive g ~k ~dist =
  let values = Array.init k (fun _ -> draw_value g dist) in
  let total = Array.fold_left ( +. ) 0.0 values in
  (* A budget between the largest single value and the total keeps the cap
     meaningful. *)
  let top = Array.fold_left Float.max 0.0 values in
  Valuation.Budget_additive { values; budget = Prng.uniform_in g top total }

let random_or g ~k ~bids ~max_bundle ~dist =
  if k <= 0 then invalid_arg "Gen.random_or: k must be positive";
  Valuation.Or_bids
    (List.init bids (fun _ ->
         let b = random_bundle g ~k ~max_bundle in
         (b, draw_value g dist *. float_of_int (Bundle.card b))))

let random_mixed g ~k ~dist =
  match Prng.int g 6 with
  | 0 -> random_xor g ~k ~bids:(2 + Prng.int g 4) ~max_bundle:(min 3 k) ~dist
  | 1 -> random_additive g ~k ~dist
  | 2 -> random_unit_demand g ~k ~dist
  | 3 -> random_budget_additive g ~k ~dist
  | 4 -> random_or g ~k ~bids:(2 + Prng.int g 3) ~max_bundle:(min 2 k) ~dist
  | _ -> random_symmetric g ~k ~dist ~concave:(Prng.bool g)
