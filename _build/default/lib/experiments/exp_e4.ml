module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Floats = Sa_util.Floats
module Placement = Sa_geom.Placement
module Inductive = Sa_graph.Inductive
module Link = Sa_wireless.Link
module Sinr = Sa_wireless.Sinr
module Sinr_graph = Sa_wireless.Sinr_graph

let scheme_name = function
  | Sinr.Uniform -> "uniform"
  | Sinr.Linear -> "linear"
  | Sinr.Square_root -> "sqrt"
  | Sinr.Given _ -> "given"

(* A non-fading (general) metric over 2n points: intra-link distances in
   [1, 1.3], every other pair in [1.7, 2].  All distances lie in [1, 2], so
   the triangle inequality holds automatically, but the metric has no
   doubling structure — every link is "close" to every other. *)
let general_metric_links g n =
  let size = 2 * n in
  let m = Array.make_matrix size size 0.0 in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      let same_link = j = i + 1 && i mod 2 = 0 in
      let d =
        if same_link then Prng.uniform_in g 1.0 1.3 else Prng.uniform_in g 1.7 2.0
      in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done
  done;
  let metric = Sa_geom.Metric.of_matrix m in
  let links = Array.init n (fun i -> { Link.sender = 2 * i; receiver = (2 * i) + 1 }) in
  Link.make metric links

let general_metric_part ~seeds ~quick =
  print_endline
    "\n-- Open problem 1: rho in general (non-fading) metrics vs the plane --";
  let ns = if quick then [ 8; 16 ] else [ 8; 16; 32; 64 ] in
  let prm = { Workloads.sinr_default_params with Sinr.noise = 0.01 } in
  let t = Table.create [ "metric"; "n"; "rho mean"; "rho/log2 n"; "exact" ] in
  let build_plane g n =
    Link.of_point_pairs
      (Placement.random_links g ~n ~side:(8.0 *. sqrt (float_of_int n)) ~min_len:0.5
         ~max_len:2.0)
  in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun n ->
          let measured = ref [] and all_exact = ref true in
          for s = 1 to seeds do
            let g = Prng.create ~seed:((23 * n) + s) in
            let sys = build g n in
            let powers = Sinr.powers sys prm Sinr.Uniform in
            let wg = Sinr_graph.prop11_graph sys prm ~powers in
            let pi = Sinr_graph.ordering sys in
            let e = Inductive.rho_weighted ~node_limit:150_000 wg pi in
            if not e.Inductive.exact then all_exact := false;
            measured := e.Inductive.rho :: !measured
          done;
          let mean = Stats.mean (Array.of_list !measured) in
          Table.add_row t
            [
              name;
              Table.cell_i n;
              Table.cell_f ~prec:2 mean;
              Table.cell_f ~prec:3 (mean /. Floats.log2n n);
              (if !all_exact then "yes" else "lower bnd");
            ])
        ns;
      Table.add_sep t)
    [ ("plane (fading)", build_plane); ("general [1,2]", general_metric_links) ];
  Table.print t;
  print_endline
    "   The dense general metric starts at a much higher rho than the plane\n\
    \   at the same n (every link interferes with every other at the same\n\
    \   scale) but then saturates at its density ceiling; neither family\n\
    \   shows super-logarithmic growth on these instances — consistent with\n\
    \   the paper leaving rho = O(1) vs O(log n) in general metrics open."

let run ?(seeds = 3) ?(quick = false) () =
  print_endline "== E4: rho(pi) of SINR weighted graphs vs n (Prop 11) ==";
  print_endline "   claim: rho = O(log n) for monotone power schemes\n";
  let ns = if quick then [ 16; 32; 64 ] else [ 16; 32; 64; 128; 256 ] in
  let prm = { Workloads.sinr_default_params with Sinr.noise = 0.01 } in
  let t =
    Table.create [ "scheme"; "n"; "rho mean"; "rho max"; "rho/log2 n"; "exact" ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun n ->
          let measured = ref [] and all_exact = ref true in
          for s = 1 to seeds do
            let g = Prng.create ~seed:((17 * n) + s) in
            let side = 8.0 *. sqrt (float_of_int n) in
            let sys =
              Link.of_point_pairs
                (Placement.random_links g ~n ~side ~min_len:0.5 ~max_len:2.0)
            in
            let powers = Sinr.powers sys prm scheme in
            let wg = Sinr_graph.prop11_graph sys prm ~powers in
            let pi = Sinr_graph.ordering sys in
            let e = Inductive.rho_weighted ~node_limit:150_000 wg pi in
            if not e.Inductive.exact then all_exact := false;
            measured := e.Inductive.rho :: !measured
          done;
          let arr = Array.of_list !measured in
          let mean = Stats.mean arr in
          Table.add_row t
            [
              scheme_name scheme;
              Table.cell_i n;
              Table.cell_f ~prec:2 mean;
              Table.cell_f ~prec:2 (Array.fold_left Float.max 0.0 arr);
              Table.cell_f ~prec:3 (mean /. Floats.log2n n);
              (if !all_exact then "yes" else "lower bnd");
            ])
        ns;
      Table.add_sep t)
    [ Sinr.Uniform; Sinr.Linear; Sinr.Square_root ];
  Table.print t;
  general_metric_part ~seeds ~quick
