module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Valuation = Sa_val.Valuation
module Instance = Sa_core.Instance
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Decomposition = Sa_mech.Decomposition
module Lavi_swamy = Sa_mech.Lavi_swamy
module Vcg = Sa_mech.Vcg

let audit_instance ~name inst ~seeds t =
  let n = Instance.n inst in
  let gains = ref [] and welfare_ratio = ref [] and revenue = ref [] in
  let decomp_ok = ref true and ir_ok = ref true in
  for s = 1 to seeds do
    let alpha = 2.0 *. Rounding.guarantee inst in
    let g = Prng.create ~seed:(700 + s) in
    let o = Lavi_swamy.run ~alpha g inst in
    if not (Decomposition.verify inst o.Lavi_swamy.fractional o.Lavi_swamy.lottery)
    then decomp_ok := false;
    let vcg = Vcg.run inst in
    let expected_welfare =
      List.init n (fun v ->
          Decomposition.expected_value_of_bidder inst o.Lavi_swamy.lottery v)
      |> List.fold_left ( +. ) 0.0
    in
    welfare_ratio :=
      (expected_welfare /. Float.max 1e-9 vcg.Vcg.welfare) :: !welfare_ratio;
    revenue :=
      (List.init n (Lavi_swamy.expected_payment o) |> List.fold_left ( +. ) 0.0)
      :: !revenue;
    (* truthfulness audit: per bidder, try scaling misreports *)
    for v = 0 to n - 1 do
      let u_truth =
        Lavi_swamy.expected_utility inst o ~bidder:v
          ~true_valuation:inst.Instance.bidders.(v)
      in
      if u_truth < -1e-6 then ir_ok := false;
      List.iter
        (fun factor ->
          let bidders = Array.copy inst.Instance.bidders in
          bidders.(v) <- Valuation.scale bidders.(v) factor;
          let mis =
            Instance.make ~conflict:inst.Instance.conflict ~k:inst.Instance.k
              ~bidders ~ordering:inst.Instance.ordering ~rho:inst.Instance.rho
          in
          let g' = Prng.create ~seed:(700 + s) in
          let o' = Lavi_swamy.run ~alpha g' mis in
          if Float.abs (o'.Lavi_swamy.alpha -. alpha) < 1e-9 then begin
            let u' =
              Lavi_swamy.expected_utility mis o' ~bidder:v
                ~true_valuation:inst.Instance.bidders.(v)
            in
            gains := (u' -. u_truth) :: !gains
          end)
        [ 0.0; 0.5; 1.5; 3.0 ]
    done
  done;
  let garr = Array.of_list !gains in
  let max_gain = Array.fold_left Float.max neg_infinity garr in
  Table.add_row t
    [
      name;
      Table.cell_i (Array.length garr);
      Table.cell_f ~prec:5 max_gain;
      (if max_gain <= 1e-4 then "yes" else "NO");
      (if !decomp_ok then "yes" else "NO");
      (if !ir_ok then "yes" else "NO");
      Table.cell_f ~prec:3 (Stats.mean (Array.of_list !welfare_ratio));
      Table.cell_f ~prec:3 (Stats.mean (Array.of_list !revenue));
    ]

let run ?(seeds = 3) ?(quick = false) () =
  print_endline "== E6: Lavi-Swamy truthful mechanism (Section 5) ==";
  print_endline
    "   gain = best expected-utility improvement over all misreports tried\n";
  let seeds = if quick then 2 else seeds in
  let t =
    Table.create
      [ "instance"; "audits"; "max gain"; "truthful"; "decomp ="; "IR"; "E[W]/VCG-W"; "E[revenue]" ]
  in
  audit_instance ~name:"clique n=8 k=2"
    (Workloads.clique_instance ~seed:61 ~n:8 ~k:2 ())
    ~seeds t;
  audit_instance ~name:"clique n=10 k=3"
    (Workloads.clique_instance ~seed:62 ~n:10 ~k:3 ())
    ~seeds t;
  audit_instance ~name:"protocol n=10 k=2"
    (Workloads.protocol_instance ~seed:63 ~n:10 ~k:2 ())
    ~seeds t;
  Table.print t;
  print_endline
    "\n   E[W]/VCG-W is expected mechanism welfare over the optimal (VCG)\n\
    \   welfare — the price of truthfulness-with-polytime, about 1/alpha."
