module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Exact = Sa_core.Exact
module Online = Sa_core.Online

let run ?(seeds = 5) ?(quick = false) () =
  print_endline "== E12: online arrival — irrevocable admission (rel. work [8]) ==";
  print_endline "   fractions of the offline exact optimum, random arrival order\n";
  let t =
    Table.create
      [
        "family"; "opt"; "offline-lp-round"; "first-fit"; "threshold"; "adaptive";
        "ff admitted";
      ]
  in
  let families =
    [
      ( "protocol n=16 k=2 uniform",
        fun s ->
          Workloads.protocol_instance ~seed:(1200 + s) ~n:16 ~k:2
            ~profile:Workloads.Xor_small () );
      ( "protocol n=16 k=2 heavy-tail",
        fun s ->
          Workloads.protocol_instance ~seed:(1230 + s) ~n:16 ~k:2
            ~profile:Workloads.Xor_heavy () );
      ( "clique n=12 k=2 heavy-tail",
        fun s ->
          Workloads.clique_instance ~seed:(1260 + s) ~n:12 ~k:2
            ~profile:Workloads.Xor_heavy () );
    ]
  in
  let families = if quick then [ List.hd families ] else families in
  List.iter
    (fun (name, build) ->
      let fracs = Array.make 4 [] in
      let opts = ref [] and admitted = ref [] in
      for s = 1 to seeds do
        let inst = build s in
        let n = Instance.n inst in
        let g = Prng.create ~seed:(3000 + s) in
        let order = Prng.permutation g n in
        let e = Exact.solve ~node_limit:3_000_000 inst in
        let opt = Float.max 1e-9 e.Exact.value in
        opts := e.Exact.value :: !opts;
        let frac = Lp.solve_explicit inst in
        let offline = Rounding.solve_adaptive ~trials:4 g inst frac in
        let ff = Online.first_fit inst ~order in
        (* fixed threshold: half the mean standalone value *)
        let theta =
          0.5
          *. Stats.mean
               (Array.init n (fun v ->
                    Sa_val.Valuation.max_value inst.Instance.bidders.(v)
                      ~k:inst.Instance.k))
        in
        let th = Online.threshold inst ~order ~theta in
        let ad = Online.adaptive_threshold inst ~order in
        fracs.(0) <- (Allocation.value inst offline /. opt) :: fracs.(0);
        fracs.(1) <- (ff.Online.value /. opt) :: fracs.(1);
        fracs.(2) <- (th.Online.value /. opt) :: fracs.(2);
        fracs.(3) <- (ad.Online.value /. opt) :: fracs.(3);
        admitted := float_of_int ff.Online.admitted :: !admitted
      done;
      let mean l = Stats.mean (Array.of_list l) in
      Table.add_row t
        [
          name;
          Table.cell_f ~prec:1 (mean !opts);
          Table.cell_f ~prec:3 (mean fracs.(0));
          Table.cell_f ~prec:3 (mean fracs.(1));
          Table.cell_f ~prec:3 (mean fracs.(2));
          Table.cell_f ~prec:3 (mean fracs.(3));
          Table.cell_f ~prec:1 (mean !admitted);
        ])
    families;
  Table.print t
