module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Placement = Sa_geom.Placement
module Inductive = Sa_graph.Inductive
module Link = Sa_wireless.Link
module Sinr = Sa_wireless.Sinr
module Sinr_graph = Sa_wireless.Sinr_graph
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding

let base_params = { Sinr.alpha = 3.0; beta = 1.5; noise = 0.01 }

(* Allocate under a margin-inflated deterministic model, evaluate under the
   true beta with Rayleigh fading. *)
let run_one ~seed ~n ~k ~margin ~trials =
  let g = Prng.create ~seed in
  let side = 8.0 *. sqrt (float_of_int n) in
  let sys =
    Link.of_point_pairs (Placement.random_links g ~n ~side ~min_len:0.5 ~max_len:2.0)
  in
  let design = { base_params with Sinr.beta = base_params.Sinr.beta *. margin } in
  let powers = Sinr.powers sys design Sinr.Uniform in
  let wg = Sinr_graph.prop11_graph sys design ~powers in
  let pi = Sinr_graph.ordering sys in
  let rho =
    Float.max 1.0 (Inductive.rho_weighted ~node_limit:100_000 wg pi).Inductive.rho
  in
  let bidders =
    Array.init n (fun _ ->
        Sa_val.Gen.random_xor g ~k ~bids:2 ~max_bundle:1
          ~dist:(Sa_val.Gen.Uniform (1.0, 10.0)))
  in
  let inst =
    Instance.make ~conflict:(Instance.Edge_weighted wg) ~k ~bidders ~ordering:pi ~rho
  in
  let frac = Lp.solve_explicit inst in
  let alloc = Rounding.solve_adaptive ~trials:4 g inst frac in
  let welfare = Allocation.value inst alloc in
  (* fading evaluation at the TRUE beta *)
  let fade = ref [] in
  for j = 0 to k - 1 do
    let winners = Allocation.holders alloc ~k ~channel:j in
    if winners <> [] then
      List.iter
        (fun i ->
          fade :=
            Sinr.rayleigh_success_probability g sys base_params ~powers ~active:winners
              ~trials i
            :: !fade)
        winners
  done;
  let mean_success = if !fade = [] then 1.0 else Stats.mean (Array.of_list !fade) in
  (welfare, mean_success)

let run ?(seeds = 3) ?(quick = false) () =
  print_endline "== E13: Rayleigh-fading robustness of deterministic allocations ==";
  print_endline
    "   allocate with SINR threshold margin*beta, evaluate fading at true beta\n";
  let n = if quick then 16 else 24 in
  let k = 2 in
  let trials = if quick then 300 else 1000 in
  let t =
    Table.create [ "margin"; "welfare"; "mean link success %"; "welfare vs margin 1" ]
  in
  let margins = [ 1.0; 1.5; 2.0; 3.0; 5.0 ] in
  let base_welfare = ref 0.0 in
  List.iter
    (fun margin ->
      let welfares = ref [] and succs = ref [] in
      for s = 1 to seeds do
        let w, p = run_one ~seed:(5000 + s) ~n ~k ~margin ~trials in
        welfares := w :: !welfares;
        succs := p :: !succs
      done;
      let mean l = Stats.mean (Array.of_list l) in
      let w = mean !welfares in
      if margin = 1.0 then base_welfare := w;
      Table.add_row t
        [
          Table.cell_f ~prec:1 margin;
          Table.cell_f ~prec:1 w;
          Table.cell_f ~prec:1 (100.0 *. mean !succs);
          Table.cell_f ~prec:2 (w /. Float.max 1e-9 !base_welfare);
        ])
    margins;
  Table.print t;
  print_endline
    "\n   Reading: at margin 1 the deterministic model's allocations lose a\n\
    \   visible fraction of links to fading; inflating the design threshold\n\
    \   buys reliability at a welfare cost — the knob an operator would tune."
