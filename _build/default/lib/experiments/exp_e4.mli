(** E4 — Proposition 11: ρ(π) of the SINR weighted conflict graph grows like
    O(log n) for monotone power schemes under the decreasing-length ordering.

    Sweeps n geometrically and reports measured ρ(π) per scheme, plus the
    ratio ρ / log₂ n — the shape claim is that this ratio stays bounded as
    n grows.  (Estimates are exact B&B where the budget allows; otherwise
    greedy lower bounds, flagged in the output.) *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
