module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Timing = Sa_util.Timing
module Instance = Sa_core.Instance
module Lp = Sa_core.Lp_relaxation
module Oracle = Sa_core.Oracle_solver

let run ?(seeds = 3) ?(quick = false) () =
  print_endline "== E9: demand-oracle column generation vs explicit LP (S3.1) ==";
  print_endline "   Mixed bidding languages; explicit supports are O(2^k) per bidder\n";
  let t =
    Table.create
      [
        "n"; "k"; "naive cols"; "oracle cols"; "masters"; "obj match";
        "t explicit (s)"; "t oracle (s)";
      ]
  in
  let configs =
    if quick then [ (12, 4); (12, 6) ] else [ (12, 4); (12, 6); (16, 8); (20, 10) ]
  in
  List.iter
    (fun (n, k) ->
      let cols = ref [] and iters = ref [] in
      let t_exp = ref [] and t_orc = ref [] in
      let matches = ref true in
      for s = 1 to seeds do
        let inst =
          Workloads.protocol_instance ~seed:((50 * n) + k + s) ~n ~k
            ~profile:Workloads.Mixed ()
        in
        let explicit, dt_exp = Timing.time (fun () -> Lp.solve_explicit inst) in
        let (oracle, stats), dt_orc = Timing.time (fun () -> Oracle.solve inst) in
        if Float.abs (oracle.Lp.objective -. explicit.Lp.objective)
           > 1e-4 *. Float.max 1.0 explicit.Lp.objective
        then matches := false;
        cols := float_of_int stats.Oracle.columns_generated :: !cols;
        iters := float_of_int stats.Oracle.iterations :: !iters;
        t_exp := dt_exp :: !t_exp;
        t_orc := dt_orc :: !t_orc
      done;
      let mean l = Stats.mean (Array.of_list l) in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i k;
          Table.cell_i (n * ((1 lsl k) - 1));
          Table.cell_f ~prec:0 (mean !cols);
          Table.cell_f ~prec:1 (mean !iters);
          (if !matches then "yes" else "NO");
          Table.cell_f ~prec:3 (mean !t_exp);
          Table.cell_f ~prec:3 (mean !t_orc);
        ])
    configs;
  Table.print t
