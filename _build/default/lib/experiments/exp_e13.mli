(** E13 — fading robustness: what the deterministic SINR abstraction costs.

    The physical model of §4.2 treats channel gains as deterministic; real
    channels fade.  This experiment takes allocations computed under the
    deterministic model (Prop-11 conflict graph, fixed powers), then
    evaluates each channel's winner set under Rayleigh fading by Monte
    Carlo.  It sweeps an SINR margin: requiring the *deterministic* model
    to clear [margin × β] before admitting a set buys fading robustness at
    a welfare cost — the engineering trade-off the conflict-graph
    abstraction hides. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
