(** E3 — ρ bounds per graph class (Prop 9, 15, 17, 18; Cor 10; §4.1).

    For each binary interference model, measures ρ(π) under the model's
    prescribed ordering across random instances and compares with the
    theoretical bound.  The claim under test: measured ρ(π) never exceeds
    the bound and is typically much smaller — the structural fact the whole
    LP approach rests on. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
