(** E6 — Section 5: the Lavi–Swamy mechanism.

    On small competitive instances (clique and sparse conflicts): runs the
    full mechanism, verifies the decomposition identity Σλ·χ = x*/α exactly,
    audits truthfulness (max expected-utility gain over a grid of scaling
    misreports per bidder), checks individual rationality, and compares
    expected welfare and revenue against exact VCG. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
