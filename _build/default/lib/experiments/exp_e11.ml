module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Market = Sa_sim.Market

let run ?(seeds = 3) ?(quick = false) () =
  print_endline "== E11: repeated-auction market loop (S1 'eBay in the Sky') ==";
  print_endline
    "   identical arrival processes per row; urgency 1.1/epoch, patience 4\n";
  let epochs = if quick then 12 else 30 in
  let loads = if quick then [ 4.0 ] else [ 2.0; 4.0; 8.0 ] in
  let t =
    Table.create
      [
        "arrivals/epoch"; "algorithm"; "welfare"; "service %"; "mean wait";
        "backlog"; "revenue";
      ]
  in
  List.iter
    (fun load ->
      List.iter
        (fun algorithm ->
          let welfare = ref [] and service = ref [] in
          let wait = ref [] and backlog = ref [] and revenue = ref [] in
          for s = 1 to seeds do
            let cfg =
              {
                Market.default_config with
                Market.epochs;
                arrivals_per_epoch = load;
                k = 3;
                patience = 4;
                algorithm;
              }
            in
            (* the mechanism is expensive; shrink its market *)
            let cfg =
              if algorithm = Market.Truthful_mechanism then
                { cfg with Market.epochs = min epochs 10; arrivals_per_epoch = Float.min load 3.0 }
              else cfg
            in
            let r = Market.run ~seed:(100 + s) cfg in
            welfare := r.Market.total_welfare :: !welfare;
            service := (100.0 *. r.Market.service_rate) :: !service;
            wait := r.Market.mean_wait :: !wait;
            backlog :=
              Stats.mean
                (Array.of_list
                   (List.map (fun e -> float_of_int e.Market.active) r.Market.per_epoch))
              :: !backlog;
            revenue := r.Market.total_revenue :: !revenue
          done;
          let mean l = Stats.mean (Array.of_list l) in
          Table.add_row t
            [
              Table.cell_f ~prec:0 load;
              (match algorithm with
              | Market.Lp_rounding -> "lp-rounding"
              | Market.Greedy -> "greedy"
              | Market.Truthful_mechanism -> "mechanism*");
              Table.cell_f ~prec:0 (mean !welfare);
              Table.cell_f ~prec:1 (mean !service);
              Table.cell_f ~prec:2 (mean !wait);
              Table.cell_f ~prec:1 (mean !backlog);
              Table.cell_f ~prec:2 (mean !revenue);
            ])
        [ Market.Lp_rounding; Market.Greedy; Market.Truthful_mechanism ];
      Table.add_sep t)
    loads;
  Table.print t;
  print_endline
    "\n   * the truthful mechanism runs a smaller market (<=10 epochs, <=3\n\
    \   arrivals/epoch) — its welfare column is not comparable with the rows\n\
    \   above; its purpose here is demonstrating sustained truthful operation."
