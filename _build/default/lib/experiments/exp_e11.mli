(** E11 — the operational market loop ("eBay in the Sky", §1).

    Repeated short-term auctions with arrivals, waiting (urgency growth),
    and abandonment.  Compares the LP-rounding allocator against greedy on
    identical arrival processes across load levels, and reports the
    truthful mechanism's revenue.  Claims probed: the LP allocator's
    worst-case safety costs little (or wins) over the long run, and the
    whole stack sustains a continuously running market. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
