lib/experiments/exp_e1.ml: Array Float List Sa_core Sa_util Workloads
