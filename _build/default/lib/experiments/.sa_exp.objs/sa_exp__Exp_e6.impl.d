lib/experiments/exp_e6.ml: Array Float List Sa_core Sa_mech Sa_util Sa_val Workloads
