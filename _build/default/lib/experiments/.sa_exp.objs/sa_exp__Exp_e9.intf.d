lib/experiments/exp_e9.mli:
