lib/experiments/exp_e11.mli:
