lib/experiments/exp_e5.mli:
