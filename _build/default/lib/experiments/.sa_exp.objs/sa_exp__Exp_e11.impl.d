lib/experiments/exp_e11.ml: Array Float List Sa_sim Sa_util
