lib/experiments/exp_e8.mli:
