lib/experiments/exp_e8.ml: Array Float List Sa_core Sa_graph Sa_util Sa_val Workloads
