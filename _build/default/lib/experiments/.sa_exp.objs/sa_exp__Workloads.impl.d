lib/experiments/workloads.ml: Array Float Sa_core Sa_geom Sa_graph Sa_util Sa_val Sa_wireless
