lib/experiments/exp_e7.mli:
