lib/experiments/exp_e2.mli:
