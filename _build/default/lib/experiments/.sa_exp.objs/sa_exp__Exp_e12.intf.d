lib/experiments/exp_e12.mli:
