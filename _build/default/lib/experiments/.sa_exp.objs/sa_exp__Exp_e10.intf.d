lib/experiments/exp_e10.mli:
