lib/experiments/exp_e10.ml: Array Float List Sa_core Sa_util Sa_wireless Workloads
