lib/experiments/exp_e12.ml: Array Float List Sa_core Sa_util Sa_val Workloads
