lib/experiments/exp_e3.ml: Array Float List Sa_geom Sa_graph Sa_util Sa_wireless
