lib/experiments/exp_e3.mli:
