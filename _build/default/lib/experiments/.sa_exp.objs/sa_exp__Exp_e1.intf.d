lib/experiments/exp_e1.mli:
