lib/experiments/exp_e13.mli:
