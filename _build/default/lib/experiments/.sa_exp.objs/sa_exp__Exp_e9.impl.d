lib/experiments/exp_e9.ml: Array Float List Sa_core Sa_util Workloads
