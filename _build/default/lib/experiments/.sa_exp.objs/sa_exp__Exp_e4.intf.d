lib/experiments/exp_e4.mli:
