lib/experiments/exp_e5.ml: Array Float List Printf Sa_core Sa_util Sa_wireless Workloads
