lib/experiments/exp_e6.mli:
