lib/experiments/exp_e7.ml: Array Float List Sa_core Sa_util Workloads
