lib/experiments/workloads.mli: Sa_core Sa_util Sa_val Sa_wireless
