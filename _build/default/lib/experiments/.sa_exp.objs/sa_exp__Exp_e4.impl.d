lib/experiments/exp_e4.ml: Array Float List Sa_geom Sa_graph Sa_util Sa_wireless Workloads
