lib/experiments/exp_e13.ml: Array Float List Sa_core Sa_geom Sa_graph Sa_util Sa_val Sa_wireless
