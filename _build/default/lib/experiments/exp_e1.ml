module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy

let run ?(seeds = 5) ?(quick = false) () =
  print_endline "== E1: Algorithm 1 on the protocol model (Theorem 3) ==";
  print_endline "   ratio = LP / welfare; bound = 8 sqrt(k) rho\n";
  let ns = if quick then [ 20; 40 ] else [ 20; 40; 80 ] in
  let ks = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let t =
    Table.create
      [ "n"; "k"; "rho"; "LP"; "alg1"; "alg1-adapt"; "greedy"; "ratio"; "ratio-ad"; "bound" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          let rhos = ref [] and lps = ref [] in
          let alg = ref [] and adapt = ref [] and greedy = ref [] in
          let bound = ref 0.0 in
          for s = 1 to seeds do
            let inst =
              Workloads.protocol_instance ~seed:((1000 * n) + (10 * k) + s) ~n ~k ()
            in
            let frac = Lp.solve_explicit inst in
            let g = Prng.create ~seed:(s * 7919) in
            let a1 = Rounding.solve ~trials:8 g inst frac in
            let a2 = Rounding.solve_adaptive ~trials:4 g inst frac in
            let gr = Greedy.by_value inst in
            rhos := inst.Instance.rho :: !rhos;
            lps := frac.Lp.objective :: !lps;
            alg := Allocation.value inst a1 :: !alg;
            adapt := Allocation.value inst a2 :: !adapt;
            greedy := Allocation.value inst gr :: !greedy;
            bound := Float.max !bound (Rounding.guarantee inst)
          done;
          let mean l = Stats.mean (Array.of_list l) in
          let lp = mean !lps in
          let ratio v = if v > 0.0 then lp /. v else Float.infinity in
          Table.add_row t
            [
              Table.cell_i n;
              Table.cell_i k;
              Table.cell_f ~prec:1 (mean !rhos);
              Table.cell_f ~prec:1 lp;
              Table.cell_f ~prec:1 (mean !alg);
              Table.cell_f ~prec:1 (mean !adapt);
              Table.cell_f ~prec:1 (mean !greedy);
              Table.cell_f ~prec:2 (ratio (mean !alg));
              Table.cell_f ~prec:2 (ratio (mean !adapt));
              Table.cell_f ~prec:1 !bound;
            ])
        ks;
      Table.add_sep t)
    ns;
  Table.print t
