module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Timing = Sa_util.Timing
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Derand = Sa_core.Derand

let run ?(seeds = 4) ?(quick = false) () =
  print_endline "== E10: pairwise-independence derandomization (S5 remark) ==";
  print_endline
    "   bound = b*/(8 sqrt(k) rho); derand enumerates the 101^2 seed family\n";
  let seeds = if quick then 2 else seeds in
  let t =
    Table.create
      [ "family"; "LP b*"; "bound"; "rand mean"; "rand best8"; "derand"; ">= bound"; "t derand (s)" ]
  in
  let families =
    [
      ( "protocol n=14 k=2",
        `U (fun s -> Workloads.protocol_instance ~seed:(900 + s) ~n:14 ~k:2 ()) );
      ( "protocol n=14 k=4",
        `U (fun s -> Workloads.protocol_instance ~seed:(920 + s) ~n:14 ~k:4 ()) );
      ( "sinr-weighted n=12 k=2",
        `W
          (fun s ->
            fst (Workloads.sinr_fixed_instance ~seed:(940 + s) ~n:12 ~k:2
                   ~scheme:Sa_wireless.Sinr.Uniform ())) );
    ]
  in
  List.iter
    (fun (name, family) ->
      let lps = ref [] and bounds = ref [] in
      let means = ref [] and bests = ref [] and derands = ref [] in
      let times = ref [] in
      let all_clear = ref true in
      for s = 1 to seeds do
        let inst, derand_fn =
          match family with
          | `U build -> (build s, Derand.algorithm1_derand)
          | `W build -> (build s, Derand.algorithm23_derand)
        in
        let frac = Lp.solve_explicit inst in
        let g = Prng.create ~seed:(2025 + s) in
        let runs = 50 in
        let vals =
          Array.init runs (fun _ ->
              Allocation.value inst (Rounding.solve ~trials:1 g inst frac))
        in
        let best8 =
          Array.init 8 (fun i -> vals.(i)) |> Array.fold_left Float.max 0.0
        in
        let d, dt = Timing.time (fun () -> derand_fn inst frac) in
        let dv = Allocation.value inst d in
        let bound = frac.Lp.objective /. Rounding.guarantee inst in
        if dv < 0.9 *. bound then all_clear := false;
        lps := frac.Lp.objective :: !lps;
        bounds := bound :: !bounds;
        means := Stats.mean vals :: !means;
        bests := best8 :: !bests;
        derands := dv :: !derands;
        times := dt :: !times
      done;
      let mean l = Stats.mean (Array.of_list l) in
      Table.add_row t
        [
          name;
          Table.cell_f ~prec:1 (mean !lps);
          Table.cell_f ~prec:2 (mean !bounds);
          Table.cell_f ~prec:1 (mean !means);
          Table.cell_f ~prec:1 (mean !bests);
          Table.cell_f ~prec:1 (mean !derands);
          (if !all_clear then "yes" else "NO");
          Table.cell_f ~prec:2 (mean !times);
        ])
    families;
  Table.print t
