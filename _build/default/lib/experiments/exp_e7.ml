module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Exact = Sa_core.Exact

let rec run ?(seeds = 5) ?(quick = false) () =
  print_endline "== E7: asymmetric channels (Section 6, Theorem 14 gadget) ==";
  print_endline
    "   bidders want ALL k channels; per-channel graphs split a degree-d graph\n";
  let t =
    Table.create
      [ "n"; "d"; "k"; "rho"; "LP"; "rounded"; "adaptive"; "exact"; "ratio"; "bound 4k*rho" ]
  in
  let configs =
    if quick then [ (16, 4, 2) ] else [ (16, 4, 2); (16, 6, 3); (24, 6, 2); (24, 6, 6) ]
  in
  List.iter
    (fun (n, d, k) ->
      let lps = ref [] and rounded = ref [] and adapt = ref [] and exact = ref [] in
      let rhos = ref [] and bound = ref 0.0 in
      for s = 1 to seeds do
        let inst = Workloads.asymmetric_instance ~seed:((100 * n) + (10 * d) + s) ~n ~k ~d in
        let frac = Lp.solve_explicit inst in
        let g = Prng.create ~seed:(s * 17) in
        let r = Rounding.solve ~trials:8 g inst frac in
        let a = Rounding.solve_adaptive ~trials:4 g inst frac in
        let e = Exact.solve ~node_limit:2_000_000 inst in
        rhos := inst.Instance.rho :: !rhos;
        lps := frac.Lp.objective :: !lps;
        rounded := Allocation.value inst r :: !rounded;
        adapt := Allocation.value inst a :: !adapt;
        exact := e.Exact.value :: !exact;
        bound := Float.max !bound (Rounding.guarantee inst)
      done;
      let mean l = Stats.mean (Array.of_list l) in
      let av = mean !adapt in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i d;
          Table.cell_i k;
          Table.cell_f ~prec:1 (mean !rhos);
          Table.cell_f ~prec:2 (mean !lps);
          Table.cell_f ~prec:2 (mean !rounded);
          Table.cell_f ~prec:2 av;
          Table.cell_f ~prec:2 (mean !exact);
          Table.cell_f ~prec:2 (if av > 0.0 then mean !exact /. av else Float.infinity);
          Table.cell_f ~prec:0 !bound;
        ])
    configs;
  Table.print t;
  print_endline
    "\n   ratio compares the exact integral optimum against the rounded\n\
    \   solution; welfare = number of bidders winning the full bundle =\n\
    \   independent-set size in the Theorem-14 base graph.";
  weighted_part ~seeds ~quick

(* Section 6 in full generality: per-channel *edge-weighted* graphs (each
   channel a different frequency band / path-loss exponent). *)
and weighted_part ~seeds ~quick =
  print_endline "\n-- weighted asymmetric channels (per-channel w_j) --";
  let t =
    Table.create [ "n"; "k"; "rho"; "LP"; "pipeline"; "adaptive"; "greedy"; "bound" ]
  in
  let configs = if quick then [ (12, 2) ] else [ (12, 2); (16, 3); (20, 4) ] in
  List.iter
    (fun (n, k) ->
      let rhos = ref [] and lps = ref [] in
      let pipe = ref [] and adapt = ref [] and greedy = ref [] in
      let bound = ref 0.0 in
      for s = 1 to seeds do
        let inst, _sys =
          Workloads.asymmetric_weighted_instance ~seed:((100 * n) + s) ~n ~k ()
        in
        let frac = Lp.solve_explicit inst in
        let g = Prng.create ~seed:(s * 37) in
        let p = Rounding.solve ~trials:8 g inst frac in
        let a = Rounding.solve_adaptive ~trials:4 g inst frac in
        let gr = Sa_core.Greedy.by_value inst in
        rhos := inst.Instance.rho :: !rhos;
        lps := frac.Lp.objective :: !lps;
        pipe := Allocation.value inst p :: !pipe;
        adapt := Allocation.value inst a :: !adapt;
        greedy := Allocation.value inst gr :: !greedy;
        bound := Float.max !bound (Rounding.guarantee inst)
      done;
      let mean l = Stats.mean (Array.of_list l) in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i k;
          Table.cell_f ~prec:2 (mean !rhos);
          Table.cell_f ~prec:1 (mean !lps);
          Table.cell_f ~prec:1 (mean !pipe);
          Table.cell_f ~prec:1 (mean !adapt);
          Table.cell_f ~prec:1 (mean !greedy);
          Table.cell_f ~prec:0 !bound;
        ])
    configs;
  Table.print t
