module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Sinr = Sa_wireless.Sinr
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding

let scheme_name = function
  | Sinr.Uniform -> "uniform"
  | Sinr.Linear -> "linear"
  | Sinr.Square_root -> "sqrt"
  | Sinr.Given _ -> "given"

let run ?(seeds = 5) ?(quick = false) () =
  print_endline "== E2: Algorithms 2+3 on the physical model, fixed powers ==";
  print_endline "   (Prop 11 weighted graphs; bound = 16 sqrt(k) rho log2 n)\n";
  let ns = if quick then [ 16; 32 ] else [ 16; 32; 64 ] in
  let k = 3 in
  let t =
    Table.create
      [ "scheme"; "n"; "rho"; "LP"; "alg2 (partly)"; "alg3 (final)"; "adaptive"; "ratio"; "bound" ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun n ->
          let rhos = ref [] and lps = ref [] in
          let partly = ref [] and final = ref [] and adapt = ref [] in
          let bound = ref 0.0 in
          for s = 1 to seeds do
            let inst, _sys =
              Workloads.sinr_fixed_instance ~seed:((100 * n) + s) ~n ~k ~scheme ()
            in
            let frac = Lp.solve_explicit inst in
            let g = Prng.create ~seed:(s * 104729) in
            (* best of 8 runs of Algorithm 2 -> 3, tracking both stages *)
            let best_p = ref 0.0 and best_f = ref 0.0 in
            for _ = 1 to 8 do
              let p = Rounding.algorithm2 g inst frac in
              let f = Rounding.algorithm3 inst p in
              let pv = Allocation.value inst p and fv = Allocation.value inst f in
              if fv > !best_f then begin
                best_f := fv;
                best_p := pv
              end
            done;
            let a = Rounding.solve_adaptive ~trials:4 g inst frac in
            rhos := inst.Instance.rho :: !rhos;
            lps := frac.Lp.objective :: !lps;
            partly := !best_p :: !partly;
            final := !best_f :: !final;
            adapt := Allocation.value inst a :: !adapt;
            bound := Float.max !bound (Rounding.guarantee inst)
          done;
          let mean l = Stats.mean (Array.of_list l) in
          let lp = mean !lps in
          let fv = mean !adapt in
          Table.add_row t
            [
              scheme_name scheme;
              Table.cell_i n;
              Table.cell_f ~prec:2 (mean !rhos);
              Table.cell_f ~prec:1 lp;
              Table.cell_f ~prec:1 (mean !partly);
              Table.cell_f ~prec:1 (mean !final);
              Table.cell_f ~prec:1 fv;
              Table.cell_f ~prec:2 (if fv > 0.0 then lp /. fv else Float.infinity);
              Table.cell_f ~prec:1 !bound;
            ])
        ns;
      Table.add_sep t)
    [ Sinr.Uniform; Sinr.Linear ];
  Table.print t
