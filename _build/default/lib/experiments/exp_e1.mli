(** E1 — Theorem 3: Algorithm 1's approximation on unweighted conflict
    graphs (protocol model).

    Sweeps n and k; reports, per cell (mean over seeds): measured ρ(π), LP
    optimum, Algorithm 1 welfare at the canonical scale and with the
    adaptive ladder, greedy baseline, the empirical ratio LP/alg, and the
    theoretical factor 8√k·ρ.  The shape claim under test: the empirical
    ratio grows like √k (and stays far below the worst-case factor). *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
