(** E5 — Theorem 13: the full power-control pipeline, and the τ ablation.

    Stage 1 allocates channels by rounding the LP over the τ-weighted
    conflict graph; stage 2 runs the Kesselheim power-control procedure per
    channel.  The paper's τ is a worst-case constant (1/τ ≈ hundreds); this
    experiment sweeps the weight scale from 1 up to the paper's 1/τ and
    reports, per scale: welfare, the per-channel SINR success rate of power
    control, and ρ(π).  The claims under test: at the paper's scale power
    control NEVER fails; milder scales trade a small failure risk for much
    higher welfare. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
