module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Placement = Sa_geom.Placement
module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Inductive = Sa_graph.Inductive
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Disk = Sa_wireless.Disk
module Civilized = Sa_wireless.Civilized

let side_for n = 4.0 *. sqrt (float_of_int n)

let links ~seed ~n =
  let g = Prng.create ~seed in
  Link.of_point_pairs
    (Placement.random_links g ~n ~side:(side_for n) ~min_len:0.5 ~max_len:1.5)

(* Each row: model name, theoretical bound, and a builder producing
   (conflict graph, ordering) from a seed and n. *)
let models ~n =
  [
    ( "protocol d=0.5",
      float_of_int (Protocol.rho_bound ~delta:0.5),
      fun seed ->
        let sys = links ~seed ~n in
        (Protocol.conflict_graph sys ~delta:0.5, Protocol.ordering sys) );
    ( "protocol d=1",
      float_of_int (Protocol.rho_bound ~delta:1.0),
      fun seed ->
        let sys = links ~seed ~n in
        (Protocol.conflict_graph sys ~delta:1.0, Protocol.ordering sys) );
    ( "protocol d=2",
      float_of_int (Protocol.rho_bound ~delta:2.0),
      fun seed ->
        let sys = links ~seed ~n in
        (Protocol.conflict_graph sys ~delta:2.0, Protocol.ordering sys) );
    ( "802.11 d=1",
      float_of_int Protocol.rho_bound_80211,
      fun seed ->
        let sys = links ~seed ~n in
        (Protocol.conflict_graph_80211 sys ~delta:1.0, Protocol.ordering sys) );
    ( "disk graph",
      float_of_int Disk.rho_bound,
      fun seed ->
        let g = Prng.create ~seed in
        let d = Disk.random g ~n ~side:(side_for n) ~rmin:0.5 ~rmax:1.5 in
        (Disk.conflict_graph d, Disk.ordering d) );
    ( "dist-2 coloring",
      Float.nan (* O(1); no explicit constant in the paper *),
      fun seed ->
        let g = Prng.create ~seed in
        let d = Disk.random g ~n ~side:(side_for n) ~rmin:0.5 ~rmax:1.5 in
        (Disk.distance2_coloring_graph d, Disk.ordering d) );
    ( "dist-2 matching",
      Float.nan (* O(1), Cor 10 *),
      fun seed ->
        let g = Prng.create ~seed in
        let d = Disk.random g ~n:(max 8 (n / 2)) ~side:(side_for (max 8 (n / 2)))
            ~rmin:0.8 ~rmax:1.5 in
        let mg, pi, _ = Disk.distance2_matching d in
        (mg, pi) );
    ( "civilized r/s=2",
      Civilized.rho_bound ~r:2.0 ~s:1.0,
      fun seed ->
        let g = Prng.create ~seed in
        let c = Civilized.random g ~n ~side:(side_for n) ~r:2.0 ~s:1.0 ~edge_prob:0.9 in
        let g2 = Civilized.distance2_coloring_graph c in
        (* Prop 18 holds for any ordering; use a random one. *)
        let rng = Prng.create ~seed:(seed + 1) in
        (g2, Ordering.of_order (Prng.permutation rng (Graph.n g2))) );
  ]

let run ?(seeds = 5) ?(quick = false) () =
  print_endline "== E3: inductive independence per interference model ==";
  print_endline "   (measured rho(pi) vs the paper's bound; '-' = O(1), no constant given)\n";
  let ns = if quick then [ 30 ] else [ 30; 60 ] in
  let t = Table.create [ "model"; "n"; "rho mean"; "rho max"; "bound"; "within" ] in
  List.iter
    (fun n ->
      List.iter
        (fun (name, bound, build) ->
          let measured = ref [] in
          for s = 1 to seeds do
            let graph, pi = build ((31 * n) + s) in
            let e = Inductive.rho_unweighted ~node_limit:500_000 graph pi in
            measured := e.Inductive.rho :: !measured
          done;
          let arr = Array.of_list !measured in
          let worst = Array.fold_left Float.max 0.0 arr in
          Table.add_row t
            [
              name;
              Table.cell_i n;
              Table.cell_f ~prec:1 (Stats.mean arr);
              Table.cell_f ~prec:0 worst;
              (if Float.is_nan bound then "-" else Table.cell_f ~prec:0 bound);
              (if Float.is_nan bound then "O(1)"
               else if worst <= bound +. 1e-9 then "yes"
               else "NO");
            ])
        (models ~n);
      Table.add_sep t)
    ns;
  Table.print t
