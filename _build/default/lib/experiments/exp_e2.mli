(** E2 — Lemmas 7+8: Algorithms 2+3 on edge-weighted conflict graphs
    (physical model with fixed powers, Proposition 11 weights).

    Sweeps n for uniform and linear power schemes; reports ρ(π) of the
    weighted graph, LP optimum, the partly feasible value after Algorithm 2,
    the final value after Algorithm 3, the number of log-n candidates the
    decomposition actually needed, and the theoretical factor
    16√k·ρ·log₂ n. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
