module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Exact = Sa_core.Exact
module Edge_lp = Sa_core.Edge_lp

(* Greedy-killer: a star whose centre is worth slightly more than any single
   leaf but far less than all leaves together. *)
let star_trap ~n =
  let g = Graph.of_edges n (List.init (n - 1) (fun i -> (i + 1, 0))) in
  let bid v = Valuation.Xor [ (Bundle.full 1, v) ] in
  let bidders = Array.init n (fun i -> if i = 0 then bid 10.0 else bid 9.9) in
  (* centre-first ordering: every leaf has only the centre backward: rho = 1 *)
  Instance.make ~conflict:(Instance.Unweighted g) ~k:1 ~bidders
    ~ordering:(Ordering.identity n) ~rho:1.0

let gap_table quick =
  print_endline "-- Part 1: integrality gap on cliques (unit values, k=1) --";
  let t = Table.create [ "n"; "edge-LP value"; "rho-LP value"; "true opt" ] in
  let ns = if quick then [ 8; 16 ] else [ 8; 16; 32; 64 ] in
  List.iter
    (fun n ->
      let inst = Sa_core.Hardness.clique_auction ~n in
      let frac = Lp.solve_explicit inst in
      let edge = Edge_lp.solve (Graph.clique n) ~weights:(Array.make n 1.0) in
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_f ~prec:1 edge.Edge_lp.lp_value;
          Table.cell_f ~prec:2 frac.Lp.objective;
          "1";
        ])
    ns;
  Table.print t

let families ~quick =
  let base =
    [
      ( "protocol n=20 k=2",
        fun s -> Workloads.protocol_instance ~seed:(800 + s) ~n:20 ~k:2 () );
      ( "disk n=18 k=2",
        fun s -> Workloads.disk_instance ~seed:(820 + s) ~n:18 ~k:2 () );
      ("star trap n=15", fun _ -> star_trap ~n:15);
      ( "thm14 n=14 d=4 k=2",
        fun s -> Workloads.asymmetric_instance ~seed:(840 + s) ~n:14 ~k:2 ~d:4 );
    ]
  in
  if quick then [ List.hd base; List.nth base 2 ] else base

let comparison_table ~seeds ~quick =
  print_endline "\n-- Part 2: algorithms as a fraction of the exact optimum --";
  let t =
    Table.create
      [ "family"; "opt"; "greedy-val"; "greedy-dens"; "lp-greedy"; "alg1"; "alg1-adapt" ]
  in
  List.iter
    (fun (name, build) ->
      let fracs = Array.make 5 [] in
      let opts = ref [] in
      for s = 1 to seeds do
        let inst = build s in
        let lp = Lp.solve_explicit inst in
        let g = Prng.create ~seed:(s * 13) in
        let e = Exact.solve ~node_limit:3_000_000 inst in
        let opt = Float.max 1e-9 e.Exact.value in
        opts := e.Exact.value :: !opts;
        let record i alloc =
          fracs.(i) <- (Allocation.value inst alloc /. opt) :: fracs.(i)
        in
        record 0 (Greedy.by_value inst);
        record 1 (Greedy.by_density inst);
        record 2 (Greedy.from_lp inst lp);
        record 3 (Rounding.solve ~trials:8 g inst lp);
        record 4 (Rounding.solve_adaptive ~trials:4 g inst lp)
      done;
      let mean l = Stats.mean (Array.of_list l) in
      Table.add_row t
        [
          name;
          Table.cell_f ~prec:1 (mean !opts);
          Table.cell_f ~prec:3 (mean fracs.(0));
          Table.cell_f ~prec:3 (mean fracs.(1));
          Table.cell_f ~prec:3 (mean fracs.(2));
          Table.cell_f ~prec:3 (mean fracs.(3));
          Table.cell_f ~prec:3 (mean fracs.(4));
        ])
    (families ~quick);
  Table.print t

let run ?(seeds = 5) ?(quick = false) () =
  print_endline "== E8: baselines — edge LP gap and algorithm comparison ==\n";
  gap_table quick;
  comparison_table ~seeds:(if quick then 2 else seeds) ~quick;
  print_endline
    "\n   Expected shape: edge-LP gap grows as n/2 while the rho-LP stays O(1);\n\
    \   greedy-by-value collapses on the star trap (takes the centre), the\n\
    \   LP-based methods do not."
