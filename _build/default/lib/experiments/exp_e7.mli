(** E7/E10 — Section 6 + Theorem 14: asymmetric channels.

    Runs the Section-6 rounding (scaling 1/2kρ) on the Theorem-14
    edge-splitting construction, where welfare exactly counts bidders who
    win the full channel bundle, i.e. independent-set size in the base
    graph.  Reports LP, rounded welfare, exact optimum (small n), the
    empirical ratio, and the theoretical factor 4kρ — probing how the
    k-dependence degrades from √k (symmetric) to k (asymmetric). *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
