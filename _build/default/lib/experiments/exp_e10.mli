(** E10 — the Section-5 derandomization remark, quantified.

    Compares, on small unweighted and edge-weighted instances: the mean and
    best-of-R of the randomized rounding against the deterministic
    pairwise-independence enumeration ({!Sa_core.Derand}), plus wall-clock
    cost.  The claims under test: the deterministic value always clears the
    Theorem-3 / Lemma-7+8 bound, and sits at or above the randomized mean —
    the property the Lavi–Swamy decomposition needs from a deterministic
    witness. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
