(** E9 — Section 3.1: demand-oracle column generation.

    Compares solving the LP with explicit column enumeration against column
    generation with demand oracles, over bidders whose explicit supports are
    exponential in k (symmetric/additive languages).  Reports: objective
    agreement, columns generated vs the 2^k−1 per bidder a naive encoding
    needs, master iterations, and wall-clock time.  The claim under test:
    the oracle path touches a polynomial number of columns and matches the
    explicit optimum exactly. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
