module Prng = Sa_util.Prng
module Stats = Sa_util.Stats
module Table = Sa_util.Table
module Sinr_graph = Sa_wireless.Sinr_graph
module Power_control = Sa_wireless.Power_control
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding

let run ?(seeds = 4) ?(quick = false) () =
  print_endline "== E5: Theorem 13 pipeline — rounding + power control ==";
  print_endline "   (weight-scale ablation; 1/tau is the paper's worst-case scale)\n";
  let n = if quick then 20 else 30 in
  let k = 3 in
  let inv_tau = 1.0 /. Sinr_graph.tau Workloads.sinr_default_params in
  let scales = [ 1.0; 2.0; 4.0; 8.0; 32.0; inv_tau ] in
  let t =
    Table.create
      [ "scale"; "rho"; "LP"; "welfare"; "winners"; "pc success"; "channels tested" ]
  in
  List.iter
    (fun weight_scale ->
      let rhos = ref [] and lps = ref [] and welfare = ref [] in
      let winners = ref [] in
      let pc_ok = ref 0 and pc_total = ref 0 in
      for s = 1 to seeds do
        let inst, sys, prm =
          Workloads.sinr_powercontrol_instance ~seed:(4000 + s) ~n ~k ~weight_scale ()
        in
        let frac = Lp.solve_explicit inst in
        let g = Prng.create ~seed:(s * 31) in
        let alloc = Rounding.solve_adaptive ~trials:6 g inst frac in
        rhos := inst.Instance.rho :: !rhos;
        lps := frac.Lp.objective :: !lps;
        welfare := Allocation.value inst alloc :: !welfare;
        winners := float_of_int (List.length (Allocation.allocated_bidders alloc)) :: !winners;
        for j = 0 to k - 1 do
          let holders = Allocation.holders alloc ~k ~channel:j in
          if holders <> [] then begin
            incr pc_total;
            let r = Power_control.assign sys prm holders in
            if r.Power_control.feasible then incr pc_ok
          end
        done
      done;
      let mean l = Stats.mean (Array.of_list l) in
      Table.add_row t
        [
          (if Float.abs (weight_scale -. inv_tau) < 1e-9 then
             Printf.sprintf "%.0f (=1/tau)" weight_scale
           else Table.cell_f ~prec:0 weight_scale);
          Table.cell_f ~prec:2 (mean !rhos);
          Table.cell_f ~prec:1 (mean !lps);
          Table.cell_f ~prec:1 (mean !welfare);
          Table.cell_f ~prec:1 (mean !winners);
          (if !pc_total = 0 then "n/a"
           else Printf.sprintf "%d/%d" !pc_ok !pc_total);
          Table.cell_i !pc_total;
        ])
    scales;
  Table.print t;
  print_endline
    "\n   Reading: at the paper's 1/tau scale the winner sets are small but\n\
    \   power control always succeeds; milder scales allocate far more while\n\
    \   the success rate shows when the guarantee starts to erode."
