(** E12 — online arrival (related work [8]): competitive ratio of
    irrevocable admission rules.

    Bidders arrive in random order; first-fit, fixed-threshold and
    adaptive-threshold online rules are compared against the offline exact
    optimum and the offline LP-rounding pipeline.  Claim probed: online
    first-fit loses a modest constant factor on benign geometric instances
    but can be badly fooled by value heterogeneity, which thresholds
    mitigate. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
