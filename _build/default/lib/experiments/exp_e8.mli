(** E8 — §2.1: the edge-based LP versus the ρ-based LP, and algorithm
    comparison.

    Part 1 (integrality gap): on cliques, the edge LP's value is n/2 while
    the true optimum is 1; the ρ-LP stays ≤ 2.  Sweeps n.

    Part 2 (who wins where): across instance families, compares greedy
    (value & density), LP-guided greedy, Algorithm 1 (canonical and
    adaptive) and the exact optimum — reporting each method's welfare as a
    fraction of optimum.  Expected shape: greedy is strong on benign
    geometric instances but has no guarantee; the LP-based methods track
    the optimum more uniformly and dominate on adversarial (clique-with-
    outliers, Theorem-14) instances. *)

val run : ?seeds:int -> ?quick:bool -> unit -> unit
