module Graph = Sa_graph.Graph
module Point = Sa_geom.Point
module Prng = Sa_util.Prng

type t = { points : Point.t array; graph : Graph.t }

let make points ~r ~s g =
  let count = Array.length points in
  if Graph.n g <> count then invalid_arg "Civilized.make: graph size mismatch";
  for i = 0 to count - 1 do
    for j = i + 1 to count - 1 do
      if Point.dist points.(i) points.(j) < s -. 1e-12 then
        invalid_arg "Civilized.make: points closer than s"
    done
  done;
  Graph.iter_edges g (fun u v ->
      if Point.dist points.(u) points.(v) > r +. 1e-12 then
        invalid_arg "Civilized.make: edge longer than r");
  { points = Array.copy points; graph = Graph.copy g }

let random g ~n:target ~side ~r ~s ~edge_prob =
  if s <= 0.0 || r < s then invalid_arg "Civilized.random: need 0 < s <= r";
  let placed = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  let max_attempts = target * 50 in
  while !count < target && !attempts < max_attempts do
    incr attempts;
    let p = Point.make (Prng.float g side) (Prng.float g side) in
    if List.for_all (fun q -> Point.dist p q >= s) !placed then begin
      placed := p :: !placed;
      incr count
    end
  done;
  let points = Array.of_list (List.rev !placed) in
  let m = Array.length points in
  let graph = Graph.create m in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if Point.dist points.(i) points.(j) <= r && Prng.bernoulli g edge_prob then
        Graph.add_edge graph i j
    done
  done;
  { points; graph }

let graph t = t.graph
let points t = Array.copy t.points
let n t = Array.length t.points

let distance2_coloring_graph t =
  let base = t.graph in
  let size = Graph.n base in
  let g2 = Graph.create size in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      let adjacent = Graph.mem_edge base i j in
      let two_hop =
        (not adjacent)
        && List.exists (fun u -> Graph.mem_edge base u j) (Graph.neighbors base i)
      in
      if adjacent || two_hop then Graph.add_edge g2 i j
    done
  done;
  g2

let rho_bound ~r ~s =
  let q = (4.0 *. r /. s) +. 2.0 in
  q *. q
