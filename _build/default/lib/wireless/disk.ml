module Graph = Sa_graph.Graph
module Ordering = Sa_graph.Ordering
module Point = Sa_geom.Point
module Prng = Sa_util.Prng

type t = { points : Point.t array; radii : float array }

let make points radii =
  if Array.length points <> Array.length radii then
    invalid_arg "Disk.make: points/radii length mismatch";
  Array.iter (fun r -> if r <= 0.0 then invalid_arg "Disk.make: non-positive radius") radii;
  { points = Array.copy points; radii = Array.copy radii }

let n t = Array.length t.points
let point t i = t.points.(i)
let radius t i = t.radii.(i)

let conflict_graph t =
  let size = n t in
  let g = Graph.create size in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      if Point.dist t.points.(i) t.points.(j) < t.radii.(i) +. t.radii.(j) then
        Graph.add_edge g i j
    done
  done;
  g

let ordering t = Ordering.by_key (n t) (fun i -> -.t.radii.(i))

let rho_bound = 5

let distance2_coloring_graph t =
  let base = conflict_graph t in
  let size = n t in
  let g = Graph.create size in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      let adjacent = Graph.mem_edge base i j in
      let two_hop =
        (not adjacent)
        && List.exists (fun u -> Graph.mem_edge base u j) (Graph.neighbors base i)
      in
      if adjacent || two_hop then Graph.add_edge g i j
    done
  done;
  g

let distance2_matching t =
  let base = conflict_graph t in
  let disk_edges = Array.of_list (Graph.edges base) in
  let m = Array.length disk_edges in
  let g = Graph.create m in
  let touches (a, b) v = a = v || b = v in
  let share_endpoint (a, b) (c, d) = a = c || a = d || b = c || b = d in
  for e = 0 to m - 1 do
    for f = e + 1 to m - 1 do
      let ea, eb = disk_edges.(e) and fa, fb = disk_edges.(f) in
      let joined =
        (* some disk-graph edge connects an endpoint of e to one of f *)
        Array.exists
          (fun (x, y) ->
            (touches (ea, eb) x && touches (fa, fb) y)
            || (touches (ea, eb) y && touches (fa, fb) x))
          disk_edges
      in
      if share_endpoint (ea, eb) (fa, fb) || joined then Graph.add_edge g e f
    done
  done;
  let r_of_edge e =
    let a, b = disk_edges.(e) in
    t.radii.(a) +. t.radii.(b)
  in
  (g, Ordering.by_key m r_of_edge, disk_edges)

let random g ~n:count ~side ~rmin ~rmax =
  if rmin <= 0.0 || rmax < rmin then invalid_arg "Disk.random: need 0 < rmin <= rmax";
  let points = Sa_geom.Placement.uniform g ~n:count ~side in
  let radii = Array.init count (fun _ -> Prng.uniform_in g rmin rmax) in
  make points radii
