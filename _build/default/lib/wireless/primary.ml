module Point = Sa_geom.Point
module Bundle = Sa_val.Bundle
module Prng = Sa_util.Prng

type t = { location : Point.t; radius : float; channel : int }

let make location ~radius ~channel =
  if radius <= 0.0 then invalid_arg "Primary.make: radius must be positive";
  if channel < 0 || channel >= Bundle.max_channels then
    invalid_arg "Primary.make: bad channel";
  { location; radius; channel }

let mask_for_point ~k primaries p =
  List.fold_left
    (fun mask prim ->
      if prim.channel < k && Point.dist p prim.location < prim.radius then
        Bundle.remove prim.channel mask
      else mask)
    (Bundle.full k) primaries

let masks_for_points ~k primaries points =
  Array.map (mask_for_point ~k primaries) points

let masks_for_links ~k primaries sys =
  let points =
    match Sa_geom.Metric.points (Link.metric sys) with
    | Some pts -> pts
    | None -> invalid_arg "Primary.masks_for_links: link system has no planar embedding"
  in
  Array.init (Link.n sys) (fun i ->
      let l = Link.link sys i in
      Bundle.inter
        (mask_for_point ~k primaries points.(l.Link.sender))
        (mask_for_point ~k primaries points.(l.Link.receiver)))

let random g ~count ~side ~k ~rmin ~rmax =
  if rmin <= 0.0 || rmax < rmin then invalid_arg "Primary.random: bad radii";
  List.init count (fun _ ->
      make
        (Point.make (Prng.float g side) (Prng.float g side))
        ~radius:(Prng.uniform_in g rmin rmax)
        ~channel:(Prng.int g k))
