(** Edge-weighted conflict graphs for the physical model.

    Two constructions from the paper:

    - {!prop11_graph}: fixed powers (Proposition 11).  Weights are the
      (1+ε)-corrected affectances, so that a link set satisfies the SINR
      constraints iff it is independent in the weighted graph.  With a
      monotone power scheme the decreasing-length ordering has
      ρ = O(log n) (Lemma 12).

    - {!thm13_graph}: power control (Theorem 13).  Weights are the
      distance-ratio terms scaled by [1/τ], [τ = 1 / (2·3^α·(4β+2))];
      independent sets admit a feasible power assignment computed by
      {!Power_control}.  [weight_scale] overrides [1/τ] for the ablation
      study (the paper's τ is a worst-case constant; the experiments probe
      how far it can be relaxed before power control starts failing). *)

val prop11_graph :
  Link.system -> Sinr.params -> powers:float array -> Sa_graph.Weighted.t

val prop11_epsilon : Link.system -> Sinr.params -> powers:float array -> float
(** The ε of Proposition 11:
    [β/2 · min_{ℓ,ℓ'} (d(s,r)^α / d(s',r)^α)] over links [ℓ=(s,r)],
    [ℓ'=(s',r')], [ℓ ≠ ℓ']. *)

val ordering : Link.system -> Sa_graph.Ordering.t
(** Decreasing link length — backward neighbours of a link are *longer*
    links, matching Lemma 12's premise. *)

val tau : Sinr.params -> float
(** [1 / (2·3^α·(4β+2))]. *)

val thm13_graph :
  ?weight_scale:float -> Link.system -> Sinr.params -> Sa_graph.Weighted.t
(** Directed weights from longer onto shorter links (zero in the other
    direction):
    [w(ℓ,ℓ') = scale·(min(1, d(ℓ)^α/d(s,r')^α) + min(1, d(ℓ)^α/d(s',r)^α))]
    where [ℓ=(s,r)] precedes [ℓ'=(s',r')] in decreasing-length order and
    [scale] defaults to [1/τ]. *)

val sinr_iff_independent :
  Link.system -> Sinr.params -> powers:float array -> int list -> bool * bool
(** [(sinr_feasible, independent)] for a link set — the two sides of the
    Proposition 11 equivalence, for tests. *)
