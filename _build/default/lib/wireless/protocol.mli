(** The protocol model and its IEEE 802.11 bidirectional variant (§4.1).

    In the protocol model [Gupta–Kumar], link [ℓ = (s,r)] tolerates a
    concurrent sender [s'] only if [d(s',r) ≥ (1+Δ)·d(s,r)]; two links
    conflict when either one violates the other's guard zone.  The
    IEEE 802.11 variant of Alicherry et al. is bidirectional: all four
    endpoint pairs must be separated by [(1+Δ)·max(len, len')]. *)

val conflict_graph : Link.system -> delta:float -> Sa_graph.Graph.t
(** Protocol-model conflict graph ([Δ > 0]). *)

val conflict_graph_80211 : Link.system -> delta:float -> Sa_graph.Graph.t
(** Bidirectional (IEEE 802.11) conflict graph. *)

val ordering : Link.system -> Sa_graph.Ordering.t
(** Increasing link length — the ordering realising Proposition 9's bound
    (backward neighbours of a link are shorter links, whose senders an
    independent set packs around the receiver). *)

val rho_bound : delta:float -> int
(** Proposition 9 (Wan): [⌈π / arcsin(Δ / 2(Δ+1))⌉ − 1]. *)

val rho_bound_80211 : int
(** 23, per Wan's analysis of the Alicherry et al. model. *)
