type params = { alpha : float; beta : float; noise : float }

let default_params = { alpha = 3.0; beta = 1.5; noise = 0.0 }

let validate_params { alpha; beta; noise } =
  if alpha <= 0.0 then invalid_arg "Sinr: alpha must be positive";
  if beta <= 0.0 then invalid_arg "Sinr: beta must be positive";
  if noise < 0.0 then invalid_arg "Sinr: noise must be non-negative"

type power_scheme =
  | Uniform
  | Linear
  | Square_root
  | Given of float array

let powers sys prm scheme =
  validate_params prm;
  let n = Link.n sys in
  match scheme with
  | Uniform -> Array.make n 1.0
  | Linear -> Array.init n (fun i -> Link.length sys i ** prm.alpha)
  | Square_root -> Array.init n (fun i -> Link.length sys i ** (prm.alpha /. 2.0))
  | Given p ->
      if Array.length p <> n then invalid_arg "Sinr.powers: Given length mismatch";
      Array.iter (fun x -> if x <= 0.0 then invalid_arg "Sinr.powers: non-positive power") p;
      Array.copy p

let is_monotone_scheme = function
  | Uniform | Linear | Square_root -> true
  | Given _ -> false

let received sys prm ~powers ~from_link ~at_receiver_of =
  let d = Link.dist_sr sys ~from_sender_of:from_link ~to_receiver_of:at_receiver_of in
  powers.(from_link) /. (d ** prm.alpha)

let signal sys prm ~powers i =
  powers.(i) /. (Link.length sys i ** prm.alpha)

let sinr sys prm ~powers ~active i =
  if not (List.mem i active) then invalid_arg "Sinr.sinr: link not active";
  let interference =
    List.fold_left
      (fun acc j ->
        if j = i then acc else acc +. received sys prm ~powers ~from_link:j ~at_receiver_of:i)
      0.0 active
  in
  let denom = interference +. prm.noise in
  if denom <= 0.0 then infinity else signal sys prm ~powers i /. denom

let feasible sys prm ~powers set =
  List.for_all (fun i -> sinr sys prm ~powers ~active:set i >= prm.beta) set

(* One fading draw: SINR of link i with every term scaled by an Exp(1)
   gain drawn from [g]. *)
let faded_sinr g sys prm ~powers ~active i =
  let gain () = Sa_util.Prng.exponential g 1.0 in
  let interference =
    List.fold_left
      (fun acc j ->
        if j = i then acc
        else acc +. (gain () *. received sys prm ~powers ~from_link:j ~at_receiver_of:i))
      0.0 active
  in
  let denom = interference +. prm.noise in
  if denom <= 0.0 then infinity else gain () *. signal sys prm ~powers i /. denom

let rayleigh_success_probability g sys prm ~powers ~active ~trials i =
  if trials < 1 then invalid_arg "Sinr.rayleigh_success_probability: trials >= 1";
  if not (List.mem i active) then
    invalid_arg "Sinr.rayleigh_success_probability: link not active";
  let hits = ref 0 in
  for _ = 1 to trials do
    if faded_sinr g sys prm ~powers ~active i >= prm.beta then incr hits
  done;
  float_of_int !hits /. float_of_int trials

let rayleigh_all_success g sys prm ~powers ~active ~trials =
  if trials < 1 then invalid_arg "Sinr.rayleigh_all_success: trials >= 1";
  match active with
  | [] -> 1.0
  | _ ->
      let hits = ref 0 in
      for _ = 1 to trials do
        if List.for_all (fun i -> faded_sinr g sys prm ~powers ~active i >= prm.beta) active
        then incr hits
      done;
      float_of_int !hits /. float_of_int trials

let affectance sys prm ~powers j i =
  let budget = signal sys prm ~powers i -. (prm.beta *. prm.noise) in
  if budget <= 0.0 then 1.0
  else
    Float.min 1.0
      (prm.beta *. received sys prm ~powers ~from_link:j ~at_receiver_of:i /. budget)
