module Graph = Sa_graph.Graph
module Metric = Sa_geom.Metric

let conflict_graph sys ~delta =
  if delta <= 0.0 then invalid_arg "Protocol.conflict_graph: delta must be positive";
  let n = Link.n sys in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* j's sender too close to i's receiver, or vice versa *)
      let blocks_i =
        Link.dist_sr sys ~from_sender_of:j ~to_receiver_of:i
        < (1.0 +. delta) *. Link.length sys i
      in
      let blocks_j =
        Link.dist_sr sys ~from_sender_of:i ~to_receiver_of:j
        < (1.0 +. delta) *. Link.length sys j
      in
      if blocks_i || blocks_j then Graph.add_edge g i j
    done
  done;
  g

let conflict_graph_80211 sys ~delta =
  if delta <= 0.0 then invalid_arg "Protocol.conflict_graph_80211: delta must be positive";
  let n = Link.n sys in
  let m = Link.metric sys in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let li = Link.link sys i and lj = Link.link sys j in
      let guard = (1.0 +. delta) *. Float.max (Link.length sys i) (Link.length sys j) in
      let endpoints l = [ l.Link.sender; l.Link.receiver ] in
      let close =
        List.exists
          (fun a -> List.exists (fun b -> Metric.dist m a b < guard) (endpoints lj))
          (endpoints li)
      in
      if close then Graph.add_edge g i j
    done
  done;
  g

let ordering sys = Link.ordering_by_length ~decreasing:false sys

let rho_bound ~delta =
  if delta <= 0.0 then invalid_arg "Protocol.rho_bound: delta must be positive";
  let angle = asin (delta /. (2.0 *. (delta +. 1.0))) in
  int_of_float (Float.ceil (Float.pi /. angle)) - 1

let rho_bound_80211 = 23
