(** Primary users and protection zones (§1 motivation).

    A primary user holds a licence on one channel and must not be disturbed:
    secondary devices within its protection radius may not use that channel.
    This module turns a set of primary users into per-bidder availability
    masks (see {!Sa_core.Instance.with_available} — [Sa_core] depends on this
    library's *outputs* only, so the masks are plain bundles). *)

type t = {
  location : Sa_geom.Point.t;
  radius : float;  (** protection radius, > 0 *)
  channel : int;  (** the licensed channel *)
}

val make : Sa_geom.Point.t -> radius:float -> channel:int -> t

val masks_for_points :
  k:int -> t list -> Sa_geom.Point.t array -> Sa_val.Bundle.t array
(** [masks_for_points ~k primaries points]: mask for each point — all [k]
    channels minus those whose primary's zone contains the point. *)

val masks_for_links :
  k:int -> t list -> Link.system -> Sa_val.Bundle.t array
(** Link version: a link loses a channel when *either endpoint* lies in the
    corresponding protection zone (its transmission would reach into the
    zone).  Requires a planar link system. *)

val random :
  Sa_util.Prng.t -> count:int -> side:float -> k:int ->
  rmin:float -> rmax:float -> t list
(** Uniformly placed primaries with uniform radii and channels. *)
