(** Disk graphs and distance-2 structures (Appendix A, §4.1).

    Transmitter scenario: each bidder is a transmitter at a planar point
    with a transmission radius; two transmitters conflict when their disks
    intersect.  Derived structures: distance-2 coloring (the square of the
    disk graph, Prop 17) and distance-2 matching (bidders are *links* of the
    disk graph, Cor 10). *)

type t
(** Transmitters: points plus radii. *)

val make : Sa_geom.Point.t array -> float array -> t
(** Radii must be positive and match the point count. *)

val n : t -> int
val point : t -> int -> Sa_geom.Point.t
val radius : t -> int -> float

val conflict_graph : t -> Sa_graph.Graph.t
(** Disks intersect: [d(p_i, p_j) < r_i + r_j]. *)

val ordering : t -> Sa_graph.Ordering.t
(** Decreasing radius (Proposition 15's ordering; ρ ≤ 5). *)

val rho_bound : int
(** 5 (Proposition 15). *)

val distance2_coloring_graph : t -> Sa_graph.Graph.t
(** Conflict between transmitters at hop distance ≤ 2 in the disk graph
    (Prop 17; same decreasing-radius ordering, ρ = O(1)). *)

val distance2_matching : t -> Sa_graph.Graph.t * Sa_graph.Ordering.t * (int * int) array
(** Distance-2 matching instance (Cor 10): bidders are the *edges* of the
    disk graph; two edges conflict unless every connecting path has ≥ 2
    intermediate edges (i.e. they share an endpoint or an edge joins their
    endpoints).  Returns the conflict graph over edges, the Barrett et al.
    ordering by increasing [r(e) = r(u) + r(v)], and the edge list mapping
    bidder index → disk-graph edge. *)

val random : Sa_util.Prng.t -> n:int -> side:float -> rmin:float -> rmax:float -> t
(** Uniform placement with radii [Uniform(rmin, rmax)]. *)
