(** The physical (SINR) interference model (§4.2).

    Signals decay polynomially: a sender at power [p] is received at
    distance [d] with strength [p / d^α].  A set [M] of links sharing a
    channel is feasible when every link's SINR constraint holds:

    [p_i / d(s_i,r_i)^α ≥ β (Σ_{j ∈ M, j≠i} p_j / d(s_j,r_i)^α + ν)]. *)

type params = { alpha : float; beta : float; noise : float }
(** Path-loss exponent [α > 0] (typically 2–6), SINR threshold [β > 0],
    ambient noise [ν ≥ 0]. *)

val default_params : params
(** α = 3, β = 1.5, ν = 0 — a conventional outdoor setting with the paper's
    "noise plays a minor role" assumption (cf. [24]). *)

val validate_params : params -> unit

type power_scheme =
  | Uniform  (** p(ℓ) = 1 *)
  | Linear  (** p(ℓ) = d(ℓ)^α — exactly compensates path loss *)
  | Square_root  (** p(ℓ) = d(ℓ)^(α/2) — the "mean" monotone assignment *)
  | Given of float array  (** explicit per-link powers *)

val powers : Link.system -> params -> power_scheme -> float array
(** Concrete per-link powers (all positive). *)

val is_monotone_scheme : power_scheme -> bool
(** Whether the scheme satisfies the paper's monotonicity constraints
    ([d ≤ d' ⇒ p ≤ p'] and [p/d^α ≥ p'/d'^α]) by construction — true for
    the three symbolic schemes, unknown (false) for [Given]. *)

val received : Link.system -> params -> powers:float array -> from_link:int -> at_receiver_of:int -> float
(** Signal strength [p_j / d(s_j, r_i)^α]. *)

val sinr : Link.system -> params -> powers:float array -> active:int list -> int -> float
(** SINR of link [i] when the links in [active] (which must contain [i])
    transmit simultaneously; [infinity] when interference + noise is 0. *)

val feasible : Link.system -> params -> powers:float array -> int list -> bool
(** All links in the set meet the SINR threshold simultaneously. *)

val affectance : Link.system -> params -> powers:float array -> int -> int -> float
(** [affectance sys prm ~powers j i]: the (capped) fraction of link [i]'s
    SINR budget consumed by link [j],
    [min(1, β·recv(j→i) / (p_i/d_i^α − β·ν))] — the quantity of [24] used in
    Proposition 11. *)

val rayleigh_success_probability :
  Sa_util.Prng.t ->
  Link.system ->
  params ->
  powers:float array ->
  active:int list ->
  trials:int ->
  int ->
  float
(** Monte-Carlo SINR success probability of a link under Rayleigh fading:
    each received power (signal and every interference term) is multiplied
    by an independent Exp(1) channel gain per trial.  The deterministic
    model of §4.2 is the mean-gain abstraction of this; experiment E13 uses
    it to measure how robust deterministic allocations are to fading. *)

val rayleigh_all_success :
  Sa_util.Prng.t ->
  Link.system ->
  params ->
  powers:float array ->
  active:int list ->
  trials:int ->
  float
(** Probability that *every* active link clears its SINR threshold in the
    same fading draw. *)
