type result = { powers : float array; feasible : bool }

let assign_scaled sys prm ~factor set =
  Sinr.validate_params prm;
  if factor <= 0.0 then invalid_arg "Power_control.assign_scaled: factor must be positive";
  let n = Link.n sys in
  let powers = Array.make n 0.0 in
  let by_length_desc =
    List.sort
      (fun a b -> compare (Link.length sys b) (Link.length sys a))
      (List.sort_uniq compare set)
  in
  let assigned = ref [] in
  List.iter
    (fun i ->
      let interference =
        List.fold_left
          (fun acc j -> acc +. Sinr.received sys prm ~powers ~from_link:j ~at_receiver_of:i)
          0.0 !assigned
      in
      let d_alpha = Link.length sys i ** prm.Sinr.alpha in
      let p = factor *. d_alpha *. (prm.Sinr.noise +. interference) in
      (* With zero noise the longest link would get power 0; seed it with a
         linear-scheme power — SINR is scale-invariant in that case. *)
      powers.(i) <- (if p > 0.0 then p else d_alpha);
      assigned := i :: !assigned)
    by_length_desc;
  let feasible =
    match by_length_desc with
    | [] -> true
    | _ -> Sinr.feasible sys prm ~powers by_length_desc
  in
  { powers; feasible }

let assign sys prm set = assign_scaled sys prm ~factor:(2.0 *. prm.Sinr.beta) set
