lib/wireless/power_control.ml: Array Link List Sinr
