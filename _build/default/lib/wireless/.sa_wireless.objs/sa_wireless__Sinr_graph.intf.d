lib/wireless/sinr_graph.mli: Link Sa_graph Sinr
