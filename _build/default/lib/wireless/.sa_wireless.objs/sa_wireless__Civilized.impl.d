lib/wireless/civilized.ml: Array List Sa_geom Sa_graph Sa_util
