lib/wireless/link.ml: Array Sa_geom Sa_graph
