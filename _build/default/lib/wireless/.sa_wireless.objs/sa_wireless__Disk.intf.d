lib/wireless/disk.mli: Sa_geom Sa_graph Sa_util
