lib/wireless/power_control.mli: Link Sinr
