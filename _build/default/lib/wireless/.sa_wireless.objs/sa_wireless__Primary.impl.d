lib/wireless/primary.ml: Array Link List Sa_geom Sa_util Sa_val
