lib/wireless/disk.ml: Array List Sa_geom Sa_graph Sa_util
