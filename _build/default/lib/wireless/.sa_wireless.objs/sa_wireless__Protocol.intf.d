lib/wireless/protocol.mli: Link Sa_graph
