lib/wireless/sinr_graph.ml: Array Float Link Sa_graph Sinr
