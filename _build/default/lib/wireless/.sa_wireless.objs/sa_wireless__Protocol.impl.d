lib/wireless/protocol.ml: Float Link List Sa_geom Sa_graph
