lib/wireless/sinr.mli: Link Sa_util
