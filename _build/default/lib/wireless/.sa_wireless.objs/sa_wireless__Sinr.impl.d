lib/wireless/sinr.ml: Array Float Link List Sa_util
