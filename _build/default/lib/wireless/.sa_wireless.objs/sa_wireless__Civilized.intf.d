lib/wireless/civilized.mli: Sa_geom Sa_graph Sa_util
