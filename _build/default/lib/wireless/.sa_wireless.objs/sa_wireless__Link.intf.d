lib/wireless/link.mli: Sa_geom Sa_graph
