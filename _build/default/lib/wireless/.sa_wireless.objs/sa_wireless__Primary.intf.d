lib/wireless/primary.mli: Link Sa_geom Sa_util Sa_val
