module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering

let prop11_epsilon sys prm ~powers =
  ignore powers;
  let n = Link.n sys in
  let best = ref infinity in
  for i = 0 to n - 1 do
    let di = Link.length sys i in
    for j = 0 to n - 1 do
      if i <> j then begin
        let d_sj_ri = Link.dist_sr sys ~from_sender_of:j ~to_receiver_of:i in
        let ratio = (di /. d_sj_ri) ** prm.Sinr.alpha in
        if ratio < !best then best := ratio
      end
    done
  done;
  if !best = infinity then prm.Sinr.beta /. 2.0 else prm.Sinr.beta /. 2.0 *. !best

let prop11_graph sys prm ~powers =
  Sinr.validate_params prm;
  let n = Link.n sys in
  let eps = prop11_epsilon sys prm ~powers in
  let beta' = prm.Sinr.beta /. (1.0 +. eps) in
  Weighted.of_function n (fun j i ->
      (* weight of ℓ' = j into ℓ = i *)
      let signal_i = powers.(i) /. (Link.length sys i ** prm.Sinr.alpha) in
      let budget = signal_i -. (beta' *. prm.Sinr.noise) in
      if budget <= 0.0 then 1.0
      else
        let recv = Sinr.received sys prm ~powers ~from_link:j ~at_receiver_of:i in
        Float.min 1.0 (beta' *. recv /. budget))

let ordering sys = Link.ordering_by_length ~decreasing:true sys

let tau prm =
  1.0 /. (2.0 *. (3.0 ** prm.Sinr.alpha) *. ((4.0 *. prm.Sinr.beta) +. 2.0))

let thm13_graph ?weight_scale sys prm =
  Sinr.validate_params prm;
  let scale = match weight_scale with Some s -> s | None -> 1.0 /. tau prm in
  if scale <= 0.0 then invalid_arg "Sinr_graph.thm13_graph: scale must be positive";
  let n = Link.n sys in
  let pi = ordering sys in
  let alpha = prm.Sinr.alpha in
  Weighted.of_function n (fun l l' ->
      if not (Ordering.precedes pi l l') then 0.0
      else begin
        (* ℓ = (s,r) the longer link, ℓ' = (s',r') the shorter one *)
        let dl = Link.length sys l ** alpha in
        let d_s_r' = Link.dist_sr sys ~from_sender_of:l ~to_receiver_of:l' in
        let d_s'_r = Link.dist_sr sys ~from_sender_of:l' ~to_receiver_of:l in
        let term1 = Float.min 1.0 (dl /. (d_s_r' ** alpha)) in
        let term2 = Float.min 1.0 (dl /. (d_s'_r ** alpha)) in
        scale *. (term1 +. term2)
      end)

let sinr_iff_independent sys prm ~powers set =
  let wg = prop11_graph sys prm ~powers in
  (Sinr.feasible sys prm ~powers set, Weighted.is_independent wg set)
