(** Communication links (sender/receiver pairs) in a metric space.

    Link-based scenarios (Sections 4.1–4.2) have one bidder per link; the
    conflict structure is derived from the geometry of the links.  A
    [system] owns the metric and the link endpoints: link [i]'s sender and
    receiver are node indices into the metric. *)

type t = { sender : int; receiver : int }

type system

val make : Sa_geom.Metric.t -> t array -> system
(** Endpoint indices must lie inside the metric; sender ≠ receiver. *)

val of_point_pairs : (Sa_geom.Point.t * Sa_geom.Point.t) array -> system
(** Planar convenience: builds the Euclidean metric over all endpoints
    (2 nodes per link). *)

val metric : system -> Sa_geom.Metric.t
val n : system -> int
(** Number of links. *)

val link : system -> int -> t

val length : system -> int -> float
(** [d(s_i, r_i)]. *)

val dist_sr : system -> from_sender_of:int -> to_receiver_of:int -> float
(** [d(s_j, r_i)] — distance from link [j]'s sender to link [i]'s receiver,
    the quantity in every interference constraint. *)

val ordering_by_length : ?decreasing:bool -> system -> Sa_graph.Ordering.t
(** Orders links by length (increasing by default); ties by index. *)
