module Metric = Sa_geom.Metric

type t = { sender : int; receiver : int }

type system = { metric : Metric.t; links : t array }

let make metric links =
  let nodes = Metric.size metric in
  Array.iter
    (fun { sender; receiver } ->
      if sender < 0 || sender >= nodes || receiver < 0 || receiver >= nodes then
        invalid_arg "Link.make: endpoint outside the metric";
      if sender = receiver then invalid_arg "Link.make: sender = receiver")
    links;
  { metric; links = Array.copy links }

let of_point_pairs pairs =
  let points =
    Array.concat
      (Array.to_list (Array.map (fun (s, r) -> [| s; r |]) pairs))
  in
  let links =
    Array.init (Array.length pairs) (fun i -> { sender = 2 * i; receiver = (2 * i) + 1 })
  in
  make (Metric.of_points points) links

let metric sys = sys.metric
let n sys = Array.length sys.links

let link sys i = sys.links.(i)

let length sys i =
  let { sender; receiver } = sys.links.(i) in
  Metric.dist sys.metric sender receiver

let dist_sr sys ~from_sender_of ~to_receiver_of =
  Metric.dist sys.metric sys.links.(from_sender_of).sender
    sys.links.(to_receiver_of).receiver

let ordering_by_length ?(decreasing = false) sys =
  let key i = if decreasing then -.length sys i else length sys i in
  Sa_graph.Ordering.by_key (n sys) key
