(** (r,s)-civilized graphs (Proposition 18).

    A graph is (r,s)-civilized when its vertices can be placed in the plane
    with pairwise separation at least [s] and edges only between vertices at
    distance at most [r].  Distance-2 coloring on such graphs has inductive
    independence at most [(4r/s + 2)²] — for *any* ordering, which the
    experiments verify with random orderings. *)

type t

val make : Sa_geom.Point.t array -> r:float -> s:float -> Sa_graph.Graph.t -> t
(** Validates the civilized conditions: pairwise separation ≥ [s] and all
    edges of length ≤ [r]. *)

val random :
  Sa_util.Prng.t -> n:int -> side:float -> r:float -> s:float -> edge_prob:float -> t
(** Poisson-dart placement with minimum separation [s] (placement may yield
    fewer than [n] points if the square is too crowded); each admissible pair
    (distance ≤ [r]) becomes an edge with probability [edge_prob]. *)

val graph : t -> Sa_graph.Graph.t
val points : t -> Sa_geom.Point.t array
val n : t -> int

val distance2_coloring_graph : t -> Sa_graph.Graph.t
(** Conflicts between vertices at hop distance ≤ 2. *)

val rho_bound : r:float -> s:float -> float
(** [(4r/s + 2)²] per the Proposition 18 proof. *)
