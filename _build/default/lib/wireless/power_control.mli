(** Kesselheim-style power control (Theorem 13's second stage).

    Given a set of links that is independent under the Theorem-13 τ-weights,
    assign transmission powers making the whole set SINR-feasible.  The
    procedure processes links from longest to shortest; each link transmits
    with just enough power (times a safety factor [2β]) to overcome ambient
    noise plus the interference already committed by the longer links:

    [p_i = 2β·d_i^α·(ν + Σ_{j longer} p_j / d(s_j, r_i)^α)].

    The independence condition bounds the interference the *shorter* links
    later inflict on [i], which is what makes the set feasible (Kesselheim
    [23], Theorem 3 — re-implemented here, verified empirically in the test
    suite and experiment E5). *)

type result = {
  powers : float array;  (** per-link powers; links outside the set get 0 *)
  feasible : bool;  (** SINR check of the full set under [powers] *)
}

val assign : Link.system -> Sinr.params -> int list -> result
(** [assign sys prm set] — powers for the links of [set]. *)

val assign_scaled : Link.system -> Sinr.params -> factor:float -> int list -> result
(** Same with an explicit safety factor replacing [2β] (ablation knob). *)
