module Prng = Sa_util.Prng
module Floats = Sa_util.Floats
module Point = Sa_geom.Point
module Placement = Sa_geom.Placement
module Inductive = Sa_graph.Inductive
module Valuation = Sa_val.Valuation
module Vgen = Sa_val.Gen
module Link = Sa_wireless.Link
module Protocol = Sa_wireless.Protocol
module Instance = Sa_core.Instance
module Allocation = Sa_core.Allocation
module Lp = Sa_core.Lp_relaxation
module Rounding = Sa_core.Rounding
module Greedy = Sa_core.Greedy
module Lavi_swamy = Sa_mech.Lavi_swamy

type algorithm = Lp_rounding | Greedy | Truthful_mechanism

type config = {
  epochs : int;
  arrivals_per_epoch : float;
  side : float;
  k : int;
  delta : float;
  patience : int;
  urgency : float;
  algorithm : algorithm;
}

let default_config =
  {
    epochs = 40;
    arrivals_per_epoch = 6.0;
    side = 12.0;
    k = 4;
    delta = 1.0;
    patience = 5;
    urgency = 1.1;
    algorithm = Lp_rounding;
  }

type epoch_stats = {
  epoch : int;
  active : int;
  served : int;
  abandoned : int;
  welfare : float;
  revenue : float;
  lp_value : float;
  mean_wait_served : float;
}

type summary = {
  config : config;
  per_epoch : epoch_stats list;
  total_arrived : int;
  total_served : int;
  total_abandoned : int;
  total_welfare : float;
  total_revenue : float;
  mean_wait : float;
  service_rate : float;
  wait_fairness : float;
}

type bidder = {
  link : Point.t * Point.t;
  base_valuation : Valuation.t;
  mutable wait : int;  (* epochs already waited *)
}

let validate cfg =
  if cfg.epochs < 1 then invalid_arg "Market.run: epochs must be >= 1";
  if cfg.arrivals_per_epoch <= 0.0 then
    invalid_arg "Market.run: arrivals_per_epoch must be positive";
  if cfg.k < 1 then invalid_arg "Market.run: k must be >= 1";
  if cfg.patience < 0 then invalid_arg "Market.run: patience must be >= 0";
  if cfg.urgency < 1.0 then invalid_arg "Market.run: urgency must be >= 1"

let fresh_bidder g cfg =
  let pairs = Placement.random_links g ~n:1 ~side:cfg.side ~min_len:0.5 ~max_len:1.5 in
  {
    link = pairs.(0);
    base_valuation =
      Vgen.random_xor g ~k:cfg.k ~bids:3 ~max_bundle:(min 2 cfg.k)
        ~dist:(Vgen.Uniform (1.0, 10.0));
    wait = 0;
  }

(* Deadline pressure: a bidder who has waited w epochs bids urgency^w times
   its base valuation. *)
let current_valuation cfg b = Valuation.scale b.base_valuation (cfg.urgency ** float_of_int b.wait)

let build_instance cfg active =
  let links = Array.of_list (List.map (fun b -> b.link) active) in
  let sys = Link.of_point_pairs links in
  let graph = Protocol.conflict_graph sys ~delta:cfg.delta in
  let pi = Protocol.ordering sys in
  let rho =
    Float.max 1.0
      (Inductive.rho_unweighted ~node_limit:200_000 graph pi).Inductive.rho
  in
  let bidders = Array.of_list (List.map (current_valuation cfg) active) in
  Instance.make ~conflict:(Instance.Unweighted graph) ~k:cfg.k ~bidders ~ordering:pi
    ~rho

let allocate g cfg inst =
  match cfg.algorithm with
  | Greedy -> (Greedy.by_value inst, Array.make (Instance.n inst) 0.0, 0.0)
  | Lp_rounding ->
      let frac = Lp.solve_explicit inst in
      let alloc = Rounding.solve_adaptive ~trials:4 g inst frac in
      (alloc, Array.make (Instance.n inst) 0.0, frac.Lp.objective)
  | Truthful_mechanism ->
      let alpha_hint = 2.0 *. Rounding.guarantee inst in
      let o = Lavi_swamy.run ~alpha:alpha_hint ~max_rounds:25 ~pricing_trials:6 g inst in
      let alloc, payments = Lavi_swamy.sample g inst o in
      (alloc, payments, o.Lavi_swamy.fractional.Lp.objective)

let run ?(seed = 1) cfg =
  validate cfg;
  (* Separate streams so the arrival process is identical across allocation
     algorithms (which consume varying amounts of randomness). *)
  let master = Prng.create ~seed in
  let g = Prng.split master in
  let alloc_rng = Prng.split master in
  let active = ref [] in
  let stats = ref [] in
  let total_arrived = ref 0 in
  let total_served = ref 0 and total_abandoned = ref 0 in
  let total_welfare = ref 0.0 and total_revenue = ref 0.0 in
  let total_wait_served = ref 0 in
  let served_waits = ref [] in
  for epoch = 1 to cfg.epochs do
    (* arrivals *)
    let arrivals = Prng.poisson g cfg.arrivals_per_epoch in
    total_arrived := !total_arrived + arrivals;
    for _ = 1 to arrivals do
      active := fresh_bidder g cfg :: !active
    done;
    let participants = Array.of_list (List.rev !active) in
    if Array.length participants = 0 then
      stats :=
        {
          epoch;
          active = 0;
          served = 0;
          abandoned = 0;
          welfare = 0.0;
          revenue = 0.0;
          lp_value = 0.0;
          mean_wait_served = 0.0;
        }
        :: !stats
    else begin
      let inst = build_instance cfg (Array.to_list participants) in
      let alloc, payments, lp_value = allocate alloc_rng cfg inst in
      assert (Allocation.is_feasible inst alloc);
      let welfare = Allocation.value inst alloc in
      let revenue = Array.fold_left ( +. ) 0.0 payments in
      (* winners leave; losers age and may abandon *)
      let served = ref 0 and abandoned = ref 0 in
      let wait_served = ref 0 in
      let survivors = ref [] in
      Array.iteri
        (fun i b ->
          if not (Sa_val.Bundle.is_empty alloc.(i)) then begin
            incr served;
            wait_served := !wait_served + b.wait;
            served_waits := float_of_int b.wait :: !served_waits
          end
          else begin
            b.wait <- b.wait + 1;
            if b.wait > cfg.patience then incr abandoned
            else survivors := b :: !survivors
          end)
        participants;
      active := List.rev !survivors;
      total_served := !total_served + !served;
      total_abandoned := !total_abandoned + !abandoned;
      total_welfare := !total_welfare +. welfare;
      total_revenue := !total_revenue +. revenue;
      total_wait_served := !total_wait_served + !wait_served;
      stats :=
        {
          epoch;
          active = Array.length participants;
          served = !served;
          abandoned = !abandoned;
          welfare;
          revenue;
          lp_value;
          mean_wait_served =
            (if !served = 0 then 0.0
             else float_of_int !wait_served /. float_of_int !served);
        }
        :: !stats
    end
  done;
  let finished = !total_served + !total_abandoned in
  {
    config = cfg;
    per_epoch = List.rev !stats;
    total_arrived = !total_arrived;
    total_served = !total_served;
    total_abandoned = !total_abandoned;
    total_welfare = !total_welfare;
    total_revenue = !total_revenue;
    mean_wait =
      (if !total_served = 0 then 0.0
       else float_of_int !total_wait_served /. float_of_int !total_served);
    service_rate =
      (if finished = 0 then 1.0
       else float_of_int !total_served /. float_of_int finished);
    (* promptness = 1/(1+wait); Jain index over served bidders *)
    wait_fairness =
      Sa_util.Stats.jain_index
        (Array.of_list (List.map (fun w -> 1.0 /. (1.0 +. w)) !served_waits));
  }

let algorithm_name = function
  | Lp_rounding -> "LP rounding (adaptive)"
  | Greedy -> "greedy"
  | Truthful_mechanism -> "Lavi-Swamy truthful mechanism"

let pp_summary fmt s =
  Format.fprintf fmt "market simulation: %d epochs, %s@." s.config.epochs
    (algorithm_name s.config.algorithm);
  Format.fprintf fmt "  arrived %d, served %d, abandoned %d (service rate %.1f%%)@."
    s.total_arrived s.total_served s.total_abandoned (100.0 *. s.service_rate);
  Format.fprintf fmt "  total welfare %.1f, total revenue %.2f, mean wait %.2f epochs@."
    s.total_welfare s.total_revenue s.mean_wait;
  Format.fprintf fmt "  wait fairness (Jain over promptness): %.3f@." s.wait_fairness;
  let actives = List.map (fun e -> float_of_int e.active) s.per_epoch in
  if actives <> [] then
    Format.fprintf fmt "  backlog: mean %.1f active bidders/epoch, max %.0f@."
      (Sa_util.Stats.mean (Array.of_list actives))
      (List.fold_left Float.max 0.0 actives);
  ignore Floats.default_eps
