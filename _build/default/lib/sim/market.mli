(** Epoch-based secondary spectrum market simulation.

    The paper's premise ("eBay in the Sky", §1) is an auction *run on a
    regular basis*: short-term licences are re-auctioned every epoch as
    demand arrives and leaves.  This module simulates that loop over the
    protocol interference model:

    - each epoch, new links arrive (Poisson-ish) and bid;
    - the operator builds the conflict graph over the currently active
      links and runs a chosen allocation rule (optionally the truthful
      Lavi–Swamy mechanism, collecting payments);
    - winners are served and depart; losers wait, getting more impatient
      (their valuations scale up by [urgency] per epoch, modelling deadline
      pressure) until they abandon after [patience] epochs.

    The simulation records per-epoch and aggregate metrics: welfare,
    revenue, served/abandoned counts, waiting times, and channel-reuse
    statistics.  Fully deterministic given the seed. *)

type algorithm =
  | Lp_rounding  (** adaptive-scale LP rounding (the paper's algorithm) *)
  | Greedy  (** greedy-by-value baseline *)
  | Truthful_mechanism
      (** Lavi–Swamy lottery + scaled VCG payments (revenue > 0) *)

type config = {
  epochs : int;
  arrivals_per_epoch : float;  (** mean new links per epoch *)
  side : float;  (** deployment square side *)
  k : int;  (** channels auctioned each epoch *)
  delta : float;  (** protocol-model guard parameter *)
  patience : int;  (** epochs a bidder waits before abandoning *)
  urgency : float;  (** per-epoch valuation scaling while waiting, ≥ 1 *)
  algorithm : algorithm;
}

val default_config : config
(** 40 epochs, 6 arrivals/epoch, 12×12 km, k = 4, Δ = 1, patience 5,
    urgency 1.1, LP rounding. *)

type epoch_stats = {
  epoch : int;
  active : int;  (** bidders participating this epoch *)
  served : int;  (** winners this epoch *)
  abandoned : int;  (** bidders who hit their patience limit *)
  welfare : float;
  revenue : float;  (** 0 unless the truthful mechanism runs *)
  lp_value : float;
  mean_wait_served : float;  (** epochs waited by this epoch's winners *)
}

type summary = {
  config : config;
  per_epoch : epoch_stats list;
  total_arrived : int;
  total_served : int;
  total_abandoned : int;
  total_welfare : float;
  total_revenue : float;
  mean_wait : float;  (** over all served bidders *)
  service_rate : float;  (** served / (served + abandoned) *)
  wait_fairness : float;
      (** Jain's index over served bidders' promptness [1/(1+wait)]:
          1 = everyone served equally fast *)
}

val run : ?seed:int -> config -> summary
(** Deterministic in [seed] (default 1). *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line human-readable report. *)
