lib/sim/market.ml: Array Float Format List Sa_core Sa_geom Sa_graph Sa_mech Sa_util Sa_val Sa_wireless
