lib/sim/market.mli: Format
