(** The classical edge-based independent-set LP (§2.1) as a baseline.

    [max Σ b_v x_v  s.t.  x_u + x_v ≤ 1 on edges, 0 ≤ x ≤ 1].

    Approximates weighted independent set within [(d̄+1)/2] but has
    integrality gap [n/2] on cliques — the motivating contrast for the
    paper's ρ-based LP (experiment E8). *)

type result = {
  lp_value : float;
  fractional : float array;
  rounded : int list;  (** an independent set obtained by LP-guided greedy *)
  rounded_value : float;
}

val solve : Sa_graph.Graph.t -> weights:float array -> result
(** Weights must be non-negative. *)
