module Graph = Sa_graph.Graph
module Weighted = Sa_graph.Weighted
module Ordering = Sa_graph.Ordering
module Valuation = Sa_val.Valuation

type conflict =
  | Unweighted of Graph.t
  | Edge_weighted of Weighted.t
  | Per_channel of Graph.t array
  | Per_channel_weighted of Weighted.t array

type t = {
  conflict : conflict;
  k : int;
  bidders : Valuation.t array;
  ordering : Ordering.t;
  rho : float;
  available : Sa_val.Bundle.t array;
}

let conflict_size = function
  | Unweighted g -> Graph.n g
  | Edge_weighted wg -> Weighted.n wg
  | Per_channel gs ->
      if Array.length gs = 0 then invalid_arg "Instance: Per_channel needs >= 1 graph";
      let n0 = Graph.n gs.(0) in
      Array.iter
        (fun g -> if Graph.n g <> n0 then invalid_arg "Instance: Per_channel size mismatch")
        gs;
      n0
  | Per_channel_weighted wgs ->
      if Array.length wgs = 0 then
        invalid_arg "Instance: Per_channel_weighted needs >= 1 graph";
      let n0 = Weighted.n wgs.(0) in
      Array.iter
        (fun wg ->
          if Weighted.n wg <> n0 then
            invalid_arg "Instance: Per_channel_weighted size mismatch")
        wgs;
      n0

let make ~conflict ~k ~bidders ~ordering ~rho =
  let n = conflict_size conflict in
  if Array.length bidders <> n then invalid_arg "Instance.make: bidders size mismatch";
  if Ordering.n ordering <> n then invalid_arg "Instance.make: ordering size mismatch";
  if k < 1 || k > Sa_val.Bundle.max_channels then invalid_arg "Instance.make: bad k";
  let available = Array.make n (Sa_val.Bundle.full k) in
  (match conflict with
  | Per_channel gs ->
      if Array.length gs <> k then
        invalid_arg "Instance.make: Per_channel needs exactly k graphs"
  | Per_channel_weighted wgs ->
      if Array.length wgs <> k then
        invalid_arg "Instance.make: Per_channel_weighted needs exactly k graphs"
  | Unweighted _ | Edge_weighted _ -> ());
  if rho < 1.0 then invalid_arg "Instance.make: rho must be >= 1";
  Array.iter (fun b -> Valuation.validate b ~k) bidders;
  { conflict; k; bidders; ordering; rho; available }

let with_available t masks =
  if Array.length masks <> Array.length t.bidders then
    invalid_arg "Instance.with_available: size mismatch";
  Array.iter
    (fun m ->
      if not (Sa_val.Bundle.subset m (Sa_val.Bundle.full t.k)) then
        invalid_arg "Instance.with_available: mask uses channel >= k")
    masks;
  { t with available = Array.copy masks }

let channel_available t ~bidder ~channel =
  if channel < 0 || channel >= t.k then
    invalid_arg "Instance.channel_available: channel out of range";
  Sa_val.Bundle.mem channel t.available.(bidder)

let restrict_bundle t ~bidder bundle = Sa_val.Bundle.inter bundle t.available.(bidder)

let n t = Array.length t.bidders

let wbar t ~channel u v =
  if channel < 0 || channel >= t.k then invalid_arg "Instance.wbar: channel out of range";
  if u = v then 0.0
  else
    match t.conflict with
    | Unweighted g -> if Graph.mem_edge g u v then 1.0 else 0.0
    | Edge_weighted wg -> Weighted.wbar wg u v
    | Per_channel gs -> if Graph.mem_edge gs.(channel) u v then 1.0 else 0.0
    | Per_channel_weighted wgs -> Weighted.wbar wgs.(channel) u v

let is_asymmetric t =
  match t.conflict with
  | Per_channel _ | Per_channel_weighted _ -> true
  | Unweighted _ | Edge_weighted _ -> false

let independent_on_channel t ~channel set =
  if channel < 0 || channel >= t.k then
    invalid_arg "Instance.independent_on_channel: channel out of range";
  match t.conflict with
  | Unweighted g -> Graph.is_independent g set
  | Edge_weighted wg -> Weighted.is_independent wg set
  | Per_channel gs -> Graph.is_independent gs.(channel) set
  | Per_channel_weighted wgs -> Weighted.is_independent wgs.(channel) set

let max_welfare_upper_bound t =
  Array.fold_left
    (fun acc b -> acc +. Valuation.max_value b ~k:t.k)
    0.0 t.bidders
