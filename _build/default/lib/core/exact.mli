(** Exact optimum by branch and bound (small instances only).

    Enumerates, bidder by bidder, each support bundle plus the empty bundle,
    pruning with the remaining bidders' maximum values.  Used to measure the
    true approximation ratio of the rounding algorithms (experiments E1/E8)
    and to compute exact VCG outcomes.  Complexity is exponential; callers
    should keep [n·|support|] small (≈ 20 bidders with a handful of bids). *)

type result = { allocation : Allocation.t; value : float; exact : bool }

val solve : ?node_limit:int -> Instance.t -> result
(** [exact = false] when the node budget (default 5_000_000) ran out; the
    returned allocation is still feasible and at least as good as greedy. *)
