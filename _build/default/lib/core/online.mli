(** Online allocation: bidders arrive one at a time, decisions are
    irrevocable (cf. the paper's related work [8], online capacity
    maximization).

    The offline algorithms see all bids before allocating; an operator
    running a continuous admission process cannot.  This module provides
    two online rules over a *known* conflict structure (the instance fixes
    geometry/interference; only the bid sequence is revealed online):

    - {!first_fit}: allocate each arriving bidder its most valuable
      feasible support bundle, if any.
    - {!threshold}: like first-fit, but only admit a bidder whose best
      feasible bundle is worth at least [theta] — the classic device for
      hedging against a valuable bidder arriving late.  [theta = 0]
      degenerates to first-fit.

    Both produce feasible allocations for any arrival order; experiment
    E12 measures their competitive ratio against the offline optimum. *)

type result = {
  allocation : Allocation.t;
  value : float;
  admitted : int;  (** bidders given a non-empty bundle *)
  rejected_by_threshold : int;
      (** bidders whose best feasible bundle existed but fell below θ *)
}

val first_fit : Instance.t -> order:int array -> result
(** [order] is the arrival permutation of the bidders. *)

val threshold : Instance.t -> order:int array -> theta:float -> result

val adaptive_threshold : Instance.t -> order:int array -> result
(** A single-pass rule that needs no tuned θ: admits bidder [v] iff its
    best feasible bundle is worth at least the running mean of the values
    seen so far (admitted or not).  A pragmatic middle ground exercised by
    E12. *)
