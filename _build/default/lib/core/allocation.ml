module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation

type t = Bundle.t array

let empty n = Array.make n Bundle.empty

let bidder_value inst alloc v = Valuation.value inst.Instance.bidders.(v) alloc.(v)

let value inst alloc =
  if Array.length alloc <> Instance.n inst then
    invalid_arg "Allocation.value: size mismatch";
  let total = ref 0.0 in
  Array.iteri (fun v _ -> total := !total +. bidder_value inst alloc v) alloc;
  !total

let holders alloc ~k ~channel =
  if channel < 0 || channel >= k then invalid_arg "Allocation.holders: channel out of range";
  let acc = ref [] in
  Array.iteri (fun v bundle -> if Bundle.mem channel bundle then acc := v :: !acc) alloc;
  List.rev !acc

let violations inst alloc =
  if Array.length alloc <> Instance.n inst then
    invalid_arg "Allocation.violations: size mismatch";
  let k = inst.Instance.k in
  let bad = ref [] in
  for channel = k - 1 downto 0 do
    let hs = holders alloc ~k ~channel in
    let unavailable =
      List.filter
        (fun v -> not (Instance.channel_available inst ~bidder:v ~channel))
        hs
    in
    if
      unavailable <> []
      || not (Instance.independent_on_channel inst ~channel hs)
    then bad := (channel, hs) :: !bad
  done;
  !bad

let is_feasible inst alloc = violations inst alloc = []

let allocated_bidders alloc =
  let acc = ref [] in
  Array.iteri (fun v bundle -> if not (Bundle.is_empty bundle) then acc := v :: !acc) alloc;
  List.rev !acc

let pp inst fmt alloc =
  Array.iteri
    (fun v bundle ->
      if not (Bundle.is_empty bundle) then
        Format.fprintf fmt "bidder %d: %a (value %.3f)@." v Bundle.pp bundle
          (bidder_value inst alloc v))
    alloc
