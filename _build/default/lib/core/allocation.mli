(** Channel allocations [S : V → 2^{[k]}] and their verification.

    The social welfare of an allocation is [Σ_v b_{v,S(v)}]; it is feasible
    when every channel's holder set may share that channel (Problem 1). *)

type t = Sa_val.Bundle.t array
(** [alloc.(v)] is the bundle of bidder [v]. *)

val empty : int -> t

val value : Instance.t -> t -> float
(** Social welfare. *)

val bidder_value : Instance.t -> t -> int -> float

val holders : t -> k:int -> channel:int -> int list
(** Bidders holding [channel]. *)

val is_feasible : Instance.t -> t -> bool
(** Every channel's holders are independent under the instance's conflict
    structure. *)

val violations : Instance.t -> t -> (int * int list) list
(** Per-channel offending holder sets (channel, holders) — empty iff
    feasible; for error reporting in tests. *)

val allocated_bidders : t -> int list
(** Bidders with a non-empty bundle. *)

val pp : Instance.t -> Format.formatter -> t -> unit
(** One line per allocated bidder: index, bundle, value. *)
