module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation

(* Can bidder [v] take [bundle] on top of [alloc] without breaking any
   channel?  Checks only channels in [bundle]; future assignments are the
   caller's concern (assignments only ever add interference, so checking the
   affected channels is exact for incremental construction). *)
let fits inst alloc v bundle =
  alloc.(v) <- bundle;
  let ok =
    Bundle.fold
      (fun j acc ->
        acc
        && Instance.independent_on_channel inst ~channel:j
             (Allocation.holders alloc ~k:inst.Instance.k ~channel:j))
      bundle true
  in
  alloc.(v) <- Bundle.empty;
  ok

let allocate_first_fit inst order bids_of =
  let alloc = Allocation.empty (Instance.n inst) in
  List.iter
    (fun v ->
      let rec try_bids = function
        | [] -> ()
        | (bundle, _) :: rest ->
            if fits inst alloc v bundle then alloc.(v) <- bundle else try_bids rest
      in
      try_bids (bids_of v))
    order;
  alloc

let sorted_support inst v ~key =
  Valuation.support inst.Instance.bidders.(v) ~k:inst.Instance.k
  |> List.filter (fun (bundle, _) ->
         Bundle.equal bundle (Instance.restrict_bundle inst ~bidder:v bundle))
  |> List.sort (fun (b1, v1) (b2, v2) -> compare (key b2 v2) (key b1 v1))

let by_value inst =
  let n = Instance.n inst in
  let best v = Valuation.max_value inst.Instance.bidders.(v) ~k:inst.Instance.k in
  let order =
    List.sort (fun a b -> compare (best b) (best a)) (List.init n Fun.id)
  in
  allocate_first_fit inst order (fun v -> sorted_support inst v ~key:(fun _ value -> value))

let by_density inst =
  let n = Instance.n inst in
  let density b value = value /. float_of_int (max 1 (Bundle.card b)) in
  let best v =
    sorted_support inst v ~key:density
    |> function [] -> 0.0 | (b, value) :: _ -> density b value
  in
  let order =
    List.sort (fun a b -> compare (best b) (best a)) (List.init n Fun.id)
  in
  allocate_first_fit inst order (fun v -> sorted_support inst v ~key:density)

let from_lp inst frac =
  let alloc = Allocation.empty (Instance.n inst) in
  let scored =
    Array.to_list frac.Lp_relaxation.columns
    |> List.map (fun c -> (Lp_relaxation.column_value inst c, c))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  List.iter
    (fun (_, c) ->
      let v = c.Lp_relaxation.bidder in
      if Bundle.is_empty alloc.(v) && fits inst alloc v c.Lp_relaxation.bundle then
        alloc.(v) <- c.Lp_relaxation.bundle)
    scored;
  alloc
