module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation

type result = { allocation : Allocation.t; value : float; exact : bool }

exception Budget_exhausted

let solve ?(node_limit = 5_000_000) inst =
  let n = Instance.n inst in
  let k = inst.Instance.k in
  let supports =
    Array.init n (fun v ->
        Valuation.support inst.Instance.bidders.(v) ~k
        |> List.filter (fun (bundle, _) ->
               Bundle.equal bundle (Instance.restrict_bundle inst ~bidder:v bundle))
        |> List.sort (fun (_, a) (_, b) -> compare b a))
  in
  (* Remaining-value suffix bounds for pruning. *)
  let best_val =
    Array.map (function [] -> 0.0 | (_, v) :: _ -> v) supports
  in
  let suffix = Array.make (n + 1) 0.0 in
  for v = n - 1 downto 0 do
    suffix.(v) <- suffix.(v + 1) +. best_val.(v)
  done;
  let alloc = Allocation.empty n in
  let best_alloc = ref (Allocation.empty n) and best = ref 0.0 in
  let nodes = ref 0 in
  (* Assigning bundles never relaxes constraints, so a partial assignment
     that breaks some channel can be pruned permanently. *)
  let feasible_so_far v bundle =
    alloc.(v) <- bundle;
    let ok =
      Bundle.fold
        (fun j acc ->
          acc
          && Instance.independent_on_channel inst ~channel:j
               (Allocation.holders alloc ~k ~channel:j))
        bundle true
    in
    alloc.(v) <- Bundle.empty;
    ok
  in
  let rec go v acc_value =
    incr nodes;
    if !nodes > node_limit then raise Budget_exhausted;
    if v = n then begin
      if acc_value > !best then begin
        best := acc_value;
        best_alloc := Array.copy alloc
      end
    end
    else if acc_value +. suffix.(v) > !best then begin
      List.iter
        (fun (bundle, _listed_value) ->
          if feasible_so_far v bundle then begin
            alloc.(v) <- bundle;
            (* Use the true valuation (free-disposal closure for XOR bids),
               which can exceed the listed value of the bundle. *)
            let true_value = Valuation.value inst.Instance.bidders.(v) bundle in
            go (v + 1) (acc_value +. true_value);
            alloc.(v) <- Bundle.empty
          end)
        supports.(v);
      (* the empty bundle *)
      go (v + 1) acc_value
    end
  in
  let exact =
    try
      go 0 0.0;
      true
    with Budget_exhausted -> false
  in
  if not exact then begin
    let g = Greedy.by_value inst in
    let gv = Allocation.value inst g in
    if gv > !best then begin
      best := gv;
      best_alloc := g
    end
  end;
  { allocation = !best_alloc; value = !best; exact }
