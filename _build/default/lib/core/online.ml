module Bundle = Sa_val.Bundle
module Valuation = Sa_val.Valuation

type result = {
  allocation : Allocation.t;
  value : float;
  admitted : int;
  rejected_by_threshold : int;
}

let check_order inst order =
  let n = Instance.n inst in
  if Array.length order <> n then invalid_arg "Online: order size mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then invalid_arg "Online: order not a permutation";
      seen.(v) <- true)
    order

(* Best feasible support bundle for [v] against the current allocation,
   by decreasing listed value; respects availability masks. *)
let best_feasible inst alloc v =
  let supports =
    Valuation.support inst.Instance.bidders.(v) ~k:inst.Instance.k
    |> List.filter (fun (bundle, _) ->
           Bundle.equal bundle (Instance.restrict_bundle inst ~bidder:v bundle))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let fits bundle =
    alloc.(v) <- bundle;
    let ok =
      Bundle.fold
        (fun j acc ->
          acc
          && Instance.independent_on_channel inst ~channel:j
               (Allocation.holders alloc ~k:inst.Instance.k ~channel:j))
        bundle true
    in
    alloc.(v) <- Bundle.empty;
    ok
  in
  List.find_opt (fun (bundle, _) -> fits bundle) supports

let run_with inst ~order ~admit =
  check_order inst order;
  let alloc = Allocation.empty (Instance.n inst) in
  let admitted = ref 0 and rejected = ref 0 in
  Array.iter
    (fun v ->
      match best_feasible inst alloc v with
      | None -> ()
      | Some (bundle, value) ->
          if admit v value then begin
            alloc.(v) <- bundle;
            incr admitted
          end
          else incr rejected)
    order;
  {
    allocation = alloc;
    value = Allocation.value inst alloc;
    admitted = !admitted;
    rejected_by_threshold = !rejected;
  }

let first_fit inst ~order = run_with inst ~order ~admit:(fun _ _ -> true)

let threshold inst ~order ~theta =
  if theta < 0.0 then invalid_arg "Online.threshold: theta must be non-negative";
  run_with inst ~order ~admit:(fun _ value -> value >= theta)

let adaptive_threshold inst ~order =
  check_order inst order;
  (* Track the running mean of every arriving bidder's best *standalone*
     value (its maximum over the support), which is observable on arrival
     regardless of feasibility. *)
  let seen_total = ref 0.0 and seen_count = ref 0 in
  run_with inst ~order ~admit:(fun v value ->
      let standalone = Valuation.max_value inst.Instance.bidders.(v) ~k:inst.Instance.k in
      seen_total := !seen_total +. standalone;
      incr seen_count;
      let mean = !seen_total /. float_of_int !seen_count in
      value >= mean)
