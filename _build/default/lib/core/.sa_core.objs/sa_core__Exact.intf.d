lib/core/exact.mli: Allocation Instance
