lib/core/oracle_solver.mli: Instance Lp_relaxation
