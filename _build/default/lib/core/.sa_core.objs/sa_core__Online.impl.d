lib/core/online.ml: Allocation Array Instance List Sa_val
