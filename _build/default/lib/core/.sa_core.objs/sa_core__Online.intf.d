lib/core/online.mli: Allocation Instance
