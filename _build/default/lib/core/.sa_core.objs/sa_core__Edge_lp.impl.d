lib/core/edge_lp.ml: Array List Sa_graph Sa_lp
