lib/core/parallel.mli: Allocation Instance Lp_relaxation
