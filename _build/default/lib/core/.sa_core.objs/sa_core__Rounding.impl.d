lib/core/rounding.ml: Allocation Array Instance List Lp_relaxation Sa_graph Sa_util Sa_val
