lib/core/parallel.ml: Allocation Array Derand Domain Instance List Rounding Sa_util
