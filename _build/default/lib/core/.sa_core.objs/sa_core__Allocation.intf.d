lib/core/allocation.mli: Format Instance Sa_val
