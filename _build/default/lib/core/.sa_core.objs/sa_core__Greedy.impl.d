lib/core/greedy.ml: Allocation Array Fun Instance List Lp_relaxation Sa_val
