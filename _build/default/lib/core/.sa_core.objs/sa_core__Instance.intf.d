lib/core/instance.mli: Sa_graph Sa_val
