lib/core/metrics.mli: Allocation Format Instance
