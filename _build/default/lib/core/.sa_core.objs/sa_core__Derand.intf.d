lib/core/derand.mli: Allocation Instance Lp_relaxation
