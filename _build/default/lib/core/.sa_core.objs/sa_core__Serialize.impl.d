lib/core/serialize.ml: Allocation Array Buffer Fun Instance List Printf Sa_graph Sa_val String
