lib/core/hardness.ml: Array Instance List Sa_graph Sa_val
