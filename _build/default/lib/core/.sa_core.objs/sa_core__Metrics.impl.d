lib/core/metrics.ml: Allocation Array Format Instance List Sa_util Sa_val
